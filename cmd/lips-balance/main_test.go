package main

import (
	"os"
	"testing"
)

func TestRunBalance(t *testing.T) {
	for _, kind := range []string{"paper20", "paper100"} {
		if err := run(os.Stdout, kind, 600, 0.005, 1); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
	if err := run(os.Stdout, "nope", 10, 0.1, 1); err == nil {
		t.Error("unknown cluster accepted")
	}
}
