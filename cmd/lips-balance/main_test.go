package main

import (
	"os"
	"testing"

	"lips/internal/trace"
)

func TestRunBalance(t *testing.T) {
	for _, kind := range []string{"paper20", "paper100"} {
		if err := run(os.Stdout, kind, 600, 0.005, 1, "", ""); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
	if err := run(os.Stdout, "nope", 10, 0.1, 1, "", ""); err == nil {
		t.Error("unknown cluster accepted")
	}
}

func TestRunBalanceTrace(t *testing.T) {
	path := t.TempDir() + "/moves.jsonl"
	if err := run(os.Stdout, "paper20", 600, 0.005, 1, path, ""); err != nil {
		t.Fatalf("run with trace: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open trace: %v", err)
	}
	defer f.Close()
	events, err := trace.ReadAll(f)
	if err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no move events written")
	}
	for _, e := range events {
		if e.Kind != trace.KindMove || e.Move.Reason != "balance" {
			t.Fatalf("unexpected event %+v", e)
		}
	}
}
