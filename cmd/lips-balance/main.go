// Command lips-balance demonstrates the HDFS balancer on a synthetic
// cluster: it skews a workload's block placement, runs hdfs.Balance, and
// prints per-store utilization before and after plus the transfer bill the
// moves would incur.
//
// Usage:
//
//	lips-balance [-cluster paper20|paper100] [-tasks 600] [-threshold 0.1] [-seed 1]
//	             [-trace FILE] [-listen :8080]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/hdfs"
	"lips/internal/obs"
	"lips/internal/trace"
	"lips/internal/workload"
)

func main() {
	clusterKind := flag.String("cluster", "paper20", "paper20 or paper100")
	tasks := flag.Int("tasks", 3000, "map tasks of synthetic data to place")
	threshold := flag.Float64("threshold", 0.02, "target utilization band around the mean")
	seed := flag.Int64("seed", 1, "random seed")
	tracePath := flag.String("trace", "", "write the planned moves as JSONL trace events to this file")
	listen := flag.String("listen", "", "serve /metrics, /healthz and /debug/pprof on this address")
	logOpts := obs.LogFlags()
	flag.Parse()
	logger, lerr := logOpts.Logger(os.Stderr)
	if lerr != nil {
		fmt.Fprintln(os.Stderr, "lips-balance:", lerr)
		os.Exit(2)
	}
	logger.Debug("balance config", "cluster", *clusterKind, "tasks", *tasks,
		"threshold", *threshold, "seed", *seed)
	if err := run(os.Stdout, *clusterKind, *tasks, *threshold, *seed, *tracePath, *listen); err != nil {
		fmt.Fprintln(os.Stderr, "lips-balance:", err)
		os.Exit(1)
	}
}

func run(out *os.File, clusterKind string, tasks int, threshold float64, seed int64, tracePath, listen string) error {
	var reg *obs.Registry
	if listen != "" {
		reg = obs.NewRegistry()
		srv, err := obs.Serve(listen, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(out, "metrics: serving %s/metrics\n", srv.URL())
	}
	var c *cluster.Cluster
	switch clusterKind {
	case "paper20":
		c = cluster.Paper20(0.5)
	case "paper100":
		c = cluster.Paper100()
	default:
		return fmt.Errorf("unknown cluster %q", clusterKind)
	}
	rng := rand.New(rand.NewSource(seed))
	// Skewed ingest: all data lands in one zone's stores.
	var hot []cluster.StoreID
	for _, n := range c.Nodes {
		if n.Zone == c.Zones[0] {
			hot = append(hot, n.Store)
		}
	}
	w := workload.Random(rng, hot, workload.RandomSpec{TotalTasks: tasks})
	p := w.Placement()
	p.Shuffle(rng, hot)

	show := func(label string) {
		used := p.UsedMB()
		fmt.Fprintf(out, "%s:\n", label)
		for _, zone := range c.Zones {
			mb, capMB := 0.0, 0.0
			for _, s := range c.Stores {
				if s.Zone != zone {
					continue
				}
				mb += used[s.ID]
				capMB += s.CapacityMB
			}
			fmt.Fprintf(out, "  %-12s %8.1f GB stored (%.1f%% of zone capacity)\n",
				zone, mb/1024, 100*mb/capMB)
		}
	}
	show("before balancing")

	moves := hdfs.Balance(c, p, threshold)
	bill := cost.Money(0)
	for _, m := range moves {
		mb := p.Object(m.Object).BlockSizeMB(m.Block)
		bill += c.SSPerGB(m.From, m.To).MulFloat(mb / 1024)
	}
	fmt.Fprintf(out, "\nbalancer: %d block moves, transfer bill %v\n\n", len(moves), bill)
	if reg != nil {
		movedMB := 0.0
		for _, m := range moves {
			movedMB += p.Object(m.Object).BlockSizeMB(m.Block)
		}
		reg.Counter("lips_balance_moves_total", "Block moves the balancer planned.").Add(float64(len(moves)))
		reg.Counter("lips_balance_moved_megabytes_total", "Megabytes the planned moves relocate.").Add(movedMB)
		reg.Counter("lips_balance_bill_microcents_total", "Transfer bill of the planned moves, in microcents.").Add(float64(bill))
	}
	show("after balancing")
	if tracePath != "" {
		sink, err := trace.NewSink(tracePath, "jsonl")
		if err != nil {
			return err
		}
		hdfs.EmitMoves(sink, 0, p, moves, "balance")
		if err := sink.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\ntrace: %d move events written to %s\n", sink.Events(), tracePath)
	}
	return nil
}
