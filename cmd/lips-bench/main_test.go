package main

import (
	"testing"

	"lips/internal/experiments"
)

var quick = experiments.Config{Quick: true, Seed: 1}

func TestRunSingleExperiments(t *testing.T) {
	for _, name := range []string{"table1", "table3", "table4", "fig1", "fig8", "overhead"} {
		if err := run(name, quick); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRunAblations(t *testing.T) {
	if err := run("ablations", quick); err != nil {
		t.Fatal(err)
	}
}

func TestRunExtensions(t *testing.T) {
	if err := run("spot", quick); err != nil {
		t.Error(err)
	}
	if err := run("baselines", quick); err != nil {
		t.Error(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("fig99", quick); err == nil {
		t.Error("unknown experiment accepted")
	}
}
