// Command lips-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	lips-bench [-experiment all|table1|table3|table4|fig1|fig5|fig6|fig8|fig9|fig11|scale|overhead|ablations|faults|spot|baselines|service]
//	           [-full] [-seed N] [-trials N] [-lp-workers N] [-cold-start]
//	           [-colgen] [-dual] [-presolve on|off] [-factor lu|dense]
//	           [-faults N] [-fault-seed N]
//	           [-trace FILE] [-trace-format jsonl|chrome] [-sample-interval 60]
//	           [-listen :8080] [-cpuprofile FILE] [-memprofile FILE]
//
// By default experiments run at Quick scale (seconds); -full selects the
// paper-scale configurations (the 1608-task Table IV job set, the 400-job
// SWIM day on 100 nodes, five trials per Fig. 5 point).
package main

import (
	"flag"
	"fmt"
	"os"

	"lips/internal/experiments"
	"lips/internal/obs"
	"lips/internal/trace"
)

func main() {
	experiment := flag.String("experiment", "all", "which artifact to regenerate")
	full := flag.Bool("full", false, "run at paper scale instead of quick scale")
	seed := flag.Int64("seed", 42, "random seed")
	trials := flag.Int("trials", 0, "trials per Fig. 5 point (0 = default)")
	lpWorkers := flag.Int("lp-workers", 0, "parallel pricing workers per LP solve (0 = sequential)")
	coldStart := flag.Bool("cold-start", false, "disable epoch-to-epoch LP basis reuse")
	colGen := flag.Bool("colgen", false, "solve each epoch by column generation over a restricted master")
	dual := flag.Bool("dual", false, "repair warm-started bases with dual-simplex pivots instead of cold restarts")
	presolve := flag.String("presolve", "on", "LP presolve reduction pass: on or off")
	factor := flag.String("factor", "lu", "LP basis factorization: lu (sparse) or dense")
	faults := flag.Int("faults", 0, "node crashes in the churn ablation's fault plan (0 = 2)")
	faultSeed := flag.Int64("fault-seed", 0, "fault-plan seed for the churn ablation (0 = -seed)")
	tracePath := flag.String("trace", "", "write a structured trace of every simulated run to this file")
	traceFormat := flag.String("trace-format", "jsonl", "trace format: jsonl or chrome (Perfetto)")
	sampleEvery := flag.Float64("sample-interval", 60, "simulated seconds between time-series samples (0 disables)")
	listen := flag.String("listen", "", "serve /metrics, /progress, /healthz and /debug/pprof on this address")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	logOpts := obs.LogFlags()
	flag.Parse()
	logger, lerr := logOpts.Logger(os.Stderr)
	if lerr != nil {
		fmt.Fprintln(os.Stderr, "lips-bench:", lerr)
		os.Exit(2)
	}

	cfg := experiments.Config{
		Seed: *seed, Trials: *trials, Quick: !*full,
		LPWorkers: *lpWorkers, ColdStart: *coldStart,
		ColGen: *colGen, DualSimplex: *dual,
		FaultCrashes: *faults, FaultSeed: *faultSeed,
	}
	logger.Debug("bench config", "seed", cfg.Seed, "trials", cfg.Trials, "quick", cfg.Quick)
	var sink trace.Sink
	if *tracePath != "" {
		var terr error
		sink, terr = trace.NewSink(*tracePath, *traceFormat)
		if terr != nil {
			fmt.Fprintln(os.Stderr, "lips-bench:", terr)
			os.Exit(1)
		}
		cfg.Tracer = sink
		cfg.SampleIntervalSec = *sampleEvery
	}
	switch *presolve {
	case "on":
	case "off":
		cfg.NoPresolve = true
	default:
		fmt.Fprintf(os.Stderr, "lips-bench: -presolve must be on or off, got %q\n", *presolve)
		os.Exit(1)
	}
	switch *factor {
	case "lu":
	case "dense":
		cfg.DenseFactor = true
	default:
		fmt.Fprintf(os.Stderr, "lips-bench: -factor must be lu or dense, got %q\n", *factor)
		os.Exit(1)
	}
	prof, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lips-bench:", err)
		os.Exit(1)
	}
	if *listen != "" {
		reg := obs.NewRegistry()
		srv, serr := obs.Serve(*listen, reg)
		if serr != nil {
			fmt.Fprintln(os.Stderr, "lips-bench:", serr)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("metrics: serving %s/metrics\n", srv.URL())
		cfg.Metrics = reg
	}
	err = run(*experiment, cfg)
	if sink != nil {
		if cerr := sink.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("trace: %w", cerr)
		}
		fmt.Printf("trace: %d events written to %s\n", sink.Events(), *tracePath)
	}
	if perr := prof.Stop(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lips-bench:", err)
		os.Exit(1)
	}
}

func run(experiment string, cfg experiments.Config) error {
	all := experiment == "all"
	did := false
	section := func(name, title string) bool {
		if !all && experiment != name {
			return false
		}
		did = true
		fmt.Printf("== %s ==\n", title)
		return true
	}

	if section("table1", "Table I — CPU intensiveness per benchmark") {
		fmt.Println(experiments.Table1())
	}
	if section("table3", "Table III — EC2 instance catalog") {
		fmt.Println(experiments.Table3())
	}
	if section("table4", "Table IV — job set J1–J9") {
		fmt.Println(experiments.Table4())
	}
	if section("fig1", "Figure 1 — break-even: move data vs move computation") {
		r, err := experiments.Fig1(cfg)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if section("fig5", "Figure 5 — simulated cost reduction vs problem size") {
		r, err := experiments.Fig5(cfg)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if section("fig6", "Figures 6 & 7 — 20-node testbed: cost and execution time") {
		r, err := experiments.Fig6(cfg)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if section("fig8", "Figure 8 — epoch length: cost/performance trade-off") {
		r, err := experiments.Fig8(cfg)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if section("fig9", "Figures 9 & 10 — 100-node SWIM workload: cost and execution time") {
		r, err := experiments.Fig9(cfg)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if section("fig11", "Figure 11 — accumulated CPU time per node (epoch 400 s vs 600 s)") {
		r, err := experiments.Fig11(cfg)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if section("scale", "Scale — simulator throughput up the cluster-size ladder") {
		r, err := experiments.Scale(cfg)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if section("overhead", "§VI-A — LiPS scheduler overhead (LP build + solve)") {
		r, err := experiments.Overhead(cfg)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if section("ablations", "Ablations — design-choice studies") {
		a1, err := experiments.AblationFakeNode(cfg)
		if err != nil {
			return err
		}
		fmt.Println("-- fake overflow node F --")
		fmt.Println(a1.Render())
		a2, err := experiments.AblationRounding(cfg)
		if err != nil {
			return err
		}
		fmt.Println("-- fractional vs rounded integral plans --")
		fmt.Println(a2.Render())
		a3, err := experiments.AblationBilling(cfg)
		if err != nil {
			return err
		}
		fmt.Println("-- CPU-seconds vs slot-occupancy billing --")
		fmt.Println(a3.Render())
		a4, err := experiments.AblationPricing(cfg)
		if err != nil {
			return err
		}
		fmt.Println("-- simplex pricing rules --")
		fmt.Println(a4.Render())
		a5, err := experiments.AblationTransferConstraint(cfg)
		if err != nil {
			return err
		}
		fmt.Println("-- online transfer-time constraint (21) --")
		fmt.Println(a5.Render())
		a6, err := experiments.AblationContention(cfg)
		if err != nil {
			return err
		}
		fmt.Println("-- dedicated vs shared (contended) network links --")
		fmt.Println(a6.Render())
	}
	if section("faults", "Churn — LiPS vs delay scheduling under injected faults") {
		r, err := experiments.AblationFaults(cfg)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if section("spot", "Extension — spot-market price volatility") {
		r, err := experiments.SpotMarket(cfg)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if section("baselines", "Extension — all-schedulers shoot-out (Fig. 6 iii setting)") {
		r, err := experiments.Baselines(cfg)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if section("service", "Extension — streaming submissions with cancels (lips-serve regime)") {
		r, err := experiments.Service(cfg)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if !did {
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	return nil
}
