// lips-serve runs the LiPS co-scheduler as a long-lived daemon: an HTTP
// API accepting streaming job submissions (submit/status/cancel, with
// per-tenant fair-share admission), a continuously advancing simulated
// cluster, and an epoch loop re-solving the scheduling plan on a bounded
// solver pool. The observability endpoints (/metrics, /progress,
// /healthz, /readyz, /debug/pprof) and the explainability endpoints
// (/jobs/{id}/trace, /debug/epochs, /debug/spans, /tenants, /alerts,
// /audit) share the same listener; -log-level and -log-format tune the
// structured log stream on stderr. -slo-e2e/-slo-queue-wait arm the
// per-tenant burn-rate alerting, and repeatable -budget tenant=dollars
// caps a tenant's spend (exhausted tenants defer with budget-exhausted).
//
//	lips-serve -listen 127.0.0.1:8080 -cluster random -nodes 1000
//	curl -XPOST -d '{"tenant":"t0","archetype":"grep","input_mb":256}' \
//	    http://127.0.0.1:8080/submit
//
// SIGINT/SIGTERM drain gracefully: new submissions get 503, in-flight
// jobs run to completion (bounded by -drain-timeout), then the process
// exits 0. An epoch-loop or HTTP-server failure exits non-zero.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"lips/internal/cluster"
	"lips/internal/obs"
	"lips/internal/sched"
	"lips/internal/serve"
	"lips/internal/sim"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:8080", "HTTP listen address")
		clusterKind = flag.String("cluster", "paper20", "paper20, paper100 or random")
		fracC1      = flag.Float64("frac-c1", 0.5, "fraction of c1.medium nodes for -cluster paper20")
		nodes       = flag.Int("nodes", 1000, "node count for -cluster random")
		seed        = flag.Int64("seed", 1, "random seed for -cluster random")
		scheduler   = flag.String("scheduler", "lips", "lips, fair or scale")
		epoch       = flag.Float64("epoch", 0, "LiPS planning epoch in seconds (0 = the -epoch-sim value)")
		colGen      = flag.Bool("colgen", false, "solve LiPS epochs by column generation (large clusters)")
		epochSim    = flag.Float64("epoch-sim", 60, "simulated seconds advanced per serve epoch")
		epochWall   = flag.Duration("epoch-wall", 25*time.Millisecond, "wall-clock pacing between serve epochs")
		queueCap    = flag.Int("queue-cap", 4096, "admission queue bound (429 beyond it)")
		admitPer    = flag.Int("admit-per-epoch", 512, "max jobs admitted into the simulation per epoch")
		solverPool  = flag.Int("solver-pool", 1, "solver tokens; all busy + half-full queue sheds load")
		retryAfter  = flag.Int("retry-after", 1, "Retry-After seconds on 429/503")
		drain       = flag.Duration("drain-timeout", 30*time.Second, "max drain time at shutdown")
		sloE2E      = flag.Float64("slo-e2e", 0, "per-tenant e2e latency objective in simulated seconds (0 = off)")
		sloQueue    = flag.Float64("slo-queue-wait", 0, "per-tenant queue-wait objective in simulated seconds (0 = off)")
		sloBudget   = flag.Float64("slo-budget", 0.05, "SLO error budget (allowed violation fraction)")
		sloShort    = flag.Float64("slo-short", 300, "short burn-rate window in simulated seconds")
		sloLong     = flag.Float64("slo-long", 1800, "long burn-rate window in simulated seconds")
	)
	budgets := make(map[string]float64)
	flag.Func("budget", "tenant=dollars spend cap, repeatable (e.g. -budget alice=2.50)", func(v string) error {
		tenant, usd, ok := strings.Cut(v, "=")
		if !ok || tenant == "" {
			return fmt.Errorf("want tenant=dollars, got %q", v)
		}
		amount, err := strconv.ParseFloat(usd, 64)
		if err != nil || amount <= 0 {
			return fmt.Errorf("bad dollar amount %q", usd)
		}
		budgets[tenant] = amount
		return nil
	})
	logOpts := obs.LogFlags()
	flag.Parse()
	logger, err := logOpts.Logger(os.Stderr)
	if err != nil {
		fatalf("%v", err)
	}

	var c *cluster.Cluster
	switch *clusterKind {
	case "paper20":
		c = cluster.Paper20(*fracC1)
	case "paper100":
		c = cluster.Paper100()
	case "random":
		c = cluster.Random(rand.New(rand.NewSource(*seed)), cluster.RandomSpec{Nodes: *nodes})
	default:
		fatalf("unknown cluster %q", *clusterKind)
	}

	if *epoch == 0 {
		*epoch = *epochSim
	}
	var sch sim.Scheduler
	switch *scheduler {
	case "lips":
		l := sched.NewLiPS(*epoch)
		l.ColGen = *colGen
		sch = l
	case "fair":
		sch = sched.NewFair()
	case "scale":
		sch = sched.NewScale()
	default:
		fatalf("unknown scheduler %q", *scheduler)
	}

	reg := obs.NewRegistry()
	d, err := serve.New(c, sch, reg, serve.Config{
		EpochSimSec:       *epochSim,
		EpochWallInterval: *epochWall,
		QueueCap:          *queueCap,
		AdmitPerEpoch:     *admitPer,
		SolverPool:        *solverPool,
		RetryAfterSec:     *retryAfter,
		DrainTimeout:      *drain,
		Logger:            logger,
		SLOE2ESec:         *sloE2E,
		SLOQueueWaitSec:   *sloQueue,
		SLOBudget:         *sloBudget,
		SLOShortSec:       *sloShort,
		SLOLongSec:        *sloLong,
		Budgets:           budgets,
	})
	if err != nil {
		fatalf("%v", err)
	}
	srv, err := obs.ServeHandler(*listen, d.Handler())
	if err != nil {
		fatalf("%v", err)
	}
	d.Start()
	fmt.Printf("lips-serve: %d nodes, scheduler %s, epoch %.0fs sim / %s wall\n",
		len(c.Nodes), sch.Name(), *epochSim, *epochWall)
	fmt.Printf("lips-serve: listening on %s\n", srv.URL())
	logger.Info("listening", "url", srv.URL(), "nodes", len(c.Nodes), "scheduler", sch.Name())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("lips-serve: draining")
	code := 0
	if err := d.Shutdown(); err != nil {
		fmt.Fprintf(os.Stderr, "lips-serve: %v\n", err)
		code = 1
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "lips-serve: http: %v\n", err)
		code = 1
	}
	fmt.Println("lips-serve: stopped")
	os.Exit(code)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lips-serve: "+format+"\n", args...)
	os.Exit(2)
}
