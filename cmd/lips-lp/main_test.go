package main

import (
	"bytes"
	"strings"
	"testing"
)

const demoLP = `problem demo
var x 0 3 -1
var y 0 2 -2
con cap <= 4
coef 0 0 1
coef 0 1 1
`

func TestRunOptimal(t *testing.T) {
	var out bytes.Buffer
	code, err := run(strings.NewReader(demoLP), &out, cliOpts{duals: true})
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	got := out.String()
	for _, want := range []string{"status: optimal", "objective: -6", "x = 2", "y = 2", "duals:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunInfeasible(t *testing.T) {
	var out bytes.Buffer
	code, err := run(strings.NewReader("var x 0 1 1\ncon c >= 5\ncoef 0 0 1\n"), &out, cliOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Errorf("code = %d, want 2", code)
	}
	if !strings.Contains(out.String(), "infeasible") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunParseError(t *testing.T) {
	var out bytes.Buffer
	code, err := run(strings.NewReader("garbage\n"), &out, cliOpts{})
	if err == nil || code != 1 {
		t.Errorf("code=%d err=%v", code, err)
	}
}

func TestRunBland(t *testing.T) {
	var out bytes.Buffer
	code, err := run(strings.NewReader(demoLP), &out, cliOpts{bland: true, maxIters: 100})
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
}

func TestRunPresolveOffDenseFactor(t *testing.T) {
	var out bytes.Buffer
	code, err := run(strings.NewReader(demoLP), &out,
		cliOpts{presolve: "off", factor: "dense"})
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	if !strings.Contains(out.String(), "objective: -6") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunBadKnob(t *testing.T) {
	for _, o := range []cliOpts{{presolve: "maybe"}, {factor: "qr"}} {
		var out bytes.Buffer
		code, err := run(strings.NewReader(demoLP), &out, o)
		if err == nil || code != 1 {
			t.Errorf("opts %+v: code=%d err=%v, want rejection", o, code, err)
		}
	}
}
