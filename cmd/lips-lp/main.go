// Command lips-lp solves a linear program written in the lp package's
// text format and prints the solution.
//
// Usage:
//
//	lips-lp [-bland] [-max-iters N] [-duals] [-colgen] [-dual]
//	        [-presolve on|off] [-factor lu|dense]
//	        [-cpuprofile FILE] [-memprofile FILE] [file]
//
// With no file, the problem is read from standard input. The format:
//
//	problem <name>
//	var <name> <lower> <upper> <cost>     # bounds may be inf / -inf
//	con <name> <sense> <rhs>              # sense: <=  >=  =
//	coef <con-index> <var-index> <value>  # 0-based declaration order
//
// Minimization is implied.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lips/internal/lp"
	"lips/internal/obs"
)

// cliOpts carries the command-line knobs into run.
type cliOpts struct {
	bland    bool
	maxIters int
	duals    bool
	colgen   bool
	dual     bool
	presolve string // "on" or "off"
	factor   string // "lu" or "dense"
}

func main() {
	var o cliOpts
	flag.BoolVar(&o.bland, "bland", false, "force Bland's anti-cycling rule")
	flag.IntVar(&o.maxIters, "max-iters", 0, "iteration budget (0 = automatic)")
	flag.BoolVar(&o.duals, "duals", false, "also print the dual values")
	flag.BoolVar(&o.colgen, "colgen", false, "solve by column generation over a restricted master")
	flag.BoolVar(&o.dual, "dual", false, "repair warm bases with dual-simplex pivots (colgen rounds)")
	flag.StringVar(&o.presolve, "presolve", "on", "presolve reduction pass: on or off")
	flag.StringVar(&o.factor, "factor", "lu", "basis factorization: lu (sparse) or dense")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	logOpts := obs.LogFlags()
	flag.Parse()
	logger, lerr := logOpts.Logger(os.Stderr)
	if lerr != nil {
		fmt.Fprintln(os.Stderr, "lips-lp:", lerr)
		os.Exit(2)
	}
	logger.Debug("lp config", "colgen", o.colgen, "dual", o.dual, "presolve", o.presolve)

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "lips-lp:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	prof, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lips-lp:", err)
		os.Exit(1)
	}
	code, err := run(in, os.Stdout, o)
	if perr := prof.Stop(); perr != nil {
		fmt.Fprintln(os.Stderr, "lips-lp:", perr)
		if code == 0 {
			code = 1
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lips-lp:", err)
	}
	os.Exit(code)
}

// run parses, solves and prints; it returns the process exit code.
func run(in io.Reader, out io.Writer, o cliOpts) (int, error) {
	p, err := lp.Parse(in)
	if err != nil {
		return 1, err
	}
	opts := lp.Options{Bland: o.bland, MaxIters: o.maxIters, Dual: o.dual}
	switch o.presolve {
	case "", "on":
	case "off":
		opts.Presolve = lp.PresolveOff
	default:
		return 1, fmt.Errorf("-presolve must be on or off, got %q", o.presolve)
	}
	switch o.factor {
	case "", "lu":
	case "dense":
		opts.Factor = lp.FactorDense
	default:
		return 1, fmt.Errorf("-factor must be lu or dense, got %q", o.factor)
	}
	var sol *lp.Solution
	var st lp.ColGenStats
	if o.colgen {
		// Solve over a restricted master, revealing columns only when the
		// pricing oracle says they can improve the objective. Exact: the
		// reported optimum is the full problem's.
		rp, oracle := lp.NewRestricted(p)
		sol, st, err = lp.SolveColGen(rp, oracle, opts)
		if err != nil {
			return 1, err
		}
		p = rp
	} else {
		sol, err = p.Solve(opts)
		if err != nil {
			return 1, err
		}
	}
	fmt.Fprintf(out, "problem %s: %d variables, %d constraints, %d nonzeros\n",
		p.Name(), p.NumVars(), p.NumCons(), p.NumNonzeros())
	fmt.Fprintf(out, "status: %v (%d iterations, %d in phase 1)\n", sol.Status, sol.Iters, sol.Phase1)
	if o.colgen {
		fmt.Fprintf(out, "colgen: %d rounds (%d warm), %d columns revealed, %d dual pivots\n",
			st.Rounds, st.WarmRounds, st.Columns, st.DualIters)
	}
	if sol.PresolveRows > 0 || sol.PresolveCols > 0 {
		fmt.Fprintf(out, "presolve: removed %d rows, %d cols\n", sol.PresolveRows, sol.PresolveCols)
	}
	if sol.Status != lp.Optimal {
		return 2, nil
	}
	fmt.Fprintf(out, "objective: %g\n", sol.Objective)
	for i := 0; i < p.NumVars(); i++ {
		v := lp.Var(i)
		if x := sol.Value(v); x != 0 {
			fmt.Fprintf(out, "  %s = %g\n", p.VarName(v), x)
		}
	}
	if o.duals {
		fmt.Fprintln(out, "duals:")
		for i := 0; i < p.NumCons(); i++ {
			fmt.Fprintf(out, "  %s = %g\n", p.ConName(lp.Con(i)), sol.Dual[i])
		}
	}
	return 0, nil
}
