// Command lips-lp solves a linear program written in the lp package's
// text format and prints the solution.
//
// Usage:
//
//	lips-lp [-bland] [-max-iters N] [-duals] [file]
//
// With no file, the problem is read from standard input. The format:
//
//	problem <name>
//	var <name> <lower> <upper> <cost>     # bounds may be inf / -inf
//	con <name> <sense> <rhs>              # sense: <=  >=  =
//	coef <con-index> <var-index> <value>  # 0-based declaration order
//
// Minimization is implied.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lips/internal/lp"
)

func main() {
	bland := flag.Bool("bland", false, "force Bland's anti-cycling rule")
	maxIters := flag.Int("max-iters", 0, "iteration budget (0 = automatic)")
	duals := flag.Bool("duals", false, "also print the dual values")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "lips-lp:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	code, err := run(in, os.Stdout, *bland, *maxIters, *duals)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lips-lp:", err)
	}
	os.Exit(code)
}

// run parses, solves and prints; it returns the process exit code.
func run(in io.Reader, out io.Writer, bland bool, maxIters int, duals bool) (int, error) {
	p, err := lp.Parse(in)
	if err != nil {
		return 1, err
	}
	sol, err := p.Solve(lp.Options{Bland: bland, MaxIters: maxIters})
	if err != nil {
		return 1, err
	}
	fmt.Fprintf(out, "problem %s: %d variables, %d constraints, %d nonzeros\n",
		p.Name(), p.NumVars(), p.NumCons(), p.NumNonzeros())
	fmt.Fprintf(out, "status: %v (%d iterations, %d in phase 1)\n", sol.Status, sol.Iters, sol.Phase1)
	if sol.Status != lp.Optimal {
		return 2, nil
	}
	fmt.Fprintf(out, "objective: %g\n", sol.Objective)
	for i := 0; i < p.NumVars(); i++ {
		v := lp.Var(i)
		if x := sol.Value(v); x != 0 {
			fmt.Fprintf(out, "  %s = %g\n", p.VarName(v), x)
		}
	}
	if duals {
		fmt.Fprintln(out, "duals:")
		for i := 0; i < p.NumCons(); i++ {
			fmt.Fprintf(out, "  %s = %g\n", p.ConName(lp.Con(i)), sol.Dual[i])
		}
	}
	return 0, nil
}
