package main

import (
	"flag"
	"os"
	"strings"
	"testing"

	"lips/internal/trace"
)

// updateGolden rewrites testdata/metrics.golden from the current output:
// go test ./cmd/lips-trace -run Golden -update
var updateGolden = flag.Bool("update", false, "rewrite golden files")

// writeTrace writes a small synthetic run trace and returns its path.
func writeTrace(t *testing.T) string {
	t.Helper()
	path := t.TempDir() + "/run.jsonl"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := trace.NewJSONL(f)
	for _, e := range []trace.Event{
		{T: 0, Kind: trace.KindRun, Run: &trace.RunInfo{
			Scheduler: "lips(e=600s)", Nodes: 2, Stores: 2, Jobs: 1, Tasks: 3,
			Slots: []int{2, 2}, Types: []string{"m1.medium", "c1.medium"},
			Zones: []string{"us-east-1a", "us-east-1b"}, Label: "unit"}},
		{T: 0, Kind: trace.KindSample, Sample: &trace.SampleInfo{Pending: 3, FreeSlots: 4, LiveSlots: 4}},
		{T: 10, Kind: trace.KindEnqueue, Task: &trace.TaskInfo{Job: 0, Task: 0, Node: -1, Store: 0}},
		{T: 600, Kind: trace.KindEpoch, Epoch: &trace.EpochInfo{
			Scheduler: "lips(e=600s)", Epoch: 1, Jobs: 1, Pending: 3, Iters: 7, Launched: 3}},
		{T: 610, Kind: trace.KindLaunch, Task: &trace.TaskInfo{Job: 0, Task: 0, Node: 0, Store: 0, Attempt: 1, Locality: "node-local"}},
		{T: 700, Kind: trace.KindDone, Task: &trace.TaskInfo{
			Job: 0, Task: 0, Node: 0, Store: 0, Attempt: 1, DurSec: 90, XferSec: 5, CPUSec: 85, CostUC: 120000}},
		{T: 705, Kind: trace.KindDone, Task: &trace.TaskInfo{
			Job: 0, Task: 1, Node: 1, Store: 1, Attempt: 1, DurSec: 95, CPUSec: 95, CostUC: 130000}},
		{T: 706, Kind: trace.KindKill, Task: &trace.TaskInfo{Job: 0, Task: 2, Node: 1, Store: -1, Reason: "speculative", Speculative: true}},
		{T: 710, Kind: trace.KindMove, Move: &trace.MoveInfo{Object: 0, Block: 1, Src: 0, Dst: 1, MB: 64, Reason: "plan"}},
		{T: 720, Kind: trace.KindFault, Fault: &trace.FaultInfo{Kind: "node-down", Node: 1, Store: -1}},
		{T: 800, Kind: trace.KindSample, Sample: &trace.SampleInfo{Done: 2, FreeSlots: 4, LiveSlots: 4, TotalUC: 250000, CPUUC: 250000}},
	} {
		sink.Emit(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunReport(t *testing.T) {
	path := writeTrace(t)
	var out strings.Builder
	if err := run(&out, path, 5, "", false, false, 0, false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"== run: unit — lips(e=600s) (2 nodes, 2 stores, 1 jobs, 3 tasks) ==",
		"cost over time:",
		"epoch timeline:",
		"top 2 slowest tasks:",
		"j0/t1", // slowest first
		"per-node utilization",
		"node-0",
		"m1.medium",
		"kills: speculative=1",
		"moves: plan=1",
		"faults injected: 1",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
	// Slowest task (95s) must be listed before the 90s one.
	if strings.Index(got, "j0/t1") > strings.Index(got, "j0/t0") {
		t.Error("slowest tasks not sorted by duration")
	}
}

func TestRunValidate(t *testing.T) {
	path := writeTrace(t)
	var out strings.Builder
	if err := run(&out, path, 5, "", true, false, 0, false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "11 events valid") {
		t.Errorf("validate census wrong:\n%s", got)
	}
	for _, kind := range []string{"run", "sample", "done", "kill", "move", "fault", "epoch"} {
		if !strings.Contains(got, kind) {
			t.Errorf("census missing kind %q:\n%s", kind, got)
		}
	}
}

func TestRunCSV(t *testing.T) {
	path := writeTrace(t)
	csvPath := t.TempDir() + "/series.csv"
	var out strings.Builder
	if err := run(&out, path, 5, csvPath, false, false, 0, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 { // header + 2 samples
		t.Fatalf("want 3 CSV lines, got %d:\n%s", len(lines), data)
	}
	if !strings.HasPrefix(lines[0], "t_sec,total_uc,") {
		t.Errorf("bad CSV header %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "800,250000,") {
		t.Errorf("bad CSV row %q", lines[2])
	}
}

// TestRunMetricsGolden pins the -metrics exposition byte-for-byte: the
// replay sink pre-registers every family with its label children at zero,
// and the exposition writer sorts families and series, so the output for a
// fixed trace is fully deterministic.
func TestRunMetricsGolden(t *testing.T) {
	path := writeTrace(t)
	var out strings.Builder
	if err := run(&out, path, 5, "", false, true, 0, false); err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.WriteFile("testdata/metrics.golden", []byte(out.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile("testdata/metrics.golden")
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(golden) {
		t.Errorf("-metrics exposition diverges from testdata/metrics.golden:\n got:\n%s\nwant:\n%s",
			out.String(), golden)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(&strings.Builder{}, t.TempDir()+"/nope.jsonl", 5, "", false, false, 0, false); err == nil {
		t.Error("missing file accepted")
	}
	empty := t.TempDir() + "/empty.jsonl"
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&strings.Builder{}, empty, 5, "", false, false, 0, false); err == nil {
		t.Error("empty trace accepted")
	}
	bad := t.TempDir() + "/bad.jsonl"
	if err := os.WriteFile(bad, []byte("{\"t\":-1,\"kind\":\"done\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&strings.Builder{}, bad, 5, "", false, false, 0, false); err == nil {
		t.Error("invalid event accepted")
	}
}
