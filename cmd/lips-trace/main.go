// Command lips-trace inspects a JSONL run trace produced by
// lips-sim/lips-bench -trace: per run it prints the cost-over-time
// series, the epoch LP timeline, the slowest tasks and a per-node
// utilization table.
//
// Usage:
//
//	lips-trace [-top 10] [-csv FILE] [-validate] [-metrics] [-by-job N] [-audit] trace.jsonl
//
// -csv exports the sampled time series (cost by category in microcents,
// queue depth, slot counts, locality mix) as CSV; -validate only
// schema-checks the file and reports the event census; -metrics replays
// the trace into the live metrics registry and prints the resulting
// Prometheus text exposition — the same families a lips-sim -listen
// scrape of that run would show. -by-job rolls charges up to the N most
// expensive jobs (with -csv, the full rollup is exported instead of the
// time series); -audit rebuilds the ledger from the money-bearing
// events and proves it, to the exact microcent, against every embedded
// sample snapshot — any drift exits 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"lips/internal/cost"
	"lips/internal/obs"
	"lips/internal/trace"
)

func main() {
	top := flag.Int("top", 10, "how many slowest tasks to list per run")
	csvPath := flag.String("csv", "", "write the sampled time series as CSV to this file")
	validate := flag.Bool("validate", false, "schema-check the trace and print the event census only")
	metrics := flag.Bool("metrics", false, "replay the trace into the metrics registry and print the Prometheus exposition")
	byJob := flag.Int("by-job", 0, "roll charges up to the N most expensive jobs per run (with -csv, export the full rollup)")
	audit := flag.Bool("audit", false, "rebuild the ledger from the events and reconcile it against every sample snapshot")
	logOpts := obs.LogFlags()
	flag.Parse()
	logger, lerr := logOpts.Logger(os.Stderr)
	if lerr != nil {
		fmt.Fprintln(os.Stderr, "lips-trace:", lerr)
		os.Exit(2)
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lips-trace [-top N] [-csv FILE] [-validate] [-metrics] [-by-job N] [-audit] trace.jsonl")
		os.Exit(2)
	}
	logger.Debug("trace config", "path", flag.Arg(0), "top", *top, "validate", *validate, "by_job", *byJob, "audit", *audit)
	if err := run(os.Stdout, flag.Arg(0), *top, *csvPath, *validate, *metrics, *byJob, *audit); err != nil {
		fmt.Fprintln(os.Stderr, "lips-trace:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, path string, top int, csvPath string, validateOnly, metricsOnly bool, byJob int, audit bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := trace.ReadAll(f)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("%s: empty trace", path)
	}

	if metricsOnly {
		reg := obs.NewRegistry()
		sink := obs.NewTraceSink(reg)
		for _, e := range events {
			sink.Emit(e)
		}
		return reg.WriteProm(out)
	}

	if validateOnly {
		census := make(map[trace.Kind]int)
		for _, e := range events {
			census[e.Kind]++
		}
		kinds := make([]string, 0, len(census))
		for k := range census {
			kinds = append(kinds, string(k))
		}
		sort.Strings(kinds)
		fmt.Fprintf(out, "%s: %d events valid\n", path, len(events))
		for _, k := range kinds {
			fmt.Fprintf(out, "  %-8s %d\n", k, census[trace.Kind(k)])
		}
		return nil
	}

	runs := splitRuns(events)

	if audit {
		for _, r := range runs {
			if err := auditRun(out, r); err != nil {
				return err
			}
		}
		return nil
	}

	if byJob > 0 {
		if csvPath != "" {
			if err := writeByJobCSV(csvPath, runs); err != nil {
				return err
			}
			fmt.Fprintf(out, "job rollup written to %s\n", csvPath)
		}
		for i, r := range runs {
			if i > 0 {
				fmt.Fprintln(out)
			}
			if err := printByJob(out, r, byJob); err != nil {
				return err
			}
		}
		return nil
	}

	if csvPath != "" {
		if err := writeCSV(csvPath, events); err != nil {
			return err
		}
		fmt.Fprintf(out, "time series written to %s\n\n", csvPath)
	}

	for i, r := range runs {
		if i > 0 {
			fmt.Fprintln(out)
		}
		printRun(out, r, top)
	}
	return nil
}

// writeCSV exports every sample event through the Sampler's CSV writer.
func writeCSV(path string, events []trace.Event) error {
	s := trace.NewSampler()
	for _, e := range events {
		s.Emit(e)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// run groups one simulation's events: the stream from one run header
// (inclusive) to the next. Events before any header — e.g. a balancer
// trace — form a headerless run.
type runGroup struct {
	info   *trace.RunInfo
	events []trace.Event
}

func splitRuns(events []trace.Event) []runGroup {
	var runs []runGroup
	cur := runGroup{}
	for _, e := range events {
		if e.Kind == trace.KindRun {
			if cur.info != nil || len(cur.events) > 0 {
				runs = append(runs, cur)
			}
			cur = runGroup{info: e.Run}
			continue
		}
		cur.events = append(cur.events, e)
	}
	runs = append(runs, cur)
	return runs
}

func usd(uc int64) string { return cost.Money(uc).String() }

func printRun(out io.Writer, r runGroup, top int) {
	if r.info != nil {
		name := r.info.Scheduler
		if r.info.Label != "" {
			name = r.info.Label + " — " + name
		}
		fmt.Fprintf(out, "== run: %s (%d nodes, %d stores, %d jobs, %d tasks) ==\n",
			name, r.info.Nodes, r.info.Stores, r.info.Jobs, r.info.Tasks)
	} else {
		fmt.Fprintf(out, "== run: (no run header, %d events) ==\n", len(r.events))
	}

	var (
		samples []trace.Event
		epochs  []trace.Event
		dones   []trace.Event
		endT    float64
		kills   = map[string]int{}
		moves   = map[string]int{}
		faults  int
	)
	for _, e := range r.events {
		if e.T > endT {
			endT = e.T
		}
		switch e.Kind {
		case trace.KindSample:
			samples = append(samples, e)
		case trace.KindEpoch:
			epochs = append(epochs, e)
		case trace.KindDone:
			dones = append(dones, e)
		case trace.KindKill:
			kills[e.Task.Reason]++
		case trace.KindMove:
			moves[e.Move.Reason]++
		case trace.KindFault:
			faults++
		}
	}

	printCostOverTime(out, samples)
	printEpochs(out, epochs)
	printSlowest(out, dones, top)
	printNodeUtil(out, r.info, dones, endT)

	if len(kills) > 0 || len(moves) > 0 || faults > 0 {
		var parts []string
		for _, m := range []struct {
			label string
			byKey map[string]int
		}{{"kills", kills}, {"moves", moves}} {
			if len(m.byKey) == 0 {
				continue
			}
			keys := make([]string, 0, len(m.byKey))
			for k := range m.byKey {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			kv := make([]string, 0, len(keys))
			for _, k := range keys {
				kv = append(kv, fmt.Sprintf("%s=%d", k, m.byKey[k]))
			}
			parts = append(parts, fmt.Sprintf("%s: %s", m.label, strings.Join(kv, " ")))
		}
		if faults > 0 {
			parts = append(parts, fmt.Sprintf("faults injected: %d", faults))
		}
		fmt.Fprintf(out, "\n%s\n", strings.Join(parts, ";  "))
	}
}

// printCostOverTime renders up to 12 evenly spaced sample rows.
func printCostOverTime(out io.Writer, samples []trace.Event) {
	if len(samples) == 0 {
		return
	}
	fmt.Fprintln(out, "\ncost over time:")
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  t\ttotal\tcpu\ttransfer\tplacement\trunning\tqueued\tpending\tfree slots")
	const maxRows = 12
	step := 1
	if len(samples) > maxRows {
		step = (len(samples) + maxRows - 1) / maxRows
	}
	for i := 0; i < len(samples); i += step {
		s := samples[i].Sample
		fmt.Fprintf(tw, "  %.0fs\t%s\t%s\t%s\t%s\t%d\t%d\t%d\t%d\n",
			samples[i].T, usd(s.TotalUC), usd(s.CPUUC), usd(s.TransferUC), usd(s.PlacementUC),
			s.Running, s.Queued, s.Pending, s.FreeSlots)
	}
	if last := len(samples) - 1; last%step != 0 {
		s := samples[last].Sample
		fmt.Fprintf(tw, "  %.0fs\t%s\t%s\t%s\t%s\t%d\t%d\t%d\t%d\n",
			samples[last].T, usd(s.TotalUC), usd(s.CPUUC), usd(s.TransferUC), usd(s.PlacementUC),
			s.Running, s.Queued, s.Pending, s.FreeSlots)
	}
	tw.Flush()
}

func printEpochs(out io.Writer, epochs []trace.Event) {
	if len(epochs) == 0 {
		return
	}
	fmt.Fprintln(out, "\nepoch timeline:")
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  t\tepoch\tstart\tjobs\tpending\titers\tlaunched\tdeferred\tmoves\tsolve")
	for _, e := range epochs {
		ep := e.Epoch
		start := "cold"
		if ep.WarmAccepted {
			start = "warm"
		}
		solve := ""
		if ep.SolveMS > 0 {
			solve = fmt.Sprintf("%.1fms", ep.SolveMS)
		}
		fmt.Fprintf(tw, "  %.0fs\t%d\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
			e.T, ep.Epoch, start, ep.Jobs, ep.Pending, ep.Iters,
			ep.Launched, ep.Deferred, ep.BlocksMoved, solve)
	}
	tw.Flush()
}

func printSlowest(out io.Writer, dones []trace.Event, top int) {
	if len(dones) == 0 || top <= 0 {
		return
	}
	sorted := append([]trace.Event(nil), dones...)
	sort.SliceStable(sorted, func(a, b int) bool {
		return sorted[a].Task.DurSec > sorted[b].Task.DurSec
	})
	if len(sorted) > top {
		sorted = sorted[:top]
	}
	fmt.Fprintf(out, "\ntop %d slowest tasks:\n", len(sorted))
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  task\tnode\tstore\twall\txfer\tcpu-sec\tcost\tfinished")
	for _, e := range sorted {
		t := e.Task
		name := fmt.Sprintf("j%d/t%d", t.Job, t.Task)
		if t.Speculative {
			name += " (spec)"
		}
		fmt.Fprintf(tw, "  %s\tnode-%d\t%d\t%.0fs\t%.0fs\t%.0f\t%s\t%.0fs\n",
			name, t.Node, t.Store, t.DurSec, t.XferSec, t.CPUSec, usd(t.CostUC), e.T)
	}
	tw.Flush()
}

func printNodeUtil(out io.Writer, info *trace.RunInfo, dones []trace.Event, endT float64) {
	if len(dones) == 0 || endT <= 0 {
		return
	}
	busy := map[int]float64{}
	count := map[int]int{}
	for _, e := range dones {
		busy[e.Task.Node] += e.Task.DurSec
		count[e.Task.Node]++
	}
	nodes := make([]int, 0, len(busy))
	for n := range busy {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	fmt.Fprintln(out, "\nper-node utilization (completed-attempt occupancy):")
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  node\ttype\tzone\ttasks\tbusy\tutil")
	for _, n := range nodes {
		typ, zone, slots := "?", "?", 1
		if info != nil {
			if n >= 0 && n < len(info.Types) {
				typ = info.Types[n]
			}
			if n >= 0 && n < len(info.Zones) {
				zone = info.Zones[n]
			}
			if n >= 0 && n < len(info.Slots) {
				slots = info.Slots[n]
			}
		}
		util := busy[n] / (float64(slots) * endT)
		fmt.Fprintf(tw, "  node-%d\t%s\t%s\t%d\t%.0fs\t%.1f%%\n",
			n, typ, zone, count[n], busy[n], 100*util)
	}
	tw.Flush()
}
