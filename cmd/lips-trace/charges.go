package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"

	"lips/internal/cost"
	"lips/internal/trace"
)

// The trace's money-bearing events are the mirror of the simulator's
// charge chokepoint: every microcent the ledger books rides on exactly
// one done, kill or move event. eventCharges inverts that mapping, so
// -audit can rebuild the ledger from the stream and prove it against
// the cumulative sample snapshots, and -by-job can roll charges up to
// the jobs that caused them.

// charge is one (job, category, amount) booking recovered from an event.
// Job is -1 for money no single job caused (block moves, repairs).
type charge struct {
	job    int
	cat    cost.Category
	amount int64
}

// killCategory maps a kill reason to the ledger category its CostUC was
// billed under (the same mapping the simulator's kill sites use).
func killCategory(reason string) (cost.Category, bool) {
	switch reason {
	case "timeout":
		return cost.CatTransfer, true
	case "speculative", "preempt", "dequeue", "cancel":
		return cost.CatSpeculative, true
	case "node-crash", "store-loss":
		return cost.CatFault, true
	default:
		return "", false
	}
}

// moveCategory maps a move reason to its ledger category: planned and
// balancer moves are placement spend, fault repairs are fault spend.
func moveCategory(reason string) (cost.Category, bool) {
	switch reason {
	case "plan", "balance":
		return cost.CatPlacement, true
	case "re-replicate", "re-materialize":
		return cost.CatFault, true
	default:
		return "", false
	}
}

// eventCharges recovers the ledger bookings an event carries (nil for
// kinds that bill nothing). A done event splits into its CPU and
// transfer components; a kill bills its reason's category; a move is
// never job-attributed.
func eventCharges(e trace.Event) ([]charge, error) {
	switch e.Kind {
	case trace.KindDone:
		t := e.Task
		if t.XferUC > t.CostUC {
			return nil, fmt.Errorf("done j%d/t%d: transfer %d exceeds total %d", t.Job, t.Task, t.XferUC, t.CostUC)
		}
		ch := []charge{{job: t.Job, cat: cost.CatCPU, amount: t.CostUC - t.XferUC}}
		if t.XferUC > 0 {
			ch = append(ch, charge{job: t.Job, cat: cost.CatTransfer, amount: t.XferUC})
		}
		return ch, nil
	case trace.KindKill:
		cat, ok := killCategory(e.Task.Reason)
		if !ok {
			return nil, fmt.Errorf("kill j%d/t%d: unknown reason %q", e.Task.Job, e.Task.Task, e.Task.Reason)
		}
		if e.Task.CostUC == 0 {
			return nil, nil
		}
		return []charge{{job: e.Task.Job, cat: cat, amount: e.Task.CostUC}}, nil
	case trace.KindMove:
		cat, ok := moveCategory(e.Move.Reason)
		if !ok {
			return nil, fmt.Errorf("move %d/%d: unknown reason %q", e.Move.Object, e.Move.Block, e.Move.Reason)
		}
		if e.Move.CostUC == 0 {
			return nil, nil
		}
		return []charge{{job: -1, cat: cat, amount: e.Move.CostUC}}, nil
	default:
		return nil, nil
	}
}

// tenantOf resolves a charge's owning tenant from the run header's
// job→user table. Jobless charges and jobs with no recorded user land
// on the reserved unattributed tenant, mirroring Sim.charge. ok is
// false when the header cannot attribute the job (serve-mode traces
// carry no job table), which disables per-tenant auditing.
func tenantOf(info *trace.RunInfo, job int) (string, bool) {
	if job < 0 {
		return cost.UnattributedTenant, true
	}
	if info == nil || job >= len(info.JobUsers) {
		return "", false
	}
	if info.JobUsers[job] == "" {
		return cost.UnattributedTenant, true
	}
	return info.JobUsers[job], true
}

// auditRun streams one run's events in file order, rebuilding the
// cumulative per-category and per-tenant ledgers from the money-bearing
// events, and proves them — to the exact microcent — against every
// sample snapshot the producer embedded. A drift anywhere is an error
// naming the first diverging sample.
func auditRun(out io.Writer, r runGroup) error {
	name := "(headerless)"
	if r.info != nil {
		name = r.info.Scheduler
		if r.info.Label != "" {
			name = r.info.Label + " — " + name
		}
	}

	cats := make(map[cost.Category]int64)
	tenants := make(map[string]map[cost.Category]int64)
	var total int64
	tenantsOK := true
	charges, samples := 0, 0

	for i, e := range r.events {
		chs, err := eventCharges(e)
		if err != nil {
			return fmt.Errorf("audit %s: event %d: %v", name, i, err)
		}
		for _, ch := range chs {
			if ch.amount < 0 {
				return fmt.Errorf("audit %s: event %d: negative charge %d", name, i, ch.amount)
			}
			cats[ch.cat] += ch.amount
			total += ch.amount
			charges++
			if tn, ok := tenantOf(r.info, ch.job); ok {
				m := tenants[tn]
				if m == nil {
					m = make(map[cost.Category]int64)
					tenants[tn] = m
				}
				m[ch.cat] += ch.amount
			} else {
				tenantsOK = false
			}
		}
		if e.Kind != trace.KindSample {
			continue
		}
		samples++
		s := e.Sample
		for _, c := range []struct {
			cat  cost.Category
			want int64
		}{
			{cost.CatCPU, s.CPUUC}, {cost.CatTransfer, s.TransferUC},
			{cost.CatPlacement, s.PlacementUC}, {cost.CatSpeculative, s.SpeculativeUC},
			{cost.CatFault, s.FaultUC},
		} {
			if cats[c.cat] != c.want {
				return fmt.Errorf("audit %s: sample at t=%.0fs: %s rebuilt %s, ledger says %s",
					name, e.T, c.cat, usd(cats[c.cat]), usd(c.want))
			}
		}
		if total != s.TotalUC {
			return fmt.Errorf("audit %s: sample at t=%.0fs: total rebuilt %s, ledger says %s",
				name, e.T, usd(total), usd(s.TotalUC))
		}
		if !tenantsOK {
			continue
		}
		var tenantSum int64
		for _, tc := range s.Tenants {
			tenantSum += tc.TotalUC
			got := tenants[tc.Tenant]
			for _, c := range []struct {
				cat  cost.Category
				want int64
			}{
				{cost.CatCPU, tc.CPUUC}, {cost.CatTransfer, tc.TransferUC},
				{cost.CatPlacement, tc.PlacementUC}, {cost.CatSpeculative, tc.SpeculativeUC},
				{cost.CatFault, tc.FaultUC},
			} {
				if got[c.cat] != c.want {
					return fmt.Errorf("audit %s: sample at t=%.0fs: tenant %s %s rebuilt %s, ledger says %s",
						name, e.T, tc.Tenant, c.cat, usd(got[c.cat]), usd(c.want))
				}
			}
		}
		if tenantSum != s.TotalUC {
			return fmt.Errorf("audit %s: sample at t=%.0fs: tenant chargebacks sum to %s, ledger total is %s",
				name, e.T, usd(tenantSum), usd(s.TotalUC))
		}
		for tn, m := range tenants {
			var sum int64
			for _, v := range m {
				sum += v
			}
			if sum == 0 {
				continue
			}
			found := false
			for _, tc := range s.Tenants {
				if tc.Tenant == tn {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("audit %s: sample at t=%.0fs: rebuilt tenant %s (%s) missing from ledger",
					name, e.T, tn, usd(sum))
			}
		}
	}

	if samples == 0 {
		return fmt.Errorf("audit %s: no sample snapshots to reconcile against (trace produced without -sample?)", name)
	}
	fmt.Fprintf(out, "audit %s: OK — %d charge bookings over %d samples reconciled to the microcent, %s total",
		name, charges, samples, usd(total))
	if tenantsOK {
		names := make([]string, 0, len(tenants))
		for tn := range tenants {
			names = append(names, tn)
		}
		sort.Strings(names)
		fmt.Fprintf(out, " across %d tenants %v\n", len(names), names)
	} else {
		fmt.Fprintf(out, " (no job→tenant table in the run header; tenant lines not audited)\n")
	}
	return nil
}

// jobBill is one job's rolled-up charges across every attempt, kill and
// repair billed to it.
type jobBill struct {
	job     int
	name    string
	tenant  string
	done    int // completed attempts
	kills   int
	cpuSec  float64
	byCat   map[cost.Category]int64
	totalUC int64
}

// rollupJobs accumulates per-job bills from one run's money-bearing
// events. Jobless charges aggregate under the pseudo-entry job=-1 so
// the rollup still sums to the run total.
func rollupJobs(r runGroup) ([]*jobBill, error) {
	bills := make(map[int]*jobBill)
	get := func(job int) *jobBill {
		b := bills[job]
		if b == nil {
			b = &jobBill{job: job, byCat: make(map[cost.Category]int64)}
			b.name = fmt.Sprintf("j%d", job)
			b.tenant = "?"
			if job < 0 {
				b.name = "(system)"
				b.tenant = cost.UnattributedTenant
			} else if r.info != nil {
				if job < len(r.info.JobNames) && r.info.JobNames[job] != "" {
					b.name = r.info.JobNames[job]
				}
				if tn, ok := tenantOf(r.info, job); ok {
					b.tenant = tn
				}
			}
			bills[job] = b
		}
		return b
	}
	for i, e := range r.events {
		chs, err := eventCharges(e)
		if err != nil {
			return nil, fmt.Errorf("event %d: %v", i, err)
		}
		for _, ch := range chs {
			b := get(ch.job)
			b.byCat[ch.cat] += ch.amount
			b.totalUC += ch.amount
		}
		switch e.Kind {
		case trace.KindDone:
			b := get(e.Task.Job)
			b.done++
			b.cpuSec += e.Task.CPUSec
		case trace.KindKill:
			get(e.Task.Job).kills++
		}
	}
	out := make([]*jobBill, 0, len(bills))
	for _, b := range bills {
		out = append(out, b)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].totalUC != out[b].totalUC {
			return out[a].totalUC > out[b].totalUC
		}
		return out[a].job < out[b].job
	})
	return out, nil
}

// printByJob renders the top-N most expensive jobs of one run.
func printByJob(out io.Writer, r runGroup, top int) error {
	bills, err := rollupJobs(r)
	if err != nil {
		return err
	}
	var totalUC int64
	for _, b := range bills {
		totalUC += b.totalUC
	}
	shown := bills
	if len(shown) > top {
		shown = shown[:top]
	}
	fmt.Fprintf(out, "\ntop %d most expensive jobs (of %d billed, %s total):\n", len(shown), len(bills), usd(totalUC))
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  job\ttenant\tdone\tkills\tcpu-sec\tcpu\ttransfer\tspec\tfault\ttotal\tshare")
	for _, b := range shown {
		share := 0.0
		if totalUC > 0 {
			share = 100 * float64(b.totalUC) / float64(totalUC)
		}
		fmt.Fprintf(tw, "  %s\t%s\t%d\t%d\t%.0f\t%s\t%s\t%s\t%s\t%s\t%.1f%%\n",
			b.name, b.tenant, b.done, b.kills, b.cpuSec,
			usd(b.byCat[cost.CatCPU]), usd(b.byCat[cost.CatTransfer]),
			usd(b.byCat[cost.CatSpeculative]), usd(b.byCat[cost.CatFault]),
			usd(b.totalUC), share)
	}
	return tw.Flush()
}

// writeByJobCSV exports every run's full job rollup (not just the top
// N) as CSV: one row per billed job, amounts in exact microcents.
func writeByJobCSV(path string, runs []runGroup) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "run,job,name,tenant,done,kills,cpu_sec,cpu_uc,transfer_uc,placement_uc,speculative_uc,fault_uc,total_uc")
	for ri, r := range runs {
		bills, err := rollupJobs(r)
		if err != nil {
			f.Close()
			return err
		}
		for _, b := range bills {
			fmt.Fprintf(w, "%d,%d,%s,%s,%d,%d,%.3f,%d,%d,%d,%d,%d,%d\n",
				ri, b.job, b.name, b.tenant, b.done, b.kills, b.cpuSec,
				b.byCat[cost.CatCPU], b.byCat[cost.CatTransfer], b.byCat[cost.CatPlacement],
				b.byCat[cost.CatSpeculative], b.byCat[cost.CatFault], b.totalUC)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
