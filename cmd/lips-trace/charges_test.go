package main

import (
	"os"
	"strings"
	"testing"

	"lips/internal/trace"
)

// chargedTrace writes a two-job, two-tenant trace whose embedded sample
// snapshots agree with the money-bearing events to the microcent.
// mutate edits the event list before writing, so drift tests can cook
// one number.
func chargedTrace(t *testing.T, mutate func([]trace.Event)) string {
	t.Helper()
	events := []trace.Event{
		{T: 0, Kind: trace.KindRun, Run: &trace.RunInfo{
			Scheduler: "lips(e=600s)", Nodes: 2, Stores: 2, Jobs: 2, Tasks: 3,
			JobNames: []string{"jA", "jB"}, JobUsers: []string{"alice", ""}}},
		{T: 100, Kind: trace.KindDone, Task: &trace.TaskInfo{
			Job: 0, Task: 0, Node: 0, Store: 0, DurSec: 90, CPUSec: 85, CostUC: 100, XferUC: 40}},
		{T: 110, Kind: trace.KindKill, Task: &trace.TaskInfo{
			Job: 1, Task: 0, Node: 1, Store: -1, Reason: "timeout", CostUC: 10}},
		{T: 120, Kind: trace.KindKill, Task: &trace.TaskInfo{
			Job: 0, Task: 1, Node: 0, Store: -1, Reason: "preempt", CostUC: 5}},
		{T: 130, Kind: trace.KindMove, Move: &trace.MoveInfo{
			Object: 0, Block: 0, Src: 0, Dst: 1, MB: 64, Reason: "plan", CostUC: 7}},
		{T: 140, Kind: trace.KindMove, Move: &trace.MoveInfo{
			Object: 0, Block: 1, Src: 0, Dst: 1, MB: 64, Reason: "re-replicate", CostUC: 3}},
		{T: 200, Kind: trace.KindSample, Sample: &trace.SampleInfo{
			Done: 1, FreeSlots: 4, LiveSlots: 4,
			TotalUC: 125, CPUUC: 60, TransferUC: 50, PlacementUC: 7, SpeculativeUC: 5, FaultUC: 3,
			Tenants: []trace.TenantCost{
				{Tenant: "_system", TotalUC: 20, TransferUC: 10, PlacementUC: 7, FaultUC: 3},
				{Tenant: "alice", TotalUC: 105, CPUUC: 60, TransferUC: 40, SpeculativeUC: 5},
			}}},
	}
	if mutate != nil {
		mutate(events)
	}
	path := t.TempDir() + "/charged.jsonl"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := trace.NewJSONL(f)
	for _, e := range events {
		sink.Emit(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAuditReconciles(t *testing.T) {
	path := chargedTrace(t, nil)
	var out strings.Builder
	if err := run(&out, path, 5, "", false, false, 0, true); err != nil {
		t.Fatalf("audit failed on a consistent trace: %v", err)
	}
	got := out.String()
	for _, want := range []string{"OK", "reconciled to the microcent", "_system", "alice"} {
		if !strings.Contains(got, want) {
			t.Errorf("audit output missing %q:\n%s", want, got)
		}
	}
}

func TestAuditCatchesCategoryDrift(t *testing.T) {
	path := chargedTrace(t, func(events []trace.Event) {
		s := events[len(events)-1].Sample
		s.CPUUC++ // one microcent of CPU the events never billed
		s.TotalUC++
		s.Tenants[1].CPUUC++
		s.Tenants[1].TotalUC++
	})
	err := run(&strings.Builder{}, path, 5, "", false, false, 0, true)
	if err == nil || !strings.Contains(err.Error(), "cpu") {
		t.Fatalf("audit missed a one-microcent category drift: %v", err)
	}
}

func TestAuditCatchesTenantDrift(t *testing.T) {
	// Shift one transfer microcent from alice to _system: the category
	// totals still balance, only the chargeback attribution is wrong.
	path := chargedTrace(t, func(events []trace.Event) {
		s := events[len(events)-1].Sample
		s.Tenants[0].TransferUC++
		s.Tenants[0].TotalUC++
		s.Tenants[1].TransferUC--
		s.Tenants[1].TotalUC--
	})
	err := run(&strings.Builder{}, path, 5, "", false, false, 0, true)
	if err == nil || !strings.Contains(err.Error(), "tenant") {
		t.Fatalf("audit missed a cross-tenant misattribution: %v", err)
	}
}

func TestAuditRequiresSamples(t *testing.T) {
	path := chargedTrace(t, nil)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	trimmed := strings.Join(lines[:len(lines)-1], "\n") + "\n" // drop the sample
	if err := os.WriteFile(path, []byte(trimmed), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&strings.Builder{}, path, 5, "", false, false, 0, true); err == nil {
		t.Error("audit passed a trace with nothing to reconcile against")
	}
}

func TestByJobReport(t *testing.T) {
	path := chargedTrace(t, nil)
	var out strings.Builder
	if err := run(&out, path, 5, "", false, false, 3, false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"most expensive jobs", "jA", "jB", "alice", "(system)", "_system"} {
		if !strings.Contains(got, want) {
			t.Errorf("by-job report missing %q:\n%s", want, got)
		}
	}
	// jA ($105) outspends the system bucket ($10) and jB ($0.10... i.e. 10uc).
	if strings.Index(got, "jA") > strings.Index(got, "jB") {
		t.Error("jobs not sorted by total spend")
	}
}

func TestByJobCSV(t *testing.T) {
	path := chargedTrace(t, nil)
	csvPath := t.TempDir() + "/jobs.csv"
	var out strings.Builder
	if err := run(&out, path, 5, csvPath, false, false, 2, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 4 { // header + jA + (system) + jB — the CSV is never top-N truncated
		t.Fatalf("want 4 CSV lines, got %d:\n%s", len(lines), data)
	}
	if !strings.HasPrefix(lines[0], "run,job,name,tenant,") {
		t.Errorf("bad CSV header %q", lines[0])
	}
	if !strings.Contains(lines[1], "jA,alice") || !strings.HasSuffix(lines[1], ",105") {
		t.Errorf("bad jA row %q", lines[1])
	}
}
