// Command lips-sim runs one MapReduce scheduling simulation and prints
// the dollar cost, makespan, locality and utilization.
//
// Usage:
//
//	lips-sim [-cluster paper20|paper100|random] [-frac-c1 0.5] [-nodes 40]
//	         [-workload paper|swim|random] [-jobs 60] [-tasks 400]
//	         [-scheduler fifo|delay|fair|lips] [-epoch 600]
//	         [-speculative] [-bill-occupancy] [-seed 1] [-v]
//	         [-faults 0] [-fault-stores 0] [-fault-slowdowns 0] [-fault-seed 0]
//	         [-trace FILE] [-trace-format jsonl|chrome] [-sample-interval 60]
//	         [-trace-timings] [-listen :8080]
//	         [-cpuprofile FILE] [-memprofile FILE]
//
// Examples:
//
//	lips-sim -cluster paper20 -frac-c1 0.5 -workload paper -scheduler lips
//	lips-sim -cluster paper100 -workload swim -jobs 400 -scheduler delay
//	lips-sim -scheduler lips -trace run.jsonl            # inspect with lips-trace
//	lips-sim -scheduler lips -trace run.json -trace-format chrome  # open in Perfetto
//	lips-sim -scheduler lips -workload swim -listen :8080  # scrape /metrics live
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/hdfs"
	"lips/internal/metrics"
	"lips/internal/obs"
	"lips/internal/sched"
	"lips/internal/sim"
	"lips/internal/trace"
	"lips/internal/workload"
)

func main() {
	var (
		clusterKind = flag.String("cluster", "paper20", "paper20, paper100 or random")
		fracC1      = flag.Float64("frac-c1", 0.5, "fraction of c1.medium nodes for -cluster paper20")
		nodes       = flag.Int("nodes", 40, "node count for -cluster random")
		wlKind      = flag.String("workload", "paper", "paper, swim or random")
		jobs        = flag.Int("jobs", 60, "job count for -workload swim")
		tasks       = flag.Int("tasks", 400, "task count for -workload random")
		scale       = flag.Int("scale", 0, "large-cluster shortcut: random cluster with N nodes and 100×N random tasks (overrides -cluster and -workload; -tasks still wins if set)")
		scheduler   = flag.String("scheduler", "lips", "fifo, delay, fair, lips or scale")
		epoch       = flag.Float64("epoch", 600, "LiPS epoch in seconds")
		speculative = flag.Bool("speculative", false, "enable speculative execution")
		occupancy   = flag.Bool("bill-occupancy", false, "bill wall-clock slot occupancy instead of CPU seconds")
		sharedLinks = flag.Bool("shared-links", false, "transfers contend for zone-pair bandwidth (processor sharing)")
		balance     = flag.Bool("balance", false, "run the HDFS balancer on the initial placement first")
		seed        = flag.Int64("seed", 1, "random seed")
		verbose     = flag.Bool("v", false, "print per-job and per-node detail")

		faults    = flag.Int("faults", 0, "inject this many node crash+recovery pairs")
		faultSt   = flag.Int("fault-stores", 0, "inject this many store data losses")
		faultSlow = flag.Int("fault-slowdowns", 0, "inject this many straggler slowdown windows")
		faultSeed = flag.Int64("fault-seed", 0, "fault-plan seed (0 = the -seed value)")

		tracePath    = flag.String("trace", "", "write a structured run trace to this file")
		traceFormat  = flag.String("trace-format", "jsonl", "trace format: jsonl or chrome (Perfetto)")
		sampleEvery  = flag.Float64("sample-interval", 60, "simulated seconds between time-series samples (0 disables)")
		traceTimings = flag.Bool("trace-timings", false, "include wall-clock LP timings in epoch events (machine-dependent)")

		listen     = flag.String("listen", "", "serve /metrics, /progress, /healthz and /debug/pprof on this address (e.g. :8080)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	logOpts := obs.LogFlags()
	flag.Parse()
	logger, lerr := logOpts.Logger(os.Stderr)
	if lerr != nil {
		fmt.Fprintln(os.Stderr, "lips-sim:", lerr)
		os.Exit(2)
	}
	if *scale > 0 {
		*clusterKind, *nodes, *wlKind = "random", *scale, "random"
		tasksSet := false
		flag.Visit(func(f *flag.Flag) { tasksSet = tasksSet || f.Name == "tasks" })
		if !tasksSet {
			*tasks = 100 * *scale
		}
	}
	prof, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lips-sim:", err)
		os.Exit(1)
	}
	cfg := config{
		Cluster: *clusterKind, FracC1: *fracC1, Nodes: *nodes,
		Workload: *wlKind, Jobs: *jobs, Tasks: *tasks,
		Scheduler: *scheduler, Epoch: *epoch,
		Speculative: *speculative, BillOccupancy: *occupancy,
		SharedLinks: *sharedLinks, Balance: *balance,
		Seed: *seed, Verbose: *verbose,
		FaultCrashes: *faults, FaultStores: *faultSt, FaultSlowdowns: *faultSlow,
		FaultSeed: *faultSeed,
		TracePath: *tracePath, TraceFormat: *traceFormat,
		SampleInterval: *sampleEvery, TraceTimings: *traceTimings,
		Listen: *listen,
	}
	logger.Debug("run config",
		"cluster", cfg.Cluster, "nodes", cfg.Nodes, "workload", cfg.Workload,
		"jobs", cfg.Jobs, "scheduler", cfg.Scheduler, "seed", cfg.Seed)
	err = runCfg(cfg)
	if perr := prof.Stop(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lips-sim:", err)
		os.Exit(1)
	}
}

// config carries one simulation's command-line settings.
type config struct {
	Cluster   string
	FracC1    float64
	Nodes     int
	Workload  string
	Jobs      int
	Tasks     int
	Scheduler string
	Epoch     float64

	Speculative   bool
	BillOccupancy bool
	SharedLinks   bool
	Balance       bool

	Seed    int64
	Verbose bool

	FaultCrashes   int
	FaultStores    int
	FaultSlowdowns int
	FaultSeed      int64

	TracePath      string
	TraceFormat    string
	SampleInterval float64
	TraceTimings   bool

	Listen string
}

// run keeps the old positional signature for the tests.
func run(clusterKind string, fracC1 float64, nodes int, wlKind string, jobs, tasks int,
	scheduler string, epoch float64, speculative, occupancy bool, seed int64, verbose bool) error {
	return runCfg(config{
		Cluster: clusterKind, FracC1: fracC1, Nodes: nodes,
		Workload: wlKind, Jobs: jobs, Tasks: tasks,
		Scheduler: scheduler, Epoch: epoch,
		Speculative: speculative, BillOccupancy: occupancy,
		Seed: seed, Verbose: verbose,
	})
}

func runCfg(cfg config) error {
	clusterKind, fracC1, nodes := cfg.Cluster, cfg.FracC1, cfg.Nodes
	wlKind, jobs, tasks := cfg.Workload, cfg.Jobs, cfg.Tasks
	scheduler, epoch := cfg.Scheduler, cfg.Epoch
	speculative, occupancy := cfg.Speculative, cfg.BillOccupancy
	seed, verbose := cfg.Seed, cfg.Verbose
	rng := rand.New(rand.NewSource(seed))

	var c *cluster.Cluster
	switch clusterKind {
	case "paper20":
		c = cluster.Paper20(fracC1)
	case "paper100":
		c = cluster.Paper100()
	case "random":
		c = cluster.Random(rng, cluster.RandomSpec{Nodes: nodes})
	default:
		return fmt.Errorf("unknown cluster %q", clusterKind)
	}
	stores := c.StoreIDs()

	var w *workload.Workload
	switch wlKind {
	case "paper":
		w = workload.PaperJobSet(rng, stores)
	case "swim":
		w = workload.SWIM(rng, stores, workload.SWIMSpec{Jobs: jobs, DurationSec: 24 * 3600})
	case "random":
		w = workload.Random(rng, stores, workload.RandomSpec{TotalTasks: tasks})
	default:
		return fmt.Errorf("unknown workload %q", wlKind)
	}
	var sink trace.Sink
	if cfg.TracePath != "" {
		var terr error
		sink, terr = trace.NewSink(cfg.TracePath, cfg.TraceFormat)
		if terr != nil {
			return terr
		}
	}

	placement := w.Placement()
	placement.Shuffle(rng, stores)
	if cfg.Balance {
		moves := hdfs.Balance(c, placement, 0.1)
		if sink != nil {
			hdfs.EmitMoves(sink, 0, placement, moves, "balance")
		}
		fmt.Printf("balancer: %d blocks relocated before scheduling\n", len(moves))
	}

	opts := sim.Options{
		Speculative: speculative, BillOccupancy: occupancy,
		SharedLinks: cfg.SharedLinks,
	}
	if sink != nil {
		opts.Tracer = sink
		opts.SampleIntervalSec = cfg.SampleInterval
	}
	if cfg.Listen != "" {
		reg := obs.NewRegistry()
		srv, serr := obs.Serve(cfg.Listen, reg)
		if serr != nil {
			return serr
		}
		defer srv.Close()
		fmt.Printf("metrics: serving %s/metrics\n", srv.URL())
		opts.Metrics = reg
		opts.MetricsSampleSec = cfg.SampleInterval
	}
	if cfg.FaultCrashes > 0 || cfg.FaultStores > 0 || cfg.FaultSlowdowns > 0 {
		fseed := cfg.FaultSeed
		if fseed == 0 {
			fseed = seed
		}
		opts.Faults = sim.RandomFaultPlan(fseed, c, sim.FaultSpec{
			Crashes: cfg.FaultCrashes, StoreLosses: cfg.FaultStores, Slowdowns: cfg.FaultSlowdowns,
		})
	}
	var s sim.Scheduler
	switch scheduler {
	case "fifo":
		s = sched.NewFIFO()
	case "delay":
		s = sched.NewDelay()
	case "fair":
		s = sched.NewFair()
	case "lips":
		l := sched.NewLiPS(epoch)
		l.TraceTimings = cfg.TraceTimings
		s = l
		opts.TaskTimeoutSec = 1200
	case "scale":
		s = sched.NewScale()
	default:
		return fmt.Errorf("unknown scheduler %q", scheduler)
	}

	fmt.Printf("cluster: %s (%d nodes, %.0f ECU, %d zones)\n",
		clusterKind, len(c.Nodes), c.TotalECU(), len(c.Zones))
	fmt.Printf("workload: %s (%d jobs, %d tasks, %.1f GB input, %.0f ECU-sec demand)\n",
		wlKind, len(w.Jobs), w.TotalTasks(), w.TotalInputMB()/1024, w.TotalCPUSec())

	result, err := sim.New(c, w, placement, s, opts).Run()
	if sink != nil {
		if cerr := sink.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("trace: %w", cerr)
		}
		fmt.Printf("trace: %d events written to %s\n", sink.Events(), cfg.TracePath)
	}
	if err != nil {
		return err
	}
	if l, ok := s.(*sched.LiPS); ok {
		if l.Err != nil {
			return fmt.Errorf("lips scheduler: %w", l.Err)
		}
		fmt.Printf("lips: %d epochs, %d LP iterations, %v total solve time, %d blocks relocated\n",
			l.Epochs, l.LPIters, l.SolveTime, l.BlocksMoved)
	}

	fmt.Printf("\nscheduler: %s\n", result.Scheduler)
	fmt.Printf("total cost: %v (%s)\n", result.TotalCost(), result.Cost)
	fmt.Printf("makespan: %.0f s;  Σ job time: %.0f s\n", result.Makespan, result.SumJobSec)
	fmt.Printf("locality: %.1f%% node-local (%d local / %d zone / %d remote / %d no-input)\n",
		100*result.Locality.LocalFraction(),
		result.Locality.Count(metrics.NodeLocal), result.Locality.Count(metrics.ZoneLocal),
		result.Locality.Count(metrics.Remote), result.Locality.Count(metrics.NoInput))
	fmt.Printf("utilization: %.1f%%;  fairness (Jain over users): %.3f\n",
		100*result.Utilization, result.Fairness)
	if result.Faults.Any() {
		fmt.Printf("faults: %s; failure cost %v\n", result.Faults, result.Cost.Category(cost.CatFault))
	}

	if verbose {
		fmt.Println("\nper-job completion:")
		for j, done := range result.JobDone {
			fmt.Printf("  %-24s arrive=%8.0fs done=%8.0fs cost=%v\n",
				w.Jobs[j].Name, w.Jobs[j].ArrivalSec, done, result.Cost.Job(w.Jobs[j].Name))
		}
		fmt.Println("\nper-node accumulated CPU time (ECU-seconds):")
		ids := result.NodeCPU.Nodes()
		sort.Slice(ids, func(a, b int) bool {
			return result.NodeCPU.Of(ids[a]) > result.NodeCPU.Of(ids[b])
		})
		for _, n := range ids {
			nd := c.Nodes[n]
			fmt.Printf("  node-%-3d %-10s %-12s %8.0f\n", n, nd.Type, nd.Zone, result.NodeCPU.Of(n))
		}
	}
	return nil
}
