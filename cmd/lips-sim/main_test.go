package main

import "testing"

func TestRunAllSchedulers(t *testing.T) {
	for _, sched := range []string{"fifo", "delay", "fair", "lips"} {
		if err := run("paper20", 0.5, 0, "random", 0, 60, sched, 400, false, false, 1, false); err != nil {
			t.Errorf("%s: %v", sched, err)
		}
	}
}

func TestRunClusterKinds(t *testing.T) {
	if err := run("random", 0, 12, "random", 0, 40, "fifo", 0, false, false, 2, true); err != nil {
		t.Errorf("random cluster: %v", err)
	}
	if err := run("paper100", 0, 0, "swim", 20, 0, "delay", 0, false, false, 3, false); err != nil {
		t.Errorf("paper100/swim: %v", err)
	}
}

func TestRunPaperWorkloadOptions(t *testing.T) {
	if err := run("paper20", 0.25, 0, "paper", 0, 0, "lips", 800, false, true, 1, false); err != nil {
		t.Errorf("paper workload: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("moon-base", 0, 0, "random", 0, 10, "fifo", 0, false, false, 1, false); err == nil {
		t.Error("unknown cluster accepted")
	}
	if err := run("paper20", 0, 0, "nope", 0, 10, "fifo", 0, false, false, 1, false); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run("paper20", 0, 0, "random", 0, 10, "nope", 0, false, false, 1, false); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestRunCfgExtras(t *testing.T) {
	cfg := config{
		Cluster: "paper20", FracC1: 0.5, Workload: "random", Tasks: 60,
		Scheduler: "fifo", SharedLinks: true, Balance: true, Seed: 4,
	}
	if err := runCfg(cfg); err != nil {
		t.Fatal(err)
	}
}
