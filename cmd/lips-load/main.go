// lips-load drives a lips-serve daemon with open-loop load: submissions
// fire at a fixed rate regardless of how fast the daemon answers, so a
// slow or saturated daemon accumulates in-flight requests instead of
// silently throttling the generator (the coordinated-omission trap).
//
//	lips-load -addr http://127.0.0.1:8080 -rate 500 -total 1000
//
// It prints a JSON summary with latency quantiles over every submission
// that got an HTTP response — 429s included, since fast load-shedding is
// exactly what backpressure promises. With -slo-p99-ms set, a p99 above
// the bound exits 1. -tenant-weights skews the tenant mix (5,1,1,1 puts
// ~5/8 of submissions on tenant-0) without changing the pacing schedule.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"lips/internal/obs"
)

type summary struct {
	Sent     int     `json:"sent"`
	Accepted int     `json:"accepted"`
	Rejected int     `json:"rejected"` // 429: shed by backpressure
	Draining int     `json:"draining"` // 503: daemon shutting down
	Errors   int     `json:"errors"`   // transport failures and 4xx/5xx beyond the above
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
}

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "lips-serve base URL")
		rate     = flag.Float64("rate", 200, "submissions per second (open loop)")
		total    = flag.Int("total", 1000, "submissions to send")
		tenants  = flag.Int("tenants", 4, "tenant names to rotate through")
		weights  = flag.String("tenant-weights", "", "comma-separated integer weights skewing the tenant mix (e.g. 5,1,1,1); the count overrides -tenants")
		arch     = flag.String("archetype", "grep", "archetype to submit")
		inputMB  = flag.Float64("input-mb", 256, "input size per job (input archetypes)")
		tasks    = flag.Int("tasks", 8, "tasks per job (pi archetype)")
		seed     = flag.Int64("seed", 1, "seed for the tenant rotation jitter")
		sloP99Ms = flag.Float64("slo-p99-ms", 0, "exit 1 if p99 submit latency exceeds this (0 = off)")
		outCSV   = flag.String("out-csv", "", "write one CSV row per request (seq,tenant,status,latency_ms,retry_after_sec)")
	)
	logOpts := obs.LogFlags()
	flag.Parse()
	logger, err := logOpts.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lips-load: %v\n", err)
		os.Exit(2)
	}
	if *rate <= 0 || *total <= 0 || *tenants <= 0 {
		fmt.Fprintln(os.Stderr, "lips-load: -rate, -total and -tenants must be positive")
		os.Exit(2)
	}
	pick, err := tenantPicker(*tenants, *weights)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lips-load: %v\n", err)
		os.Exit(2)
	}
	logger.Debug("load config", "addr", *addr, "rate", *rate, "total", *total, "tenants", *tenants, "weights", *weights)

	client := &http.Client{Timeout: 10 * time.Second}
	rng := rand.New(rand.NewSource(*seed))
	interval := time.Duration(float64(time.Second) / *rate)
	start := time.Now()

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		sum       summary
		latencies = make([]float64, 0, *total)
		rows      []requestRow
	)
	if *outCSV != "" {
		rows = make([]requestRow, *total)
	}
	for i := 0; i < *total; i++ {
		// Open loop: pace off the schedule, not off responses.
		next := start.Add(time.Duration(i) * interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		tenant := fmt.Sprintf("tenant-%d", pick(rng))
		wg.Add(1)
		go func(seq int, tenant string) {
			defer wg.Done()
			code, ms, retryAfter := submit(client, *addr, tenant, *arch, *inputMB, *tasks)
			mu.Lock()
			defer mu.Unlock()
			if rows != nil {
				rows[seq] = requestRow{tenant: tenant, status: code, ms: ms, retryAfter: retryAfter}
			}
			sum.Sent++
			switch {
			case code == http.StatusAccepted:
				sum.Accepted++
			case code == http.StatusTooManyRequests:
				sum.Rejected++
			case code == http.StatusServiceUnavailable:
				sum.Draining++
			default:
				sum.Errors++
			}
			if ms >= 0 {
				latencies = append(latencies, ms)
			}
		}(i, tenant)
	}
	wg.Wait()

	if *outCSV != "" {
		if err := writeCSV(*outCSV, rows); err != nil {
			fmt.Fprintf(os.Stderr, "lips-load: %v\n", err)
			os.Exit(1)
		}
	}

	sort.Float64s(latencies)
	if n := len(latencies); n > 0 {
		sum.P50Ms = latencies[n/2]
		sum.P99Ms = latencies[n*99/100]
		sum.MaxMs = latencies[n-1]
	}
	out, _ := json.MarshalIndent(sum, "", "  ")
	fmt.Println(string(out))

	if sum.Errors > 0 {
		fmt.Fprintf(os.Stderr, "lips-load: %d submissions errored\n", sum.Errors)
		os.Exit(1)
	}
	if *sloP99Ms > 0 && sum.P99Ms > *sloP99Ms {
		fmt.Fprintf(os.Stderr, "lips-load: p99 %.2fms over SLO %.2fms\n", sum.P99Ms, *sloP99Ms)
		os.Exit(1)
	}
}

// tenantPicker returns the tenant-index sampler. With no -tenant-weights
// the n tenants are uniform; with weights like "5,1,1,1" each index is
// drawn in proportion to its weight (and the weight count sets the
// tenant count), so a chargeback test can steer most of the spend onto
// one hog tenant without touching the submission schedule.
func tenantPicker(n int, weights string) (func(*rand.Rand) int, error) {
	if weights == "" {
		return func(rng *rand.Rand) int { return rng.Intn(n) }, nil
	}
	parts := strings.Split(weights, ",")
	w := make([]int, len(parts))
	sum := 0
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("-tenant-weights: want positive integers, got %q", p)
		}
		w[i] = v
		sum += v
	}
	return func(rng *rand.Rand) int {
		r := rng.Intn(sum)
		for i, v := range w {
			if r < v {
				return i
			}
			r -= v
		}
		return len(w) - 1 // unreachable: the weights sum to sum
	}, nil
}

// requestRow is one per-request CSV record, indexed by send order.
type requestRow struct {
	tenant     string
	status     int
	ms         float64
	retryAfter int
}

// writeCSV dumps the per-request log: one row per submission in send
// order, with the Retry-After seconds the daemon attached to 429/503
// responses (0 otherwise).
func writeCSV(path string, rows []requestRow) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "seq,tenant,status,latency_ms,retry_after_sec")
	for i, r := range rows {
		fmt.Fprintf(w, "%d,%s,%d,%.3f,%d\n", i, r.tenant, r.status, r.ms, r.retryAfter)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// submit POSTs one job and returns the HTTP status (0 on transport
// failure), the wall latency in milliseconds (-1 on failure), and the
// Retry-After header seconds (0 when absent).
func submit(client *http.Client, addr, tenant, arch string, inputMB float64, tasks int) (int, float64, int) {
	req := map[string]any{"tenant": tenant, "archetype": arch}
	if arch == "pi" {
		req["tasks"] = tasks
	} else {
		req["input_mb"] = inputMB
	}
	body, _ := json.Marshal(req)
	t0 := time.Now()
	resp, err := client.Post(addr+"/submit", "application/json", bytes.NewReader(body))
	ms := float64(time.Since(t0).Microseconds()) / 1000
	if err != nil {
		return 0, -1, 0
	}
	retryAfter, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	return resp.StatusCode, ms, retryAfter
}
