package sim

import (
	"math"
	"testing"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/workload"
)

func TestKillTaskRunningBillsPartialBurn(t *testing.T) {
	// Preempt task 0 halfway: 32 of its 64 ECU-sec are burned and billed,
	// and the task re-runs to completion.
	c := oneNodeCluster()
	w := twoTaskJob()
	ss := greedyStub()
	ss.init = func(s *Sim) {
		s.At(32.64, func() {
			if err := s.KillTask(0, 0); err != nil {
				t.Errorf("KillTask(running): %v", err)
			}
		})
	}
	s := New(c, w, nil, ss, Options{})
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Launched t=0, transfer done 0.64, killed 32.64: burned 32 ECU-sec.
	if got := r.Cost.Category(cost.CatSpeculative); got != cost.CPUCost(cost.Millicents(1), 32) {
		t.Errorf("preemption burn = %v, want 32 mc", got)
	}
	// The re-run still bills its full demand.
	if got := r.Cost.Category(cost.CatCPU); got != cost.Millicents(128) {
		t.Errorf("cpu cost = %v, want 128 mc", got)
	}
	// Re-run from 32.64 on the freed slot: 32.64 + 0.64 + 64.
	if math.Abs(r.Makespan-97.28) > 1e-6 {
		t.Errorf("makespan = %g, want 97.28", r.Makespan)
	}
}

func TestKillTaskQueuedAndInvalidStates(t *testing.T) {
	c := oneNodeCluster()
	w := twoTaskJob()
	ss := &stubSched{}
	ss.onArrival = func(s *Sim, j int) {
		// Pending tasks cannot be killed.
		if err := s.KillTask(j, 0); err == nil {
			t.Error("KillTask accepted a Pending task")
		}
		if err := s.Enqueue(j, 0, 0, 0, s.Now()+1e6); err != nil {
			t.Fatal(err)
		}
		// Queued tasks dequeue back to Pending.
		if err := s.KillTask(j, 0); err != nil {
			t.Errorf("KillTask(queued): %v", err)
		}
		if got := len(s.PendingTasks(j)); got != 2 {
			t.Errorf("pending after queued kill = %d, want 2", got)
		}
		_ = s.Launch(j, 0, 0, 0)
		_ = s.Launch(j, 1, 0, 0)
	}
	ss.onTaskDone = func(s *Sim, j, task int) {
		if err := s.KillTask(j, task); err == nil {
			t.Error("KillTask accepted a Done task")
		}
	}
	if _, err := New(c, w, nil, ss, Options{}).Run(); err != nil {
		t.Fatal(err)
	}
}

func TestKillAttemptAfterSpeculativeWin(t *testing.T) {
	// The speculative copy wins; the superseded primary bills half its
	// demand as speculative waste (killAttempt's documented estimate).
	b := cluster.NewBuilder("za")
	b.AddNode("za", "slow", 0.1, 1, cost.Millicents(1), 1e6)
	b.AddNode("za", "fast", 10, 1, cost.Millicents(1), 1e6)
	c := b.Build()
	wb := workload.NewBuilder()
	wb.AddNoInputJob("j", "u", 1, 100, 0)
	w := wb.Build()
	ss := &stubSched{}
	ss.onArrival = func(s *Sim, j int) {
		if err := s.Launch(j, 0, 0, NoStore); err != nil {
			t.Error(err)
		}
		if !s.LaunchSpeculative(1) {
			t.Error("speculative launch refused")
		}
	}
	r, err := New(c, w, nil, ss, Options{Speculative: true}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Cost.Category(cost.CatSpeculative); got != cost.CPUCost(cost.Millicents(1), 50) {
		t.Errorf("killed primary billed %v, want half its 100 ECU-sec demand (50 mc)", got)
	}
	// The winning copy bills its full demand at its own node's price.
	if got := r.Cost.Category(cost.CatCPU); got != cost.CPUCost(cost.Millicents(1), 100) {
		t.Errorf("cpu cost = %v, want 100 mc", got)
	}
}

func TestUnqueueAllOnlyTargetJob(t *testing.T) {
	c := oneNodeCluster()
	wb := workload.NewBuilder()
	arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 8}
	wb.AddInputJob("a", "u", arch, 128, 0, 0)
	wb.AddInputJob("b", "u", arch, 128, 0, 0)
	w := wb.Build()
	ss := &stubSched{}
	ss.init = func(s *Sim) {
		s.At(1, func() {
			for j := 0; j < 2; j++ {
				for _, task := range s.PendingTasks(j) {
					if err := s.Enqueue(j, task, 0, 0, 2); err != nil {
						t.Fatal(err)
					}
				}
			}
			s.UnqueueAll(0)
			if got := len(s.PendingTasks(0)); got != 2 {
				t.Errorf("job 0 pending after UnqueueAll = %d, want 2", got)
			}
			if got := len(s.PendingTasks(1)); got != 0 {
				t.Errorf("job 1 pending = %d, want 0 (still queued)", got)
			}
			// Job 0's tasks take the free slots now; job 1's queued tasks
			// follow when the slots free again.
			_ = s.Launch(0, 0, 0, 0)
			_ = s.Launch(0, 1, 0, 0)
		})
	}
	r, err := New(c, w, nil, ss, Options{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.JobDone[1] <= r.JobDone[0] {
		t.Errorf("job order: done = %v, queued job must finish after the unqueued one", r.JobDone)
	}
}

func TestMaxAttemptsWaivesTimeout(t *testing.T) {
	// One retry budget: the first attempt dies at the 600 s timeout, the
	// second exceeds the budget, so the timeout is waived and the 6400 s
	// transfer runs to completion.
	b := cluster.NewBuilder("za", "zb")
	b.AddNode("za", "t", 1, 1, cost.Millicents(1), 1e6)
	b.AddNode("zb", "t", 1, 1, cost.Millicents(1), 1e6)
	bw := cluster.DefaultBandwidths()
	bw.InterZoneMBps = 0.01
	b.SetBandwidths(bw)
	c := b.Build()
	wb := workload.NewBuilder()
	arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 1}
	wb.AddInputJob("j", "u", arch, 64, 0, 0)
	w := wb.Build()
	ss := &stubSched{}
	launches := 0
	ss.onSlotFree = func(s *Sim, n cluster.NodeID) {
		if n != 1 {
			return
		}
		for _, j := range s.ArrivedJobs() {
			for _, task := range s.PendingTasks(j) {
				if s.Launch(j, task, 1, 0) == nil {
					launches++
				}
			}
		}
	}
	ss.onArrival = func(s *Sim, _ int) { s.KickIdleNodes() }
	r, err := New(c, w, nil, ss, Options{MaxAttempts: 1}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if launches != 2 {
		t.Errorf("launches = %d, want 2 (1 timed out + 1 waived)", launches)
	}
	// 600 s wasted window, then 64 MB / 0.01 MB/s + 1 s compute.
	if math.Abs(r.Makespan-(600+6400+1)) > 1e-6 {
		t.Errorf("makespan = %g, want 7001", r.Makespan)
	}
}
