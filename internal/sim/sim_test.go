package sim

import (
	"math"
	"testing"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/workload"
)

// stubSched adapts closures to the Scheduler interface.
type stubSched struct {
	NopNodeEvents
	name       string
	init       func(*Sim)
	onArrival  func(*Sim, int)
	onSlotFree func(*Sim, cluster.NodeID)
	onTaskDone func(*Sim, int, int)
}

func (ss *stubSched) Name() string {
	if ss.name == "" {
		return "stub"
	}
	return ss.name
}
func (ss *stubSched) Init(s *Sim) {
	if ss.init != nil {
		ss.init(s)
	}
}
func (ss *stubSched) OnJobArrival(s *Sim, j int) {
	if ss.onArrival != nil {
		ss.onArrival(s, j)
	}
}
func (ss *stubSched) OnSlotFree(s *Sim, n cluster.NodeID) {
	if ss.onSlotFree != nil {
		ss.onSlotFree(s, n)
	}
}
func (ss *stubSched) OnTaskDone(s *Sim, j, t int) {
	if ss.onTaskDone != nil {
		ss.onTaskDone(s, j, t)
	}
}

// greedyStub launches any pending task on any free slot, reading the best
// replica — enough to drive jobs to completion in unit tests.
func greedyStub() *stubSched {
	ss := &stubSched{name: "greedy-stub"}
	assign := func(s *Sim, n cluster.NodeID) {
		for s.FreeSlots(n) > 0 {
			launched := false
			for _, j := range s.ArrivedJobs() {
				pending := s.PendingTasks(j)
				if len(pending) == 0 {
					continue
				}
				store := NoStore
				if s.W.Jobs[j].HasInput() {
					store = s.BestReplica(j, pending[0], n)
				}
				if err := s.Launch(j, pending[0], n, store); err != nil {
					continue
				}
				launched = true
				break
			}
			if !launched {
				return
			}
		}
	}
	ss.onSlotFree = assign
	ss.onArrival = func(s *Sim, _ int) { s.KickIdleNodes() }
	return ss
}

// oneNodeCluster builds a single-zone, single-node cluster: 2 ECU, 2
// slots, 1 mc/ECU·s.
func oneNodeCluster() *cluster.Cluster {
	b := cluster.NewBuilder("za")
	b.AddNode("za", "t", 2, 2, cost.Millicents(1), 1e6)
	return b.Build()
}

func twoTaskJob() *workload.Workload {
	wb := workload.NewBuilder()
	arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 64}
	wb.AddInputJob("j", "u", arch, 128, 0, 0) // 2 blocks → 2 tasks, 64 ECU-sec each
	return wb.Build()
}

func TestSingleJobExactAccounting(t *testing.T) {
	c := oneNodeCluster()
	w := twoTaskJob()
	s := New(c, w, nil, greedyStub(), Options{})
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Each task: 64 MB / 100 MB/s = 0.64 s transfer + 64 ECU-sec at
	// slotECU 1 = 64 s. Two slots run both tasks in parallel.
	if math.Abs(r.Makespan-64.64) > 1e-6 {
		t.Errorf("makespan = %g, want 64.64", r.Makespan)
	}
	// CPU: 128 ECU-sec at 1 mc. Transfer: node-local, free.
	if got := r.Cost.Category(cost.CatCPU); got != cost.Millicents(128) {
		t.Errorf("cpu cost = %v, want 128 mc", got.ToMillicents())
	}
	if got := r.Cost.Category(cost.CatTransfer); got != 0 {
		t.Errorf("transfer cost = %v, want 0", got)
	}
	if r.Locality.Count(0) != 2 { // metrics.NodeLocal
		t.Errorf("locality counts: %+v", r.Locality)
	}
	if r.JobDone[0] != r.Makespan {
		t.Errorf("JobDone = %v", r.JobDone)
	}
	if r.Fairness != 1 {
		t.Errorf("fairness = %g for a single user", r.Fairness)
	}
	// Utilization: 2 slots busy 64.64 s each out of 2×64.64.
	if math.Abs(r.Utilization-1) > 1e-9 {
		t.Errorf("utilization = %g", r.Utilization)
	}
}

func TestCrossZoneTransferBilled(t *testing.T) {
	b := cluster.NewBuilder("za", "zb")
	b.AddNode("za", "t", 2, 2, cost.Millicents(1), 1e6)
	b.AddNode("zb", "t", 2, 2, cost.Millicents(1), 1e6)
	c := b.Build()
	wb := workload.NewBuilder()
	arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 64}
	wb.AddInputJob("j", "u", arch, 64, 0, 0) // data in za
	w := wb.Build()
	// Force the task onto the zb node.
	ss := &stubSched{name: "remote"}
	ss.onArrival = func(s *Sim, j int) {
		if err := s.Launch(j, 0, 1, 0); err != nil {
			t.Error(err)
		}
	}
	s := New(c, w, nil, ss, Options{})
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 64 MB across zones at $0.01/GB = 62.5 mc.
	if got := r.Cost.Category(cost.CatTransfer); got != cost.Millicents(62.5) {
		t.Errorf("transfer = %g mc, want 62.5", got.ToMillicents())
	}
	// Transfer at 31.25 MB/s takes 2.048 s, then 64 ECU-sec at slotECU 1.
	if math.Abs(r.Makespan-(64/31.25+64)) > 1e-6 {
		t.Errorf("makespan = %g", r.Makespan)
	}
	if r.Locality.Count(2) != 1 { // metrics.Remote
		t.Error("task should be remote")
	}
}

func TestLaunchValidation(t *testing.T) {
	c := oneNodeCluster()
	w := twoTaskJob()
	ss := &stubSched{}
	ss.onArrival = func(s *Sim, j int) {
		if err := s.Launch(j, 0, 0, NoStore); err == nil {
			t.Error("input job launched without store")
		}
		if err := s.Launch(j, 0, 0, 99); err == nil {
			t.Error("launch with out-of-range store")
		}
		if err := s.Launch(j, 0, 0, 0); err != nil {
			t.Error(err)
		}
		if err := s.Launch(j, 0, 0, 0); err == nil {
			t.Error("double launch")
		}
		if err := s.Launch(j, 1, 0, 0); err != nil {
			t.Error(err)
		}
		if err := s.Launch(j, 1, 0, 0); err == nil {
			t.Error("no free slot")
		}
	}
	if _, err := New(c, w, nil, ss, Options{}).Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMoveBlockThenEnqueue(t *testing.T) {
	b := cluster.NewBuilder("za", "zb")
	b.AddNode("za", "t", 1, 1, cost.Millicents(1), 1e6)
	b.AddNode("zb", "t", 1, 1, cost.Millicents(1), 1e6)
	c := b.Build()
	wb := workload.NewBuilder()
	arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 64}
	wb.AddInputJob("j", "u", arch, 64, 0, 0)
	w := wb.Build()
	var moveDone float64
	ss := &stubSched{}
	ss.onArrival = func(s *Sim, j int) {
		moveDone = s.MoveBlock(0, 0, 1) // za → zb
		if err := s.Enqueue(j, 0, 1, 1, moveDone); err != nil {
			t.Error(err)
		}
	}
	s := New(c, w, nil, ss, Options{})
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Move: 64 MB at 31.25 MB/s = 2.048 s. Then local read (0.64 s) and
	// 64 s compute.
	want := 64/31.25 + 0.64 + 64
	if math.Abs(r.Makespan-want) > 1e-6 {
		t.Errorf("makespan = %g, want %g (move must precede launch)", r.Makespan, want)
	}
	// Placement charged 62.5 mc; runtime read is then node-local (free).
	if got := r.Cost.Category(cost.CatPlacement); got != cost.Millicents(62.5) {
		t.Errorf("placement = %g mc", got.ToMillicents())
	}
	if got := r.Cost.Category(cost.CatTransfer); got != 0 {
		t.Errorf("transfer = %v, want 0 after relocation", got)
	}
	if s.P.Primary(0, 0) != 1 {
		t.Error("placement not updated after move")
	}
}

func TestTimeoutRetries(t *testing.T) {
	// 0.01 MB/s cross-zone: a 64 MB read takes 6400 s >> the 10-minute
	// timeout. The task must be killed, retried, and eventually the
	// timeout waived so the run terminates.
	b := cluster.NewBuilder("za", "zb")
	b.AddNode("za", "t", 1, 1, cost.Millicents(1), 1e6)
	b.AddNode("zb", "t", 1, 1, cost.Millicents(1), 1e6)
	bw := cluster.DefaultBandwidths()
	bw.InterZoneMBps = 0.01
	b.SetBandwidths(bw)
	c := b.Build()
	wb := workload.NewBuilder()
	arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 1}
	wb.AddInputJob("j", "u", arch, 64, 0, 0)
	w := wb.Build()
	// Pin the task to the remote node so every attempt must cross zones.
	ss := &stubSched{}
	launches := 0
	ss.onSlotFree = func(s *Sim, n cluster.NodeID) {
		if n != 1 {
			return
		}
		for _, j := range s.ArrivedJobs() {
			for _, task := range s.PendingTasks(j) {
				if s.Launch(j, task, 1, 0) == nil {
					launches++
				}
			}
		}
	}
	ss.onArrival = func(s *Sim, _ int) { s.KickIdleNodes() }
	s := New(c, w, nil, ss, Options{MaxAttempts: 2})
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if launches < 3 {
		t.Errorf("launches = %d, want ≥ 3 (2 timed-out attempts + 1 waived)", launches)
	}
	// Two timeout windows of 600 s each, then the full 6400 s transfer.
	if r.Makespan < 6400 {
		t.Errorf("makespan = %g, want > 6400", r.Makespan)
	}
	// Partial transfers billed: 2 × 600 s × 0.01 MB/s = 12 MB worth.
	if got := r.Cost.Category(cost.CatTransfer); got <= cost.Millicents(62.5) {
		t.Errorf("transfer = %g mc, want > one block (wasted attempts billed)", got.ToMillicents())
	}
}

func TestSpeculativeExecution(t *testing.T) {
	// Two nodes, one slow (low ECU). The primary lands on the slow node;
	// with speculation enabled, the fast node duplicates it and wins.
	b := cluster.NewBuilder("za")
	b.AddNode("za", "slow", 0.1, 1, cost.Millicents(1), 1e6)
	b.AddNode("za", "fast", 10, 1, cost.Millicents(1), 1e6)
	c := b.Build()
	wb := workload.NewBuilder()
	wb.AddNoInputJob("j", "u", 1, 100, 0)
	w := wb.Build()
	ss := &stubSched{}
	ss.onArrival = func(s *Sim, j int) {
		if err := s.Launch(j, 0, 0, NoStore); err != nil {
			t.Error(err)
		}
		if !s.LaunchSpeculative(1) {
			t.Error("speculative launch refused")
		}
	}
	s := New(c, w, nil, ss, Options{Speculative: true})
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Fast copy: 100 ECU-sec at 10 ECU/slot = 10 s, vs 1000 s on the
	// slow node.
	if math.Abs(r.Makespan-10) > 1e-6 {
		t.Errorf("makespan = %g, want 10 (speculative copy wins)", r.Makespan)
	}
	if got := r.Cost.Category(cost.CatSpeculative); got == 0 {
		t.Error("speculative waste not billed")
	}
}

func TestSpeculativeDisabled(t *testing.T) {
	c := oneNodeCluster()
	w := twoTaskJob()
	ss := &stubSched{}
	ss.onArrival = func(s *Sim, j int) {
		_ = s.Launch(j, 0, 0, 0)
		_ = s.Launch(j, 1, 0, 0)
		if s.LaunchSpeculative(0) {
			t.Error("speculative launch with feature disabled")
		}
	}
	if _, err := New(c, w, nil, ss, Options{}).Run(); err != nil {
		t.Fatal(err)
	}
}

func TestArrivalsRespectClock(t *testing.T) {
	c := oneNodeCluster()
	wb := workload.NewBuilder()
	arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 6.4}
	wb.AddInputJob("early", "u", arch, 64, 0, 0)
	wb.AddInputJob("late", "u", arch, 64, 0, 500)
	w := wb.Build()
	var arrivals []float64
	ss := greedyStub()
	base := ss.onArrival
	ss.onArrival = func(s *Sim, j int) {
		arrivals = append(arrivals, s.Now())
		base(s, j)
	}
	s := New(c, w, nil, ss, Options{})
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 2 || arrivals[0] != 0 || arrivals[1] != 500 {
		t.Errorf("arrivals = %v", arrivals)
	}
	if r.JobDone[1] < 500 {
		t.Error("late job finished before arriving")
	}
	if r.SumJobSec >= r.JobDone[0]+r.JobDone[1] {
		t.Error("SumJobSec must subtract arrival times")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		c := cluster.Paper20(0.25)
		wb := workload.NewBuilder()
		arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 30}
		for i := 0; i < 6; i++ {
			wb.AddInputJob("j", "u", arch, 10*64, cluster.StoreID(i%20), float64(i*10))
		}
		w := wb.Build()
		s := New(c, w, nil, greedyStub(), Options{})
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.TotalCost() != b.TotalCost() || a.Utilization != b.Utilization {
		t.Errorf("nondeterministic: %v vs %v", a, b)
	}
}

func TestUnqueueAll(t *testing.T) {
	c := oneNodeCluster()
	w := twoTaskJob()
	ss := &stubSched{}
	ss.onArrival = func(s *Sim, j int) {
		// Occupy both slots with task 0's attempts is impossible (same
		// task); instead enqueue both tasks far in the future, then
		// unqueue and launch directly.
		if err := s.Enqueue(j, 0, 0, 0, s.Now()+1e6); err != nil {
			t.Error(err)
		}
		if err := s.Enqueue(j, 1, 0, 0, s.Now()+1e6); err != nil {
			t.Error(err)
		}
		s.UnqueueAll(j)
		if got := len(s.PendingTasks(j)); got != 2 {
			t.Errorf("pending after unqueue = %d", got)
		}
		_ = s.Launch(j, 0, 0, 0)
		_ = s.Launch(j, 1, 0, 0)
	}
	r, err := New(c, w, nil, ss, Options{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan > 100 {
		t.Errorf("makespan %g suggests the future-queued entries ran", r.Makespan)
	}
}

func TestResultString(t *testing.T) {
	c := oneNodeCluster()
	w := twoTaskJob()
	r, err := New(c, w, nil, greedyStub(), Options{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.String() == "" || r.TotalCost() == 0 {
		t.Error("result summary broken")
	}
}
