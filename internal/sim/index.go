package sim

// Incremental indexes over simulator state. The event loop must not scan
// s.nodes or the task table per event at 10k-node/1M-task scale, so the
// hot paths maintain three structures as they go:
//
//   - an idle-node bitset (bit n set ⇔ node n is live with ≥1 free slot)
//     plus total/per-zone free-slot counters, updated by slotTaken and
//     slotFreed — KickIdleNodes sweeps set bits instead of every node,
//     and the sample scan reads two integers;
//   - a running-attempt index s.running: one packed ref (flat<<1|specBit)
//     per in-flight attempt, with O(1) swap-remove via the position each
//     attempt stores — fault replay filters ~totalSlots refs instead of
//     scanning every task;
//   - per-state task counters (stateCount, corrected by unarrived for
//     not-yet-arrived jobs) maintained by setStateFlat.
//
// Invariants (pinned by TestSlotIndexProperty against recomputed-from-
// scratch copies):
//
//	idle bit n      ⇔ !nodes[n].down && nodes[n].free > 0
//	freeSlots       = Σ nodes[n].free over live nodes
//	zoneFree[z]     = Σ nodes[n].free over live nodes in zone z
//	liveSlots       = Σ C.Nodes[n].Slots over live nodes
//	running         = exactly one ref per Running primary (flat<<1, at
//	                  tasks[flat].runPos) and one per live speculative
//	                  copy (flat<<1|1, at specs[tasks[flat].spec].runPos)
//	stateCount[st]  = #tasks in state st (all jobs); unarrived = #tasks
//	                  of not-yet-arrived jobs, which are always Pending
//
// Options.LegacyDispatch keeps the original full scans alive for
// differential testing; it never consults these indexes but they are
// maintained regardless, so the property tests cross-check both modes.

import (
	"math/bits"
	"sort"

	"lips/internal/cluster"
)

// markIdle and clearIdle maintain the idle-node bitset.
func (s *Sim) markIdle(n cluster.NodeID)  { s.idle[n>>6] |= 1 << (uint(n) & 63) }
func (s *Sim) clearIdle(n cluster.NodeID) { s.idle[n>>6] &^= 1 << (uint(n) & 63) }

// slotTaken consumes one free slot on a live node.
func (s *Sim) slotTaken(n cluster.NodeID) {
	ns := &s.nodes[n]
	ns.free--
	s.freeSlots--
	s.zoneFree[s.nodeZone[n]]--
	if ns.free == 0 {
		s.clearIdle(n)
	}
}

// slotFreed releases one slot. Attempts only finish on live nodes (a
// crash voids their events via the generation counter), so the node is
// never down here; the guard keeps the bitset honest even if it were.
func (s *Sim) slotFreed(n cluster.NodeID) {
	ns := &s.nodes[n]
	ns.free++
	s.freeSlots++
	s.zoneFree[s.nodeZone[n]]++
	if ns.free == 1 && !ns.down {
		s.markIdle(n)
	}
}

// trackRunning registers an attempt ref (flat<<1 | specBit) and returns
// its position, which the attempt must store for untrackRunning.
func (s *Sim) trackRunning(ref int32) int32 {
	pos := int32(len(s.running))
	s.running = append(s.running, ref)
	return pos
}

// untrackRunning swap-removes the ref at pos, fixing up the stored
// position of the ref that moved into its place.
func (s *Sim) untrackRunning(pos int32) {
	last := int32(len(s.running)) - 1
	moved := s.running[last]
	if pos != last {
		s.running[pos] = moved
		flat := moved >> 1
		if moved&1 == 1 {
			s.specs[s.tasks[flat].spec].runPos = pos
		} else {
			s.tasks[flat].runPos = pos
		}
	}
	s.running = s.running[:last]
}

// setStateFlat transitions a task's state, keeping the per-state counters
// exact. Every state change in the simulator goes through here.
func (s *Sim) setStateFlat(flat int32, st TaskState) {
	s.stateCount[s.states[flat]]--
	s.states[flat] = uint8(st)
	s.stateCount[st]++
}

// allocSpec takes a speculative-attempt record from the free-list (or
// grows the pool) and attaches it to ti. The returned pointer is
// invalidated by the next allocSpec — do not hold it across one.
func (s *Sim) allocSpec(ti *taskInfo) *specAttempt {
	var idx int32
	if n := len(s.specFree); n > 0 {
		idx = s.specFree[n-1]
		s.specFree = s.specFree[:n-1]
		s.specs[idx] = specAttempt{}
	} else {
		idx = int32(len(s.specs))
		s.specs = append(s.specs, specAttempt{})
	}
	ti.spec = idx
	return &s.specs[idx]
}

// freeSpec returns ti's speculative record to the free-list.
func (s *Sim) freeSpec(ti *taskInfo) {
	s.specFree = append(s.specFree, ti.spec)
	ti.spec = -1
}

// nodeHits collects the flat indices of tasks with an attempt (primary or
// speculative) on node n, deduplicated and sorted ascending — the order
// the legacy full scan visited them in, which fault replay preserves so
// traces stay byte-identical. The slice is scratch, valid until the next
// collection.
func (s *Sim) nodeHits(n cluster.NodeID) []int32 {
	hits := s.hitBuf[:0]
	for _, ref := range s.running {
		flat := ref >> 1
		ti := &s.tasks[flat]
		if ref&1 == 1 {
			if s.specs[ti.spec].node == n {
				hits = append(hits, flat)
			}
		} else if ti.node == n {
			hits = append(hits, flat)
		}
	}
	s.hitBuf = hits
	return sortDedup(hits)
}

// storeHits collects the flat indices of tasks with an attempt reading
// from store st, deduplicated and sorted ascending.
func (s *Sim) storeHits(st cluster.StoreID) []int32 {
	hits := s.hitBuf[:0]
	for _, ref := range s.running {
		flat := ref >> 1
		ti := &s.tasks[flat]
		if ref&1 == 1 {
			if s.specs[ti.spec].store == st {
				hits = append(hits, flat)
			}
		} else if ti.store == st {
			hits = append(hits, flat)
		}
	}
	s.hitBuf = hits
	return sortDedup(hits)
}

func sortDedup(hits []int32) []int32 {
	sort.Slice(hits, func(i, j int) bool { return hits[i] < hits[j] })
	w := 0
	for r := range hits {
		if r > 0 && hits[r] == hits[r-1] {
			continue
		}
		hits[w] = hits[r]
		w++
	}
	return hits[:w]
}

// IdleNodes appends every live node with at least one free slot to buf in
// ascending node order and returns the extended slice. Allocation-free
// when buf has capacity.
func (s *Sim) IdleNodes(buf []cluster.NodeID) []cluster.NodeID {
	for wi, word := range s.idle {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			buf = append(buf, cluster.NodeID(wi<<6+b))
		}
	}
	return buf
}

// TotalFreeSlots returns the free-slot count across live nodes in O(1).
func (s *Sim) TotalFreeSlots() int { return s.freeSlots }

// TotalLiveSlots returns the slot count of live nodes in O(1).
func (s *Sim) TotalLiveSlots() int { return s.liveSlots }

// ZoneFreeSlots returns the free-slot count of live nodes in one zone.
func (s *Sim) ZoneFreeSlots(zone string) int {
	zi, ok := s.zoneIdx[zone]
	if !ok {
		return 0
	}
	return s.zoneFree[zi]
}

// StateCounts returns how many tasks of arrived jobs are in each state,
// in O(1) — the counters behind the periodic sample scan.
func (s *Sim) StateCounts() (pending, queued, running, done int) {
	return s.stateCount[Pending] - s.unarrived, s.stateCount[Queued],
		s.stateCount[Running], s.stateCount[Done]
}

// JobArrived reports whether a job has been submitted yet.
func (s *Sim) JobArrived(job int) bool { return s.jobs[job].arrived }
