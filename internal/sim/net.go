package sim

// The shared-link network model (Options.SharedLinks): transfers between
// a zone pair share that pair's capacity by processor sharing — k
// concurrent flows each progress at capacity/k — instead of each enjoying
// the full pairwise bandwidth. This models the network saturation the
// paper warns about ("scheduling multiple network-I/O intensive tasks on
// the same hardware may result in network saturation", §I). Same-node
// (local disk) reads are never shared.
//
// Implementation: a flow records its remaining megabytes and current
// rate; whenever the flow set of a link changes, every flow on that link
// is elapsed to the current clock, rates are recomputed, and completion
// events are rescheduled (stale events are voided by a generation
// counter).

import "sort"

// linkID identifies an unordered zone pair.
type linkID struct{ a, b string }

func mkLink(zoneA, zoneB string) linkID {
	if zoneA > zoneB {
		zoneA, zoneB = zoneB, zoneA
	}
	return linkID{a: zoneA, b: zoneB}
}

// flow is one in-flight transfer on a shared link.
type flow struct {
	id          int
	link        linkID
	total       float64 // megabytes requested
	remainingMB float64
	rate        float64 // MB/s, current share
	lastUpdate  float64 // clock of the last remainingMB update
	gen         int     // voids stale completion events
	done        bool
	onDone      func()
}

type linkState struct {
	capacityMBps float64
	flows        map[int]*flow
}

// netEngine manages all shared links of a simulation.
type netEngine struct {
	s       *Sim
	links   map[linkID]*linkState
	nextID  int
	sortBuf []*flow // reused by reschedule's deterministic ordering
}

func newNetEngine(s *Sim) *netEngine {
	return &netEngine{s: s, links: make(map[linkID]*linkState)}
}

// linkFor returns the shared link between two zones, creating it with the
// cluster's pairwise bandwidth as the shared capacity.
func (ne *netEngine) linkFor(zoneA, zoneB string) *linkState {
	id := mkLink(zoneA, zoneB)
	ls, ok := ne.links[id]
	if !ok {
		cap := ne.s.C.BW.InterZoneMBps
		if zoneA == zoneB {
			cap = ne.s.C.BW.IntraZoneMBps
		}
		ls = &linkState{capacityMBps: cap, flows: make(map[int]*flow)}
		ne.links[id] = ls
	}
	return ls
}

// start begins a transfer of mb megabytes between the zones and calls
// onDone at completion. It returns the flow for cancellation; the caller
// must not reuse it after onDone fires.
func (ne *netEngine) start(zoneA, zoneB string, mb float64, onDone func()) *flow {
	ls := ne.linkFor(zoneA, zoneB)
	ne.elapse(ls)
	ne.nextID++
	f := &flow{
		id: ne.nextID, link: mkLink(zoneA, zoneB),
		total: mb, remainingMB: mb, lastUpdate: ne.s.clock, onDone: onDone,
	}
	ls.flows[f.id] = f
	ne.reschedule(ls)
	return f
}

// cancel aborts an in-flight flow and returns the megabytes it moved.
func (ne *netEngine) cancel(f *flow) float64 {
	if f.done {
		return 0
	}
	ls := ne.links[f.link]
	ne.elapse(ls)
	moved := 0.0
	if g, ok := ls.flows[f.id]; ok && g == f {
		moved = g.movedOf()
		f.done = true
		f.gen++
		delete(ls.flows, f.id)
		ne.reschedule(ls)
	}
	return moved
}

// movedOf reports how much the flow has transferred so far (valid right
// after elapse).
func (f *flow) movedOf() float64 { return f.total - f.remainingMB }

// sortedFlows returns the link's flows ordered by id, in the engine's
// reused scratch buffer (valid until the next call). Iteration order
// matters wherever events are scheduled: the event heap breaks same-time
// ties by insertion sequence, so ranging over the flow map directly would
// make simultaneous completions fire in a different order on every run.
func (ne *netEngine) sortedFlows(ls *linkState) []*flow {
	out := ne.sortBuf[:0]
	for _, f := range ls.flows {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	ne.sortBuf = out
	return out
}

// elapse advances every flow on the link to the current clock.
func (ne *netEngine) elapse(ls *linkState) {
	now := ne.s.clock
	for _, f := range ls.flows {
		f.remainingMB -= f.rate * (now - f.lastUpdate)
		if f.remainingMB < 0 {
			f.remainingMB = 0
		}
		f.lastUpdate = now
	}
}

// reschedule recomputes fair-share rates and completion events after a
// membership change. Must be called right after elapse.
func (ne *netEngine) reschedule(ls *linkState) {
	n := len(ls.flows)
	if n == 0 {
		return
	}
	share := ls.capacityMBps / float64(n)
	for _, f := range ne.sortedFlows(ls) {
		f.rate = share
		f.gen++
		gen := f.gen
		fl := f
		eta := ne.s.clock + f.remainingMB/share
		ne.s.At(eta, func() {
			if fl.gen != gen || fl.done {
				return
			}
			ne.complete(fl)
		})
	}
}

// complete finishes a flow and re-shares its link.
func (ne *netEngine) complete(f *flow) {
	ls := ne.links[f.link]
	ne.elapse(ls)
	f.done = true
	f.remainingMB = 0
	delete(ls.flows, f.id)
	ne.reschedule(ls)
	f.onDone()
}

// activeFlows reports the current flow count on a zone pair (for tests).
func (ne *netEngine) activeFlows(zoneA, zoneB string) int {
	ls, ok := ne.links[mkLink(zoneA, zoneB)]
	if !ok {
		return 0
	}
	return len(ls.flows)
}
