package sim

import (
	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/metrics"
	"lips/internal/trace"
)

// Lifecycle chokepoints: every noteX helper feeds both the structured
// trace (guarded by s.traceOn, a plain boolean load) and the live
// metrics registry (guarded by s.om != nil, a pointer check), so with
// both disabled each call site costs two branches and allocates nothing
// (TestNopTracerNoAllocs in internal/trace, TestNoObsNoAllocs here, plus
// the simulator throughput gate in scripts/perfsmoke.sh). Event payloads
// are built only once the trace guard passes.

// Tracer returns the run's tracer (trace.Nop when tracing is disabled),
// for schedulers that emit their own spans (e.g. LiPS epoch solves).
func (s *Sim) Tracer() trace.Tracer { return s.tr }

// noteRun opens the run in the event stream with the cluster and
// workload shape, so trace tools can interpret node ids without the
// cluster object.
func (s *Sim) noteRun() {
	if !s.traceOn {
		return
	}
	slots := make([]int, len(s.C.Nodes))
	types := make([]string, len(s.C.Nodes))
	zones := make([]string, len(s.C.Nodes))
	for i, n := range s.C.Nodes {
		slots[i] = n.Slots
		types[i] = n.Type
		zones[i] = string(n.Zone)
	}
	names := make([]string, len(s.W.Jobs))
	users := make([]string, len(s.W.Jobs))
	for i := range s.W.Jobs {
		names[i] = s.W.Jobs[i].Name
		users[i] = s.W.Jobs[i].User
	}
	s.tr.Emit(trace.Event{T: s.clock, Kind: trace.KindRun, Run: &trace.RunInfo{
		Scheduler: s.sched.Name(),
		Nodes:     len(s.C.Nodes), Stores: len(s.C.Stores),
		Jobs: len(s.W.Jobs), Tasks: s.W.TotalTasks(),
		Slots: slots, Types: types, Zones: zones,
		Label:    s.opts.TraceLabel,
		JobNames: names, JobUsers: users,
	}})
}

func (s *Sim) noteEnqueue(job, task int, n cluster.NodeID, store cluster.StoreID, readyAt float64) {
	if s.om != nil {
		s.om.m.Enqueued.Inc()
	}
	if !s.traceOn {
		return
	}
	s.tr.Emit(trace.Event{T: s.clock, Kind: trace.KindEnqueue, Task: &trace.TaskInfo{
		Job: job, Task: task, Node: int(n), Store: int(store), ReadyAt: readyAt,
	}})
}

func (s *Sim) noteLaunch(job, task, attempt int, n cluster.NodeID, store cluster.StoreID, loc metrics.Locality, speculative bool) {
	if s.om != nil {
		s.om.launched[loc].Inc()
	}
	if !s.traceOn {
		return
	}
	s.tr.Emit(trace.Event{T: s.clock, Kind: trace.KindLaunch, Task: &trace.TaskInfo{
		Job: job, Task: task, Attempt: attempt, Node: int(n), Store: int(store),
		Locality: loc.String(), Speculative: speculative,
	}})
}

func (s *Sim) noteDone(job, task, attempt int, n cluster.NodeID, store cluster.StoreID,
	wallSec, xferSec, cpuSec float64, billed, xferBilled cost.Money, speculative bool) {
	if !s.traceOn {
		return
	}
	s.tr.Emit(trace.Event{T: s.clock, Kind: trace.KindDone, Task: &trace.TaskInfo{
		Job: job, Task: task, Attempt: attempt, Node: int(n), Store: int(store),
		DurSec: wallSec, XferSec: xferSec, CPUSec: cpuSec,
		CostUC: int64(billed), XferUC: int64(xferBilled), Speculative: speculative,
	}})
}

func (s *Sim) noteKill(job, task int, n cluster.NodeID, reason string, billed cost.Money, speculative bool) {
	if s.om != nil {
		s.om.m.Killed.With(reason).Inc()
	}
	if !s.traceOn {
		return
	}
	s.tr.Emit(trace.Event{T: s.clock, Kind: trace.KindKill, Task: &trace.TaskInfo{
		Job: job, Task: task, Node: int(n), Store: -1,
		Reason: reason, CostUC: int64(billed), Speculative: speculative,
	}})
}

func (s *Sim) noteMove(obj, block int, src, dst cluster.StoreID, mb, durSec float64, billed cost.Money, reason string) {
	if s.om != nil {
		s.om.m.Moves.With(reason).Inc()
		s.om.m.MovedMB.Add(mb)
	}
	if !s.traceOn {
		return
	}
	s.tr.Emit(trace.Event{T: s.clock, Kind: trace.KindMove, Move: &trace.MoveInfo{
		Object: obj, Block: block, Src: int(src), Dst: int(dst),
		MB: mb, DurSec: durSec, CostUC: int64(billed), Reason: reason,
	}})
}

func (s *Sim) noteFault(f Fault) {
	if s.om != nil {
		s.om.m.Faults.With(f.Kind.String()).Inc()
	}
	if !s.traceOn {
		return
	}
	node, store := -1, -1
	switch f.Kind {
	case FaultStoreLoss:
		store = int(f.Store)
	default:
		node = int(f.Node)
	}
	s.tr.Emit(trace.Event{T: s.clock, Kind: trace.KindFault, Fault: &trace.FaultInfo{
		Kind: f.Kind.String(), Node: node, Store: store,
		Factor: f.Factor, DurationSec: f.DurationSec,
	}})
}

// scanSample fills the task-state counts and slot availability of one
// snapshot — shared by trace sample events and the live gauge refresh so
// both report identical numbers at matching timestamps. The numbers come
// from the incrementally maintained counters (O(1)); LegacyDispatch
// recomputes them with the original full scans, which the differential
// tests use to pin the counters to ground truth.
func (s *Sim) scanSample(info *trace.SampleInfo) {
	if s.opts.LegacyDispatch {
		for j := range s.jobs {
			if !s.jobs[j].arrived {
				continue
			}
			for f := s.taskBase[j]; f < s.taskBase[j+1]; f++ {
				switch TaskState(s.states[f]) {
				case Pending:
					info.Pending++
				case Queued:
					info.Queued++
				case Running:
					info.Running++
				case Done:
					info.Done++
				}
			}
		}
		for n := range s.nodes {
			if s.nodes[n].down {
				continue
			}
			info.FreeSlots += s.nodes[n].free
			info.LiveSlots += s.C.Nodes[n].Slots
		}
		return
	}
	info.Pending, info.Queued, info.Running, info.Done = s.StateCounts()
	info.FreeSlots = s.freeSlots
	info.LiveSlots = s.liveSlots
}

// emitSample snapshots the run's time series: cumulative dollars by
// ledger category, task-state counts, slot availability and the
// locality mix so far.
func (s *Sim) emitSample() {
	if !s.traceOn {
		return
	}
	info := &trace.SampleInfo{
		BusySlotSec:   s.busySlotSec,
		TotalUC:       int64(s.Ledger.Total()),
		CPUUC:         int64(s.Ledger.Category(cost.CatCPU)),
		TransferUC:    int64(s.Ledger.Category(cost.CatTransfer)),
		PlacementUC:   int64(s.Ledger.Category(cost.CatPlacement)),
		SpeculativeUC: int64(s.Ledger.Category(cost.CatSpeculative)),
		FaultUC:       int64(s.Ledger.Category(cost.CatFault)),
		NodeLocal:     s.Locality.Count(metrics.NodeLocal),
		ZoneLocal:     s.Locality.Count(metrics.ZoneLocal),
		Remote:        s.Locality.Count(metrics.Remote),
		NoInput:       s.Locality.Count(metrics.NoInput),
	}
	// Ledger.Tenants is sorted, so the chargeback lines (and the JSONL
	// bytes) are deterministic for a given seed.
	for _, tn := range s.Ledger.Tenants() {
		info.Tenants = append(info.Tenants, trace.TenantCost{
			Tenant:        tn,
			TotalUC:       int64(s.Ledger.TenantTotal(tn)),
			CPUUC:         int64(s.Ledger.TenantCategory(tn, cost.CatCPU)),
			TransferUC:    int64(s.Ledger.TenantCategory(tn, cost.CatTransfer)),
			PlacementUC:   int64(s.Ledger.TenantCategory(tn, cost.CatPlacement)),
			SpeculativeUC: int64(s.Ledger.TenantCategory(tn, cost.CatSpeculative)),
			FaultUC:       int64(s.Ledger.TenantCategory(tn, cost.CatFault)),
		})
	}
	s.scanSample(info)
	s.setSampleGauges(info)
	s.tr.Emit(trace.Event{T: s.clock, Kind: trace.KindSample, Sample: info})
}
