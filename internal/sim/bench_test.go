package sim

import (
	"io"
	"math/rand"
	"testing"

	"lips/internal/cluster"
	"lips/internal/trace"
	"lips/internal/workload"
)

// benchWorkload: a mid-size mixed batch on the 20-node testbed.
func benchWorkload(b *testing.B) (*cluster.Cluster, *workload.Workload) {
	b.Helper()
	c := cluster.Paper20(0.5)
	rng := rand.New(rand.NewSource(1))
	stores := make([]cluster.StoreID, len(c.Stores))
	for i := range stores {
		stores[i] = cluster.StoreID(i)
	}
	w := workload.Random(rng, stores, workload.RandomSpec{TotalTasks: 800})
	return c, w
}

// BenchmarkSimulatorThroughput measures end-to-end event processing for a
// full run (≈3 events per task) under the greedy stub.
func BenchmarkSimulatorThroughput(b *testing.B) {
	c, w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := w.Placement()
		p.Shuffle(rand.New(rand.NewSource(2)), allStores(c))
		s := New(c, w, p, greedyStub(), Options{})
		b.StartTimer()
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(w.TotalTasks()), "tasks/run")
}

// BenchmarkSimulatorTracing measures the same run with a JSONL tracer
// and sampler enabled, to quantify the tracing overhead against
// BenchmarkSimulatorThroughput's disabled (nop-tracer) path.
func BenchmarkSimulatorTracing(b *testing.B) {
	c, w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := w.Placement()
		p.Shuffle(rand.New(rand.NewSource(2)), allStores(c))
		sink := trace.NewJSONL(io.Discard)
		s := New(c, w, p, greedyStub(), Options{Tracer: sink, SampleIntervalSec: 60})
		b.StartTimer()
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := sink.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkSimulatorSharedLinks measures the processor-sharing network
// model's overhead relative to the dedicated-rate path.
func BenchmarkSimulatorSharedLinks(b *testing.B) {
	c, w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := w.Placement()
		p.Shuffle(rand.New(rand.NewSource(2)), allStores(c))
		s := New(c, w, p, greedyStub(), Options{SharedLinks: true})
		b.StartTimer()
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func allStores(c *cluster.Cluster) []cluster.StoreID {
	out := make([]cluster.StoreID, len(c.Stores))
	for i := range out {
		out[i] = cluster.StoreID(i)
	}
	return out
}
