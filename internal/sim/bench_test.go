package sim

import (
	"io"
	"math/rand"
	"testing"

	"lips/internal/cluster"
	"lips/internal/trace"
	"lips/internal/workload"
)

// benchWorkload: a mid-size mixed batch on the 20-node testbed.
func benchWorkload(b *testing.B) (*cluster.Cluster, *workload.Workload) {
	b.Helper()
	c := cluster.Paper20(0.5)
	rng := rand.New(rand.NewSource(1))
	stores := make([]cluster.StoreID, len(c.Stores))
	for i := range stores {
		stores[i] = cluster.StoreID(i)
	}
	w := workload.Random(rng, stores, workload.RandomSpec{TotalTasks: 800})
	return c, w
}

// BenchmarkSimulatorThroughput measures end-to-end event processing for a
// full run (≈3 events per task) under the greedy stub.
func BenchmarkSimulatorThroughput(b *testing.B) {
	c, w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := w.Placement()
		p.Shuffle(rand.New(rand.NewSource(2)), allStores(c))
		s := New(c, w, p, greedyStub(), Options{})
		b.StartTimer()
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(w.TotalTasks()), "tasks/run")
}

// BenchmarkSimulatorTracing measures the same run with a JSONL tracer
// and sampler enabled, to quantify the tracing overhead against
// BenchmarkSimulatorThroughput's disabled (nop-tracer) path.
func BenchmarkSimulatorTracing(b *testing.B) {
	c, w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := w.Placement()
		p.Shuffle(rand.New(rand.NewSource(2)), allStores(c))
		sink := trace.NewJSONL(io.Discard)
		s := New(c, w, p, greedyStub(), Options{Tracer: sink, SampleIntervalSec: 60})
		b.StartTimer()
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := sink.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkSimulatorSharedLinks measures the processor-sharing network
// model's overhead relative to the dedicated-rate path.
func BenchmarkSimulatorSharedLinks(b *testing.B) {
	c, w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := w.Placement()
		p.Shuffle(rand.New(rand.NewSource(2)), allStores(c))
		s := New(c, w, p, greedyStub(), Options{SharedLinks: true})
		b.StartTimer()
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput10k is the paper-scale gate: a 10k-node
// random cluster running a 1M-task random workload under the batch-stub
// scheduler. Generation happens outside the timer; the timed region is
// pure event processing. tasks/run lets scripts/bench.sh derive
// sim_tasks_per_sec.
func BenchmarkSimulatorThroughput10k(b *testing.B) {
	if testing.Short() {
		b.Skip("short mode")
	}
	c, w := buildScaleRun(10_000, 1_000_000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := w.Placement()
		p.Shuffle(rand.New(rand.NewSource(2)), c.StoreIDs())
		s := New(c, w, p, &batchStub{}, Options{})
		b.StartTimer()
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(w.TotalTasks()), "tasks/run")
}

// BenchmarkDispatch isolates the idle-node sweep: a 1024-node cluster
// with every slot free and a scheduler that launches nothing, so each
// KickIdleNodes pays for one full bitset walk plus the batched
// notification and nothing else.
func BenchmarkDispatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := cluster.Random(rng, cluster.RandomSpec{Nodes: 1024})
	wb := workload.NewBuilder()
	wb.AddNoInputJob("idle", "u", 1, 1, 0)
	w := wb.Build()
	nop := &batchStub{onFill: nil}
	s := New(c, w, nil, nop, Options{})
	// Consume the single task so every later kick finds no pending work
	// and the sweep cost dominates.
	if _, err := s.Run(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.KickIdleNodes()
	}
}

func allStores(c *cluster.Cluster) []cluster.StoreID {
	out := make([]cluster.StoreID, len(c.Stores))
	for i := range out {
		out[i] = cluster.StoreID(i)
	}
	return out
}
