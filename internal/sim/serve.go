package sim

// Serve-mode support: a batch Run owns the event loop from start to
// finish, but a long-running scheduling daemon (internal/serve) needs the
// opposite contract — the caller owns the loop, jobs arrive while it
// runs, and the simulation never "finishes". Start performs Run's prelude
// without entering the loop; StepUntil drains the heap up to a target
// time; AddJob, CancelJob and InjectFault mutate the live run. Run is now
// a thin wrapper over Start plus a drain-to-empty loop, so batch behavior
// is unchanged.
//
// None of these methods are goroutine-safe: the simulator remains
// single-threaded and the daemon serializes access around it.

import (
	"fmt"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/hdfs"
	"lips/internal/obs"
	"lips/internal/workload"
)

// Start performs the run prelude — fault-plan scheduling, trace/metrics
// chains, scheduler Init, dependency wiring and job-arrival events —
// without executing any event. After Start, drive the clock with
// StepUntil (Run does this internally for batch runs).
func (s *Sim) Start() error {
	if s.started {
		return fmt.Errorf("sim: Start called twice")
	}
	if s.opts.Faults != nil {
		if err := s.opts.Faults.validate(s.C); err != nil {
			return err
		}
		for _, f := range s.opts.Faults.Faults {
			f := f
			s.At(f.At, func() { s.inject(f) })
		}
	}
	s.noteRun()
	s.sampleWanted = s.traceOn && s.opts.SampleIntervalSec > 0
	if s.sampleWanted {
		s.emitSample()
		s.schedule(s.clock+s.opts.SampleIntervalSec, evSample, 0, 0, 0, 0)
		s.sampleLive = true
	}
	// When trace sampling already refreshes the gauges on the same
	// cadence, a second refresh chain would only race it at coincident
	// ticks; run one only when the cadences differ.
	s.obsWanted = s.om != nil && !(s.sampleWanted && s.opts.SampleIntervalSec == s.opts.MetricsSampleSec)
	if s.obsWanted {
		s.obsRefresh()
		s.schedule(s.clock+s.opts.MetricsSampleSec, evObsRefresh, 0, 0, 0, 0)
		s.obsLive = true
	}
	s.sched.Init(s)
	for j, deps := range s.opts.Deps {
		if j >= len(s.jobs) {
			return fmt.Errorf("sim: Deps refers to job %d of %d", j, len(s.jobs))
		}
		for _, d := range deps {
			if d < 0 || d >= len(s.jobs) {
				return fmt.Errorf("sim: job %d depends on out-of-range job %d", j, d)
			}
			s.jobs[j].waitingOn++
			s.jobs[d].dependents = append(s.jobs[d].dependents, j)
		}
	}
	for j := range s.W.Jobs {
		if s.jobs[j].waitingOn > 0 {
			continue // gated on dependencies
		}
		s.schedule(s.W.Jobs[j].ArrivalSec, evArrive, int32(j), 0, 0, 0)
	}
	s.started = true
	return nil
}

// StepUntil executes every event scheduled at or before t, then advances
// the clock to t (time moves even when nothing happens — a serve epoch
// with an empty queue still ages the cluster). It returns the event-
// budget error of a runaway step; the heap and all state remain valid
// afterwards, so a daemon can surface the error and keep serving.
func (s *Sim) StepUntil(t float64) error {
	if !s.started {
		return fmt.Errorf("sim: StepUntil before Start")
	}
	for len(s.events) > 0 && s.events[0].at <= t {
		s.nevent++
		if s.nevent > s.opts.MaxEvents {
			return fmt.Errorf("sim: aborted after %d events at t=%.1f (%d jobs incomplete)", s.nevent, s.clock, s.remaining)
		}
		ev := s.pop()
		s.clock = ev.at
		s.exec(&ev)
	}
	if t > s.clock {
		s.clock = t
	}
	return nil
}

// Drained reports whether every submitted job has completed (or been
// cancelled) — the daemon's quiesce condition at shutdown.
func (s *Sim) Drained() bool { return s.remaining == 0 }

// NumJobs returns how many jobs the run has ever carried, including
// completed and cancelled ones.
func (s *Sim) NumJobs() int { return len(s.jobs) }

// JobDoneAt returns the completion time of a finished (or cancelled)
// job, 0 while it is still in flight.
func (s *Sim) JobDoneAt(job int) float64 { return s.jobs[job].doneAt }

// JobCancelled reports whether the job was cancelled via CancelJob.
func (s *Sim) JobCancelled(job int) bool { return s.jobs[job].cancelled }

// JobFirstLaunch returns when the job's first primary attempt started;
// ok is false while nothing has launched yet.
func (s *Sim) JobFirstLaunch(job int) (t float64, ok bool) {
	fl := s.jobs[job].firstLaunch
	return fl, fl >= 0
}

// JobFirstEnqueue returns when a scheduler first pinned any task of the
// job to a node queue — the "epoch-planned" span milestone; ok is false
// while no task has ever been enqueued.
func (s *Sim) JobFirstEnqueue(job int) (t float64, ok bool) {
	fe := s.jobs[job].firstEnqueue
	return fe, fe >= 0
}

// JobCostUC returns the job's exact ledger charge so far, in microcents.
func (s *Sim) JobCostUC(job int) int64 {
	return int64(s.Ledger.Job(s.W.Jobs[job].Name))
}

// JobSpan assembles the job's phase span from simulator state — the
// batch-frame view, where submission and admission both coincide with
// the workload arrival (a batch run has no admission queue). The serve
// daemon overlays its own submit/admit stamps on top. Milestones that
// have not happened are -1.
func (s *Sim) JobSpan(job int) obs.Span {
	j := &s.W.Jobs[job]
	js := &s.jobs[job]
	sp := obs.NewSpan(job)
	sp.Name, sp.Tenant = j.Name, j.User
	sp.SubmittedSim, sp.AdmittedSim = j.ArrivalSec, j.ArrivalSec
	sp.PlannedSim = js.firstEnqueue
	sp.FirstLaunchSim = js.firstLaunch
	sp.CostUC = int64(s.Ledger.Job(j.Name))
	if js.remaining == 0 {
		sp.DoneSim = js.doneAt
		if js.cancelled {
			sp.Outcome = obs.OutcomeCancelled
		} else {
			sp.Outcome = obs.OutcomeDone
		}
	}
	return sp
}

// JobStateCounts returns how many tasks of one job sit in each lifecycle
// state — O(NumTasks), for per-job status reporting.
func (s *Sim) JobStateCounts(job int) (pending, queued, running, done int) {
	base, end := s.taskBase[job], s.taskBase[job+1]
	for f := base; f < end; f++ {
		switch TaskState(s.states[f]) {
		case Pending:
			pending++
		case Queued:
			queued++
		case Running:
			running++
		case Done:
			done++
		}
	}
	return
}

// AddJob appends a job to the live workload and schedules its arrival,
// growing the flat task table, the state counters and (for input jobs)
// the HDFS placement in place. The job's ID, Object and InputMB fields
// are assigned here; its ArrivalSec is clamped to the current clock. For
// input jobs pass the data object (sized by obj.SizeMB; NumTasks is
// derived from the block count); the object lands fully on obj.Origin,
// exactly like a fresh upload. Only legal after Start.
func (s *Sim) AddJob(job workload.Job, obj *hdfs.DataObject) (int, error) {
	if !s.started {
		return 0, fmt.Errorf("sim: AddJob before Start")
	}
	j := len(s.W.Jobs)
	job.ID = j
	if obj != nil {
		if obj.SizeMB <= 0 {
			return 0, fmt.Errorf("sim: AddJob %q: input object has size %g MB", job.Name, obj.SizeMB)
		}
		if int(obj.Origin) < 0 || int(obj.Origin) >= len(s.C.Stores) {
			return 0, fmt.Errorf("sim: AddJob %q: origin store %d of %d", job.Name, obj.Origin, len(s.C.Stores))
		}
		if job.CPUSecPerMB < 0 {
			return 0, fmt.Errorf("sim: AddJob %q: negative CPUSecPerMB", job.Name)
		}
		obj.ID = hdfs.ObjectID(len(s.W.Objects))
		job.Object = obj.ID
		job.InputMB = obj.SizeMB
		job.NumTasks = obj.NumBlocks()
		s.W.Objects = append(s.W.Objects, *obj)
		s.P.AddObject(*obj)
	} else {
		job.Object = workload.NoObject
		job.InputMB = 0
		if job.NumTasks <= 0 {
			return 0, fmt.Errorf("sim: AddJob %q: %d tasks", job.Name, job.NumTasks)
		}
		if job.CPUSecPerTask <= 0 {
			return 0, fmt.Errorf("sim: AddJob %q: CPUSecPerTask %g", job.Name, job.CPUSecPerTask)
		}
	}
	if job.AccessFrac < 0 || job.AccessFrac > 1 {
		return 0, fmt.Errorf("sim: AddJob %q: access fraction %g", job.Name, job.AccessFrac)
	}
	if job.ArrivalSec < s.clock {
		job.ArrivalSec = s.clock
	}
	s.W.Jobs = append(s.W.Jobs, job)
	s.jobs = append(s.jobs, jobState{remaining: job.NumTasks, firstLaunch: -1, firstEnqueue: -1})
	s.taskBase = append(s.taskBase, s.taskBase[j]+int32(job.NumTasks))
	for t := 0; t < job.NumTasks; t++ {
		s.tasks = append(s.tasks, taskInfo{
			job: int32(j), idx: int32(t), qNode: -1, spec: -1, runPos: -1,
		})
		s.states = append(s.states, uint8(Pending))
	}
	s.stateCount[Pending] += job.NumTasks
	s.unarrived += job.NumTasks
	s.remaining++
	s.schedule(job.ArrivalSec, evArrive, int32(j), 0, 0, 0)
	// The sample and gauge-refresh chains stop when the run drains; a
	// newly added job must revive them or a long-lived daemon's scrapes
	// would freeze at the last idle period's values.
	if s.sampleWanted && !s.sampleLive {
		s.sampleLive = true
		s.schedule(s.clock+s.opts.SampleIntervalSec, evSample, 0, 0, 0, 0)
	}
	if s.obsWanted && !s.obsLive {
		s.obsLive = true
		s.schedule(s.clock+s.opts.MetricsSampleSec, evObsRefresh, 0, 0, 0, 0)
	}
	return j, nil
}

// CancelJob withdraws a job from the run: running attempts are killed
// (their partial burn billed, as with preemption), queued entries voided,
// and every not-yet-done task marked Done so the scheduler never sees the
// job again. Idempotent; cancelling a completed job is a no-op. Tasks a
// cancelled job already finished stay finished (and billed).
func (s *Sim) CancelJob(job int) error {
	if job < 0 || job >= len(s.jobs) {
		return fmt.Errorf("sim: CancelJob %d of %d", job, len(s.jobs))
	}
	js := &s.jobs[job]
	if js.cancelled || js.remaining == 0 {
		return nil
	}
	js.cancelled = true
	base, end := s.taskBase[job], s.taskBase[job+1]
	// Pass 1: retire every task that holds no slot, so the dispatches
	// triggered by pass 2's kills cannot relaunch work of this job.
	for f := base; f < end; f++ {
		switch TaskState(s.states[f]) {
		case Pending:
			s.tasks[f].gen++
			s.setStateFlat(f, Done)
		case Queued:
			s.tasks[f].qNode = -1 // the node's next drain drops the entry
			s.tasks[f].gen++
			s.setStateFlat(f, Done)
			s.noteKill(job, int(f-base), cluster.NodeID(-1), "cancel", 0, false)
		}
	}
	// Pass 2: kill the running attempts, billing each one's partial burn
	// exactly as KillTask does.
	for f := base; f < end; f++ {
		if TaskState(s.states[f]) != Running {
			continue
		}
		ti := &s.tasks[f]
		t := int(f - base)
		n := ti.node
		node := &s.C.Nodes[n]
		cpuSec, _ := s.taskDemand(job, t)
		slotECU := node.ECU / float64(node.Slots)
		burned := cpuSec - (ti.doneAt-s.clock)*slotECU
		if burned < 0 {
			burned = 0
		}
		if burned > cpuSec {
			burned = cpuSec
		}
		billed := cost.CPUCost(ti.price, burned)
		s.charge(cost.CatSpeculative, job, billed)
		if ti.flow != nil {
			s.net.cancel(ti.flow)
			ti.flow = nil
		}
		s.untrackPrimary(ti)
		if ti.spec >= 0 {
			s.cancelSpeculative(job, t, cost.CatSpeculative, true, "cancel")
		}
		ti.gen++
		s.setStateFlat(f, Done)
		s.noteKill(job, t, n, "cancel", billed, false)
		s.slotFreed(n)
		s.dispatch(n)
	}
	if !js.arrived {
		// All of an unarrived job's tasks were counted in unarrived (they
		// were Pending); arrival, if its event is still in the heap, will
		// be skipped by the cancelled guard.
		s.unarrived -= s.W.Jobs[job].NumTasks
	}
	js.remaining = 0
	js.doneAt = s.clock
	s.remaining--
	// Release dependents exactly as a real completion would (§III DAG
	// leveling): a cancelled prerequisite no longer gates anything.
	for _, dep := range js.dependents {
		s.jobs[dep].waitingOn--
		if s.jobs[dep].waitingOn == 0 {
			arriveAt := s.W.Jobs[dep].ArrivalSec
			if arriveAt < s.clock {
				arriveAt = s.clock
			}
			s.schedule(arriveAt, evArrive, int32(dep), 0, 0, 0)
		}
	}
	return nil
}

// InjectFault schedules one fault into a live run — the serve-mode
// counterpart of Options.Faults, for node churn delivered over the
// daemon's admin API. Firing times earlier than the clock are clamped to
// "now" (the next StepUntil executes them first).
func (s *Sim) InjectFault(f Fault) error {
	if !s.started {
		return fmt.Errorf("sim: InjectFault before Start")
	}
	plan := FaultPlan{Faults: []Fault{f}}
	if f.At < s.clock {
		f.At = s.clock
		plan.Faults[0].At = s.clock
	}
	if err := plan.validate(s.C); err != nil {
		return err
	}
	s.At(f.At, func() { s.inject(f) })
	return nil
}

// CurrentResult assembles a Result from the run's state so far — the
// daemon's shutdown summary. Unlike Run's return value it may describe an
// unfinished run: jobs still in flight report a zero completion time.
func (s *Sim) CurrentResult() *Result { return s.result() }
