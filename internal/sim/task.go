package sim

import (
	"fmt"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/metrics"
)

// NoStore marks a launch without input data (Pi-style tasks).
const NoStore cluster.StoreID = -1

// priceOf returns a node's current ECU-second price, applying the spot
// multiplier if configured.
func (s *Sim) priceOf(node *cluster.Node) cost.Money {
	if s.opts.PriceMultiplier == nil {
		return node.PerECUSec
	}
	return node.PerECUSec.MulFloat(s.opts.PriceMultiplier(node.Type, s.clock))
}

// taskDemand returns the ECU-seconds and transferred megabytes of one
// task. Partial-access jobs (fractional JD) touch only their access
// fraction of each block.
func (s *Sim) taskDemand(job, task int) (cpuSec, mb float64) {
	j := s.W.Jobs[job]
	if !j.HasInput() {
		return j.CPUSecPerTask, 0
	}
	obj := s.W.Objects[j.Object]
	mb = obj.BlockSizeMB(task) * j.EffectiveAccessFrac()
	return mb * j.CPUSecPerMB, mb
}

// observeLocality classifies and records where a launched task reads
// from, returning the classification.
func (s *Sim) observeLocality(n cluster.NodeID, store cluster.StoreID, hasInput bool) metrics.Locality {
	var l metrics.Locality
	switch {
	case !hasInput:
		l = metrics.NoInput
	case s.C.Nodes[n].Store == store:
		l = metrics.NodeLocal
	case s.C.Nodes[n].Zone == s.C.Stores[store].Zone:
		l = metrics.ZoneLocal
	default:
		l = metrics.Remote
	}
	s.Locality.Observe(l)
	return l
}

// Launch starts task (job, task) immediately on node n, reading its input
// block from store. The node must have a free slot; input jobs must pass
// the store actually holding the block (any replica), no-input jobs pass
// NoStore. Launch returns an error on misuse — scheduler bugs, surfaced
// loudly rather than silently absorbed.
func (s *Sim) Launch(job, task int, n cluster.NodeID, store cluster.StoreID) error {
	ti := &s.tasks[job][task]
	if ti.state == Running || ti.state == Done {
		return fmt.Errorf("sim: task %d/%d launched twice", job, task)
	}
	if s.nodes[n].down {
		return fmt.Errorf("sim: node %d is down", n)
	}
	if s.nodes[n].free <= 0 {
		return fmt.Errorf("sim: no free slot on node %d", n)
	}
	j := s.W.Jobs[job]
	if j.HasInput() {
		if store == NoStore {
			return fmt.Errorf("sim: task %d/%d needs an input store", job, task)
		}
		if !s.P.HasReplicaOn(j.Object, task, store) {
			return fmt.Errorf("sim: task %d/%d: store %d does not hold block %d of object %d", job, task, store, task, j.Object)
		}
	} else {
		store = NoStore
	}
	s.startAttempt(job, task, n, store, false)
	return nil
}

// startAttempt begins one execution attempt (primary or speculative).
func (s *Sim) startAttempt(job, task int, n cluster.NodeID, store cluster.StoreID, speculative bool) {
	ti := &s.tasks[job][task]
	j := s.W.Jobs[job]
	node := &s.C.Nodes[n]
	s.nodes[n].free--

	cpuSec, mb := s.taskDemand(job, task)
	slotECU := node.ECU / float64(node.Slots)
	transferSec := 0.0
	if mb > 0 {
		transferSec = mb / s.C.BandwidthStoreNode(store, n)
	}
	runSec := cpuSec / slotECU * s.slowdownOf(n)

	// The attempt is billed at the node's price when it starts, so spot
	// moves after launch do not reprice work already underway.
	price := s.priceOf(node)
	if speculative {
		ti.specRunning = true
		ti.specNode = n
		ti.specStore = store
		ti.specStart = s.clock
		ti.specCPUSec = cpuSec
		ti.specTransferEndAt = s.clock + transferSec
		ti.specPrice = price
	} else {
		ti.state = Running
		ti.node = n
		ti.store = store
		ti.attempts++
		ti.doneAt = s.clock + transferSec + runSec // expected finish
		ti.transferEndAt = s.clock + transferSec
		ti.price = price
	}
	loc := s.observeLocality(n, store, j.HasInput())
	s.noteLaunch(job, task, ti.attempts, n, store, loc, speculative)

	gen := ti.gen
	if s.opts.SharedLinks && mb > 0 && node.Store != store {
		s.startSharedAttempt(job, task, n, store, cpuSec, mb, runSec, speculative, gen)
		return
	}
	timedOut := transferSec > s.opts.TaskTimeoutSec && ti.attempts <= s.opts.MaxAttempts && !speculative
	if timedOut {
		// Hadoop's progress timeout: the task is killed after the
		// timeout window; the bytes moved so far were still billed.
		s.At(s.clock+s.opts.TaskTimeoutSec, func() {
			if s.tasks[job][task].gen != gen {
				return
			}
			movedMB := s.opts.TaskTimeoutSec * s.C.BandwidthStoreNode(store, n)
			billed := s.C.MSPerGB(n, store).MulFloat(movedMB / 1024)
			s.charge(cost.CatTransfer, j.Name, billed)
			s.busySlotSec += s.opts.TaskTimeoutSec
			ti := &s.tasks[job][task]
			ti.gen++
			ti.state = Pending
			s.noteKill(job, task, n, "timeout", billed, false)
			s.nodes[n].free++
			s.dispatch(n)
		})
		return
	}

	s.At(s.clock+transferSec+runSec, func() {
		if s.tasks[job][task].gen != gen {
			return
		}
		s.completeAttempt(job, task, n, store, cpuSec, mb, transferSec+runSec, speculative)
	})
}

// startSharedAttempt runs one attempt whose input read contends on the
// shared zone-pair link (Options.SharedLinks). The transfer becomes a
// processor-sharing flow; Hadoop's progress timeout applies to the
// transfer phase only, as in the dedicated-rate path.
func (s *Sim) startSharedAttempt(job, task int, n cluster.NodeID, store cluster.StoreID, cpuSec, mb, runSec float64, speculative bool, gen int) {
	ti := &s.tasks[job][task]
	j := s.W.Jobs[job]
	start := s.clock
	fl := s.net.start(s.C.Stores[store].Zone, s.C.Nodes[n].Zone, mb, func() {
		if s.tasks[job][task].gen != gen {
			return
		}
		if speculative {
			ti.specFlow = nil
			ti.specTransferEndAt = s.clock
		} else {
			ti.flow = nil
			ti.transferEndAt = s.clock
		}
		s.At(s.clock+runSec, func() {
			if s.tasks[job][task].gen != gen {
				return
			}
			s.completeAttempt(job, task, n, store, cpuSec, mb, s.clock-start, speculative)
		})
	})
	if speculative {
		ti.specFlow = fl
	} else {
		ti.flow = fl
		ti.doneAt = start + mb/fl.rate + runSec // optimistic estimate for speculation
	}
	if !speculative && ti.attempts <= s.opts.MaxAttempts {
		s.At(start+s.opts.TaskTimeoutSec, func() {
			ti := &s.tasks[job][task]
			if ti.gen != gen || ti.flow == nil {
				return // attempt superseded or transfer already finished
			}
			moved := s.net.cancel(ti.flow)
			ti.flow = nil
			billed := s.C.MSPerGB(n, store).MulFloat(moved / 1024)
			s.charge(cost.CatTransfer, j.Name, billed)
			s.busySlotSec += s.opts.TaskTimeoutSec
			ti.gen++
			ti.state = Pending
			s.noteKill(job, task, n, "timeout", billed, false)
			s.nodes[n].free++
			s.dispatch(n)
		})
	}
}

// completeAttempt finishes one attempt: bills it, frees the slot, settles
// any speculative twin, and fires the completion callbacks.
func (s *Sim) completeAttempt(job, task int, n cluster.NodeID, store cluster.StoreID, cpuSec, mb, wallSec float64, speculative bool) {
	ti := &s.tasks[job][task]
	j := s.W.Jobs[job]
	node := &s.C.Nodes[n]

	billedCPUSec := cpuSec
	if s.opts.BillOccupancy {
		billedCPUSec = wallSec * node.ECU / float64(node.Slots)
	}
	price := ti.price
	if speculative {
		price = ti.specPrice
	}
	billed := cost.CPUCost(price, billedCPUSec)
	s.charge(cost.CatCPU, j.Name, billed)
	if mb > 0 {
		xfer := s.C.MSPerGB(n, store).MulFloat(mb / 1024)
		s.charge(cost.CatTransfer, j.Name, xfer)
		billed += xfer
	}
	s.NodeCPU.Add(int(n), cpuSec)
	s.UserCPU[j.User] += cpuSec
	s.busySlotSec += wallSec
	s.nodes[n].free++

	if s.om != nil {
		s.om.m.Done.Inc()
	}
	if s.traceOn {
		transferEnd := ti.transferEndAt
		if speculative {
			transferEnd = ti.specTransferEndAt
		}
		xferSec := transferEnd - (s.clock - wallSec)
		if xferSec < 0 {
			xferSec = 0
		} else if xferSec > wallSec {
			xferSec = wallSec
		}
		s.noteDone(job, task, ti.attempts, n, store, wallSec, xferSec, billedCPUSec, billed, speculative)
	}

	// Settle the twin attempt, if any.
	if speculative {
		// The speculative copy won; kill the primary and bill its
		// partial CPU burn as speculative waste.
		s.killAttempt(job, task, ti.node, s.clock-0)
	} else if ti.specRunning {
		s.killSpeculative(job, task)
	}

	ti.gen++
	ti.state = Done
	ti.doneAt = s.clock
	js := &s.jobs[job]
	js.remaining--
	if js.remaining == 0 {
		js.doneAt = s.clock
		s.remaining--
		// Release dependents whose prerequisites are now all complete
		// (§III DAG leveling): they arrive at max(now, their own
		// ArrivalSec).
		for _, dep := range js.dependents {
			s.jobs[dep].waitingOn--
			if s.jobs[dep].waitingOn == 0 {
				arriveAt := s.W.Jobs[dep].ArrivalSec
				if arriveAt < s.clock {
					arriveAt = s.clock
				}
				d := dep
				s.At(arriveAt, func() { s.arrive(d) })
			}
		}
	}
	s.sched.OnTaskDone(s, job, task)
	s.dispatch(n)
}

// killSpeculative cancels a running speculative copy, billing the CPU it
// burned so far to the speculative-waste category.
func (s *Sim) killSpeculative(job, task int) {
	s.cancelSpeculative(job, task, cost.CatSpeculative, true, "speculative")
}

// cancelSpeculative cancels a running speculative copy, billing its burn
// to the given category. freeSlot is false when the copy's node crashed
// and took the slot with it; reason labels the kill in the trace.
func (s *Sim) cancelSpeculative(job, task int, cat cost.Category, freeSlot bool, reason string) {
	ti := &s.tasks[job][task]
	if !ti.specRunning {
		return
	}
	if ti.specFlow != nil {
		// Free the link; the aborted copy's partial bytes are folded
		// into the wasted-CPU charge below.
		s.net.cancel(ti.specFlow)
		ti.specFlow = nil
	}
	n := ti.specNode
	elapsed := s.clock - ti.specStart
	node := &s.C.Nodes[n]
	slotECU := node.ECU / float64(node.Slots)
	burned := elapsed * slotECU
	if burned > ti.specCPUSec {
		burned = ti.specCPUSec
	}
	billed := cost.CPUCost(ti.specPrice, burned)
	s.charge(cat, s.W.Jobs[job].Name, billed)
	s.busySlotSec += elapsed
	ti.specRunning = false
	s.noteKill(job, task, n, reason, billed, true)
	if freeSlot {
		s.nodes[n].free++
		s.dispatch(n)
	}
}

// killAttempt cancels the primary attempt after a speculative win.
func (s *Sim) killAttempt(job, task int, n cluster.NodeID, _ float64) {
	ti := &s.tasks[job][task]
	if fl := ti.flow; fl != nil {
		s.net.cancel(fl)
		ti.flow = nil
	}
	// We do not track the primary's start separately; bill half its
	// demand as a conservative estimate of the wasted burn.
	cpuSec, _ := s.taskDemand(job, task)
	billed := cost.CPUCost(ti.price, cpuSec/2)
	s.charge(cost.CatSpeculative, s.W.Jobs[job].Name, billed)
	s.noteKill(job, task, n, "speculative", billed, false)
	s.nodes[n].free++
	s.dispatch(n)
}

// LaunchSpeculative starts a duplicate copy of a running task on node n
// (which must have a free slot), reading from the best replica. It
// returns false if no running task qualifies. Hadoop launches such copies
// when slots idle near the end of a job; the first finisher wins.
func (s *Sim) LaunchSpeculative(n cluster.NodeID) bool {
	if !s.opts.Speculative || s.nodes[n].down || s.nodes[n].free <= 0 {
		return false
	}
	bestJob, bestTask := -1, -1
	var bestDone float64
	for _, j := range s.ArrivedJobs() {
		for t := range s.tasks[j] {
			ti := &s.tasks[j][t]
			if ti.state != Running || ti.specRunning || ti.node == n {
				continue
			}
			if bestJob == -1 || ti.doneAt > bestDone {
				bestJob, bestTask, bestDone = j, t, ti.doneAt
			}
		}
	}
	if bestJob == -1 {
		return false
	}
	store := NoStore
	if s.W.Jobs[bestJob].HasInput() {
		store = s.BestReplica(bestJob, bestTask, n)
	}
	s.startAttempt(bestJob, bestTask, n, store, true)
	return true
}

// BestReplica returns the replica of the task's block closest to node n:
// node-local beats zone-local beats remote.
func (s *Sim) BestReplica(job, task int, n cluster.NodeID) cluster.StoreID {
	store, _ := s.BestReplicaRank(job, task, n)
	return store
}

// BestReplicaRank returns the closest replica and its locality rank
// (0 node-local, 1 zone-local, 2 remote).
func (s *Sim) BestReplicaRank(job, task int, n cluster.NodeID) (cluster.StoreID, int) {
	j := s.W.Jobs[job]
	reps := s.P.Replicas(j.Object, task)
	best := reps[0]
	bestRank := s.localityRank(n, best)
	for _, r := range reps[1:] {
		if rank := s.localityRank(n, r); rank < bestRank {
			best, bestRank = r, rank
		}
	}
	return best, bestRank
}

func (s *Sim) localityRank(n cluster.NodeID, store cluster.StoreID) int {
	switch {
	case s.C.Nodes[n].Store == store:
		return 0
	case s.C.Nodes[n].Zone == s.C.Stores[store].Zone:
		return 1
	default:
		return 2
	}
}

// KillTask preempts a Running task: its attempt is cancelled, the CPU it
// burned so far is billed (work lost is work paid for, as with Hadoop's
// fair-scheduler preemption), the slot frees, and the task returns to
// Pending for rescheduling. Queued tasks simply return to Pending.
// Killing a Pending or Done task is an error.
func (s *Sim) KillTask(job, task int) error {
	ti := &s.tasks[job][task]
	switch ti.state {
	case Running:
		n := ti.node
		node := &s.C.Nodes[n]
		// Bill the partial burn: we do not track per-attempt start, so
		// charge the elapsed share of the expected runtime.
		cpuSec, _ := s.taskDemand(job, task)
		slotECU := node.ECU / float64(node.Slots)
		remaining := ti.doneAt - s.clock
		burned := cpuSec - remaining*slotECU
		if burned < 0 {
			burned = 0
		}
		if burned > cpuSec {
			burned = cpuSec
		}
		billed := cost.CPUCost(ti.price, burned)
		s.charge(cost.CatSpeculative, s.W.Jobs[job].Name, billed)
		if ti.flow != nil {
			s.net.cancel(ti.flow)
			ti.flow = nil
		}
		if ti.specRunning {
			s.killSpeculative(job, task)
		}
		ti.gen++
		ti.state = Pending
		s.noteKill(job, task, n, "preempt", billed, false)
		s.nodes[n].free++
		s.dispatch(n)
		return nil
	case Queued:
		for ni := range s.nodes {
			q := s.nodes[ni].queue[:0]
			for _, e := range s.nodes[ni].queue {
				if e.job == job && e.task == task {
					continue
				}
				q = append(q, e)
			}
			s.nodes[ni].queue = q
		}
		ti.state = Pending
		s.noteKill(job, task, cluster.NodeID(-1), "dequeue", 0, false)
		return nil
	default:
		return fmt.Errorf("sim: cannot kill task %d/%d in state %d", job, task, ti.state)
	}
}

// RunningTasks returns the Running task indices of a job, ascending.
func (s *Sim) RunningTasks(job int) []int {
	var out []int
	for t := range s.tasks[job] {
		if s.tasks[job][t].state == Running {
			out = append(out, t)
		}
	}
	return out
}

// TaskNode returns the node a Running task occupies.
func (s *Sim) TaskNode(job, task int) cluster.NodeID { return s.tasks[job][task].node }

// Enqueue pins a task to node n's FIFO queue, to start no earlier than
// readyAt (e.g. after a data move completes). The task runs when a slot
// frees and readyAt passes, reading from store.
func (s *Sim) Enqueue(job, task int, n cluster.NodeID, store cluster.StoreID, readyAt float64) error {
	ti := &s.tasks[job][task]
	if ti.state != Pending {
		return fmt.Errorf("sim: task %d/%d enqueued in state %d", job, task, ti.state)
	}
	if s.nodes[n].down {
		return fmt.Errorf("sim: task %d/%d enqueued on down node %d", job, task, n)
	}
	ti.state = Queued
	s.nodes[n].queue = append(s.nodes[n].queue, queueEntry{job: job, task: task, store: store, readyAt: readyAt})
	s.noteEnqueue(job, task, n, store, readyAt)
	if readyAt > s.clock {
		s.At(readyAt, func() { s.dispatch(n) })
	}
	s.dispatch(n)
	return nil
}

// UnqueueAll returns all queued-but-not-started tasks of a job to Pending
// (used by epoch schedulers that re-plan).
func (s *Sim) UnqueueAll(job int) {
	for n := range s.nodes {
		q := s.nodes[n].queue[:0]
		for _, e := range s.nodes[n].queue {
			if e.job == job {
				s.tasks[e.job][e.task].state = Pending
				continue
			}
			q = append(q, e)
		}
		s.nodes[n].queue = q
	}
}

// dispatch launches ready queued tasks while slots are free; if the queue
// holds only future-ready entries it arms a wake-up, and if the node is
// idle with an empty queue it hands the slot to the scheduler.
func (s *Sim) dispatch(nid cluster.NodeID) {
	ns := &s.nodes[nid]
	if ns.down {
		return
	}
	for ns.free > 0 {
		idx := -1
		for i := range ns.queue {
			if ns.queue[i].readyAt <= s.clock+1e-9 {
				idx = i
				break
			}
		}
		if idx == -1 {
			break
		}
		e := ns.queue[idx]
		ns.queue = append(ns.queue[:idx], ns.queue[idx+1:]...)
		s.tasks[e.job][e.task].state = Pending // Launch re-validates
		if err := s.Launch(e.job, e.task, nid, e.store); err != nil {
			// The block moved or the task completed speculatively;
			// fall back to the best replica if still pending.
			ti := &s.tasks[e.job][e.task]
			if ti.state == Pending && s.W.Jobs[e.job].HasInput() {
				_ = s.Launch(e.job, e.task, nid, s.BestReplica(e.job, e.task, nid))
			}
		}
	}
	if ns.free > 0 {
		// Any future-ready queue entries have dispatch wake-ups armed by
		// Enqueue; meanwhile the scheduler may use the idle slot.
		s.sched.OnSlotFree(s, nid)
	}
}

// MoveBlock relocates one block's primary copy from its current store to
// dst, charging the placement category and returning the completion time.
// The placement is updated when the transfer lands; callers sequencing
// tasks after the move should pass the returned time as Enqueue readyAt.
func (s *Sim) MoveBlock(obj int, block int, dst cluster.StoreID) float64 {
	j := s.W.Objects[obj]
	src := s.P.Primary(j.ID, block)
	if src == dst {
		return s.clock
	}
	mb := j.BlockSizeMB(block)
	billed := s.C.SSPerGB(src, dst).MulFloat(mb / 1024)
	s.charge(cost.CatPlacement, "", billed)
	doneAt := s.clock + mb/s.C.BandwidthStoreStore(src, dst)
	s.noteMove(obj, block, src, dst, mb, doneAt-s.clock, billed, "plan")
	key := [2]int{obj, block}
	mv := s.movingBlocks[key]
	mv.moves++
	mv.dst, mv.doneAt = dst, doneAt
	s.movingBlocks[key] = mv
	s.At(doneAt, func() {
		s.P.SetPrimary(j.ID, block, dst)
		mv := s.movingBlocks[key]
		mv.moves--
		if mv.moves <= 0 {
			delete(s.movingBlocks, key)
		} else {
			s.movingBlocks[key] = mv
		}
	})
	return doneAt
}

// BlockMove reports whether a MoveBlock transfer for (obj, block) is
// still in flight, and if so the destination store and landing time of
// the most recently issued move. Planners consult it to avoid racing a
// relocation that an earlier epoch already paid for.
func (s *Sim) BlockMove(obj, block int) (dst cluster.StoreID, doneAt float64, inFlight bool) {
	mv, ok := s.movingBlocks[[2]int{obj, block}]
	if !ok {
		return NoStore, 0, false
	}
	return mv.dst, mv.doneAt, true
}
