package sim

import (
	"fmt"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/metrics"
)

// NoStore marks a launch without input data (Pi-style tasks).
const NoStore cluster.StoreID = -1

// priceOf returns a node's current ECU-second price, applying the spot
// multiplier if configured.
func (s *Sim) priceOf(node *cluster.Node) cost.Money {
	if s.opts.PriceMultiplier == nil {
		return node.PerECUSec
	}
	return node.PerECUSec.MulFloat(s.opts.PriceMultiplier(node.Type, s.clock))
}

// taskDemand returns the ECU-seconds and transferred megabytes of one
// task. Partial-access jobs (fractional JD) touch only their access
// fraction of each block.
func (s *Sim) taskDemand(job, task int) (cpuSec, mb float64) {
	j := s.W.Jobs[job]
	if !j.HasInput() {
		return j.CPUSecPerTask, 0
	}
	obj := s.W.Objects[j.Object]
	mb = obj.BlockSizeMB(task) * j.EffectiveAccessFrac()
	return mb * j.CPUSecPerMB, mb
}

// observeLocality classifies and records where a launched task reads
// from, returning the classification.
func (s *Sim) observeLocality(n cluster.NodeID, store cluster.StoreID, hasInput bool) metrics.Locality {
	var l metrics.Locality
	switch {
	case !hasInput:
		l = metrics.NoInput
	case s.C.Nodes[n].Store == store:
		l = metrics.NodeLocal
	case s.C.Nodes[n].Zone == s.C.Stores[store].Zone:
		l = metrics.ZoneLocal
	default:
		l = metrics.Remote
	}
	s.Locality.Observe(l)
	return l
}

// Launch starts task (job, task) immediately on node n, reading its input
// block from store. The node must have a free slot; input jobs must pass
// the store actually holding the block (any replica), no-input jobs pass
// NoStore. Launch returns an error on misuse — scheduler bugs, surfaced
// loudly rather than silently absorbed.
func (s *Sim) Launch(job, task int, n cluster.NodeID, store cluster.StoreID) error {
	flat := s.flat(job, task)
	st := TaskState(s.states[flat])
	if st == Running || st == Done {
		return fmt.Errorf("sim: task %d/%d launched twice", job, task)
	}
	if s.nodes[n].down {
		return fmt.Errorf("sim: node %d is down", n)
	}
	if s.nodes[n].free <= 0 {
		return fmt.Errorf("sim: no free slot on node %d", n)
	}
	j := s.W.Jobs[job]
	if j.HasInput() {
		if store == NoStore {
			return fmt.Errorf("sim: task %d/%d needs an input store", job, task)
		}
		if !s.P.HasReplicaOn(j.Object, task, store) {
			return fmt.Errorf("sim: task %d/%d: store %d does not hold block %d of object %d", job, task, store, task, j.Object)
		}
	} else {
		store = NoStore
	}
	if st == Queued {
		// Launched out from under its queue entry; void the entry so the
		// node's next drain drops it instead of double-launching.
		s.tasks[flat].qNode = -1
	}
	s.startAttempt(job, task, n, store, false)
	return nil
}

// startAttempt begins one execution attempt (primary or speculative).
func (s *Sim) startAttempt(job, task int, n cluster.NodeID, store cluster.StoreID, speculative bool) {
	flat := s.flat(job, task)
	ti := &s.tasks[flat]
	j := s.W.Jobs[job]
	node := &s.C.Nodes[n]
	s.slotTaken(n)

	cpuSec, mb := s.taskDemand(job, task)
	slotECU := node.ECU / float64(node.Slots)
	transferSec := 0.0
	if mb > 0 {
		transferSec = mb / s.C.BandwidthStoreNode(store, n)
	}
	runSec := cpuSec / slotECU * s.slowdownOf(n)

	// The attempt is billed at the node's price when it starts, so spot
	// moves after launch do not reprice work already underway.
	price := s.priceOf(node)
	if speculative {
		sp := s.allocSpec(ti)
		sp.node = n
		sp.store = store
		sp.start = s.clock
		sp.cpuSec = cpuSec
		sp.wallSec = transferSec + runSec
		sp.transferEndAt = s.clock + transferSec
		sp.price = price
		sp.runPos = s.trackRunning(flat<<1 | 1)
	} else {
		s.setStateFlat(flat, Running)
		if js := &s.jobs[job]; js.firstLaunch < 0 {
			js.firstLaunch = s.clock
			if js.firstEnqueue < 0 {
				// A direct Launch with no queue stop still counts as the
				// job's first scheduler pin (the epoch-planned milestone).
				js.firstEnqueue = s.clock
			}
		}
		ti.node = n
		ti.store = store
		ti.attempts++
		ti.startAt = s.clock
		// Store the expected wall time itself: the completion event
		// re-bills this exact float, and (startAt+d)−startAt ≠ d in
		// floating point.
		ti.wallSec = transferSec + runSec
		ti.doneAt = s.clock + transferSec + runSec // expected finish
		ti.transferEndAt = s.clock + transferSec
		ti.price = price
		ti.runPos = s.trackRunning(flat << 1)
	}
	loc := s.observeLocality(n, store, j.HasInput())
	s.noteLaunch(job, task, int(ti.attempts), n, store, loc, speculative)

	if s.opts.SharedLinks && mb > 0 && node.Store != store {
		s.startSharedAttempt(job, task, n, store, cpuSec, mb, runSec, speculative, ti.gen)
		return
	}
	timedOut := transferSec > s.opts.TaskTimeoutSec && int(ti.attempts) <= s.opts.MaxAttempts && !speculative
	if timedOut {
		// Hadoop's progress timeout: the task is killed after the
		// timeout window; the bytes moved so far are still billed. No
		// completion event is scheduled — the timeout is this attempt's
		// only future.
		s.schedule(s.clock+s.opts.TaskTimeoutSec, evTimeout, int32(job), int32(task), ti.gen, 0)
		return
	}
	if speculative {
		s.schedule(s.clock+transferSec+runSec, evComplete, int32(job), int32(task), ti.specGen, 1)
		return
	}
	s.schedule(s.clock+transferSec+runSec, evComplete, int32(job), int32(task), ti.gen, 0)
}

// timeoutEvent fires Hadoop's progress timeout on a dedicated-rate
// primary attempt (evTimeout).
func (s *Sim) timeoutEvent(job, task int, gen int32) {
	ti := s.task(job, task)
	if ti.gen != gen {
		return
	}
	n, store := ti.node, ti.store
	movedMB := s.opts.TaskTimeoutSec * s.C.BandwidthStoreNode(store, n)
	billed := s.C.MSPerGB(n, store).MulFloat(movedMB / 1024)
	s.charge(cost.CatTransfer, job, billed)
	s.busySlotSec += s.opts.TaskTimeoutSec
	s.untrackPrimary(ti)
	ti.gen++
	s.setStateFlat(s.flat(job, task), Pending)
	s.noteKill(job, task, n, "timeout", billed, false)
	s.slotFreed(n)
	s.dispatch(n)
}

// completeEvent finishes a dedicated-rate attempt (evComplete). The
// demand is recomputed (it is a pure function of the workload) and the
// wall time was stored at launch, so the typed event needs no closure.
func (s *Sim) completeEvent(job, task int, gen int32, speculative bool) {
	ti := s.task(job, task)
	if speculative {
		if ti.spec < 0 || ti.specGen != gen {
			return // copy cancelled or settled
		}
		cpuSec, mb := s.taskDemand(job, task)
		sp := &s.specs[ti.spec]
		s.completeAttempt(job, task, sp.node, sp.store, cpuSec, mb, sp.wallSec, true)
		return
	}
	if ti.gen != gen {
		return
	}
	cpuSec, mb := s.taskDemand(job, task)
	s.completeAttempt(job, task, ti.node, ti.store, cpuSec, mb, ti.wallSec, false)
}

// startSharedAttempt runs one attempt whose input read contends on the
// shared zone-pair link (Options.SharedLinks). The transfer becomes a
// processor-sharing flow; Hadoop's progress timeout applies to the
// transfer phase only, as in the dedicated-rate path. Flow completion
// times depend on future link membership, so this rare path keeps
// closure events; each closure re-fetches the task record and, for
// speculative copies, revalidates specGen (spec records are pooled).
func (s *Sim) startSharedAttempt(job, task int, n cluster.NodeID, store cluster.StoreID, cpuSec, mb, runSec float64, speculative bool, gen int32) {
	ti := s.task(job, task)
	start := s.clock
	if speculative {
		specGen := ti.specGen
		fl := s.net.start(s.C.Stores[store].Zone, s.C.Nodes[n].Zone, mb, func() {
			ti := s.task(job, task)
			if ti.spec < 0 || ti.specGen != specGen {
				return
			}
			sp := &s.specs[ti.spec]
			sp.flow = nil
			sp.transferEndAt = s.clock
			s.At(s.clock+runSec, func() {
				ti := s.task(job, task)
				if ti.spec < 0 || ti.specGen != specGen {
					return
				}
				s.completeAttempt(job, task, n, store, cpuSec, mb, s.clock-start, true)
			})
		})
		s.specs[ti.spec].flow = fl
		return
	}
	fl := s.net.start(s.C.Stores[store].Zone, s.C.Nodes[n].Zone, mb, func() {
		ti := s.task(job, task)
		if ti.gen != gen {
			return
		}
		ti.flow = nil
		ti.transferEndAt = s.clock
		s.At(s.clock+runSec, func() {
			if s.task(job, task).gen != gen {
				return
			}
			s.completeAttempt(job, task, n, store, cpuSec, mb, s.clock-start, false)
		})
	})
	ti.flow = fl
	ti.doneAt = start + mb/fl.rate + runSec // optimistic estimate for speculation
	if int(ti.attempts) <= s.opts.MaxAttempts {
		s.At(start+s.opts.TaskTimeoutSec, func() {
			ti := s.task(job, task)
			if ti.gen != gen || ti.flow == nil {
				return // attempt superseded or transfer already finished
			}
			moved := s.net.cancel(ti.flow)
			ti.flow = nil
			billed := s.C.MSPerGB(n, store).MulFloat(moved / 1024)
			s.charge(cost.CatTransfer, job, billed)
			s.busySlotSec += s.opts.TaskTimeoutSec
			s.untrackPrimary(ti)
			ti.gen++
			s.setStateFlat(s.flat(job, task), Pending)
			s.noteKill(job, task, n, "timeout", billed, false)
			s.slotFreed(n)
			s.dispatch(n)
		})
	}
}

// completeAttempt finishes one attempt: bills it, frees the slot, settles
// any speculative twin, and fires the completion callbacks.
func (s *Sim) completeAttempt(job, task int, n cluster.NodeID, store cluster.StoreID, cpuSec, mb, wallSec float64, speculative bool) {
	flat := s.flat(job, task)
	ti := &s.tasks[flat]
	j := s.W.Jobs[job]
	node := &s.C.Nodes[n]

	billedCPUSec := cpuSec
	if s.opts.BillOccupancy {
		billedCPUSec = wallSec * node.ECU / float64(node.Slots)
	}
	price := ti.price
	transferEnd := ti.transferEndAt
	if speculative {
		sp := &s.specs[ti.spec]
		price = sp.price
		transferEnd = sp.transferEndAt
	}
	billed := cost.CPUCost(price, billedCPUSec)
	s.charge(cost.CatCPU, job, billed)
	var xferBilled cost.Money
	if mb > 0 {
		xferBilled = s.C.MSPerGB(n, store).MulFloat(mb / 1024)
		s.charge(cost.CatTransfer, job, xferBilled)
		billed += xferBilled
	}
	s.NodeCPU.Add(int(n), cpuSec)
	s.UserCPU[j.User] += cpuSec
	s.busySlotSec += wallSec
	if speculative {
		s.untrackRunning(s.specs[ti.spec].runPos)
	} else {
		s.untrackPrimary(ti)
	}
	s.slotFreed(n)

	if s.om != nil {
		s.om.m.Done.Inc()
	}
	if s.traceOn {
		xferSec := transferEnd - (s.clock - wallSec)
		if xferSec < 0 {
			xferSec = 0
		} else if xferSec > wallSec {
			xferSec = wallSec
		}
		s.noteDone(job, task, int(ti.attempts), n, store, wallSec, xferSec, billedCPUSec, billed, xferBilled, speculative)
	}

	// Settle the twin attempt, if any.
	if speculative {
		// The speculative copy won; kill the primary and bill its
		// partial CPU burn as speculative waste, then release the spec
		// record. (The previous layout left the record marked running
		// after a win, so a later fault on the dead copy's node could
		// phantom-bill a completed task.)
		s.killAttempt(job, task, ti.node)
		s.freeSpec(ti)
		ti.specGen++
	} else if ti.spec >= 0 {
		s.killSpeculative(job, task)
	}

	ti.gen++
	s.setStateFlat(flat, Done)
	ti.doneAt = s.clock
	js := &s.jobs[job]
	js.remaining--
	if js.remaining == 0 {
		js.doneAt = s.clock
		s.remaining--
		// Release dependents whose prerequisites are now all complete
		// (§III DAG leveling): they arrive at max(now, their own
		// ArrivalSec).
		for _, dep := range js.dependents {
			s.jobs[dep].waitingOn--
			if s.jobs[dep].waitingOn == 0 {
				arriveAt := s.W.Jobs[dep].ArrivalSec
				if arriveAt < s.clock {
					arriveAt = s.clock
				}
				s.schedule(arriveAt, evArrive, int32(dep), 0, 0, 0)
			}
		}
	}
	s.sched.OnTaskDone(s, job, task)
	s.dispatch(n)
}

// killSpeculative cancels a running speculative copy, billing the CPU it
// burned so far to the speculative-waste category.
func (s *Sim) killSpeculative(job, task int) {
	s.cancelSpeculative(job, task, cost.CatSpeculative, true, "speculative")
}

// cancelSpeculative cancels a running speculative copy, billing its burn
// to the given category. freeSlot is false when the copy's node crashed
// and took the slot with it; reason labels the kill in the trace.
func (s *Sim) cancelSpeculative(job, task int, cat cost.Category, freeSlot bool, reason string) {
	ti := s.task(job, task)
	if ti.spec < 0 {
		return
	}
	sp := &s.specs[ti.spec]
	if sp.flow != nil {
		// Free the link; the aborted copy's partial bytes are folded
		// into the wasted-CPU charge below.
		s.net.cancel(sp.flow)
		sp.flow = nil
	}
	n := sp.node
	elapsed := s.clock - sp.start
	node := &s.C.Nodes[n]
	slotECU := node.ECU / float64(node.Slots)
	burned := elapsed * slotECU
	if burned > sp.cpuSec {
		burned = sp.cpuSec
	}
	billed := cost.CPUCost(sp.price, burned)
	s.charge(cat, job, billed)
	s.busySlotSec += elapsed
	s.untrackRunning(sp.runPos)
	s.freeSpec(ti)
	ti.specGen++
	s.noteKill(job, task, n, reason, billed, true)
	if freeSlot {
		s.slotFreed(n)
		s.dispatch(n)
	}
}

// killAttempt cancels the primary attempt after a speculative win.
func (s *Sim) killAttempt(job, task int, n cluster.NodeID) {
	ti := s.task(job, task)
	if fl := ti.flow; fl != nil {
		s.net.cancel(fl)
		ti.flow = nil
	}
	// We do not track the primary's start separately; bill half its
	// demand as a conservative estimate of the wasted burn.
	cpuSec, _ := s.taskDemand(job, task)
	billed := cost.CPUCost(ti.price, cpuSec/2)
	s.charge(cost.CatSpeculative, job, billed)
	s.untrackPrimary(ti)
	s.noteKill(job, task, n, "speculative", billed, false)
	s.slotFreed(n)
	s.dispatch(n)
}

// untrackPrimary drops the task's primary attempt from the running index,
// idempotently: fault replay can reach an attempt through more than one
// path, and only the first removal counts.
func (s *Sim) untrackPrimary(ti *taskInfo) {
	if ti.runPos >= 0 {
		s.untrackRunning(ti.runPos)
		ti.runPos = -1
	}
}

// LaunchSpeculative starts a duplicate copy of a running task on node n
// (which must have a free slot), reading from the best replica. It
// returns false if no running task qualifies. Hadoop launches such copies
// when slots idle near the end of a job; the first finisher wins. The
// candidate scan walks the running-attempt index (bounded by the slot
// count) rather than every task; the winner is the latest-finishing
// eligible task, ties broken by arrival order then task index — the
// first-found rule of the old full scan.
func (s *Sim) LaunchSpeculative(n cluster.NodeID) bool {
	if !s.opts.Speculative || s.nodes[n].down || s.nodes[n].free <= 0 {
		return false
	}
	best := int32(-1)
	var bestDone float64
	var bestPos, bestIdx int
	for _, ref := range s.running {
		if ref&1 == 1 {
			continue // speculative copies are not re-speculated
		}
		flat := ref >> 1
		ti := &s.tasks[flat]
		if ti.spec >= 0 || ti.node == n {
			continue
		}
		pos, idx := s.jobs[ti.job].fifoPos, int(ti.idx)
		if best == -1 || ti.doneAt > bestDone ||
			(ti.doneAt == bestDone && (pos < bestPos || (pos == bestPos && idx < bestIdx))) {
			best, bestDone, bestPos, bestIdx = flat, ti.doneAt, pos, idx
		}
	}
	if best == -1 {
		return false
	}
	ti := &s.tasks[best]
	bestJob, bestTask := int(ti.job), int(ti.idx)
	store := NoStore
	if s.W.Jobs[bestJob].HasInput() {
		store = s.BestReplica(bestJob, bestTask, n)
	}
	s.startAttempt(bestJob, bestTask, n, store, true)
	return true
}

// BestReplica returns the replica of the task's block closest to node n:
// node-local beats zone-local beats remote.
func (s *Sim) BestReplica(job, task int, n cluster.NodeID) cluster.StoreID {
	store, _ := s.BestReplicaRank(job, task, n)
	return store
}

// BestReplicaRank returns the closest replica and its locality rank
// (0 node-local, 1 zone-local, 2 remote).
func (s *Sim) BestReplicaRank(job, task int, n cluster.NodeID) (cluster.StoreID, int) {
	j := s.W.Jobs[job]
	reps := s.P.Replicas(j.Object, task)
	best := reps[0]
	bestRank := s.localityRank(n, best)
	for _, r := range reps[1:] {
		if rank := s.localityRank(n, r); rank < bestRank {
			best, bestRank = r, rank
		}
	}
	return best, bestRank
}

func (s *Sim) localityRank(n cluster.NodeID, store cluster.StoreID) int {
	switch {
	case s.C.Nodes[n].Store == store:
		return 0
	case s.C.Nodes[n].Zone == s.C.Stores[store].Zone:
		return 1
	default:
		return 2
	}
}

// KillTask preempts a Running task: its attempt is cancelled, the CPU it
// burned so far is billed (work lost is work paid for, as with Hadoop's
// fair-scheduler preemption), the slot frees, and the task returns to
// Pending for rescheduling. Queued tasks simply return to Pending — the
// queue entry is voided in place and dropped at the node's next drain,
// not searched for. Killing a Pending or Done task is an error.
func (s *Sim) KillTask(job, task int) error {
	flat := s.flat(job, task)
	ti := &s.tasks[flat]
	switch TaskState(s.states[flat]) {
	case Running:
		n := ti.node
		node := &s.C.Nodes[n]
		// Bill the partial burn: we do not track per-attempt start, so
		// charge the elapsed share of the expected runtime.
		cpuSec, _ := s.taskDemand(job, task)
		slotECU := node.ECU / float64(node.Slots)
		remaining := ti.doneAt - s.clock
		burned := cpuSec - remaining*slotECU
		if burned < 0 {
			burned = 0
		}
		if burned > cpuSec {
			burned = cpuSec
		}
		billed := cost.CPUCost(ti.price, burned)
		s.charge(cost.CatSpeculative, job, billed)
		if ti.flow != nil {
			s.net.cancel(ti.flow)
			ti.flow = nil
		}
		// Untrack before the spec kill: its dispatch runs scheduler
		// code, which must not find this half-dead attempt and
		// speculate on it.
		s.untrackPrimary(ti)
		if ti.spec >= 0 {
			s.killSpeculative(job, task)
		}
		ti.gen++
		s.setStateFlat(flat, Pending)
		s.noteKill(job, task, n, "preempt", billed, false)
		s.slotFreed(n)
		s.dispatch(n)
		return nil
	case Queued:
		ti.qNode = -1
		s.setStateFlat(flat, Pending)
		s.noteKill(job, task, cluster.NodeID(-1), "dequeue", 0, false)
		return nil
	default:
		return fmt.Errorf("sim: cannot kill task %d/%d in state %d", job, task, TaskState(s.states[flat]))
	}
}

// RunningTasks returns the Running task indices of a job, ascending.
func (s *Sim) RunningTasks(job int) []int {
	var out []int
	base, end := s.taskBase[job], s.taskBase[job+1]
	for f := base; f < end; f++ {
		if TaskState(s.states[f]) == Running {
			out = append(out, int(f-base))
		}
	}
	return out
}

// TaskNode returns the node a Running task occupies.
func (s *Sim) TaskNode(job, task int) cluster.NodeID { return s.task(job, task).node }

// Enqueue pins a task to node n's FIFO queue, to start no earlier than
// readyAt (e.g. after a data move completes). The task runs when a slot
// frees and readyAt passes, reading from store.
func (s *Sim) Enqueue(job, task int, n cluster.NodeID, store cluster.StoreID, readyAt float64) error {
	flat := s.flat(job, task)
	ti := &s.tasks[flat]
	if st := TaskState(s.states[flat]); st != Pending {
		return fmt.Errorf("sim: task %d/%d enqueued in state %d", job, task, st)
	}
	if s.nodes[n].down {
		return fmt.Errorf("sim: task %d/%d enqueued on down node %d", job, task, n)
	}
	s.setStateFlat(flat, Queued)
	if js := &s.jobs[job]; js.firstEnqueue < 0 {
		js.firstEnqueue = s.clock // the job's epoch-planned span milestone
	}
	ti.qSeq++
	ti.qNode = int32(n)
	s.nodes[n].queue = append(s.nodes[n].queue, queueEntry{
		job: int32(job), task: int32(task), seq: ti.qSeq, store: store, readyAt: readyAt,
	})
	s.noteEnqueue(job, task, n, store, readyAt)
	if readyAt > s.clock {
		s.armDispatch(n, readyAt)
	}
	s.dispatch(n)
	return nil
}

// UnqueueAll returns all queued-but-not-started tasks of a job to Pending
// (used by epoch schedulers that re-plan). The job's tasks are flipped in
// place — O(job size), not O(cluster queues); the dead entries fall out
// of their nodes' queues at the next drain.
func (s *Sim) UnqueueAll(job int) {
	base, end := s.taskBase[job], s.taskBase[job+1]
	for f := base; f < end; f++ {
		if TaskState(s.states[f]) == Queued {
			s.tasks[f].qNode = -1
			s.setStateFlat(f, Pending)
		}
	}
}

// dispatch launches ready queued tasks while slots are free; if the node
// is idle once the queue settles it hands the slot to the scheduler.
// (Future-ready queue entries have dispatch wake-ups armed by Enqueue.)
func (s *Sim) dispatch(nid cluster.NodeID) {
	ns := &s.nodes[nid]
	if ns.down {
		return
	}
	s.drainQueue(nid, ns)
	if ns.free > 0 {
		s.notifySlotFree(nid)
	}
}

// drainQueue launches the node's ready queue entries in FIFO order while
// slots are free, compacting out entries consumed, stale (killed,
// unqueued or re-enqueued elsewhere — validated against the task's
// qNode/qSeq) or launched. One pass suffices: the clock does not advance
// mid-drain, so an entry's readiness cannot change, and launches enqueue
// nothing.
func (s *Sim) drainQueue(nid cluster.NodeID, ns *nodeState) {
	q := ns.queue
	if len(q) == 0 {
		return
	}
	w := 0
	for r := 0; r < len(q); r++ {
		e := q[r]
		flat := s.taskBase[e.job] + e.task
		ti := &s.tasks[flat]
		if TaskState(s.states[flat]) != Queued || ti.qNode != int32(nid) || ti.qSeq != e.seq {
			continue // stale entry
		}
		if ns.free > 0 && e.readyAt <= s.clock+1e-9 {
			ti.qNode = -1
			s.setStateFlat(flat, Pending) // Launch re-validates
			if err := s.Launch(int(e.job), int(e.task), nid, e.store); err != nil {
				// The block moved or the task completed speculatively;
				// fall back to the best replica if still pending.
				if TaskState(s.states[flat]) == Pending && s.W.Jobs[e.job].HasInput() {
					_ = s.Launch(int(e.job), int(e.task), nid, s.BestReplica(int(e.job), int(e.task), nid))
				}
			}
			continue
		}
		q[w] = e
		w++
	}
	ns.queue = q[:w]
}

// MoveBlock relocates one block's primary copy from its current store to
// dst, charging the placement category and returning the completion time.
// The placement is updated when the transfer lands; callers sequencing
// tasks after the move should pass the returned time as Enqueue readyAt.
func (s *Sim) MoveBlock(obj int, block int, dst cluster.StoreID) float64 {
	j := s.W.Objects[obj]
	src := s.P.Primary(j.ID, block)
	if src == dst {
		return s.clock
	}
	mb := j.BlockSizeMB(block)
	billed := s.C.SSPerGB(src, dst).MulFloat(mb / 1024)
	s.charge(cost.CatPlacement, -1, billed)
	doneAt := s.clock + mb/s.C.BandwidthStoreStore(src, dst)
	s.noteMove(obj, block, src, dst, mb, doneAt-s.clock, billed, "plan")
	key := [2]int{obj, block}
	mv := s.movingBlocks[key]
	mv.moves++
	mv.dst, mv.doneAt = dst, doneAt
	s.movingBlocks[key] = mv
	s.At(doneAt, func() {
		s.P.SetPrimary(j.ID, block, dst)
		mv := s.movingBlocks[key]
		mv.moves--
		if mv.moves <= 0 {
			delete(s.movingBlocks, key)
		} else {
			s.movingBlocks[key] = mv
		}
	})
	return doneAt
}

// BlockMove reports whether a MoveBlock transfer for (obj, block) is
// still in flight, and if so the destination store and landing time of
// the most recently issued move. Planners consult it to avoid racing a
// relocation that an earlier epoch already paid for.
func (s *Sim) BlockMove(obj, block int) (dst cluster.StoreID, doneAt float64, inFlight bool) {
	mv, ok := s.movingBlocks[[2]int{obj, block}]
	if !ok {
		return NoStore, 0, false
	}
	return mv.dst, mv.doneAt, true
}
