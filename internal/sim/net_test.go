package sim

import (
	"math"
	"testing"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/workload"
)

// twoZoneCluster: one node per zone, data lives in za.
func twoZoneCluster() *cluster.Cluster {
	b := cluster.NewBuilder("za", "zb")
	b.AddNode("za", "t", 4, 4, cost.Millicents(1), 1e6)
	b.AddNode("zb", "t", 4, 4, cost.Millicents(1), 1e6)
	return b.Build()
}

func TestSharedLinksHalveConcurrentTransfers(t *testing.T) {
	// Two cross-zone reads at once: dedicated model gives each the full
	// 31.25 MB/s; shared model halves it, roughly doubling transfer time.
	build := func() (*cluster.Cluster, *workload.Workload) {
		c := twoZoneCluster()
		wb := workload.NewBuilder()
		arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 0.064}
		wb.AddInputJob("j1", "u", arch, 64, 0, 0)
		wb.AddInputJob("j2", "u", arch, 64, 0, 0)
		return c, wb.Build()
	}
	pin := func() *stubSched {
		ss := &stubSched{}
		ss.onArrival = func(s *Sim, j int) {
			// Both tasks read cross-zone on node 1.
			if err := s.Launch(j, 0, 1, 0); err != nil {
				t.Error(err)
			}
		}
		return ss
	}
	c, w := build()
	ded, err := New(c, w, nil, pin(), Options{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	c, w = build()
	shared, err := New(c, w, nil, pin(), Options{SharedLinks: true}).Run()
	if err != nil {
		t.Fatal(err)
	}
	// Dedicated: 64/31.25 = 2.048 s transfer + 0.064 ECU-s at 1 ECU/slot.
	if math.Abs(ded.Makespan-(2.048+0.064)) > 1e-6 {
		t.Errorf("dedicated makespan = %g", ded.Makespan)
	}
	// Shared: both flows at 15.625 MB/s finish together at 4.096 s.
	if math.Abs(shared.Makespan-(4.096+0.064)) > 1e-6 {
		t.Errorf("shared makespan = %g, want ~4.16", shared.Makespan)
	}
	// Dollar cost identical — contention costs time, not money.
	if ded.TotalCost() != shared.TotalCost() {
		t.Errorf("costs differ: %v vs %v", ded.TotalCost(), shared.TotalCost())
	}
}

func TestSharedLinksProcessorSharingDynamics(t *testing.T) {
	// A short flow joins a long one mid-way: the long flow slows down
	// while sharing and speeds back up after — classic processor sharing.
	// Drive the flow engine directly on an empty workload.
	c := twoZoneCluster()
	s := New(c, workload.NewBuilder().Build(), nil, &stubSched{}, Options{SharedLinks: true})
	var longDone, shortDone float64
	s.net.start("za", "zb", 62.5, func() { longDone = s.Now() })
	s.At(1, func() {
		s.net.start("za", "zb", 31.25, func() { shortDone = s.Now() })
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Long alone for 1 s (31.25 MB done), then shares: both at 15.625
	// MB/s. Short needs 2 s shared → done at t=3. Long has 31.25 MB
	// left at t=1, transfers 31.25 over the shared 2 s, done at t=3 too.
	if math.Abs(shortDone-3) > 1e-9 {
		t.Errorf("short done at %g, want 3", shortDone)
	}
	if math.Abs(longDone-3) > 1e-9 {
		t.Errorf("long done at %g, want 3", longDone)
	}
}

func TestSharedLinksCancelRestoresBandwidth(t *testing.T) {
	c := twoZoneCluster()
	s := New(c, workload.NewBuilder().Build(), nil, &stubSched{}, Options{SharedLinks: true})
	var aDone float64
	fa := s.net.start("za", "zb", 62.5, func() { aDone = s.Now() })
	fb := s.net.start("za", "zb", 62.5, func() {})
	_ = fa
	s.At(1, func() {
		moved := s.net.cancel(fb)
		// 1 s at half rate: 15.625 MB moved.
		if math.Abs(moved-15.625) > 1e-9 {
			t.Errorf("cancelled flow moved %g, want 15.625", moved)
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Flow a: 1 s shared (15.625 MB) + (62.5−15.625)/31.25 = 1.5 s alone.
	if math.Abs(aDone-2.5) > 1e-9 {
		t.Errorf("flow a done at %g, want 2.5", aDone)
	}
	if s.net.activeFlows("za", "zb") != 0 {
		t.Error("flows leaked")
	}
}

func TestSharedLinksTimeoutCancelsFlow(t *testing.T) {
	// Starved cross-zone link under sharing: the task times out, the
	// flow is cancelled, the partial bytes are billed, and the retry
	// eventually succeeds with the timeout waived.
	b := cluster.NewBuilder("za", "zb")
	b.AddNode("za", "t", 1, 1, cost.Millicents(1), 1e6)
	b.AddNode("zb", "t", 1, 1, cost.Millicents(1), 1e6)
	bw := cluster.DefaultBandwidths()
	bw.InterZoneMBps = 0.02
	b.SetBandwidths(bw)
	c := b.Build()
	wb := workload.NewBuilder()
	arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 1}
	wb.AddInputJob("j", "u", arch, 64, 0, 0)
	w := wb.Build()
	ss := &stubSched{}
	ss.onSlotFree = func(s *Sim, n cluster.NodeID) {
		if n != 1 {
			return
		}
		for _, j := range s.ArrivedJobs() {
			for _, task := range s.PendingTasks(j) {
				_ = s.Launch(j, task, 1, 0)
			}
		}
	}
	ss.onArrival = func(s *Sim, _ int) { s.KickIdleNodes() }
	r, err := New(c, w, nil, ss, Options{SharedLinks: true, MaxAttempts: 1}).Run()
	if err != nil {
		t.Fatal(err)
	}
	// One timeout window (600 s) wasted, then the full 3200 s transfer.
	if r.Makespan < 3200 {
		t.Errorf("makespan = %g", r.Makespan)
	}
	if r.Cost.Category(cost.CatTransfer) <= cost.Millicents(62.5) {
		t.Error("partial transfer of the timed-out attempt not billed")
	}
}

func TestSharedLinksLocalReadsDoNotContend(t *testing.T) {
	// Node-local reads bypass the shared engine entirely.
	c := twoZoneCluster()
	wb := workload.NewBuilder()
	arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 0.064}
	wb.AddInputJob("l1", "u", arch, 64, 0, 0)
	wb.AddInputJob("l2", "u", arch, 64, 0, 0)
	w := wb.Build()
	ss := &stubSched{}
	ss.onArrival = func(s *Sim, j int) {
		_ = s.Launch(j, 0, 0, 0) // node 0 co-located with store 0
	}
	s := New(c, w, nil, ss, Options{SharedLinks: true})
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Both at local 100 MB/s in parallel slots: 0.64 + 0.064.
	if math.Abs(r.Makespan-(0.64+0.064)) > 1e-6 {
		t.Errorf("makespan = %g", r.Makespan)
	}
}
