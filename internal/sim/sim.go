// Package sim is a deterministic discrete-event simulator of a Hadoop-like
// MapReduce cluster: task slots per node, block-granular input reads over a
// pairwise bandwidth model, store-to-store data relocation, per-task dollar
// accounting, progress timeouts and optional speculative execution.
//
// Schedulers plug in through the Scheduler interface. The simulator owns
// the clock, the event heap, per-node slot state and per-node pinned task
// queues; schedulers react to job arrivals, free slots and task
// completions, and act through Launch, Enqueue and MoveBlock.
//
// Simplifications relative to a real cluster (documented in DESIGN.md):
// transfers do not contend for link capacity (each gets the full pairwise
// bandwidth), and a task's CPU rate is its slot's fixed share of the
// node's ECU throughput.
package sim

import (
	"container/heap"
	"fmt"
	"sort"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/hdfs"
	"lips/internal/metrics"
	"lips/internal/obs"
	"lips/internal/trace"
	"lips/internal/workload"
)

// Scheduler is the plug-in interface, mirroring what Hadoop's JobTracker
// offers a TaskScheduler.
type Scheduler interface {
	// Name labels results.
	Name() string
	// Init runs before the first event; epoch-based schedulers register
	// their first tick here.
	Init(s *Sim)
	// OnJobArrival fires when a job is submitted.
	OnJobArrival(s *Sim, job int)
	// OnSlotFree fires when node n has at least one free slot and no
	// ready queued task. The scheduler may Launch tasks.
	OnSlotFree(s *Sim, n cluster.NodeID)
	// OnTaskDone fires after a task completes.
	OnTaskDone(s *Sim, job, task int)
	// OnNodeDown fires after node n crashes: its running attempts are
	// already killed, its pinned queue drained back to Pending, and its
	// slots gone until OnNodeUp. Epoch planners should rebuild their view
	// of the cluster; greedy schedulers can rely on the slot-free path.
	OnNodeDown(s *Sim, n cluster.NodeID)
	// OnNodeUp fires after node n rejoins with every slot free.
	OnNodeUp(s *Sim, n cluster.NodeID)
}

// NopNodeEvents provides no-op fault hooks; embed it in schedulers that
// do not track cluster membership (the simulator re-dispatches free slots
// after churn, which is all a greedy scheduler needs).
type NopNodeEvents struct{}

// OnNodeDown implements Scheduler.
func (NopNodeEvents) OnNodeDown(*Sim, cluster.NodeID) {}

// OnNodeUp implements Scheduler.
func (NopNodeEvents) OnNodeUp(*Sim, cluster.NodeID) {}

// Options tunes the simulated Hadoop configuration.
type Options struct {
	// Speculative enables Hadoop-style speculative execution (the paper
	// disables it for LiPS runs; see §VI-A).
	Speculative bool
	// TaskTimeoutSec kills tasks whose input transfer has not completed
	// within the window — Hadoop's 10-minute progress timeout. LiPS
	// raises it to 20 minutes. 0 means 600.
	TaskTimeoutSec float64
	// MaxAttempts is the per-task retry budget before the timeout is
	// waived (prevents livelock on absurd topologies). 0 means 4.
	MaxAttempts int
	// MaxEvents aborts runaway simulations. 0 means 50 million.
	MaxEvents int
	// BillOccupancy charges CPU for a task's wall-clock slot occupancy
	// (transfer stalls included) instead of pure CPU seconds — an
	// ablation of the billing model (instance time is what EC2 actually
	// charges for).
	BillOccupancy bool
	// Deps declares inter-job dependencies: Deps[j] lists the jobs that
	// must complete before job j is submitted (the paper's §III DAG
	// workloads, reduced to levels by dependency-gated arrivals). Jobs
	// absent or with empty lists arrive at their ArrivalSec. Validate
	// the graph with dag.Validate first — a cyclic graph deadlocks and
	// is reported as an error at the end of Run.
	Deps [][]int
	// SharedLinks makes concurrent task input transfers between a zone
	// pair share that pair's bandwidth (processor sharing) instead of
	// each getting the full pairwise rate — the network-saturation
	// effect the paper warns about. Same-node disk reads never contend;
	// background block relocation stays on the dedicated-rate model so
	// epoch planners can predict its completion.
	SharedLinks bool
	// PriceMultiplier, when non-nil, scales a node's ECU-second price by
	// a time-dependent factor keyed on its instance type — a spot-market
	// model. Each attempt's CPU charge uses the multiplier sampled when
	// the attempt starts, so an attempt straddling a price change keeps
	// its launch-time price — the same convention the LiPS planner uses
	// when it prices an epoch's LP at the epoch start. Schedulers that
	// want to react must consult it themselves (the LiPS adapter
	// re-prices its LP every epoch).
	PriceMultiplier func(instanceType string, t float64) float64
	// Faults injects deterministic node crashes, recoveries, store data
	// losses and straggler slowdowns into the run (see FaultPlan). Nil
	// disables fault injection.
	Faults *FaultPlan
	// Tracer receives structured run events (task lifecycle, block moves,
	// faults, epoch solves via Sim.Tracer). Nil or trace.Nop disables
	// tracing; the disabled path is one branch per call site and
	// allocation-free.
	Tracer trace.Tracer
	// SampleIntervalSec emits a periodic time-series sample event
	// (cumulative cost by category, queue depth, slot utilization,
	// locality mix) every interval of simulated time while tracing is
	// enabled. 0 disables sampling.
	SampleIntervalSec float64
	// TraceLabel names this run in multi-run traces (e.g. the experiment
	// name when a benchmark suite traces every run into one file).
	TraceLabel string
	// Metrics mirrors the run into a live obs.Registry (lifecycle and
	// cost counters exact at their chokepoints, state gauges refreshed
	// every MetricsSampleSec) for HTTP scraping while the simulation
	// runs. Nil disables; the disabled path is one pointer check per
	// call site and allocation-free.
	Metrics *obs.Registry
	// MetricsSampleSec is the simulated-time interval between refreshes
	// of the sampled gauges (task states, slots, clock) while Metrics is
	// set. 0 means SampleIntervalSec when sampling is on, else 60.
	MetricsSampleSec float64
}

func (o Options) withDefaults() Options {
	if o.TaskTimeoutSec == 0 {
		o.TaskTimeoutSec = 600
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 4
	}
	if o.MaxEvents == 0 {
		o.MaxEvents = 50_000_000
	}
	if o.Tracer == nil {
		o.Tracer = trace.Nop{}
	}
	if o.MetricsSampleSec == 0 {
		if o.SampleIntervalSec > 0 {
			o.MetricsSampleSec = o.SampleIntervalSec
		} else {
			o.MetricsSampleSec = 60
		}
	}
	return o
}

// TaskState is a task's lifecycle state.
type TaskState int

// Task lifecycle.
const (
	Pending TaskState = iota // not yet assigned
	Queued                   // pinned to a node's queue, waiting for a slot
	Running
	Done
)

// event is one scheduled callback; seq breaks ties deterministically.
type event struct {
	at  float64
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

type taskInfo struct {
	state    TaskState
	attempts int
	gen      int // incremented to cancel in-flight attempts
	node     cluster.NodeID
	store    cluster.StoreID // input store of the running attempt
	doneAt   float64
	flow     *flow // in-flight shared-link transfer, if any

	// transferEndAt is when the running attempt's dedicated-rate input
	// read finishes (shared-link reads track ti.flow instead). price is
	// the node's ECU-second price sampled at attempt start — the price
	// the attempt is billed at even if the spot multiplier moves later.
	transferEndAt float64
	price         cost.Money

	specRunning       bool
	specNode          cluster.NodeID
	specStore         cluster.StoreID
	specStart         float64
	specCPUSec        float64
	specFlow          *flow
	specTransferEndAt float64
	specPrice         cost.Money
}

type jobState struct {
	arrived    bool
	remaining  int
	doneAt     float64
	waitingOn  int   // unfinished prerequisite jobs
	dependents []int // jobs gated on this one
}

type queueEntry struct {
	job, task int
	store     cluster.StoreID
	readyAt   float64
}

type nodeState struct {
	free  int
	queue []queueEntry

	down       bool    // crashed: no slots, no launches, no enqueues
	slowFactor float64 // straggler runtime multiplier while slowUntil is ahead
	slowUntil  float64
}

// Sim is one simulation run. Create with New, execute with Run.
type Sim struct {
	C *cluster.Cluster
	W *workload.Workload
	P *hdfs.Placement

	Ledger   *cost.Ledger
	Locality metrics.LocalityCounter
	NodeCPU  *metrics.NodeCPU
	UserCPU  map[string]float64
	Faults   metrics.FaultStats

	opts  Options
	sched Scheduler

	// tr is the event sink; traceOn caches Enabled so the disabled path
	// costs one boolean load per call site. om is nil when live metrics
	// are disabled — the same cached-guard discipline (see obs.go).
	tr      trace.Tracer
	traceOn bool
	om      *simMetrics

	clock  float64
	seq    int64
	events eventHeap
	nevent int

	nodes []nodeState
	jobs  []jobState
	tasks [][]taskInfo

	fifo        []int // arrival-ordered incomplete jobs
	busySlotSec float64
	remaining   int // incomplete jobs
	net         *netEngine

	// movingBlocks counts in-flight MoveBlock transfers per (object,
	// block), so planners can avoid racing a relocation they (or a
	// previous epoch) already issued.
	movingBlocks map[[2]int]blockMove
}

type blockMove struct {
	moves  int
	dst    cluster.StoreID // destination of the latest move
	doneAt float64         // when the latest move lands
}

// New builds a simulation of workload w on cluster c under the given
// scheduler. The initial data placement defaults to every object on its
// origin store; pass a non-nil placement to override (it is used
// directly, not copied).
func New(c *cluster.Cluster, w *workload.Workload, p *hdfs.Placement, sched Scheduler, opts Options) *Sim {
	if p == nil {
		p = w.Placement()
	}
	s := &Sim{
		C: c, W: w, P: p,
		Ledger:  cost.NewLedger(),
		NodeCPU: metrics.NewNodeCPU(),
		UserCPU: make(map[string]float64),
		opts:    opts.withDefaults(),
		sched:   sched,
	}
	s.tr = s.opts.Tracer
	s.traceOn = s.tr.Enabled()
	if s.opts.Metrics != nil {
		s.om = newSimMetrics(s.opts.Metrics)
	}
	s.nodes = make([]nodeState, len(c.Nodes))
	for i, n := range c.Nodes {
		s.nodes[i].free = n.Slots
	}
	s.jobs = make([]jobState, len(w.Jobs))
	s.tasks = make([][]taskInfo, len(w.Jobs))
	for j, job := range w.Jobs {
		s.tasks[j] = make([]taskInfo, job.NumTasks)
		s.jobs[j].remaining = job.NumTasks
	}
	s.remaining = len(w.Jobs)
	s.net = newNetEngine(s)
	s.movingBlocks = make(map[[2]int]blockMove)
	return s
}

// Now returns the simulation clock in seconds.
func (s *Sim) Now() float64 { return s.clock }

// At schedules fn to run at time t (clamped to now).
func (s *Sim) At(t float64, fn func()) {
	if t < s.clock {
		t = s.clock
	}
	s.seq++
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn})
}

// Run executes the simulation to completion and returns the result.
func (s *Sim) Run() (*Result, error) {
	if s.opts.Faults != nil {
		if err := s.opts.Faults.validate(s.C); err != nil {
			return nil, err
		}
		for _, f := range s.opts.Faults.Faults {
			f := f
			s.At(f.At, func() { s.inject(f) })
		}
	}
	s.noteRun()
	sampling := s.traceOn && s.opts.SampleIntervalSec > 0
	if sampling {
		s.emitSample()
		s.scheduleSample(s.opts.SampleIntervalSec)
	}
	// When trace sampling already refreshes the gauges on the same
	// cadence, a second refresh chain would only race it at coincident
	// ticks; run one only when the cadences differ.
	if s.om != nil && !(sampling && s.opts.SampleIntervalSec == s.opts.MetricsSampleSec) {
		s.obsRefresh()
		s.scheduleObsRefresh(s.opts.MetricsSampleSec)
	}
	s.sched.Init(s)
	for j, deps := range s.opts.Deps {
		if j >= len(s.jobs) {
			return nil, fmt.Errorf("sim: Deps refers to job %d of %d", j, len(s.jobs))
		}
		for _, d := range deps {
			if d < 0 || d >= len(s.jobs) {
				return nil, fmt.Errorf("sim: job %d depends on out-of-range job %d", j, d)
			}
			s.jobs[j].waitingOn++
			s.jobs[d].dependents = append(s.jobs[d].dependents, j)
		}
	}
	for j := range s.W.Jobs {
		if s.jobs[j].waitingOn > 0 {
			continue // gated on dependencies
		}
		job := j
		s.At(s.W.Jobs[j].ArrivalSec, func() { s.arrive(job) })
	}
	for len(s.events) > 0 {
		s.nevent++
		if s.nevent > s.opts.MaxEvents {
			return nil, fmt.Errorf("sim: aborted after %d events at t=%.1f (%d jobs incomplete)", s.nevent, s.clock, s.remaining)
		}
		ev := heap.Pop(&s.events).(event)
		s.clock = ev.at
		ev.fn()
	}
	if s.remaining > 0 {
		return nil, fmt.Errorf("sim: deadlock: %d jobs incomplete at t=%.1f under %s", s.remaining, s.clock, s.sched.Name())
	}
	return s.result(), nil
}

func (s *Sim) arrive(job int) {
	s.jobs[job].arrived = true
	s.fifo = append(s.fifo, job)
	s.sched.OnJobArrival(s, job)
}

// ArrivedJobs returns the arrived-and-incomplete jobs in arrival order.
func (s *Sim) ArrivedJobs() []int {
	out := make([]int, 0, len(s.fifo))
	for _, j := range s.fifo {
		if s.jobs[j].remaining > 0 {
			out = append(out, j)
		}
	}
	return out
}

// PendingTasks returns the Pending task indices of a job, ascending.
func (s *Sim) PendingTasks(job int) []int {
	var out []int
	for t := range s.tasks[job] {
		if s.tasks[job][t].state == Pending {
			out = append(out, t)
		}
	}
	return out
}

// TaskState returns the state of one task.
func (s *Sim) TaskState(job, task int) TaskState { return s.tasks[job][task].state }

// FreeSlots returns the free slot count of a node.
func (s *Sim) FreeSlots(n cluster.NodeID) int { return s.nodes[n].free }

// JobRemaining returns how many tasks of the job are not Done.
func (s *Sim) JobRemaining(job int) int { return s.jobs[job].remaining }

// KickIdleNodes invokes OnSlotFree for every live node that has free
// slots and no dispatchable queue entry — how built-in schedulers react
// to arrivals (and how they pick up work orphaned by a crash).
func (s *Sim) KickIdleNodes() {
	for n := range s.nodes {
		if !s.nodes[n].down && s.nodes[n].free > 0 {
			s.dispatch(cluster.NodeID(n))
		}
	}
}

// result assembles the final Result.
func (s *Sim) result() *Result {
	r := &Result{
		Scheduler: s.sched.Name(),
		Cost:      s.Ledger,
		Locality:  s.Locality,
		NodeCPU:   s.NodeCPU,
		JobDone:   make([]float64, len(s.jobs)),
		UserCPU:   s.UserCPU,
		Faults:    s.Faults,
	}
	totalSlots := 0
	for _, n := range s.C.Nodes {
		totalSlots += n.Slots
	}
	for j := range s.jobs {
		r.JobDone[j] = s.jobs[j].doneAt
		if s.jobs[j].doneAt > r.Makespan {
			r.Makespan = s.jobs[j].doneAt
		}
		r.SumJobSec += s.jobs[j].doneAt - s.W.Jobs[j].ArrivalSec
	}
	r.Utilization = metrics.Utilization(s.busySlotSec, float64(totalSlots), r.Makespan)
	shares := make([]float64, 0, len(s.UserCPU))
	users := make([]string, 0, len(s.UserCPU))
	for u := range s.UserCPU {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		shares = append(shares, s.UserCPU[u])
	}
	r.Fairness = metrics.JainIndex(shares)
	return r
}

// Result summarises one run.
type Result struct {
	Scheduler string

	Makespan  float64 // completion time of the last job
	SumJobSec float64 // Σ per-job (done − arrival), the paper's "total job execution time"

	Cost     *cost.Ledger
	Locality metrics.LocalityCounter
	NodeCPU  *metrics.NodeCPU
	JobDone  []float64
	UserCPU  map[string]float64
	Faults   metrics.FaultStats

	Utilization float64
	Fairness    float64 // Jain index over per-user CPU shares
}

// TotalCost is shorthand for the ledger total.
func (r *Result) TotalCost() cost.Money { return r.Cost.Total() }

// String gives a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s: cost=%v makespan=%.0fs util=%.0f%% local=%.0f%%",
		r.Scheduler, r.TotalCost(), r.Makespan, 100*r.Utilization, 100*r.Locality.LocalFraction())
}
