// Package sim is a deterministic discrete-event simulator of a Hadoop-like
// MapReduce cluster: task slots per node, block-granular input reads over a
// pairwise bandwidth model, store-to-store data relocation, per-task dollar
// accounting, progress timeouts and optional speculative execution.
//
// Schedulers plug in through the Scheduler interface. The simulator owns
// the clock, the event heap, per-node slot state and per-node pinned task
// queues; schedulers react to job arrivals, free slots and task
// completions, and act through Launch, Enqueue and MoveBlock.
//
// The core is sized for 10k-node clusters running millions of tasks: task
// state lives in one flat index-addressed table (with the hot state column
// in its own byte array), the event heap is a hand-rolled binary heap over
// typed event structs (no per-event closure or interface boxing on the
// steady-state paths), and free slots, running attempts and task-state
// totals are kept in incremental indexes (see index.go) instead of being
// recomputed by scans. Options.LegacyDispatch retains the original
// full-scan control paths for differential testing.
//
// Simplifications relative to a real cluster (documented in DESIGN.md):
// transfers do not contend for link capacity (each gets the full pairwise
// bandwidth), and a task's CPU rate is its slot's fixed share of the
// node's ECU throughput.
package sim

import (
	"fmt"
	"math/bits"
	"sort"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/hdfs"
	"lips/internal/metrics"
	"lips/internal/obs"
	"lips/internal/trace"
	"lips/internal/workload"
)

// Scheduler is the plug-in interface, mirroring what Hadoop's JobTracker
// offers a TaskScheduler.
type Scheduler interface {
	// Name labels results.
	Name() string
	// Init runs before the first event; epoch-based schedulers register
	// their first tick here.
	Init(s *Sim)
	// OnJobArrival fires when a job is submitted.
	OnJobArrival(s *Sim, job int)
	// OnSlotFree fires when node n has at least one free slot and no
	// ready queued task. The scheduler may Launch tasks.
	OnSlotFree(s *Sim, n cluster.NodeID)
	// OnTaskDone fires after a task completes.
	OnTaskDone(s *Sim, job, task int)
	// OnNodeDown fires after node n crashes: its running attempts are
	// already killed, its pinned queue drained back to Pending, and its
	// slots gone until OnNodeUp. Epoch planners should rebuild their view
	// of the cluster; greedy schedulers can rely on the slot-free path.
	OnNodeDown(s *Sim, n cluster.NodeID)
	// OnNodeUp fires after node n rejoins with every slot free.
	OnNodeUp(s *Sim, n cluster.NodeID)
}

// BatchScheduler is an optional Scheduler extension for large clusters: a
// scheduler that implements it receives one combined OnSlotsFree call when
// many nodes idle at once (job-arrival sweeps, crash recovery) instead of
// N per-node OnSlotFree calls. KickIdleNodes drains every idle node's
// pinned queue first, then delivers the still-idle nodes in ascending
// order; ordinary single-node slot-free events arrive as a one-element
// slice. The slice is owned by the simulator and valid only for the
// duration of the call — do not retain it. Schedulers that do not
// implement the interface keep the exact per-node OnSlotFree sequence
// they always had (the compatibility shim in notifySlotFree).
type BatchScheduler interface {
	Scheduler
	OnSlotsFree(s *Sim, nodes []cluster.NodeID)
}

// NopNodeEvents provides no-op fault hooks; embed it in schedulers that
// do not track cluster membership (the simulator re-dispatches free slots
// after churn, which is all a greedy scheduler needs).
type NopNodeEvents struct{}

// OnNodeDown implements Scheduler.
func (NopNodeEvents) OnNodeDown(*Sim, cluster.NodeID) {}

// OnNodeUp implements Scheduler.
func (NopNodeEvents) OnNodeUp(*Sim, cluster.NodeID) {}

// Options tunes the simulated Hadoop configuration.
type Options struct {
	// Speculative enables Hadoop-style speculative execution (the paper
	// disables it for LiPS runs; see §VI-A).
	Speculative bool
	// TaskTimeoutSec kills tasks whose input transfer has not completed
	// within the window — Hadoop's 10-minute progress timeout. LiPS
	// raises it to 20 minutes. 0 means 600.
	TaskTimeoutSec float64
	// MaxAttempts is the per-task retry budget before the timeout is
	// waived (prevents livelock on absurd topologies). 0 means 4.
	MaxAttempts int
	// MaxEvents aborts runaway simulations. 0 means 50 million.
	MaxEvents int
	// BillOccupancy charges CPU for a task's wall-clock slot occupancy
	// (transfer stalls included) instead of pure CPU seconds — an
	// ablation of the billing model (instance time is what EC2 actually
	// charges for).
	BillOccupancy bool
	// Deps declares inter-job dependencies: Deps[j] lists the jobs that
	// must complete before job j is submitted (the paper's §III DAG
	// workloads, reduced to levels by dependency-gated arrivals). Jobs
	// absent or with empty lists arrive at their ArrivalSec. Validate
	// the graph with dag.Validate first — a cyclic graph deadlocks and
	// is reported as an error at the end of Run.
	Deps [][]int
	// SharedLinks makes concurrent task input transfers between a zone
	// pair share that pair's bandwidth (processor sharing) instead of
	// each getting the full pairwise rate — the network-saturation
	// effect the paper warns about. Same-node disk reads never contend;
	// background block relocation stays on the dedicated-rate model so
	// epoch planners can predict its completion.
	SharedLinks bool
	// PriceMultiplier, when non-nil, scales a node's ECU-second price by
	// a time-dependent factor keyed on its instance type — a spot-market
	// model. Each attempt's CPU charge uses the multiplier sampled when
	// the attempt starts, so an attempt straddling a price change keeps
	// its launch-time price — the same convention the LiPS planner uses
	// when it prices an epoch's LP at the epoch start. Schedulers that
	// want to react must consult it themselves (the LiPS adapter
	// re-prices its LP every epoch).
	PriceMultiplier func(instanceType string, t float64) float64
	// Faults injects deterministic node crashes, recoveries, store data
	// losses and straggler slowdowns into the run (see FaultPlan). Nil
	// disables fault injection.
	Faults *FaultPlan
	// Tracer receives structured run events (task lifecycle, block moves,
	// faults, epoch solves via Sim.Tracer). Nil or trace.Nop disables
	// tracing; the disabled path is one branch per call site and
	// allocation-free.
	Tracer trace.Tracer
	// SampleIntervalSec emits a periodic time-series sample event
	// (cumulative cost by category, queue depth, slot utilization,
	// locality mix) every interval of simulated time while tracing is
	// enabled. 0 disables sampling.
	SampleIntervalSec float64
	// TraceLabel names this run in multi-run traces (e.g. the experiment
	// name when a benchmark suite traces every run into one file).
	TraceLabel string
	// Metrics mirrors the run into a live obs.Registry (lifecycle and
	// cost counters exact at their chokepoints, state gauges refreshed
	// every MetricsSampleSec) for HTTP scraping while the simulation
	// runs. Nil disables; the disabled path is one pointer check per
	// call site and allocation-free.
	Metrics *obs.Registry
	// MetricsSampleSec is the simulated-time interval between refreshes
	// of the sampled gauges (task states, slots, clock) while Metrics is
	// set. 0 means SampleIntervalSec when sampling is on, else 60.
	MetricsSampleSec float64
	// LegacyDispatch restores the pre-index full-scan control paths —
	// idle-node sweeps over every node, fault replay over every task,
	// sample scans over every task and node — for differential testing
	// against the incremental indexes (TestIndexedMatchesLegacyDispatch).
	// Observable behavior is identical; only the asymptotics differ.
	LegacyDispatch bool
}

func (o Options) withDefaults() Options {
	if o.TaskTimeoutSec == 0 {
		o.TaskTimeoutSec = 600
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 4
	}
	if o.MaxEvents == 0 {
		o.MaxEvents = 50_000_000
	}
	if o.Tracer == nil {
		o.Tracer = trace.Nop{}
	}
	if o.MetricsSampleSec == 0 {
		if o.SampleIntervalSec > 0 {
			o.MetricsSampleSec = o.SampleIntervalSec
		} else {
			o.MetricsSampleSec = 60
		}
	}
	return o
}

// TaskState is a task's lifecycle state.
type TaskState int

// Task lifecycle.
const (
	Pending TaskState = iota // not yet assigned
	Queued                   // pinned to a node's queue, waiting for a slot
	Running
	Done
)

// eventKind discriminates the typed events of the hot loop. Closures are
// reserved for the rare paths (fault injection, block moves, shared-link
// flows); everything the steady state schedules is a small struct in the
// heap's backing slice, so an event costs no allocation at all.
type eventKind uint8

const (
	evClosure    eventKind = iota
	evArrive               // a0 = job
	evDispatch             // a0 = node (coalesced via nodeState.wakeAt)
	evComplete             // a0 = job, a1 = task, a2 = gen, a3 = 1 if speculative
	evTimeout              // a0 = job, a1 = task, a2 = gen
	evSample               // periodic trace sample, self-rearming
	evObsRefresh           // periodic gauge refresh, self-rearming
)

// event is one scheduled occurrence; seq breaks same-time ties by
// insertion order, which is what makes runs deterministic.
type event struct {
	at             float64
	seq            int64
	kind           eventKind
	a0, a1, a2, a3 int32
	fn             func() // evClosure only
}

func eventBefore(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts an event into the heap (hand-rolled sift-up: container/heap
// would box every event in an interface{} and allocate per push).
func (s *Sim) push(ev event) {
	s.seq++
	ev.seq = s.seq
	h := append(s.events, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventBefore(&h[i], &h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	s.events = h
}

// pop removes the earliest event. The vacated tail slot is zeroed so the
// heap does not pin dead closures.
func (s *Sim) pop() event {
	h := s.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{}
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && eventBefore(&h[r], &h[l]) {
			c = r
		}
		if !eventBefore(&h[c], &h[i]) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	s.events = h
	return top
}

// taskInfo is one task's record in the flat table. The state column lives
// separately in Sim.states so state sweeps touch one byte per task; the
// nine per-task speculative fields of the old layout live in a pooled
// side record (specAttempt) reached through spec, since at any instant
// almost no task has a speculative copy.
type taskInfo struct {
	job, idx int32 // own coordinates (inverse of the flat index)
	attempts int32
	gen      int32 // incremented to cancel in-flight primary events
	specGen  int32 // incremented per spec settle/cancel; voids spec events
	qSeq     int32 // bumped per enqueue; voids stale queue entries
	qNode    int32 // node whose queue holds the live entry; -1 none
	runPos   int32 // position in Sim.running while the primary runs
	spec     int32 // index into Sim.specs; -1 when no speculative copy

	node  cluster.NodeID
	store cluster.StoreID // input store of the running attempt

	doneAt  float64
	startAt float64
	// wallSec is the dedicated-rate attempt's expected wall time,
	// stored at launch so the completion event re-bills the exact float
	// the legacy closure captured ((startAt+d)−startAt ≠ d in floating
	// point). transferEndAt is when the input read finishes
	// (shared-link reads track flow instead). price is the node's
	// ECU-second price sampled at attempt start — the price the attempt
	// is billed at even if the spot multiplier moves later.
	wallSec       float64
	transferEndAt float64
	price         cost.Money
	flow          *flow // in-flight shared-link transfer, if any
}

// specAttempt is one running speculative copy, pooled with a free-list.
type specAttempt struct {
	node          cluster.NodeID
	store         cluster.StoreID
	start         float64
	cpuSec        float64
	wallSec       float64
	transferEndAt float64
	price         cost.Money
	flow          *flow
	runPos        int32 // position in Sim.running
}

type jobState struct {
	arrived      bool
	cancelled    bool // withdrawn via CancelJob; its arrival event is void
	fifoPos      int  // position in the arrival order (valid once arrived)
	remaining    int
	doneAt       float64
	firstLaunch  float64 // first primary-attempt start; -1 until one launches
	firstEnqueue float64 // first scheduler pin of any task; -1 until one is enqueued
	waitingOn    int     // unfinished prerequisite jobs
	dependents   []int   // jobs gated on this one
}

type queueEntry struct {
	job, task int32
	seq       int32 // must match the task's qSeq or the entry is stale
	store     cluster.StoreID
	readyAt   float64
}

type nodeState struct {
	free  int
	queue []queueEntry

	down       bool    // crashed: no slots, no launches, no enqueues
	slowFactor float64 // straggler runtime multiplier while slowUntil is ahead
	slowUntil  float64
	wakeAt     float64 // latest armed dispatch wake-up (coalescing); -1 none
}

// Sim is one simulation run. Create with New, execute with Run.
type Sim struct {
	C *cluster.Cluster
	W *workload.Workload
	P *hdfs.Placement

	Ledger   *cost.Ledger
	Locality metrics.LocalityCounter
	NodeCPU  *metrics.NodeCPU
	UserCPU  map[string]float64
	Faults   metrics.FaultStats

	opts  Options
	sched Scheduler
	batch BatchScheduler // sched when it opts into batched notifications

	// tr is the event sink; traceOn caches Enabled so the disabled path
	// costs one boolean load per call site. om is nil when live metrics
	// are disabled — the same cached-guard discipline (see obs.go).
	tr      trace.Tracer
	traceOn bool
	om      *simMetrics

	clock  float64
	seq    int64
	events []event // binary heap ordered by (at, seq)
	nevent int

	// Serve-mode run state (serve.go): started guards the one-shot Start
	// prelude; the Wanted/Live pairs track whether the self-rearming
	// sample/gauge-refresh chains are configured and currently armed, so
	// AddJob can revive a chain that died when the run drained.
	started      bool
	sampleWanted bool
	sampleLive   bool
	obsWanted    bool
	obsLive      bool

	nodes []nodeState
	jobs  []jobState

	// Flat task table: task (j, t) lives at taskBase[j]+t. states is the
	// hot column; specs/specFree pool the speculative side records.
	tasks    []taskInfo
	taskBase []int32 // len(jobs)+1; taskBase[len(jobs)] = total tasks
	states   []uint8
	specs    []specAttempt
	specFree []int32

	// Incremental indexes; see index.go for the invariants.
	running    []int32  // packed refs of in-flight attempts
	idle       []uint64 // bitset of live nodes with free slots
	nodeZone   []int32  // node → dense zone index
	zoneIdx    map[string]int
	zoneFree   []int
	freeSlots  int
	liveSlots  int
	totalSlots int
	stateCount [4]int
	unarrived  int // tasks of not-yet-arrived jobs (always Pending)

	fifo        []int // arrival-ordered jobs
	busySlotSec float64
	remaining   int // incomplete jobs
	net         *netEngine

	oneNode [1]cluster.NodeID // single-node batch for the shim
	kickBuf []cluster.NodeID  // reused idle-set buffer for KickIdleNodes
	hitBuf  []int32           // reused fault-replay collection buffer

	// movingBlocks counts in-flight MoveBlock transfers per (object,
	// block), so planners can avoid racing a relocation they (or a
	// previous epoch) already issued.
	movingBlocks map[[2]int]blockMove
}

type blockMove struct {
	moves  int
	dst    cluster.StoreID // destination of the latest move
	doneAt float64         // when the latest move lands
}

// New builds a simulation of workload w on cluster c under the given
// scheduler. The initial data placement defaults to every object on its
// origin store; pass a non-nil placement to override (it is used
// directly, not copied).
func New(c *cluster.Cluster, w *workload.Workload, p *hdfs.Placement, sched Scheduler, opts Options) *Sim {
	if p == nil {
		p = w.Placement()
	}
	s := &Sim{
		C: c, W: w, P: p,
		Ledger:  cost.NewLedger(),
		NodeCPU: metrics.NewNodeCPU(),
		UserCPU: make(map[string]float64),
		opts:    opts.withDefaults(),
		sched:   sched,
	}
	if b, ok := sched.(BatchScheduler); ok {
		s.batch = b
	}
	s.tr = s.opts.Tracer
	s.traceOn = s.tr.Enabled()
	if s.opts.Metrics != nil {
		s.om = newSimMetrics(s.opts.Metrics)
	}

	s.zoneIdx = make(map[string]int, len(c.Zones))
	for i, z := range c.Zones {
		s.zoneIdx[z] = i
	}
	s.zoneFree = make([]int, len(c.Zones))
	s.nodeZone = make([]int32, len(c.Nodes))
	s.nodes = make([]nodeState, len(c.Nodes))
	s.idle = make([]uint64, (len(c.Nodes)+63)/64)
	for i, n := range c.Nodes {
		s.nodes[i].free = n.Slots
		s.nodes[i].wakeAt = -1
		zi := s.zoneIdx[n.Zone]
		s.nodeZone[i] = int32(zi)
		s.zoneFree[zi] += n.Slots
		s.totalSlots += n.Slots
		if n.Slots > 0 {
			s.markIdle(cluster.NodeID(i))
		}
	}
	s.freeSlots = s.totalSlots
	s.liveSlots = s.totalSlots

	s.jobs = make([]jobState, len(w.Jobs))
	s.taskBase = make([]int32, len(w.Jobs)+1)
	total := 0
	for j, job := range w.Jobs {
		s.taskBase[j] = int32(total)
		total += job.NumTasks
		s.jobs[j].remaining = job.NumTasks
		s.jobs[j].firstLaunch = -1
		s.jobs[j].firstEnqueue = -1
	}
	s.taskBase[len(w.Jobs)] = int32(total)
	s.tasks = make([]taskInfo, total)
	s.states = make([]uint8, total)
	flat := int32(0)
	for j, job := range w.Jobs {
		for t := 0; t < job.NumTasks; t++ {
			ti := &s.tasks[flat]
			ti.job, ti.idx = int32(j), int32(t)
			ti.qNode, ti.spec, ti.runPos = -1, -1, -1
			flat++
		}
	}
	s.stateCount[Pending] = total
	s.unarrived = total
	s.remaining = len(w.Jobs)

	// Pre-size the heap for the steady state — one completion event per
	// occupied slot plus the job arrivals — so the hot loop never grows
	// it. The running index is bounded by the slot count outright.
	s.events = make([]event, 0, s.totalSlots+len(w.Jobs)+16)
	s.running = make([]int32, 0, s.totalSlots+1)
	s.kickBuf = make([]cluster.NodeID, 0, len(c.Nodes))

	s.net = newNetEngine(s)
	s.movingBlocks = make(map[[2]int]blockMove)
	return s
}

// Now returns the simulation clock in seconds.
func (s *Sim) Now() float64 { return s.clock }

// At schedules fn to run at time t (clamped to now).
func (s *Sim) At(t float64, fn func()) {
	if t < s.clock {
		t = s.clock
	}
	s.push(event{at: t, kind: evClosure, fn: fn})
}

// schedule enqueues a typed (allocation-free) event at time t.
func (s *Sim) schedule(t float64, kind eventKind, a0, a1, a2, a3 int32) {
	if t < s.clock {
		t = s.clock
	}
	s.push(event{at: t, kind: kind, a0: a0, a1: a1, a2: a2, a3: a3})
}

// exec runs one popped event.
func (s *Sim) exec(ev *event) {
	switch ev.kind {
	case evClosure:
		ev.fn()
	case evArrive:
		s.arrive(int(ev.a0))
	case evDispatch:
		ns := &s.nodes[ev.a0]
		if ns.wakeAt == ev.at {
			ns.wakeAt = -1
		}
		s.dispatch(cluster.NodeID(ev.a0))
	case evComplete:
		s.completeEvent(int(ev.a0), int(ev.a1), ev.a2, ev.a3 == 1)
	case evTimeout:
		s.timeoutEvent(int(ev.a0), int(ev.a1), ev.a2)
	case evSample:
		s.emitSample()
		if s.remaining > 0 {
			s.schedule(s.clock+s.opts.SampleIntervalSec, evSample, 0, 0, 0, 0)
		} else {
			s.sampleLive = false // AddJob re-arms (serve.go)
		}
	case evObsRefresh:
		s.obsRefresh()
		if s.remaining > 0 {
			s.schedule(s.clock+s.opts.MetricsSampleSec, evObsRefresh, 0, 0, 0, 0)
		} else {
			s.obsLive = false // AddJob re-arms (serve.go)
		}
	}
}

// Run executes the simulation to completion and returns the result. It is
// the batch driver: Start's prelude, then the event loop until the heap
// drains. Long-running callers use Start + StepUntil instead (serve.go).
func (s *Sim) Run() (*Result, error) {
	if err := s.Start(); err != nil {
		return nil, err
	}
	for len(s.events) > 0 {
		s.nevent++
		if s.nevent > s.opts.MaxEvents {
			return nil, fmt.Errorf("sim: aborted after %d events at t=%.1f (%d jobs incomplete)", s.nevent, s.clock, s.remaining)
		}
		ev := s.pop()
		s.clock = ev.at
		s.exec(&ev)
	}
	if s.remaining > 0 {
		return nil, fmt.Errorf("sim: deadlock: %d jobs incomplete at t=%.1f under %s", s.remaining, s.clock, s.sched.Name())
	}
	return s.result(), nil
}

func (s *Sim) arrive(job int) {
	js := &s.jobs[job]
	if js.cancelled {
		return // withdrawn before arrival; unarrived already corrected
	}
	js.arrived = true
	js.fifoPos = len(s.fifo)
	s.unarrived -= s.W.Jobs[job].NumTasks
	s.fifo = append(s.fifo, job)
	s.sched.OnJobArrival(s, job)
}

// flat returns the task's index in the flat table.
func (s *Sim) flat(job, task int) int32 { return s.taskBase[job] + int32(task) }

// task returns the task's record.
func (s *Sim) task(job, task int) *taskInfo { return &s.tasks[s.taskBase[job]+int32(task)] }

// ArrivedJobs returns the arrived-and-incomplete jobs in arrival order.
func (s *Sim) ArrivedJobs() []int {
	out := make([]int, 0, len(s.fifo))
	for _, j := range s.fifo {
		if s.jobs[j].remaining > 0 {
			out = append(out, j)
		}
	}
	return out
}

// PendingTasks returns the Pending task indices of a job, ascending.
func (s *Sim) PendingTasks(job int) []int {
	var out []int
	base, end := s.taskBase[job], s.taskBase[job+1]
	for f := base; f < end; f++ {
		if TaskState(s.states[f]) == Pending {
			out = append(out, int(f-base))
		}
	}
	return out
}

// NextPending returns the lowest Pending task index of a job that is ≥
// from, or -1 — the allocation-free alternative to PendingTasks for
// schedulers that sweep a job with a cursor (amortized O(1) per launch
// while the cursor only moves forward).
func (s *Sim) NextPending(job, from int) int {
	if from < 0 {
		from = 0
	}
	base, end := s.taskBase[job], s.taskBase[job+1]
	for f := base + int32(from); f < end; f++ {
		if TaskState(s.states[f]) == Pending {
			return int(f - base)
		}
	}
	return -1
}

// TaskState returns the state of one task.
func (s *Sim) TaskState(job, task int) TaskState {
	return TaskState(s.states[s.taskBase[job]+int32(task)])
}

// FreeSlots returns the free slot count of a node.
func (s *Sim) FreeSlots(n cluster.NodeID) int { return s.nodes[n].free }

// JobRemaining returns how many tasks of the job are not Done.
func (s *Sim) JobRemaining(job int) int { return s.jobs[job].remaining }

// KickIdleNodes invokes the scheduler's slot-free path for every live
// node that has free slots — how built-in schedulers react to arrivals
// (and how they pick up work orphaned by a crash). The sweep walks the
// idle bitset rather than every node; under a BatchScheduler the idle set
// is delivered in one OnSlotsFree call after the pinned queues drain.
func (s *Sim) KickIdleNodes() {
	if s.opts.LegacyDispatch {
		for n := range s.nodes {
			if !s.nodes[n].down && s.nodes[n].free > 0 {
				s.dispatch(cluster.NodeID(n))
			}
		}
		return
	}
	if s.batch != nil {
		s.sweepIdle(true)
		buf := s.IdleNodes(s.kickBuf[:0])
		s.kickBuf = buf
		if len(buf) > 0 {
			s.batch.OnSlotsFree(s, buf)
		}
		return
	}
	s.sweepIdle(false)
}

// sweepIdle visits every idle node in ascending order, re-reading the
// bitset word after each visit: a dispatch can fill nodes ahead of the
// sweep, and the legacy scan checked liveness at visit time. Bits at or
// below the visited node are masked off — the legacy scan never
// revisited earlier nodes either. drainOnly skips the per-node scheduler
// notification; the batched path delivers one combined callback after.
func (s *Sim) sweepIdle(drainOnly bool) {
	for wi := 0; wi < len(s.idle); wi++ {
		pending := s.idle[wi]
		for pending != 0 {
			b := bits.TrailingZeros64(pending)
			n := cluster.NodeID(wi<<6 + b)
			if drainOnly {
				s.drainQueue(n, &s.nodes[n])
			} else {
				s.dispatch(n)
			}
			pending = s.idle[wi] &^ (^uint64(0) >> (63 - uint(b)))
		}
	}
}

// notifySlotFree hands an idle node to the scheduler — the compatibility
// shim between the two notification styles: batch-aware schedulers get a
// one-element OnSlotsFree, everyone else the classic OnSlotFree.
func (s *Sim) notifySlotFree(n cluster.NodeID) {
	if s.batch != nil {
		s.oneNode[0] = n
		s.batch.OnSlotsFree(s, s.oneNode[:])
		return
	}
	s.sched.OnSlotFree(s, n)
}

// armDispatch schedules a dispatch wake-up for node n at time t,
// coalescing with an identical wake-up already in the heap: epoch
// planners enqueue whole task batches behind one block move, which used
// to push one (redundant) event per task.
func (s *Sim) armDispatch(n cluster.NodeID, t float64) {
	ns := &s.nodes[n]
	if ns.wakeAt == t {
		return
	}
	ns.wakeAt = t
	s.schedule(t, evDispatch, int32(n), 0, 0, 0)
}

// result assembles the final Result.
func (s *Sim) result() *Result {
	r := &Result{
		Scheduler: s.sched.Name(),
		Cost:      s.Ledger,
		Locality:  s.Locality,
		NodeCPU:   s.NodeCPU,
		JobDone:   make([]float64, len(s.jobs)),
		UserCPU:   s.UserCPU,
		Faults:    s.Faults,
	}
	for j := range s.jobs {
		r.JobDone[j] = s.jobs[j].doneAt
		if s.jobs[j].doneAt > r.Makespan {
			r.Makespan = s.jobs[j].doneAt
		}
		r.SumJobSec += s.jobs[j].doneAt - s.W.Jobs[j].ArrivalSec
	}
	r.Utilization = metrics.Utilization(s.busySlotSec, float64(s.totalSlots), r.Makespan)
	shares := make([]float64, 0, len(s.UserCPU))
	users := make([]string, 0, len(s.UserCPU))
	for u := range s.UserCPU {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		shares = append(shares, s.UserCPU[u])
	}
	r.Fairness = metrics.JainIndex(shares)
	return r
}

// Result summarises one run.
type Result struct {
	Scheduler string

	Makespan  float64 // completion time of the last job
	SumJobSec float64 // Σ per-job (done − arrival), the paper's "total job execution time"

	Cost     *cost.Ledger
	Locality metrics.LocalityCounter
	NodeCPU  *metrics.NodeCPU
	JobDone  []float64
	UserCPU  map[string]float64
	Faults   metrics.FaultStats

	Utilization float64
	Fairness    float64 // Jain index over per-user CPU shares
}

// TotalCost is shorthand for the ledger total.
func (r *Result) TotalCost() cost.Money { return r.Cost.Total() }

// String gives a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s: cost=%v makespan=%.0fs util=%.0f%% local=%.0f%%",
		r.Scheduler, r.TotalCost(), r.Makespan, 100*r.Utilization, 100*r.Locality.LocalFraction())
}
