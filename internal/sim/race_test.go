//go:build race

package sim

// raceEnabled reports whether the race detector is active; allocation
// budget tests skip under -race because the race runtime allocates.
const raceEnabled = true
