package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/hdfs"
)

// Fault injection. A FaultPlan is a deterministic script of node crashes,
// node recoveries, store data losses and straggler slowdowns replayed
// through the ordinary event heap, so a faulty run is exactly as
// reproducible as a calm one. The simulator absorbs each fault itself —
// killing attempts, draining queues, re-replicating blocks — and then
// notifies the scheduler through the OnNodeDown/OnNodeUp hooks; greedy
// schedulers recover through their slot-free paths while epoch planners
// rebuild their cluster view. The damage is priced into the ledger's
// fault category and counted in Result.Faults.

// FaultKind labels one injected fault.
type FaultKind int

// Fault kinds.
const (
	FaultNodeDown  FaultKind = iota // node crashes: attempts killed, queue drained, slots gone
	FaultNodeUp                     // node rejoins with all slots free
	FaultStoreLoss                  // store loses its data (the device stays in service)
	FaultSlowdown                   // straggler: attempts started on the node run slower for a window
)

// String names the kind.
func (k FaultKind) String() string {
	switch k {
	case FaultNodeDown:
		return "node-down"
	case FaultNodeUp:
		return "node-up"
	case FaultStoreLoss:
		return "store-loss"
	case FaultSlowdown:
		return "slowdown"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// Fault is one scripted event.
type Fault struct {
	At   float64
	Kind FaultKind

	// Node is the target of NodeDown, NodeUp and Slowdown faults.
	Node cluster.NodeID
	// Store is the target of StoreLoss faults.
	Store cluster.StoreID

	// Factor is the Slowdown runtime multiplier (>1 is slower); it applies
	// to attempts started on the node while the window is open, not to
	// attempts already running.
	Factor float64
	// DurationSec is the Slowdown window length.
	DurationSec float64
}

// FaultPlan is a script of faults injected into one run via
// Options.Faults. Order within the slice is irrelevant; events fire in
// time order through the event heap.
type FaultPlan struct {
	Faults []Fault
}

// validate rejects plans referencing nodes or stores outside the cluster.
func (p *FaultPlan) validate(c *cluster.Cluster) error {
	for i, f := range p.Faults {
		switch f.Kind {
		case FaultNodeDown, FaultNodeUp, FaultSlowdown:
			if f.Node < 0 || int(f.Node) >= len(c.Nodes) {
				return fmt.Errorf("sim: fault %d (%s) targets node %d of %d", i, f.Kind, f.Node, len(c.Nodes))
			}
		case FaultStoreLoss:
			if f.Store < 0 || int(f.Store) >= len(c.Stores) {
				return fmt.Errorf("sim: fault %d (%s) targets store %d of %d", i, f.Kind, f.Store, len(c.Stores))
			}
		default:
			return fmt.Errorf("sim: fault %d has unknown kind %d", i, int(f.Kind))
		}
		if f.At < 0 {
			return fmt.Errorf("sim: fault %d fires at t=%g", i, f.At)
		}
		if f.Kind == FaultSlowdown && (f.Factor < 1 || f.DurationSec <= 0) {
			return fmt.Errorf("sim: fault %d slowdown needs factor>=1 and duration>0, got %g/%g", i, f.Factor, f.DurationSec)
		}
	}
	return nil
}

// FaultSpec sizes a RandomFaultPlan.
type FaultSpec struct {
	// Crashes is the number of node crash+recovery pairs.
	Crashes int
	// StoreLosses is the number of store data-loss events.
	StoreLosses int
	// Slowdowns is the number of straggler windows.
	Slowdowns int
	// WindowSec bounds fault injection times, drawn uniformly from
	// [0, WindowSec). 0 means 1000.
	WindowSec float64
	// DowntimeSec separates each crash from its recovery. 0 means 300.
	DowntimeSec float64
	// SlowFactor is the straggler runtime multiplier. 0 means 3.
	SlowFactor float64
	// SlowDurationSec is the straggler window length. 0 means 600.
	SlowDurationSec float64
}

func (spec FaultSpec) withDefaults() FaultSpec {
	if spec.WindowSec == 0 {
		spec.WindowSec = 1000
	}
	if spec.DowntimeSec == 0 {
		spec.DowntimeSec = 300
	}
	if spec.SlowFactor == 0 {
		spec.SlowFactor = 3
	}
	if spec.SlowDurationSec == 0 {
		spec.SlowDurationSec = 600
	}
	return spec
}

// RandomFaultPlan draws a seed-deterministic plan over the cluster: each
// crash is paired with a recovery DowntimeSec later, store losses and
// slowdowns land uniformly in the window. The same seed, cluster shape
// and spec always produce the same plan.
func RandomFaultPlan(seed int64, c *cluster.Cluster, spec FaultSpec) *FaultPlan {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	var fs []Fault
	for i := 0; i < spec.Crashes && len(c.Nodes) > 0; i++ {
		n := cluster.NodeID(rng.Intn(len(c.Nodes)))
		at := rng.Float64() * spec.WindowSec
		fs = append(fs,
			Fault{At: at, Kind: FaultNodeDown, Node: n},
			Fault{At: at + spec.DowntimeSec, Kind: FaultNodeUp, Node: n})
	}
	for i := 0; i < spec.StoreLosses && len(c.Stores) > 0; i++ {
		fs = append(fs, Fault{
			At: rng.Float64() * spec.WindowSec, Kind: FaultStoreLoss,
			Store: cluster.StoreID(rng.Intn(len(c.Stores))),
		})
	}
	for i := 0; i < spec.Slowdowns && len(c.Nodes) > 0; i++ {
		fs = append(fs, Fault{
			At: rng.Float64() * spec.WindowSec, Kind: FaultSlowdown,
			Node:   cluster.NodeID(rng.Intn(len(c.Nodes))),
			Factor: spec.SlowFactor, DurationSec: spec.SlowDurationSec,
		})
	}
	sort.SliceStable(fs, func(i, j int) bool { return fs[i].At < fs[j].At })
	return &FaultPlan{Faults: fs}
}

// inject dispatches one fault at its scheduled time.
func (s *Sim) inject(f Fault) {
	s.noteFault(f)
	switch f.Kind {
	case FaultNodeDown:
		s.crashNode(f.Node)
	case FaultNodeUp:
		s.recoverNode(f.Node)
	case FaultStoreLoss:
		s.loseStore(f.Store)
	case FaultSlowdown:
		s.slowNode(f.Node, f.Factor, f.DurationSec)
	}
}

// NodeAlive reports whether node n is currently up.
func (s *Sim) NodeAlive(n cluster.NodeID) bool { return !s.nodes[n].down }

// crashNode takes a node down: every attempt running on it (primary or
// speculative) is killed, its pinned queue drains back to Pending, its
// slots vanish, and the scheduler is told via OnNodeDown. Partially
// executed work is billed to the fault category — a crash does not refund
// the cycles it wasted. The victims come from the running-attempt index
// (bounded by the slot count) unless LegacyDispatch re-enables the
// full-table scan; either way they are visited in ascending task order
// with every condition re-checked at apply time, so the two modes kill in
// the same sequence.
func (s *Sim) crashNode(n cluster.NodeID) {
	ns := &s.nodes[n]
	if ns.down {
		return
	}
	ns.down = true
	s.freeSlots -= ns.free
	s.zoneFree[s.nodeZone[n]] -= ns.free
	s.liveSlots -= s.C.Nodes[n].Slots
	ns.free = 0
	s.clearIdle(n)
	s.Faults.NodesCrashed++

	if s.opts.LegacyDispatch {
		for f := int32(0); f < int32(len(s.tasks)); f++ {
			s.crashHit(f, n)
		}
	} else {
		for _, f := range s.nodeHits(n) {
			s.crashHit(f, n)
		}
	}
	// Drain the pinned queue: those tasks were promised this node's slots.
	for _, e := range ns.queue {
		flat := s.taskBase[e.job] + e.task
		ti := &s.tasks[flat]
		if TaskState(s.states[flat]) != Queued || ti.qNode != int32(n) || ti.qSeq != e.seq {
			continue // stale entry
		}
		ti.qNode = -1
		s.setStateFlat(flat, Pending)
	}
	ns.queue = ns.queue[:0]

	s.sched.OnNodeDown(s, n)
	s.KickIdleNodes()
}

// crashHit kills whatever task flat is running on the crashed node n.
func (s *Sim) crashHit(flat int32, n cluster.NodeID) {
	ti := &s.tasks[flat]
	j, t := int(ti.job), int(ti.idx)
	if ti.spec >= 0 && s.specs[ti.spec].node == n {
		s.cancelSpeculative(j, t, cost.CatFault, false, "node-crash")
	}
	if TaskState(s.states[flat]) == Running && ti.node == n {
		// Untrack first: the spec kill's dispatch runs scheduler code,
		// which must not speculate on this dying attempt.
		s.untrackPrimary(ti)
		if ti.spec >= 0 {
			// The surviving speculative copy could in principle be
			// promoted; Hadoop instead re-runs the task, and so do
			// we — both copies die with the primary's node.
			s.cancelSpeculative(j, t, cost.CatFault, true, "node-crash")
		}
		s.failAttempt(j, t, false, "node-crash")
	}
}

// recoverNode brings a crashed node back with every slot free.
func (s *Sim) recoverNode(n cluster.NodeID) {
	ns := &s.nodes[n]
	if !ns.down {
		return
	}
	ns.down = false
	slots := s.C.Nodes[n].Slots
	ns.free = slots
	s.freeSlots += slots
	s.zoneFree[s.nodeZone[n]] += slots
	s.liveSlots += slots
	if slots > 0 {
		s.markIdle(n)
	}
	s.Faults.NodesRecovered++
	s.sched.OnNodeUp(s, n)
	s.dispatch(n)
}

// failAttempt kills the primary attempt of a Running task after a fault,
// billing the CPU it burned to the fault category and returning the task
// to Pending for re-execution. freeSlot is false when the slot died with
// its node; reason labels the kill in the trace.
func (s *Sim) failAttempt(job, task int, freeSlot bool, reason string) {
	ti := s.task(job, task)
	n := ti.node
	node := &s.C.Nodes[n]
	if ti.flow != nil {
		s.net.cancel(ti.flow)
		ti.flow = nil
	}
	cpuSec, _ := s.taskDemand(job, task)
	slotECU := node.ECU / float64(node.Slots)
	burned := cpuSec - (ti.doneAt-s.clock)*slotECU
	if burned > cpuSec {
		burned = cpuSec
	}
	var billed cost.Money
	if burned > 0 {
		billed = cost.CPUCost(ti.price, burned)
		s.charge(cost.CatFault, job, billed)
	}
	s.untrackPrimary(ti)
	ti.gen++
	s.setStateFlat(s.flat(job, task), Pending)
	s.Faults.TasksReexecuted++
	s.noteKill(job, task, n, reason, billed, false)
	if freeSlot {
		s.slotFreed(n)
		s.dispatch(n)
	}
}

// loseStore wipes a store's data: every replica on it disappears (the
// device itself stays in service). Under-replicated blocks get a fresh
// copy on the cheapest store not already holding them; blocks that lost
// their only copy are re-materialized on a fallback store (modeling
// upstream re-generation). Both repairs are priced as store-to-store
// traffic in the fault category. Attempts still transferring input from
// the store are killed and re-executed.
func (s *Sim) loseStore(st cluster.StoreID) {
	s.Faults.StoresLost++
	under, lost := s.P.DropStore(st)
	for _, br := range under {
		src := s.P.Primary(br.Object, br.Block)
		dst := s.replicaTarget(br.Object, br.Block, st)
		if dst == cluster.None {
			continue // every store already holds a copy
		}
		s.P.AddReplica(br.Object, br.Block, dst)
		mb := s.P.Object(br.Object).BlockSizeMB(br.Block)
		billed := s.C.SSPerGB(src, dst).MulFloat(mb / 1024)
		s.charge(cost.CatFault, -1, billed)
		s.Faults.BlocksReplicated++
		s.noteMove(int(br.Object), br.Block, src, dst, mb, 0, billed, "re-replicate")
	}
	for _, br := range lost {
		obj := s.P.Object(br.Object)
		dst := obj.Origin
		if dst == st {
			dst = s.fallbackStore(st)
		}
		if dst == cluster.None {
			continue // single-store cluster: nowhere to recreate it
		}
		s.P.SetPrimary(br.Object, br.Block, dst)
		mb := obj.BlockSizeMB(br.Block)
		billed := s.C.SSPerGB(st, dst).MulFloat(mb / 1024)
		s.charge(cost.CatFault, -1, billed)
		s.Faults.BlocksLost++
		s.Faults.BlocksReplicated++
		s.noteMove(int(br.Object), br.Block, st, dst, mb, 0, billed, "re-materialize")
	}
	// Kill attempts whose input read from the lost store is still in
	// progress; attempts past their transfer phase already hold the data.
	// As in crashNode, victims come from the running-attempt index (or
	// the LegacyDispatch full scan) in ascending task order; the store
	// replicas were dropped above, so no freed slot launched mid-loop can
	// start a new read from st and escape the pre-collected list.
	if s.opts.LegacyDispatch {
		for f := int32(0); f < int32(len(s.tasks)); f++ {
			s.storeLossHit(f, st)
		}
	} else {
		for _, f := range s.storeHits(st) {
			s.storeLossHit(f, st)
		}
	}
}

// storeLossHit kills whatever attempt of task flat still reads store st.
func (s *Sim) storeLossHit(flat int32, st cluster.StoreID) {
	ti := &s.tasks[flat]
	j, t := int(ti.job), int(ti.idx)
	if ti.spec >= 0 {
		sp := &s.specs[ti.spec]
		if sp.store == st && s.clock < sp.transferEndAt-1e-9 {
			s.cancelSpeculative(j, t, cost.CatFault, true, "store-loss")
		}
	}
	if TaskState(s.states[flat]) == Running && ti.store == st && s.inTransfer(ti) {
		s.failAttempt(j, t, true, "store-loss")
	}
}

// inTransfer reports whether a Running task's input read is unfinished.
func (s *Sim) inTransfer(ti *taskInfo) bool {
	return ti.flow != nil || s.clock < ti.transferEndAt-1e-9
}

// replicaTarget picks the cheapest-to-reach store (from the block's
// current primary) that holds no copy of the block, excluding the store
// that just lost its data. Ties break toward the lowest store ID.
func (s *Sim) replicaTarget(obj hdfs.ObjectID, block int, exclude cluster.StoreID) cluster.StoreID {
	src := s.P.Primary(obj, block)
	best := cluster.StoreID(cluster.None)
	var bestCost cost.Money
	for _, cand := range s.C.Stores {
		if cand.ID == exclude || s.P.HasReplicaOn(obj, block, cand.ID) {
			continue
		}
		c := s.C.SSPerGB(src, cand.ID)
		if best == cluster.None || c < bestCost {
			best, bestCost = cand.ID, c
		}
	}
	return best
}

// fallbackStore is the lowest-ID store other than the excluded one.
func (s *Sim) fallbackStore(exclude cluster.StoreID) cluster.StoreID {
	for _, st := range s.C.Stores {
		if st.ID != exclude {
			return st.ID
		}
	}
	return cluster.None
}

// slowNode opens a straggler window on a node: attempts started on it
// while the window is open run Factor times slower. Attempts already
// running are unaffected (their completion events are scheduled).
func (s *Sim) slowNode(n cluster.NodeID, factor, durationSec float64) {
	if factor < 1 {
		factor = 1
	}
	ns := &s.nodes[n]
	ns.slowFactor = factor
	ns.slowUntil = s.clock + durationSec
	s.Faults.Slowdowns++
}

// slowdownOf returns the runtime multiplier for attempts starting on n now.
func (s *Sim) slowdownOf(n cluster.NodeID) float64 {
	ns := &s.nodes[n]
	if ns.slowFactor > 1 && s.clock < ns.slowUntil {
		return ns.slowFactor
	}
	return 1
}
