package sim

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/workload"
)

// threeNodeCluster builds a single-zone cluster of three identical nodes
// (2 ECU, 2 slots, 1 mc/ECU·s) with co-located stores.
func threeNodeCluster() *cluster.Cluster {
	b := cluster.NewBuilder("za")
	for i := 0; i < 3; i++ {
		b.AddNode("za", "t", 2, 2, cost.Millicents(1), 1e6)
	}
	return b.Build()
}

func TestCrashKillsRunningAndRecovers(t *testing.T) {
	// Both tasks start on node 0 at t=0 (transfer 0.64 s + 64 s run).
	// Node 0 crashes at t=10; the greedy stub must re-run both on a
	// surviving node, and the partial burn lands in the fault category.
	c := threeNodeCluster()
	w := twoTaskJob()
	plan := &FaultPlan{Faults: []Fault{
		{At: 10, Kind: FaultNodeDown, Node: 0},
		{At: 100, Kind: FaultNodeUp, Node: 0},
	}}
	s := New(c, w, nil, greedyStub(), Options{Faults: plan})
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Faults.NodesCrashed != 1 || r.Faults.NodesRecovered != 1 {
		t.Errorf("fault stats = %+v, want 1 crash + 1 recovery", r.Faults)
	}
	if r.Faults.TasksReexecuted != 2 {
		t.Errorf("TasksReexecuted = %d, want 2", r.Faults.TasksReexecuted)
	}
	// Each attempt burned 10−0.64 = 9.36 ECU-sec before dying.
	want := cost.CPUCost(cost.Millicents(1), 2*9.36)
	if got := r.Cost.Category(cost.CatFault); got != want {
		t.Errorf("fault cost = %v, want %v", got, want)
	}
	// Completed work still bills in full.
	if got := r.Cost.Category(cost.CatCPU); got != cost.Millicents(128) {
		t.Errorf("cpu cost = %v, want 128 mc", got)
	}
	// Re-run on a surviving node from t=10: zone-local read (64 MB at
	// 62.5 MB/s = 1.024 s) plus the 64 s compute.
	if math.Abs(r.Makespan-75.024) > 1e-6 {
		t.Errorf("makespan = %g, want 75.024", r.Makespan)
	}
}

func TestDownNodeRejectsWork(t *testing.T) {
	c := threeNodeCluster()
	w := twoTaskJob()
	plan := &FaultPlan{Faults: []Fault{
		{At: 10, Kind: FaultNodeDown, Node: 0},
		{At: 20, Kind: FaultNodeUp, Node: 0},
	}}
	ss := &stubSched{}
	ss.init = func(s *Sim) {
		s.At(15, func() {
			if s.NodeAlive(0) {
				t.Error("NodeAlive(0) = true while down")
			}
			if s.FreeSlots(0) != 0 {
				t.Errorf("down node has %d free slots", s.FreeSlots(0))
			}
			if err := s.Launch(0, 0, 0, 0); err == nil || !strings.Contains(err.Error(), "down") {
				t.Errorf("Launch on down node: err = %v", err)
			}
			if err := s.Enqueue(0, 0, 0, 0, s.Now()); err == nil || !strings.Contains(err.Error(), "down") {
				t.Errorf("Enqueue on down node: err = %v", err)
			}
			if s.LaunchSpeculative(0) {
				t.Error("LaunchSpeculative succeeded on a down node")
			}
		})
		s.At(25, func() {
			if !s.NodeAlive(0) {
				t.Fatal("node 0 not recovered at t=25")
			}
			for _, task := range s.PendingTasks(0) {
				if err := s.Launch(0, task, 0, 0); err != nil {
					t.Errorf("Launch after recovery: %v", err)
				}
			}
		})
	}
	s := New(c, w, nil, ss, Options{Speculative: true, Faults: plan})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashDrainsPinnedQueue(t *testing.T) {
	// Tasks queued on a node that crashes must return to Pending so the
	// scheduler can place them elsewhere.
	c := threeNodeCluster()
	w := twoTaskJob()
	plan := &FaultPlan{Faults: []Fault{{At: 5, Kind: FaultNodeDown, Node: 1}}}
	ss := &stubSched{}
	drained := false
	ss.onArrival = func(s *Sim, _ int) {
		// Pin both tasks to node 1 with a far-future readyAt so they sit
		// in the queue when the crash hits.
		for _, task := range s.PendingTasks(0) {
			if err := s.Enqueue(0, task, 1, 0, 1e6); err != nil {
				t.Fatal(err)
			}
		}
	}
	ss.onSlotFree = func(s *Sim, n cluster.NodeID) {
		if s.Now() < 5 {
			return // wait for the crash
		}
		drained = true
		for _, task := range s.PendingTasks(0) {
			if err := s.Launch(0, task, n, 0); err != nil {
				t.Errorf("relaunch after drain: %v", err)
			}
		}
	}
	s := New(c, w, nil, ss, Options{Faults: plan})
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !drained {
		t.Error("queue never drained to a surviving node")
	}
	// No attempt ever ran on node 1, so nothing was re-executed.
	if r.Faults.TasksReexecuted != 0 {
		t.Errorf("TasksReexecuted = %d, want 0", r.Faults.TasksReexecuted)
	}
}

func TestStoreLossRereplicates(t *testing.T) {
	// Blocks with surviving replicas get a fresh copy elsewhere and the
	// survivor is promoted to primary.
	c := threeNodeCluster()
	w := twoTaskJob()
	p := w.Placement()
	obj := w.Jobs[0].Object
	p.AddReplica(obj, 0, 1)
	p.AddReplica(obj, 1, 1)
	plan := &FaultPlan{Faults: []Fault{{At: 5, Kind: FaultStoreLoss, Store: 0}}}
	s := New(c, w, p, greedyStub(), Options{Faults: plan})
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Faults.StoresLost != 1 || r.Faults.BlocksLost != 0 {
		t.Errorf("fault stats = %+v, want 1 store lost, 0 blocks lost", r.Faults)
	}
	if r.Faults.BlocksReplicated != 2 {
		t.Errorf("BlocksReplicated = %d, want 2", r.Faults.BlocksReplicated)
	}
	for b := 0; b < 2; b++ {
		if got := p.Primary(obj, b); got != 1 {
			t.Errorf("block %d primary = %d, want promoted survivor 1", b, got)
		}
		if !p.HasReplicaOn(obj, b, 2) {
			t.Errorf("block %d not re-replicated onto store 2", b)
		}
		if p.HasReplicaOn(obj, b, 0) {
			t.Errorf("block %d still has a replica on the lost store", b)
		}
	}
}

func TestStoreLossRematerializesLostBlocks(t *testing.T) {
	// Replication factor 1: losing the store loses every copy; blocks are
	// re-created on a fallback store and reads are redirected there.
	c := threeNodeCluster()
	w := twoTaskJob()
	// Lose the store at t=0.3, mid-transfer (reads finish at 0.64): both
	// running attempts die and re-execute against the re-created copies.
	plan := &FaultPlan{Faults: []Fault{{At: 0.3, Kind: FaultStoreLoss, Store: 0}}}
	s := New(c, w, nil, greedyStub(), Options{Faults: plan})
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Faults.BlocksLost != 2 || r.Faults.BlocksReplicated != 2 {
		t.Errorf("fault stats = %+v, want 2 blocks lost and re-materialized", r.Faults)
	}
	if r.Faults.TasksReexecuted != 2 {
		t.Errorf("TasksReexecuted = %d, want 2 (reads were mid-transfer)", r.Faults.TasksReexecuted)
	}
	obj := w.Jobs[0].Object
	for b := 0; b < 2; b++ {
		if got := s.P.Primary(obj, b); got == 0 {
			t.Errorf("block %d still primary on the lost store", b)
		}
	}
}

func TestStoreLossSparesFinishedTransfers(t *testing.T) {
	// After t=0.64 the inputs are fully read; losing the store must not
	// kill the attempts.
	c := threeNodeCluster()
	w := twoTaskJob()
	plan := &FaultPlan{Faults: []Fault{{At: 30, Kind: FaultStoreLoss, Store: 0}}}
	s := New(c, w, nil, greedyStub(), Options{Faults: plan})
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Faults.TasksReexecuted != 0 {
		t.Errorf("TasksReexecuted = %d, want 0 (transfers had finished)", r.Faults.TasksReexecuted)
	}
	if math.Abs(r.Makespan-64.64) > 1e-6 {
		t.Errorf("makespan = %g, want undisturbed 64.64", r.Makespan)
	}
}

func TestSlowdownStretchesNewAttempts(t *testing.T) {
	c := oneNodeCluster()
	w := twoTaskJob()
	plan := &FaultPlan{Faults: []Fault{{At: 0, Kind: FaultSlowdown, Node: 0, Factor: 2, DurationSec: 1000}}}
	s := New(c, w, nil, greedyStub(), Options{Faults: plan})
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Runtime doubles (64 → 128 s); transfer and billing are unchanged.
	if math.Abs(r.Makespan-128.64) > 1e-6 {
		t.Errorf("makespan = %g, want 128.64", r.Makespan)
	}
	if got := r.Cost.Category(cost.CatCPU); got != cost.Millicents(128) {
		t.Errorf("cpu cost = %v, want 128 mc (slowdown bills CPU-seconds, not wall)", got)
	}
	if r.Faults.Slowdowns != 1 {
		t.Errorf("Slowdowns = %d, want 1", r.Faults.Slowdowns)
	}
}

func TestChurnDeterminism(t *testing.T) {
	run := func() *Result {
		c := threeNodeCluster()
		wb := workload.NewBuilder()
		arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 64}
		wb.AddInputJob("j1", "u1", arch, 256, 0, 0)
		wb.AddInputJob("j2", "u2", arch, 192, 1, 20)
		w := wb.Build()
		plan := RandomFaultPlan(7, c, FaultSpec{Crashes: 2, StoreLosses: 1, Slowdowns: 1, WindowSec: 60, DowntimeSec: 30})
		s := New(c, w, nil, greedyStub(), Options{Faults: plan})
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.TotalCost() != b.TotalCost() {
		t.Errorf("churn runs diverge: makespan %g vs %g, cost %v vs %v",
			a.Makespan, b.Makespan, a.TotalCost(), b.TotalCost())
	}
	if a.Faults != b.Faults {
		t.Errorf("fault stats diverge: %+v vs %+v", a.Faults, b.Faults)
	}
	if !a.Faults.Any() {
		t.Error("no faults injected — the scenario is vacuous")
	}
}

func TestRandomFaultPlanDeterministic(t *testing.T) {
	c := threeNodeCluster()
	spec := FaultSpec{Crashes: 3, StoreLosses: 2, Slowdowns: 1}
	a := RandomFaultPlan(99, c, spec)
	b := RandomFaultPlan(99, c, spec)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different plans")
	}
	if len(a.Faults) != 3*2+2+1 {
		t.Errorf("plan has %d faults, want 9", len(a.Faults))
	}
	for i := 1; i < len(a.Faults); i++ {
		if a.Faults[i].At < a.Faults[i-1].At {
			t.Error("plan not sorted by time")
		}
	}
}

func TestFaultPlanValidation(t *testing.T) {
	c := oneNodeCluster()
	w := twoTaskJob()
	bad := []*FaultPlan{
		{Faults: []Fault{{At: 1, Kind: FaultNodeDown, Node: 9}}},
		{Faults: []Fault{{At: 1, Kind: FaultStoreLoss, Store: 9}}},
		{Faults: []Fault{{At: -1, Kind: FaultNodeDown, Node: 0}}},
		{Faults: []Fault{{At: 1, Kind: FaultSlowdown, Node: 0, Factor: 0.5, DurationSec: 10}}},
		{Faults: []Fault{{At: 1, Kind: FaultKind(42), Node: 0}}},
	}
	for i, plan := range bad {
		s := New(c, w, nil, greedyStub(), Options{Faults: plan})
		if _, err := s.Run(); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
}

func TestPriceMultiplierSampledAtAttemptStart(t *testing.T) {
	// The price steps 1 → 10 at t=50 while both tasks are running (they
	// finish at 64.64). Billing must use the launch-time multiplier.
	c := oneNodeCluster()
	w := twoTaskJob()
	mult := func(_ string, at float64) float64 {
		if at < 50 {
			return 1
		}
		return 10
	}
	s := New(c, w, nil, greedyStub(), Options{PriceMultiplier: mult})
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Cost.Category(cost.CatCPU); got != cost.Millicents(128) {
		t.Errorf("cpu cost = %v, want 128 mc (start-time price), not 1280 mc (completion-time price)", got)
	}
}
