package sim

import (
	"testing"

	"lips/internal/workload"
)

func TestDependencyGatedArrivals(t *testing.T) {
	c := oneNodeCluster()
	wb := workload.NewBuilder()
	arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 6.4}
	wb.AddInputJob("extract", "u", arch, 64, 0, 0)
	wb.AddInputJob("transform", "u", arch, 64, 0, 0)
	wb.AddInputJob("load", "u", arch, 64, 0, 0)
	w := wb.Build()
	s := New(c, w, nil, greedyStub(), Options{Deps: [][]int{nil, {0}, {1}}})
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Each stage runs only after its predecessor: completions strictly
	// ordered even though one node could have overlapped them.
	if !(r.JobDone[0] < r.JobDone[1] && r.JobDone[1] < r.JobDone[2]) {
		t.Errorf("stage completions not ordered: %v", r.JobDone)
	}
	// Serial chain: the makespan is at least 3 stage durations.
	stage := 0.64 + 6.4 // transfer + compute at slotECU 1
	if r.Makespan < 3*stage-1e-6 {
		t.Errorf("makespan %g too short for a serial chain", r.Makespan)
	}
}

func TestDependencyDiamondOverlapsMiddle(t *testing.T) {
	c := oneNodeCluster() // 2 slots: the two middle stages can overlap
	wb := workload.NewBuilder()
	arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 6.4}
	for _, name := range []string{"src", "mid1", "mid2", "sink"} {
		wb.AddInputJob(name, "u", arch, 64, 0, 0)
	}
	w := wb.Build()
	deps := [][]int{nil, {0}, {0}, {1, 2}}
	s := New(c, w, nil, greedyStub(), Options{Deps: deps})
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.JobDone[3] <= r.JobDone[1] || r.JobDone[3] <= r.JobDone[2] {
		t.Errorf("sink finished before its inputs: %v", r.JobDone)
	}
	// mid1 and mid2 overlap on the two slots: the diamond takes ~3
	// stages, not 4.
	stage := 0.64 + 6.4
	if r.Makespan > 3.5*stage {
		t.Errorf("makespan %g suggests no overlap (stage %g)", r.Makespan, stage)
	}
}

func TestDependencyValidation(t *testing.T) {
	c := oneNodeCluster()
	w := twoTaskJob()
	if _, err := New(c, w, nil, greedyStub(), Options{Deps: [][]int{{5}}}).Run(); err == nil {
		t.Error("out-of-range dep accepted")
	}
	if _, err := New(c, w, nil, greedyStub(), Options{Deps: [][]int{nil, nil, nil}}).Run(); err == nil {
		t.Error("oversized dep list accepted")
	}
}

func TestDependencyCycleDeadlocksCleanly(t *testing.T) {
	c := oneNodeCluster()
	wb := workload.NewBuilder()
	arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 6.4}
	wb.AddInputJob("a", "u", arch, 64, 0, 0)
	wb.AddInputJob("b", "u", arch, 64, 0, 0)
	w := wb.Build()
	_, err := New(c, w, nil, greedyStub(), Options{Deps: [][]int{{1}, {0}}}).Run()
	if err == nil {
		t.Fatal("cyclic deps should surface as a deadlock error")
	}
}
