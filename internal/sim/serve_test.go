package sim

import (
	"math"
	"testing"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/hdfs"
	"lips/internal/workload"
)

// TestStepUntilMatchesRun pins the serve-mode contract: Start plus a
// StepUntil loop must reproduce Run exactly — same makespan, same bill.
func TestStepUntilMatchesRun(t *testing.T) {
	batch := New(oneNodeCluster(), twoTaskJob(), nil, greedyStub(), Options{})
	want, err := batch.Run()
	if err != nil {
		t.Fatal(err)
	}

	s := New(oneNodeCluster(), twoTaskJob(), nil, greedyStub(), Options{})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 1; !s.Drained(); i++ {
		if err := s.StepUntil(float64(i) * 10); err != nil {
			t.Fatal(err)
		}
		if i > 100 {
			t.Fatal("run never drained")
		}
	}
	got := s.CurrentResult()
	if got.Makespan != want.Makespan {
		t.Errorf("makespan = %g, want %g", got.Makespan, want.Makespan)
	}
	if got.Cost.Total() != want.Cost.Total() {
		t.Errorf("cost = %v, want %v", got.Cost.Total(), want.Cost.Total())
	}
}

func TestStepUntilAdvancesIdleClock(t *testing.T) {
	s := New(oneNodeCluster(), &workload.Workload{}, nil, greedyStub(), Options{})
	if err := s.StepUntil(10); err == nil {
		t.Fatal("StepUntil before Start should fail")
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err == nil {
		t.Fatal("second Start should fail")
	}
	if err := s.StepUntil(123); err != nil {
		t.Fatal(err)
	}
	// An empty run still ages: serve epochs tick with nothing queued.
	if s.Now() != 123 {
		t.Errorf("clock = %g, want 123", s.Now())
	}
}

// TestAddJobMidRun grows a live run: a job submitted at t=100 into an
// initially empty workload must arrive, run and complete.
func TestAddJobMidRun(t *testing.T) {
	s := New(oneNodeCluster(), &workload.Workload{}, nil, greedyStub(), Options{})
	if _, err := s.AddJob(workload.Job{Name: "early"}, nil); err == nil {
		t.Fatal("AddJob before Start should fail")
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.StepUntil(100); err != nil {
		t.Fatal(err)
	}

	arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 64}
	j, err := s.AddJob(
		workload.Job{Name: "mid", User: "u", Archetype: arch.Name, CPUSecPerMB: arch.CPUSecPerMB(), AccessFrac: 1},
		&hdfs.DataObject{Name: "mid", SizeMB: 128, Origin: 0},
	)
	if err != nil {
		t.Fatal(err)
	}
	if n := s.W.Jobs[j].NumTasks; n != 2 {
		t.Fatalf("128 MB input → %d tasks, want 2", n)
	}
	for i := 1; !s.Drained() && i <= 100; i++ {
		if err := s.StepUntil(100 + float64(i)*10); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Drained() {
		t.Fatal("added job never completed")
	}
	if done := s.JobDoneAt(j); done <= 100 {
		t.Errorf("doneAt = %g, want > 100 (arrival was clamped to the clock)", done)
	}
	_, _, _, done := s.JobStateCounts(j)
	if done != 2 {
		t.Errorf("done tasks = %d, want 2", done)
	}
	// Same work as TestSingleJobExactAccounting, just submitted late.
	if got := s.CurrentResult().Cost.Category(cost.CatCPU); got != cost.Millicents(128) {
		t.Errorf("cpu cost = %v, want 128 mc", got.ToMillicents())
	}
}

func TestAddJobValidation(t *testing.T) {
	s := New(oneNodeCluster(), &workload.Workload{}, nil, greedyStub(), Options{})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		job  workload.Job
		obj  *hdfs.DataObject
	}{
		{"zero-size input", workload.Job{Name: "a"}, &hdfs.DataObject{SizeMB: 0, Origin: 0}},
		{"bad origin", workload.Job{Name: "b"}, &hdfs.DataObject{SizeMB: 64, Origin: 99}},
		{"no tasks", workload.Job{Name: "c"}, nil},
		{"no cpu", workload.Job{Name: "d", NumTasks: 4}, nil},
		{"bad access frac", workload.Job{Name: "e", AccessFrac: 1.5}, &hdfs.DataObject{SizeMB: 64, Origin: 0}},
	}
	for _, tc := range cases {
		if _, err := s.AddJob(tc.job, tc.obj); err == nil {
			t.Errorf("%s: AddJob accepted", tc.name)
		}
	}
	if s.NumJobs() != 0 || !s.Drained() {
		t.Errorf("rejected AddJobs left state behind: %d jobs", s.NumJobs())
	}
}

// TestCancelJobMidRun kills a job with running attempts: the partial burn
// is billed like a preempted speculative attempt, every task retires, and
// the run drains without the job's remaining work.
func TestCancelJobMidRun(t *testing.T) {
	s := New(oneNodeCluster(), twoTaskJob(), nil, greedyStub(), Options{})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.StepUntil(10); err != nil {
		t.Fatal(err)
	}
	if _, _, running, _ := s.JobStateCounts(0); running != 2 {
		t.Fatalf("want both tasks running at t=10, got %d", running)
	}
	if err := s.CancelJob(0); err != nil {
		t.Fatal(err)
	}
	if !s.JobCancelled(0) || !s.Drained() {
		t.Fatal("cancel did not retire the job")
	}
	if _, _, _, done := s.JobStateCounts(0); done != 2 {
		t.Errorf("tasks not retired: done = %d", done)
	}
	if s.JobDoneAt(0) != 10 {
		t.Errorf("doneAt = %g, want 10", s.JobDoneAt(0))
	}
	r := s.CurrentResult()
	// Each attempt ran ~9.36 ECU-sec of its 64 before dying (launched
	// after the 0.64 s transfer); the burn lands on the speculative/kill
	// category, not CPU.
	if got := r.Cost.Category(cost.CatSpeculative); got <= 0 {
		t.Errorf("cancelled burn billed %v, want > 0", got)
	}
	if got := r.Cost.Category(cost.CatCPU); got != 0 {
		t.Errorf("cpu cost = %v, want 0 (nothing completed)", got)
	}
	// Idempotent, and a second cancel adds no new charges.
	before := r.Cost.Total()
	if err := s.CancelJob(0); err != nil {
		t.Fatal(err)
	}
	if after := s.CurrentResult().Cost.Total(); after != before {
		t.Errorf("second cancel changed the bill: %v -> %v", before, after)
	}
	if err := s.CancelJob(99); err == nil {
		t.Error("out-of-range cancel accepted")
	}
}

// TestCancelReleasesDependents: cancelling a prerequisite unblocks its
// dependents exactly like completion would.
func TestCancelReleasesDependents(t *testing.T) {
	wb := workload.NewBuilder()
	arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 64}
	wb.AddInputJob("parent", "u", arch, 128, 0, 0)
	wb.AddInputJob("child", "u", arch, 64, 0, 0)
	w := wb.Build()
	s := New(oneNodeCluster(), w, nil, greedyStub(), Options{Deps: [][]int{1: {0}}})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.StepUntil(5); err != nil {
		t.Fatal(err)
	}
	if s.JobArrived(1) {
		t.Fatal("dependent arrived before its prerequisite finished")
	}
	if err := s.CancelJob(0); err != nil {
		t.Fatal(err)
	}
	for i := 1; !s.Drained() && i <= 100; i++ {
		if err := s.StepUntil(5 + float64(i)*10); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Drained() {
		t.Fatal("dependent never completed after the prerequisite's cancel")
	}
	if s.JobCancelled(1) || s.JobDoneAt(1) <= 5 {
		t.Errorf("dependent: cancelled=%v doneAt=%g", s.JobCancelled(1), s.JobDoneAt(1))
	}
}

// TestInjectFaultMidRun delivers node churn into a live run; past firing
// times clamp to the clock instead of corrupting the heap.
func TestInjectFaultMidRun(t *testing.T) {
	b := cluster.NewBuilder("za")
	b.AddNode("za", "t", 2, 2, cost.Millicents(1), 1e6)
	b.AddNode("za", "t", 2, 2, cost.Millicents(1), 1e6)
	s := New(b.Build(), twoTaskJob(), nil, greedyStub(), Options{})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.StepUntil(10); err != nil {
		t.Fatal(err)
	}
	if err := s.InjectFault(Fault{At: 3, Kind: FaultNodeDown, Node: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.StepUntil(11); err != nil {
		t.Fatal(err)
	}
	if s.NodeAlive(1) {
		t.Fatal("node 1 still alive after clamped fault")
	}
	if err := s.InjectFault(Fault{At: s.Now(), Kind: FaultNodeUp, Node: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 1; !s.Drained() && i <= 200; i++ {
		if err := s.StepUntil(11 + float64(i)*10); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Drained() || !s.NodeAlive(1) {
		t.Fatalf("drained=%v alive=%v after recovery", s.Drained(), s.NodeAlive(1))
	}
	if err := s.InjectFault(Fault{At: s.Now(), Kind: FaultNodeDown, Node: 99}); err == nil {
		t.Error("fault on a nonexistent node accepted")
	}
}

// TestAddJobKeepsDeterminism: interleaving StepUntil boundaries must not
// change the outcome — the same submissions at the same sim times yield
// bit-identical results regardless of how the wall loop slices time.
func TestAddJobKeepsDeterminism(t *testing.T) {
	run := func(stride float64) *Result {
		s := New(oneNodeCluster(), &workload.Workload{}, nil, greedyStub(), Options{})
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 64}
		if err := s.StepUntil(50); err != nil {
			t.Fatal(err)
		}
		if _, err := s.AddJob(
			workload.Job{Name: "a", User: "u", Archetype: arch.Name, CPUSecPerMB: arch.CPUSecPerMB(), AccessFrac: 1},
			&hdfs.DataObject{Name: "a", SizeMB: 128, Origin: 0},
		); err != nil {
			t.Fatal(err)
		}
		for i := 1; !s.Drained() && i <= 10000; i++ {
			if err := s.StepUntil(50 + float64(i)*stride); err != nil {
				t.Fatal(err)
			}
		}
		return s.CurrentResult()
	}
	a, b := run(1), run(97)
	if math.Abs(a.Makespan-b.Makespan) != 0 || a.Cost.Total() != b.Cost.Total() {
		t.Errorf("step stride changed the run: %g/%v vs %g/%v",
			a.Makespan, a.Cost.Total(), b.Makespan, b.Cost.Total())
	}
}

// TestJobSpanMatchesAccessors is the differential gate for the span
// surface: every JobSpan milestone must equal the raw accessor it is
// derived from (JobFirstEnqueue, JobFirstLaunch, JobDoneAt, the
// ledger), the batch frame must report submitted == admitted ==
// arrival, and the phase durations must telescope to the end-to-end
// latency.
func TestJobSpanMatchesAccessors(t *testing.T) {
	s := New(oneNodeCluster(), &workload.Workload{}, nil, greedyStub(), Options{})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.StepUntil(50); err != nil {
		t.Fatal(err)
	}
	arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 64}
	j, err := s.AddJob(
		workload.Job{Name: "sp", User: "tenant-a", Archetype: arch.Name, CPUSecPerMB: arch.CPUSecPerMB(), AccessFrac: 1},
		&hdfs.DataObject{Name: "sp", SizeMB: 128, Origin: 0},
	)
	if err != nil {
		t.Fatal(err)
	}

	// Mid-run, before anything finishes: terminal fields must be unset.
	early := s.JobSpan(j)
	if early.Outcome != "" || early.DoneSim != -1 || early.E2ESim() != -1 {
		t.Errorf("in-flight span has terminal state: %+v", early)
	}
	if early.SubmittedSim != s.W.Jobs[j].ArrivalSec || early.AdmittedSim != early.SubmittedSim {
		t.Errorf("batch frame: submitted %g admitted %g, want both %g",
			early.SubmittedSim, early.AdmittedSim, s.W.Jobs[j].ArrivalSec)
	}

	for i := 1; !s.Drained() && i <= 1000; i++ {
		if err := s.StepUntil(50 + float64(i)*10); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Drained() {
		t.Fatal("never drained")
	}

	sp := s.JobSpan(j)
	if sp.Outcome != "done" || sp.Job != j || sp.Name != "sp" || sp.Tenant != "tenant-a" {
		t.Fatalf("span identity: %+v", sp)
	}
	if fe, ok := s.JobFirstEnqueue(j); !ok || sp.PlannedSim != fe {
		t.Errorf("planned %g, accessor %g (ok=%v)", sp.PlannedSim, fe, ok)
	}
	if fl, ok := s.JobFirstLaunch(j); !ok || sp.FirstLaunchSim != fl {
		t.Errorf("first launch %g, accessor %g (ok=%v)", sp.FirstLaunchSim, fl, ok)
	}
	if sp.DoneSim != s.JobDoneAt(j) {
		t.Errorf("done %g, accessor %g", sp.DoneSim, s.JobDoneAt(j))
	}
	if sp.CostUC != s.JobCostUC(j) || sp.CostUC != int64(s.Ledger.Job("sp")) || sp.CostUC <= 0 {
		t.Errorf("cost %d µc, accessor %d, ledger %d", sp.CostUC, s.JobCostUC(j), int64(s.Ledger.Job("sp")))
	}
	var sum float64
	for _, ph := range sp.Phases() {
		sum += ph.DurSim
	}
	if e2e := sp.E2ESim(); math.Abs(sum-e2e) > 1e-9 || e2e <= 0 {
		t.Errorf("phases sum %g, e2e %g", sum, e2e)
	}
}

// TestJobSpanCancelled: a cancelled job's span carries the cancelled
// outcome and its done milestone equals JobDoneAt.
func TestJobSpanCancelled(t *testing.T) {
	s := New(oneNodeCluster(), twoTaskJob(), nil, greedyStub(), Options{})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.StepUntil(10); err != nil {
		t.Fatal(err)
	}
	if err := s.CancelJob(0); err != nil {
		t.Fatal(err)
	}
	for i := 1; !s.Drained() && i <= 100; i++ {
		if err := s.StepUntil(10 + float64(i)*10); err != nil {
			t.Fatal(err)
		}
	}
	sp := s.JobSpan(0)
	if sp.Outcome != "cancelled" || sp.DoneSim != s.JobDoneAt(0) || sp.DoneSim < 0 {
		t.Errorf("cancelled span: %+v (doneAt %g)", sp, s.JobDoneAt(0))
	}
}
