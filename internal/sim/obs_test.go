package sim

import (
	"testing"

	"lips/internal/cost"
	"lips/internal/metrics"
	"lips/internal/obs"
)

// TestNoObsNoAllocs pins the disabled-path contract, mirroring
// TestNopTracerNoAllocs in internal/trace: with Options.Metrics unset,
// every lifecycle chokepoint is a nil check plus the trace guard and
// allocates nothing.
func TestNoObsNoAllocs(t *testing.T) {
	s := New(oneNodeCluster(), twoTaskJob(), nil, greedyStub(), Options{})
	if s.om != nil {
		t.Fatal("om set without Options.Metrics")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s.noteEnqueue(0, 0, 0, 0, 0)
		s.noteLaunch(0, 0, 1, 0, 0, metrics.NodeLocal, false)
		s.noteDone(0, 0, 1, 0, 0, 1, 0, 1, 0, 0, false)
		s.noteKill(0, 0, 0, "timeout", 0, false)
		s.noteMove(0, 0, 0, 0, 64, 1, 0, "plan")
		s.charge(cost.CatCPU, 0, 0)
		s.obsRefresh()
	})
	if allocs != 0 {
		t.Errorf("disabled obs path allocates %.1f objects per call, want 0", allocs)
	}
}

// TestLiveMetricsMatchRun runs a workload with a live registry and checks
// the scraped values against the run's own result: lifecycle counters and
// cost counters are exact, final gauges land on the end-of-run state.
func TestLiveMetricsMatchRun(t *testing.T) {
	reg := obs.NewRegistry()
	c := oneNodeCluster()
	w := twoTaskJob()
	r, err := New(c, w, nil, greedyStub(), Options{Metrics: reg, MetricsSampleSec: 10}).Run()
	if err != nil {
		t.Fatal(err)
	}

	val := func(name string, label ...string) float64 {
		t.Helper()
		v, ok := reg.Value(name, label...)
		if !ok {
			t.Fatalf("metric %s %v not registered", name, label)
		}
		return v
	}

	if got := val(obs.MSimDone); got != float64(w.TotalTasks()) {
		t.Errorf("done counter = %g, want %d", got, w.TotalTasks())
	}
	// The greedy stub launches directly without pinning to node queues,
	// so the enqueue counter stays zero (it counts Enqueue calls, the
	// LiPS path).
	if got := val(obs.MSimEnqueued); got != 0 {
		t.Errorf("enqueued counter = %g, want 0", got)
	}
	for cat, label := range map[cost.Category]string{
		cost.CatCPU: "cpu", cost.CatTransfer: "transfer", cost.CatPlacement: "placement",
		cost.CatSpeculative: "speculative", cost.CatFault: "fault",
	} {
		want := float64(r.Cost.Category(cat))
		if got := val(obs.MSimCost, label); got != want {
			t.Errorf("cost[%s] = %g, want %g (ledger)", label, got, want)
		}
	}
	if got, want := reg.Sum(obs.MSimCost), float64(r.Cost.Total()); got != want {
		t.Errorf("cost sum = %g, want %g", got, want)
	}
	for loc, label := range map[metrics.Locality]string{
		metrics.NodeLocal: "node-local", metrics.ZoneLocal: "zone-local",
		metrics.Remote: "remote", metrics.NoInput: "no-input",
	} {
		if got := val(obs.MSimLaunched, label); got != float64(r.Locality.Count(loc)) {
			t.Errorf("launched[%s] = %g, want %d", label, got, r.Locality.Count(loc))
		}
	}

	// The gauge refresh chain stops with the last completion, so the
	// final snapshot shows every task done and all slots free.
	if got := val(obs.MSimTasks, "done"); got != float64(w.TotalTasks()) {
		t.Errorf("tasks{done} gauge = %g, want %d", got, w.TotalTasks())
	}
	if got := val(obs.MSimFreeSlots); got != float64(c.Nodes[0].Slots) {
		t.Errorf("free slots gauge = %g, want %d", got, c.Nodes[0].Slots)
	}
	// Both tasks ran to completion, so slot-seconds accumulated.
	if got := val(obs.MSimBusySlotSeconds); got <= 0 {
		t.Errorf("busy slot gauge = %g, want > 0", got)
	}
	// The last refresh tick fires within one interval after the final
	// completion, so the clock gauge lands in [makespan, makespan+10].
	if got := val(obs.MSimClockSeconds); got < r.Makespan || got > r.Makespan+10 {
		t.Errorf("clock gauge = %g, want within [%g, %g]", got, r.Makespan, r.Makespan+10)
	}

	// /progress reads the same registry.
	p := obs.Snapshot(reg)
	if p.Done != int64(w.TotalTasks()) || p.TotalUC != int64(r.Cost.Total()) {
		t.Errorf("progress = %+v", p)
	}
}
