package sim

import (
	"testing"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/obs"
	"lips/internal/trace"
	"lips/internal/workload"
)

// multiTenantWorkload builds four input jobs owned by three tenants
// (one anonymous), enough concurrency to contend for the cluster.
func multiTenantWorkload() *workload.Workload {
	wb := workload.NewBuilder()
	arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 64}
	wb.AddInputJob("j-a1", "alice", arch, 256, 0, 0)
	wb.AddInputJob("j-b1", "bob", arch, 128, 1, 5)
	wb.AddInputJob("j-a2", "alice", arch, 128, 2, 10)
	wb.AddInputJob("j-anon", "", arch, 64, 0, 15) // lands on _system
	return wb.Build()
}

func chargebackCluster() *cluster.Cluster {
	b := cluster.NewBuilder("za", "zb")
	for i := 0; i < 2; i++ {
		b.AddNode("za", "t", 2, 2, cost.Millicents(1), 100)
		b.AddNode("zb", "t", 2, 2, cost.Millicents(1), 100)
	}
	return b.Build()
}

// TestLedgerConservationUnderChurn is the sim-layer half of the
// reconciliation invariant: across seeded fault + speculation + cancel
// runs, per-job charges sum exactly to the global category totals, and
// the tenant×category chargeback conserves every microcent of the
// ledger.
func TestLedgerConservationUnderChurn(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		c := chargebackCluster()
		w := multiTenantWorkload()
		plan := RandomFaultPlan(seed, c, FaultSpec{Crashes: 2, StoreLosses: 1, Slowdowns: 2, WindowSec: 90, DowntimeSec: 20})
		s := New(c, w, nil, greedyStub(), Options{Faults: plan, Speculative: true})
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		cancelled := false
		for i := 1; !s.Drained() && i <= 500; i++ {
			if err := s.StepUntil(float64(i) * 5); err != nil {
				t.Fatal(err)
			}
			// Cancel bob's job once it has running attempts, so the
			// partial burn lands in the speculative category.
			if !cancelled {
				if _, _, running, _ := s.JobStateCounts(1); running > 0 {
					if err := s.CancelJob(1); err != nil {
						t.Fatal(err)
					}
					cancelled = true
				}
			}
		}
		if !s.Drained() {
			t.Fatalf("seed %d: run never drained", seed)
		}
		if !cancelled {
			t.Fatalf("seed %d: cancel never exercised", seed)
		}
		l := s.Ledger
		if l.Total() == 0 {
			t.Fatalf("seed %d: vacuous run, nothing billed", seed)
		}
		if err := l.Reconcile(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		// Per-job charges sum exactly to the category totals minus the
		// unattributable remainder (background replication, plan moves).
		var jobSum, catSum cost.Money
		for _, name := range l.Jobs() {
			jobSum += l.Job(name)
		}
		for _, cat := range cost.Categories {
			catSum += l.Category(cat)
		}
		if jobSum+l.Unattributed() != catSum {
			t.Errorf("seed %d: job sum %d + unattributed %d != category sum %d (uc)",
				seed, jobSum, l.Unattributed(), catSum)
		}
		if catSum != l.Total() {
			t.Errorf("seed %d: category sum %d != total %d (uc)", seed, catSum, l.Total())
		}
		// The serve-mode per-job cost accessor reads the same key.
		for j := range s.W.Jobs {
			if got, want := s.JobCostUC(j), int64(l.Job(s.W.Jobs[j].Name)); got != want {
				t.Errorf("seed %d: JobCostUC(%d) = %d, ledger says %d", seed, j, got, want)
			}
		}
		// Tenants: alice, bob, and the reserved unattributed bucket.
		tenants := l.Tenants()
		if len(tenants) != 3 || tenants[0] != cost.UnattributedTenant {
			t.Errorf("seed %d: tenants = %v", seed, tenants)
		}
		var tenantSum cost.Money
		for _, tn := range tenants {
			tenantSum += l.TenantTotal(tn)
		}
		if tenantSum != l.Total() {
			t.Errorf("seed %d: tenant sum %d != total %d (uc)", seed, tenantSum, l.Total())
		}
	}
}

// eventBuf captures trace events in memory for replay tests.
type eventBuf struct{ events []trace.Event }

func (b *eventBuf) Enabled() bool      { return true }
func (b *eventBuf) Emit(e trace.Event) { b.events = append(b.events, e) }

// TestTenantChargebackLiveMatchesReplay runs a faulty multi-tenant
// workload with both live metrics and tracing, replays the trace into a
// fresh registry through obs.TraceSink, and requires the rebuilt
// lips_cost_microcents_total{tenant,category} counters to equal the
// live ones exactly — the trace-replay half of the audit invariant.
func TestTenantChargebackLiveMatchesReplay(t *testing.T) {
	c := chargebackCluster()
	w := multiTenantWorkload()
	plan := RandomFaultPlan(3, c, FaultSpec{Crashes: 1, StoreLosses: 1, Slowdowns: 1, WindowSec: 90, DowntimeSec: 20})
	live := obs.NewRegistry()
	buf := &eventBuf{}
	r, err := New(c, w, nil, greedyStub(), Options{
		Metrics: live, Tracer: buf, SampleIntervalSec: 10, Faults: plan, Speculative: true,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf.events) == 0 {
		t.Fatal("no events traced")
	}
	for _, e := range buf.events {
		if err := trace.Validate(e); err != nil {
			t.Fatalf("invalid event: %v", err)
		}
	}

	replay := obs.NewRegistry()
	sink := obs.NewTraceSink(replay)
	for _, e := range buf.events {
		sink.Emit(e)
	}

	// The final sample event lands at or after the last completion, so
	// the replayed cumulative series covers the whole bill.
	for _, tn := range r.Cost.Tenants() {
		for _, cat := range cost.Categories {
			want, _ := live.Value(obs.MCost, tn, string(cat))
			got, _ := replay.Value(obs.MCost, tn, string(cat))
			if got != want {
				t.Errorf("replayed cost{%s,%s} = %g, live %g", tn, cat, got, want)
			}
			if ledger := float64(r.Cost.TenantCategory(tn, cat)); want != ledger {
				t.Errorf("live cost{%s,%s} = %g, ledger %g", tn, cat, want, ledger)
			}
		}
	}
	if got, want := replay.Sum(obs.MCost), float64(r.Cost.Total()); got != want {
		t.Errorf("replayed chargeback sum = %g, ledger total %g", got, want)
	}
}
