package sim

import (
	"lips/internal/cost"
	"lips/internal/metrics"
	"lips/internal/obs"
	"lips/internal/trace"
)

// Live metrics plumbing. Mirrors the tracing discipline in trace.go:
// s.om is nil when Options.Metrics is unset, every helper starts with
// that single pointer check, and no payload is built before the guard
// passes — so the disabled path costs one branch per call site and
// allocates nothing (TestNoObsNoAllocs, plus the simulator throughput
// gate in scripts/perfsmoke.sh).

// simMetrics caches the metric handles the hot path bumps, with the
// label children resolved up front (obs vec lookups take a lock).
type simMetrics struct {
	m        *obs.SimMetrics
	launched [4]*obs.Counter // by metrics.Locality
	cost     map[cost.Category]*obs.Counter
	tenant   map[tenantCatKey]*obs.Counter // chargeback children, cached per (tenant, category)
	states   [4]*obs.Gauge                 // by TaskState
}

// tenantCatKey addresses one chargeback counter without allocating on
// lookup (a composite struct key, not a joined string).
type tenantCatKey struct {
	tenant string
	cat    cost.Category
}

func newSimMetrics(reg *obs.Registry) *simMetrics {
	om := &simMetrics{
		m:      obs.RegisterSim(reg),
		cost:   make(map[cost.Category]*obs.Counter),
		tenant: make(map[tenantCatKey]*obs.Counter),
	}
	for loc := metrics.NodeLocal; loc <= metrics.NoInput; loc++ {
		om.launched[loc] = om.m.Launched[loc.String()]
	}
	for _, cat := range []cost.Category{cost.CatCPU, cost.CatTransfer,
		cost.CatPlacement, cost.CatSpeculative, cost.CatFault} {
		om.cost[cat] = om.m.Cost[string(cat)]
	}
	for i, st := range []string{"pending", "queued", "running", "done"} {
		om.states[i] = om.m.Tasks.With(st)
	}
	return om
}

// tenantCounter resolves (caching) the chargeback counter for one
// tenant×category pair. The vec lookup locks the family, so only the
// first charge per pair pays it.
func (om *simMetrics) tenantCounter(tenant string, cat cost.Category) *obs.Counter {
	k := tenantCatKey{tenant, cat}
	c := om.tenant[k]
	if c == nil {
		c = om.m.TenantCost.With(tenant, string(cat))
		om.tenant[k] = c
	}
	return c
}

// Registry returns the run's live metrics registry, nil when metrics are
// disabled — schedulers register their own families through it (e.g.
// LiPS epoch histograms in Init).
func (s *Sim) Registry() *obs.Registry { return s.opts.Metrics }

// charge bills the ledger and mirrors the amount into the live
// per-category and per-tenant cost counters, keeping all three in exact
// agreement. It is the single chokepoint every dollar flows through:
// job indexes a workload job (whose Name keys the per-job ledger and
// whose User owns the chargeback), or is -1 for money no single job
// caused — background replication, plan-driven block moves — which
// lands on the reserved cost.UnattributedTenant.
func (s *Sim) charge(cat cost.Category, job int, amount cost.Money) {
	name, tenant := "", ""
	if job >= 0 {
		j := &s.W.Jobs[job]
		name, tenant = j.Name, j.User
	}
	if tenant == "" {
		tenant = cost.UnattributedTenant
	}
	s.Ledger.ChargeTenant(cat, name, tenant, amount)
	if s.om != nil {
		s.om.cost[cat].Add(float64(amount))
		s.om.tenantCounter(tenant, cat).Add(float64(amount))
	}
}

// setSampleGauges publishes one snapshot's task-state and slot numbers.
// emitSample calls it with the scan it just traced (so a sample event
// and the gauges at the same timestamp agree exactly); obsRefresh calls
// it when the run samples on a different cadence or not at all.
func (s *Sim) setSampleGauges(info *trace.SampleInfo) {
	if s.om == nil {
		return
	}
	s.om.m.Clock.Set(s.clock)
	s.om.m.BusySlot.Set(s.busySlotSec)
	s.om.m.FreeSlots.Set(float64(info.FreeSlots))
	s.om.m.LiveSlots.Set(float64(info.LiveSlots))
	s.om.states[Pending].Set(float64(info.Pending))
	s.om.states[Queued].Set(float64(info.Queued))
	s.om.states[Running].Set(float64(info.Running))
	s.om.states[Done].Set(float64(info.Done))
}

// obsRefresh re-derives the sampled gauges from simulator state.
func (s *Sim) obsRefresh() {
	if s.om == nil {
		return
	}
	var info trace.SampleInfo
	s.scanSample(&info)
	s.setSampleGauges(&info)
}
