package sim

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"

	"lips/internal/cluster"
	"lips/internal/trace"
	"lips/internal/workload"
)

// batchStub is the in-package stand-in for the sched.Scale batch
// scheduler (sched imports sim, so the real one cannot be used here):
// FIFO job order, cursor-based pending scan, best-replica placement,
// batched slot-free notifications.
type batchStub struct {
	NopNodeEvents
	cursors []int
	head    int // lowest job index that may still have pending work
	// onFill, when set, runs before each node is filled — the churn test
	// uses it to kill running work in the middle of a batched sweep.
	onFill func(s *Sim, n cluster.NodeID)
}

func (bs *batchStub) Name() string { return "batch-stub" }
func (bs *batchStub) Init(s *Sim) {
	bs.cursors = make([]int, len(s.W.Jobs))
	bs.head = 0
}
func (bs *batchStub) OnJobArrival(s *Sim, job int) {
	bs.cursors[job] = 0
	if job < bs.head {
		bs.head = job
	}
	s.KickIdleNodes()
}
func (bs *batchStub) OnTaskDone(*Sim, int, int) {}
func (bs *batchStub) OnSlotFree(s *Sim, n cluster.NodeID) {
	bs.fill(s, n)
}
func (bs *batchStub) OnSlotsFree(s *Sim, nodes []cluster.NodeID) {
	for _, n := range nodes {
		if bs.onFill != nil {
			bs.onFill(s, n)
		}
		if !bs.fill(s, n) {
			return // backlog drained; later nodes would rescan for nothing
		}
	}
}

// fill reports false once the pending backlog is drained, so a batched
// sweep stops instead of paying a failed job scan per remaining node.
func (bs *batchStub) fill(s *Sim, n cluster.NodeID) bool {
	for s.FreeSlots(n) > 0 {
		job, task, ok := bs.next(s)
		if !ok {
			return false
		}
		store := NoStore
		if s.W.Jobs[job].HasInput() {
			store = s.BestReplica(job, task, n)
		}
		if err := s.Launch(job, task, n, store); err != nil {
			bs.cursors[job] = task + 1
			continue
		}
		bs.cursors[job] = task
	}
	return true
}

// next mirrors sched.Scale: scan from the head job so a launch costs
// amortized O(1); one full rescan (head and cursors reset) when the
// forward-only cursors miss work re-pended behind them.
func (bs *batchStub) next(s *Sim) (job, task int, ok bool) {
	for rescan := 0; rescan < 2; rescan++ {
		for j := bs.head; j < len(bs.cursors); j++ {
			if !s.JobArrived(j) {
				continue
			}
			if t := s.NextPending(j, bs.cursors[j]); t >= 0 {
				return j, t, true
			}
			bs.cursors[j] = s.W.Jobs[j].NumTasks
			if j == bs.head {
				bs.head++
			}
		}
		if pending, _, _, _ := s.StateCounts(); pending == 0 {
			return 0, 0, false
		}
		bs.head = 0
		for j := range bs.cursors {
			bs.cursors[j] = 0
		}
	}
	return 0, 0, false
}

// buildScaleRun builds a seed-deterministic random cluster and workload
// of the given size.
func buildScaleRun(nodes, tasks int, seed int64) (*cluster.Cluster, *workload.Workload) {
	rng := rand.New(rand.NewSource(seed))
	c := cluster.Random(rng, cluster.RandomSpec{Nodes: nodes})
	w := workload.Random(rng, c.StoreIDs(), workload.RandomSpec{TotalTasks: tasks})
	return c, w
}

func runScaleTrace(t *testing.T, c *cluster.Cluster, w *workload.Workload, sched Scheduler, opts Options, seed int64) ([]byte, *Result) {
	t.Helper()
	p := w.Placement()
	p.Shuffle(rand.New(rand.NewSource(seed+1000)), c.StoreIDs())
	var buf bytes.Buffer
	sink := trace.NewJSONL(&buf)
	opts.Tracer = sink
	if opts.SampleIntervalSec == 0 {
		opts.SampleIntervalSec = 120
	}
	r, err := New(c, w, p, sched, opts).Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), r
}

// TestScaleDeterministic pins the tentpole determinism claim: a 1k-node,
// 100k-task run from a fixed seed produces byte-identical JSONL traces
// across repeated runs.
func TestScaleDeterministic(t *testing.T) {
	nodes, tasks := 1000, 100_000
	if testing.Short() {
		nodes, tasks = 200, 5_000
	}
	c, w := buildScaleRun(nodes, tasks, 7)
	a, ra := runScaleTrace(t, c, w, &batchStub{}, Options{}, 7)
	b, rb := runScaleTrace(t, c, w, &batchStub{}, Options{}, 7)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed traces differ: run A %d bytes, run B %d bytes", len(a), len(b))
	}
	if ra.TotalCost() != rb.TotalCost() || ra.Makespan != rb.Makespan {
		t.Fatalf("same-seed results differ: %v vs %v", ra, rb)
	}
	if got := ra.Locality.Total(); got != w.TotalTasks() {
		t.Fatalf("launched %d tasks, workload has %d", got, w.TotalTasks())
	}
}

// specStub is a spec-aware greedy scheduler for the legacy cross-check:
// greedy best-replica fill, falling back to speculative execution like
// the Hadoop default.
func specStub() *stubSched {
	ss := &stubSched{name: "spec-stub"}
	ss.onSlotFree = func(s *Sim, n cluster.NodeID) {
		for s.FreeSlots(n) > 0 {
			launched := false
			for _, j := range s.ArrivedJobs() {
				pending := s.PendingTasks(j)
				if len(pending) == 0 {
					continue
				}
				store := NoStore
				if s.W.Jobs[j].HasInput() {
					store = s.BestReplica(j, pending[0], n)
				}
				if err := s.Launch(j, pending[0], n, store); err != nil {
					continue
				}
				launched = true
				break
			}
			if !launched {
				s.LaunchSpeculative(n)
				return
			}
		}
	}
	ss.onArrival = func(s *Sim, _ int) { s.KickIdleNodes() }
	return ss
}

// TestIndexedMatchesLegacyDispatch is the differential gate for the
// indexed dispatch rework: the incremental-index control paths and the
// original full-scan paths (Options.LegacyDispatch) must produce
// byte-identical traces — same launches, kills, fault replay, and sample
// counters — under speculation, faults, and batched notifications.
func TestIndexedMatchesLegacyDispatch(t *testing.T) {
	c, w := buildScaleRun(64, 2000, 11)
	faults := RandomFaultPlan(11, c, FaultSpec{Crashes: 3, StoreLosses: 2, Slowdowns: 2})

	cases := []struct {
		name  string
		sched func() Scheduler
		opts  Options
	}{
		{"spec-faults", func() Scheduler { return specStub() },
			Options{Speculative: true, Faults: faults}},
		{"batch-faults", func() Scheduler { return &batchStub{} },
			Options{Faults: faults}},
		{"plain", func() Scheduler { return greedyStub() }, Options{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			indexed, ri := runScaleTrace(t, c, w, tc.sched(), tc.opts, 11)
			legacy := tc.opts
			legacy.LegacyDispatch = true
			scanned, rl := runScaleTrace(t, c, w, tc.sched(), legacy, 11)
			if !bytes.Equal(indexed, scanned) {
				i := 0
				for i < len(indexed) && i < len(scanned) && indexed[i] == scanned[i] {
					i++
				}
				lo, hi := i-80, i+120
				if lo < 0 {
					lo = 0
				}
				if hi > len(indexed) {
					hi = len(indexed)
				}
				t.Fatalf("indexed and legacy traces diverge at byte %d:\nindexed: %q",
					i, indexed[lo:hi])
			}
			if ri.TotalCost() != rl.TotalCost() || ri.Makespan != rl.Makespan ||
				ri.Faults != rl.Faults {
				t.Fatalf("results differ: indexed %v, legacy %v", ri, rl)
			}
		})
	}
}

// verifyIndexes recomputes every incremental index from scratch and
// compares it with the live copy — the ground-truth oracle behind
// TestSlotIndexProperty and the churn test.
//
// strict additionally requires every Running task to be tracked in
// s.running. That direction only holds at quiescent points: while a
// completion settles its speculative twin, the losing attempt's kill
// frees a slot and dispatches the scheduler before the task flips to
// Done, so slot-free callbacks can observe a Running task whose attempts
// are already untracked. Callers inside OnSlotFree/OnSlotsFree therefore
// pass strict=false; OnTaskDone and end-of-run use strict=true.
func verifyIndexes(t *testing.T, s *Sim, strict bool) {
	t.Helper()
	freeSlots, liveSlots := 0, 0
	zoneFree := make([]int, len(s.zoneFree))
	for n := range s.nodes {
		ns := &s.nodes[n]
		idle := s.idle[n>>6]&(1<<(uint(n)&63)) != 0
		if idle != (!ns.down && ns.free > 0) {
			t.Fatalf("node %d: idle bit %v, want %v (down=%v free=%d)", n, idle, !idle, ns.down, ns.free)
		}
		if ns.down {
			continue
		}
		freeSlots += ns.free
		liveSlots += s.C.Nodes[n].Slots
		zoneFree[s.nodeZone[n]] += ns.free
	}
	if freeSlots != s.freeSlots || liveSlots != s.liveSlots {
		t.Fatalf("slots: live (%d free, %d total), recomputed (%d, %d)",
			s.freeSlots, s.liveSlots, freeSlots, liveSlots)
	}
	for z := range zoneFree {
		if zoneFree[z] != s.zoneFree[z] {
			t.Fatalf("zone %d: live free %d, recomputed %d", z, s.zoneFree[z], zoneFree[z])
		}
	}

	var stateCount [4]int
	for _, st := range s.states {
		stateCount[st]++
	}
	if stateCount != s.stateCount {
		t.Fatalf("state counts: live %v, recomputed %v", s.stateCount, stateCount)
	}
	unarrived := 0
	for j := range s.jobs {
		if !s.jobs[j].arrived {
			unarrived += s.W.Jobs[j].NumTasks
		}
	}
	if unarrived != s.unarrived {
		t.Fatalf("unarrived: live %d, recomputed %d", s.unarrived, unarrived)
	}

	// Every ref in the running index must point back at itself through the
	// attempt's stored position — the swap-remove fixup invariant.
	for pos, ref := range s.running {
		flat := ref >> 1
		ti := &s.tasks[flat]
		if ref&1 == 1 {
			if ti.spec < 0 || s.specs[ti.spec].runPos != int32(pos) {
				t.Fatalf("running[%d]=spec ref for flat=%d, but stored pos disagrees", pos, flat)
			}
		} else if ti.runPos != int32(pos) {
			t.Fatalf("running[%d]=primary ref for flat=%d, but stored pos %d disagrees", pos, flat, ti.runPos)
		}
	}
	if !strict {
		return
	}
	refs := 0
	for flat := range s.tasks {
		ti := &s.tasks[flat]
		if TaskState(s.states[flat]) == Running {
			refs++
			pos := ti.runPos
			if pos < 0 || pos >= int32(len(s.running)) || s.running[pos] != int32(flat)<<1 {
				t.Fatalf("task flat=%d: primary ref missing from running index (pos=%d)", flat, pos)
			}
		}
		if ti.spec >= 0 {
			refs++
			pos := s.specs[ti.spec].runPos
			if pos < 0 || pos >= int32(len(s.running)) || s.running[pos] != int32(flat)<<1|1 {
				t.Fatalf("task flat=%d: spec ref missing from running index (pos=%d)", flat, pos)
			}
		}
	}
	if refs != len(s.running) {
		t.Fatalf("running index has %d refs, tasks account for %d", len(s.running), refs)
	}
}

// TestSlotIndexProperty drives random launch/kill/crash/recover churn
// through the simulator and checks, at every scheduler callback, that the
// incremental indexes agree with recomputed-from-scratch copies. Run
// under -race in CI (make scalesmoke).
func TestSlotIndexProperty(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		for _, legacy := range []bool{false, true} {
			c, w := buildScaleRun(48, 600, seed)
			faults := RandomFaultPlan(seed, c, FaultSpec{Crashes: 4, StoreLosses: 2, Slowdowns: 2})
			rng := rand.New(rand.NewSource(seed * 97))
			checks := 0
			ss := &stubSched{name: "churn-stub"}
			ss.onSlotFree = func(s *Sim, n cluster.NodeID) {
				verifyIndexes(t, s, false)
				checks++
				for s.FreeSlots(n) > 0 {
					if rng.Intn(10) == 0 {
						return // leave the slot idle this round
					}
					launched := false
					for _, j := range s.ArrivedJobs() {
						pending := s.PendingTasks(j)
						if len(pending) == 0 {
							continue
						}
						pick := pending[rng.Intn(len(pending))]
						store := NoStore
						if s.W.Jobs[j].HasInput() {
							store = s.BestReplica(j, pick, n)
						}
						if err := s.Launch(j, pick, n, store); err != nil {
							continue
						}
						launched = true
						break
					}
					if !launched {
						s.LaunchSpeculative(n)
						return
					}
				}
			}
			ss.onTaskDone = func(s *Sim, job, task int) {
				verifyIndexes(t, s, true)
				if rng.Intn(5) != 0 {
					return
				}
				// Kill a random running task to churn the indexes.
				for _, j := range s.ArrivedJobs() {
					running := s.RunningTasks(j)
					if len(running) == 0 {
						continue
					}
					if err := s.KillTask(j, running[rng.Intn(len(running))]); err != nil {
						t.Fatal(err)
					}
					break
				}
			}
			p := w.Placement()
			p.Shuffle(rand.New(rand.NewSource(seed+1000)), c.StoreIDs())
			s := New(c, w, p, ss, Options{Speculative: true, Faults: faults, LegacyDispatch: legacy})
			if _, err := s.Run(); err != nil {
				t.Fatalf("seed %d legacy=%v: %v", seed, legacy, err)
			}
			verifyIndexes(t, s, true)
			if checks == 0 {
				t.Fatalf("seed %d legacy=%v: property never checked", seed, legacy)
			}
		}
	}
}

// TestKillDuringBatchedSlotFree churns KillTask from inside a batched
// OnSlotsFree sweep: killing work on nodes later in the same batch (and
// re-killing on the node being filled) must leave the indexes coherent
// and the run complete.
func TestKillDuringBatchedSlotFree(t *testing.T) {
	c, w := buildScaleRun(48, 600, 5)
	rng := rand.New(rand.NewSource(5))
	bs := &batchStub{}
	kills := 0
	bs.onFill = func(s *Sim, n cluster.NodeID) {
		verifyIndexes(t, s, false)
		if rng.Intn(4) != 0 {
			return
		}
		for _, j := range s.ArrivedJobs() {
			running := s.RunningTasks(j)
			if len(running) == 0 {
				continue
			}
			if err := s.KillTask(j, running[rng.Intn(len(running))]); err != nil {
				t.Fatal(err)
			}
			kills++
			break
		}
	}
	p := w.Placement()
	p.Shuffle(rand.New(rand.NewSource(1005)), c.StoreIDs())
	s := New(c, w, p, bs, Options{})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	verifyIndexes(t, s, true)
	if kills == 0 {
		t.Fatal("churn never killed anything; widen the trigger")
	}
	for j := range w.Jobs {
		if got := s.JobRemaining(j); got != 0 {
			t.Fatalf("job %d still has %d tasks after churn", j, got)
		}
	}
}

// TestSteadyStateNoAllocs pins the zero-allocation event loop: with
// tracing and metrics disabled and a cursor-based scheduler, a full
// 50k-task run must stay within a small constant allocation budget —
// no per-event or per-launch garbage. Skipped under -race (the race
// runtime allocates).
func TestSteadyStateNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(3))
	c := cluster.Random(rng, cluster.RandomSpec{Nodes: 64})
	wb := workload.NewBuilder()
	wb.AddNoInputJob("steady", "u", 50_000, 30, 0)
	w := wb.Build()

	cursor := 0
	ss := &stubSched{name: "cursor-stub"}
	ss.onArrival = func(s *Sim, _ int) { s.KickIdleNodes() }
	ss.onSlotFree = func(s *Sim, n cluster.NodeID) {
		for s.FreeSlots(n) > 0 {
			tsk := s.NextPending(0, cursor)
			if tsk < 0 {
				return
			}
			if err := s.Launch(0, tsk, n, NoStore); err != nil {
				return
			}
			cursor = tsk
		}
	}
	s := New(c, w, nil, ss, Options{})

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m1)
	allocs := m1.Mallocs - m0.Mallocs
	// Run's fixed overhead (the final Result, job bookkeeping) is allowed;
	// anything growing with the 50k launches/completions is not.
	if allocs > 200 {
		t.Fatalf("steady-state run allocated %d objects for 50k tasks; want ≤200", allocs)
	}
}
