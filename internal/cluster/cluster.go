// Package cluster models the computation substrate LiPS schedules onto:
// nodes (Hadoop TaskTrackers) with heterogeneous CPU capacity and prices,
// data stores (HDFS DataNodes) with capacities, availability zones, the
// pairwise bandwidth model, and the paper's transfer-cost matrices MS
// (machine↔store) and SS (store↔store).
package cluster

import (
	"fmt"

	"lips/internal/cost"
)

// NodeID identifies a computation node within a Cluster.
type NodeID int

// StoreID identifies a data store within a Cluster.
type StoreID int

// None marks a missing node/store cross-reference.
const None = -1

// Node is one computation node (a Hadoop TaskTracker).
type Node struct {
	ID        NodeID
	Name      string
	Zone      string     // availability zone
	Type      string     // instance type name (catalog key or synthetic)
	ECU       float64    // TP(M): compute throughput in EC2 compute units
	Slots     int        // concurrent task slots
	PerECUSec cost.Money // CPU_Cost(M): dollar cost per ECU-second
	Store     StoreID    // co-located data store, or None
}

// Store is one data store (a Hadoop DataNode or remote store).
type Store struct {
	ID         StoreID
	Name       string
	Zone       string
	Node       NodeID // co-located computation node, or None (e.g. S3)
	CapacityMB float64
}

// Bandwidths is the pairwise network model. The paper modulated EC2
// networking to 500 Mbit/s within a zone and 250 Mbit/s across zones; a
// co-located store is read at local disk speed.
type Bandwidths struct {
	LocalMBps     float64 // same-node store→machine
	IntraZoneMBps float64
	InterZoneMBps float64
}

// DefaultBandwidths mirrors the paper's testbed: 500/250 Mbit/s converted
// to MB/s, with 100 MB/s local disk.
func DefaultBandwidths() Bandwidths {
	return Bandwidths{LocalMBps: 100, IntraZoneMBps: 500.0 / 8, InterZoneMBps: 250.0 / 8}
}

// Cluster is an immutable description of the substrate. Build one with a
// Builder or one of the preset constructors, then share it freely.
type Cluster struct {
	Nodes  []Node
	Stores []Store
	Zones  []string

	BW       Bandwidths
	Transfer cost.TransferPricing

	// ZonePairPerGB, when non-nil, overrides Transfer with an explicit
	// per-zone-pair price (used by the Fig. 5 random clusters, whose
	// transfer costs are drawn uniformly per pair).
	ZonePairPerGB map[[2]string]cost.Money
}

// Validate checks internal consistency of the cross-references.
func (c *Cluster) Validate() error {
	zones := make(map[string]bool, len(c.Zones))
	for _, z := range c.Zones {
		zones[z] = true
	}
	for i, n := range c.Nodes {
		if n.ID != NodeID(i) {
			return fmt.Errorf("cluster: node %d has ID %d", i, n.ID)
		}
		if !zones[n.Zone] {
			return fmt.Errorf("cluster: node %s in unknown zone %q", n.Name, n.Zone)
		}
		if n.ECU <= 0 || n.Slots <= 0 {
			return fmt.Errorf("cluster: node %s has ECU %g, slots %d", n.Name, n.ECU, n.Slots)
		}
		if n.PerECUSec < 0 {
			return fmt.Errorf("cluster: node %s has negative CPU price", n.Name)
		}
		if n.Store != None {
			if int(n.Store) >= len(c.Stores) {
				return fmt.Errorf("cluster: node %s references store %d", n.Name, n.Store)
			}
			if c.Stores[n.Store].Node != n.ID {
				return fmt.Errorf("cluster: node %s and store %d disagree on co-location", n.Name, n.Store)
			}
		}
	}
	for i, s := range c.Stores {
		if s.ID != StoreID(i) {
			return fmt.Errorf("cluster: store %d has ID %d", i, s.ID)
		}
		if !zones[s.Zone] {
			return fmt.Errorf("cluster: store %s in unknown zone %q", s.Name, s.Zone)
		}
		if s.CapacityMB <= 0 {
			return fmt.Errorf("cluster: store %s has capacity %g", s.Name, s.CapacityMB)
		}
		if s.Node != None && c.Nodes[s.Node].Store != s.ID {
			return fmt.Errorf("cluster: store %s and node %d disagree on co-location", s.Name, s.Node)
		}
	}
	return nil
}

// zonePricePerGB resolves the per-GB transfer price between two zones.
func (c *Cluster) zonePricePerGB(a, b string) cost.Money {
	if c.ZonePairPerGB != nil {
		if a > b {
			a, b = b, a
		}
		if p, ok := c.ZonePairPerGB[[2]string{a, b}]; ok {
			return p
		}
	}
	return c.Transfer.PerGB(a, b)
}

// MSPerGB is the paper's MS matrix entry: the per-GB cost of moving data
// between store s and machine n at task run time. Reading a co-located
// store is free.
func (c *Cluster) MSPerGB(n NodeID, s StoreID) cost.Money {
	if c.Nodes[n].Store == s {
		return 0
	}
	return c.zonePricePerGB(c.Nodes[n].Zone, c.Stores[s].Zone)
}

// SSPerGB is the paper's SS matrix entry: the per-GB cost of relocating
// data from store a to store b.
func (c *Cluster) SSPerGB(a, b StoreID) cost.Money {
	if a == b {
		return 0
	}
	return c.zonePricePerGB(c.Stores[a].Zone, c.Stores[b].Zone)
}

// BandwidthStoreNode returns the MB/s available for moving data from store
// s to machine n (the paper's B matrix).
func (c *Cluster) BandwidthStoreNode(s StoreID, n NodeID) float64 {
	if c.Nodes[n].Store == s {
		return c.BW.LocalMBps
	}
	if c.Stores[s].Zone == c.Nodes[n].Zone {
		return c.BW.IntraZoneMBps
	}
	return c.BW.InterZoneMBps
}

// BandwidthStoreStore returns the MB/s available between two stores.
func (c *Cluster) BandwidthStoreStore(a, b StoreID) float64 {
	if a == b {
		return c.BW.LocalMBps
	}
	if c.Stores[a].Zone == c.Stores[b].Zone {
		return c.BW.IntraZoneMBps
	}
	return c.BW.InterZoneMBps
}

// TotalECU sums the compute capacity of all nodes.
func (c *Cluster) TotalECU() float64 {
	total := 0.0
	for _, n := range c.Nodes {
		total += n.ECU
	}
	return total
}

// StoreOf returns the store co-located with n, or None.
func (c *Cluster) StoreOf(n NodeID) StoreID { return c.Nodes[n].Store }

// StoreIDs returns every store's ID in ascending order — the pool
// placement shufflers and fault planners draw from.
func (c *Cluster) StoreIDs() []StoreID {
	out := make([]StoreID, len(c.Stores))
	for i := range out {
		out[i] = StoreID(i)
	}
	return out
}
