package cluster

import (
	"sort"

	"lips/internal/cost"
)

// Group is a set of interchangeable nodes: same zone, same instance type,
// same price and capacity. The LiPS LP is built over groups rather than
// individual nodes — a lossless aggregation for clusters whose nodes fall
// into identical classes (like the paper's EC2 testbeds) that shrinks the
// LP from O(|M|) to O(|groups|) machine columns.
type Group struct {
	Zone string
	Type string

	Nodes  []NodeID
	Stores []StoreID // co-located stores of the member nodes

	ECUPerNode float64 // TP of one member
	TotalECU   float64
	SlotsEach  int
	PerECUSec  cost.Money

	// CapacityMB is the summed capacity of the member stores.
	CapacityMB float64
}

// groupKey identifies a class of interchangeable nodes.
type groupKey struct {
	zone  string
	typ   string
	ecu   float64
	price int64
}

// Groups partitions the cluster's nodes into interchangeable classes,
// sorted by (zone, type) for determinism. Nodes without a co-located store
// still join a group; their group simply contributes no storage.
func (c *Cluster) Groups() []Group {
	byKey := make(map[groupKey]*Group)
	var order []groupKey
	for _, n := range c.Nodes {
		k := groupKey{zone: n.Zone, typ: n.Type, ecu: n.ECU, price: int64(n.PerECUSec)}
		g, ok := byKey[k]
		if !ok {
			g = &Group{Zone: n.Zone, Type: n.Type, ECUPerNode: n.ECU, SlotsEach: n.Slots, PerECUSec: n.PerECUSec}
			byKey[k] = g
			order = append(order, k)
		}
		g.Nodes = append(g.Nodes, n.ID)
		g.TotalECU += n.ECU
		if n.Store != None {
			g.Stores = append(g.Stores, n.Store)
			g.CapacityMB += c.Stores[n.Store].CapacityMB
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].zone != order[j].zone {
			return order[i].zone < order[j].zone
		}
		if order[i].typ != order[j].typ {
			return order[i].typ < order[j].typ
		}
		return order[i].price < order[j].price
	})
	out := make([]Group, 0, len(order))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	return out
}
