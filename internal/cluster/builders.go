package cluster

import (
	"fmt"
	"math/rand"

	"lips/internal/cost"
)

// The paper's three us-east availability zones.
var PaperZones = []string{"us-east-1a", "us-east-1b", "us-east-1c"}

// Builder assembles a Cluster incrementally.
type Builder struct {
	c Cluster
}

// NewBuilder returns a builder with the given zones and default bandwidth
// and transfer pricing.
func NewBuilder(zones ...string) *Builder {
	return &Builder{c: Cluster{
		Zones:    append([]string(nil), zones...),
		BW:       DefaultBandwidths(),
		Transfer: cost.DefaultTransferPricing(),
	}}
}

// SetBandwidths overrides the bandwidth model.
func (b *Builder) SetBandwidths(bw Bandwidths) *Builder {
	b.c.BW = bw
	return b
}

// SetZonePairPerGB installs an explicit per-zone-pair transfer price
// (order-insensitive).
func (b *Builder) SetZonePairPerGB(a, z string, price cost.Money) *Builder {
	if b.c.ZonePairPerGB == nil {
		b.c.ZonePairPerGB = make(map[[2]string]cost.Money)
	}
	if a > z {
		a, z = z, a
	}
	b.c.ZonePairPerGB[[2]string{a, z}] = price
	return b
}

// AddNode adds a node with a co-located store of capacityMB and returns
// its ID.
func (b *Builder) AddNode(zone, typ string, ecu float64, slots int, perECUSec cost.Money, capacityMB float64) NodeID {
	nid := NodeID(len(b.c.Nodes))
	sid := StoreID(len(b.c.Stores))
	b.c.Nodes = append(b.c.Nodes, Node{
		ID: nid, Name: fmt.Sprintf("node-%d", nid), Zone: zone, Type: typ,
		ECU: ecu, Slots: slots, PerECUSec: perECUSec, Store: sid,
	})
	b.c.Stores = append(b.c.Stores, Store{
		ID: sid, Name: fmt.Sprintf("store-%d", sid), Zone: zone, Node: nid, CapacityMB: capacityMB,
	})
	return nid
}

// AddInstance adds a node of a catalog instance type using its midpoint
// ECU-second price and its instance storage as the store capacity. Slot
// count follows Hadoop 0.20's default of two map slots per TaskTracker
// regardless of core count, as the paper's testbed would have had.
func (b *Builder) AddInstance(zone string, t cost.InstanceType) NodeID {
	return b.AddNode(zone, t.Name, t.ECU, 2, t.PerECUMid(), t.StorageGB*1024)
}

// AddRemoteStore adds a store with no co-located node (e.g. S3).
func (b *Builder) AddRemoteStore(zone string, capacityMB float64) StoreID {
	sid := StoreID(len(b.c.Stores))
	b.c.Stores = append(b.c.Stores, Store{
		ID: sid, Name: fmt.Sprintf("store-%d", sid), Zone: zone, Node: None, CapacityMB: capacityMB,
	})
	return sid
}

// Build validates and returns the cluster. It panics on an invalid
// topology, since that is a programming error in the builder's caller.
func (b *Builder) Build() *Cluster {
	c := b.c
	if err := c.Validate(); err != nil {
		panic(err)
	}
	return &c
}

// Paper20 builds the paper's 20-node testbed (§VI-B "node diversity"):
// nodes spread round-robin over the three zones, a fraction fracC1 of them
// c1.medium and the rest m1.medium. fracC1 of 0, 0.25 and 0.5 correspond
// to the three settings of Fig. 6.
func Paper20(fracC1 float64) *Cluster {
	return paperMix(20, fracC1)
}

// paperMix builds n nodes with the last ceil(fracC1·n) of them c1.medium.
func paperMix(n int, fracC1 float64) *Cluster {
	if fracC1 < 0 || fracC1 > 1 {
		panic(fmt.Sprintf("cluster: fracC1 %g out of range", fracC1))
	}
	b := NewBuilder(PaperZones...)
	numC1 := int(fracC1*float64(n) + 0.5)
	for i := 0; i < n; i++ {
		zone := PaperZones[i%len(PaperZones)]
		if i >= n-numC1 {
			b.AddInstance(zone, cost.C1Medium)
		} else {
			b.AddInstance(zone, cost.M1Medium)
		}
	}
	return b.Build()
}

// Paper100 builds the paper's 100-node validation testbed: three instance
// types (m1.small, m1.medium, c1.medium) in roughly equal numbers across
// the three zones.
func Paper100() *Cluster {
	b := NewBuilder(PaperZones...)
	types := []cost.InstanceType{cost.M1Small, cost.M1Medium, cost.C1Medium}
	for i := 0; i < 100; i++ {
		zone := PaperZones[i%len(PaperZones)]
		b.AddInstance(zone, types[(i/len(PaperZones))%len(types)])
	}
	return b.Build()
}

// RandomSpec parameterises Random clusters with the ranges from the
// paper's Fig. 5 caption.
type RandomSpec struct {
	Nodes int
	// Types is the number of distinct synthetic instance types to draw;
	// nodes sharing a type are interchangeable, which keeps the LP small
	// (see cluster.Groups). Defaults to 6.
	Types int
	// Zones is the number of availability zones. Defaults to 3.
	Zones int
	// MaxCPUMillicent is the top of the per-ECU-second price range
	// (paper: 0–5 millicents). Defaults to 5.
	MaxCPUMillicent float64
	// MaxTransferMillicentPerBlock is the top of the inter-zone transfer
	// price range per 64 MB block (paper: 0–60 millicents). Defaults to 60.
	MaxTransferMillicentPerBlock float64
}

func (s RandomSpec) withDefaults() RandomSpec {
	if s.Types == 0 {
		s.Types = 6
	}
	if s.Zones == 0 {
		s.Zones = 3
	}
	if s.MaxCPUMillicent == 0 {
		s.MaxCPUMillicent = 5
	}
	if s.MaxTransferMillicentPerBlock == 0 {
		s.MaxTransferMillicentPerBlock = 60
	}
	return s
}

// Random builds a random heterogeneous cluster per the Fig. 5 simulation
// setup: node CPU prices uniform in [0, MaxCPUMillicent] mc/ECU·s and
// pairwise zone transfer prices uniform in [0, MaxTransferMillicentPerBlock]
// mc per 64 MB block.
func Random(rng *rand.Rand, spec RandomSpec) *Cluster {
	spec = spec.withDefaults()
	zones := make([]string, spec.Zones)
	for i := range zones {
		zones[i] = fmt.Sprintf("zone-%c", 'a'+i)
	}
	b := NewBuilder(zones...)
	type synthType struct {
		name  string
		ecu   float64
		price cost.Money
	}
	types := make([]synthType, spec.Types)
	for i := range types {
		types[i] = synthType{
			name:  fmt.Sprintf("t%d", i),
			ecu:   1 + float64(rng.Intn(5)), // 1–5 ECU
			price: cost.Millicents(rng.Float64() * spec.MaxCPUMillicent),
		}
	}
	for i := 0; i < spec.Nodes; i++ {
		t := types[rng.Intn(len(types))]
		zone := zones[rng.Intn(len(zones))]
		b.AddNode(zone, t.name, t.ecu, 2, t.price, 400*1024)
	}
	for i := range zones {
		for j := i + 1; j < len(zones); j++ {
			perBlock := cost.Millicents(rng.Float64() * spec.MaxTransferMillicentPerBlock)
			b.SetZonePairPerGB(zones[i], zones[j], perBlock.MulFloat(1024/cost.BlockMB))
		}
	}
	return b.Build()
}
