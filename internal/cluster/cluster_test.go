package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lips/internal/cost"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder("za", "zb")
	n0 := b.AddNode("za", "t0", 2, 2, cost.Millicents(1), 1000)
	n1 := b.AddNode("zb", "t0", 2, 2, cost.Millicents(1), 1000)
	s2 := b.AddRemoteStore("zb", 5000)
	c := b.Build()
	if len(c.Nodes) != 2 || len(c.Stores) != 3 {
		t.Fatalf("nodes=%d stores=%d", len(c.Nodes), len(c.Stores))
	}
	if c.StoreOf(n0) != StoreID(0) || c.StoreOf(n1) != StoreID(1) {
		t.Errorf("co-location broken: %d %d", c.StoreOf(n0), c.StoreOf(n1))
	}
	if c.Stores[s2].Node != None {
		t.Errorf("remote store has node %d", c.Stores[s2].Node)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadTopology(t *testing.T) {
	c := &Cluster{
		Zones: []string{"za"},
		Nodes: []Node{{ID: 0, Name: "n", Zone: "nowhere", ECU: 1, Slots: 1, Store: None}},
	}
	if err := c.Validate(); err == nil {
		t.Error("expected error for unknown zone")
	}
	c2 := &Cluster{
		Zones: []string{"za"},
		Nodes: []Node{{ID: 0, Name: "n", Zone: "za", ECU: 0, Slots: 1, Store: None}},
	}
	if err := c2.Validate(); err == nil {
		t.Error("expected error for zero ECU")
	}
	c3 := &Cluster{
		Zones:  []string{"za"},
		Stores: []Store{{ID: 0, Name: "s", Zone: "za", Node: None, CapacityMB: 0}},
	}
	if err := c3.Validate(); err == nil {
		t.Error("expected error for zero capacity")
	}
}

func TestTransferCostMatrices(t *testing.T) {
	c := Paper20(0)
	// Node 0 and store 0 are co-located: free and fast.
	if c.MSPerGB(0, 0) != 0 {
		t.Error("co-located MS cost must be 0")
	}
	if c.BandwidthStoreNode(0, 0) != c.BW.LocalMBps {
		t.Error("co-located bandwidth must be local")
	}
	// Node 0 (zone a) and store 1 (zone b): paid and slower.
	if c.MSPerGB(0, 1) != cost.InterZonePerGB {
		t.Errorf("cross-zone MS = %v", c.MSPerGB(0, 1))
	}
	if c.BandwidthStoreNode(1, 0) != c.BW.InterZoneMBps {
		t.Error("cross-zone bandwidth wrong")
	}
	// Node 0 (zone a) and store 3 (zone a, different node): free but
	// network-limited.
	if c.MSPerGB(0, 3) != 0 {
		t.Errorf("intra-zone MS = %v, want 0", c.MSPerGB(0, 3))
	}
	if c.BandwidthStoreNode(3, 0) != c.BW.IntraZoneMBps {
		t.Error("intra-zone bandwidth wrong")
	}
	// SS symmetry and diagonal.
	if c.SSPerGB(2, 2) != 0 {
		t.Error("SS diagonal must be 0")
	}
	if c.SSPerGB(0, 1) != c.SSPerGB(1, 0) {
		t.Error("SS must be symmetric for zone-based pricing")
	}
}

func TestPaper20Composition(t *testing.T) {
	for _, tc := range []struct {
		frac   float64
		wantC1 int
	}{{0, 0}, {0.25, 5}, {0.5, 10}} {
		c := Paper20(tc.frac)
		if len(c.Nodes) != 20 {
			t.Fatalf("Paper20(%g): %d nodes", tc.frac, len(c.Nodes))
		}
		numC1 := 0
		zones := map[string]int{}
		for _, n := range c.Nodes {
			if n.Type == "c1.medium" {
				numC1++
			}
			zones[n.Zone]++
		}
		if numC1 != tc.wantC1 {
			t.Errorf("Paper20(%g): %d c1.medium nodes, want %d", tc.frac, numC1, tc.wantC1)
		}
		if len(zones) != 3 {
			t.Errorf("Paper20(%g): %d zones", tc.frac, len(zones))
		}
	}
}

func TestPaper100Composition(t *testing.T) {
	c := Paper100()
	if len(c.Nodes) != 100 {
		t.Fatalf("%d nodes", len(c.Nodes))
	}
	types := map[string]int{}
	zones := map[string]int{}
	for _, n := range c.Nodes {
		types[n.Type]++
		zones[n.Zone]++
	}
	if len(types) != 3 {
		t.Errorf("types = %v, want 3 kinds", types)
	}
	if len(zones) != 3 {
		t.Errorf("zones = %v, want 3", zones)
	}
	for ty, n := range types {
		if n < 20 || n > 46 {
			t.Errorf("type %s count %d is too skewed", ty, n)
		}
	}
}

func TestGroupsLossless(t *testing.T) {
	c := Paper100()
	groups := c.Groups()
	// 3 zones × 3 types = 9 groups.
	if len(groups) != 9 {
		t.Fatalf("%d groups, want 9", len(groups))
	}
	nodeCount, ecu := 0, 0.0
	seen := map[NodeID]bool{}
	for _, g := range groups {
		nodeCount += len(g.Nodes)
		ecu += g.TotalECU
		for _, n := range g.Nodes {
			if seen[n] {
				t.Fatalf("node %d in two groups", n)
			}
			seen[n] = true
			if c.Nodes[n].Zone != g.Zone || c.Nodes[n].Type != g.Type {
				t.Fatalf("node %d misplaced in group %s/%s", n, g.Zone, g.Type)
			}
		}
		if len(g.Stores) != len(g.Nodes) {
			t.Errorf("group %s/%s: %d stores for %d nodes", g.Zone, g.Type, len(g.Stores), len(g.Nodes))
		}
	}
	if nodeCount != 100 {
		t.Errorf("groups cover %d nodes", nodeCount)
	}
	if ecu != c.TotalECU() {
		t.Errorf("group ECU %g != cluster ECU %g", ecu, c.TotalECU())
	}
}

func TestGroupsDeterministic(t *testing.T) {
	a := Paper100().Groups()
	b := Paper100().Groups()
	for i := range a {
		if a[i].Zone != b[i].Zone || a[i].Type != b[i].Type {
			t.Fatalf("group order differs at %d", i)
		}
	}
}

func TestRandomClusterValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := Random(rng, RandomSpec{Nodes: 40})
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes) != 40 {
		t.Fatalf("%d nodes", len(c.Nodes))
	}
	if len(c.Groups()) > 18 {
		t.Errorf("%d groups, want at most types×zones = 18", len(c.Groups()))
	}
}

func TestQuickRandomClusterInvariants(t *testing.T) {
	check := func(seed int64, nNodes uint8) bool {
		n := 2 + int(nNodes)%60
		rng := rand.New(rand.NewSource(seed))
		c := Random(rng, RandomSpec{Nodes: n})
		if err := c.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Transfer prices in range: at most 60 mc per block.
		maxPerGB := cost.Millicents(60).MulFloat(1024 / cost.BlockMB)
		for i := range c.Stores {
			for j := range c.Stores {
				got := c.SSPerGB(StoreID(i), StoreID(j))
				if got < 0 || got > maxPerGB {
					t.Logf("seed %d: SS[%d][%d] = %v", seed, i, j, got)
					return false
				}
			}
		}
		for _, nd := range c.Nodes {
			if nd.PerECUSec > cost.Millicents(5) {
				t.Logf("seed %d: price %v out of range", seed, nd.PerECUSec)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestZonePairOverride(t *testing.T) {
	b := NewBuilder("za", "zb")
	b.AddNode("za", "t", 1, 1, 0, 100)
	b.AddNode("zb", "t", 1, 1, 0, 100)
	b.SetZonePairPerGB("zb", "za", cost.Dollars(1)) // reversed order on purpose
	c := b.Build()
	if got := c.SSPerGB(0, 1); got != cost.Dollars(1) {
		t.Errorf("override not applied: %v", got)
	}
	if got := c.SSPerGB(1, 0); got != cost.Dollars(1) {
		t.Errorf("override not symmetric: %v", got)
	}
}
