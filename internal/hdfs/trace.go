package hdfs

import "lips/internal/trace"

// EmitMoves records a batch of planned block relocations (e.g. the
// balancer's output) as trace move events at simulated time t. The
// tracer's disabled path is respected, and a nil tracer is a no-op.
func EmitMoves(tr trace.Tracer, t float64, p *Placement, moves []BalanceMove, reason string) {
	if tr == nil || !tr.Enabled() {
		return
	}
	for _, m := range moves {
		tr.Emit(trace.Event{T: t, Kind: trace.KindMove, Move: &trace.MoveInfo{
			Object: int(m.Object), Block: m.Block,
			Src: int(m.From), Dst: int(m.To),
			MB: p.Object(m.Object).BlockSizeMB(m.Block), Reason: reason,
		}})
	}
}
