package hdfs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lips/internal/cluster"
)

func twoObjects() []DataObject {
	return []DataObject{
		{ID: 0, Name: "logs", SizeMB: 200, Origin: 0}, // 4 blocks (3×64 + 8)
		{ID: 1, Name: "web", SizeMB: 64, Origin: 1},   // 1 block
	}
}

func TestNumBlocksAndSizes(t *testing.T) {
	d := DataObject{Name: "x", SizeMB: 200}
	if d.NumBlocks() != 4 {
		t.Fatalf("NumBlocks = %d", d.NumBlocks())
	}
	total := 0.0
	for b := 0; b < d.NumBlocks(); b++ {
		total += d.BlockSizeMB(b)
	}
	if math.Abs(total-200) > 1e-9 {
		t.Errorf("blocks sum to %g", total)
	}
	if d.BlockSizeMB(3) != 200-3*64 {
		t.Errorf("last block = %g", d.BlockSizeMB(3))
	}
	if (DataObject{SizeMB: 0}).NumBlocks() != 0 {
		t.Error("empty object should have 0 blocks")
	}
	if (DataObject{SizeMB: 64}).NumBlocks() != 1 {
		t.Error("64MB object should have 1 block")
	}
}

func TestBlockSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	DataObject{Name: "x", SizeMB: 64}.BlockSizeMB(1)
}

func TestNewPlacementOnOrigin(t *testing.T) {
	p := NewPlacement(twoObjects())
	for b := 0; b < 4; b++ {
		if p.Primary(0, b) != 0 {
			t.Errorf("block %d not on origin", b)
		}
	}
	if p.Primary(1, 0) != 1 {
		t.Error("object 1 not on origin")
	}
	fr := p.Fractions(0)
	if math.Abs(fr[0]-1) > 1e-9 || len(fr) != 1 {
		t.Errorf("Fractions = %v", fr)
	}
}

func TestSetPrimaryAndFractions(t *testing.T) {
	p := NewPlacement(twoObjects())
	p.SetPrimary(0, 0, 2)
	p.SetPrimary(0, 1, 2)
	fr := p.Fractions(0)
	if math.Abs(fr[2]-0.5) > 1e-9 || math.Abs(fr[0]-0.5) > 1e-9 {
		t.Errorf("Fractions = %v", fr)
	}
	if got := p.BlocksOn(0, 2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("BlocksOn = %v", got)
	}
	used := p.UsedMB()
	if math.Abs(used[2]-128) > 1e-9 {
		t.Errorf("UsedMB[2] = %g", used[2])
	}
	// 200-128 on store 0 plus object 1's 64 on store 1.
	if math.Abs(used[0]-72) > 1e-9 || math.Abs(used[1]-64) > 1e-9 {
		t.Errorf("UsedMB = %v", used)
	}
}

func TestReplicas(t *testing.T) {
	p := NewPlacement(twoObjects())
	p.AddReplica(0, 0, 5)
	p.AddReplica(0, 0, 5) // duplicate ignored
	if got := p.Replicas(0, 0); len(got) != 2 || got[1] != 5 {
		t.Errorf("Replicas = %v", got)
	}
	if !p.HasReplicaOn(0, 0, 5) || p.HasReplicaOn(0, 1, 5) {
		t.Error("HasReplicaOn wrong")
	}
	if p.Primary(0, 0) != 0 {
		t.Error("primary must stay first")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := NewPlacement(twoObjects())
	q := p.Clone()
	q.SetPrimary(0, 0, 9)
	if p.Primary(0, 0) == 9 {
		t.Error("Clone shares block storage")
	}
}

func TestShuffleCoversStores(t *testing.T) {
	objs := []DataObject{{ID: 0, Name: "big", SizeMB: 64 * 500, Origin: 0}}
	p := NewPlacement(objs)
	stores := []cluster.StoreID{0, 1, 2, 3}
	p.Shuffle(rand.New(rand.NewSource(1)), stores)
	fr := p.Fractions(0)
	if len(fr) != 4 {
		t.Fatalf("shuffle used %d stores", len(fr))
	}
	for s, f := range fr {
		if f < 0.15 || f > 0.35 {
			t.Errorf("store %d got fraction %g, expected near 0.25", s, f)
		}
	}
}

func TestQuickFractionsSumToOne(t *testing.T) {
	check := func(seed int64, sz uint16) bool {
		size := 1 + float64(sz%5000)
		objs := []DataObject{{ID: 0, Name: "o", SizeMB: size, Origin: 0}}
		p := NewPlacement(objs)
		rng := rand.New(rand.NewSource(seed))
		p.Shuffle(rng, []cluster.StoreID{0, 1, 2, 3, 4})
		sum := 0.0
		for _, f := range p.Fractions(0) {
			sum += f
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestChooseReplicaTargets(t *testing.T) {
	c := cluster.Paper20(0)
	rng := rand.New(rand.NewSource(3))
	got := ChooseReplicaTargets(c, 0, 3, rng)
	if len(got) != 3 {
		t.Fatalf("targets = %v", got)
	}
	if got[0] != 0 {
		t.Error("first replica must be the primary")
	}
	z0 := c.Stores[got[0]].Zone
	z1 := c.Stores[got[1]].Zone
	z2 := c.Stores[got[2]].Zone
	if z1 == z0 {
		t.Error("second replica must be off-zone")
	}
	if z2 != z1 {
		t.Error("third replica must share the second's zone")
	}
	seen := map[cluster.StoreID]bool{}
	for _, s := range got {
		if seen[s] {
			t.Error("duplicate replica target")
		}
		seen[s] = true
	}
}

func TestChooseReplicaTargetsSingleZone(t *testing.T) {
	b := cluster.NewBuilder("za")
	for i := 0; i < 4; i++ {
		b.AddNode("za", "t", 1, 1, 0, 1000)
	}
	c := b.Build()
	rng := rand.New(rand.NewSource(1))
	got := ChooseReplicaTargets(c, 0, 3, rng)
	if len(got) < 2 {
		t.Fatalf("single-zone fallback failed: %v", got)
	}
}

func TestReplicateAll(t *testing.T) {
	c := cluster.Paper20(0)
	p := NewPlacement(twoObjects())
	p.Replicate(c, 2, rand.New(rand.NewSource(5)))
	for i := 0; i < 4; i++ {
		if len(p.Replicas(0, i)) != 2 {
			t.Errorf("block %d has %d replicas", i, len(p.Replicas(0, i)))
		}
	}
}
