package hdfs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lips/internal/cluster"
)

func balancerCluster() *cluster.Cluster {
	b := cluster.NewBuilder("za", "zb")
	for i := 0; i < 3; i++ {
		b.AddNode("za", "t", 1, 1, 0, 100*64) // 100-block stores
	}
	for i := 0; i < 3; i++ {
		b.AddNode("zb", "t", 1, 1, 0, 100*64)
	}
	return b.Build()
}

func skewedPlacement(blocks int) *Placement {
	objs := []DataObject{{ID: 0, Name: "hot", SizeMB: float64(blocks) * 64, Origin: 0}}
	return NewPlacement(objs) // everything on store 0
}

func maxUtilSpread(c *cluster.Cluster, p *Placement) float64 {
	used := p.UsedMB()
	min, max := 2.0, -1.0
	for i := range c.Stores {
		u := used[cluster.StoreID(i)] / c.Stores[i].CapacityMB
		if u < min {
			min = u
		}
		if u > max {
			max = u
		}
	}
	return max - min
}

func TestBalanceSpreadsHotStore(t *testing.T) {
	c := balancerCluster()
	p := skewedPlacement(90) // store 0 at 90%, others 0%
	moves := Balance(c, p, 0.1)
	if len(moves) == 0 {
		t.Fatal("no moves planned")
	}
	if spread := maxUtilSpread(c, p); spread > 0.25 {
		t.Errorf("post-balance utilization spread %.2f", spread)
	}
	// Every move starts at the hot store and lands somewhere else.
	for _, m := range moves {
		if m.From != 0 || m.To == 0 {
			t.Errorf("unexpected move %+v", m)
		}
	}
	// The placement agrees with the move list.
	for _, m := range moves {
		if p.Primary(m.Object, m.Block) != m.To {
			t.Errorf("move %+v not applied", m)
		}
	}
}

func TestBalancePrefersIntraZone(t *testing.T) {
	// With enough capacity in the hot store's own zone, all moves should
	// stay intra-zone (free on EC2).
	c := balancerCluster()
	p := skewedPlacement(30) // 30% on store 0; za peers are empty
	moves := Balance(c, p, 0.05)
	if len(moves) == 0 {
		t.Fatal("no moves")
	}
	for _, m := range moves {
		if c.Stores[m.To].Zone != "za" {
			t.Errorf("move %+v left the zone unnecessarily", m)
		}
	}
}

func TestBalanceNoOpWhenBalanced(t *testing.T) {
	c := balancerCluster()
	objs := []DataObject{
		{ID: 0, Name: "a", SizeMB: 10 * 64, Origin: 0},
		{ID: 1, Name: "b", SizeMB: 10 * 64, Origin: 1},
		{ID: 2, Name: "c", SizeMB: 10 * 64, Origin: 2},
		{ID: 3, Name: "d", SizeMB: 10 * 64, Origin: 3},
		{ID: 4, Name: "e", SizeMB: 10 * 64, Origin: 4},
		{ID: 5, Name: "f", SizeMB: 10 * 64, Origin: 5},
	}
	p := NewPlacement(objs)
	if moves := Balance(c, p, 0.1); len(moves) != 0 {
		t.Errorf("balanced cluster produced %d moves", len(moves))
	}
}

func TestQuickBalanceConverges(t *testing.T) {
	check := func(seed int64, blocks uint8) bool {
		n := 10 + int(blocks)%200
		c := balancerCluster()
		objs := []DataObject{{ID: 0, Name: "o", SizeMB: float64(n) * 64, Origin: 0}}
		p := NewPlacement(objs)
		rng := rand.New(rand.NewSource(seed))
		// Random skew: shuffle over a random subset of stores.
		subset := []cluster.StoreID{0}
		for i := 1; i < 6; i++ {
			if rng.Intn(2) == 0 {
				subset = append(subset, cluster.StoreID(i))
			}
		}
		p.Shuffle(rng, subset)
		before := maxUtilSpread(c, p)
		Balance(c, p, 0.1)
		after := maxUtilSpread(c, p)
		if after > before+1e-9 {
			t.Logf("seed %d: spread worsened %.3f → %.3f", seed, before, after)
			return false
		}
		// The balancer's contract: every store ends within the band
		// above the mean (± one 64 MB block of granularity).
		used := p.UsedMB()
		mean := 0.0
		for i := range c.Stores {
			mean += used[cluster.StoreID(i)] / c.Stores[i].CapacityMB
		}
		mean /= float64(len(c.Stores))
		for i := range c.Stores {
			u := used[cluster.StoreID(i)] / c.Stores[i].CapacityMB
			if u > mean+0.1+64/c.Stores[i].CapacityMB+1e-9 {
				t.Logf("seed %d: store %d at %.3f, mean %.3f", seed, i, u, mean)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
