// Package hdfs models the Hadoop data layer LiPS co-schedules: data
// objects split into 64 MB blocks, block→store placements with optional
// replication, a Hadoop-style replication target chooser, and the random
// shuffling placement used as the Fig. 5 baseline.
package hdfs

import (
	"fmt"
	"math"
	"math/rand"

	"lips/internal/cluster"
	"lips/internal/cost"
)

// ObjectID identifies a data object within a Placement.
type ObjectID int

// DataObject is one logical input (the paper's D_i): a named file-like
// object of SizeMB megabytes split into 64 MB blocks.
type DataObject struct {
	ID     ObjectID
	Name   string
	SizeMB float64
	// Origin is O_i, the store the object initially lives on.
	Origin cluster.StoreID
}

// NumBlocks returns the number of 64 MB blocks (the last may be partial).
func (d DataObject) NumBlocks() int {
	if d.SizeMB <= 0 {
		return 0
	}
	return int(math.Ceil(d.SizeMB / cost.BlockMB))
}

// BlockSizeMB returns the size of block b (the final block may be short).
func (d DataObject) BlockSizeMB(b int) float64 {
	n := d.NumBlocks()
	if b < 0 || b >= n {
		panic(fmt.Sprintf("hdfs: block %d out of range for %q (%d blocks)", b, d.Name, n))
	}
	if b == n-1 {
		rem := d.SizeMB - float64(n-1)*cost.BlockMB
		return rem
	}
	return cost.BlockMB
}

// Placement tracks, for every object, the store(s) holding each block.
// Index 0 of a block's replica list is the primary copy.
type Placement struct {
	objects []DataObject
	blocks  [][][]cluster.StoreID // [object][block][replica]
}

// NewPlacement creates a placement with every block of every object on its
// object's origin store (replication factor 1).
func NewPlacement(objects []DataObject) *Placement {
	p := &Placement{objects: append([]DataObject(nil), objects...)}
	p.blocks = make([][][]cluster.StoreID, len(objects))
	for i, d := range objects {
		if d.ID != ObjectID(i) {
			panic(fmt.Sprintf("hdfs: object %d has ID %d", i, d.ID))
		}
		p.blocks[i] = make([][]cluster.StoreID, d.NumBlocks())
		for b := range p.blocks[i] {
			p.blocks[i][b] = []cluster.StoreID{d.Origin}
		}
	}
	return p
}

// Objects returns the data objects (shared slice; do not mutate).
func (p *Placement) Objects() []DataObject { return p.objects }

// AddObject appends a new object to a live placement with every block on
// the object's origin store (replication factor 1) — how a streaming
// submission's input enters an already-running cluster. The object's ID
// must be the next free slot.
func (p *Placement) AddObject(d DataObject) {
	if d.ID != ObjectID(len(p.objects)) {
		panic(fmt.Sprintf("hdfs: AddObject %q has ID %d, want %d", d.Name, d.ID, len(p.objects)))
	}
	p.objects = append(p.objects, d)
	blocks := make([][]cluster.StoreID, d.NumBlocks())
	for b := range blocks {
		blocks[b] = []cluster.StoreID{d.Origin}
	}
	p.blocks = append(p.blocks, blocks)
}

// Object returns one object by ID.
func (p *Placement) Object(id ObjectID) DataObject { return p.objects[id] }

// Replicas returns the replica stores of a block (primary first). The
// returned slice is owned by the placement; do not mutate.
func (p *Placement) Replicas(obj ObjectID, block int) []cluster.StoreID {
	return p.blocks[obj][block]
}

// Primary returns the primary store of a block.
func (p *Placement) Primary(obj ObjectID, block int) cluster.StoreID {
	return p.blocks[obj][block][0]
}

// SetPrimary moves the primary copy of a block to the given store,
// dropping other replicas.
func (p *Placement) SetPrimary(obj ObjectID, block int, s cluster.StoreID) {
	p.blocks[obj][block] = []cluster.StoreID{s}
}

// AddReplica appends a replica for a block if not already present.
func (p *Placement) AddReplica(obj ObjectID, block int, s cluster.StoreID) {
	for _, r := range p.blocks[obj][block] {
		if r == s {
			return
		}
	}
	p.blocks[obj][block] = append(p.blocks[obj][block], s)
}

// HasReplicaOn reports whether any replica of the block lives on s.
func (p *Placement) HasReplicaOn(obj ObjectID, block int, s cluster.StoreID) bool {
	for _, r := range p.blocks[obj][block] {
		if r == s {
			return true
		}
	}
	return false
}

// BlockRef identifies one block of one object.
type BlockRef struct {
	Object ObjectID
	Block  int
}

// DropStore removes store s from every block's replica list — a store
// data-loss event. When the primary copy is lost, the first surviving
// replica is promoted. It returns the blocks left under-replicated (they
// lost a copy but others survive) and the blocks left with no copy at
// all; the caller must re-materialize the latter (the simulator re-creates
// them on a fallback store), as until then those blocks have an empty
// replica list.
func (p *Placement) DropStore(s cluster.StoreID) (under, lost []BlockRef) {
	for i := range p.blocks {
		for b := range p.blocks[i] {
			reps := p.blocks[i][b]
			kept := reps[:0:0]
			for _, r := range reps {
				if r != s {
					kept = append(kept, r)
				}
			}
			if len(kept) == len(reps) {
				continue
			}
			p.blocks[i][b] = kept
			ref := BlockRef{Object: ObjectID(i), Block: b}
			if len(kept) == 0 {
				lost = append(lost, ref)
			} else {
				under = append(under, ref)
			}
		}
	}
	return under, lost
}

// Fractions returns, for one object, the fraction of its primary blocks on
// each store — the x^d_ij view the LiPS LP consumes.
func (p *Placement) Fractions(obj ObjectID) map[cluster.StoreID]float64 {
	out := make(map[cluster.StoreID]float64)
	n := len(p.blocks[obj])
	if n == 0 {
		return out
	}
	for b := range p.blocks[obj] {
		out[p.Primary(obj, b)] += 1 / float64(n)
	}
	return out
}

// BlocksOn returns the indices of the object's blocks whose primary copy
// is on s, in ascending order.
func (p *Placement) BlocksOn(obj ObjectID, s cluster.StoreID) []int {
	var out []int
	for b := range p.blocks[obj] {
		if p.Primary(obj, b) == s {
			out = append(out, b)
		}
	}
	return out
}

// UsedMB returns the number of megabytes of primary copies on each store.
func (p *Placement) UsedMB() map[cluster.StoreID]float64 {
	out := make(map[cluster.StoreID]float64)
	for i := range p.objects {
		d := p.objects[i]
		for b := range p.blocks[i] {
			out[p.Primary(ObjectID(i), b)] += d.BlockSizeMB(b)
		}
	}
	return out
}

// Clone deep-copies the placement so schedulers can mutate independently.
func (p *Placement) Clone() *Placement {
	q := &Placement{objects: p.objects}
	q.blocks = make([][][]cluster.StoreID, len(p.blocks))
	for i := range p.blocks {
		q.blocks[i] = make([][]cluster.StoreID, len(p.blocks[i]))
		for b := range p.blocks[i] {
			q.blocks[i][b] = append([]cluster.StoreID(nil), p.blocks[i][b]...)
		}
	}
	return q
}

// Shuffle redistributes every block's primary copy uniformly at random
// over the given stores — the Fig. 5 baseline placement ("shuffles the
// data blocks randomly within the cluster").
func (p *Placement) Shuffle(rng *rand.Rand, stores []cluster.StoreID) {
	if len(stores) == 0 {
		panic("hdfs: Shuffle with no stores")
	}
	for i := range p.blocks {
		for b := range p.blocks[i] {
			p.blocks[i][b] = []cluster.StoreID{stores[rng.Intn(len(stores))]}
		}
	}
}

// ChooseReplicaTargets mimics Hadoop's default ReplicationTargetChooser:
// the first replica stays on the primary store, the second goes to a store
// in a different zone ("off-rack"), the third to a different store in the
// second replica's zone. It returns up to rf distinct stores.
func ChooseReplicaTargets(c *cluster.Cluster, primary cluster.StoreID, rf int, rng *rand.Rand) []cluster.StoreID {
	targets := []cluster.StoreID{primary}
	if rf <= 1 {
		return targets
	}
	primaryZone := c.Stores[primary].Zone
	var offZone, sameZone []cluster.StoreID
	for _, s := range c.Stores {
		if s.ID == primary {
			continue
		}
		if s.Zone == primaryZone {
			sameZone = append(sameZone, s.ID)
		} else {
			offZone = append(offZone, s.ID)
		}
	}
	pick := func(pool []cluster.StoreID) (cluster.StoreID, bool) {
		for len(pool) > 0 {
			i := rng.Intn(len(pool))
			cand := pool[i]
			dup := false
			for _, t := range targets {
				if t == cand {
					dup = true
					break
				}
			}
			if !dup {
				return cand, true
			}
			pool[i] = pool[len(pool)-1]
			pool = pool[:len(pool)-1]
		}
		return 0, false
	}
	if second, ok := pick(append([]cluster.StoreID(nil), offZone...)); ok {
		targets = append(targets, second)
		if rf >= 3 {
			zone2 := c.Stores[second].Zone
			var pool []cluster.StoreID
			for _, s := range c.Stores {
				if s.Zone == zone2 && s.ID != second {
					pool = append(pool, s.ID)
				}
			}
			if third, ok := pick(pool); ok {
				targets = append(targets, third)
			}
		}
	} else if second, ok := pick(append([]cluster.StoreID(nil), sameZone...)); ok {
		// Single-zone cluster: fall back to any other store.
		targets = append(targets, second)
	}
	for len(targets) < rf {
		t, ok := pick(append(append([]cluster.StoreID(nil), sameZone...), offZone...))
		if !ok {
			break
		}
		targets = append(targets, t)
	}
	return targets
}

// Replicate applies ChooseReplicaTargets to every block of every object.
func (p *Placement) Replicate(c *cluster.Cluster, rf int, rng *rand.Rand) {
	for i := range p.blocks {
		for b := range p.blocks[i] {
			p.blocks[i][b] = ChooseReplicaTargets(c, p.Primary(ObjectID(i), b), rf, rng)
		}
	}
}
