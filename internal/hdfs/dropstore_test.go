package hdfs

import (
	"testing"
)

func TestDropStorePartitionsDamage(t *testing.T) {
	// Object 0: 4 blocks on store 0; give blocks 0 and 1 a second copy on
	// store 1. Object 1: 1 block on store 1.
	p := NewPlacement(twoObjects())
	p.AddReplica(0, 0, 1)
	p.AddReplica(0, 1, 1)

	under, lost := p.DropStore(0)
	if len(under) != 2 || len(lost) != 2 {
		t.Fatalf("under=%v lost=%v, want 2 under-replicated + 2 lost", under, lost)
	}
	for i, ref := range under {
		if ref.Object != 0 || ref.Block != i {
			t.Errorf("under[%d] = %+v, want object 0 block %d", i, ref, i)
		}
	}
	for i, ref := range lost {
		if ref.Object != 0 || ref.Block != i+2 {
			t.Errorf("lost[%d] = %+v, want object 0 block %d", i, ref, i+2)
		}
	}
	// Survivors are promoted to primary.
	if p.Primary(0, 0) != 1 || p.Primary(0, 1) != 1 {
		t.Errorf("survivors not promoted: primaries %d/%d", p.Primary(0, 0), p.Primary(0, 1))
	}
	// Fully-lost blocks hold no replicas until the caller re-materializes.
	if len(p.Replicas(0, 2)) != 0 || len(p.Replicas(0, 3)) != 0 {
		t.Error("lost blocks still list replicas")
	}
	// Blocks on other stores are untouched.
	if p.Primary(1, 0) != 1 {
		t.Error("object 1 disturbed by an unrelated store loss")
	}
	if p.HasReplicaOn(0, 0, 0) {
		t.Error("dropped store still holds a replica")
	}
}

func TestDropStoreWithoutData(t *testing.T) {
	p := NewPlacement(twoObjects())
	under, lost := p.DropStore(3) // nothing lives there
	if len(under) != 0 || len(lost) != 0 {
		t.Errorf("dropping an empty store reported damage: under=%v lost=%v", under, lost)
	}
	if p.Primary(0, 0) != 0 || p.Primary(1, 0) != 1 {
		t.Error("placement changed by an empty drop")
	}
}
