package hdfs

import (
	"sort"

	"lips/internal/cluster"
)

// BalanceMove is one block relocation planned by Balance.
type BalanceMove struct {
	Object ObjectID
	Block  int
	From   cluster.StoreID
	To     cluster.StoreID
}

// Balance plans block moves that bring every store's utilization
// (used/capacity of primary copies) within threshold of the cluster mean,
// like Hadoop's balancer utility. Moves prefer intra-zone destinations
// (free and fast on EC2). The placement is updated in place; the returned
// moves let a simulator charge and time the transfers.
//
// threshold is a utilization fraction, e.g. 0.1 keeps every store within
// ±10 percentage points of the mean.
func Balance(c *cluster.Cluster, p *Placement, threshold float64) []BalanceMove {
	if threshold <= 0 {
		threshold = 0.1
	}
	used := p.UsedMB()
	util := func(s cluster.StoreID) float64 {
		return used[s] / c.Stores[s].CapacityMB
	}
	mean := 0.0
	for i := range c.Stores {
		mean += util(cluster.StoreID(i))
	}
	mean /= float64(len(c.Stores))
	lo, hi := mean-threshold, mean+threshold

	// Stores sorted: most-over-utilized first.
	overs := make([]cluster.StoreID, 0)
	for i := range c.Stores {
		if util(cluster.StoreID(i)) > hi {
			overs = append(overs, cluster.StoreID(i))
		}
	}
	sort.Slice(overs, func(a, b int) bool { return util(overs[a]) > util(overs[b]) })

	var moves []BalanceMove
	for _, src := range overs {
		// Candidate blocks on src, largest objects first is irrelevant
		// at fixed block size; walk objects in order.
		for oi := range p.objects {
			obj := ObjectID(oi)
			if util(src) <= hi {
				break
			}
			for _, b := range p.BlocksOn(obj, src) {
				if util(src) <= hi {
					break
				}
				dst, ok := pickDestination(c, src, util, lo, hi)
				if !ok {
					return moves // nowhere under-utilized left
				}
				mb := p.Object(obj).BlockSizeMB(b)
				p.SetPrimary(obj, b, dst)
				used[src] -= mb
				used[dst] += mb
				moves = append(moves, BalanceMove{Object: obj, Block: b, From: src, To: dst})
			}
		}
	}
	return moves
}

// pickDestination selects the least-utilized store below the band's lower
// edge, preferring the source's own zone (free intra-zone transfer); if no
// store is below lo, any store below hi qualifies.
func pickDestination(c *cluster.Cluster, src cluster.StoreID, util func(cluster.StoreID) float64, lo, hi float64) (cluster.StoreID, bool) {
	best, bestUtil, bestSameZone := cluster.StoreID(0), 2.0, false
	found := false
	srcZone := c.Stores[src].Zone
	for i := range c.Stores {
		s := cluster.StoreID(i)
		if s == src {
			continue
		}
		u := util(s)
		if u >= hi {
			continue
		}
		sameZone := c.Stores[s].Zone == srcZone
		// Prefer: below lo over merely below hi, then same zone, then
		// lowest utilization.
		better := false
		switch {
		case !found:
			better = true
		case (u < lo) != (bestUtil < lo):
			better = u < lo
		case sameZone != bestSameZone:
			better = sameZone
		default:
			better = u < bestUtil
		}
		if better {
			best, bestUtil, bestSameZone, found = s, u, sameZone, true
		}
	}
	return best, found
}
