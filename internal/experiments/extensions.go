package experiments

import (
	"fmt"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/sched"
	"lips/internal/sim"
)

// AblationContentionRow compares dedicated-rate links against shared
// (processor-sharing) links for one scheduler on the Fig. 6(iii) setting.
// Contention costs time, not dollars — except through longer transfer
// stalls under occupancy-sensitive behaviours (timeouts, speculation).
type AblationContentionRow struct {
	Scheduler         string
	DedicatedMakespan float64
	SharedMakespan    float64
	DedicatedCost     cost.Money
	SharedCost        cost.Money
}

// AblationContentionResult is the link-model comparison.
type AblationContentionResult struct {
	Rows []AblationContentionRow
}

// AblationContention reruns the Fig. 6(iii) experiment under both network
// models.
func AblationContention(cfg Config) (*AblationContentionResult, error) {
	cfg = cfg.withDefaults()
	res := &AblationContentionResult{}
	type mk struct {
		label string
		make  func() sim.Scheduler
		opts  sim.Options
	}
	for _, m := range []mk{
		{"hadoop-default", func() sim.Scheduler { return sched.NewFIFO() }, sim.Options{}},
		{"delay", func() sim.Scheduler { return sched.NewDelay() }, sim.Options{}},
		{"lips", func() sim.Scheduler { return cfg.newLiPS(Fig6Epoch) }, sim.Options{TaskTimeoutSec: 1200}},
	} {
		row := AblationContentionRow{Scheduler: m.label}
		for _, shared := range []bool{false, true} {
			c := cluster.Paper20(0.5)
			w := fig6Workload(cfg, c)
			p := shuffledPlacement(cfg, c, w)
			opts := m.opts
			opts.SharedLinks = shared
			scheduler := m.make()
			label := fmt.Sprintf("contention %s shared=%v", m.label, shared)
			r, err := sim.New(c, w, p, scheduler, cfg.simOptions(opts, label)).Run()
			if err != nil {
				return nil, fmt.Errorf("contention %s shared=%v: %w", m.label, shared, err)
			}
			if l, ok := scheduler.(*sched.LiPS); ok && l.Err != nil {
				return nil, fmt.Errorf("contention lips: %w", l.Err)
			}
			if shared {
				row.SharedMakespan, row.SharedCost = r.Makespan, r.TotalCost()
			} else {
				row.DedicatedMakespan, row.DedicatedCost = r.Makespan, r.TotalCost()
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the contention ablation.
func (r *AblationContentionResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Scheduler,
			fmt.Sprintf("%.0fs / %v", row.DedicatedMakespan, row.DedicatedCost),
			fmt.Sprintf("%.0fs / %v", row.SharedMakespan, row.SharedCost),
			fmt.Sprintf("%+.1f%%", 100*(row.SharedMakespan/row.DedicatedMakespan-1)),
		})
	}
	return renderTable([]string{"scheduler", "dedicated links", "shared links", "makespan change"}, rows)
}

// SpotMarketRow is one scheduler's bill under a volatile spot market.
type SpotMarketRow struct {
	Scheduler  string
	StaticCost cost.Money // flat prices (multiplier 1)
	SpotCost   cost.Money // volatile prices
}

// SpotMarketResult compares schedulers under spot-price volatility.
type SpotMarketResult struct {
	Rows   []SpotMarketRow
	Period float64
}

// SpotSchedule returns the experiment's price schedule: c1.medium's spot
// price jumps 6× during alternating windows of the given period (think
// spot-market contention for the popular cheap type), while m1.medium
// stays flat. During a spike c1.medium (≈1.1 mc ×6 = 6.6 mc/ECU·s)
// becomes MORE expensive than m1.medium (≈5.4 mc), so the optimal
// placement inverts — exactly what a price-oblivious plan misses.
func SpotSchedule(period float64) func(string, float64) float64 {
	return func(instanceType string, t float64) float64 {
		if instanceType == "c1.medium" && int(t/period)%2 == 1 {
			return 6
		}
		return 1
	}
}

// SpotMarket runs the Fig. 6(iii) batch under flat and volatile pricing
// for the oblivious default scheduler and the epoch-repricing LiPS.
func SpotMarket(cfg Config) (*SpotMarketResult, error) {
	cfg = cfg.withDefaults()
	const period = 800.0
	schedule := SpotSchedule(period)
	res := &SpotMarketResult{Period: period}
	type mk struct {
		label string
		make  func(spot bool) (sim.Scheduler, sim.Options)
	}
	for _, m := range []mk{
		{"hadoop-default", func(spot bool) (sim.Scheduler, sim.Options) {
			opts := sim.Options{}
			if spot {
				opts.PriceMultiplier = schedule
			}
			return sched.NewFIFO(), opts
		}},
		{"lips-oblivious", func(spot bool) (sim.Scheduler, sim.Options) {
			// Plans with static prices even when billed at spot rates —
			// isolates the value of per-epoch repricing below.
			l := cfg.newLiPS(400)
			opts := sim.Options{TaskTimeoutSec: 1200}
			if spot {
				opts.PriceMultiplier = schedule
			}
			return l, opts
		}},
		{"lips-repricing", func(spot bool) (sim.Scheduler, sim.Options) {
			l := cfg.newLiPS(400) // epoch shorter than the price period
			opts := sim.Options{TaskTimeoutSec: 1200}
			if spot {
				l.PriceMultiplier = schedule
				opts.PriceMultiplier = schedule
			}
			return l, opts
		}},
	} {
		row := SpotMarketRow{Scheduler: m.label}
		for _, spot := range []bool{false, true} {
			c := cluster.Paper20(0.5)
			w := fig6Workload(cfg, c)
			// Stagger arrivals across several price windows so planning
			// decisions land both inside and outside spikes.
			for i := range w.Jobs {
				w.Jobs[i].ArrivalSec = float64(i) * period / 2
			}
			p := shuffledPlacement(cfg, c, w)
			scheduler, opts := m.make(spot)
			r, err := sim.New(c, w, p, scheduler, cfg.simOptions(opts, "spot "+m.label)).Run()
			if err != nil {
				return nil, fmt.Errorf("spot %s: %w", m.label, err)
			}
			if l, ok := scheduler.(*sched.LiPS); ok && l.Err != nil {
				return nil, fmt.Errorf("spot lips: %w", l.Err)
			}
			if spot {
				row.SpotCost = r.TotalCost()
			} else {
				row.StaticCost = r.TotalCost()
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the spot-market study.
func (r *SpotMarketResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Scheduler, row.StaticCost.String(), row.SpotCost.String(),
			fmt.Sprintf("%+.1f%%", 100*(float64(row.SpotCost)/float64(row.StaticCost)-1)),
		})
	}
	return renderTable([]string{"scheduler", "flat prices", "spot prices", "bill change"}, rows)
}
