package experiments

import (
	"fmt"
	"math/rand"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/hdfs"
	"lips/internal/metrics"
	"lips/internal/sched"
	"lips/internal/sim"
	"lips/internal/workload"
)

// Fig6Row is one (cluster setting, scheduler) cell of Fig. 6/7: the total
// dollar cost and total job execution time of running the Table IV job
// set on the 20-node testbed.
type Fig6Row struct {
	Setting   string // "(i) 0% c1.medium", ...
	FracC1    float64
	Scheduler string
	Cost      cost.Money
	Makespan  float64
	SumJobSec float64
	LocalPct  float64

	// ReductionVsDefault/Delay are filled for the LiPS rows.
	ReductionVsDefault float64
	ReductionVsDelay   float64
}

// Fig6Result covers Fig. 6 (cost reduction) and Fig. 7 (execution time).
type Fig6Result struct {
	Rows []Fig6Row
	// Solver aggregates the LiPS rows' per-epoch LP statistics across
	// the three cluster settings (warm-start accept rate, iteration
	// counts, where the solve wall-clock went).
	Solver metrics.SolverStats
}

// fig6Settings are the paper's three 20-node compositions.
var fig6Settings = []struct {
	name   string
	fracC1 float64
}{
	{"(i) 0% c1.medium", 0},
	{"(ii) 25% c1.medium", 0.25},
	{"(iii) 50% c1.medium", 0.5},
}

// Fig6Epoch is the LiPS epoch used for the Fig. 6/7 runs. The paper does
// not state Fig. 6's epoch; the whole Table IV batch arrives at once, and
// its own Fig. 8 shows longer epochs trading execution time for cost, so
// we use an epoch long enough for one LP to plan the full batch.
const Fig6Epoch = 1600

// Fig6 runs the Table IV job set (1608 map tasks, 100 GB) on the three
// 20-node cluster mixes under the default, delay and LiPS schedulers,
// with actual dollar accounting. Quick mode scales the job set down 4×.
//
// Faithful to the paper's procedure ("we gradually add a different type
// of node (c1.medium) to the cluster"), the input data is pre-loaded on
// the original m1.medium nodes' stores only — freshly added c1.medium
// nodes hold no blocks, so locality-driven baselines keep computing at
// m1.medium prices while LiPS relocates data toward the cheap cycles.
func Fig6(cfg Config) (*Fig6Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig6Result{}
	for _, setting := range fig6Settings {
		rows, solver, err := fig6Setting(cfg, setting.name, setting.fracC1)
		if err != nil {
			return nil, fmt.Errorf("fig6 %s: %w", setting.name, err)
		}
		res.Rows = append(res.Rows, rows...)
		res.Solver.Merge(solver)
	}
	return res, nil
}

// m1Stores lists the stores co-located with m1.medium nodes — the
// "original" cluster the paper loaded its data onto.
func m1Stores(c *cluster.Cluster) []cluster.StoreID {
	var out []cluster.StoreID
	for _, n := range c.Nodes {
		if n.Type == "m1.medium" && n.Store != cluster.None {
			out = append(out, n.Store)
		}
	}
	if len(out) == 0 {
		for i := range c.Stores {
			out = append(out, cluster.StoreID(i))
		}
	}
	return out
}

// fig6Workload builds the Table IV job set (scaled down in Quick mode)
// with inputs pre-loaded over the original m1.medium stores.
func fig6Workload(cfg Config, c *cluster.Cluster) *workload.Workload {
	rng := rand.New(rand.NewSource(cfg.Seed))
	stores := m1Stores(c)
	if !cfg.Quick {
		return workload.PaperJobSet(rng, stores)
	}
	// Quick: same mix at quarter scale (402 tasks, 25 GB).
	pick := func() cluster.StoreID { return stores[rng.Intn(len(stores))] }
	const gb = 1024.0
	wb := workload.NewBuilder()
	wb.AddNoInputJob("J1", "user1", 1, workload.PiTaskCPUSec, 0)
	wb.AddNoInputJob("J2", "user1", 1, workload.PiTaskCPUSec, 0)
	wb.AddInputJob("J3", "user2", workload.WordCount, 2.5*gb, pick(), 0)
	wb.AddInputJob("J4", "user2", workload.WordCount, 2.5*gb, pick(), 0)
	wb.AddInputJob("J5", "user3", workload.Grep, 5*gb, pick(), 0)
	wb.AddInputJob("J6", "user3", workload.Grep, 5*gb, pick(), 0)
	wb.AddInputJob("J7", "user3", workload.Grep, 5*gb, pick(), 0)
	wb.AddInputJob("J8", "user4", workload.Stress2, 2.5*gb, pick(), 0)
	wb.AddInputJob("J9", "user4", workload.Stress2, 2.5*gb, pick(), 0)
	return wb.Build()
}

// shuffledPlacement spreads every object's blocks uniformly over the
// stores of the original m1.medium nodes, as HDFS ingest onto the
// pre-expansion cluster would.
func shuffledPlacement(cfg Config, c *cluster.Cluster, w *workload.Workload) *hdfs.Placement {
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	p := w.Placement()
	p.Shuffle(rng, m1Stores(c))
	return p
}

// uniformPlacement spreads blocks over all stores (used by the 100-node
// SWIM runs, whose cluster was built heterogeneous from the start).
func uniformPlacement(cfg Config, c *cluster.Cluster, w *workload.Workload) *hdfs.Placement {
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	p := w.Placement()
	p.Shuffle(rng, c.StoreIDs())
	return p
}

func fig6Setting(cfg Config, name string, fracC1 float64) ([]Fig6Row, metrics.SolverStats, error) {
	type runner struct {
		label string
		make  func() sim.Scheduler
		opts  sim.Options
	}
	runners := []runner{
		{"hadoop-default", func() sim.Scheduler { return sched.NewFIFO() }, sim.Options{}},
		{"delay", func() sim.Scheduler { return sched.NewDelay() }, sim.Options{}},
		{"lips", func() sim.Scheduler { return cfg.newLiPS(Fig6Epoch) }, sim.Options{TaskTimeoutSec: 1200}},
	}
	rows := make([]Fig6Row, 0, len(runners))
	var solver metrics.SolverStats
	for _, r := range runners {
		c := cluster.Paper20(fracC1)
		w := fig6Workload(cfg, c)
		p := shuffledPlacement(cfg, c, w)
		scheduler := r.make()
		result, err := sim.New(c, w, p, scheduler, cfg.simOptions(r.opts, "fig6 "+r.label)).Run()
		if err != nil {
			return nil, solver, fmt.Errorf("%s: %w", r.label, err)
		}
		if l, ok := scheduler.(*sched.LiPS); ok {
			if l.Err != nil {
				return nil, solver, fmt.Errorf("lips: %w", l.Err)
			}
			solver.Merge(l.Solver)
		}
		rows = append(rows, Fig6Row{
			Setting: name, FracC1: fracC1, Scheduler: r.label,
			Cost: result.TotalCost(), Makespan: result.Makespan,
			SumJobSec: result.SumJobSec,
			LocalPct:  100 * result.Locality.LocalFraction(),
		})
	}
	// Fill the LiPS reduction columns.
	lips := &rows[2]
	lips.ReductionVsDefault = 1 - float64(lips.Cost)/float64(rows[0].Cost)
	lips.ReductionVsDelay = 1 - float64(lips.Cost)/float64(rows[1].Cost)
	return rows, solver, nil
}

// Render formats Fig. 6 (cost) and Fig. 7 (time) as one table.
func (r *Fig6Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		red := ""
		if row.Scheduler == "lips" {
			red = fmt.Sprintf("%s vs default, %s vs delay",
				pct(row.ReductionVsDefault), pct(row.ReductionVsDelay))
		}
		rows = append(rows, []string{
			row.Setting, row.Scheduler, row.Cost.String(),
			fmt.Sprintf("%.0fs", row.Makespan),
			fmt.Sprintf("%.1f%%", row.LocalPct),
			red,
		})
	}
	out := renderTable([]string{"setting", "scheduler", "cost", "makespan", "node-local", "lips cost reduction"}, rows)
	if r.Solver.Solves > 0 {
		out += "lips solver: " + r.Solver.String() + "\n"
	}
	return out
}
