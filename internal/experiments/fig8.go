package experiments

import (
	"fmt"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/sim"
)

// Fig8Row is one epoch length in the Fig. 8 trade-off sweep: total job
// execution time (a) and total cost (b) of LiPS on the Fig. 6(iii)
// testbed as the epoch grows.
type Fig8Row struct {
	EpochSec    float64
	Cost        cost.Money
	Makespan    float64
	SumJobSec   float64
	BlocksMoved int
	Epochs      int
}

// Fig8Result is the epoch-length sweep.
type Fig8Result struct {
	Rows []Fig8Row
}

// Fig8 sweeps the scheduling epoch on the 50% c1.medium 20-node testbed:
// longer epochs let LiPS chase cheap nodes harder (cost falls) while jobs
// queue longer (execution time rises).
func Fig8(cfg Config) (*Fig8Result, error) {
	cfg = cfg.withDefaults()
	epochs := []float64{200, 400, 600, 800, 1000, 1200, 1600}
	if cfg.Quick {
		epochs = []float64{200, 600, 1000}
	}
	res := &Fig8Result{}
	for _, e := range epochs {
		c := cluster.Paper20(0.5)
		w := fig6Workload(cfg, c)
		p := shuffledPlacement(cfg, c, w)
		l := cfg.newLiPS(e)
		opts := cfg.simOptions(sim.Options{TaskTimeoutSec: 1200}, fmt.Sprintf("fig8 e=%g", e))
		r, err := sim.New(c, w, p, l, opts).Run()
		if err != nil {
			return nil, fmt.Errorf("fig8 e=%g: %w", e, err)
		}
		if l.Err != nil {
			return nil, fmt.Errorf("fig8 e=%g: %w", e, l.Err)
		}
		res.Rows = append(res.Rows, Fig8Row{
			EpochSec: e, Cost: r.TotalCost(), Makespan: r.Makespan,
			SumJobSec: r.SumJobSec, BlocksMoved: l.BlocksMoved, Epochs: l.Epochs,
		})
	}
	return res, nil
}

// Render formats the sweep.
func (r *Fig8Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.0fs", row.EpochSec),
			row.Cost.String(),
			fmt.Sprintf("%.0fs", row.Makespan),
			fmt.Sprintf("%.0fs", row.SumJobSec),
			fmt.Sprintf("%d", row.Epochs),
		})
	}
	return renderTable([]string{"epoch", "cost", "makespan", "Σ job time", "epochs run"}, rows)
}
