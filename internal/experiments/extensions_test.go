package experiments

import "testing"

func TestAblationContention(t *testing.T) {
	r, err := AblationContention(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Contention can only slow things down (or leave them equal).
		if row.SharedMakespan < row.DedicatedMakespan-1e-6 {
			t.Errorf("%s: shared links sped things up: %.0f < %.0f",
				row.Scheduler, row.SharedMakespan, row.DedicatedMakespan)
		}
	}
	// The delay scheduler's near-total locality should insulate it: its
	// slowdown must not exceed the remote-heavy default scheduler's.
	var def, delay float64
	for _, row := range r.Rows {
		slow := row.SharedMakespan / row.DedicatedMakespan
		switch row.Scheduler {
		case "hadoop-default":
			def = slow
		case "delay":
			delay = slow
		}
	}
	if delay > def+0.01 {
		t.Errorf("delay scheduler (%.3f) suffered more contention than default (%.3f)", delay, def)
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}

func TestSpotMarket(t *testing.T) {
	r, err := SpotMarket(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	byName := map[string]SpotMarketRow{}
	for _, row := range r.Rows {
		byName[row.Scheduler] = row
		if row.SpotCost < row.StaticCost {
			t.Errorf("%s: spike lowered the bill (%v < %v)", row.Scheduler, row.SpotCost, row.StaticCost)
		}
	}
	obl, rep := byName["lips-oblivious"], byName["lips-repricing"]
	// With identical flat-price plans, repricing must not lose under
	// volatility — and should win outright.
	if obl.StaticCost != rep.StaticCost {
		t.Errorf("flat-price runs differ: %v vs %v", obl.StaticCost, rep.StaticCost)
	}
	if rep.SpotCost > obl.SpotCost {
		t.Errorf("repricing (%v) beat by oblivious (%v)", rep.SpotCost, obl.SpotCost)
	}
	if rep.SpotCost == obl.SpotCost {
		t.Error("repricing made no difference; the schedule should invert the price order")
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}

func TestBaselinesShootout(t *testing.T) {
	r, err := Baselines(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	byName := map[string]BaselineRow{}
	for _, row := range r.Rows {
		byName[row.Scheduler] = row
		if row.Cost <= 0 || row.Makespan <= 0 {
			t.Errorf("%s: degenerate row %+v", row.Scheduler, row)
		}
	}
	lips := byName["lips"]
	// LiPS must be the cheapest of the five.
	for name, row := range byName {
		if name == "lips" {
			continue
		}
		if lips.Cost > row.Cost {
			t.Errorf("lips (%v) more expensive than %s (%v)", lips.Cost, name, row.Cost)
		}
	}
	// And pays for it in makespan against the locality-driven schedulers.
	if lips.Makespan < byName["delay"].Makespan {
		t.Errorf("lips makespan %.0f beat delay %.0f", lips.Makespan, byName["delay"].Makespan)
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}
