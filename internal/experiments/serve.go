package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/hdfs"
	"lips/internal/sched"
	"lips/internal/sim"
	"lips/internal/workload"
)

// ServiceRow summarizes one scheduler's behaviour under the service
// regime: an open-loop stream of submissions into a live run (the
// lips-serve operating mode), with a fraction of jobs cancelled mid-run.
type ServiceRow struct {
	Scheduler string
	Jobs      int
	Cancelled int
	// MeanQueueWaitSec is the mean submission-to-first-plan latency in
	// simulated seconds over completed jobs — how long a job waited
	// before any scheduler epoch pinned one of its tasks (the span's
	// queue-wait + plan-wait segment).
	MeanQueueWaitSec float64
	// MeanLaunchSec is the mean submission-to-first-launch latency in
	// simulated seconds over completed jobs.
	MeanLaunchSec float64
	// DrainSec is when the last job finished.
	DrainSec float64
	Cost     cost.Money
	// Tenants is the chargeback breakdown: each tenant's exact share of
	// Cost, in the ledger's canonical (sorted) tenant order. The sum is
	// verified against Cost when the row is built.
	Tenants []TenantSpend
}

// TenantSpend is one tenant's line in a row's chargeback breakdown.
type TenantSpend struct {
	Tenant string
	Cost   cost.Money
}

// ServiceResult compares schedulers under the streaming regime.
type ServiceResult struct {
	Rows []ServiceRow
}

// Render formats the comparison as an aligned table.
func (r *ServiceResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %6s %10s %10s %12s %10s %12s\n",
		"scheduler", "jobs", "cancelled", "queue(s)", "launch(s)", "drain(s)", "cost")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %6d %10d %10.1f %12.1f %10.0f %12s\n",
			row.Scheduler, row.Jobs, row.Cancelled, row.MeanQueueWaitSec,
			row.MeanLaunchSec, row.DrainSec, row.Cost)
		if len(row.Tenants) > 0 {
			fmt.Fprintf(&b, "%-12s   chargeback:", "")
			for _, ts := range row.Tenants {
				fmt.Fprintf(&b, " %s=%s", ts.Tenant, ts.Cost)
			}
			fmt.Fprintln(&b)
		}
	}
	return b.String()
}

// Service runs the serve-mode regime in-process: jobs stream into a live
// simulation at 60 s epoch boundaries (exactly how the lips-serve daemon
// feeds its simulator), a tenth of them are cancelled one epoch after
// submission, and the run is then stepped until it drains. Everything is
// seeded, so the table is reproducible — the batch-harness counterpart of
// `make servesmoke`'s live gate.
func Service(cfg Config) (*ServiceResult, error) {
	cfg = cfg.withDefaults()
	const epoch = 60.0
	jobs, perEpoch := 40, 4
	if cfg.Quick {
		jobs, perEpoch = 12, 3
	}
	res := &ServiceResult{}
	for _, m := range []struct {
		label string
		make  func() sim.Scheduler
	}{
		{"lips", func() sim.Scheduler { return cfg.newLiPS(epoch) }},
		{"fair", func() sim.Scheduler { return sched.NewFair() }},
	} {
		c := cluster.Paper20(0.5)
		rng := rand.New(rand.NewSource(cfg.Seed))
		s := sim.New(c, &workload.Workload{}, nil, m.make(),
			cfg.simOptions(sim.Options{}, "service "+m.label))
		if err := s.Start(); err != nil {
			return nil, fmt.Errorf("service %s: %w", m.label, err)
		}
		row := ServiceRow{Scheduler: m.label, Jobs: jobs}
		var cancelQueue []int
		submitted := 0
		for e := 0; submitted < jobs; e++ {
			// Cancels land one epoch after submission, like a tenant
			// withdrawing a job it just queued.
			for _, j := range cancelQueue {
				if err := s.CancelJob(j); err != nil {
					return nil, fmt.Errorf("service %s: cancel: %w", m.label, err)
				}
				row.Cancelled++
			}
			cancelQueue = cancelQueue[:0]
			for i := 0; i < perEpoch && submitted < jobs; i++ {
				sizeMB := float64(4+rng.Intn(12)) * 64
				origin := cluster.StoreID(rng.Intn(len(c.Stores)))
				j, err := s.AddJob(workload.Job{
					Name:      fmt.Sprintf("svc-%d", submitted),
					User:      fmt.Sprintf("tenant-%d", submitted%3),
					Archetype: workload.Grep.Name, AccessFrac: 1,
					CPUSecPerMB: workload.Grep.CPUSecPerMB(),
				}, &hdfs.DataObject{Name: fmt.Sprintf("svc-%d", submitted), SizeMB: sizeMB, Origin: origin})
				if err != nil {
					return nil, fmt.Errorf("service %s: submit: %w", m.label, err)
				}
				submitted++
				if submitted%10 == 0 {
					cancelQueue = append(cancelQueue, j)
				}
			}
			if err := s.StepUntil(float64(e+1) * epoch); err != nil {
				return nil, fmt.Errorf("service %s: %w", m.label, err)
			}
		}
		for _, j := range cancelQueue {
			if err := s.CancelJob(j); err != nil {
				return nil, fmt.Errorf("service %s: cancel: %w", m.label, err)
			}
			row.Cancelled++
		}
		for i := 1; !s.Drained(); i++ {
			if err := s.StepUntil(float64(jobs/perEpoch+i) * epoch); err != nil {
				return nil, fmt.Errorf("service %s: %w", m.label, err)
			}
			if i > 100000 {
				return nil, fmt.Errorf("service %s: never drained", m.label)
			}
		}
		// Latency means come from the per-job spans, so this table and
		// the daemon's /jobs/{id}/trace agree on phase definitions; a
		// differential test pins the span fields against the raw
		// JobFirstLaunch/JobDoneAt accessors.
		var launchSum, queueSum float64
		launched, planned := 0, 0
		for j := 0; j < s.NumJobs(); j++ {
			if s.JobCancelled(j) {
				continue
			}
			sp := s.JobSpan(j)
			if sp.FirstLaunchSim >= 0 {
				launchSum += sp.FirstLaunchSim - sp.SubmittedSim
				launched++
			}
			if sp.PlannedSim >= 0 {
				queueSum += sp.PlannedSim - sp.SubmittedSim
				planned++
			}
			if sp.DoneSim > row.DrainSec {
				row.DrainSec = sp.DoneSim
			}
		}
		if launched > 0 {
			row.MeanLaunchSec = launchSum / float64(launched)
		}
		if planned > 0 {
			row.MeanQueueWaitSec = queueSum / float64(planned)
		}
		r := s.CurrentResult()
		row.Cost = r.Cost.Total()
		// Chargeback lines, with the conservation invariant enforced at
		// the harness level: tenant shares must sum to the run total.
		var tenantSum cost.Money
		for _, tn := range r.Cost.Tenants() {
			spend := r.Cost.TenantTotal(tn)
			tenantSum += spend
			if spend > 0 { // zero-dollar lines (e.g. the _system bucket) add noise
				row.Tenants = append(row.Tenants, TenantSpend{Tenant: tn, Cost: spend})
			}
		}
		if tenantSum != row.Cost {
			return nil, fmt.Errorf("service %s: tenant chargebacks sum to %s, ledger total is %s",
				m.label, tenantSum, row.Cost)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
