package experiments

import (
	"math"
	"strings"
	"testing"
)

var quickCfg = Config{Quick: true, Seed: 1}

func TestFig1ShapesAndLPAgreement(t *testing.T) {
	r, err := Fig1(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range r.Rows {
		if !row.LPAgrees {
			t.Errorf("%s at ratio %.2f: LP disagrees with the analytic break-even", row.Archetype, row.Ratio)
		}
		if math.IsInf(row.TCP, 1) {
			if !row.Move {
				t.Error("pi must always chase cheap cycles")
			}
			continue
		}
		// Below the break-even ratio moving wins; above it staying wins.
		if row.Ratio < 1 && !row.Move {
			t.Errorf("%s at ratio %.2f should move", row.Archetype, row.Ratio)
		}
		if row.Ratio > 1 && row.Move {
			t.Errorf("%s at ratio %.2f should stay", row.Archetype, row.Ratio)
		}
		if row.Ratio == 1 && math.Abs(row.SavingPct) > 1e-9 {
			t.Errorf("%s at break-even has saving %.2f%%", row.Archetype, row.SavingPct)
		}
	}
	if !strings.Contains(r.Render(), "grep") {
		t.Error("render missing archetypes")
	}
}

func TestFig5ReductionBand(t *testing.T) {
	r, err := Fig5(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 3 {
		t.Fatalf("%d points", len(r.Points))
	}
	for _, p := range r.Points {
		// The paper's band is 30–70%; allow slack for the quick sizes
		// but the optimum must never lose to the baseline.
		if p.MeanReductionPct < 5 || p.MeanReductionPct > 95 {
			t.Errorf("size J=%d M=%d: mean reduction %.1f%% out of band", p.Tasks, p.Nodes, p.MeanReductionPct)
		}
		if p.MinPct < -1e-9 {
			t.Errorf("size J=%d M=%d: LP lost to the local baseline (%.1f%%)", p.Tasks, p.Nodes, p.MinPct)
		}
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}

func TestFig6CostReductionGrowsWithHeterogeneity(t *testing.T) {
	r, err := Fig6(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 9 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	var lipsRows []Fig6Row
	for _, row := range r.Rows {
		if row.Scheduler == "lips" {
			lipsRows = append(lipsRows, row)
		}
	}
	if len(lipsRows) != 3 {
		t.Fatalf("%d lips rows", len(lipsRows))
	}
	// LiPS never costs more than the default scheduler...
	for _, lr := range lipsRows {
		if lr.ReductionVsDefault < -0.01 {
			t.Errorf("%s: lips lost to default by %.1f%%", lr.Setting, -100*lr.ReductionVsDefault)
		}
	}
	// ...and the saving grows as c1.medium nodes join (paper: 62% → 79–81%).
	if !(lipsRows[2].ReductionVsDefault > lipsRows[0].ReductionVsDefault) {
		t.Errorf("saving did not grow: %v", lipsRows)
	}
	if lipsRows[2].ReductionVsDefault < 0.35 {
		t.Errorf("saving at 50%% c1.medium only %.1f%%", 100*lipsRows[2].ReductionVsDefault)
	}
	// Fig. 7: LiPS trades makespan for cost — slower than the delay
	// scheduler on the heterogeneous settings.
	for i, setting := range []int{0, 3, 6} {
		delay := r.Rows[setting+1]
		lips := r.Rows[setting+2]
		if lips.Makespan < delay.Makespan {
			t.Errorf("setting %d: lips makespan %.0f beat delay %.0f", i, lips.Makespan, delay.Makespan)
		}
	}
}

func TestFig8EpochTradeoff(t *testing.T) {
	r, err := Fig8(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 2 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if last.Cost > first.Cost {
		t.Errorf("cost rose with epoch: %v → %v", first.Cost, last.Cost)
	}
	if last.Makespan < first.Makespan {
		t.Errorf("makespan fell with epoch: %.0f → %.0f", first.Makespan, last.Makespan)
	}
}

func TestFig9SavingsOnSWIM(t *testing.T) {
	r, err := Fig9(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	lips := r.Rows[2]
	// Paper: 68–69% reduction vs both schedulers on the 100-node
	// cluster; accept a generous band around it.
	if lips.ReductionVsDefault < 0.4 {
		t.Errorf("reduction vs default %.1f%%, want > 40%%", 100*lips.ReductionVsDefault)
	}
	if lips.ReductionVsDelay < 0.4 {
		t.Errorf("reduction vs delay %.1f%%, want > 40%%", 100*lips.ReductionVsDelay)
	}
	// Fig. 10: LiPS does not optimise execution time.
	if lips.SumJobSec < r.Rows[1].SumJobSec {
		t.Errorf("lips Σ job time %.0f beat delay %.0f", lips.SumJobSec, r.Rows[1].SumJobSec)
	}
}

func TestFig11ParallelismVsEpoch(t *testing.T) {
	r, err := Fig11(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Runs) != 2 {
		t.Fatalf("%d runs", len(r.Runs))
	}
	e400, e600 := r.Runs[0], r.Runs[1]
	if e400.EpochSec != 400 || e600.EpochSec != 600 {
		t.Fatal("wrong epochs")
	}
	// Shorter epoch ⇒ faster execution (paper Fig. 11) at equal-or-more
	// parallelism and equal-or-higher cost.
	if e400.Makespan > e600.Makespan {
		t.Errorf("400s makespan %.0f worse than 600s %.0f", e400.Makespan, e600.Makespan)
	}
	if e400.ActiveNodes < e600.ActiveNodes {
		t.Errorf("400s used fewer nodes (%d) than 600s (%d)", e400.ActiveNodes, e600.ActiveNodes)
	}
	if e400.CostDollars < e600.CostDollars-1e-9 {
		t.Errorf("400s cheaper (%g) than 600s (%g)", e400.CostDollars, e600.CostDollars)
	}
}

func TestOverheadMatchesPaperScale(t *testing.T) {
	r, err := Overhead(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		// Paper §VI-A: tens of milliseconds for thousands of tasks.
		if row.SolveMillis > 2000 {
			t.Errorf("%d jobs: solve took %.0f ms", row.Jobs, row.SolveMillis)
		}
		if row.SimplexIters <= 0 || row.Vars <= 0 {
			t.Errorf("degenerate row %+v", row)
		}
	}
}

func TestAblationFakeNode(t *testing.T) {
	r, err := AblationFakeNode(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.WithoutFakeStatus != "infeasible" {
		t.Errorf("without fake node: %s", r.WithoutFakeStatus)
	}
	if r.WithFakeStatus != "optimal" {
		t.Errorf("with fake node: %s", r.WithFakeStatus)
	}
	if math.Abs(r.DeferredFrac-0.5) > 0.01 {
		t.Errorf("deferred %.2f, want 0.5", r.DeferredFrac)
	}
	if r.DeferredTasksOfTen != 5 {
		t.Errorf("deferred tasks %d, want 5", r.DeferredTasksOfTen)
	}
}

func TestAblationRoundingGapShrinks(t *testing.T) {
	r, err := AblationRounding(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	last := r.Rows[len(r.Rows)-1]
	if math.Abs(last.GapPct) > 2 {
		t.Errorf("gap at %d tasks still %.2f%%", last.Tasks, last.GapPct)
	}
	if math.Abs(last.GapPct) > math.Abs(r.Rows[0].GapPct) {
		t.Errorf("gap did not shrink: %+v", r.Rows)
	}
}

func TestAblationBillingOccupancyCostsMore(t *testing.T) {
	r, err := AblationBilling(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.OccupancyCost < row.CPUSecCost {
			t.Errorf("%s: occupancy billing %v cheaper than CPU-seconds %v",
				row.Scheduler, row.OccupancyCost, row.CPUSecCost)
		}
	}
}

func TestAblationPricingBothOptimal(t *testing.T) {
	r, err := AblationPricing(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Iters <= 0 {
			t.Errorf("%s: %d iterations", row.Rule, row.Iters)
		}
	}
}

func TestAblationTransferConstraintBinds(t *testing.T) {
	r, err := AblationTransferConstraint(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.WithRemoteFrac > 0.05 {
		t.Errorf("with (21): %.1f%% crossed the starved link", 100*r.WithRemoteFrac)
	}
	if r.WithoutRemoteFrac < 0.9 {
		t.Errorf("without (21): only %.1f%% crossed", 100*r.WithoutRemoteFrac)
	}
}

func TestTablesRender(t *testing.T) {
	if !strings.Contains(Table1(), "wordcount") {
		t.Error("table 1 broken")
	}
	if !strings.Contains(Table3(), "c1.medium") {
		t.Error("table 3 broken")
	}
	t4 := Table4()
	if !strings.Contains(t4, "1608") || !strings.Contains(t4, "100 GB") {
		t.Error("table 4 broken")
	}
}

func TestRendersNonEmpty(t *testing.T) {
	f6, err := Fig6(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, render := range []string{f6.Render()} {
		if len(render) == 0 {
			t.Error("empty render")
		}
	}
	f8, _ := Fig8(quickCfg)
	f11, _ := Fig11(quickCfg)
	ov, _ := Overhead(quickCfg)
	for _, s := range []string{f8.Render(), f11.Render(), ov.Render()} {
		if s == "" {
			t.Error("empty render")
		}
	}
}
