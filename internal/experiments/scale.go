package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"lips/internal/cluster"
	"lips/internal/sched"
	"lips/internal/sim"
	"lips/internal/workload"
)

// ScaleRow is one rung of the cluster-size ladder: a random cluster of
// Nodes nodes running a random Tasks-task workload under the Scale
// scheduler, with the simulator's wall-clock throughput alongside the
// usual schedule quality numbers.
type ScaleRow struct {
	Nodes, Tasks int
	MakespanSec  float64
	CostDollars  float64
	Utilization  float64
	WallMillis   float64
	TasksPerSec  float64 // simulated tasks completed per wall-clock second
}

// ScaleResult is the ladder sweep.
type ScaleResult struct {
	Rows []ScaleRow
}

// Scale sweeps simulator throughput up the cluster-size ladder (the
// PR's 10k-node acceptance scenario): random clusters with 100 tasks
// per node, the batch Scale scheduler, tracing off. Generation happens
// outside the timed region; WallMillis covers sim construction plus the
// event loop, which is what "tasks per second" means everywhere else in
// the repo (scripts/bench.sh's sim_tasks_per_sec).
func Scale(cfg Config) (*ScaleResult, error) {
	cfg = cfg.withDefaults()
	sizes := []int{100, 1000, 10_000}
	if cfg.Quick {
		sizes = []int{50, 200}
	}
	res := &ScaleResult{}
	for _, nodes := range sizes {
		rng := rand.New(rand.NewSource(cfg.Seed))
		c := cluster.Random(rng, cluster.RandomSpec{Nodes: nodes})
		w := workload.Random(rng, c.StoreIDs(), workload.RandomSpec{TotalTasks: 100 * nodes})
		p := w.Placement()
		p.Shuffle(rng, c.StoreIDs())

		t0 := time.Now()
		s := sim.New(c, w, p, sched.NewScale(),
			cfg.simOptions(sim.Options{}, fmt.Sprintf("scale-%d", nodes)))
		r, err := s.Run()
		if err != nil {
			return nil, fmt.Errorf("scale %d nodes: %w", nodes, err)
		}
		wall := time.Since(t0)

		res.Rows = append(res.Rows, ScaleRow{
			Nodes: nodes, Tasks: w.TotalTasks(),
			MakespanSec: r.Makespan,
			CostDollars: r.TotalCost().ToDollars(),
			Utilization: r.Utilization,
			WallMillis:  float64(wall.Microseconds()) / 1000,
			TasksPerSec: float64(w.TotalTasks()) / wall.Seconds(),
		})
	}
	return res, nil
}

// Render formats the ladder.
func (r *ScaleResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Nodes), fmt.Sprintf("%d", row.Tasks),
			fmt.Sprintf("%.0f s", row.MakespanSec),
			fmt.Sprintf("$%.2f", row.CostDollars),
			pct(row.Utilization),
			fmt.Sprintf("%.1f ms", row.WallMillis),
			fmt.Sprintf("%.0f", row.TasksPerSec),
		})
	}
	return renderTable([]string{"nodes", "tasks", "makespan", "cost", "util", "wall", "tasks/s"}, rows)
}
