package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"lips/internal/cluster"
	"lips/internal/core"
	"lips/internal/lp"
	"lips/internal/workload"
)

// OverheadRow measures the LiPS scheduling overhead (paper §VI-A: "for
// problems involving thousands of tasks, its execution time was almost
// negligible (10s of ms)"): LP build plus solve wall-clock per problem
// size.
type OverheadRow struct {
	Jobs, Nodes  int
	Tasks        int
	Vars, Cons   int
	BuildMillis  float64
	SolveMillis  float64
	SimplexIters int
}

// OverheadResult is the size sweep.
type OverheadResult struct {
	Rows []OverheadRow
}

// Overhead builds and solves online-model LPs of growing size on the
// paper's 100-node testbed and times them with the wall clock.
func Overhead(cfg Config) (*OverheadResult, error) {
	cfg = cfg.withDefaults()
	sizes := []int{5, 10, 20, 40}
	if cfg.Quick {
		sizes = []int{5, 15}
	}
	res := &OverheadResult{}
	c := cluster.Paper100()
	stores := make([]cluster.StoreID, len(c.Stores))
	for i := range stores {
		stores[i] = cluster.StoreID(i)
	}
	for _, jobs := range sizes {
		rng := rand.New(rand.NewSource(cfg.Seed))
		w := workload.SWIM(rng, stores, workload.SWIMSpec{Jobs: jobs, DurationSec: 1})
		p := w.Placement()
		p.Shuffle(rng, stores)

		t0 := time.Now()
		in, err := core.NewInstance(c, w.Jobs, w.Objects, p, core.InstanceOptions{
			Aggregate: true, Horizon: 600,
		})
		if err != nil {
			return nil, err
		}
		m, err := core.BuildOnlineModel(in)
		if err != nil {
			return nil, err
		}
		build := time.Since(t0)

		t1 := time.Now()
		plan, err := m.Solve(lp.Options{})
		if err != nil {
			return nil, fmt.Errorf("overhead %d jobs: %w", jobs, err)
		}
		solve := time.Since(t1)

		res.Rows = append(res.Rows, OverheadRow{
			Jobs: jobs, Nodes: len(c.Nodes), Tasks: w.TotalTasks(),
			Vars: m.NumVars(), Cons: m.NumCons(),
			BuildMillis:  float64(build.Microseconds()) / 1000,
			SolveMillis:  float64(solve.Microseconds()) / 1000,
			SimplexIters: plan.Iters,
		})
	}
	return res, nil
}

// Render formats the sweep.
func (r *OverheadResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Jobs), fmt.Sprintf("%d", row.Tasks),
			fmt.Sprintf("%d", row.Nodes),
			fmt.Sprintf("%d/%d", row.Vars, row.Cons),
			fmt.Sprintf("%.2f ms", row.BuildMillis),
			fmt.Sprintf("%.2f ms", row.SolveMillis),
			fmt.Sprintf("%d", row.SimplexIters),
		})
	}
	return renderTable([]string{"jobs", "tasks", "nodes", "vars/cons", "build", "solve", "iters"}, rows)
}
