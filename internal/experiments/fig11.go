package experiments

import (
	"fmt"
	"sort"

	"lips/internal/cluster"
	"lips/internal/sim"
)

// Fig11Run is one epoch setting's per-node accumulated CPU time breakdown
// (the paper compares 400 s against 600 s: shorter epochs spread work over
// more nodes — higher parallelism, faster jobs, higher cost).
type Fig11Run struct {
	EpochSec    float64
	PerNodeSec  []float64 // accumulated ECU-seconds, by node id
	ActiveNodes int       // nodes that accumulated > 1 ECU-second
	Makespan    float64
	CostDollars float64
}

// Fig11Result holds both epoch settings.
type Fig11Result struct {
	Runs []Fig11Run
}

// Fig11 runs LiPS on the Fig. 6(iii) testbed with 400 s and 600 s epochs
// and reports the per-node accumulated CPU time.
func Fig11(cfg Config) (*Fig11Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig11Result{}
	for _, epoch := range []float64{400, 600} {
		c := cluster.Paper20(0.5)
		w := fig6Workload(cfg, c)
		p := shuffledPlacement(cfg, c, w)
		l := cfg.newLiPS(epoch)
		opts := cfg.simOptions(sim.Options{TaskTimeoutSec: 1200}, fmt.Sprintf("fig11 e=%g", epoch))
		r, err := sim.New(c, w, p, l, opts).Run()
		if err != nil {
			return nil, fmt.Errorf("fig11 e=%g: %w", epoch, err)
		}
		if l.Err != nil {
			return nil, fmt.Errorf("fig11 e=%g: %w", epoch, l.Err)
		}
		run := Fig11Run{
			EpochSec:    epoch,
			PerNodeSec:  make([]float64, len(c.Nodes)),
			ActiveNodes: r.NodeCPU.ActiveNodes(1),
			Makespan:    r.Makespan,
			CostDollars: r.TotalCost().ToDollars(),
		}
		for _, n := range r.NodeCPU.Nodes() {
			run.PerNodeSec[n] = r.NodeCPU.Of(n)
		}
		res.Runs = append(res.Runs, run)
	}
	return res, nil
}

// Render shows the top contributors per run plus the parallelism summary.
func (r *Fig11Result) Render() string {
	rows := make([][]string, 0)
	for _, run := range r.Runs {
		type nodeSec struct {
			node int
			sec  float64
		}
		byLoad := make([]nodeSec, 0, len(run.PerNodeSec))
		for n, s := range run.PerNodeSec {
			byLoad = append(byLoad, nodeSec{n, s})
		}
		sort.Slice(byLoad, func(i, j int) bool { return byLoad[i].sec > byLoad[j].sec })
		top := ""
		for i := 0; i < 5 && i < len(byLoad); i++ {
			if byLoad[i].sec <= 0 {
				break
			}
			top += fmt.Sprintf("n%d:%.0fs ", byLoad[i].node, byLoad[i].sec)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.0fs", run.EpochSec),
			fmt.Sprintf("%d/%d", run.ActiveNodes, len(run.PerNodeSec)),
			fmt.Sprintf("%.0fs", run.Makespan),
			fmt.Sprintf("$%.4f", run.CostDollars),
			top,
		})
	}
	return renderTable([]string{"epoch", "active nodes", "makespan", "cost", "top-5 nodes by CPU time"}, rows)
}
