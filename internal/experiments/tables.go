package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/workload"
)

// Table1 renders the paper's Table I: CPU intensiveness per benchmark.
func Table1() string {
	rows := make([][]string, 0, len(workload.Archetypes))
	for _, a := range workload.Archetypes {
		per := "inf"
		if !math.IsInf(a.CPUSecPerBlock, 1) {
			per = fmt.Sprintf("%.0f", a.CPUSecPerBlock)
		}
		rows = append(rows, []string{a.Name, string(a.Property), per})
	}
	return renderTable([]string{"job", "property", "ECU-sec per 64MB"}, rows)
}

// Table3 renders the paper's Table III: the EC2 instance catalog with the
// derived millicent-per-ECU-second range.
func Table3() string {
	rows := make([][]string, 0, len(cost.Catalog))
	for _, t := range cost.Catalog {
		rows = append(rows, []string{
			t.Name,
			fmt.Sprintf("%d / %.0f", t.VCPUs, t.ECU),
			fmt.Sprintf("%.2f", t.MemGB),
			fmt.Sprintf("%.0f", t.StorageGB),
			fmt.Sprintf("$%.2f-%.2f", t.PriceLow.ToDollars(), t.PriceHigh.ToDollars()),
			fmt.Sprintf("%.2f-%.2f mc", t.PerECULow.ToMillicents(), t.PerECUHigh.ToMillicents()),
		})
	}
	return renderTable([]string{"instance", "CPU/ECU", "mem GB", "storage GB", "$/hr", "per ECU-second"}, rows)
}

// Table4 renders the paper's Table IV: the J1–J9 job set.
func Table4() string {
	w := workload.PaperJobSet(rand.New(rand.NewSource(1)), []cluster.StoreID{0})
	rows := make([][]string, 0, len(w.Jobs))
	for _, j := range w.Jobs {
		input := "-"
		if j.HasInput() {
			input = fmt.Sprintf("%.0f GB", j.InputMB/1024)
		}
		rows = append(rows, []string{
			j.Name, j.Archetype, fmt.Sprintf("%d", j.NumTasks), input,
			fmt.Sprintf("%.0f ECU-sec", j.TotalCPUSec()),
		})
	}
	rows = append(rows, []string{"total", "", fmt.Sprintf("%d", w.TotalTasks()),
		fmt.Sprintf("%.0f GB", w.TotalInputMB()/1024),
		fmt.Sprintf("%.0f ECU-sec", w.TotalCPUSec())})
	return renderTable([]string{"job", "benchmark", "tasks", "input", "CPU demand"}, rows)
}
