package experiments

import (
	"fmt"
	"math/rand"

	"lips/internal/cluster"
	"lips/internal/core"
	"lips/internal/cost"
	"lips/internal/lp"
	"lips/internal/sched"
	"lips/internal/sim"
	"lips/internal/workload"
)

// AblationFakeNode demonstrates why the online model needs the fake node
// F (§V-B): with demand exceeding the epoch's capacity, the model without
// F is infeasible, while the model with F stays feasible and defers the
// overflow.
type AblationFakeNodeResult struct {
	DemandCPUSec       float64
	SupplyCPUSec       float64
	WithoutFakeStatus  string // expected: infeasible
	WithFakeStatus     string // expected: optimal
	DeferredFrac       float64
	DeferredTasksOfTen int
}

// AblationFakeNode builds an over-subscribed epoch and solves it with and
// without the overflow node.
func AblationFakeNode(cfg Config) (*AblationFakeNodeResult, error) {
	cfg = cfg.withDefaults()
	b := cluster.NewBuilder("za")
	b.AddNode("za", "only", 1, 2, cost.Millicents(1), 1e6)
	c := b.Build()
	wb := workload.NewBuilder()
	arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 64}
	wb.AddInputJob("heavy", "u", arch, 10*64, 0, 0) // 640 ECU-sec demand
	w := wb.Build()
	in, err := core.NewInstance(c, w.Jobs, w.Objects, w.Placement(), core.InstanceOptions{Horizon: 320})
	if err != nil {
		return nil, err
	}
	res := &AblationFakeNodeResult{
		DemandCPUSec: in.TotalDemandCPUSec(),
		SupplyCPUSec: in.TotalSupplyCPUSec(),
	}

	// Without F: the plain co-scheduling model over the epoch horizon.
	noFake, err := core.BuildCoScheduleModel(in)
	if err != nil {
		return nil, err
	}
	if _, err := noFake.Solve(lp.Options{}); err != nil {
		res.WithoutFakeStatus = "infeasible"
	} else {
		res.WithoutFakeStatus = "feasible (unexpected)"
	}

	// With F: the online model.
	in2, err := core.NewInstance(c, w.Jobs, w.Objects, w.Placement(), core.InstanceOptions{Horizon: 320})
	if err != nil {
		return nil, err
	}
	withFake, err := core.BuildOnlineModel(in2)
	if err != nil {
		return nil, err
	}
	plan, err := withFake.Solve(lp.Options{})
	if err != nil {
		return nil, err
	}
	res.WithFakeStatus = "optimal"
	res.DeferredFrac = plan.DeferredFrac[0]
	res.DeferredTasksOfTen = plan.Round().Deferred[0]
	return res, nil
}

// Render formats the fake-node ablation.
func (r *AblationFakeNodeResult) Render() string {
	return renderTable(
		[]string{"variant", "status", "deferred"},
		[][]string{
			{"online LP without fake node", r.WithoutFakeStatus, "-"},
			{"online LP with fake node", r.WithFakeStatus,
				fmt.Sprintf("%.0f%% of job (%d/10 tasks)", 100*r.DeferredFrac, r.DeferredTasksOfTen)},
		},
	)
}

// AblationRoundingRow compares the fractional LP optimum against the
// rounded integral plan across task granularities (§IV: the fractional
// optimum bounds the integral one; the gap shrinks as tasks get finer).
type AblationRoundingRow struct {
	Tasks        int
	FractionalMC float64
	IntegralMC   float64
	GapPct       float64
}

// AblationRoundingResult is the granularity sweep.
type AblationRoundingResult struct {
	Rows []AblationRoundingRow
}

// AblationRounding solves one co-scheduling instance and rounds it at
// several task granularities.
func AblationRounding(cfg Config) (*AblationRoundingResult, error) {
	cfg = cfg.withDefaults()
	res := &AblationRoundingResult{}
	for _, tasks := range []int{2, 4, 8, 32, 128} {
		b := cluster.NewBuilder("za", "zb")
		b.AddNode("za", "exp", 2, 2, cost.Millicents(5), 1e6)
		b.AddNode("zb", "cheap", 2, 2, cost.Millicents(1), 1e6)
		c := b.Build()
		wb := workload.NewBuilder()
		arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 64}
		wb.AddInputJob("j", "u", arch, float64(tasks)*64, 0, 0)
		w := wb.Build()
		// A horizon that forces a split between the two nodes.
		horizon := float64(tasks) * 64 / 2.5
		in, err := core.NewInstance(c, w.Jobs, w.Objects, w.Placement(), core.InstanceOptions{Horizon: horizon})
		if err != nil {
			return nil, err
		}
		m, err := core.BuildCoScheduleModel(in)
		if err != nil {
			return nil, err
		}
		plan, err := m.Solve(lp.Options{})
		if err != nil {
			return nil, fmt.Errorf("rounding ablation %d tasks: %w", tasks, err)
		}
		ip := plan.Round()
		frac, integral := plan.TotalMC(), ip.CostMC()
		res.Rows = append(res.Rows, AblationRoundingRow{
			Tasks: tasks, FractionalMC: frac, IntegralMC: integral,
			GapPct: 100 * (integral - frac) / frac,
		})
	}
	return res, nil
}

// Render formats the rounding ablation.
func (r *AblationRoundingResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Tasks),
			fmt.Sprintf("%.1f mc", row.FractionalMC),
			fmt.Sprintf("%.1f mc", row.IntegralMC),
			fmt.Sprintf("%+.2f%%", row.GapPct),
		})
	}
	return renderTable([]string{"tasks", "fractional optimum", "rounded integral", "gap"}, rows)
}

// AblationBillingRow compares CPU-seconds billing against wall-clock slot
// occupancy billing (what EC2 instance-hours actually measure) for each
// scheduler on the Fig. 6(iii) testbed.
type AblationBillingRow struct {
	Scheduler     string
	CPUSecCost    cost.Money
	OccupancyCost cost.Money
}

// AblationBillingResult is the billing-model comparison.
type AblationBillingResult struct {
	Rows []AblationBillingRow
}

// AblationBilling reruns the Fig. 6(iii) experiment under both billing
// models.
func AblationBilling(cfg Config) (*AblationBillingResult, error) {
	cfg = cfg.withDefaults()
	res := &AblationBillingResult{}
	type mk struct {
		label string
		make  func() sim.Scheduler
		opts  sim.Options
	}
	for _, m := range []mk{
		{"hadoop-default", func() sim.Scheduler { return sched.NewFIFO() }, sim.Options{}},
		{"lips", func() sim.Scheduler { return cfg.newLiPS(Fig6Epoch) }, sim.Options{TaskTimeoutSec: 1200}},
	} {
		row := AblationBillingRow{Scheduler: m.label}
		for _, occupancy := range []bool{false, true} {
			c := cluster.Paper20(0.5)
			w := fig6Workload(cfg, c)
			p := shuffledPlacement(cfg, c, w)
			opts := m.opts
			opts.BillOccupancy = occupancy
			label := fmt.Sprintf("billing %s occupancy=%v", m.label, occupancy)
			r, err := sim.New(c, w, p, m.make(), cfg.simOptions(opts, label)).Run()
			if err != nil {
				return nil, fmt.Errorf("billing %s: %w", m.label, err)
			}
			if occupancy {
				row.OccupancyCost = r.TotalCost()
			} else {
				row.CPUSecCost = r.TotalCost()
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the billing ablation.
func (r *AblationBillingResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Scheduler, row.CPUSecCost.String(), row.OccupancyCost.String(),
		})
	}
	return renderTable([]string{"scheduler", "CPU-seconds billing", "occupancy billing"}, rows)
}

// AblationPricingRow compares simplex pricing rules on one co-scheduling
// LP (Dantzig vs Bland), the design choice called out in DESIGN.md.
type AblationPricingRow struct {
	Rule  string
	Iters int
}

// AblationPricingResult is the pricing comparison.
type AblationPricingResult struct {
	Rows      []AblationPricingRow
	Objective float64
}

// AblationPricing solves one mid-size LP under both pricing rules.
func AblationPricing(cfg Config) (*AblationPricingResult, error) {
	cfg = cfg.withDefaults()
	c := cluster.Paper100()
	stores := make([]cluster.StoreID, len(c.Stores))
	for i := range stores {
		stores[i] = cluster.StoreID(i)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := workload.SWIM(rng, stores, workload.SWIMSpec{Jobs: 20, DurationSec: 1})
	res := &AblationPricingResult{}
	for _, bland := range []bool{false, true} {
		in, err := core.NewInstance(c, w.Jobs, w.Objects, w.Placement(), core.InstanceOptions{
			Aggregate: true, Horizon: 600,
		})
		if err != nil {
			return nil, err
		}
		m, err := core.BuildOnlineModel(in)
		if err != nil {
			return nil, err
		}
		plan, err := m.Solve(lp.Options{Bland: bland})
		if err != nil {
			return nil, err
		}
		rule := "dantzig"
		if bland {
			rule = "bland"
		} else {
			res.Objective = plan.TotalMC()
		}
		res.Rows = append(res.Rows, AblationPricingRow{Rule: rule, Iters: plan.Iters})
	}
	return res, nil
}

// Render formats the pricing ablation.
func (r *AblationPricingResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Rule, fmt.Sprintf("%d", row.Iters)})
	}
	return renderTable([]string{"pricing rule", "simplex iterations"}, rows)
}

// AblationTransferConstraintResult compares the online model with and
// without constraint (21) on a bandwidth-starved topology: without it the
// LP happily schedules reads that cannot finish within the epoch.
type AblationTransferConstraintResult struct {
	WithRemoteFrac    float64 // fraction scheduled on the remote node with (21)
	WithoutRemoteFrac float64 // same without (21)
}

// AblationTransferConstraint builds the bandwidth-starved two-node
// instance and solves the online model (with (21)) and the plain
// co-scheduling model with an epoch horizon (without (21)).
func AblationTransferConstraint(cfg Config) (*AblationTransferConstraintResult, error) {
	cfg = cfg.withDefaults()
	build := func() (*core.Instance, error) {
		b := cluster.NewBuilder("za", "zb")
		b.AddNode("za", "costly", 2, 2, cost.Millicents(5), 1e6)
		// The cheap node's store is too small to relocate the input to,
		// so reads must cross the free-but-slow link at run time — only
		// the transfer-time constraint (21) can stop the LP from
		// over-committing to the cheap node.
		b.AddNode("zb", "cheap", 100, 2, cost.Millicents(1), 64)
		bw := cluster.DefaultBandwidths()
		bw.InterZoneMBps = 1
		b.SetBandwidths(bw)
		b.SetZonePairPerGB("za", "zb", 0)
		c := b.Build()
		wb := workload.NewBuilder()
		arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 0.64}
		wb.AddInputJob("big", "u", arch, 10*1024, 0, 0)
		w := wb.Build()
		return core.NewInstance(c, w.Jobs, w.Objects, w.Placement(), core.InstanceOptions{Horizon: 100})
	}
	remoteFrac := func(plan *core.Plan) float64 {
		f := 0.0
		for lm, v := range plan.XT[0] {
			if lm[0] == 1 {
				f += v
			}
		}
		return f
	}
	res := &AblationTransferConstraintResult{}

	in, err := build()
	if err != nil {
		return nil, err
	}
	online, err := core.BuildOnlineModel(in)
	if err != nil {
		return nil, err
	}
	planWith, err := online.Solve(lp.Options{})
	if err != nil {
		return nil, err
	}
	res.WithRemoteFrac = remoteFrac(planWith)

	in2, err := build()
	if err != nil {
		return nil, err
	}
	in2.AddFakeNode(core.FakeNodePriceMC)
	co, err := core.BuildCoScheduleModel(in2) // no constraint (21)
	if err != nil {
		return nil, err
	}
	planWithout, err := co.Solve(lp.Options{})
	if err != nil {
		return nil, err
	}
	res.WithoutRemoteFrac = remoteFrac(planWithout)
	return res, nil
}

// Render formats the transfer-constraint ablation.
func (r *AblationTransferConstraintResult) Render() string {
	return renderTable(
		[]string{"model", "fraction sent to bandwidth-starved cheap node"},
		[][]string{
			{"online with constraint (21)", fmt.Sprintf("%.1f%%", 100*r.WithRemoteFrac)},
			{"co-schedule without (21)", fmt.Sprintf("%.1f%%", 100*r.WithoutRemoteFrac)},
		},
	)
}
