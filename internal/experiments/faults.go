package experiments

import (
	"fmt"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/sched"
	"lips/internal/sim"
)

// AblationFaultsRow compares one scheduler's calm run against the same
// run under an injected churn scenario.
type AblationFaultsRow struct {
	Scheduler string

	CalmCost      cost.Money
	ChurnCost     cost.Money
	FailureCost   cost.Money // the churn run's fault-category charges
	CalmMakespan  float64
	ChurnMakespan float64

	Reexecuted       int // attempts killed and re-run
	BlocksReplicated int
}

// AblationFaultsResult is the churn ablation: LiPS versus delay
// scheduling under the same seeded fault plan.
type AblationFaultsResult struct {
	Rows []AblationFaultsRow
	Plan string // one-line description of the injected plan
}

// AblationFaults runs the Fig. 6 workload twice per scheduler — once
// calm, once under a seeded fault plan with node crashes (each paired
// with a recovery), a store data loss and a straggler window — and
// reports what churn costs each scheduler. The plan is deterministic in
// Config.FaultSeed, so rows reproduce bit-identically.
func AblationFaults(cfg Config) (*AblationFaultsResult, error) {
	cfg = cfg.withDefaults()
	c := cluster.Paper20(0.5)
	spec := sim.FaultSpec{
		Crashes:     cfg.FaultCrashes,
		StoreLosses: 1,
		Slowdowns:   1,
		// Inject early — well inside both schedulers' busy phase — so the
		// faults hit work in flight rather than an idle tail.
		WindowSec:   Fig6Epoch / 4,
		DowntimeSec: Fig6Epoch / 4,
	}
	plan := sim.RandomFaultPlan(cfg.FaultSeed, c, spec)

	res := &AblationFaultsResult{
		Plan: fmt.Sprintf("%d crashes (+%.0fs recovery), %d store loss, %d slowdown in [0,%.0fs), seed %d",
			spec.Crashes, spec.DowntimeSec, spec.StoreLosses, spec.Slowdowns, spec.WindowSec, cfg.FaultSeed),
	}
	type mk struct {
		label string
		make  func() sim.Scheduler
		opts  sim.Options
	}
	for _, m := range []mk{
		{"delay", func() sim.Scheduler { return sched.NewDelay() }, sim.Options{}},
		{"lips", func() sim.Scheduler { return cfg.newLiPS(Fig6Epoch) }, sim.Options{TaskTimeoutSec: 1200}},
	} {
		row := AblationFaultsRow{Scheduler: m.label}
		for _, churn := range []bool{false, true} {
			w := fig6Workload(cfg, c)
			p := shuffledPlacement(cfg, c, w)
			opts := m.opts
			if churn {
				opts.Faults = plan
			}
			label := fmt.Sprintf("faults %s churn=%v", m.label, churn)
			r, err := sim.New(c, w, p, m.make(), cfg.simOptions(opts, label)).Run()
			if err != nil {
				return nil, fmt.Errorf("faults %s (churn=%v): %w", m.label, churn, err)
			}
			if churn {
				row.ChurnCost = r.TotalCost()
				row.ChurnMakespan = r.Makespan
				row.FailureCost = r.Cost.Category(cost.CatFault)
				row.Reexecuted = r.Faults.TasksReexecuted
				row.BlocksReplicated = r.Faults.BlocksReplicated
			} else {
				row.CalmCost = r.TotalCost()
				row.CalmMakespan = r.Makespan
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the churn ablation.
func (r *AblationFaultsResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Scheduler,
			row.CalmCost.String(), row.ChurnCost.String(), row.FailureCost.String(),
			fmt.Sprintf("%.0f", row.CalmMakespan), fmt.Sprintf("%.0f", row.ChurnMakespan),
			fmt.Sprintf("%d", row.Reexecuted), fmt.Sprintf("%d", row.BlocksReplicated),
		})
	}
	return fmt.Sprintf("fault plan: %s\n", r.Plan) + renderTable(
		[]string{"scheduler", "calm cost", "churn cost", "failure cost", "calm makespan", "churn makespan", "re-executed", "re-replicated"},
		rows)
}
