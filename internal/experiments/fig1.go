package experiments

import (
	"fmt"
	"math"

	"lips/internal/cluster"
	"lips/internal/core"
	"lips/internal/cost"
	"lips/internal/lp"
	"lips/internal/workload"
)

// Fig1Row is one point of the Fig. 1 break-even analysis: a job of CPU
// intensity c (ECU-seconds/MB) with data on a node charging a per
// ECU-second may either run in place or move its data at d per MB to a
// node charging b. Moving wins iff c·a > c·b + d; the figure plots the
// saving against the cost ratio d / (c·(a−b)).
type Fig1Row struct {
	Archetype string
	TCP       float64 // c: ECU-seconds per MB (+Inf for Pi)
	Ratio     float64 // d / (c·(a−b)); 0 for Pi (no data to move)
	SavingPct float64 // analytic saving from moving, % of staying cost
	Move      bool    // analytic decision
	LPAgrees  bool    // the co-scheduling LP reached the same decision
}

// Fig1Result is the full break-even sweep.
type Fig1Result struct {
	Rows []Fig1Row
	// PriceA and PriceB are the source/destination ECU-second prices
	// (m1.medium and c1.medium midpoints).
	PriceA, PriceB float64
}

// Fig1 sweeps the transfer-price-to-CPU-saving ratio for every Table I
// archetype and cross-checks each analytic decision against the
// co-scheduling LP on a two-node instance.
func Fig1(cfg Config) (*Fig1Result, error) {
	cfg = cfg.withDefaults()
	a := cost.M1Medium.PerECUMid().ToMillicents()
	b := cost.C1Medium.PerECUMid().ToMillicents()
	res := &Fig1Result{PriceA: a, PriceB: b}

	ratios := []float64{0.25, 0.5, 0.75, 1, 1.5, 2, 4}
	for _, arch := range workload.Archetypes {
		if !arch.HasInput() {
			// Pi moves no data: always run on the cheaper node.
			res.Rows = append(res.Rows, Fig1Row{
				Archetype: arch.Name, TCP: math.Inf(1), Ratio: 0,
				SavingPct: 100 * (a - b) / a, Move: true, LPAgrees: true,
			})
			continue
		}
		c := arch.CPUSecPerMB()
		for _, ratio := range ratios {
			d := ratio * c * (a - b) // millicents per MB
			stay := c * a
			move := c*b + d
			saving := (stay - move) / stay
			wantMove := move < stay-1e-12
			agrees, err := fig1LPDecision(c, d, a, b, wantMove)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Fig1Row{
				Archetype: arch.Name, TCP: c, Ratio: ratio,
				SavingPct: 100 * saving, Move: wantMove, LPAgrees: agrees,
			})
		}
	}
	return res, nil
}

// fig1LPDecision solves the two-node co-scheduling LP and reports whether
// it reaches the same move/stay decision as the analytic rule.
func fig1LPDecision(tcp, dPerMB, priceA, priceB float64, wantMove bool) (bool, error) {
	cb := cluster.NewBuilder("za", "zb")
	cb.AddNode("za", "src", 1, 2, cost.Millicents(priceA), 1e6)
	cb.AddNode("zb", "dst", 1, 2, cost.Millicents(priceB), 1e6)
	cb.SetZonePairPerGB("za", "zb", cost.Millicents(dPerMB*1024))
	c := cb.Build()
	wb := workload.NewBuilder()
	arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: tcp * 64}
	wb.AddInputJob("j", "u", arch, 64, 0, 0)
	w := wb.Build()
	in, err := core.NewInstance(c, w.Jobs, w.Objects, w.Placement(), core.InstanceOptions{Horizon: 1e7})
	if err != nil {
		return false, err
	}
	m, err := core.BuildCoScheduleModel(in)
	if err != nil {
		return false, err
	}
	plan, err := m.Solve(lp.Options{})
	if err != nil {
		return false, err
	}
	// The job "moved" if any of its mass runs on machine 1 (dst).
	movedFrac := 0.0
	for lm, f := range plan.XT[0] {
		if lm[0] == 1 {
			movedFrac += f
		}
	}
	lpMoved := movedFrac > 0.5
	if wantMove == lpMoved {
		return true, nil
	}
	// At the exact break-even either answer is optimal; accept if the
	// costs tie.
	stay := tcp * 64 * priceA
	move := tcp*64*priceB + dPerMB*64
	return math.Abs(stay-move) < 1e-6*stay, nil
}

// Render formats the sweep as a table.
func (r *Fig1Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		tcp := "inf"
		if !math.IsInf(row.TCP, 1) {
			tcp = fmt.Sprintf("%.3f", row.TCP)
		}
		decision := "stay"
		if row.Move {
			decision = "move"
		}
		agree := "yes"
		if !row.LPAgrees {
			agree = "NO"
		}
		rows = append(rows, []string{
			row.Archetype, tcp, fmt.Sprintf("%.2f", row.Ratio),
			fmt.Sprintf("%.1f%%", row.SavingPct), decision, agree,
		})
	}
	return renderTable(
		[]string{"job", "TCP(ECUs/MB)", "d/(c·Δa)", "saving", "decision", "LP-agrees"},
		rows,
	)
}
