package experiments

import (
	"fmt"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/sched"
	"lips/internal/sim"
)

// BaselineRow is one scheduler's outcome in the all-baselines shoot-out.
type BaselineRow struct {
	Scheduler string
	Cost      cost.Money
	Makespan  float64
	LocalPct  float64
	Fairness  float64 // Jain index over per-user CPU shares
	Util      float64
}

// BaselinesResult compares every scheduler in the repository on the
// Fig. 6(iii) setting: the paper's two baselines (Hadoop default, delay),
// the Facebook fair scheduler, a Quincy-like min-cost-flow scheduler
// (§II's graph-based alternative), and LiPS.
type BaselinesResult struct {
	Rows []BaselineRow
}

// Baselines runs the shoot-out.
func Baselines(cfg Config) (*BaselinesResult, error) {
	cfg = cfg.withDefaults()
	type mk struct {
		label string
		make  func() sim.Scheduler
		opts  sim.Options
	}
	res := &BaselinesResult{}
	for _, m := range []mk{
		{"hadoop-default", func() sim.Scheduler { return sched.NewFIFO() }, sim.Options{}},
		{"delay", func() sim.Scheduler { return sched.NewDelay() }, sim.Options{}},
		{"fair", func() sim.Scheduler { return sched.NewFair() }, sim.Options{}},
		{"quincy-like", func() sim.Scheduler { return sched.NewQuincy() }, sim.Options{}},
		{"lips", func() sim.Scheduler { return cfg.newLiPS(Fig6Epoch) }, sim.Options{TaskTimeoutSec: 1200}},
	} {
		c := cluster.Paper20(0.5)
		w := fig6Workload(cfg, c)
		p := shuffledPlacement(cfg, c, w)
		scheduler := m.make()
		r, err := sim.New(c, w, p, scheduler, cfg.simOptions(m.opts, "baselines "+m.label)).Run()
		if err != nil {
			return nil, fmt.Errorf("baselines %s: %w", m.label, err)
		}
		if l, ok := scheduler.(*sched.LiPS); ok && l.Err != nil {
			return nil, fmt.Errorf("baselines lips: %w", l.Err)
		}
		res.Rows = append(res.Rows, BaselineRow{
			Scheduler: m.label, Cost: r.TotalCost(), Makespan: r.Makespan,
			LocalPct: 100 * r.Locality.LocalFraction(),
			Fairness: r.Fairness, Util: r.Utilization,
		})
	}
	return res, nil
}

// Render formats the shoot-out.
func (r *BaselinesResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Scheduler, row.Cost.String(),
			fmt.Sprintf("%.0fs", row.Makespan),
			fmt.Sprintf("%.1f%%", row.LocalPct),
			fmt.Sprintf("%.3f", row.Fairness),
			fmt.Sprintf("%.1f%%", 100*row.Util),
		})
	}
	return renderTable([]string{"scheduler", "cost", "makespan", "node-local", "jain-fairness", "utilization"}, rows)
}
