// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI). Each experiment is a pure function of a Config and
// returns typed rows plus a rendered text table, so the same code backs
// the cmd/lips-bench CLI, the benchmark suite and the tests.
//
// EXPERIMENTS.md records paper-reported versus measured values for each
// artifact.
package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"lips/internal/lp"
	"lips/internal/obs"
	"lips/internal/sched"
	"lips/internal/sim"
	"lips/internal/trace"
)

// Config sizes and seeds an experiment run.
type Config struct {
	// Seed feeds every random generator; runs are reproducible.
	Seed int64
	// Trials is the number of random repetitions averaged where the
	// paper averages (Fig. 5). 0 means 5 (or 2 in Quick mode).
	Trials int
	// Quick shrinks workloads so the full suite runs in seconds — used
	// by tests and the default `go test -bench`. The full-size runs are
	// behind cmd/lips-bench -full.
	Quick bool
	// LPWorkers parallelizes the simplex pricing step across this many
	// goroutines (lp.Options.PricingWorkers); results are bit-identical
	// to sequential. 0 means sequential.
	LPWorkers int
	// ColdStart disables epoch-to-epoch basis reuse in the LiPS
	// scheduler, forcing every epoch's LP to solve from scratch — the
	// baseline the benchmark harness compares warm starts against.
	ColdStart bool
	// NoPresolve disables the LP presolve reduction pass
	// (lp.Options.Presolve = PresolveOff).
	NoPresolve bool
	// DenseFactor swaps the sparse LU basis factorization for the
	// historical dense explicit inverse (lp.Options.Factor =
	// FactorDense) — a numerical cross-check and perf baseline.
	DenseFactor bool
	// ColGen solves each LiPS epoch by column generation over a
	// restricted master (sched.LiPS.ColGen) instead of materializing
	// the full online LP. Exact; pays off on large clusters.
	ColGen bool
	// DualSimplex repairs warm-started bases whose bounds moved with
	// dual-simplex pivots (lp.Options.Dual) instead of falling back to
	// a cold phase-1 restart.
	DualSimplex bool
	// FaultCrashes sizes the churn ablation (AblationFaults): how many
	// node crash+recovery pairs the seeded fault plan injects. 0 means 2.
	FaultCrashes int
	// FaultSeed seeds the fault plan independently of the workload seed,
	// so the same churn can be replayed over different workloads. 0 means
	// Seed.
	FaultSeed int64
	// Tracer, when non-nil and enabled, receives structured run events
	// from every simulation the experiments execute; runs are labeled
	// with the experiment name so multi-run traces stay readable. Nil
	// disables tracing.
	Tracer trace.Tracer
	// SampleIntervalSec sets the time-series sampling interval of traced
	// runs (sim.Options.SampleIntervalSec). 0 disables sampling.
	SampleIntervalSec float64
	// Metrics, when non-nil, receives live metrics from every simulation
	// the experiments execute (sim.Options.Metrics) — typically the
	// registry behind a lips-bench -listen server. Nil disables metrics.
	Metrics *obs.Registry
}

// simOptions decorates a run's simulator options with the suite's
// tracing configuration, labeling the run for multi-run traces.
func (c Config) simOptions(o sim.Options, label string) sim.Options {
	if c.Tracer != nil && c.Tracer.Enabled() {
		o.Tracer = c.Tracer
		o.SampleIntervalSec = c.SampleIntervalSec
		o.TraceLabel = label
	}
	o.Metrics = c.Metrics
	return o
}

// newLiPS builds a LiPS scheduler carrying the run's LP knobs.
func (c Config) newLiPS(epochSec float64) *sched.LiPS {
	l := sched.NewLiPS(epochSec)
	l.WarmStart = !c.ColdStart
	l.LPOpts.PricingWorkers = c.LPWorkers
	if c.NoPresolve {
		l.LPOpts.Presolve = lp.PresolveOff
	}
	if c.DenseFactor {
		l.LPOpts.Factor = lp.FactorDense
	}
	l.ColGen = c.ColGen
	l.LPOpts.Dual = c.DualSimplex
	return l
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Trials == 0 {
		if c.Quick {
			c.Trials = 2
		} else {
			c.Trials = 5
		}
	}
	if c.FaultCrashes == 0 {
		c.FaultCrashes = 2
	}
	if c.FaultSeed == 0 {
		c.FaultSeed = c.Seed
	}
	return c
}

// renderTable renders rows with a header through a tabwriter.
func renderTable(header []string, rows [][]string) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	return b.String()
}

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
