package experiments

import (
	"fmt"
	"math/rand"

	"lips/internal/cluster"
	"lips/internal/core"
	"lips/internal/lp"
	"lips/internal/workload"
)

// Fig5Point is one x-axis point of Fig. 5: a problem size (total tasks J,
// data stores S, computation nodes M) with the average cost reduction of
// the LiPS co-scheduling optimum over the 100%-data-local baseline on
// randomly shuffled block placements.
type Fig5Point struct {
	Tasks, Stores, Nodes int
	Trials               int
	MeanReductionPct     float64
	MinPct, MaxPct       float64
}

// Fig5Result is the sweep over problem sizes.
type Fig5Result struct {
	Points []Fig5Point
}

// Fig5 reproduces the paper's scalability simulation: random clusters
// (CPU price 0–5 mc/ECU·s, pairwise transfer 0–60 mc per 64 MB block) and
// random jobs (input 0–6 GB, CPU 0–1000 s). For each size it compares the
// LP optimum — which may relocate data — against scheduling every block
// local to its randomly shuffled location ("the best possible task
// scheduling with 100% data locality ... the same as the ideal delay
// scheduler").
func Fig5(cfg Config) (*Fig5Result, error) {
	cfg = cfg.withDefaults()
	sizes := []struct{ tasks, nodes int }{
		{200, 10}, {400, 25}, {600, 50}, {800, 75}, {1000, 100},
	}
	if cfg.Quick {
		sizes = []struct{ tasks, nodes int }{{100, 10}, {300, 40}, {500, 80}}
	}
	res := &Fig5Result{}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, size := range sizes {
		pt := Fig5Point{Tasks: size.tasks, Stores: size.nodes, Nodes: size.nodes, Trials: cfg.Trials}
		pt.MinPct = 200
		sum := 0.0
		for trial := 0; trial < cfg.Trials; trial++ {
			red, err := fig5Trial(rng, size.tasks, size.nodes)
			if err != nil {
				return nil, fmt.Errorf("fig5 %dx%d trial %d: %w", size.tasks, size.nodes, trial, err)
			}
			sum += red
			if red < pt.MinPct {
				pt.MinPct = red
			}
			if red > pt.MaxPct {
				pt.MaxPct = red
			}
		}
		pt.MeanReductionPct = sum / float64(cfg.Trials)
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// fig5Trial runs one random instance and returns the percentage reduction.
func fig5Trial(rng *rand.Rand, tasks, nodes int) (float64, error) {
	// Larger clusters carry more node diversity — the paper's stated
	// reason LiPS saves more as the cluster grows ("more freedom placing
	// data and tasks").
	types := nodes / 8
	if types < 3 {
		types = 3
	}
	if types > 12 {
		types = 12
	}
	c := cluster.Random(rng, cluster.RandomSpec{Nodes: nodes, Types: types})
	stores := make([]cluster.StoreID, len(c.Stores))
	for i := range stores {
		stores[i] = cluster.StoreID(i)
	}
	w := workload.Random(rng, stores, workload.RandomSpec{TotalTasks: tasks})

	// Both sides start from the same randomly shuffled placement.
	placement := w.Placement()
	placement.Shuffle(rng, stores)

	in, err := core.NewInstance(c, w.Jobs, w.Objects, placement, core.InstanceOptions{
		Aggregate: true, Horizon: 24 * 3600,
	})
	if err != nil {
		return 0, err
	}
	xd := core.PlacementFractions(in)

	baseline, err := core.LocalOnlyPlan(in, xd)
	if err != nil {
		return 0, err
	}
	model, err := core.BuildCoScheduleModel(in)
	if err != nil {
		return 0, err
	}
	plan, err := model.Solve(lp.Options{})
	if err != nil {
		return 0, err
	}
	base := baseline.TotalMC()
	if base <= 0 {
		return 0, fmt.Errorf("degenerate baseline cost %g", base)
	}
	return 100 * (base - plan.TotalMC()) / base, nil
}

// Render formats the sweep.
func (r *Fig5Result) Render() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("J=%d S=%d M=%d", p.Tasks, p.Stores, p.Nodes),
			fmt.Sprintf("%d", p.Trials),
			fmt.Sprintf("%.1f%%", p.MeanReductionPct),
			fmt.Sprintf("%.1f%%", p.MinPct),
			fmt.Sprintf("%.1f%%", p.MaxPct),
		})
	}
	return renderTable([]string{"size", "trials", "mean reduction", "min", "max"}, rows)
}
