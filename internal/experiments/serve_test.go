package experiments

import "testing"

func TestServiceStreamsAndCancels(t *testing.T) {
	r, err := Service(Config{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows: %+v", r.Rows)
	}
	for _, row := range r.Rows {
		if row.Jobs != 12 || row.Cancelled == 0 {
			t.Errorf("%s: jobs=%d cancelled=%d, want 12 jobs with cancels exercised", row.Scheduler, row.Jobs, row.Cancelled)
		}
		if row.DrainSec <= 0 || row.Cost <= 0 {
			t.Errorf("%s: drain=%g cost=%v", row.Scheduler, row.DrainSec, row.Cost)
		}
		// The span-derived latency columns stay inside the run. Fair
		// launches at arrival so its means can be exactly zero; the
		// epoch-batched LiPS row must show real queueing below.
		if row.MeanLaunchSec < 0 || row.MeanQueueWaitSec < 0 ||
			row.MeanQueueWaitSec > row.DrainSec || row.MeanLaunchSec > row.DrainSec {
			t.Errorf("%s: queue=%g launch=%g drain=%g", row.Scheduler,
				row.MeanQueueWaitSec, row.MeanLaunchSec, row.DrainSec)
		}
		if row.Scheduler == "lips" && row.MeanLaunchSec <= 0 {
			t.Errorf("lips: epoch batching should delay launches, got mean %g",
				row.MeanLaunchSec)
		}
		// The chargeback breakdown covers the three submitting tenants
		// and conserves the row total (Service errors on drift, but pin
		// the shape here too).
		if len(row.Tenants) != 3 {
			t.Errorf("%s: chargeback lines = %+v, want the 3 tenants", row.Scheduler, row.Tenants)
		}
		var sum int64
		for _, ts := range row.Tenants {
			if ts.Cost <= 0 {
				t.Errorf("%s: tenant %s charged %v", row.Scheduler, ts.Tenant, ts.Cost)
			}
			sum += int64(ts.Cost)
		}
		if sum != int64(row.Cost) {
			t.Errorf("%s: chargebacks sum to %d, total %d", row.Scheduler, sum, int64(row.Cost))
		}
	}
	// Identical seeds reproduce the table exactly.
	r2, err := Service(Config{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Render() != r2.Render() {
		t.Errorf("service experiment not reproducible:\n%s\nvs\n%s", r.Render(), r2.Render())
	}
}
