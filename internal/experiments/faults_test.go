package experiments

import (
	"reflect"
	"strings"
	"testing"
)

func TestAblationFaultsRendersAndReproduces(t *testing.T) {
	r, err := AblationFaults(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("%d rows, want delay + lips", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.CalmCost <= 0 || row.ChurnCost <= 0 {
			t.Errorf("%s: costs calm=%v churn=%v, want positive", row.Scheduler, row.CalmCost, row.ChurnCost)
		}
		if row.CalmMakespan <= 0 || row.ChurnMakespan <= 0 {
			t.Errorf("%s: makespans calm=%g churn=%g, want positive", row.Scheduler, row.CalmMakespan, row.ChurnMakespan)
		}
	}
	out := r.Render()
	for _, want := range []string{"fault plan", "delay", "lips", "re-executed"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}

	again, err := AblationFaults(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Rows, again.Rows) {
		t.Errorf("churn ablation not reproducible:\n%+v\nvs\n%+v", r.Rows, again.Rows)
	}
}
