package experiments

import (
	"fmt"
	"math/rand"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/metrics"
	"lips/internal/sched"
	"lips/internal/sim"
	"lips/internal/workload"
)

// Fig9Row is one scheduler's outcome on the 100-node SWIM workload:
// Fig. 9 reports the total dollar cost, Fig. 10 the total job execution
// time.
type Fig9Row struct {
	Scheduler string
	Cost      cost.Money
	Makespan  float64
	SumJobSec float64
	LocalPct  float64

	ReductionVsDefault float64 // filled on the LiPS row
	ReductionVsDelay   float64
}

// Fig9Result covers Fig. 9 and Fig. 10.
type Fig9Result struct {
	Rows []Fig9Row
	Jobs int
	// Solver holds the LiPS row's per-epoch LP statistics.
	Solver metrics.SolverStats
}

// Fig9Epoch is the LiPS epoch for the 100-node runs.
const Fig9Epoch = 600

// Fig9 replays a SWIM-like Facebook day (400 jobs over 24 hours; Quick:
// 120 jobs over 4 hours) on the 100-node, three-instance-type,
// three-zone testbed under the default, delay and LiPS schedulers.
func Fig9(cfg Config) (*Fig9Result, error) {
	cfg = cfg.withDefaults()
	spec := workload.DefaultSWIMSpec()
	if cfg.Quick {
		spec = workload.SWIMSpec{Jobs: 120, DurationSec: 4 * 3600}
	}
	build := func() (*cluster.Cluster, *workload.Workload) {
		c := cluster.Paper100()
		stores := make([]cluster.StoreID, len(c.Stores))
		for i := range stores {
			stores[i] = cluster.StoreID(i)
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		return c, workload.SWIM(rng, stores, spec)
	}
	type runner struct {
		label string
		make  func() sim.Scheduler
		opts  sim.Options
	}
	runners := []runner{
		{"hadoop-default", func() sim.Scheduler { return sched.NewFIFO() }, sim.Options{}},
		{"delay", func() sim.Scheduler { return sched.NewDelay() }, sim.Options{}},
		{"lips", func() sim.Scheduler { return cfg.newLiPS(Fig9Epoch) }, sim.Options{TaskTimeoutSec: 1200}},
	}
	res := &Fig9Result{Jobs: spec.Jobs}
	for _, r := range runners {
		c, w := build()
		p := uniformPlacement(cfg, c, w)
		scheduler := r.make()
		result, err := sim.New(c, w, p, scheduler, cfg.simOptions(r.opts, "fig9 "+r.label)).Run()
		if err != nil {
			return nil, fmt.Errorf("fig9 %s: %w", r.label, err)
		}
		if l, ok := scheduler.(*sched.LiPS); ok {
			if l.Err != nil {
				return nil, fmt.Errorf("fig9 lips: %w", l.Err)
			}
			res.Solver.Merge(l.Solver)
		}
		res.Rows = append(res.Rows, Fig9Row{
			Scheduler: r.label, Cost: result.TotalCost(),
			Makespan: result.Makespan, SumJobSec: result.SumJobSec,
			LocalPct: 100 * result.Locality.LocalFraction(),
		})
	}
	lips := &res.Rows[2]
	lips.ReductionVsDefault = 1 - float64(lips.Cost)/float64(res.Rows[0].Cost)
	lips.ReductionVsDelay = 1 - float64(lips.Cost)/float64(res.Rows[1].Cost)
	return res, nil
}

// Render formats Fig. 9/10 as one table.
func (r *Fig9Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		red := ""
		if row.Scheduler == "lips" {
			red = fmt.Sprintf("%s vs default, %s vs delay",
				pct(row.ReductionVsDefault), pct(row.ReductionVsDelay))
		}
		rows = append(rows, []string{
			row.Scheduler, row.Cost.String(),
			fmt.Sprintf("%.0fs", row.Makespan),
			fmt.Sprintf("%.0fs", row.SumJobSec),
			fmt.Sprintf("%.1f%%", row.LocalPct),
			red,
		})
	}
	out := renderTable([]string{"scheduler", "cost", "makespan", "Σ job time", "node-local", "lips cost reduction"}, rows)
	if r.Solver.Solves > 0 {
		out += "lips solver: " + r.Solver.String() + "\n"
	}
	return out
}
