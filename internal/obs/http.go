package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Server is the embeddable observability endpoint. It serves
//
//	/metrics        Prometheus text exposition of the registry
//	/progress       JSON Progress snapshot (see Snapshot)
//	/healthz        200 "ok"
//	/debug/pprof/*  the standard runtime profiles
//
// on its own mux (net/http/pprof's DefaultServeMux side effects are not
// relied on), so several servers can coexist in one process.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (e.g. "127.0.0.1:0", ":9090") and serves the registry
// until Close. It returns once the listener is bound, so Addr reports
// the resolved port immediately.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteProm(w)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(Snapshot(reg))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound host:port.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
