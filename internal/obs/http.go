package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the embeddable observability endpoint. It serves
//
//	/metrics        Prometheus text exposition of the registry
//	/progress       JSON Progress snapshot (see Snapshot)
//	/healthz        liveness: 200 "ok" while the process serves
//	/readyz         readiness: 503 while the owner reports not-ready
//	/debug/pprof/*  the standard runtime profiles
//
// on its own mux (net/http/pprof's DefaultServeMux side effects are not
// relied on), so several servers can coexist in one process.
type Server struct {
	ln  net.Listener
	srv *http.Server
	err chan error // the Serve goroutine's exit error, capacity 1
}

// Mux returns the standard observability mux over a registry — the
// handler Serve installs. Daemons that mount their own endpoints next to
// /metrics compose with it via ServeHandler.
func Mux(reg *Registry) *http.ServeMux { return MuxReady(reg, nil) }

// MuxReady is Mux with an explicit readiness probe: /healthz stays pure
// liveness (the process is up and serving), while /readyz answers 503
// whenever ready() reports false — a draining daemon flips it the moment
// Shutdown begins, so load balancers stop routing before the listener
// closes. A nil ready means always ready (the batch-CLI case).
func MuxReady(reg *Registry, ready func() bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteProm(w)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(Snapshot(reg))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if ready != nil && !ready() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr (e.g. "127.0.0.1:0", ":9090") and serves the registry
// until Close. It returns once the listener is bound, so Addr reports
// the resolved port immediately; a bind failure (port in use, bad
// address) is returned here, and a later accept-loop failure surfaces
// from Close instead of being swallowed.
func Serve(addr string, reg *Registry) (*Server, error) {
	return ServeHandler(addr, Mux(reg))
}

// ServeHandler is Serve with a caller-supplied handler — typically the
// Mux plus the daemon's own endpoints.
func ServeHandler(addr string, handler http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: handler}, err: make(chan error, 1)}
	go func() { s.err <- s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound host:port.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close shuts the server down gracefully: the listener stops accepting,
// in-flight scrapes (a half-written /metrics body, a slow /progress
// reader) get up to five seconds to finish, and only then are laggards
// cut off. It returns the accept loop's exit error — anything other than
// the orderly http.ErrServerClosed means the server died early (e.g. the
// listener was torn down underneath it) and callers should fail loudly.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	shutdownErr := s.srv.Shutdown(ctx)
	if shutdownErr != nil {
		// Drain deadline hit: force-close the stragglers.
		_ = s.srv.Close()
	}
	serveErr := <-s.err
	if errors.Is(serveErr, http.ErrServerClosed) {
		serveErr = nil
	}
	if serveErr != nil {
		return serveErr
	}
	if shutdownErr != nil && !errors.Is(shutdownErr, context.DeadlineExceeded) {
		return shutdownErr
	}
	return nil
}
