package obs

import (
	"fmt"
	"sort"
	"sync"
)

// SLO burn-rate engine: rolling-window error-budget accounting over the
// serve daemon's span stream, in simulated time. Each tenant×objective
// pair owns two windows (short and long); the burn rate is the window's
// violation fraction divided by the error budget, so burn 1.0 means the
// tenant is spending budget exactly as fast as the SLO allows and burn
// 10 means ten times too fast. An alert fires only when BOTH windows
// burn hot — the multi-window pattern that suppresses blips (short
// window recovers fast) without missing slow leaks (long window keeps
// the history).
//
// The engine is deliberately daemon-agnostic: Observe feeds it
// (tenant, kind, value) samples, Evaluate advances the pending →
// firing → resolved state machine at a given simulated instant and
// returns the transitions for logging and metrics. All iteration is
// sorted, so same-seed runs evaluate identically.

// SLO kinds — which span phase the objective bounds.
const (
	SLOE2E       = "e2e"        // submission → terminal latency
	SLOQueueWait = "queue-wait" // submission → admission latency
)

// SLOKinds is the closed vocabulary of objective kinds.
var SLOKinds = []string{SLOE2E, SLOQueueWait}

// Alert states. A pending alert has a hot short window; it fires when
// the long window confirms; it resolves when both windows cool.
const (
	AlertPending  = "pending"
	AlertFiring   = "firing"
	AlertResolved = "resolved"
)

// Burn-rate window labels on the lips_serve_slo_burn_rate gauge.
const (
	WindowShort = "short"
	WindowLong  = "long"
)

// SLO is one latency objective with its error budget and windows.
type SLO struct {
	Kind         string  // SLOE2E or SLOQueueWait
	ObjectiveSec float64 // an observation above this is a violation
	Budget       float64 // allowed violation fraction, e.g. 0.05
	ShortSec     float64 // short rolling window, simulated seconds
	LongSec      float64 // long rolling window, simulated seconds
	FireBurn     float64 // burn rate at or above which the alert trips (default 1)
	ResolveBurn  float64 // burn rate at or below which a firing alert clears (default FireBurn/2)
}

// normalize fills defaults and validates the shape.
func (s SLO) normalize() SLO {
	if s.Kind != SLOE2E && s.Kind != SLOQueueWait {
		panic(fmt.Sprintf("obs: unknown SLO kind %q", s.Kind))
	}
	if s.ObjectiveSec <= 0 {
		panic(fmt.Sprintf("obs: SLO %s objective must be positive", s.Kind))
	}
	if s.Budget <= 0 || s.Budget >= 1 {
		s.Budget = 0.05
	}
	if s.ShortSec <= 0 {
		s.ShortSec = 300
	}
	if s.LongSec < s.ShortSec {
		s.LongSec = 6 * s.ShortSec
	}
	if s.FireBurn <= 0 {
		s.FireBurn = 1
	}
	if s.ResolveBurn <= 0 || s.ResolveBurn > s.FireBurn {
		s.ResolveBurn = s.FireBurn / 2
	}
	return s
}

// burnBuckets fixes the rolling-window resolution: the window is split
// into this many time buckets and slides one bucket at a time.
const burnBuckets = 12

// burnWindow is a bucketed rolling window of good/bad counts over
// simulated time. Buckets are reused ring-style, keyed by their epoch
// (floor(t / width)), so stale buckets age out without bookkeeping.
type burnWindow struct {
	width     float64
	epoch     [burnBuckets]int64
	good, bad [burnBuckets]int64
}

func newBurnWindow(spanSec float64) burnWindow {
	return burnWindow{width: spanSec / burnBuckets}
}

func (w *burnWindow) slot(t float64) (int, int64) {
	e := int64(t / w.width)
	i := int(e % burnBuckets)
	if w.epoch[i] != e {
		w.epoch[i], w.good[i], w.bad[i] = e, 0, 0
	}
	return i, e
}

func (w *burnWindow) observe(t float64, bad bool) {
	i, _ := w.slot(t)
	if bad {
		w.bad[i]++
	} else {
		w.good[i]++
	}
}

// badFrac returns the violation fraction across buckets still inside
// the window at time t (0 when the window is empty).
func (w *burnWindow) badFrac(t float64) float64 {
	cur := int64(t / w.width)
	var good, bad int64
	for i := 0; i < burnBuckets; i++ {
		if w.epoch[i] > cur-burnBuckets && w.epoch[i] <= cur && (w.good[i] > 0 || w.bad[i] > 0) {
			good += w.good[i]
			bad += w.bad[i]
		}
	}
	if good+bad == 0 {
		return 0
	}
	return float64(bad) / float64(good+bad)
}

// Alert is one tenant×SLO alert, as surfaced on /alerts.
type Alert struct {
	Tenant       string  `json:"tenant"`
	SLO          string  `json:"slo"`
	State        string  `json:"state"`
	ObjectiveSec float64 `json:"objective_sec"`
	Budget       float64 `json:"budget"`
	BurnShort    float64 `json:"burn_short"`
	BurnLong     float64 `json:"burn_long"`
	SinceSim     float64 `json:"since_sim"`
	FiredSim     float64 `json:"fired_sim,omitempty"`
	ResolvedSim  float64 `json:"resolved_sim,omitempty"`
}

// sloSeries is one tenant×SLO accounting line.
type sloSeries struct {
	tenant string
	slo    SLO

	short, long         burnWindow
	goodTotal, badTotal int64 // lifetime attainment

	state               string // "" (ok), AlertPending, AlertFiring
	sinceSim, firedSim  float64
	lastShort, lastLong float64
}

// Attainment is a lifetime good/total summary for one tenant×SLO.
type Attainment struct {
	SLO          string  `json:"slo"`
	ObjectiveSec float64 `json:"objective_sec"`
	Good         int64   `json:"good"`
	Total        int64   `json:"total"`
	Ratio        float64 `json:"ratio"` // 1.0 when empty: no observations, no violations
}

// BurnEngine evaluates a set of SLOs across every tenant it observes.
// Safe for concurrent use.
type BurnEngine struct {
	mu       sync.Mutex
	slos     []SLO
	series   map[string]*sloSeries // tenant + "\xff" + kind
	resolved []Alert               // most recent resolved alerts, oldest first
}

// maxResolvedAlerts bounds the resolved-alert history on /alerts.
const maxResolvedAlerts = 64

// NewBurnEngine returns an engine evaluating the given objectives for
// every tenant that shows up in Observe. Objectives are normalized
// (defaults filled); at most one per kind is kept.
func NewBurnEngine(slos ...SLO) *BurnEngine {
	e := &BurnEngine{series: make(map[string]*sloSeries)}
	seen := map[string]bool{}
	for _, s := range slos {
		s = s.normalize()
		if !seen[s.Kind] {
			seen[s.Kind] = true
			e.slos = append(e.slos, s)
		}
	}
	return e
}

// Enabled reports whether any objective is configured.
func (e *BurnEngine) Enabled() bool { return e != nil && len(e.slos) > 0 }

func (e *BurnEngine) get(tenant, kind string) *sloSeries {
	key := tenant + "\xff" + kind
	s := e.series[key]
	if s == nil {
		for _, slo := range e.slos {
			if slo.Kind == kind {
				s = &sloSeries{
					tenant: tenant, slo: slo,
					short: newBurnWindow(slo.ShortSec),
					long:  newBurnWindow(slo.LongSec),
				}
				e.series[key] = s
				break
			}
		}
	}
	return s
}

// Observe feeds one latency sample for a tenant at simulated time t.
// Kinds with no configured objective are ignored.
func (e *BurnEngine) Observe(tenant, kind string, t, value float64) {
	if !e.Enabled() {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.get(tenant, kind)
	if s == nil {
		return
	}
	bad := value > s.slo.ObjectiveSec
	s.short.observe(t, bad)
	s.long.observe(t, bad)
	if bad {
		s.badTotal++
	} else {
		s.goodTotal++
	}
}

// Evaluate advances every series' state machine to simulated time t and
// returns the transitions that happened, sorted by (tenant, slo). The
// returned alerts carry the state just entered; resolved ones are also
// retained for the /alerts history.
func (e *BurnEngine) Evaluate(t float64) []Alert {
	if !e.Enabled() {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	keys := make([]string, 0, len(e.series))
	for k := range e.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []Alert
	for _, k := range keys {
		s := e.series[k]
		s.lastShort = s.short.badFrac(t) / s.slo.Budget
		s.lastLong = s.long.badFrac(t) / s.slo.Budget
		switch s.state {
		case "":
			if s.lastShort >= s.slo.FireBurn {
				s.state, s.sinceSim = AlertPending, t
				if s.lastLong >= s.slo.FireBurn {
					s.state, s.firedSim = AlertFiring, t
					out = append(out, s.alert(AlertFiring, t))
				} else {
					out = append(out, s.alert(AlertPending, t))
				}
			}
		case AlertPending:
			if s.lastShort >= s.slo.FireBurn && s.lastLong >= s.slo.FireBurn {
				s.state, s.firedSim = AlertFiring, t
				out = append(out, s.alert(AlertFiring, t))
			} else if s.lastShort <= s.slo.ResolveBurn {
				// A pending alert that subsides never paged anyone;
				// it returns to ok silently.
				s.state = ""
			}
		case AlertFiring:
			if s.lastShort <= s.slo.ResolveBurn && s.lastLong <= s.slo.ResolveBurn {
				a := s.alert(AlertResolved, t)
				a.ResolvedSim = t
				s.state = ""
				e.resolved = append(e.resolved, a)
				if len(e.resolved) > maxResolvedAlerts {
					e.resolved = e.resolved[len(e.resolved)-maxResolvedAlerts:]
				}
				out = append(out, a)
			}
		}
	}
	return out
}

func (s *sloSeries) alert(state string, t float64) Alert {
	a := Alert{
		Tenant: s.tenant, SLO: s.slo.Kind, State: state,
		ObjectiveSec: s.slo.ObjectiveSec, Budget: s.slo.Budget,
		BurnShort: s.lastShort, BurnLong: s.lastLong,
		SinceSim: s.sinceSim,
	}
	if state == AlertFiring || state == AlertResolved {
		a.FiredSim = s.firedSim
	}
	return a
}

// Alerts returns the active (pending and firing) alerts followed by the
// retained resolved history, active ones sorted by (tenant, slo).
func (e *BurnEngine) Alerts() []Alert {
	if !e.Enabled() {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	keys := make([]string, 0, len(e.series))
	for k := range e.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []Alert
	for _, k := range keys {
		if s := e.series[k]; s.state != "" {
			out = append(out, s.alert(s.state, s.sinceSim))
		}
	}
	return append(out, e.resolved...)
}

// Firing returns how many alerts are currently firing.
func (e *BurnEngine) Firing() int {
	if !e.Enabled() {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, s := range e.series {
		if s.state == AlertFiring {
			n++
		}
	}
	return n
}

// BurnRates returns every series' burn rates from the last Evaluate,
// sorted by (tenant, slo) — the gauge refresh source.
func (e *BurnEngine) BurnRates() []Alert {
	if !e.Enabled() {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	keys := make([]string, 0, len(e.series))
	for k := range e.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Alert, 0, len(keys))
	for _, k := range keys {
		s := e.series[k]
		out = append(out, Alert{
			Tenant: s.tenant, SLO: s.slo.Kind, State: s.state,
			BurnShort: s.lastShort, BurnLong: s.lastLong,
		})
	}
	return out
}

// Attainments returns the lifetime SLO attainment for one tenant, one
// entry per configured objective in registration order.
func (e *BurnEngine) Attainments(tenant string) []Attainment {
	if !e.Enabled() {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Attainment, 0, len(e.slos))
	for _, slo := range e.slos {
		a := Attainment{SLO: slo.Kind, ObjectiveSec: slo.ObjectiveSec, Ratio: 1}
		if s := e.series[tenant+"\xff"+slo.Kind]; s != nil {
			a.Good, a.Total = s.goodTotal, s.goodTotal+s.badTotal
			if a.Total > 0 {
				a.Ratio = float64(a.Good) / float64(a.Total)
			}
		}
		out = append(out, a)
	}
	return out
}
