package obs

import (
	"io"
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %g, want 3.5", got)
	}
	if r.Counter("c_total", "help") != c {
		t.Error("re-registering a counter returned a different handle")
	}

	g := r.Gauge("g", "help")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %g, want 4", got)
	}

	v, ok := r.Value("c_total")
	if !ok || v != 3.5 {
		t.Errorf("Value(c_total) = %g,%v, want 3.5,true", v, ok)
	}
	if _, ok := r.Value("missing"); ok {
		t.Error("Value found a missing family")
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative counter add did not panic")
		}
	}()
	NewRegistry().Counter("c_total", "help").Add(-1)
}

func TestRegistryShapeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "help")
}

func TestVecLabelsAndSum(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("tasks_total", "help", "state")
	v.With("a").Add(2)
	v.With("b").Add(3)
	if got, ok := r.Value("tasks_total", "a"); !ok || got != 2 {
		t.Errorf(`Value(tasks_total,a) = %g,%v, want 2,true`, got, ok)
	}
	if _, ok := r.Value("tasks_total", "zzz"); ok {
		t.Error("Value found a missing label child")
	}
	if got := r.Sum("tasks_total"); got != 5 {
		t.Errorf("Sum = %g, want 5", got)
	}
	if got := r.Sum("missing"); got != 0 {
		t.Errorf("Sum(missing) = %g, want 0", got)
	}
}

// TestHistogramBuckets pins the boundary rule: an observation equal to a
// bucket's upper bound falls into that bucket (le is inclusive), and
// anything above the last bound lands in the +Inf overflow.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "help", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 5, 6, 1e9} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 1, 2} // (≤1)=2, (1,2]=2, (2,5]=1, +Inf=2
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if got := h.Sum(); math.Abs(got-(0.5+1+1.0000001+2+5+6+1e9)) > 1e-6 {
		t.Errorf("sum = %g", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "help", []float64{1, 2, 4})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	// 10 observations in (1,2]: the median interpolates to the middle of
	// the bucket.
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); got != 1.5 {
		t.Errorf("q50 = %g, want 1.5 (linear interpolation in (1,2])", got)
	}
	if got := h.Quantile(1); got != 2 {
		t.Errorf("q100 = %g, want 2 (bucket upper bound)", got)
	}
	// Overflow observations clamp to the highest finite bound.
	h.Observe(1e6)
	if got := h.Quantile(1); got != 4 {
		t.Errorf("q100 with overflow = %g, want 4 (clamped)", got)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 10, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

// TestConcurrentScrape hammers the registry from writer goroutines while
// a reader scrapes continuously — the -race run is the real assertion.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("writes_total", "help")
	g := r.Gauge("level", "help")
	v := r.CounterVec("by_label_total", "help", "k")
	h := r.Histogram("lat", "help", []float64{1, 10, 100})

	const writers, perWriter = 8, 2000
	var writerWG, scraperWG sync.WaitGroup
	stop := make(chan struct{})
	scraperWG.Add(1)
	go func() { // scraper
		defer scraperWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := r.WriteProm(io.Discard); err != nil {
					t.Errorf("WriteProm: %v", err)
					return
				}
				r.Sum("by_label_total")
				Snapshot(r)
			}
		}
	}()
	labels := []string{"a", "b", "c"}
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Set(float64(i))
				v.With(labels[i%len(labels)]).Inc()
				h.Observe(float64(i % 200))
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	scraperWG.Wait()

	if got := c.Value(); got != writers*perWriter {
		t.Errorf("writes_total = %g, want %d", got, writers*perWriter)
	}
	if got := h.Count(); got != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", got, writers*perWriter)
	}
	if got := r.Sum("by_label_total"); got != writers*perWriter {
		t.Errorf("Sum(by_label_total) = %g, want %d", got, writers*perWriter)
	}
}
