package obs

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Structured logging, stdlib log/slog only. Every CLI threads the same
// two flags (-log-level, -log-format) through LogFlags and hands the
// resulting *slog.Logger down; libraries receive a logger, never build
// one. Shared attribute keys keep run/job/epoch/tenant greppable across
// layers:
//
//	log.Info("epoch planned", obs.LogEpoch, 7, obs.LogTenant, "alice")
//
// Batch CLIs log their config at debug (stdout results stay the
// interface); the serve daemon logs lifecycle at info and slow-epoch /
// shed events at warn.

// Shared slog attribute keys.
const (
	LogRun    = "run"
	LogJob    = "job"
	LogEpoch  = "epoch"
	LogTenant = "tenant"
)

// LogOptions carries the two logging flags.
type LogOptions struct {
	Level  string // debug, info, warn, error or off
	Format string // text or json
}

// LogFlags registers -log-level and -log-format on the default flag set
// and returns the options they fill. Call before flag.Parse.
func LogFlags() *LogOptions {
	o := &LogOptions{}
	o.Register(flag.CommandLine)
	return o
}

// Register registers the logging flags on an explicit flag set.
func (o *LogOptions) Register(fs *flag.FlagSet) {
	fs.StringVar(&o.Level, "log-level", "info", "log level: debug, info, warn, error or off")
	fs.StringVar(&o.Format, "log-format", "text", "log format: text or json")
}

// Logger builds the configured *slog.Logger writing to w. Level "off"
// returns NopLogger; unknown levels or formats are an error.
func (o LogOptions) Logger(w io.Writer) (*slog.Logger, error) {
	var level slog.Level
	switch strings.ToLower(o.Level) {
	case "debug":
		level = slog.LevelDebug
	case "info", "":
		level = slog.LevelInfo
	case "warn", "warning":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	case "off", "none":
		return NopLogger(), nil
	default:
		return nil, fmt.Errorf("obs: unknown log level %q", o.Level)
	}
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(o.Format) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q", o.Format)
	}
}

// NopLogger returns a logger whose handler rejects every level — the
// disabled path: Enabled is a single comparison and no record is built.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }
