package obs

import "lips/internal/trace"

// TraceSink replays a structured run trace into a Registry, rebuilding
// the same metric families the live instrumentation maintains — used by
// `lips-trace -metrics` so offline traces and live scrapes share one
// vocabulary. Lifecycle counters (enqueues, launches by locality, dones,
// kills, moves, faults, epochs) reproduce the live values exactly; the
// sampled gauges land on the last sample event; per-category cost
// counters are accumulated from the cumulative sample series (the delta
// between consecutive samples), so they stop at the last sample rather
// than the end-of-run ledger. Wall-clock histograms fill only when the
// trace was recorded with timings enabled.
type TraceSink struct {
	sim   *SimMetrics
	sched *SchedMetrics

	// lastCost is the previous sample's cumulative microcents per
	// category, the baseline for the next delta; reset by a run header.
	lastCost map[string]float64
	// lastTenant is the same baseline for the per-tenant chargeback
	// counters, keyed by tenant then category.
	lastTenant map[string]map[string]float64
}

// NewTraceSink returns a sink feeding reg. The sim and sched families
// are registered up front so even an empty trace yields a complete,
// all-zero exposition.
func NewTraceSink(reg *Registry) *TraceSink {
	return &TraceSink{
		sim:        RegisterSim(reg),
		sched:      RegisterSched(reg),
		lastCost:   make(map[string]float64),
		lastTenant: make(map[string]map[string]float64),
	}
}

// Enabled implements trace.Tracer.
func (t *TraceSink) Enabled() bool { return true }

// Emit implements trace.Tracer.
func (t *TraceSink) Emit(e trace.Event) {
	switch e.Kind {
	case trace.KindRun:
		t.lastCost = make(map[string]float64)
		t.lastTenant = make(map[string]map[string]float64)
	case trace.KindEnqueue:
		t.sim.Enqueued.Inc()
	case trace.KindLaunch:
		if c := t.sim.Launched[e.Task.Locality]; c != nil {
			c.Inc()
		}
	case trace.KindDone:
		t.sim.Done.Inc()
	case trace.KindKill:
		t.sim.Killed.With(e.Task.Reason).Inc()
	case trace.KindMove:
		t.sim.Moves.With(e.Move.Reason).Inc()
		t.sim.MovedMB.Add(e.Move.MB)
	case trace.KindFault:
		t.sim.Faults.With(e.Fault.Kind).Inc()
	case trace.KindEpoch:
		ep := e.Epoch
		t.sched.Epochs.Inc()
		t.sched.EpochNumber.Set(float64(ep.Epoch))
		t.sched.Deferred.Set(float64(ep.Deferred))
		t.sched.Launched.Add(float64(ep.Launched))
		if ep.Warm {
			t.sched.WarmOffers.Inc()
			if ep.WarmAccepted {
				t.sched.WarmHits.Inc()
			}
		}
		t.sched.Iterations.Observe(float64(ep.Iters))
		if ep.SolveMS > 0 {
			t.sched.SolveSeconds.Observe(ep.SolveMS / 1e3)
		}
	case trace.KindSample:
		s := e.Sample
		t.sim.Clock.Set(e.T)
		t.sim.BusySlot.Set(s.BusySlotSec)
		t.sim.FreeSlots.Set(float64(s.FreeSlots))
		t.sim.LiveSlots.Set(float64(s.LiveSlots))
		t.sim.Tasks.With("running").Set(float64(s.Running))
		t.sim.Tasks.With("queued").Set(float64(s.Queued))
		t.sim.Tasks.With("pending").Set(float64(s.Pending))
		t.sim.Tasks.With("done").Set(float64(s.Done))
		for cat, uc := range map[string]int64{
			"cpu": s.CPUUC, "transfer": s.TransferUC, "placement": s.PlacementUC,
			"speculative": s.SpeculativeUC, "fault": s.FaultUC,
		} {
			if d := float64(uc) - t.lastCost[cat]; d > 0 {
				t.sim.Cost[cat].Add(d)
				t.lastCost[cat] = float64(uc)
			}
		}
		for _, tc := range s.Tenants {
			base := t.lastTenant[tc.Tenant]
			if base == nil {
				base = make(map[string]float64)
				t.lastTenant[tc.Tenant] = base
			}
			for cat, uc := range map[string]int64{
				"cpu": tc.CPUUC, "transfer": tc.TransferUC, "placement": tc.PlacementUC,
				"speculative": tc.SpeculativeUC, "fault": tc.FaultUC,
			} {
				if d := float64(uc) - base[cat]; d > 0 {
					t.sim.TenantCost.With(tc.Tenant, cat).Add(d)
					base[cat] = float64(uc)
				}
			}
		}
	}
}
