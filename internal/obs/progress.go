package obs

// Progress is the /progress JSON snapshot of a live run. Its first
// eighteen fields carry exactly the names and units of the trace
// Sampler's CSV columns (trace.CSVHeader: simulated seconds, exact
// microcents) — pinned by TestProgressMatchesSamplerCSV — followed by
// scheduler- and fault-level extras the CSV does not carry. Cost and
// locality fields read the exact live counters; the state gauges (tasks,
// slots, clock) lag by at most one gauge-refresh interval.
type Progress struct {
	TSec          float64 `json:"t_sec"`
	TotalUC       int64   `json:"total_uc"`
	CPUUC         int64   `json:"cpu_uc"`
	TransferUC    int64   `json:"transfer_uc"`
	PlacementUC   int64   `json:"placement_uc"`
	SpeculativeUC int64   `json:"speculative_uc"`
	FaultUC       int64   `json:"fault_uc"`
	Running       int64   `json:"running"`
	Queued        int64   `json:"queued"`
	Pending       int64   `json:"pending"`
	Done          int64   `json:"done"`
	FreeSlots     int64   `json:"free_slots"`
	LiveSlots     int64   `json:"live_slots"`
	BusySlotSec   float64 `json:"busy_slot_sec"`
	NodeLocal     int64   `json:"node_local"`
	ZoneLocal     int64   `json:"zone_local"`
	Remote        int64   `json:"remote"`
	NoInput       int64   `json:"no_input"`

	Epoch          int64 `json:"epoch"`
	DeferredTasks  int64 `json:"deferred_tasks"`
	FaultsInjected int64 `json:"faults_injected"`
}

// Snapshot assembles a Progress from the registry's current values.
// Families a run never registered (e.g. scheduler metrics under FIFO)
// read as zero.
func Snapshot(r *Registry) Progress {
	num := func(name string, label ...string) float64 {
		v, _ := r.Value(name, label...)
		return v
	}
	cnt := func(name string, label ...string) int64 {
		return int64(num(name, label...) + 0.5)
	}
	return Progress{
		TSec:          num(MSimClockSeconds),
		TotalUC:       int64(r.Sum(MSimCost) + 0.5),
		CPUUC:         cnt(MSimCost, "cpu"),
		TransferUC:    cnt(MSimCost, "transfer"),
		PlacementUC:   cnt(MSimCost, "placement"),
		SpeculativeUC: cnt(MSimCost, "speculative"),
		FaultUC:       cnt(MSimCost, "fault"),
		Running:       cnt(MSimTasks, "running"),
		Queued:        cnt(MSimTasks, "queued"),
		Pending:       cnt(MSimTasks, "pending"),
		Done:          cnt(MSimTasks, "done"),
		FreeSlots:     cnt(MSimFreeSlots),
		LiveSlots:     cnt(MSimLiveSlots),
		BusySlotSec:   num(MSimBusySlotSeconds),
		NodeLocal:     cnt(MSimLaunched, "node-local"),
		ZoneLocal:     cnt(MSimLaunched, "zone-local"),
		Remote:        cnt(MSimLaunched, "remote"),
		NoInput:       cnt(MSimLaunched, "no-input"),

		Epoch:          cnt(MSchedEpochNumber),
		DeferredTasks:  cnt(MSchedDeferred),
		FaultsInjected: int64(r.Sum(MSimFaults) + 0.5),
	}
}
