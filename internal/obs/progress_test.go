package obs

import (
	"reflect"
	"strings"
	"testing"

	"lips/internal/trace"
)

// TestProgressMatchesSamplerCSV pins the field-name and unit agreement
// between the /progress JSON snapshot and the trace Sampler's CSV export:
// the first len(CSVHeader) json tags of Progress must be exactly the CSV
// columns, in order. A divergence means a dashboard reading one would
// misread the other.
func TestProgressMatchesSamplerCSV(t *testing.T) {
	cols := strings.Split(trace.CSVHeader, ",")
	typ := reflect.TypeOf(Progress{})
	if typ.NumField() < len(cols) {
		t.Fatalf("Progress has %d fields, CSV has %d columns", typ.NumField(), len(cols))
	}
	for i, col := range cols {
		if tag := typ.Field(i).Tag.Get("json"); tag != col {
			t.Errorf("Progress field %d json tag = %q, want CSV column %q", i, tag, col)
		}
	}
}

func TestSnapshotReadsRegistry(t *testing.T) {
	reg := NewRegistry()
	m := RegisterSim(reg)
	m.Clock.Set(120)
	m.Cost["cpu"].Add(1e8)
	m.Cost["transfer"].Add(5e7)
	m.Tasks.With("running").Set(4)
	m.FreeSlots.Set(2)
	m.LiveSlots.Set(8)
	m.BusySlot.Set(90)
	m.Launched["node-local"].Add(6)
	m.Faults.With("node-down").Inc()
	sched := RegisterSched(reg)
	sched.EpochNumber.Set(2)
	sched.Deferred.Set(5)

	p := Snapshot(reg)
	want := Progress{
		TSec: 120, TotalUC: 150000000, CPUUC: 100000000, TransferUC: 50000000,
		Running: 4, FreeSlots: 2, LiveSlots: 8, BusySlotSec: 90,
		NodeLocal: 6, Epoch: 2, DeferredTasks: 5, FaultsInjected: 1,
	}
	if p != want {
		t.Errorf("Snapshot = %+v, want %+v", p, want)
	}
}

func TestSnapshotEmptyRegistry(t *testing.T) {
	if p := Snapshot(NewRegistry()); p != (Progress{}) {
		t.Errorf("empty registry snapshot = %+v, want zero", p)
	}
}
