package obs

import (
	"encoding/json"
	"flag"
	"log/slog"
	"strings"
	"testing"
)

// TestLoggerLevels: each named level gates records at the slog boundary
// and "off" yields a logger whose handler rejects everything.
func TestLoggerLevels(t *testing.T) {
	for _, tc := range []struct {
		level     string
		wantDebug bool
		wantWarn  bool
	}{
		{"debug", true, true},
		{"info", false, true},
		{"warn", false, true},
		{"error", false, false},
		{"off", false, false},
		{"", false, true}, // empty means info
	} {
		var b strings.Builder
		log, err := LogOptions{Level: tc.level, Format: "text"}.Logger(&b)
		if err != nil {
			t.Fatalf("level %q: %v", tc.level, err)
		}
		log.Debug("dbg")
		log.Warn("wrn")
		out := b.String()
		if got := strings.Contains(out, "dbg"); got != tc.wantDebug {
			t.Errorf("level %q: debug emitted=%v, want %v", tc.level, got, tc.wantDebug)
		}
		if got := strings.Contains(out, "wrn"); got != tc.wantWarn {
			t.Errorf("level %q: warn emitted=%v, want %v", tc.level, got, tc.wantWarn)
		}
	}
	if _, err := (LogOptions{Level: "loud"}).Logger(&strings.Builder{}); err == nil {
		t.Error("unknown level accepted")
	}
	if _, err := (LogOptions{Level: "info", Format: "xml"}).Logger(&strings.Builder{}); err == nil {
		t.Error("unknown format accepted")
	}
}

// TestLoggerJSONFormat: the json handler emits one parseable object per
// record carrying the shared attribute keys.
func TestLoggerJSONFormat(t *testing.T) {
	var b strings.Builder
	log, err := LogOptions{Level: "info", Format: "json"}.Logger(&b)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("epoch planned", LogEpoch, 7, LogTenant, "alice", LogJob, 3, LogRun, "r1")
	var rec map[string]any
	if err := json.Unmarshal([]byte(b.String()), &rec); err != nil {
		t.Fatalf("not JSON: %q: %v", b.String(), err)
	}
	if rec["msg"] != "epoch planned" || rec[LogEpoch] != float64(7) ||
		rec[LogTenant] != "alice" || rec[LogJob] != float64(3) || rec[LogRun] != "r1" {
		t.Errorf("record %v missing shared attrs", rec)
	}
}

// TestNopLogger: the disabled logger's handler reports not-enabled for
// every level, so callers pay one comparison and build no record.
func TestNopLogger(t *testing.T) {
	log := NopLogger()
	for _, lv := range []slog.Level{slog.LevelDebug, slog.LevelInfo, slog.LevelWarn, slog.LevelError} {
		if log.Enabled(nil, lv) {
			t.Errorf("nop logger enabled at %v", lv)
		}
	}
	// With* must stay nops too.
	log.With("k", "v").WithGroup("g").Error("dropped")
}

// TestLogFlagsRegister: Register puts both flags on a flag set with the
// documented defaults.
func TestLogFlagsRegister(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var o LogOptions
	o.Register(fs)
	if err := fs.Parse([]string{"-log-level", "debug", "-log-format", "json"}); err != nil {
		t.Fatal(err)
	}
	if o.Level != "debug" || o.Format != "json" {
		t.Errorf("parsed %+v", o)
	}
	fs2 := flag.NewFlagSet("test2", flag.ContinueOnError)
	var d LogOptions
	d.Register(fs2)
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if d.Level != "info" || d.Format != "text" {
		t.Errorf("defaults %+v, want info/text", d)
	}
}
