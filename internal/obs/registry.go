// Package obs is the live-observability layer: a concurrency-safe metrics
// registry (counters, gauges, fixed-bucket histograms, one- and two-label
// families) with a Prometheus text-format exposition writer, an
// embeddable HTTP server (/metrics, /healthz, /progress, /debug/pprof/*)
// and a trace-replay sink that rebuilds the same metric families from an
// offline JSONL trace, so live scrapes and post-hoc traces share one
// vocabulary.
//
// All metric values are atomics: the simulator (single goroutine) mutates
// them while HTTP scrapes read concurrently, without locks on the hot
// path. Family registration takes the registry lock, so register handles
// once (at run setup) and mutate through the returned pointers.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// atomicFloat is a float64 with atomic add/set via its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) add(v float64) {
	for {
		old := a.bits.Load()
		if a.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (a *atomicFloat) set(v float64) { a.bits.Store(math.Float64bits(v)) }
func (a *atomicFloat) load() float64 { return math.Float64frombits(a.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct{ f atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.f.add(1) }

// Add increases the counter. Negative deltas are a programmer error and
// panic: counters only go up.
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic(fmt.Sprintf("obs: counter decreased by %g", v))
	}
	c.f.add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.f.load() }

// Gauge is a value that can go up and down.
type Gauge struct{ f atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.f.set(v) }

// Add shifts the value.
func (g *Gauge) Add(v float64) { g.f.add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.f.load() }

// Histogram counts observations into fixed cumulative buckets. Buckets
// are upper bounds (le), ascending; an implicit +Inf bucket catches the
// overflow. Observations are lock-free; concurrent readers may see a
// momentarily torn (sum, count) pair, which is acceptable for scraping.
type Histogram struct {
	upper  []float64
	counts []atomic.Uint64 // len(upper)+1; last is the +Inf overflow
	sum    atomicFloat
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts by
// linear interpolation inside the containing bucket — the same estimate
// Prometheus's histogram_quantile computes. Observations in the +Inf
// overflow bucket clamp to the highest finite bound. Returns NaN when
// empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.upper) { // overflow bucket
				if len(h.upper) == 0 {
					return math.NaN()
				}
				return h.upper[len(h.upper)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.upper[i-1]
			}
			hi := h.upper[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.upper[len(h.upper)-1]
}

// ExpBuckets returns n bucket bounds starting at start, each factor times
// the previous — the usual latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// metricType is the exposition TYPE of a family.
type metricType int

const (
	counterType metricType = iota
	gaugeType
	histogramType
)

func (t metricType) String() string {
	switch t {
	case counterType:
		return "counter"
	case gaugeType:
		return "gauge"
	case histogramType:
		return "histogram"
	}
	return "untyped"
}

// labelSep joins multi-label child keys. 0xff never appears in valid
// UTF-8 label values, and sorts after every printable byte, so joined
// keys keep the (first label, second label) lexicographic order the
// exposition writer relies on.
const labelSep = "\xff"

// family is one named metric with zero, one, or two label dimensions.
type family struct {
	name, help string
	typ        metricType
	labelKeys  []string // nil for a plain (single-child) metric
	buckets    []float64

	mu   sync.Mutex
	kids map[string]interface{} // labelSep-joined label values ("" when plain) → metric
}

// child returns (creating on first use) the metric for one label value
// (or a labelSep-joined tuple for multi-label families).
func (f *family) child(labelValue string) interface{} {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.kids[labelValue]
	if m == nil {
		switch f.typ {
		case counterType:
			m = &Counter{}
		case gaugeType:
			m = &Gauge{}
		case histogramType:
			h := &Histogram{upper: f.buckets}
			h.counts = make([]atomic.Uint64, len(f.buckets)+1)
			m = h
		}
		f.kids[labelValue] = m
	}
	return m
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct{ f *family }

// With returns the counter for one label value, creating it on first use.
// Cache the result on hot paths: With takes the family lock.
func (v *CounterVec) With(labelValue string) *Counter {
	return v.f.child(labelValue).(*Counter)
}

// CounterVec2 is a counter family keyed by two labels — e.g. the
// per-tenant, per-category chargeback counters.
type CounterVec2 struct{ f *family }

// With returns the counter for one (v1, v2) label pair, creating it on
// first use. Cache the result on hot paths: With takes the family lock.
func (v *CounterVec2) With(v1, v2 string) *Counter {
	return v.f.child(v1 + labelSep + v2).(*Counter)
}

// GaugeVec2 is a gauge family keyed by two labels.
type GaugeVec2 struct{ f *family }

// With returns the gauge for one (v1, v2) label pair, creating it on
// first use.
func (v *GaugeVec2) With(v1, v2 string) *Gauge {
	return v.f.child(v1 + labelSep + v2).(*Gauge)
}

// GaugeVec is a gauge family keyed by one label.
type GaugeVec struct{ f *family }

// With returns the gauge for one label value, creating it on first use.
func (v *GaugeVec) With(labelValue string) *Gauge {
	return v.f.child(labelValue).(*Gauge)
}

// HistogramVec is a histogram family keyed by one label — e.g. the
// serve daemon's per-tenant latency families. Every child shares the
// family's bucket bounds.
type HistogramVec struct{ f *family }

// With returns the histogram for one label value, creating it on first
// use. Cache the result on hot paths: With takes the family lock.
func (v *HistogramVec) With(labelValue string) *Histogram {
	return v.f.child(labelValue).(*Histogram)
}

// Registry holds metric families. Safe for concurrent registration,
// mutation and scraping.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family

	bundleMu sync.Mutex
	bundles  map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family), bundles: make(map[string]any)}
}

// bundle returns the registry's cached handle bundle under key, building
// it at most once. RegisterSim/RegisterSched/RegisterLP go through here so
// repeated registration — e.g. sched.LiPS.Init eagerly registering the LP
// families on every Run of a double-Run harness — hands back the identical
// pointers instead of rebuilding the structs (the underlying families were
// already register-or-fetch, so this only removes allocation and lock
// churn, not correctness hazards).
func (r *Registry) bundle(key string, build func() any) any {
	r.bundleMu.Lock()
	defer r.bundleMu.Unlock()
	if r.bundles == nil {
		r.bundles = make(map[string]any)
	}
	b := r.bundles[key]
	if b == nil {
		b = build()
		r.bundles[key] = b
	}
	return b
}

// family registers (or fetches) a family, panicking on a name reuse with
// a different shape — a programmer error, not a runtime condition.
func (r *Registry) family(name, help string, typ metricType, labelKeys []string, buckets []float64) *family {
	r.mu.RLock()
	f := r.fams[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		f = r.fams[name]
		if f == nil {
			f = &family{
				name: name, help: help, typ: typ, labelKeys: labelKeys,
				buckets: buckets, kids: make(map[string]interface{}),
			}
			r.fams[name] = f
		}
		r.mu.Unlock()
	}
	if f.typ != typ || strings.Join(f.labelKeys, ",") != strings.Join(labelKeys, ",") {
		panic(fmt.Sprintf("obs: %s re-registered as %v labels=%v (was %v labels=%v)",
			name, typ, labelKeys, f.typ, f.labelKeys))
	}
	return f
}

// Counter registers (or fetches) a plain counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, counterType, nil, nil).child("").(*Counter)
}

// CounterVec registers (or fetches) a one-label counter family.
func (r *Registry) CounterVec(name, help, labelKey string) *CounterVec {
	return &CounterVec{r.family(name, help, counterType, []string{labelKey}, nil)}
}

// CounterVec2 registers (or fetches) a two-label counter family.
func (r *Registry) CounterVec2(name, help, key1, key2 string) *CounterVec2 {
	return &CounterVec2{r.family(name, help, counterType, []string{key1, key2}, nil)}
}

// Gauge registers (or fetches) a plain gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, gaugeType, nil, nil).child("").(*Gauge)
}

// GaugeVec registers (or fetches) a one-label gauge family.
func (r *Registry) GaugeVec(name, help, labelKey string) *GaugeVec {
	return &GaugeVec{r.family(name, help, gaugeType, []string{labelKey}, nil)}
}

// GaugeVec2 registers (or fetches) a two-label gauge family.
func (r *Registry) GaugeVec2(name, help, key1, key2 string) *GaugeVec2 {
	return &GaugeVec2{r.family(name, help, gaugeType, []string{key1, key2}, nil)}
}

// Histogram registers (or fetches) a plain histogram with the given
// ascending bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("obs: %s: buckets not ascending", name))
	}
	return r.family(name, help, histogramType, nil, buckets).child("").(*Histogram)
}

// HistogramVec registers (or fetches) a one-label histogram family with
// the given ascending bucket upper bounds (+Inf is implicit).
func (r *Registry) HistogramVec(name, help, labelKey string, buckets []float64) *HistogramVec {
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("obs: %s: buckets not ascending", name))
	}
	return &HistogramVec{r.family(name, help, histogramType, []string{labelKey}, buckets)}
}

// Value reads one metric's current value: counters and gauges return
// their value, histograms their observation count. labelValue selects the
// child of a labeled family — pass one value per label key, in
// registration order (omit for plain metrics). The second result is
// false when the family or child does not exist.
func (r *Registry) Value(name string, labelValue ...string) (float64, bool) {
	lv := strings.Join(labelValue, labelSep)
	r.mu.RLock()
	f := r.fams[name]
	r.mu.RUnlock()
	if f == nil {
		return 0, false
	}
	f.mu.Lock()
	m := f.kids[lv]
	f.mu.Unlock()
	if m == nil {
		return 0, false
	}
	return metricValue(m), true
}

// Sum totals every child of a family — e.g. the total of a by-category
// cost counter. Missing families sum to zero.
func (r *Registry) Sum(name string) float64 {
	r.mu.RLock()
	f := r.fams[name]
	r.mu.RUnlock()
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	total := 0.0
	for _, m := range f.kids {
		total += metricValue(m)
	}
	return total
}

func metricValue(m interface{}) float64 {
	switch v := m.(type) {
	case *Counter:
		return v.Value()
	case *Gauge:
		return v.Value()
	case *Histogram:
		return float64(v.Count())
	}
	return 0
}

// escapeLabel escapes a label value for the exposition format.
var escapeLabel = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
