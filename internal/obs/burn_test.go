package obs

import (
	"strings"
	"testing"
)

func engineSLO() SLO {
	return SLO{Kind: SLOE2E, ObjectiveSec: 10, Budget: 0.1, ShortSec: 120, LongSec: 720, FireBurn: 1}
}

// TestBurnEngineLifecycle drives one tenant through the full pending →
// firing → resolved lifecycle with deterministic observations.
func TestBurnEngineLifecycle(t *testing.T) {
	e := NewBurnEngine(engineSLO())
	if !e.Enabled() {
		t.Fatal("engine with an objective must be enabled")
	}

	// All good: no alert.
	for i := 0; i < 20; i++ {
		e.Observe("a", SLOE2E, float64(i), 1)
	}
	if tr := e.Evaluate(20); len(tr) != 0 {
		t.Fatalf("transitions on a healthy tenant: %+v", tr)
	}

	// Saturate both windows with violations: must go straight to firing
	// (short and long both hot).
	for i := 20; i < 40; i++ {
		e.Observe("a", SLOE2E, float64(i), 100)
	}
	tr := e.Evaluate(40)
	if len(tr) != 1 || tr[0].State != AlertFiring || tr[0].Tenant != "a" {
		t.Fatalf("expected a firing transition, got %+v", tr)
	}
	if tr[0].BurnShort < 1 || tr[0].BurnLong < 1 {
		t.Errorf("firing with cold windows: %+v", tr[0])
	}
	if e.Firing() != 1 {
		t.Errorf("Firing = %d, want 1", e.Firing())
	}
	// Steady state: no repeated transition.
	if tr := e.Evaluate(41); len(tr) != 0 {
		t.Errorf("re-fired without a state change: %+v", tr)
	}
	alerts := e.Alerts()
	if len(alerts) != 1 || alerts[0].State != AlertFiring {
		t.Fatalf("Alerts = %+v", alerts)
	}

	// Let both windows age out (t advances past the long window): the
	// alert resolves and moves to the history.
	tr = e.Evaluate(40 + 1000)
	if len(tr) != 1 || tr[0].State != AlertResolved {
		t.Fatalf("expected a resolved transition, got %+v", tr)
	}
	if e.Firing() != 0 {
		t.Errorf("Firing = %d after resolve", e.Firing())
	}
	alerts = e.Alerts()
	if len(alerts) != 1 || alerts[0].State != AlertResolved || alerts[0].ResolvedSim != 1040 {
		t.Fatalf("resolved history = %+v", alerts)
	}

	// Lifetime attainment survives the window reset.
	at := e.Attainments("a")
	if len(at) != 1 || at[0].Good != 20 || at[0].Total != 40 || at[0].Ratio != 0.5 {
		t.Errorf("Attainments = %+v", at)
	}
	// An unseen tenant reports a full ratio with zero observations.
	at = e.Attainments("ghost")
	if len(at) != 1 || at[0].Total != 0 || at[0].Ratio != 1 {
		t.Errorf("ghost Attainments = %+v", at)
	}
}

// TestBurnEnginePendingSubsides checks a short-window blip that never
// confirms in the long window goes back to ok without a transition.
func TestBurnEnginePendingSubsides(t *testing.T) {
	s := engineSLO()
	e := NewBurnEngine(s)
	// Build a healthy long-window history.
	for i := 0; i < 600; i++ {
		e.Observe("a", SLOE2E, float64(i), 1)
	}
	// A burst of violations hot enough for the short window (20 bad of
	// the ~120 observations inside it → burn ≈ 1.7) but diluted across
	// the long window (20 bad of ~620 → burn ≈ 0.3).
	for i := 600; i < 620; i++ {
		e.Observe("a", SLOE2E, float64(i), 100)
	}
	tr := e.Evaluate(620)
	if len(tr) != 1 || tr[0].State != AlertPending {
		t.Fatalf("expected pending, got %+v", tr)
	}
	// The burst ages out of the short window; the pending alert subsides
	// with no resolved event (it never paged).
	tr = e.Evaluate(620 + 2*s.ShortSec)
	if len(tr) != 0 {
		t.Fatalf("subsiding pending alert emitted %+v", tr)
	}
	if got := e.Alerts(); len(got) != 0 {
		t.Errorf("Alerts after subsiding = %+v", got)
	}
}

// TestBurnEngineDisabled pins the no-objective fast path.
func TestBurnEngineDisabled(t *testing.T) {
	var nilEngine *BurnEngine
	if nilEngine.Enabled() {
		t.Error("nil engine enabled")
	}
	e := NewBurnEngine()
	e.Observe("a", SLOE2E, 0, 100)
	if tr := e.Evaluate(10); tr != nil {
		t.Errorf("disabled engine evaluated: %+v", tr)
	}
	if e.Alerts() != nil || e.BurnRates() != nil || e.Attainments("a") != nil {
		t.Error("disabled engine returned data")
	}
}

// TestCounterVec2Exposition checks the two-label family renders both
// labels in registration order, sorted deterministically, and that
// Value addresses children by the label tuple.
func TestCounterVec2Exposition(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec2("test_cost_total", "Test chargeback.", "tenant", "category")
	v.With("b", "cpu").Add(3)
	v.With("a", "cpu").Add(1)
	v.With("a", "transfer").Add(2)

	if got, ok := r.Value("test_cost_total", "a", "cpu"); !ok || got != 1 {
		t.Errorf("Value(a,cpu) = %g, %v", got, ok)
	}
	if got := r.Sum("test_cost_total"); got != 6 {
		t.Errorf("Sum = %g", got)
	}

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_cost_total Test chargeback.
# TYPE test_cost_total counter
test_cost_total{tenant="a",category="cpu"} 1
test_cost_total{tenant="a",category="transfer"} 2
test_cost_total{tenant="b",category="cpu"} 3
`
	if b.String() != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", b.String(), want)
	}

	// Re-registering with a different shape must panic.
	defer func() {
		if recover() == nil {
			t.Error("expected panic on shape mismatch")
		}
	}()
	r.CounterVec("test_cost_total", "x", "tenant")
}
