package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
)

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	RegisterSim(reg)
	reg.Gauge(MSchedEpochNumber, "help").Set(3)

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !strings.Contains(srv.URL(), "http://127.0.0.1:") {
		t.Fatalf("unexpected URL %q", srv.URL())
	}

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	if code, body, _ := get("/healthz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body, ctype := get("/metrics")
	if code != 200 {
		t.Errorf("/metrics = %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ctype)
	}
	for _, fam := range []string{
		"# TYPE " + MSimDone + " counter",
		MSimCost + `{category="cpu"} 0`,
		MSimTasks + `{state="running"} 0`,
	} {
		if !strings.Contains(body, fam) {
			t.Errorf("/metrics missing %q:\n%s", fam, body)
		}
	}

	code, body, ctype = get("/progress")
	if code != 200 || !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/progress = %d, Content-Type %q", code, ctype)
	}
	var p Progress
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("/progress JSON: %v\n%s", err, body)
	}
	if p.Epoch != 3 {
		t.Errorf("/progress epoch = %d, want 3", p.Epoch)
	}

	if code, body, _ := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Errorf("/debug/pprof/cmdline = %d, %d bytes", code, len(body))
	}

	// Serve's default mux has no readiness probe: /readyz is always ok.
	if code, body, _ := get("/readyz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Errorf("/readyz = %d %q", code, body)
	}
}

// TestMuxReady splits liveness from readiness: /healthz stays 200 while
// the ready callback flips /readyz between 200 and 503.
func TestMuxReady(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	mux := MuxReady(NewRegistry(), ready.Load)
	srv, err := ServeHandler("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/readyz"); code != 200 {
		t.Errorf("ready /readyz = %d", code)
	}
	ready.Store(false)
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("not-ready /readyz = %d, want 503", code)
	}
	if code := get("/healthz"); code != 200 {
		t.Errorf("/healthz = %d during not-ready — liveness must not flip", code)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bad", NewRegistry()); err == nil {
		t.Error("bad address accepted")
	}
}
