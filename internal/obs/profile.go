package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiles owns a command's -cpuprofile/-memprofile lifecycle: start the
// CPU profile up front, write the heap profile at Stop. One shared
// implementation for lips-sim, lips-bench and lips-lp.
type Profiles struct {
	cpu     *os.File
	memPath string
}

// StartProfiles begins a CPU profile to cpuPath (when non-empty) and
// remembers memPath for Stop. Empty paths disable the respective
// profile; StartProfiles("", "") returns a no-op handle.
func StartProfiles(cpuPath, memPath string) (*Profiles, error) {
	p := &Profiles{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		p.cpu = f
	}
	return p, nil
}

// Stop flushes the CPU profile and writes the heap profile (after a GC,
// so the numbers reflect live memory). Call it before os.Exit — deferred
// calls do not run past Exit.
func (p *Profiles) Stop() error {
	var first error
	if p.cpu != nil {
		pprof.StopCPUProfile()
		if err := p.cpu.Close(); err != nil {
			first = err
		}
		p.cpu = nil
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			if first == nil {
				first = err
			}
			return first
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
			first = fmt.Errorf("heap profile: %w", err)
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		p.memPath = ""
	}
	return first
}
