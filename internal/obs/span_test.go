package obs

import (
	"fmt"
	"testing"
)

// TestSpanPhasesTelescope: with every milestone set, the four phases
// are adjacent and their durations sum exactly to the end-to-end
// latency.
func TestSpanPhasesTelescope(t *testing.T) {
	sp := NewSpan(7)
	sp.SubmittedSim, sp.AdmittedSim, sp.PlannedSim = 10, 60, 60
	sp.FirstLaunchSim, sp.DoneSim = 75, 300
	sp.Outcome = OutcomeDone

	phases := sp.Phases()
	wantNames := []string{"queue-wait", "plan-wait", "launch-wait", "execution"}
	if len(phases) != len(wantNames) {
		t.Fatalf("got %d phases %v, want %d", len(phases), phases, len(wantNames))
	}
	cur := sp.SubmittedSim
	var sum float64
	for i, p := range phases {
		if p.Name != wantNames[i] {
			t.Errorf("phase %d named %q, want %q", i, p.Name, wantNames[i])
		}
		if p.StartSim != cur {
			t.Errorf("phase %q starts at %g, previous ended at %g", p.Name, p.StartSim, cur)
		}
		if p.DurSim != p.EndSim-p.StartSim {
			t.Errorf("phase %q duration %g != end-start %g", p.Name, p.DurSim, p.EndSim-p.StartSim)
		}
		cur = p.EndSim
		sum += p.DurSim
	}
	if e2e := sp.E2ESim(); sum != e2e || e2e != 290 {
		t.Errorf("phase durations sum to %g, e2e %g, want 290", sum, e2e)
	}
}

// TestSpanPhasesSkipUnset: milestones that never happened are skipped
// and the next segment absorbs their time; a launch at simulated second
// zero is a legal timestamp, not "unset".
func TestSpanPhasesSkipUnset(t *testing.T) {
	sp := NewSpan(0)
	sp.SubmittedSim, sp.AdmittedSim, sp.DoneSim = 0, 0, 120
	sp.Outcome = OutcomeDone
	phases := sp.Phases()
	if len(phases) != 2 || phases[0].Name != "queue-wait" || phases[1].Name != "execution" {
		t.Fatalf("phases %v, want zero-length queue-wait then execution", phases)
	}
	if phases[1].DurSim != 120 {
		t.Errorf("execution absorbed %g, want 120", phases[1].DurSim)
	}

	unset := NewSpan(1)
	if got := unset.Phases(); got != nil {
		t.Errorf("span with no milestones has phases %v", got)
	}
	if unset.E2ESim() != -1 {
		t.Errorf("unfinished span e2e %g, want -1", unset.E2ESim())
	}
}

// TestSpanPhasesOutcomeRename: a cancelled or shed span names its final
// segment after the outcome.
func TestSpanPhasesOutcomeRename(t *testing.T) {
	sp := NewSpan(3)
	sp.SubmittedSim, sp.AdmittedSim, sp.DoneSim = 5, 10, 40
	sp.Outcome = OutcomeCancelled
	phases := sp.Phases()
	if n := len(phases); n == 0 || phases[n-1].Name != OutcomeCancelled {
		t.Errorf("cancelled span phases %v, want final phase %q", phases, OutcomeCancelled)
	}

	shed := NewSpan(-1)
	shed.SubmittedSim, shed.DoneSim = 30, 30
	shed.Outcome, shed.Reason = OutcomeShed, ReasonQueueCap
	phases = shed.Phases()
	if len(phases) != 1 || phases[0].Name != OutcomeShed || phases[0].DurSim != 0 {
		t.Errorf("shed span phases %v, want one zero-length %q phase", phases, OutcomeShed)
	}
}

// TestSpanRingBounds: the ring retains exactly the last n spans oldest
// first while Total keeps counting everything ever added.
func TestSpanRingBounds(t *testing.T) {
	r := NewSpanRing(4)
	for i := 0; i < 10; i++ {
		sp := NewSpan(i)
		sp.Outcome = OutcomeDone
		r.Add(sp)
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot holds %d spans, want 4", len(got))
	}
	for i, sp := range got {
		if sp.Job != 6+i {
			t.Errorf("slot %d holds job %d, want %d (oldest first)", i, sp.Job, 6+i)
		}
	}
	if r.Total() != 10 {
		t.Errorf("total %d, want 10", r.Total())
	}
	if n := len(NewSpanRing(0).buf); n != 1024 {
		t.Errorf("default ring size %d, want 1024", n)
	}
}

// TestDeferralReasonsClosed guards the taxonomy the HTTP surfaces and
// smoke scripts validate against.
func TestDeferralReasonsClosed(t *testing.T) {
	want := map[string]bool{
		ReasonQueueCap: true, ReasonSolverBackpressure: true,
		ReasonDraining: true, ReasonFairShare: true, ReasonNoCapacity: true,
		ReasonBudgetExhausted: true,
	}
	if len(DeferralReasons) != len(want) {
		t.Fatalf("DeferralReasons %v does not match the documented taxonomy", DeferralReasons)
	}
	for _, r := range DeferralReasons {
		if !want[r] {
			t.Errorf("unexpected reason %q", r)
		}
	}
	if fmt.Sprint(SpanOutcomes) != fmt.Sprint([]string{OutcomeDone, OutcomeCancelled, OutcomeShed}) {
		t.Errorf("SpanOutcomes %v", SpanOutcomes)
	}
	s := NewSpan(2)
	if s.SubmittedSim != -1 || s.AdmittedSim != -1 || s.PlannedSim != -1 ||
		s.FirstLaunchSim != -1 || s.DoneSim != -1 {
		t.Errorf("NewSpan milestones not -1: %+v", s)
	}
}
