package obs

import (
	"sync"
	"testing"
)

// TestRegisterBundlesIdempotent pins the regression where a scheduler's
// Init re-registering the metric families on a reused registry (one
// sim.Run after another) panicked on duplicate names: repeated Register*
// calls must return the same bundle pointers.
func TestRegisterBundlesIdempotent(t *testing.T) {
	r := NewRegistry()
	sim1, sim2 := RegisterSim(r), RegisterSim(r)
	if sim1 != sim2 {
		t.Error("RegisterSim returned distinct bundles on repeat call")
	}
	sched1, sched2 := RegisterSched(r), RegisterSched(r)
	if sched1 != sched2 {
		t.Error("RegisterSched returned distinct bundles on repeat call")
	}
	lp1, lp2 := RegisterLP(r), RegisterLP(r)
	if lp1 != lp2 {
		t.Error("RegisterLP returned distinct bundles on repeat call")
	}
	// Counters accumulate across re-registration rather than resetting.
	lp1.Solves.Inc()
	if got, ok := r.Value(MLPSolves); !ok || got != 1 {
		t.Errorf("solves after re-registration = %g (ok=%v), want 1", got, ok)
	}
	RegisterLP(r).Solves.Inc()
	if got, _ := r.Value(MLPSolves); got != 2 {
		t.Errorf("solves after third registration = %g, want 2", got)
	}
}

// TestRegisterBundlesConcurrent hammers the three registration entry
// points from many goroutines; the race detector plus pointer equality
// catch double-construction.
func TestRegisterBundlesConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	sims := make([]*SimMetrics, 16)
	lps := make([]*LPMetrics, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sims[i] = RegisterSim(r)
			lps[i] = RegisterLP(r)
		}(i)
	}
	wg.Wait()
	for i := 1; i < 16; i++ {
		if sims[i] != sims[0] || lps[i] != lps[0] {
			t.Fatalf("goroutine %d got a different bundle", i)
		}
	}
}
