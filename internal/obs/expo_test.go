package obs

import (
	"strings"
	"testing"
)

// TestWriteProm pins the exposition format byte-for-byte: HELP/TYPE
// preamble, sorted families, sorted label values, cumulative histogram
// buckets with the implicit +Inf, and _sum/_count trailers.
func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Gauge("b_gauge", "A gauge.").Set(2.5)
	r.Counter("a_total", "A counter.").Add(3)
	v := r.CounterVec("c_total", "A labeled counter.", "kind")
	v.With("y").Add(2)
	v.With("x").Inc()
	v.With(`q"uo\te` + "\n").Inc()
	h := r.Histogram("d_seconds", "A histogram.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(10)

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_total A counter.
# TYPE a_total counter
a_total 3
# HELP b_gauge A gauge.
# TYPE b_gauge gauge
b_gauge 2.5
# HELP c_total A labeled counter.
# TYPE c_total counter
c_total{kind="q\"uo\\te\n"} 1
c_total{kind="x"} 1
c_total{kind="y"} 2
# HELP d_seconds A histogram.
# TYPE d_seconds histogram
d_seconds_bucket{le="0.1"} 1
d_seconds_bucket{le="1"} 2
d_seconds_bucket{le="+Inf"} 3
d_seconds_sum 10.55
d_seconds_count 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestWritePromLabeledHistogram pins the labeled-histogram exposition: a
// tenant name with backslash, quote and newline must appear escaped on
// every bucket line AND on the _sum/_count trailers (the trailers used
// to drop the label, which merges all tenants into one series).
func TestWritePromLabeledHistogram(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("h_seconds", "A labeled histogram.", "tenant", []float64{1, 10})
	v.With("plain").Observe(0.5)
	weird := "a\\b\"c\nd"
	v.With(weird).Observe(5)
	v.With(weird).Observe(50)

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP h_seconds A labeled histogram.
# TYPE h_seconds histogram
h_seconds_bucket{tenant="a\\b\"c\nd",le="1"} 0
h_seconds_bucket{tenant="a\\b\"c\nd",le="10"} 1
h_seconds_bucket{tenant="a\\b\"c\nd",le="+Inf"} 2
h_seconds_sum{tenant="a\\b\"c\nd"} 55
h_seconds_count{tenant="a\\b\"c\nd"} 2
h_seconds_bucket{tenant="plain",le="1"} 1
h_seconds_bucket{tenant="plain",le="10"} 1
h_seconds_bucket{tenant="plain",le="+Inf"} 1
h_seconds_sum{tenant="plain"} 0.5
h_seconds_count{tenant="plain"} 1
`
	if got := b.String(); got != want {
		t.Errorf("labeled histogram exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}
