package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WriteProm renders every family in the Prometheus text exposition
// format (version 0.0.4): a # HELP and # TYPE line per family, then one
// sample line per child, families and label values in sorted order so
// the output is deterministic for a given registry state.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		f.mu.Lock()
		keys := make([]string, 0, len(f.kids))
		for k := range f.kids {
			keys = append(keys, k)
		}
		kids := make([]interface{}, len(keys))
		sort.Strings(keys)
		for i, k := range keys {
			kids[i] = f.kids[k]
		}
		f.mu.Unlock()
		for i, k := range keys {
			if err := writeChild(w, f, k, kids[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeChild renders one child's sample lines.
func writeChild(w io.Writer, f *family, labelValue string, m interface{}) error {
	switch v := m.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s %s\n", seriesName(f, labelValue, ""), formatVal(v.Value()))
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s %s\n", seriesName(f, labelValue, ""), formatVal(v.Value()))
		return err
	case *Histogram:
		cum := uint64(0)
		for i, upper := range v.upper {
			cum += v.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(f, labelValue, formatVal(upper)), cum); err != nil {
				return err
			}
		}
		cum += v.counts[len(v.upper)].Load()
		if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(f, labelValue, "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", suffixedName(f, labelValue, "_sum"), formatVal(v.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", suffixedName(f, labelValue, "_count"), v.Count())
		return err
	}
	return nil
}

// labelPairs renders a family's `key="value"` pairs in registration
// order from a child's labelSep-joined key.
func labelPairs(f *family, labelValue string) []string {
	if len(f.labelKeys) == 0 {
		return nil
	}
	vals := strings.SplitN(labelValue, labelSep, len(f.labelKeys))
	pairs := make([]string, len(f.labelKeys))
	for i, k := range f.labelKeys {
		v := ""
		if i < len(vals) {
			v = vals[i]
		}
		pairs[i] = k + `="` + escapeLabel.Replace(v) + `"`
	}
	return pairs
}

// suffixedName builds `name_sum{label="value"}`-style series names for a
// histogram's _sum and _count trailers, carrying the family labels (when
// any) but no le.
func suffixedName(f *family, labelValue, suffix string) string {
	pairs := labelPairs(f, labelValue)
	if len(pairs) == 0 {
		return f.name + suffix
	}
	return f.name + suffix + "{" + strings.Join(pairs, ",") + "}"
}

// seriesName builds `name{label="value"}`, `name_bucket{le="..."}` and
// the combined forms for labeled histograms.
func seriesName(f *family, labelValue, le string) string {
	name := f.name
	labels := labelPairs(f, labelValue)
	if le != "" {
		name += "_bucket"
		labels = append(labels, `le="`+le+`"`)
	}
	if len(labels) == 0 {
		return name
	}
	return name + "{" + strings.Join(labels, ",") + "}"
}

// formatVal renders a sample value: integers without an exponent, +Inf
// as Prometheus spells it.
func formatVal(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
