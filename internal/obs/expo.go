package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// WriteProm renders every family in the Prometheus text exposition
// format (version 0.0.4): a # HELP and # TYPE line per family, then one
// sample line per child, families and label values in sorted order so
// the output is deterministic for a given registry state.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		f.mu.Lock()
		keys := make([]string, 0, len(f.kids))
		for k := range f.kids {
			keys = append(keys, k)
		}
		kids := make([]interface{}, len(keys))
		sort.Strings(keys)
		for i, k := range keys {
			kids[i] = f.kids[k]
		}
		f.mu.Unlock()
		for i, k := range keys {
			if err := writeChild(w, f, k, kids[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeChild renders one child's sample lines.
func writeChild(w io.Writer, f *family, labelValue string, m interface{}) error {
	switch v := m.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s %s\n", seriesName(f, labelValue, ""), formatVal(v.Value()))
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s %s\n", seriesName(f, labelValue, ""), formatVal(v.Value()))
		return err
	case *Histogram:
		cum := uint64(0)
		for i, upper := range v.upper {
			cum += v.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(f, labelValue, formatVal(upper)), cum); err != nil {
				return err
			}
		}
		cum += v.counts[len(v.upper)].Load()
		if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(f, labelValue, "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", suffixedName(f, labelValue, "_sum"), formatVal(v.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", suffixedName(f, labelValue, "_count"), v.Count())
		return err
	}
	return nil
}

// suffixedName builds `name_sum{label="value"}`-style series names for a
// histogram's _sum and _count trailers, carrying the family label (when
// any) but no le.
func suffixedName(f *family, labelValue, suffix string) string {
	if f.labelKey == "" {
		return f.name + suffix
	}
	return f.name + suffix + "{" + f.labelKey + `="` + escapeLabel.Replace(labelValue) + `"}`
}

// seriesName builds `name{label="value"}`, `name_bucket{le="..."}` and
// the combined forms for labeled histograms.
func seriesName(f *family, labelValue, le string) string {
	name := f.name
	var labels []string
	if le != "" {
		name += "_bucket"
		labels = append(labels, `le="`+le+`"`)
	}
	if f.labelKey != "" {
		labels = append([]string{f.labelKey + `="` + escapeLabel.Replace(labelValue) + `"`}, labels...)
	}
	if len(labels) == 0 {
		return name
	}
	out := name + "{" + labels[0]
	for _, l := range labels[1:] {
		out += "," + l
	}
	return out + "}"
}

// formatVal renders a sample value: integers without an exponent, +Inf
// as Prometheus spells it.
func formatVal(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
