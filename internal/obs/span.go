package obs

import "sync"

// Job-scoped spans: one Span records the phase milestones of a single
// submission — submit → queued → admitted → epoch-planned → first-launch
// → done/cancelled/shed — in simulated seconds, plus the admitting serve
// epoch and the job's exact ledger cost in microcents. Spans are
// pull-based: the simulator and the serve daemon stamp plain fields on
// their existing records and assemble a Span on demand, so the disabled
// path costs nothing and same-seed runs stay byte-identical.
//
// A milestone that has not happened yet is -1, never 0 — simulated time
// starts at zero, so zero is a legal timestamp.

// Span outcomes.
const (
	OutcomeDone      = "done"      // every task completed
	OutcomeCancelled = "cancelled" // withdrawn by the tenant
	OutcomeShed      = "shed"      // refused at admission (429/503)
)

// Deferral and shed reasons — the typed taxonomy every 429, 503 and
// epoch deferral carries (DESIGN.md par.14).
const (
	// ReasonQueueCap: the admission queue was full (429).
	ReasonQueueCap = "queue-cap"
	// ReasonSolverBackpressure: the queue was half full while every
	// solver token was busy (429 before breakdown).
	ReasonSolverBackpressure = "solver-backpressure"
	// ReasonDraining: the daemon was shutting down (503).
	ReasonDraining = "draining"
	// ReasonFairShare: the job lost this epoch's tenant-fair admission
	// ranking to the AdmitPerEpoch batch bound and stayed queued.
	ReasonFairShare = "fair-share-rank"
	// ReasonNoCapacity: the job is admitted but the epoch LP parked part
	// of its work on the fake overflow node (no capacity this epoch).
	ReasonNoCapacity = "no-capacity"
	// ReasonBudgetExhausted: the tenant's configured dollar budget is
	// spent, so its queued jobs sit out the admission ranking until the
	// operator raises the budget.
	ReasonBudgetExhausted = "budget-exhausted"
)

// DeferralReasons is the closed vocabulary of Span.Reason and epoch
// deferral reasons, for pre-registration and validation.
var DeferralReasons = []string{
	ReasonQueueCap, ReasonSolverBackpressure, ReasonDraining,
	ReasonFairShare, ReasonNoCapacity, ReasonBudgetExhausted,
}

// SpanOutcomes is the closed vocabulary of Span.Outcome.
var SpanOutcomes = []string{OutcomeDone, OutcomeCancelled, OutcomeShed}

// Span is one job's phase timeline. All timestamps are simulated
// seconds; unset milestones are -1 (use NewSpan).
type Span struct {
	Job    int    `json:"job"`
	Name   string `json:"name,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	// Outcome is empty while the job is still in flight.
	Outcome string `json:"outcome,omitempty"`
	// Reason explains a shed outcome (DeferralReasons).
	Reason string `json:"reason,omitempty"`
	// Epoch is the serve epoch that admitted the job (0 outside serve
	// mode).
	Epoch int64 `json:"epoch,omitempty"`

	SubmittedSim   float64 `json:"submitted_sim"`    // accepted into the system
	AdmittedSim    float64 `json:"admitted_sim"`     // entered the simulator
	PlannedSim     float64 `json:"planned_sim"`      // an epoch plan first pinned a task
	FirstLaunchSim float64 `json:"first_launch_sim"` // first primary attempt started
	DoneSim        float64 `json:"done_sim"`         // terminal (done or cancelled)

	// CostUC is the job's exact ledger charge in microcents so far.
	CostUC int64 `json:"cost_uc"`
}

// NewSpan returns a span for one job with every milestone unset.
func NewSpan(job int) Span {
	return Span{
		Job: job, SubmittedSim: -1, AdmittedSim: -1, PlannedSim: -1,
		FirstLaunchSim: -1, DoneSim: -1,
	}
}

// Phase is one segment of a span's timeline.
type Phase struct {
	Name     string  `json:"name"`
	StartSim float64 `json:"start_sim"`
	EndSim   float64 `json:"end_sim"`
	DurSim   float64 `json:"dur_sim"`
}

// Phases decomposes the span into adjacent segments between its set
// milestones: queue-wait (submitted → admitted), plan-wait (admitted →
// planned), launch-wait (planned → first launch) and execution (first
// launch → done). Unset milestones are skipped and the next segment
// absorbs their time, so the durations always telescope to the span's
// end-to-end latency; the final segment of a cancelled or shed job is
// named after the outcome instead of "execution".
func (s *Span) Phases() []Phase {
	if s.SubmittedSim < 0 {
		return nil
	}
	marks := []struct {
		name string
		t    float64
	}{
		{"queue-wait", s.AdmittedSim},
		{"plan-wait", s.PlannedSim},
		{"launch-wait", s.FirstLaunchSim},
		{"execution", s.DoneSim},
	}
	var out []Phase
	cur := s.SubmittedSim
	for _, m := range marks {
		if m.t < 0 || m.t < cur {
			continue
		}
		name := m.name
		if m.t == s.DoneSim && name == "execution" &&
			(s.Outcome == OutcomeCancelled || s.Outcome == OutcomeShed) {
			name = s.Outcome
		}
		out = append(out, Phase{Name: name, StartSim: cur, EndSim: m.t, DurSim: m.t - cur})
		cur = m.t
	}
	return out
}

// E2ESim returns the span's end-to-end latency in simulated seconds, or
// -1 while the job has not reached a terminal state.
func (s *Span) E2ESim() float64 {
	if s.DoneSim < 0 || s.SubmittedSim < 0 {
		return -1
	}
	return s.DoneSim - s.SubmittedSim
}

// SpanRing is a bounded, concurrency-safe ring of completed spans — the
// daemon's after-the-fact explainability buffer. Once full, each Add
// evicts the oldest span; Total keeps counting.
type SpanRing struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	full  bool
	total int64
}

// NewSpanRing returns a ring holding up to n spans (n <= 0 selects 1024).
func NewSpanRing(n int) *SpanRing {
	if n <= 0 {
		n = 1024
	}
	return &SpanRing{buf: make([]Span, n)}
}

// Add records one completed span.
func (r *SpanRing) Add(s Span) {
	r.mu.Lock()
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.total++
	r.mu.Unlock()
}

// Snapshot returns the retained spans, oldest first.
func (r *SpanRing) Snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Span(nil), r.buf[:r.next]...)
	}
	out := make([]Span, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Total returns how many spans have ever been added.
func (r *SpanRing) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
