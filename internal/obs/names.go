package obs

// Metric families, one vocabulary for the live instrumentation
// (internal/sim, internal/sched, internal/lp) and the offline trace
// replay sink (TraceSink), so a Prometheus scrape of a running
// simulation and `lips-trace -metrics` over its JSONL trace line up.
// Naming scheme (documented in DESIGN.md par.10): lips_<layer>_<what>,
// base units (seconds, microcents, megabytes), counters suffixed _total.
const (
	// Simulator layer: task lifecycle counters, sampled state gauges,
	// per-category cost counters.
	MSimClockSeconds    = "lips_sim_clock_seconds"
	MSimTasks           = "lips_sim_tasks"
	MSimFreeSlots       = "lips_sim_free_slots"
	MSimLiveSlots       = "lips_sim_live_slots"
	MSimBusySlotSeconds = "lips_sim_busy_slot_seconds"
	MSimCost            = "lips_sim_cost_microcents_total"
	MCost               = "lips_cost_microcents_total"
	MSimEnqueued        = "lips_sim_tasks_enqueued_total"
	MSimLaunched        = "lips_sim_tasks_launched_total"
	MSimDone            = "lips_sim_tasks_done_total"
	MSimKilled          = "lips_sim_tasks_killed_total"
	MSimMoves           = "lips_sim_blocks_moved_total"
	MSimMovedMB         = "lips_sim_moved_megabytes_total"
	MSimFaults          = "lips_sim_faults_injected_total"

	// Scheduler layer (LiPS epochs).
	MSchedEpochs       = "lips_sched_epochs_total"
	MSchedEpochNumber  = "lips_sched_epoch_number"
	MSchedDeferred     = "lips_sched_deferred_tasks"
	MSchedWarmOffers   = "lips_sched_warm_start_offers_total"
	MSchedWarmHits     = "lips_sched_warm_start_hits_total"
	MSchedLaunched     = "lips_sched_tasks_launched_total"
	MSchedIters        = "lips_sched_epoch_iterations"
	MSchedSolveSeconds = "lips_sched_epoch_solve_seconds"

	// LP solver layer.
	MLPSolves          = "lips_lp_solves_total"
	MLPIters           = "lips_lp_iterations_total"
	MLPPhase1          = "lips_lp_phase1_iterations_total"
	MLPWarmStarts      = "lips_lp_warm_starts_total"
	MLPRefactor        = "lips_lp_refactorizations_total"
	MLPPresolveRows    = "lips_lp_presolve_rows_removed_total"
	MLPPresolveCols    = "lips_lp_presolve_cols_removed_total"
	MLPSolveSeconds    = "lips_lp_solve_seconds_total"
	MLPPricingSeconds  = "lips_lp_pricing_seconds_total"
	MLPFactorSeconds   = "lips_lp_factor_seconds_total"
	MLPPresolveSeconds = "lips_lp_presolve_seconds_total"
	MLPPricingWorkers  = "lips_lp_pricing_workers"
	MLPDualPivots      = "lips_lp_dual_pivots_total"
	MLPColGenRounds    = "lips_lp_colgen_rounds_total"
	MLPColGenColumns   = "lips_lp_colgen_columns_total"

	// Service layer (the lips-serve daemon).
	MServeQueueDepth    = "lips_serve_queue_depth"
	MServeTenants       = "lips_serve_tenants"
	MServeSimSeconds    = "lips_serve_sim_seconds"
	MServeEpochs        = "lips_serve_epochs_total"
	MServeAdmissions    = "lips_serve_admission_total"
	MServeJobsDone      = "lips_serve_jobs_done_total"
	MServeJobsCancelled = "lips_serve_jobs_cancelled_total"
	MServeChurn         = "lips_serve_churn_total"
	MServeSubmitSeconds = "lips_serve_submit_latency_seconds"
	MServeLaunchSeconds = "lips_serve_first_launch_seconds"

	// Span-derived serve families (PR 9): per-tenant latency histograms
	// in simulated seconds, the shed/span taxonomy counters, and the
	// share of each epoch's wall budget spent inside the solver step.
	MServeQueueWait    = "lips_serve_tenant_queue_wait_seconds"
	MServeTenantLaunch = "lips_serve_tenant_first_launch_seconds"
	MServeTenantE2E    = "lips_serve_tenant_e2e_seconds"
	MServeSheds        = "lips_serve_shed_total"
	MServeSpans        = "lips_serve_spans_total"
	MServeSolveShare   = "lips_serve_epoch_solve_share"

	// SLO burn-rate engine (PR 10): per-tenant burn-rate gauges over the
	// short and long rolling windows, alert state transitions, and the
	// count of currently firing alerts.
	MServeBurnRate         = "lips_serve_slo_burn_rate"
	MServeAlertTransitions = "lips_serve_slo_alert_transitions_total"
	MServeAlertsFiring     = "lips_serve_slo_alerts_firing"
)

// Label vocabularies, pre-registered so expositions show every series
// at zero from the first scrape (and so the trace replay registers the
// identical family shapes).
var (
	// CostCategories mirrors internal/cost's Category values.
	CostCategories = []string{"cpu", "transfer", "placement", "speculative", "fault"}
	// Localities mirrors internal/metrics Locality.String values.
	Localities = []string{"node-local", "zone-local", "remote", "no-input"}
	// TaskStates mirrors internal/sim's TaskState lifecycle.
	TaskStates = []string{"pending", "queued", "running", "done"}
	// KillReasons are the simulator's traceKill reason strings.
	KillReasons = []string{"timeout", "speculative", "preempt", "dequeue", "node-crash", "store-loss", "cancel"}
	// MoveReasons are the simulator's block-relocation reasons.
	MoveReasons = []string{"plan", "re-replicate", "re-materialize"}
	// FaultKinds mirrors internal/sim FaultKind.String values.
	FaultKinds = []string{"node-down", "node-up", "store-loss", "slowdown"}
	// AdmissionDecisions label lips_serve_admission_total.
	AdmissionDecisions = []string{"accepted", "rejected", "draining"}
	// AlertStates label lips_serve_slo_alert_transitions_total: the
	// burn-rate state machine's pending → firing → resolved lifecycle.
	AlertStates = []string{AlertPending, AlertFiring, AlertResolved}
)

// SimMetrics bundles the simulator's metric handles. Counters are exact
// (bumped at the same chokepoints that emit trace events and ledger
// charges); the gauges are refreshed on the simulated-time sampling
// cadence and so lag by at most one interval.
type SimMetrics struct {
	Clock, BusySlot, FreeSlots, LiveSlots *Gauge
	Tasks                                 *GaugeVec // by state
	Enqueued, Done, MovedMB               *Counter
	Cost                                  map[string]*Counter // by category
	TenantCost                            *CounterVec2        // by tenant, category
	Launched                              map[string]*Counter // by locality
	Killed, Moves, Faults                 *CounterVec         // by reason / reason / kind
}

// RegisterSim registers (or fetches) the simulator families. Calling it
// again on the same registry returns the identical bundle.
func RegisterSim(r *Registry) *SimMetrics {
	return r.bundle("sim", func() any { return registerSim(r) }).(*SimMetrics)
}

func registerSim(r *Registry) *SimMetrics {
	m := &SimMetrics{
		Clock:     r.Gauge(MSimClockSeconds, "Simulated clock at the last gauge refresh, in seconds."),
		BusySlot:  r.Gauge(MSimBusySlotSeconds, "Cumulative busy slot-seconds at the last gauge refresh."),
		FreeSlots: r.Gauge(MSimFreeSlots, "Free task slots on live nodes at the last gauge refresh."),
		LiveSlots: r.Gauge(MSimLiveSlots, "Total task slots on live nodes at the last gauge refresh."),
		Tasks:     r.GaugeVec(MSimTasks, "Tasks of arrived jobs by lifecycle state at the last gauge refresh.", "state"),
		Enqueued:  r.Counter(MSimEnqueued, "Tasks pinned to a node queue."),
		Done:      r.Counter(MSimDone, "Task completions."),
		MovedMB:   r.Counter(MSimMovedMB, "Megabytes relocated between stores."),
		Cost:      make(map[string]*Counter, len(CostCategories)),
		Launched:  make(map[string]*Counter, len(Localities)),
		Killed:    r.CounterVec(MSimKilled, "Attempts killed, by reason.", "reason"),
		Moves:     r.CounterVec(MSimMoves, "Blocks relocated between stores, by reason.", "reason"),
		Faults:    r.CounterVec(MSimFaults, "Injected faults, by kind.", "kind"),
	}
	costVec := r.CounterVec(MSimCost, "Ledger charges in exact microcents, by category.", "category")
	for _, c := range CostCategories {
		m.Cost[c] = costVec.With(c)
	}
	m.TenantCost = r.CounterVec2(MCost, "Chargeback ledger in exact microcents, by owning tenant and category.",
		"tenant", "category")
	launchVec := r.CounterVec(MSimLaunched, "Attempt launches, by input locality.", "locality")
	for _, l := range Localities {
		m.Launched[l] = launchVec.With(l)
	}
	for _, s := range TaskStates {
		m.Tasks.With(s)
	}
	for _, k := range KillReasons {
		m.Killed.With(k)
	}
	for _, k := range MoveReasons {
		m.Moves.With(k)
	}
	for _, k := range FaultKinds {
		m.Faults.With(k)
	}
	return m
}

// SchedMetrics bundles the LiPS epoch-loop handles.
type SchedMetrics struct {
	Epochs, WarmOffers, WarmHits, Launched *Counter
	EpochNumber, Deferred                  *Gauge
	Iterations, SolveSeconds               *Histogram
}

// RegisterSched registers (or fetches) the scheduler families. Calling it
// again on the same registry returns the identical bundle.
func RegisterSched(r *Registry) *SchedMetrics {
	return r.bundle("sched", func() any { return registerSched(r) }).(*SchedMetrics)
}

func registerSched(r *Registry) *SchedMetrics {
	return &SchedMetrics{
		Epochs:      r.Counter(MSchedEpochs, "Scheduling epochs with queued work (LP solves attempted)."),
		WarmOffers:  r.Counter(MSchedWarmOffers, "Epoch solves offered the previous epoch's basis."),
		WarmHits:    r.Counter(MSchedWarmHits, "Epoch solves that accepted the warm-start basis."),
		Launched:    r.Counter(MSchedLaunched, "Tasks enqueued by epoch plans."),
		EpochNumber: r.Gauge(MSchedEpochNumber, "Number of the most recent scheduling epoch."),
		Deferred:    r.Gauge(MSchedDeferred, "Tasks the last epoch's LP parked on the fake overflow node."),
		Iterations: r.Histogram(MSchedIters, "Simplex iterations per epoch solve.",
			[]float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}),
		SolveSeconds: r.Histogram(MSchedSolveSeconds, "Wall-clock seconds per epoch LP solve (machine-dependent).",
			// 100µs … 10s in half-decade steps.
			[]float64{1e-4, 3.16e-4, 1e-3, 3.16e-3, 0.01, 0.0316, 0.1, 0.316, 1, 3.16, 10}),
	}
}

// LPMetrics bundles the simplex-solver handles. Pricing-worker
// utilization is derivable as
// lips_lp_pricing_seconds_total / (lips_lp_solve_seconds_total · lips_lp_pricing_workers).
type LPMetrics struct {
	Solves, Iterations, Phase1, WarmStarts       *Counter
	Refactorizations, PresolveRows, PresolveCols *Counter
	SolveSeconds, PricingSeconds, FactorSeconds  *Counter
	PresolveSeconds                              *Counter
	PricingWorkers                               *Gauge
	DualPivots, ColGenRounds, ColGenColumns      *Counter
}

// RegisterLP registers (or fetches) the LP solver families. Calling it
// again on the same registry returns the identical bundle.
func RegisterLP(r *Registry) *LPMetrics {
	return r.bundle("lp", func() any { return registerLP(r) }).(*LPMetrics)
}

// ServeMetrics bundles the lips-serve daemon's handles. Submit latency is
// wall-clock (the daemon's SLO); first-launch latency is simulated time
// (submit arrival to the task's first slot, the queueing delay the epoch
// planner imposes). The per-tenant histograms are observed exactly once
// per completed span (QueueWait when the job was admitted, TenantLaunch
// when it launched, TenantE2E on every done/cancelled terminal), so
// their counts reconcile with the span ring and the Spans counter.
type ServeMetrics struct {
	QueueDepth, Tenants, SimSeconds *Gauge
	Epochs, JobsDone, JobsCancelled *Counter
	Admissions, Churn               *CounterVec // by decision / by kind
	SubmitSeconds, LaunchSeconds    *Histogram

	QueueWait, TenantLaunch, TenantE2E *HistogramVec // by tenant, sim seconds
	Sheds                              *CounterVec   // by typed reason
	Spans                              *CounterVec   // by outcome
	SolveShare                         *Histogram    // step wall / epoch wall budget

	BurnRate         *GaugeVec2  // by tenant, window (short/long)
	AlertTransitions *CounterVec // by state entered
	AlertsFiring     *Gauge
}

// RegisterServe registers (or fetches) the daemon families. Calling it
// again on the same registry returns the identical bundle.
func RegisterServe(r *Registry) *ServeMetrics {
	return r.bundle("serve", func() any { return registerServe(r) }).(*ServeMetrics)
}

func registerServe(r *Registry) *ServeMetrics {
	m := &ServeMetrics{
		QueueDepth:    r.Gauge(MServeQueueDepth, "Jobs accepted but not yet admitted into the simulation."),
		Tenants:       r.Gauge(MServeTenants, "Distinct tenants seen since the daemon started."),
		SimSeconds:    r.Gauge(MServeSimSeconds, "Simulated clock of the serving cluster, in seconds."),
		Epochs:        r.Counter(MServeEpochs, "Serve epochs driven (each advances the simulation one epoch)."),
		JobsDone:      r.Counter(MServeJobsDone, "Submitted jobs that ran to completion."),
		JobsCancelled: r.Counter(MServeJobsCancelled, "Submitted jobs withdrawn by cancellation."),
		Admissions:    r.CounterVec(MServeAdmissions, "Submission admission decisions.", "decision"),
		Churn:         r.CounterVec(MServeChurn, "Node churn events applied via the admin API.", "kind"),
		SubmitSeconds: r.Histogram(MServeSubmitSeconds, "Wall-clock seconds from submit receipt to admission decision.",
			// 100µs … 10s in half-decade steps, the submit-SLO range.
			[]float64{1e-4, 3.16e-4, 1e-3, 3.16e-3, 0.01, 0.0316, 0.1, 0.316, 1, 3.16, 10}),
		LaunchSeconds: r.Histogram(MServeLaunchSeconds, "Simulated seconds from submission to a job's first task launch.",
			ExpBuckets(1, 2, 14)), // 1s … 8192s, epoch-scale queueing delays
		QueueWait: r.HistogramVec(MServeQueueWait, "Simulated seconds a job waited in the admission queue, by tenant.",
			"tenant", ExpBuckets(1, 2, 14)),
		TenantLaunch: r.HistogramVec(MServeTenantLaunch, "Simulated seconds from submission to first task launch, by tenant.",
			"tenant", ExpBuckets(1, 2, 14)),
		TenantE2E: r.HistogramVec(MServeTenantE2E, "Simulated seconds from submission to a terminal state, by tenant.",
			"tenant", ExpBuckets(1, 2, 16)),
		Sheds: r.CounterVec(MServeSheds, "Submissions refused at admission, by typed reason.", "reason"),
		Spans: r.CounterVec(MServeSpans, "Completed job spans recorded, by outcome.", "outcome"),
		SolveShare: r.Histogram(MServeSolveShare, "Fraction of the epoch wall budget spent stepping the simulator (solver included).",
			[]float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 0.75, 1, 1.5, 2, 5, 10}),
	}
	for _, d := range AdmissionDecisions {
		m.Admissions.With(d)
	}
	for _, k := range []string{"down", "up"} {
		m.Churn.With(k)
	}
	for _, k := range []string{ReasonQueueCap, ReasonSolverBackpressure, ReasonDraining} {
		m.Sheds.With(k)
	}
	for _, o := range SpanOutcomes {
		m.Spans.With(o)
	}
	m.BurnRate = r.GaugeVec2(MServeBurnRate, "SLO error-budget burn rate at the last evaluation, by tenant and window.",
		"tenant", "window")
	m.AlertTransitions = r.CounterVec(MServeAlertTransitions, "SLO alert state-machine transitions, by state entered.", "state")
	m.AlertsFiring = r.Gauge(MServeAlertsFiring, "SLO alerts currently in the firing state.")
	for _, s := range AlertStates {
		m.AlertTransitions.With(s)
	}
	return m
}

func registerLP(r *Registry) *LPMetrics {
	return &LPMetrics{
		Solves:           r.Counter(MLPSolves, "LP solves."),
		Iterations:       r.Counter(MLPIters, "Simplex iterations across all solves (both phases)."),
		Phase1:           r.Counter(MLPPhase1, "Phase-1 simplex iterations across all solves."),
		WarmStarts:       r.Counter(MLPWarmStarts, "Solves that accepted a warm-start basis."),
		Refactorizations: r.Counter(MLPRefactor, "From-scratch basis factorizations."),
		PresolveRows:     r.Counter(MLPPresolveRows, "Constraint rows removed by presolve."),
		PresolveCols:     r.Counter(MLPPresolveCols, "Columns removed by presolve."),
		SolveSeconds:     r.Counter(MLPSolveSeconds, "Wall-clock seconds inside Problem.Solve."),
		PricingSeconds:   r.Counter(MLPPricingSeconds, "Wall-clock seconds in the pricing step."),
		FactorSeconds:    r.Counter(MLPFactorSeconds, "Wall-clock seconds factorizing and solving with the basis (FTRAN/BTRAN included)."),
		PresolveSeconds:  r.Counter(MLPPresolveSeconds, "Wall-clock seconds in presolve and postsolve."),
		PricingWorkers:   r.Gauge(MLPPricingWorkers, "Configured parallel pricing workers of the last solve (1 = sequential)."),
		DualPivots:       r.Counter(MLPDualPivots, "Dual-simplex repair pivots across all solves (Options.Dual warm starts)."),
		ColGenRounds:     r.Counter(MLPColGenRounds, "Column-generation pricing rounds across all SolveColGen runs."),
		ColGenColumns:    r.Counter(MLPColGenColumns, "Columns added by column-generation pricing oracles."),
	}
}
