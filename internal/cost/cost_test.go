package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMoneyUnits(t *testing.T) {
	if Dollar != 100*Cent || Cent != 1000*Millicent || Millicent != 1000*Microcent {
		t.Fatal("unit ladder broken")
	}
	if Dollars(1) != Dollar {
		t.Errorf("Dollars(1) = %d", Dollars(1))
	}
	if Millicents(62.5) != 62500*Microcent {
		t.Errorf("Millicents(62.5) = %d", Millicents(62.5))
	}
	if got := Dollars(0.01).ToDollars(); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("ToDollars = %g", got)
	}
	if got := Millicents(0.92).ToMillicents(); math.Abs(got-0.92) > 1e-9 {
		t.Errorf("ToMillicents = %g", got)
	}
}

func TestMoneyString(t *testing.T) {
	if s := Dollars(2).String(); s != "$2.00" {
		t.Errorf("String = %q", s)
	}
	if s := Dollars(1.2345).String(); s != "$1.2345" {
		t.Errorf("String = %q", s)
	}
}

func TestMulFloat(t *testing.T) {
	m := Millicents(2)
	if got := m.MulFloat(3.5); got != Millicents(7) {
		t.Errorf("MulFloat = %v", got)
	}
}

func TestQuickMoneyRoundTrip(t *testing.T) {
	// Dollars → Money → ToDollars round-trips to microcent precision.
	check := func(cents int32) bool {
		d := float64(cents) / 100
		return math.Abs(Dollars(d).ToDollars()-d) < 1e-8
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestCatalogTable3(t *testing.T) {
	// The paper's headline claim: per ECU-second, c1.medium is 4–5 times
	// cheaper than m1.medium.
	ratioLow := float64(M1Medium.PerECULow) / float64(C1Medium.PerECULow)
	ratioHigh := float64(M1Medium.PerECUHigh) / float64(C1Medium.PerECUHigh)
	if ratioLow < 4 || ratioLow > 5.5 {
		t.Errorf("low-end price ratio = %.2f, want 4–5", ratioLow)
	}
	if ratioHigh < 4 || ratioHigh > 5.5 {
		t.Errorf("high-end price ratio = %.2f, want 4–5", ratioHigh)
	}
	if C1Medium.ECU != 2.5*M1Medium.ECU {
		t.Errorf("c1.medium must have 2.5x the ECU of m1.medium")
	}
}

func TestByName(t *testing.T) {
	for _, want := range Catalog {
		got, err := ByName(want.Name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", want.Name, err)
		}
		if got.Name != want.Name || got.ECU != want.ECU {
			t.Errorf("ByName(%q) = %+v", want.Name, got)
		}
	}
	if _, err := ByName("m7i.48xlarge"); err == nil {
		t.Error("expected error for unknown type")
	}
}

func TestPerECUMid(t *testing.T) {
	mid := C1Medium.PerECUMid()
	if mid <= C1Medium.PerECULow || mid >= C1Medium.PerECUHigh {
		t.Errorf("midpoint %v outside range", mid)
	}
}

func TestTransferPricing(t *testing.T) {
	// Paper: 62.5 millicents per 64 MB block across zones.
	if got := InterZonePerBlock; got != Millicents(62.5) {
		t.Errorf("InterZonePerBlock = %v, want 62.5 mc", got.ToMillicents())
	}
	p := DefaultTransferPricing()
	if p.Price("us-east-1a", "us-east-1a", 1024) != 0 {
		t.Error("intra-zone transfer must be free")
	}
	if p.PerGB("us-east-1a", "us-east-1b") != InterZonePerGB {
		t.Error("inter-zone transfer must use the Amazon price")
	}
	if got := p.Price("a", "b", BlockMB); got != Millicents(62.5) {
		t.Errorf("one block across zones = %v", got.ToMillicents())
	}
	if got := TransferCost(p.PerGB("a", "b"), 2048); got != Dollars(0.02) {
		t.Errorf("2 GB across zones = %v", got)
	}
}

func TestCPUCost(t *testing.T) {
	// 100 ECU-seconds at 1 mc each = 100 mc.
	if got := CPUCost(Millicents(1), 100); got != Millicents(100) {
		t.Errorf("CPUCost = %v", got)
	}
}

func TestLedger(t *testing.T) {
	l := NewLedger()
	l.Charge(CatCPU, "j1", Millicents(10))
	l.Charge(CatCPU, "j2", Millicents(5))
	l.Charge(CatTransfer, "j1", Millicents(3))
	l.Charge(CatPlacement, "", Millicents(2))
	if l.Total() != Millicents(20) {
		t.Errorf("Total = %v", l.Total())
	}
	if l.Category(CatCPU) != Millicents(15) {
		t.Errorf("Category(cpu) = %v", l.Category(CatCPU))
	}
	if l.Job("j1") != Millicents(13) {
		t.Errorf("Job(j1) = %v", l.Job("j1"))
	}
	jobs := l.Jobs()
	if len(jobs) != 2 || jobs[0] != "j1" || jobs[1] != "j2" {
		t.Errorf("Jobs = %v", jobs)
	}
	if l.String() == "" {
		t.Error("empty String")
	}
}

func TestLedgerTenantDimension(t *testing.T) {
	l := NewLedger()
	l.ChargeTenant(CatCPU, "j1", "alice", Millicents(10))
	l.ChargeTenant(CatCPU, "j2", "bob", Millicents(5))
	l.ChargeTenant(CatTransfer, "j1", "alice", Millicents(3))
	l.Charge(CatPlacement, "", Millicents(2)) // unowned → _system
	l.ChargeTenant(CatFault, "", "", Millicents(1))

	if got := l.TenantCategory("alice", CatCPU); got != Millicents(10) {
		t.Errorf("alice cpu = %v", got)
	}
	if got := l.TenantTotal("alice"); got != Millicents(13) {
		t.Errorf("alice total = %v", got)
	}
	if got := l.TenantTotal(UnattributedTenant); got != Millicents(3) {
		t.Errorf("_system total = %v", got)
	}
	if got := l.Unattributed(); got != Millicents(3) {
		t.Errorf("unattributed = %v", got)
	}
	want := []string{UnattributedTenant, "alice", "bob"}
	got := l.Tenants()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("Tenants = %v, want %v", got, want)
	}
	bd := l.TenantBreakdown("alice")
	if bd[CatCPU] != Millicents(10) || bd[CatTransfer] != Millicents(3) {
		t.Errorf("breakdown = %v", bd)
	}
	if err := l.Reconcile(); err != nil {
		t.Errorf("Reconcile: %v", err)
	}
}

func TestLedgerReconcileCatchesDrift(t *testing.T) {
	l := NewLedger()
	l.ChargeTenant(CatCPU, "j", "alice", Millicents(10))
	l.byCategory[CatCPU] += Microcent // cook the books by one microcent
	if err := l.Reconcile(); err == nil {
		t.Error("Reconcile missed a one-microcent drift")
	}
	l.byCategory[CatCPU] -= Microcent
	if err := l.Reconcile(); err != nil {
		t.Errorf("Reconcile after repair: %v", err)
	}
	l.total += Microcent
	if err := l.Reconcile(); err == nil {
		t.Error("Reconcile missed a total drift")
	}
}

func TestLedgerPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative charge")
		}
	}()
	NewLedger().Charge(CatCPU, "j", -1)
}
