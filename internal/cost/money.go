// Package cost models dollar costs for the LiPS scheduler: an exact integer
// money type, the paper's Amazon EC2 instance catalog (Table III), data
// transfer pricing, and a cost ledger with per-category accounting.
//
// Following the paper, the working unit of account is the millicent
// (1/1000 of a cent): EC2 CPU prices are quoted in millicents per EC2
// compute unit (ECU) second, and cross-zone transfer costs in millicents
// per 64 MB block. Money is stored as integer microcents so that fractional
// millicent prices (e.g. c1.medium's 0.92 mc/ECU·s) remain exact.
package cost

import (
	"fmt"
	"math"
)

// Money is an amount of money in integer microcents (1e-8 dollars).
// The representation is exact for every price in the paper and overflows
// only beyond ~922 billion dollars.
type Money int64

// Unit constructors.
const (
	Microcent Money = 1
	Millicent Money = 1000 * Microcent
	Cent      Money = 1000 * Millicent
	Dollar    Money = 100 * Cent
)

// Millicents returns the Money value of x millicents, rounding to the
// nearest microcent.
func Millicents(x float64) Money {
	return Money(math.Round(x * float64(Millicent)))
}

// Dollars returns the Money value of x dollars, rounding to the nearest
// microcent.
func Dollars(x float64) Money {
	return Money(math.Round(x * float64(Dollar)))
}

// ToMillicents converts m to a float64 number of millicents.
func (m Money) ToMillicents() float64 { return float64(m) / float64(Millicent) }

// ToDollars converts m to a float64 number of dollars.
func (m Money) ToDollars() float64 { return float64(m) / float64(Dollar) }

// MulFloat scales m by f, rounding to the nearest microcent.
func (m Money) MulFloat(f float64) Money {
	return Money(math.Round(float64(m) * f))
}

// String formats the amount in dollars, e.g. "$1.2345".
func (m Money) String() string {
	d := m.ToDollars()
	if d == math.Trunc(d) {
		return fmt.Sprintf("$%.2f", d)
	}
	return fmt.Sprintf("$%.4f", d)
}
