package cost

import "fmt"

// InstanceType describes one EC2 instance type from the paper's Table III.
//
// PerECULow/PerECUHigh are the paper's published millicent-per-ECU-second
// price range. Note that for m1.medium the paper's published range
// (4.44–6.39 mc) corresponds to dividing the hourly price by the vCPU
// count rather than the ECU count; we reproduce the paper's numbers
// verbatim because the evaluation's key driver — c1.medium being 4–5×
// cheaper per ECU-second than m1.medium — depends on them.
type InstanceType struct {
	Name      string
	VCPUs     int     // physical CPUs ("CPU" column)
	ECU       float64 // EC2 compute units
	MemGB     float64
	StorageGB float64
	PriceLow  Money // hourly instance price, low end
	PriceHigh Money // hourly instance price, high end

	PerECULow  Money // millicents per ECU-second, low end
	PerECUHigh Money // millicents per ECU-second, high end
}

// PerECUMid returns the midpoint ECU-second price, the default used by the
// simulator when a single number is needed.
func (t InstanceType) PerECUMid() Money {
	return (t.PerECULow + t.PerECUHigh) / 2
}

// Table III of the paper. One EC2 compute unit is the CPU capacity of a
// 1.0–1.2 GHz 2007 Opteron or Xeon.
var (
	M1Small = InstanceType{
		Name: "m1.small", VCPUs: 1, ECU: 1, MemGB: 1.7, StorageGB: 160,
		PriceLow: Dollars(0.08), PriceHigh: Dollars(0.12),
		PerECULow: Millicents(2.22), PerECUHigh: Millicents(3.33),
	}
	M1Medium = InstanceType{
		Name: "m1.medium", VCPUs: 1, ECU: 2, MemGB: 3.75, StorageGB: 410,
		PriceLow: Dollars(0.13), PriceHigh: Dollars(0.23),
		PerECULow: Millicents(4.44), PerECUHigh: Millicents(6.39),
	}
	C1Medium = InstanceType{
		Name: "c1.medium", VCPUs: 2, ECU: 5, MemGB: 1.7, StorageGB: 350,
		PriceLow: Dollars(0.17), PriceHigh: Dollars(0.23),
		PerECULow: Millicents(0.92), PerECUHigh: Millicents(1.28),
	}
)

// Catalog lists the instance types used in the paper's testbeds.
var Catalog = []InstanceType{M1Small, M1Medium, C1Medium}

// ByName returns the catalog entry with the given name.
func ByName(name string) (InstanceType, error) {
	for _, t := range Catalog {
		if t.Name == name {
			return t, nil
		}
	}
	return InstanceType{}, fmt.Errorf("cost: unknown instance type %q", name)
}
