package cost

// BlockMB is the HDFS block size in megabytes, as used throughout the
// paper (64 MB blocks).
const BlockMB = 64.0

// Amazon's published data transfer price from the paper: $0.01 per GB
// between availability zones, i.e. 62.5 millicents per 64 MB block.
// Transfers within an availability zone are free of charge.
var (
	InterZonePerGB    = Dollars(0.01)
	InterZonePerBlock = InterZonePerGB.MulFloat(BlockMB / 1024) // 62.5 millicents
)

// TransferPricing prices data movement between availability zones.
// Prices are per gigabyte; fractional-megabyte amounts are rounded to the
// nearest microcent at charge time.
type TransferPricing struct {
	IntraZonePerGB Money
	InterZonePerGB Money
}

// DefaultTransferPricing is Amazon's EC2 pricing from the paper: free
// within a zone, $0.01/GB across zones.
func DefaultTransferPricing() TransferPricing {
	return TransferPricing{IntraZonePerGB: 0, InterZonePerGB: InterZonePerGB}
}

// PerGB returns the per-gigabyte price of moving data between two zones.
func (t TransferPricing) PerGB(zoneA, zoneB string) Money {
	if zoneA == zoneB {
		return t.IntraZonePerGB
	}
	return t.InterZonePerGB
}

// Price returns the cost of moving mb megabytes between the two zones.
func (t TransferPricing) Price(zoneA, zoneB string, mb float64) Money {
	return t.PerGB(zoneA, zoneB).MulFloat(mb / 1024)
}

// CPUCost returns the dollar cost of cpuSec ECU-seconds at the given
// per-ECU-second price.
func CPUCost(perECUSec Money, cpuSec float64) Money {
	return perECUSec.MulFloat(cpuSec)
}

// TransferCost returns the dollar cost of moving mb megabytes at the given
// per-GB price.
func TransferCost(perGB Money, mb float64) Money {
	return perGB.MulFloat(mb / 1024)
}
