package cost

import (
	"fmt"
	"sort"
	"strings"
)

// Category classifies a ledger charge.
type Category string

// Standard charge categories used by the simulator.
const (
	CatCPU         Category = "cpu"         // task execution CPU time
	CatTransfer    Category = "transfer"    // runtime store→machine data movement
	CatPlacement   Category = "placement"   // store→store data relocation (x^d)
	CatSpeculative Category = "speculative" // CPU burnt by killed speculative copies
	CatFault       Category = "fault"       // CPU wasted by crash-killed attempts and re-replication traffic
)

// Categories lists every standard category in canonical order.
var Categories = []Category{CatCPU, CatTransfer, CatPlacement, CatSpeculative, CatFault}

// UnattributedTenant is the reserved tenant name that absorbs charges
// carrying no owner: background replication, plan-driven block moves,
// and jobs submitted without a user. The underscore keeps it out of the
// namespace real tenants use.
const UnattributedTenant = "_system"

// Ledger accumulates dollar charges by category, by job, and by
// tenant×category. A Ledger is not safe for concurrent use; each
// simulation owns one.
type Ledger struct {
	byCategory map[Category]Money
	byJob      map[string]Money
	byTenant   map[string]map[Category]Money
	noJob      Money // charges recorded with an empty job key
	total      Money
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		byCategory: make(map[Category]Money),
		byJob:      make(map[string]Money),
		byTenant:   make(map[string]map[Category]Money),
	}
}

// Charge records amount against the category and job, attributing the
// money to the reserved UnattributedTenant. Job may be empty for charges
// not attributable to one job (e.g. background replication).
func (l *Ledger) Charge(cat Category, job string, amount Money) {
	l.ChargeTenant(cat, job, "", amount)
}

// ChargeTenant records amount against the category, job, and owning
// tenant. An empty tenant maps to UnattributedTenant so every microcent
// lands in exactly one tenant bucket and the chargeback sum stays
// conserved against the category totals.
func (l *Ledger) ChargeTenant(cat Category, job, tenant string, amount Money) {
	if amount < 0 {
		panic(fmt.Sprintf("cost: negative charge %v for %s/%s", amount, cat, job))
	}
	if tenant == "" {
		tenant = UnattributedTenant
	}
	l.byCategory[cat] += amount
	if job != "" {
		l.byJob[job] += amount
	} else {
		l.noJob += amount
	}
	tc := l.byTenant[tenant]
	if tc == nil {
		tc = make(map[Category]Money)
		l.byTenant[tenant] = tc
	}
	tc[cat] += amount
	l.total += amount
}

// Total returns the grand total.
func (l *Ledger) Total() Money { return l.total }

// Category returns the total for one category.
func (l *Ledger) Category(cat Category) Money { return l.byCategory[cat] }

// Job returns the total charged to one job.
func (l *Ledger) Job(job string) Money { return l.byJob[job] }

// Jobs returns the job names seen, sorted.
func (l *Ledger) Jobs() []string {
	names := make([]string, 0, len(l.byJob))
	for n := range l.byJob {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Unattributed returns the money charged with an empty job key.
func (l *Ledger) Unattributed() Money { return l.noJob }

// Tenants returns the tenant names seen, sorted.
func (l *Ledger) Tenants() []string {
	names := make([]string, 0, len(l.byTenant))
	for n := range l.byTenant {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TenantCategory returns the total charged to one tenant in one category.
func (l *Ledger) TenantCategory(tenant string, cat Category) Money {
	return l.byTenant[tenant][cat]
}

// TenantTotal returns the total charged to one tenant across categories.
func (l *Ledger) TenantTotal(tenant string) Money {
	var sum Money
	for _, m := range l.byTenant[tenant] {
		sum += m
	}
	return sum
}

// TenantBreakdown returns a copy of one tenant's per-category charges.
func (l *Ledger) TenantBreakdown(tenant string) map[Category]Money {
	out := make(map[Category]Money, len(l.byTenant[tenant]))
	for c, m := range l.byTenant[tenant] {
		out[c] = m
	}
	return out
}

// Reconcile checks the ledger's conservation invariants to the exact
// microcent: tenant charges sum to the category totals per category,
// job charges plus the unattributed remainder sum to the grand total,
// and the category totals sum to the grand total. It returns nil when
// the books balance.
func (l *Ledger) Reconcile() error {
	perCat := make(map[Category]Money)
	for _, tc := range l.byTenant {
		for c, m := range tc {
			perCat[c] += m
		}
	}
	for c, want := range l.byCategory {
		if got := perCat[c]; got != want {
			return fmt.Errorf("cost: tenant sum for %s = %d uc, category total = %d uc", c, got, want)
		}
	}
	for c, got := range perCat {
		if l.byCategory[c] != got {
			return fmt.Errorf("cost: tenant sum for %s = %d uc, category total = %d uc", c, got, l.byCategory[c])
		}
	}
	var catSum, jobSum Money
	for _, m := range l.byCategory {
		catSum += m
	}
	if catSum != l.total {
		return fmt.Errorf("cost: category sum = %d uc, total = %d uc", catSum, l.total)
	}
	for _, m := range l.byJob {
		jobSum += m
	}
	if jobSum+l.noJob != l.total {
		return fmt.Errorf("cost: job sum %d uc + unattributed %d uc != total %d uc", jobSum, l.noJob, l.total)
	}
	return nil
}

// String summarises the ledger by category.
func (l *Ledger) String() string {
	cats := make([]string, 0, len(l.byCategory))
	for c := range l.byCategory {
		cats = append(cats, string(c))
	}
	sort.Strings(cats)
	var b strings.Builder
	fmt.Fprintf(&b, "total %v", l.total)
	for _, c := range cats {
		fmt.Fprintf(&b, " %s=%v", c, l.byCategory[Category(c)])
	}
	return b.String()
}
