package cost

import (
	"fmt"
	"sort"
	"strings"
)

// Category classifies a ledger charge.
type Category string

// Standard charge categories used by the simulator.
const (
	CatCPU         Category = "cpu"         // task execution CPU time
	CatTransfer    Category = "transfer"    // runtime store→machine data movement
	CatPlacement   Category = "placement"   // store→store data relocation (x^d)
	CatSpeculative Category = "speculative" // CPU burnt by killed speculative copies
	CatFault       Category = "fault"       // CPU wasted by crash-killed attempts and re-replication traffic
)

// Ledger accumulates dollar charges by category and by job. A Ledger is
// not safe for concurrent use; each simulation owns one.
type Ledger struct {
	byCategory map[Category]Money
	byJob      map[string]Money
	total      Money
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{byCategory: make(map[Category]Money), byJob: make(map[string]Money)}
}

// Charge records amount against the category and job. Job may be empty for
// charges not attributable to one job (e.g. background replication).
func (l *Ledger) Charge(cat Category, job string, amount Money) {
	if amount < 0 {
		panic(fmt.Sprintf("cost: negative charge %v for %s/%s", amount, cat, job))
	}
	l.byCategory[cat] += amount
	if job != "" {
		l.byJob[job] += amount
	}
	l.total += amount
}

// Total returns the grand total.
func (l *Ledger) Total() Money { return l.total }

// Category returns the total for one category.
func (l *Ledger) Category(cat Category) Money { return l.byCategory[cat] }

// Job returns the total charged to one job.
func (l *Ledger) Job(job string) Money { return l.byJob[job] }

// Jobs returns the job names seen, sorted.
func (l *Ledger) Jobs() []string {
	names := make([]string, 0, len(l.byJob))
	for n := range l.byJob {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String summarises the ledger by category.
func (l *Ledger) String() string {
	cats := make([]string, 0, len(l.byCategory))
	for c := range l.byCategory {
		cats = append(cats, string(c))
	}
	sort.Strings(cats)
	var b strings.Builder
	fmt.Fprintf(&b, "total %v", l.total)
	for _, c := range cats {
		fmt.Fprintf(&b, " %s=%v", c, l.byCategory[Category(c)])
	}
	return b.String()
}
