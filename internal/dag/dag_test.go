package dag

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"lips/internal/cluster"
	"lips/internal/workload"
)

func TestValidate(t *testing.T) {
	if err := Validate(3, [][]int{nil, {0}, {1}}); err != nil {
		t.Errorf("chain: %v", err)
	}
	if err := Validate(2, [][]int{{1}, {0}}); err == nil {
		t.Error("2-cycle accepted")
	}
	if err := Validate(1, [][]int{{0}}); err == nil {
		t.Error("self-loop accepted")
	}
	if err := Validate(2, [][]int{{5}}); err == nil {
		t.Error("out-of-range accepted")
	}
	if err := Validate(1, [][]int{nil, nil}); err == nil {
		t.Error("too many lists accepted")
	}
	if err := Validate(0, nil); err != nil {
		t.Errorf("empty graph: %v", err)
	}
}

func TestLevelsChain(t *testing.T) {
	levels, err := Levels(4, Chain(4))
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0}, {1}, {2}, {3}}
	if !reflect.DeepEqual(levels, want) {
		t.Errorf("levels = %v", levels)
	}
}

func TestLevelsDiamond(t *testing.T) {
	levels, err := Levels(5, FanOutIn(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 3 {
		t.Fatalf("levels = %v", levels)
	}
	if len(levels[0]) != 1 || levels[0][0] != 0 {
		t.Errorf("level 0 = %v", levels[0])
	}
	if len(levels[1]) != 3 {
		t.Errorf("level 1 = %v", levels[1])
	}
	if len(levels[2]) != 1 || levels[2][0] != 4 {
		t.Errorf("level 2 = %v", levels[2])
	}
}

func TestLevelsIndependent(t *testing.T) {
	levels, err := Levels(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 1 || len(levels[0]) != 3 {
		t.Errorf("levels = %v", levels)
	}
}

func TestLevelsCycle(t *testing.T) {
	if _, err := Levels(3, [][]int{{2}, {0}, {1}}); err == nil {
		t.Error("3-cycle accepted")
	}
}

func TestFanOutInPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	FanOutIn(2)
}

func buildJobs(n int) *workload.Workload {
	wb := workload.NewBuilder()
	for i := 0; i < n; i++ {
		wb.AddInputJob("j", "u", workload.Grep, 64*float64(1+i), cluster.StoreID(0), 0)
	}
	return wb.Build()
}

func TestCriticalPathChain(t *testing.T) {
	w := buildJobs(3)
	// Chain: critical path is the sum of all job demands.
	got, err := CriticalPathCPUSec(w, Chain(3))
	if err != nil {
		t.Fatal(err)
	}
	want := w.TotalCPUSec()
	if got != want {
		t.Errorf("critical path = %g, want %g", got, want)
	}
}

func TestCriticalPathIndependent(t *testing.T) {
	w := buildJobs(3)
	// Independent: critical path is the largest single job.
	got, err := CriticalPathCPUSec(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := w.Jobs[2].TotalCPUSec()
	if got != want {
		t.Errorf("critical path = %g, want %g", got, want)
	}
}

func TestCriticalPathRejectsCycles(t *testing.T) {
	w := buildJobs(2)
	if _, err := CriticalPathCPUSec(w, [][]int{{1}, {0}}); err == nil {
		t.Error("cycle accepted")
	}
}

// TestQuickLevelsAreTopological: in a random DAG, every prerequisite sits
// in a strictly lower level, levels partition the jobs, and level counts
// are positive.
func TestQuickLevelsAreTopological(t *testing.T) {
	check := func(seed int64, nn uint8) bool {
		n := 1 + int(nn)%20
		rng := rand.New(rand.NewSource(seed))
		// Random DAG: edges only from lower to higher indices.
		deps := make([][]int, n)
		for j := 1; j < n; j++ {
			for d := 0; d < j; d++ {
				if rng.Intn(3) == 0 {
					deps[j] = append(deps[j], d)
				}
			}
		}
		levels, err := Levels(n, deps)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		levelOf := make([]int, n)
		count := 0
		for li, level := range levels {
			if len(level) == 0 {
				t.Logf("seed %d: empty level %d", seed, li)
				return false
			}
			for _, j := range level {
				levelOf[j] = li
				count++
			}
		}
		if count != n {
			t.Logf("seed %d: %d jobs in levels, want %d", seed, count, n)
			return false
		}
		for j, ds := range deps {
			for _, d := range ds {
				if levelOf[d] >= levelOf[j] {
					t.Logf("seed %d: dep %d (level %d) not below %d (level %d)",
						seed, d, levelOf[d], j, levelOf[j])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
