// Package dag handles workloads with inter-job dependencies. The paper
// (§III) notes that DAG-structured workloads "can be reduced to the
// independent task setting through leveling techniques, in which sets of
// mutually independent tasks of the DAG are organized into levels within
// which independent task set scheduling is then applied" (citing
// Alhusaini et al.). This package provides that reduction: cycle
// validation, longest-path leveling, and critical-path analysis. The
// simulator consumes the dependency lists directly (sim.Options.Deps) and
// gates each job's arrival on its prerequisites, which is exactly
// per-level scheduling when the scheduler is epoch-based like LiPS.
package dag

import (
	"fmt"

	"lips/internal/workload"
)

// Validate checks a dependency graph over n jobs: indices in range, no
// self-loops, and no cycles. Deps[j] lists the prerequisites of job j.
func Validate(n int, deps [][]int) error {
	if len(deps) > n {
		return fmt.Errorf("dag: %d dependency lists for %d jobs", len(deps), n)
	}
	for j, ds := range deps {
		for _, d := range ds {
			if d < 0 || d >= n {
				return fmt.Errorf("dag: job %d depends on out-of-range job %d", j, d)
			}
			if d == j {
				return fmt.Errorf("dag: job %d depends on itself", j)
			}
		}
	}
	if _, err := Levels(n, deps); err != nil {
		return err
	}
	return nil
}

// Levels partitions the jobs into topological levels by longest path from
// a source: level 0 holds jobs with no prerequisites, level k+1 the jobs
// all of whose prerequisites sit in levels ≤ k with at least one in level
// k. It returns an error if the graph has a cycle.
func Levels(n int, deps [][]int) ([][]int, error) {
	level := make([]int, n)
	state := make([]int, n) // 0 unvisited, 1 in progress, 2 done
	var visit func(j int) error
	visit = func(j int) error {
		switch state[j] {
		case 1:
			return fmt.Errorf("dag: cycle through job %d", j)
		case 2:
			return nil
		}
		state[j] = 1
		maxDep := -1
		if j < len(deps) {
			for _, d := range deps[j] {
				if err := visit(d); err != nil {
					return err
				}
				if level[d] > maxDep {
					maxDep = level[d]
				}
			}
		}
		level[j] = maxDep + 1
		state[j] = 2
		return nil
	}
	maxLevel := 0
	for j := 0; j < n; j++ {
		if err := visit(j); err != nil {
			return nil, err
		}
		if level[j] > maxLevel {
			maxLevel = level[j]
		}
	}
	out := make([][]int, maxLevel+1)
	for j := 0; j < n; j++ {
		out[level[j]] = append(out[level[j]], j)
	}
	return out, nil
}

// CriticalPathCPUSec returns the largest total CPU demand along any
// dependency chain — a lower bound on makespan·throughput for any
// schedule, useful for judging how much a DAG constrains the scheduler.
func CriticalPathCPUSec(w *workload.Workload, deps [][]int) (float64, error) {
	n := len(w.Jobs)
	if err := Validate(n, deps); err != nil {
		return 0, err
	}
	memo := make([]float64, n)
	seen := make([]bool, n)
	var visit func(j int) float64
	visit = func(j int) float64 {
		if seen[j] {
			return memo[j]
		}
		seen[j] = true
		best := 0.0
		if j < len(deps) {
			for _, d := range deps[j] {
				if v := visit(d); v > best {
					best = v
				}
			}
		}
		memo[j] = best + w.Jobs[j].TotalCPUSec()
		return memo[j]
	}
	longest := 0.0
	for j := 0; j < n; j++ {
		if v := visit(j); v > longest {
			longest = v
		}
	}
	return longest, nil
}

// Chain builds the dependency lists of a linear pipeline: job i+1 depends
// on job i.
func Chain(n int) [][]int {
	deps := make([][]int, n)
	for i := 1; i < n; i++ {
		deps[i] = []int{i - 1}
	}
	return deps
}

// FanOutIn builds a diamond: job 0 fans out to jobs 1..n-2, which all
// feed job n-1. n must be at least 3.
func FanOutIn(n int) [][]int {
	if n < 3 {
		panic(fmt.Sprintf("dag: FanOutIn needs ≥ 3 jobs, got %d", n))
	}
	deps := make([][]int, n)
	for i := 1; i < n-1; i++ {
		deps[i] = []int{0}
	}
	mids := make([]int, 0, n-2)
	for i := 1; i < n-1; i++ {
		mids = append(mids, i)
	}
	deps[n-1] = mids
	return deps
}
