package sched

import (
	"math"
	"math/rand"
	"testing"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/sim"
	"lips/internal/workload"
)

// hookSched adapts closures to sim.Scheduler for white-box tests.
type hookSched struct {
	sim.NopNodeEvents
	init      func(*sim.Sim)
	onArrival func(*sim.Sim, int)
}

func (h *hookSched) Name() string { return "hook" }
func (h *hookSched) Init(s *sim.Sim) {
	if h.init != nil {
		h.init(s)
	}
}
func (h *hookSched) OnJobArrival(s *sim.Sim, j int) {
	if h.onArrival != nil {
		h.onArrival(s, j)
	}
}
func (h *hookSched) OnSlotFree(*sim.Sim, cluster.NodeID) {}
func (h *hookSched) OnTaskDone(*sim.Sim, int, int)       {}

// churnPlan is the acceptance scenario from the issue: two crashes, one
// recovery, one store data loss and a straggler window, all inside the
// workload's busy phase.
func churnPlan() *sim.FaultPlan {
	return &sim.FaultPlan{Faults: []sim.Fault{
		{At: 30, Kind: sim.FaultNodeDown, Node: 0},
		{At: 45, Kind: sim.FaultStoreLoss, Store: 1},
		{At: 60, Kind: sim.FaultNodeDown, Node: 3},
		{At: 80, Kind: sim.FaultSlowdown, Node: 2, Factor: 2, DurationSec: 100},
		{At: 200, Kind: sim.FaultNodeUp, Node: 0},
	}}
}

// TestSchedulersCompleteUnderChurn drives all four schedulers through the
// same churn scenario — node 3 never comes back — and requires every job
// to finish, deterministically.
func TestSchedulersCompleteUnderChurn(t *testing.T) {
	type mk struct {
		label string
		make  func() sim.Scheduler
		opts  sim.Options
	}
	for _, m := range []mk{
		{"fifo", func() sim.Scheduler { return NewFIFO() }, sim.Options{}},
		{"delay", func() sim.Scheduler { return NewDelay() }, sim.Options{}},
		{"fair", func() sim.Scheduler { return NewFair() }, sim.Options{}},
		{"lips", func() sim.Scheduler { return NewLiPS(200) }, sim.Options{TaskTimeoutSec: 1200}},
	} {
		t.Run(m.label, func(t *testing.T) {
			run := func() *sim.Result {
				c := mixedCluster()
				w := smallJobSet(rand.New(rand.NewSource(3)), 3)
				opts := m.opts
				opts.Faults = churnPlan()
				return runSched(t, c, w, nil, m.make(), opts)
			}
			r := run()
			if r.Faults.NodesCrashed != 2 || r.Faults.NodesRecovered != 1 || r.Faults.StoresLost != 1 {
				t.Errorf("fault stats = %+v, want 2 crashes / 1 recovery / 1 store loss", r.Faults)
			}
			for j, done := range r.JobDone {
				if done <= 0 {
					t.Errorf("job %d never finished under churn", j)
				}
			}
			again := run()
			if r.Makespan != again.Makespan || r.TotalCost() != again.TotalCost() {
				t.Errorf("churn run not reproducible: makespan %g vs %g, cost %v vs %v",
					r.Makespan, again.Makespan, r.TotalCost(), again.TotalCost())
			}
			if r.Faults != again.Faults {
				t.Errorf("fault stats diverged: %+v vs %+v", r.Faults, again.Faults)
			}
		})
	}
}

// TestLiPSReuseAcrossRuns re-runs one *LiPS instance and requires the
// second run to match both the first and a fresh instance — Init must
// reset every piece of run-scoped state (stats, error, staleness,
// warm-start basis, round-robin cursors).
func TestLiPSReuseAcrossRuns(t *testing.T) {
	run := func(l *LiPS) *sim.Result {
		c, w := warmStartScenario()
		r, err := sim.New(c, w, w.Placement(), l, sim.Options{TaskTimeoutSec: 1e9}).Run()
		if err != nil {
			t.Fatal(err)
		}
		if l.Err != nil {
			t.Fatalf("scheduler error: %v", l.Err)
		}
		return r
	}
	l := NewLiPS(200)
	r1 := run(l)
	epochs1, iters1, moved1, blocks1 := l.Epochs, l.LPIters, l.TasksMoved, l.BlocksMoved
	warm1 := l.Solver.WarmAccepted

	r2 := run(l) // same instance, second run
	if r1.Makespan != r2.Makespan || r1.TotalCost() != r2.TotalCost() {
		t.Errorf("reused instance diverged: makespan %g vs %g, cost %v vs %v",
			r1.Makespan, r2.Makespan, r1.TotalCost(), r2.TotalCost())
	}
	if l.Epochs != epochs1 || l.LPIters != iters1 || l.TasksMoved != moved1 || l.BlocksMoved != blocks1 {
		t.Errorf("stats not reset: run1 (%d epochs, %d iters, %d tasks, %d blocks) vs run2 (%d, %d, %d, %d)",
			epochs1, iters1, moved1, blocks1, l.Epochs, l.LPIters, l.TasksMoved, l.BlocksMoved)
	}
	if l.Solver.WarmAccepted != warm1 {
		t.Errorf("warm-start path diverged: %d accepted vs %d — stale basis leaked across runs?",
			warm1, l.Solver.WarmAccepted)
	}

	r3 := run(NewLiPS(200)) // fresh instance as the reference
	if r1.Makespan != r3.Makespan || r1.TotalCost() != r3.TotalCost() {
		t.Errorf("reused instance differs from fresh: makespan %g vs %g, cost %v vs %v",
			r1.Makespan, r3.Makespan, r1.TotalCost(), r3.TotalCost())
	}
}

// TestFallbackSkipsInFlightMoves pins the satellite race: the rounding
// fallback must not enqueue a task whose input block is still being
// relocated — the read would race the landing block.
func TestFallbackSkipsInFlightMoves(t *testing.T) {
	b := cluster.NewBuilder("za", "zb")
	b.AddNode("za", "t", 2, 2, cost.Millicents(1), 1e6)
	b.AddNode("zb", "t", 2, 2, cost.Millicents(1), 1e6)
	c := b.Build()
	wb := workload.NewBuilder()
	arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 64}
	wb.AddInputJob("j", "u", arch, 128, 0, 0) // 2 blocks on store 0
	w := wb.Build()

	l := NewLiPS(400) // driven manually through fallback, never Init'd
	hs := &hookSched{}
	hs.onArrival = func(s *sim.Sim, j int) {
		doneAt := s.MoveBlock(0, 0, 1) // block 0: za → zb, in flight
		l.fallback(s, []int{j})
		// Block 1 sits still and must be enqueued data-locally; block 0's
		// task must be left alone while its move is in flight.
		pending := s.PendingTasks(j)
		if len(pending) != 1 || pending[0] != 0 {
			t.Errorf("pending after fallback = %v, want just task 0 (move in flight)", pending)
		}
		s.At(doneAt+0.01, func() {
			if _, _, inFlight := s.BlockMove(0, 0); inFlight {
				t.Error("move still reported in flight after its landing time")
			}
			if got := s.P.Primary(0, 0); got != 1 {
				t.Errorf("block 0 primary = %d after move, want 1", got)
			}
			l.fallback(s, []int{j})
			if got := len(s.PendingTasks(j)); got != 0 {
				t.Errorf("pending after landing = %d, want 0", got)
			}
		})
	}
	r, err := sim.New(c, w, w.Placement(), hs, sim.Options{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if l.Err != nil {
		t.Fatalf("fallback error: %v", l.Err)
	}
	for j, done := range r.JobDone {
		if done <= 0 {
			t.Errorf("job %d never finished", j)
		}
	}
}

// TestLiPSSpotPricingAgreement doubles every price through the shared
// PriceMultiplier hook. Planner and biller sample the same multiplier
// convention, and a uniform scaling must leave the schedule untouched
// while exactly doubling the CPU bill.
func TestLiPSSpotPricingAgreement(t *testing.T) {
	run := func(mult func(string, float64) float64) *sim.Result {
		c := mixedCluster()
		w := smallJobSet(rand.New(rand.NewSource(3)), 3)
		l := NewLiPS(400)
		l.PriceMultiplier = mult
		return runSched(t, c, w, nil, l, sim.Options{TaskTimeoutSec: 1200, PriceMultiplier: mult})
	}
	base := run(nil)
	doubled := run(func(string, float64) float64 { return 2 })
	if base.Makespan != doubled.Makespan {
		t.Errorf("uniform price scaling changed the schedule: makespan %g vs %g",
			base.Makespan, doubled.Makespan)
	}
	ratio := float64(doubled.Cost.Category(cost.CatCPU)) / float64(base.Cost.Category(cost.CatCPU))
	if math.Abs(ratio-2) > 1e-6 {
		t.Errorf("cpu bill scaled by %.9f, want exactly 2", ratio)
	}
}
