// Package sched implements the task schedulers the paper evaluates:
// the Hadoop default FIFO locality-greedy scheduler, the delay scheduler
// (Zaharia et al., EuroSys'10), the Facebook fair scheduler, and LiPS
// itself (epoch-driven LP co-scheduling of data and tasks).
package sched

import (
	"lips/internal/cluster"
	"lips/internal/sim"
)

// FIFO is Hadoop's default scheduler: jobs run in arrival order; when a
// TaskTracker frees a slot the JobTracker greedily picks, from the oldest
// job with pending work, the task whose data is closest to the tracker
// (node-local, then same zone, then remote).
type FIFO struct{ sim.NopNodeEvents }

// NewFIFO returns the Hadoop default scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements sim.Scheduler.
func (f *FIFO) Name() string { return "hadoop-default" }

// Init implements sim.Scheduler.
func (f *FIFO) Init(*sim.Sim) {}

// OnJobArrival implements sim.Scheduler.
func (f *FIFO) OnJobArrival(s *sim.Sim, _ int) { s.KickIdleNodes() }

// OnTaskDone implements sim.Scheduler.
func (f *FIFO) OnTaskDone(*sim.Sim, int, int) {}

// OnSlotFree implements sim.Scheduler: serve the oldest job's
// best-locality pending task; fall back to speculative execution.
func (f *FIFO) OnSlotFree(s *sim.Sim, n cluster.NodeID) {
	for s.FreeSlots(n) > 0 {
		job, task, store, ok := oldestJobBestTask(s, n)
		if !ok {
			s.LaunchSpeculative(n)
			return
		}
		if err := s.Launch(job, task, n, store); err != nil {
			return
		}
	}
}

// oldestJobBestTask finds, in FIFO order, the first job with pending tasks
// and its best-locality task for node n.
func oldestJobBestTask(s *sim.Sim, n cluster.NodeID) (job, task int, store cluster.StoreID, ok bool) {
	for _, j := range s.ArrivedJobs() {
		pending := s.PendingTasks(j)
		if len(pending) == 0 {
			continue
		}
		t, st, _ := bestLocalityTask(s, j, pending, n)
		return j, t, st, true
	}
	return 0, 0, 0, false
}

// bestLocalityTask picks the pending task of job j whose input is closest
// to n (ties to the lowest index) and returns its locality rank. Jobs
// without input return NoStore with rank 0.
func bestLocalityTask(s *sim.Sim, j int, pending []int, n cluster.NodeID) (int, cluster.StoreID, int) {
	if !s.W.Jobs[j].HasInput() {
		return pending[0], sim.NoStore, 0
	}
	bestT, bestStore, bestRank := -1, cluster.StoreID(0), 4
	for _, t := range pending {
		store, rank := s.BestReplicaRank(j, t, n)
		if rank < bestRank {
			bestT, bestStore, bestRank = t, store, rank
			if rank == 0 {
				break
			}
		}
	}
	return bestT, bestStore, bestRank
}
