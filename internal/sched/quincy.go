package sched

import (
	"sort"

	"lips/internal/cluster"
	"lips/internal/mcmf"
	"lips/internal/sim"
)

// Quincy is a graph-based scheduler in the style of Quincy (Isard et al.,
// SOSP'09), the main graph-based alternative the paper discusses: each
// scheduling round maps the assignment problem onto a min-cost flow
// network whose edge costs encode data-locality penalties, and the flow
// optimum becomes the task placement.
//
// This implementation batches rounds every BatchSec seconds and works at
// job granularity: one network node per job, per cluster node, plus an
// unscheduled sink, with per-task locality costs (node-local, zone-local,
// remote). Quincy's fairness layer and preemption are not modelled; like
// the original, it optimizes placement cost, not dollars — which is
// exactly the contrast with LiPS the comparison experiments expose.
type Quincy struct {
	sim.NopNodeEvents

	// Locality costs per task (arbitrary units). Zero values select
	// 0/10/25, roughly Quincy's data-volume proxies.
	NodeLocalCost, ZoneLocalCost, RemoteCost int64
	// UnschedCost is the cost of leaving a task pending this round;
	// it must exceed RemoteCost or nothing remote ever schedules.
	// Zero selects 100.
	UnschedCost int64
	// BatchSec is the scheduling round period. Zero selects 5 s.
	BatchSec float64

	// Rounds counts flow solves (readable after a run).
	Rounds int
}

// NewQuincy returns a Quincy-like scheduler with default costs.
func NewQuincy() *Quincy { return &Quincy{} }

// Name implements sim.Scheduler.
func (q *Quincy) Name() string { return "quincy-like" }

// Init implements sim.Scheduler.
func (q *Quincy) Init(s *sim.Sim) {
	if q.NodeLocalCost == 0 && q.ZoneLocalCost == 0 && q.RemoteCost == 0 {
		q.NodeLocalCost, q.ZoneLocalCost, q.RemoteCost = 0, 10, 25
	}
	if q.UnschedCost == 0 {
		q.UnschedCost = 100
	}
	if q.BatchSec == 0 {
		q.BatchSec = 5
	}
	s.At(0, func() { q.round(s) })
}

// OnJobArrival implements sim.Scheduler (rounds are periodic).
func (q *Quincy) OnJobArrival(*sim.Sim, int) {}

// OnSlotFree implements sim.Scheduler (rounds are periodic).
func (q *Quincy) OnSlotFree(*sim.Sim, cluster.NodeID) {}

// OnTaskDone implements sim.Scheduler.
func (q *Quincy) OnTaskDone(*sim.Sim, int, int) {}

// round solves one flow network and launches the resulting assignment.
func (q *Quincy) round(s *sim.Sim) {
	done := true
	for j := range s.W.Jobs {
		if s.JobRemaining(j) > 0 {
			done = false
			break
		}
	}
	if done {
		return
	}
	defer s.At(s.Now()+q.BatchSec, func() { q.round(s) })

	jobs := s.ArrivedJobs()
	type jobInfo struct {
		job     int
		pending []int
	}
	var active []jobInfo
	for _, j := range jobs {
		if p := s.PendingTasks(j); len(p) > 0 {
			active = append(active, jobInfo{job: j, pending: p})
		}
	}
	if len(active) == 0 {
		return
	}
	var freeNodes []cluster.NodeID
	for n := range s.C.Nodes {
		if s.FreeSlots(cluster.NodeID(n)) > 0 {
			freeNodes = append(freeNodes, cluster.NodeID(n))
		}
	}
	if len(freeNodes) == 0 {
		return
	}
	q.Rounds++

	// Network layout: [source][jobs...][nodes...][sink].
	nj, nn := len(active), len(freeNodes)
	src := 0
	jobBase := 1
	nodeBase := 1 + nj
	sink := 1 + nj + nn
	g := mcmf.New(sink + 1)

	totalPending := int64(0)
	type jnEdge struct {
		id       mcmf.EdgeID
		job, nIx int
	}
	var jnEdges []jnEdge
	for ji, info := range active {
		pend := int64(len(info.pending))
		totalPending += pend
		g.AddEdge(src, jobBase+ji, pend, 0)
		// Leaving tasks unscheduled this round is allowed but costly.
		g.AddEdge(jobBase+ji, sink, pend, q.UnschedCost)
		for ni, n := range freeNodes {
			costPer := q.taskCost(s, info.job, info.pending, n)
			id := g.AddEdge(jobBase+ji, nodeBase+ni, int64(s.FreeSlots(n)), costPer)
			jnEdges = append(jnEdges, jnEdge{id: id, job: info.job, nIx: ni})
		}
	}
	for ni, n := range freeNodes {
		g.AddEdge(nodeBase+ni, sink, int64(s.FreeSlots(n)), 0)
	}
	g.Flow(src, sink, totalPending)

	// Launch the flow: for each (job, node) edge, start that many tasks,
	// best-locality pending tasks first.
	for _, e := range jnEdges {
		count := g.EdgeFlow(e.id)
		if count <= 0 {
			continue
		}
		n := freeNodes[e.nIx]
		pending := s.PendingTasks(e.job)
		if s.W.Jobs[e.job].HasInput() {
			sort.Slice(pending, func(a, b int) bool {
				_, ra := s.BestReplicaRank(e.job, pending[a], n)
				_, rb := s.BestReplicaRank(e.job, pending[b], n)
				return ra < rb
			})
		}
		for i := int64(0); i < count && int(i) < len(pending); i++ {
			t := pending[i]
			store := sim.NoStore
			if s.W.Jobs[e.job].HasInput() {
				store = s.BestReplica(e.job, t, n)
			}
			if err := s.Launch(e.job, t, n, store); err != nil {
				break // slot taken by an earlier edge; flow caps make this rare
			}
		}
	}
}

// taskCost is the per-task locality cost of running job j's work on node
// n: the best rank among the job's pending blocks on that node.
func (q *Quincy) taskCost(s *sim.Sim, j int, pending []int, n cluster.NodeID) int64 {
	if !s.W.Jobs[j].HasInput() {
		return q.NodeLocalCost
	}
	best := 3
	for _, t := range pending {
		if _, rank := s.BestReplicaRank(j, t, n); rank < best {
			best = rank
			if best == 0 {
				break
			}
		}
	}
	switch best {
	case 0:
		return q.NodeLocalCost
	case 1:
		return q.ZoneLocalCost
	default:
		return q.RemoteCost
	}
}
