package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lips/internal/cluster"
	"lips/internal/sim"
	"lips/internal/workload"
)

// TestQuickLiPSAlwaysCompletes fuzzes LiPS across random clusters,
// workloads, epochs and aggregation modes: every run must terminate with
// all jobs done, no scheduler error, and sane accounting.
func TestQuickLiPSAlwaysCompletes(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := cluster.Random(rng, cluster.RandomSpec{
			Nodes: 4 + rng.Intn(16),
			Types: 2 + rng.Intn(4),
			Zones: 1 + rng.Intn(3),
		})
		stores := make([]cluster.StoreID, len(c.Stores))
		for i := range stores {
			stores[i] = cluster.StoreID(i)
		}
		wb := workload.NewBuilder()
		jobs := 1 + rng.Intn(6)
		for j := 0; j < jobs; j++ {
			if rng.Intn(5) == 0 {
				wb.AddNoInputJob("pi", "u", 1+rng.Intn(4), 10+rng.Float64()*200, rng.Float64()*500)
				continue
			}
			arch := workload.Archetype{Name: "syn", Property: workload.Mixed,
				CPUSecPerBlock: 5 + rng.Float64()*90}
			frac := 1.0
			if rng.Intn(3) == 0 {
				frac = 0.1 + 0.9*rng.Float64() // partial data access
			}
			wb.AddPartialInputJob("j", "u", arch, float64(1+rng.Intn(10))*64, frac,
				stores[rng.Intn(len(stores))], rng.Float64()*500)
		}
		w := wb.Build()
		p := w.Placement()
		p.Shuffle(rng, stores)

		l := NewLiPS(60 + rng.Float64()*600)
		l.Aggregate = rng.Intn(2) == 0
		opts := sim.Options{TaskTimeoutSec: 1200, SharedLinks: rng.Intn(2) == 0}
		r, err := sim.New(c, w, p, l, opts).Run()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if l.Err != nil {
			t.Logf("seed %d: lips error: %v", seed, l.Err)
			return false
		}
		for j, done := range r.JobDone {
			if done < w.Jobs[j].ArrivalSec {
				t.Logf("seed %d: job %d done %g before arrival %g", seed, j, done, w.Jobs[j].ArrivalSec)
				return false
			}
		}
		if r.TotalCost() < 0 {
			t.Logf("seed %d: negative cost", seed)
			return false
		}
		if r.Utilization < 0 || r.Utilization > 1 {
			t.Logf("seed %d: utilization %g", seed, r.Utilization)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickBaselinesAlwaysComplete runs the same fuzz against the other
// schedulers.
func TestQuickBaselinesAlwaysComplete(t *testing.T) {
	check := func(seed int64, which uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := cluster.Random(rng, cluster.RandomSpec{Nodes: 4 + rng.Intn(12)})
		stores := make([]cluster.StoreID, len(c.Stores))
		for i := range stores {
			stores[i] = cluster.StoreID(i)
		}
		w := workload.Random(rng, stores, workload.RandomSpec{TotalTasks: 20 + rng.Intn(200)})
		p := w.Placement()
		p.Shuffle(rng, stores)
		var s sim.Scheduler
		switch which % 4 {
		case 0:
			s = NewFIFO()
		case 1:
			s = NewDelay()
		case 2:
			s = NewFair()
		default:
			s = NewQuincy()
		}
		opts := sim.Options{Speculative: rng.Intn(2) == 0}
		if _, err := sim.New(c, w, p, s, opts).Run(); err != nil {
			t.Logf("seed %d %s: %v", seed, s.Name(), err)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
