package sched

import (
	"math/rand"
	"testing"

	"lips/internal/hdfs"
	"lips/internal/sim"
	"lips/internal/workload"
)

// serveJob submits one grep-shaped job into a live run, the way the
// lips-serve daemon does.
func serveJob(t *testing.T, s *sim.Sim, name string, user string) int {
	t.Helper()
	j, err := s.AddJob(workload.Job{
		Name: name, User: user, Archetype: workload.Grep.Name,
		CPUSecPerMB: workload.Grep.CPUSecPerMB(), AccessFrac: 1,
	}, &hdfs.DataObject{Name: name, SizeMB: 4 * 64, Origin: 0})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func drainServe(t *testing.T, s *sim.Sim, from float64) {
	t.Helper()
	for i := 1; !s.Drained(); i++ {
		if err := s.StepUntil(from + float64(i)*60); err != nil {
			t.Fatal(err)
		}
		if i > 10000 {
			t.Fatal("run never drained")
		}
	}
}

// TestLiPSArrivalAfterDrain is the serve-mode regression for the epoch
// chain: once the last job finishes, LiPS's tick stops re-arming; a job
// arriving after that quiet period must restart the chain on the next
// epoch boundary or it hangs forever (the bug this PR fixes).
func TestLiPSArrivalAfterDrain(t *testing.T) {
	for _, l := range []*LiPS{NewLiPS(60), NewLiPS(30)} {
		s := sim.New(mixedCluster(), &workload.Workload{}, nil, l, sim.Options{})
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		// A first burst, fully drained...
		serveJob(t, s, "a", "u1")
		drainServe(t, s, 0)
		quiet := s.Now() + 600
		if err := s.StepUntil(quiet); err != nil {
			t.Fatal(err)
		}
		// ...then a straggler long after the chain went idle.
		j := serveJob(t, s, "b", "u2")
		drainServe(t, s, quiet)
		if l.Err != nil {
			t.Fatalf("%s: %v", l.Name(), l.Err)
		}
		if s.JobDoneAt(j) <= quiet {
			t.Errorf("%s: straggler doneAt = %g, want > %g", l.Name(), s.JobDoneAt(j), quiet)
		}
		// The revived tick must land on the epoch grid, not mid-epoch:
		// LiPS's patience (batching arrivals until the boundary) survives.
		if fl, ok := s.JobFirstLaunch(j); !ok || fl < quiet {
			t.Errorf("%s: first launch %g (ok=%v), want on an epoch at or after %g", l.Name(), fl, ok, quiet)
		}
	}
}

// TestScaleArrivalGrowsCursors: a dynamically added job index beyond the
// initial workload must not send Scale's per-job cursor slice out of
// bounds.
func TestScaleArrivalGrowsCursors(t *testing.T) {
	sc := NewScale()
	s := sim.New(mixedCluster(), &workload.Workload{}, nil, sc, sim.Options{})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		serveJob(t, s, "j", "u")
	}
	drainServe(t, s, 0)
	if n := s.NumJobs(); n != 5 {
		t.Fatalf("drained %d jobs, want 5", n)
	}
	_ = sc
}

// TestFairArrivalJoinsPool: a job submitted mid-run by a brand-new user
// must be placed in that user's pool (not silently dropped from the
// fair-share accounting) and the preemption chain must revive with it.
func TestFairArrivalJoinsPool(t *testing.T) {
	f := NewFair()
	f.PreemptTimeoutSec = 120
	s := sim.New(mixedCluster(), &workload.Workload{}, nil, f, sim.Options{})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	serveJob(t, s, "a", "u1")
	drainServe(t, s, 0)
	quiet := s.Now() + 600
	if err := s.StepUntil(quiet); err != nil {
		t.Fatal(err)
	}
	j := serveJob(t, s, "b", "newcomer")
	drainServe(t, s, quiet)
	if s.JobDoneAt(j) <= quiet {
		t.Fatalf("newcomer's job never finished (doneAt %g)", s.JobDoneAt(j))
	}
	if got := s.UserCPU["newcomer"]; got <= 0 {
		t.Errorf("newcomer accrued %g ECU-sec — not in the fair-share books", got)
	}
}

// TestSchedulerReInit reuses one scheduler value across two full runs;
// run-scoped state (epoch counters, warm bases, cursors, preemption
// bookkeeping) must reset so both runs are bit-identical.
func TestSchedulerReInit(t *testing.T) {
	for _, tc := range []struct {
		name string
		sch  sim.Scheduler
	}{
		{"lips", NewLiPS(60)},
		{"scale", NewScale()},
		{"fair", func() *Fair { f := NewFair(); f.PreemptTimeoutSec = 300; return f }()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var first, second *sim.Result
			for i := 0; i < 2; i++ {
				w := smallJobSet(rand.New(rand.NewSource(7)), 3)
				r := runSched(t, mixedCluster(), w, nil, tc.sch, sim.Options{})
				if i == 0 {
					first = r
				} else {
					second = r
				}
			}
			if first.Makespan != second.Makespan || first.Cost.Total() != second.Cost.Total() {
				t.Errorf("reuse drifted: run1 %g/%v, run2 %g/%v",
					first.Makespan, first.Cost.Total(), second.Makespan, second.Cost.Total())
			}
		})
	}
}
