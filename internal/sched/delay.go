package sched

import (
	"lips/internal/cluster"
	"lips/internal/sim"
)

// Delay is the delay scheduler of Zaharia et al. (EuroSys'10): when the
// job that should run next cannot launch a node-local task on the free
// slot, it briefly yields to later jobs instead of launching a non-local
// task. A job skipped for longer than NodeWaitSec may launch zone-local
// tasks; after an additional ZoneWaitSec it may launch anywhere. The
// paper uses this as its "move computation" baseline — with enough small
// jobs it reaches almost 100% data locality.
type Delay struct {
	sim.NopNodeEvents

	// NodeWaitSec (W1) and ZoneWaitSec (W2) are the locality-relaxation
	// thresholds. The zero value selects 15 s each, in line with the
	// delay-scheduling paper's small multiples of the task length.
	NodeWaitSec float64
	ZoneWaitSec float64

	skippedSince map[int]float64
	retryArmed   map[cluster.NodeID]bool
}

// NewDelay returns a delay scheduler with the default thresholds.
func NewDelay() *Delay { return &Delay{} }

// Name implements sim.Scheduler.
func (d *Delay) Name() string { return "delay" }

// Init implements sim.Scheduler.
func (d *Delay) Init(*sim.Sim) {
	if d.NodeWaitSec == 0 {
		d.NodeWaitSec = 15
	}
	if d.ZoneWaitSec == 0 {
		d.ZoneWaitSec = 15
	}
	d.skippedSince = make(map[int]float64)
	d.retryArmed = make(map[cluster.NodeID]bool)
}

// OnJobArrival implements sim.Scheduler.
func (d *Delay) OnJobArrival(s *sim.Sim, _ int) { s.KickIdleNodes() }

// OnTaskDone implements sim.Scheduler.
func (d *Delay) OnTaskDone(*sim.Sim, int, int) {}

// OnSlotFree implements sim.Scheduler.
func (d *Delay) OnSlotFree(s *sim.Sim, n cluster.NodeID) {
	for s.FreeSlots(n) > 0 {
		if !d.assignOne(s, n) {
			if s.LaunchSpeculative(n) {
				continue
			}
			// Every job is currently yielding for locality: retry once
			// its wait expires, or nothing will wake this slot up.
			if d.anyPending(s) && !d.retryArmed[n] {
				d.retryArmed[n] = true
				s.At(s.Now()+d.NodeWaitSec/2+0.5, func() {
					d.retryArmed[n] = false
					if s.FreeSlots(n) > 0 {
						d.OnSlotFree(s, n)
					}
				})
			}
			return
		}
	}
}

func (d *Delay) anyPending(s *sim.Sim) bool {
	for _, j := range s.ArrivedJobs() {
		if len(s.PendingTasks(j)) > 0 {
			return true
		}
	}
	return false
}

// assignOne scans jobs in FIFO order under the delay rule and launches at
// most one task; it reports whether anything launched.
func (d *Delay) assignOne(s *sim.Sim, n cluster.NodeID) bool {
	now := s.Now()
	for _, j := range s.ArrivedJobs() {
		pending := s.PendingTasks(j)
		if len(pending) == 0 {
			continue
		}
		if !s.W.Jobs[j].HasInput() {
			// No locality concern: launch immediately.
			delete(d.skippedSince, j)
			return s.Launch(j, pending[0], n, sim.NoStore) == nil
		}
		t, store, rank := bestLocalityTask(s, j, pending, n)
		if rank == 0 {
			delete(d.skippedSince, j)
			return s.Launch(j, t, n, store) == nil
		}
		since, wasSkipped := d.skippedSince[j]
		if !wasSkipped {
			d.skippedSince[j] = now
			continue // yield this opportunity to later jobs
		}
		waited := now - since
		switch {
		case rank == 1 && waited >= d.NodeWaitSec:
			delete(d.skippedSince, j)
			return s.Launch(j, t, n, store) == nil
		case waited >= d.NodeWaitSec+d.ZoneWaitSec:
			delete(d.skippedSince, j)
			return s.Launch(j, t, n, store) == nil
		default:
			continue
		}
	}
	return false
}
