package sched

import (
	"fmt"
	"math"
	"sort"
	"time"

	"lips/internal/cluster"
	"lips/internal/core"
	"lips/internal/cost"
	"lips/internal/hdfs"
	"lips/internal/lp"
	"lips/internal/metrics"
	"lips/internal/obs"
	"lips/internal/sim"
	"lips/internal/trace"
	"lips/internal/workload"
)

// LiPS is the paper's scheduler: every EpochSec seconds it gathers the
// queued jobs' remaining work, builds the online co-scheduling LP (Fig. 4)
// over the cluster's node groups, solves it, rounds the fractional optimum
// to whole tasks and blocks, issues the data moves, and pins the tasks to
// concrete nodes. Work the LP parks on the fake node stays queued for the
// next epoch.
type LiPS struct {
	// EpochSec is the scheduling epoch e. The zero value selects 400 s
	// (one of the two epoch lengths of Fig. 11).
	EpochSec float64
	// Aggregate builds the LP over node groups instead of individual
	// nodes (lossless for class-structured clusters; see DESIGN.md).
	// Enabled by default via NewLiPS.
	Aggregate bool
	// LPOpts tunes the simplex. LPOpts.WarmStart is managed by the
	// scheduler itself when WarmStart is set — leave it nil.
	LPOpts lp.Options
	// WarmStart seeds each epoch's solve with the previous epoch's
	// optimal basis. Consecutive epochs share the LP's column structure
	// whenever the pending job set is stable, so the old basis is often
	// primal feasible under the new bounds/RHS and phase 1 is skipped
	// entirely; when shapes diverge the solver silently falls back to a
	// cold start. Across node churn the basis is translated onto the new
	// machine layout (core.TranslateOnlineBasis) instead of dropped.
	// Enabled by default via NewLiPS.
	WarmStart bool
	// ColGen solves each epoch by column generation over a restricted
	// master (core.SolveOnlineColGen) instead of materializing the full
	// online LP — the path for clusters too large to aggregate, where the
	// (job, machine, store) cross product dwarfs the optimal support. The
	// previous epoch's hot machines seed the next master. Exact: the
	// pricing loop terminates at the full LP's optimum.
	ColGen bool
	// PriceMultiplier, when non-nil, re-prices each epoch's LP with the
	// spot multiplier sampled at the epoch start — pass the same function
	// given to sim.Options so planning and billing agree. The simulator
	// bills each attempt at the multiplier sampled when the attempt
	// starts, so a task the planner priced in epoch k and launched within
	// it is billed at epoch-k prices even when it finishes after the
	// boundary; planner and biller diverge only by the sub-epoch drift
	// between the epoch start and the attempt's actual launch.
	PriceMultiplier func(instanceType string, t float64) float64
	// TraceTimings includes the wall-clock LP solve timings in the epoch
	// trace events. Off by default: wall-clock is machine-dependent, and
	// same-seed traces are byte-identical only without it.
	TraceTimings bool

	// Stats, readable after a run.
	Epochs      int
	SolveTime   time.Duration // wall-clock spent in the LP solver
	LPIters     int
	TasksMoved  int // tasks enqueued via LP plans
	BlocksMoved int
	Solver      metrics.SolverStats // per-solve LP statistics
	Err         error               // first scheduling error, if any

	stale       int  // consecutive epochs with pending work but no launches
	armed       bool // a future tick is in the heap (the chain dies when drained)
	rrNode      map[int]int
	rrStore     map[int]int
	prevBasis   *lp.Basis      // last epoch's optimal basis (warm-start seed)
	prevIn      *core.Instance // instance the basis belongs to (for translation)
	prevHot     []string       // hot machine unit names (ColGen seed hints)
	topoChanged bool           // a node went down or up since the last solve

	lastEpoch EpochStats // most recent epoch's snapshot (see EpochReporter)

	om    *obs.SchedMetrics // live epoch metrics; nil when metrics are off
	lpReg *obs.Registry     // passed to each solve via lp.Options.Metrics
}

// NewLiPS returns a LiPS scheduler with the given epoch length (0 selects
// the 400 s default) and group aggregation enabled.
func NewLiPS(epochSec float64) *LiPS {
	return &LiPS{EpochSec: epochSec, Aggregate: true, WarmStart: true}
}

// Name implements sim.Scheduler.
func (l *LiPS) Name() string { return fmt.Sprintf("lips(e=%.0fs)", l.EpochSec) }

// Init implements sim.Scheduler. It resets every piece of run-scoped
// state — stats, error, staleness counter, round-robin cursors and the
// warm-start basis — so one *LiPS can be reused across sim.Run calls and
// each run behaves identically.
func (l *LiPS) Init(s *sim.Sim) {
	if l.EpochSec == 0 {
		l.EpochSec = 400
	}
	l.Epochs = 0
	l.SolveTime = 0
	l.LPIters = 0
	l.TasksMoved = 0
	l.BlocksMoved = 0
	l.Solver = metrics.SolverStats{}
	l.lastEpoch = EpochStats{}
	l.Err = nil
	l.stale = 0
	l.prevBasis = nil
	l.prevIn = nil
	l.prevHot = nil
	l.topoChanged = false
	l.rrNode = make(map[int]int)
	l.rrStore = make(map[int]int)
	if reg := s.Registry(); reg != nil {
		// Register the LP families too, so the first scrape lists them
		// even before the first epoch solves.
		l.om = obs.RegisterSched(reg)
		l.lpReg = reg
		obs.RegisterLP(reg)
	} else {
		l.om, l.lpReg = nil, nil
	}
	l.armed = true
	s.At(0, func() { l.tick(s) })
}

// OnNodeDown implements sim.Scheduler: the next epoch's LP must exclude
// the dead node, so the column structure changes and the warm-start basis
// is dropped. The simulator already returned the node's tasks to Pending,
// where the next tick picks them up (overflow beyond the surviving
// capacity parks on the fake node as usual).
func (l *LiPS) OnNodeDown(*sim.Sim, cluster.NodeID) { l.topoChanged = true }

// OnNodeUp implements sim.Scheduler: the recovered node re-enters the
// next epoch's LP, changing the column structure again.
func (l *LiPS) OnNodeUp(*sim.Sim, cluster.NodeID) { l.topoChanged = true }

// OnJobArrival implements sim.Scheduler: LiPS waits for the next epoch
// ("non-greedy patience", paper §V-B). The tick chain dies once every job
// completes, so a job arriving into an idle run — routine in serve mode,
// impossible in a batch run — must revive it; the new tick lands on the
// epoch grid (the next multiple of EpochSec), preserving the patience the
// chain would have shown had it never drained.
func (l *LiPS) OnJobArrival(s *sim.Sim, _ int) {
	if l.armed {
		return
	}
	l.armed = true
	next := math.Ceil(s.Now()/l.EpochSec) * l.EpochSec
	s.At(next, func() { l.tick(s) })
}

// OnSlotFree implements sim.Scheduler: LiPS pre-assigns tasks to nodes, so
// free slots drain the node's pinned queue (handled by the simulator) and
// otherwise wait for the next epoch.
func (l *LiPS) OnSlotFree(*sim.Sim, cluster.NodeID) {}

// OnTaskDone implements sim.Scheduler.
func (l *LiPS) OnTaskDone(*sim.Sim, int, int) {}

// tick runs one scheduling epoch.
func (l *LiPS) tick(s *sim.Sim) {
	if l.done(s) {
		l.armed = false // OnJobArrival re-arms on the epoch grid
		return
	}
	defer s.At(s.Now()+l.EpochSec, func() { l.tick(s) })

	queued := l.queuedJobs(s)
	if len(queued) == 0 {
		return
	}
	l.Epochs++

	launched := l.planEpoch(s, queued)
	if launched == 0 {
		l.stale++
		if l.stale >= 3 {
			// Safety valve: rounding starvation (tiny fractions rounding
			// to zero tasks across consecutive epochs). Greedily place
			// the stragglers data-locally so the run always terminates.
			l.fallback(s, queued)
			l.stale = 0
		}
	} else {
		l.stale = 0
	}
}

func (l *LiPS) done(s *sim.Sim) bool {
	for j := range s.W.Jobs {
		if s.JobRemaining(j) > 0 {
			return false
		}
	}
	return true
}

// queuedJobs lists arrived jobs that still have Pending (unassigned)
// tasks.
func (l *LiPS) queuedJobs(s *sim.Sim) []int {
	var out []int
	for _, j := range s.ArrivedJobs() {
		if len(s.PendingTasks(j)) > 0 {
			out = append(out, j)
		}
	}
	return out
}

// planEpoch builds, solves and applies one epoch's LP. It returns the
// number of tasks enqueued.
func (l *LiPS) planEpoch(s *sim.Sim, queued []int) int {
	// Build a synthetic sub-workload of the remaining work: one job item
	// per queued job covering only its pending tasks, one data item per
	// input job covering only the pending blocks (with their current
	// placement as the origin mix).
	subJobs := make([]workload.Job, 0, len(queued))
	var subObjects []hdfs.DataObject
	subPlacement := make([]map[cluster.StoreID]float64, 0, len(queued))
	pendingOf := make([][]int, len(queued))

	for qi, j := range queued {
		job := s.W.Jobs[j]
		pending := s.PendingTasks(j)
		pendingOf[qi] = pending
		sub := job
		sub.ID = qi
		sub.NumTasks = len(pending)
		if job.HasInput() {
			obj := s.W.Objects[job.Object]
			mb := 0.0
			frac := make(map[cluster.StoreID]float64)
			for _, t := range pending {
				bmb := obj.BlockSizeMB(t)
				mb += bmb
				frac[s.P.Primary(obj.ID, t)] += bmb
			}
			for st := range frac {
				frac[st] /= mb
			}
			sub.Object = hdfs.ObjectID(len(subObjects))
			sub.InputMB = mb
			subObjects = append(subObjects, hdfs.DataObject{
				ID: sub.Object, Name: obj.Name, SizeMB: mb, Origin: s.P.Primary(obj.ID, pending[0]),
			})
			subPlacement = append(subPlacement, frac)
		}
		subJobs = append(subJobs, sub)
	}

	in, err := l.buildInstance(s, subJobs, subObjects, subPlacement)
	if err != nil {
		l.fail(err)
		return 0
	}
	opts := l.LPOpts
	opts.Metrics = l.lpReg

	var plan *core.Plan
	var elapsed time.Duration
	if l.ColGen {
		// Restricted-master path: no basis carries across epochs (the
		// master's column layout depends on materialization order), but
		// the previous plan's hot machines seed the new master so the
		// first pricing round already holds the likely support.
		start := time.Now()
		p, _, cgErr := core.SolveOnlineColGen(in, core.ColGenOptions{
			LP: opts, SeedMachines: seedMachines(in, l.prevHot),
		})
		elapsed = time.Since(start)
		l.SolveTime += elapsed
		if cgErr != nil {
			l.fail(fmt.Errorf("epoch %d: %w", l.Epochs, cgErr))
			return 0
		}
		plan = p
		l.prevHot = hotMachineNames(in, plan)
	} else {
		model, mErr := core.BuildOnlineModel(in)
		if mErr != nil {
			l.fail(mErr)
			return 0
		}
		if l.topoChanged && l.prevBasis != nil && l.prevIn != nil {
			// Nodes came or went since the basis was saved: translate it
			// onto the new machine layout (departed units' columns drop,
			// returning units' enter at their bounds) instead of throwing
			// it away. Untranslatable shapes yield nil — a cold start,
			// exactly the old behavior.
			l.prevBasis = core.TranslateOnlineBasis(l.prevBasis, l.prevIn, in)
		}
		if l.WarmStart {
			opts.WarmStart = l.prevBasis
		}
		start := time.Now()
		p, sErr := model.Solve(opts)
		elapsed = time.Since(start)
		l.SolveTime += elapsed
		if sErr != nil {
			l.fail(fmt.Errorf("epoch %d: %w", l.Epochs, sErr))
			return 0
		}
		plan = p
		if l.WarmStart {
			l.prevBasis, l.prevIn = plan.Basis, in
		}
	}
	l.topoChanged = false
	l.LPIters += plan.Iters
	// The warm columns count epoch-to-epoch basis reuse only: a colgen
	// solve's final round often warm-starts from its own earlier rounds
	// (WarmRounds in ColGenStats), which would otherwise record an
	// acceptance that was never attempted at the epoch level.
	warmAttempted := opts.WarmStart != nil
	l.Solver.Observe(plan.Iters, plan.Phase1, warmAttempted, warmAttempted && plan.WarmStarted,
		elapsed, plan.PricingTime)
	l.Solver.ObserveFactor(plan.FactorTime, plan.FtranTime, plan.BtranTime,
		plan.PresolveTime, plan.Refactorizations, plan.FactorNNZ,
		plan.PresolveRows, plan.PresolveCols)
	l.Solver.ObserveColGen(plan.DualIters, plan.ColGenRounds, plan.ColGenColumns)
	pending := 0
	for _, p := range pendingOf {
		pending += len(p)
	}
	blocksBefore := l.BlocksMoved
	launched := l.apply(s, in, plan.Round(), queued, pendingOf)
	l.lastEpoch = EpochStats{
		Epoch: l.Epochs, Jobs: len(queued), Pending: pending,
		Launched: launched, Deferred: pending - launched,
		Solver: l.Solver.String(),
	}
	if l.om != nil {
		l.om.Epochs.Inc()
		l.om.EpochNumber.Set(float64(l.Epochs))
		l.om.SolveSeconds.Observe(elapsed.Seconds())
		l.om.Iterations.Observe(float64(plan.Iters))
		if opts.WarmStart != nil {
			l.om.WarmOffers.Inc()
			if plan.WarmStarted {
				l.om.WarmHits.Inc()
			}
		}
		l.om.Launched.Add(float64(launched))
		l.om.Deferred.Set(float64(pending - launched))
	}
	if tr := s.Tracer(); tr.Enabled() {
		info := &trace.EpochInfo{
			Scheduler: l.Name(), Epoch: l.Epochs,
			Jobs: len(queued), Pending: pending,
			Warm: opts.WarmStart != nil, WarmAccepted: plan.WarmStarted,
			Iters: plan.Iters, Phase1: plan.Phase1,
			PresolveRows: plan.PresolveRows, PresolveCols: plan.PresolveCols,
			Launched: launched, Deferred: pending - launched,
			BlocksMoved: l.BlocksMoved - blocksBefore,
		}
		if l.TraceTimings {
			info.SolveMS = float64(elapsed.Microseconds()) / 1e3
			info.PricingMS = float64(plan.PricingTime.Microseconds()) / 1e3
			info.FactorMS = float64(plan.FactorTime.Microseconds()) / 1e3
			info.PresolveMS = float64(plan.PresolveTime.Microseconds()) / 1e3
		}
		tr.Emit(trace.Event{T: s.Now(), Kind: trace.KindEpoch, Epoch: info})
	}
	return launched
}

// buildInstance constructs the core.Instance for the sub-workload, mapping
// each sub-object's placement fractions onto store units.
func (l *LiPS) buildInstance(s *sim.Sim, jobs []workload.Job, objects []hdfs.DataObject, placements []map[cluster.StoreID]float64) (*core.Instance, error) {
	// Build with a placement that has every sub-object on its nominal
	// origin, then overwrite the origin mixes with the real fractions.
	p := hdfs.NewPlacement(objects)
	in, err := core.NewInstance(s.C, jobs, objects, p, core.InstanceOptions{
		Aggregate: l.Aggregate, Horizon: l.EpochSec,
	})
	if err != nil {
		return nil, err
	}
	// Crashed nodes offer no capacity this epoch; shrink (or drop) their
	// units. Stores keep their units — data outlives co-located compute.
	in.FilterMachines(func(n cluster.NodeID) bool { return s.NodeAlive(n) })
	unitOf := in.StoreUnitOf()
	for i := range objects {
		// Accumulate in sorted store order: several stores can fold into
		// one unit, and float addition in map-iteration order would give
		// the origin mix different low bits on every run — which the LP
		// then amplifies into different rounded plans for a fixed seed.
		stores := make([]cluster.StoreID, 0, len(placements[i]))
		for st := range placements[i] {
			stores = append(stores, st)
		}
		sort.Slice(stores, func(a, b int) bool { return stores[a] < stores[b] })
		origin := make(map[int]float64)
		for _, st := range stores {
			unit, ok := unitOf[st]
			if !ok {
				return nil, fmt.Errorf("sched: store %d not in any unit", st)
			}
			origin[unit] += placements[i][st]
		}
		in.Data[i].Origin = origin
	}
	if l.PriceMultiplier != nil {
		now := s.Now()
		for i := range in.Machines {
			if in.Machines[i].Fake {
				continue
			}
			in.Machines[i].PerECUSecMC *= l.PriceMultiplier(in.Machines[i].Type, now)
		}
	}
	return in, nil
}

// apply turns the rounded plan into concrete data moves and pinned tasks.
func (l *LiPS) apply(s *sim.Sim, in *core.Instance, ip *core.IntegralPlan, queued []int, pendingOf [][]int) int {
	unitOf := in.StoreUnitOf()

	// Per data item: desired block counts per store unit.
	wantBlocks := make(map[int]map[int]int) // data item → unit → blocks
	for _, mv := range ip.Moves {
		if wantBlocks[mv.Data] == nil {
			wantBlocks[mv.Data] = make(map[int]int)
		}
		wantBlocks[mv.Data][mv.Store] += mv.Blocks
	}

	// Reconcile each input job's pending blocks with the desired layout:
	// blocks already on a wanted unit stay; surplus blocks move to
	// deficit units. Track per-task (store, readyAt).
	type taskLoc struct {
		store   cluster.StoreID
		unit    int
		readyAt float64
	}
	locs := make([]map[int]taskLoc, len(queued)) // qi → task → location
	for qi := range queued {
		locs[qi] = make(map[int]taskLoc)
		job := s.W.Jobs[queued[qi]]
		if !job.HasInput() {
			continue
		}
		item := in.Jobs[qi].Data
		obj := s.W.Objects[job.Object]
		want := wantBlocks[item]
		// Pass 1: keep blocks already where the plan wants them. Blocks
		// with a relocation still in flight (issued by an earlier epoch,
		// then orphaned by a crash or re-plan) are pinned to that move's
		// destination rather than raced with a second move.
		var homeless []int
		for _, t := range pendingOf[qi] {
			if dst, doneAt, inFlight := s.BlockMove(int(obj.ID), t); inFlight {
				u := unitOf[dst]
				if want[u] > 0 {
					want[u]--
				}
				locs[qi][t] = taskLoc{store: dst, unit: u, readyAt: doneAt}
				continue
			}
			st := s.P.Primary(obj.ID, t)
			unit := unitOf[st]
			if want[unit] > 0 {
				want[unit]--
				locs[qi][t] = taskLoc{store: st, unit: unit, readyAt: s.Now()}
			} else {
				homeless = append(homeless, t)
			}
		}
		// Pass 2: move the rest to units still owed blocks, each block
		// to the cheapest deficit unit from where it currently sits
		// (mirroring the LP's transportation flows — typically a free
		// intra-zone hop).
		units := make([]int, 0, len(want))
		for u := range want {
			units = append(units, u)
		}
		sort.Ints(units)
		for _, t := range homeless {
			st := s.P.Primary(obj.ID, t)
			best, bestCost := -1, cost.Money(0)
			for _, u := range units {
				if want[u] == 0 {
					continue
				}
				c := s.C.SSPerGB(st, in.Stores[u].Stores[0])
				if best == -1 || c < bestCost {
					best, bestCost = u, c
				}
			}
			if best == -1 {
				// Rounding mismatch: leave the block in place.
				locs[qi][t] = taskLoc{store: st, unit: unitOf[st], readyAt: s.Now()}
				continue
			}
			want[best]--
			dst := l.pickStore(in, best)
			doneAt := s.MoveBlock(int(obj.ID), t, dst)
			l.BlocksMoved++
			locs[qi][t] = taskLoc{store: dst, unit: best, readyAt: doneAt}
		}
	}

	// Assign tasks per (job, machine unit, store unit) count.
	launched := 0
	byJob := make(map[int][]core.TaskAssignment)
	for _, a := range ip.Assignments {
		byJob[a.Job] = append(byJob[a.Job], a)
	}
	for qi := range queued {
		j := queued[qi]
		job := s.W.Jobs[j]
		assignments := byJob[qi]
		sort.Slice(assignments, func(a, b int) bool {
			if assignments[a].Machine != assignments[b].Machine {
				return assignments[a].Machine < assignments[b].Machine
			}
			return assignments[a].Store < assignments[b].Store
		})
		remaining := append([]int(nil), pendingOf[qi]...)
		taken := make(map[int]bool)
		for _, a := range assignments {
			for n := 0; n < a.Tasks; n++ {
				t, ok := pickTask(remaining, taken, func(t int) bool {
					if !job.HasInput() {
						return true
					}
					return locs[qi][t].unit == a.Store
				})
				if !ok {
					// Rounding mismatch between moves and assignments:
					// take the unassigned task whose data is cheapest to
					// read from this machine unit.
					t, ok = cheapestTask(in, remaining, taken, a.Machine, func(t int) int {
						if !job.HasInput() {
							return 0
						}
						return locs[qi][t].unit
					})
					if !ok {
						break
					}
				}
				node := l.pickNode(s, in, a.Machine)
				store, readyAt := sim.NoStore, s.Now()
				if job.HasInput() {
					store, readyAt = locs[qi][t].store, locs[qi][t].readyAt
				}
				if err := s.Enqueue(j, t, node, store, readyAt); err != nil {
					l.fail(err)
					continue
				}
				launched++
				l.TasksMoved++
			}
		}
	}
	return launched
}

// hotMachineNames lists the non-fake machine units carrying work in the
// plan, by name — names are the stable identity across per-epoch
// instances, whose unit indices shift with churn.
func hotMachineNames(in *core.Instance, p *core.Plan) []string {
	var names []string
	for _, l := range p.HotMachines() {
		if !in.Machines[l].Fake {
			names = append(names, in.Machines[l].Name)
		}
	}
	return names
}

// seedMachines resolves hot-machine names against this epoch's instance;
// units that left the cluster simply drop out.
func seedMachines(in *core.Instance, names []string) []int {
	if len(names) == 0 {
		return nil
	}
	idx := make(map[string]int, len(in.Machines))
	for l, m := range in.Machines {
		if !m.Fake {
			idx[m.Name] = l
		}
	}
	var out []int
	for _, n := range names {
		if l, ok := idx[n]; ok {
			out = append(out, l)
		}
	}
	return out
}

// pickTask selects the first untaken task satisfying pred.
func pickTask(tasks []int, taken map[int]bool, pred func(int) bool) (int, bool) {
	for _, t := range tasks {
		if !taken[t] && pred(t) {
			taken[t] = true
			return t, true
		}
	}
	return 0, false
}

// cheapestTask selects the untaken task whose data unit is cheapest to
// read from the given machine unit.
func cheapestTask(in *core.Instance, tasks []int, taken map[int]bool, machine int, unitOf func(int) int) (int, bool) {
	best, bestMC := -1, 0.0
	for _, t := range tasks {
		if taken[t] {
			continue
		}
		mc := in.MSPerMBMC[machine][unitOf(t)]
		if best == -1 || mc < bestMC {
			best, bestMC = t, mc
		}
	}
	if best == -1 {
		return 0, false
	}
	taken[best] = true
	return best, true
}

// pickNode round-robins over the concrete nodes of a machine unit.
func (l *LiPS) pickNode(s *sim.Sim, in *core.Instance, unit int) cluster.NodeID {
	nodes := in.Machines[unit].Nodes
	idx := l.rrNode[unit] % len(nodes)
	l.rrNode[unit]++
	return nodes[idx]
}

// pickStore round-robins over the concrete stores of a store unit.
func (l *LiPS) pickStore(in *core.Instance, unit int) cluster.StoreID {
	stores := in.Stores[unit].Stores
	idx := l.rrStore[unit] % len(stores)
	l.rrStore[unit]++
	return stores[idx]
}

// fallback greedily enqueues all pending tasks data-locally (or on the
// cheapest live node) — only used to break rounding starvation. Tasks
// whose input block is still being relocated by an earlier epoch are left
// alone: enqueueing them against the stale primary would race the move
// (the block could land mid-read); the next epoch plans them at the
// move's destination instead.
func (l *LiPS) fallback(s *sim.Sim, queued []int) {
	cheapest := cluster.NodeID(cluster.None)
	for _, n := range s.C.Nodes {
		if !s.NodeAlive(n.ID) {
			continue
		}
		if cheapest == cluster.None || n.PerECUSec < s.C.Nodes[cheapest].PerECUSec {
			cheapest = n.ID
		}
	}
	if cheapest == cluster.None {
		return // whole cluster down; wait for a recovery
	}
	for _, j := range queued {
		job := s.W.Jobs[j]
		for _, t := range s.PendingTasks(j) {
			if !job.HasInput() {
				if err := s.Enqueue(j, t, cheapest, sim.NoStore, s.Now()); err != nil {
					l.fail(err)
				}
				continue
			}
			if _, _, inFlight := s.BlockMove(int(job.Object), t); inFlight {
				continue
			}
			st := s.P.Primary(job.Object, t)
			node := s.C.Stores[st].Node
			if node == cluster.None || !s.NodeAlive(node) {
				node = cheapest
			}
			if err := s.Enqueue(j, t, node, st, s.Now()); err != nil {
				l.fail(err)
			}
		}
	}
}

func (l *LiPS) fail(err error) {
	if l.Err == nil {
		l.Err = err
	}
}
