package sched

import (
	"lips/internal/cluster"
	"lips/internal/sim"
)

// Scale is the locality-greedy scheduler specialized for very large
// clusters (the -scale runs): FIFO job order, best-replica placement,
// and no per-decision allocations. It implements sim.BatchScheduler, so
// a sweep that idles thousands of nodes at once (job arrival, crash
// recovery) arrives as one OnSlotsFree call instead of N OnSlotFree
// calls, and it walks each job's pending tasks with a forward-only
// cursor (sim.NextPending) instead of materializing PendingTasks slices.
//
// The cursor only moves forward, but kills, timeouts, and faults can
// return tasks to Pending behind it. fill therefore falls back to one
// full rescan (cursors reset to 0) whenever the cursors find nothing and
// the simulator still reports pending work — correctness never depends
// on the cursor invariant, only the amortized cost does.
type Scale struct {
	sim.NopNodeEvents
	cursors []int // per-job lowest possibly-pending task index
	head    int   // lowest job index that may still have pending work
}

// NewScale returns the large-cluster batch scheduler.
func NewScale() *Scale { return &Scale{} }

// Name implements sim.Scheduler.
func (sc *Scale) Name() string { return "scale" }

// Init implements sim.Scheduler.
func (sc *Scale) Init(s *sim.Sim) {
	sc.cursors = make([]int, len(s.W.Jobs))
	sc.head = 0
}

// OnJobArrival implements sim.Scheduler.
func (sc *Scale) OnJobArrival(s *sim.Sim, job int) {
	for len(sc.cursors) <= job {
		// Jobs added after Init (serve mode) grow the cursor table.
		sc.cursors = append(sc.cursors, 0)
	}
	sc.cursors[job] = 0
	if job < sc.head {
		sc.head = job // late arrival behind the head re-opens it
	}
	s.KickIdleNodes()
}

// OnTaskDone implements sim.Scheduler.
func (sc *Scale) OnTaskDone(*sim.Sim, int, int) {}

// OnSlotFree implements sim.Scheduler.
func (sc *Scale) OnSlotFree(s *sim.Sim, n cluster.NodeID) {
	sc.fill(s, n)
}

// OnSlotsFree implements sim.BatchScheduler: fill each idle node in the
// ascending order the simulator delivers, stopping early once the
// pending backlog is drained.
func (sc *Scale) OnSlotsFree(s *sim.Sim, nodes []cluster.NodeID) {
	for _, n := range nodes {
		if !sc.fill(s, n) {
			return // nothing launchable anywhere; later nodes see the same backlog
		}
	}
}

// fill launches pending work onto n until the node or the backlog is
// exhausted. It reports whether the backlog still had work for the last
// launch attempt — false means every arrived job is drained.
func (sc *Scale) fill(s *sim.Sim, n cluster.NodeID) bool {
	for s.FreeSlots(n) > 0 {
		job, task, ok := sc.next(s)
		if !ok {
			return false
		}
		store := sim.NoStore
		if s.W.Jobs[job].HasInput() {
			store = s.BestReplica(job, task, n)
		}
		if err := s.Launch(job, task, n, store); err != nil {
			// Launch refuses only on scheduler misuse; skip the task so a
			// bug cannot spin the fill loop.
			sc.cursors[job] = task + 1
			continue
		}
		sc.cursors[job] = task
	}
	return true
}

// next returns the lowest arrived job's lowest pending task at or after
// its cursor, scanning from the head job so a launch costs amortized
// O(1) instead of a pass over every arrived job. If the scan comes up
// empty while the simulator still counts pending tasks (work re-pended
// behind the head or a cursor by a kill or a crash), head and cursors
// are reset once and the scan repeats.
func (sc *Scale) next(s *sim.Sim) (job, task int, ok bool) {
	for rescan := 0; rescan < 2; rescan++ {
		for j := sc.head; j < len(sc.cursors); j++ {
			if !s.JobArrived(j) {
				continue // may arrive later; OnJobArrival re-opens the head
			}
			if t := s.NextPending(j, sc.cursors[j]); t >= 0 {
				return j, t, true
			}
			sc.cursors[j] = s.W.Jobs[j].NumTasks
			if j == sc.head {
				sc.head++
			}
		}
		pending, _, _, _ := s.StateCounts()
		if pending == 0 {
			return 0, 0, false
		}
		sc.head = 0
		for j := range sc.cursors {
			sc.cursors[j] = 0
		}
	}
	return 0, 0, false
}
