package sched

import (
	"math/rand"
	"testing"

	"lips/internal/cluster"
	"lips/internal/sim"
	"lips/internal/workload"
)

func TestQuincyCompletesWorkload(t *testing.T) {
	c := mixedCluster()
	w := smallJobSet(rand.New(rand.NewSource(2)), 3)
	q := NewQuincy()
	r := runSched(t, c, w, nil, q, sim.Options{})
	if q.Rounds == 0 {
		t.Error("no flow rounds ran")
	}
	if r.Makespan <= 0 {
		t.Error("zero makespan")
	}
	for j, done := range r.JobDone {
		if done <= 0 {
			t.Errorf("job %d never finished", j)
		}
	}
}

func TestQuincyBeatsFIFOLocality(t *testing.T) {
	// Quincy's whole point: the flow optimum finds a globally better
	// locality assignment than greedy slot-by-slot matching.
	build := func() (*cluster.Cluster, *workload.Workload) {
		c := mixedCluster()
		rng := rand.New(rand.NewSource(8))
		wb := workload.NewBuilder()
		for i := 0; i < 10; i++ {
			wb.AddInputJob("j", "u", workload.Grep, 6*64, cluster.StoreID(rng.Intn(6)), float64(i*3))
		}
		return c, wb.Build()
	}
	c, w := build()
	fifo := runSched(t, c, w, nil, NewFIFO(), sim.Options{})
	c, w = build()
	quincy := runSched(t, c, w, nil, NewQuincy(), sim.Options{})
	if quincy.Locality.LocalFraction() < fifo.Locality.LocalFraction() {
		t.Errorf("quincy locality %.2f < fifo %.2f",
			quincy.Locality.LocalFraction(), fifo.Locality.LocalFraction())
	}
}

func TestQuincyIsNotCostAware(t *testing.T) {
	// On the heterogeneous cluster with data on the expensive nodes,
	// Quincy optimizes locality and therefore pays m1.medium prices —
	// LiPS must beat it on dollars. This is the paper's core argument
	// against purely locality/fairness-driven schedulers.
	build := func() (*cluster.Cluster, *workload.Workload) {
		c := mixedCluster()
		rng := rand.New(rand.NewSource(4))
		wb := workload.NewBuilder()
		for i := 0; i < 6; i++ {
			// Data only on the m1.medium stores (0–2).
			wb.AddInputJob("j", "u", workload.Stress2, 8*64, cluster.StoreID(rng.Intn(3)), 0)
		}
		return c, wb.Build()
	}
	c, w := build()
	quincy := runSched(t, c, w, nil, NewQuincy(), sim.Options{})
	c, w = build()
	lips := NewLiPS(400)
	lipsRes := runSched(t, c, w, nil, lips, sim.Options{TaskTimeoutSec: 1200})
	if lipsRes.TotalCost() >= quincy.TotalCost() {
		t.Errorf("lips %v did not beat quincy %v on cost", lipsRes.TotalCost(), quincy.TotalCost())
	}
	t.Logf("quincy=%v lips=%v (%.0f%% cheaper)", quincy.TotalCost(), lipsRes.TotalCost(),
		100*(1-float64(lipsRes.TotalCost())/float64(quincy.TotalCost())))
}
