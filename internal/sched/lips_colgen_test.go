package sched

import (
	"math/rand"
	"testing"

	"lips/internal/sim"
)

// TestLiPSColGenMatchesDirect runs the same workload through the direct
// full-model LiPS and the column-generation LiPS. Both must complete,
// land on comparable dollars, and the colgen run must actually have gone
// through the restricted-master path (pricing rounds recorded).
func TestLiPSColGenMatchesDirect(t *testing.T) {
	run := func(l *LiPS) *sim.Result {
		c := mixedCluster()
		w := smallJobSet(rand.New(rand.NewSource(3)), 3)
		return runSched(t, c, w, nil, l, sim.Options{TaskTimeoutSec: 1200})
	}

	direct := NewLiPS(400)
	directRes := run(direct)

	cg := NewLiPS(400)
	cg.ColGen = true
	cgRes := run(cg)

	if cgRes.Makespan <= 0 || directRes.Makespan <= 0 {
		t.Fatalf("zero makespan: direct %v colgen %v", directRes.Makespan, cgRes.Makespan)
	}
	if cg.Epochs == 0 {
		t.Fatal("colgen lips ran no epochs")
	}
	if cg.Solver.ColGenRounds == 0 {
		t.Errorf("colgen run recorded no pricing rounds: %s", cg.Solver.String())
	}
	if cg.Solver.ColGenColumns == 0 {
		t.Errorf("colgen run recorded no generated columns: %s", cg.Solver.String())
	}

	// Both solve the same exact LP per epoch, so dollars should agree
	// closely; allow slack for tie-breaking between equal-cost vertices.
	dc, cc := float64(directRes.TotalCost()), float64(cgRes.TotalCost())
	if diff := cc - dc; diff > 0.05*dc {
		t.Errorf("colgen cost %v > direct %v by %.1f%%", cgRes.TotalCost(), directRes.TotalCost(), 100*diff/dc)
	}
	t.Logf("direct=%v colgen=%v solver: %s", directRes.TotalCost(), cgRes.TotalCost(), cg.Solver.String())
}

// TestLiPSInitTwice reuses one scheduler across two sim runs — the Init
// path must reset state and re-register observability without panicking
// on duplicate metric names.
func TestLiPSInitTwice(t *testing.T) {
	l := NewLiPS(400)
	for i := 0; i < 2; i++ {
		c := mixedCluster()
		w := smallJobSet(rand.New(rand.NewSource(3)), 3)
		r := runSched(t, c, w, nil, l, sim.Options{TaskTimeoutSec: 1200})
		if r.Makespan <= 0 {
			t.Fatalf("run %d: zero makespan", i)
		}
	}
}
