package sched

import (
	"bytes"
	"math/rand"
	"testing"

	"lips/internal/obs"
	"lips/internal/sim"
	"lips/internal/trace"
)

// TestLiveMetricsMatchTraceReplay is the shared-vocabulary contract: a
// LiPS run scraped live and the same run's JSONL trace replayed through
// obs.NewTraceSink must agree on every deterministic family — lifecycle
// counters, epoch counters, and the sampled gauges (live runs on the same
// cadence as the trace sampler, so the last refresh and the last sample
// coincide). Wall-clock histograms and the cost counters are excluded:
// the replay derives cost from the cumulative sample series, which stops
// at the last sample rather than the end-of-run ledger.
func TestLiveMetricsMatchTraceReplay(t *testing.T) {
	liveReg := obs.NewRegistry()
	var buf bytes.Buffer
	sink := trace.NewJSONL(&buf)
	c := mixedCluster()
	w := smallJobSet(rand.New(rand.NewSource(7)), 3)
	plan := &sim.FaultPlan{Faults: []sim.Fault{
		{At: 210, Kind: sim.FaultNodeDown, Node: 0},
		{At: 400, Kind: sim.FaultNodeUp, Node: 0},
	}}
	opts := sim.Options{
		TaskTimeoutSec: 1200, Faults: plan,
		Tracer: sink, SampleIntervalSec: 50,
		Metrics: liveReg, MetricsSampleSec: 50,
	}
	runSched(t, c, w, nil, NewLiPS(200), opts)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := trace.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	replayReg := obs.NewRegistry()
	replay := obs.NewTraceSink(replayReg)
	for _, e := range events {
		replay.Emit(e)
	}

	check := func(name string, labels ...string) {
		t.Helper()
		if len(labels) == 0 {
			labels = []string{""}
		}
		for _, lv := range labels {
			var live, rep float64
			var ok1, ok2 bool
			if lv == "" {
				live, ok1 = liveReg.Value(name)
				rep, ok2 = replayReg.Value(name)
			} else {
				live, ok1 = liveReg.Value(name, lv)
				rep, ok2 = replayReg.Value(name, lv)
			}
			if !ok1 || !ok2 {
				t.Errorf("%s{%s}: registered live=%v replay=%v", name, lv, ok1, ok2)
				continue
			}
			if live != rep {
				t.Errorf("%s{%s}: live %g != replay %g", name, lv, live, rep)
			}
		}
	}

	check(obs.MSimEnqueued)
	check(obs.MSimDone)
	check(obs.MSimLaunched, obs.Localities...)
	check(obs.MSimKilled, obs.KillReasons...)
	check(obs.MSimMoves, obs.MoveReasons...)
	check(obs.MSimMovedMB)
	check(obs.MSimFaults, obs.FaultKinds...)
	check(obs.MSchedEpochs)
	check(obs.MSchedEpochNumber)
	check(obs.MSchedDeferred)
	check(obs.MSchedWarmOffers)
	check(obs.MSchedWarmHits)
	check(obs.MSchedLaunched)
	check(obs.MSchedIters) // histogram Value is the observation count
	// Sampled gauges: identical cadences make the last live refresh and
	// the last replayed sample the same scan.
	check(obs.MSimClockSeconds)
	check(obs.MSimBusySlotSeconds)
	check(obs.MSimFreeSlots)
	check(obs.MSimLiveSlots)
	check(obs.MSimTasks, obs.TaskStates...)

	if v, _ := liveReg.Value(obs.MSimDone); v == 0 {
		t.Error("run completed no tasks — the comparison is vacuous")
	}
	if v, _ := liveReg.Value(obs.MSchedEpochs); v == 0 {
		t.Error("run solved no epochs — the comparison is vacuous")
	}
}

// TestLiPSRegistersLPFamilies checks Init registers the lips_lp_* families
// eagerly, so a scrape before the first epoch solve already lists them.
func TestLiPSRegistersLPFamilies(t *testing.T) {
	reg := obs.NewRegistry()
	c := mixedCluster()
	w := smallJobSet(rand.New(rand.NewSource(7)), 3)
	opts := sim.Options{TaskTimeoutSec: 1200, Metrics: reg}
	runSched(t, c, w, nil, NewLiPS(200), opts)
	for _, name := range []string{obs.MLPSolves, obs.MLPIters, obs.MLPSolveSeconds, obs.MLPPricingWorkers} {
		if _, ok := reg.Value(name); !ok {
			t.Errorf("%s not registered", name)
		}
	}
	if v, _ := reg.Value(obs.MLPSolves); v == 0 {
		t.Error("LP solve counter is zero after a LiPS run")
	}
	if epochs, _ := reg.Value(obs.MSchedEpochs); epochs > 0 {
		if iters, _ := reg.Value(obs.MLPIters); iters == 0 {
			t.Error("LP iteration counter is zero after epoch solves")
		}
	}
}
