package sched

import (
	"bytes"
	"math/rand"
	"testing"

	"lips/internal/sim"
	"lips/internal/trace"
)

// traceRun executes one seeded LiPS run under churn with a JSONL sink
// and returns the raw trace bytes.
func traceRun(t *testing.T, seed int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	sink := trace.NewJSONL(&buf)
	c := mixedCluster()
	w := smallJobSet(rand.New(rand.NewSource(seed)), 3)
	// Faults land after the first epoch (t=200) so attempts are running
	// when the crash hits and kill events appear in the stream.
	plan := &sim.FaultPlan{Faults: []sim.Fault{
		{At: 210, Kind: sim.FaultNodeDown, Node: 0},
		{At: 230, Kind: sim.FaultStoreLoss, Store: 1},
		{At: 250, Kind: sim.FaultSlowdown, Node: 2, Factor: 2, DurationSec: 100},
		{At: 400, Kind: sim.FaultNodeUp, Node: 0},
	}}
	opts := sim.Options{
		TaskTimeoutSec: 1200, Faults: plan,
		Tracer: sink, SampleIntervalSec: 50, TraceLabel: "determinism",
	}
	runSched(t, c, w, nil, NewLiPS(200), opts)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Events() == 0 {
		t.Fatal("run produced no trace events")
	}
	return buf.Bytes()
}

// TestTraceDeterministic is the reproducibility contract: two runs of
// the same seeded simulation — LP epochs, injected faults and all —
// write byte-identical JSONL traces.
func TestTraceDeterministic(t *testing.T) {
	a := traceRun(t, 3)
	b := traceRun(t, 3)
	if !bytes.Equal(a, b) {
		la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
		for i := range la {
			if i >= len(lb) || !bytes.Equal(la[i], lb[i]) {
				t.Fatalf("traces diverge at line %d:\n  run A: %s\n  run B: %s", i+1, la[i], safeLine(lb, i))
			}
		}
		t.Fatalf("traces differ in length: %d vs %d bytes", len(a), len(b))
	}
	if c := traceRun(t, 4); bytes.Equal(a, c) {
		t.Error("different seeds produced identical traces")
	}
}

func safeLine(lines [][]byte, i int) []byte {
	if i < len(lines) {
		return lines[i]
	}
	return []byte("<missing>")
}

// TestTraceEventStream checks the emitted stream is schema-valid and
// covers the expected kinds for a faulted LiPS run.
func TestTraceEventStream(t *testing.T) {
	events, err := trace.ReadAll(bytes.NewReader(traceRun(t, 3)))
	if err != nil {
		t.Fatal(err)
	}
	census := map[trace.Kind]int{}
	for _, e := range events {
		census[e.Kind]++
	}
	if census[trace.KindRun] != 1 {
		t.Errorf("run headers = %d, want 1", census[trace.KindRun])
	}
	for _, k := range []trace.Kind{trace.KindEnqueue, trace.KindLaunch, trace.KindDone,
		trace.KindEpoch, trace.KindFault, trace.KindSample, trace.KindKill} {
		if census[k] == 0 {
			t.Errorf("no %s events in faulted LiPS run (census %v)", k, census)
		}
	}
	// The run header leads and describes the scenario.
	if r := events[0]; r.Kind != trace.KindRun || r.Run.Label != "determinism" {
		t.Errorf("first event = %+v, want labelled run header", events[0])
	}
	// Every launch matches a prior enqueue count-wise; every done/kill a launch.
	if census[trace.KindLaunch] < census[trace.KindDone] {
		t.Errorf("launches (%d) < dones (%d)", census[trace.KindLaunch], census[trace.KindDone])
	}
	// Epoch events carry no wall-clock timings unless opted in.
	for _, e := range events {
		if e.Kind == trace.KindEpoch && (e.Epoch.SolveMS != 0 || e.Epoch.PricingMS != 0) {
			t.Errorf("epoch %d leaked wall-clock timings without TraceTimings", e.Epoch.Epoch)
		}
	}
}
