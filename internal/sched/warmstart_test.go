package sched

import (
	"testing"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/sim"
	"lips/internal/workload"
)

// warmStartScenario builds a run that is forced to spread one job over
// many epochs: a tiny cluster against a job far larger than one epoch's
// CPU capacity, all input blocks on a single store. Consecutive epochs
// then carry the same queued job with the same origin set, so the LP's
// shape repeats and the previous basis is reusable.
func warmStartScenario() (*cluster.Cluster, *workload.Workload) {
	b := cluster.NewBuilder(cluster.PaperZones...)
	b.AddInstance(cluster.PaperZones[0], cost.M1Medium)
	b.AddInstance(cluster.PaperZones[1], cost.C1Medium)
	c := b.Build()

	wb := workload.NewBuilder()
	arch := workload.Archetype{Name: "heavy", Property: workload.CPUBound,
		CPUSecPerBlock: 900}
	wb.AddInputJob("heavy", "u", arch, 40*64, cluster.StoreID(0), 0)
	return c, wb.Build()
}

func runLiPS(t *testing.T, warm bool) (*sim.Result, *LiPS) {
	t.Helper()
	c, w := warmStartScenario()
	l := NewLiPS(200)
	l.WarmStart = warm
	r, err := sim.New(c, w, w.Placement(), l, sim.Options{TaskTimeoutSec: 1e9}).Run()
	if err != nil {
		t.Fatalf("warm=%v: %v", warm, err)
	}
	if l.Err != nil {
		t.Fatalf("warm=%v: scheduler error: %v", warm, l.Err)
	}
	return r, l
}

// TestLiPSWarmStartAcrossEpochs drives the scheduler end-to-end and
// checks the epoch-to-epoch basis threading: warm starts are attempted
// from the second solve on, at least one is accepted, and the solver
// stats account for every solve. The cold configuration must never
// attempt one.
func TestLiPSWarmStartAcrossEpochs(t *testing.T) {
	r, l := runLiPS(t, true)
	if l.Epochs < 2 {
		t.Fatalf("scenario finished in %d epochs — cannot exercise basis reuse", l.Epochs)
	}
	if l.Solver.Solves != l.Epochs {
		t.Fatalf("%d solves recorded over %d epochs", l.Solver.Solves, l.Epochs)
	}
	if l.Solver.WarmAttempted == 0 {
		t.Fatal("no warm start attempted despite WarmStart=true and multiple epochs")
	}
	if l.Solver.WarmAccepted == 0 {
		t.Fatalf("no warm start accepted across %d attempts (stats: %s)",
			l.Solver.WarmAttempted, l.Solver.String())
	}
	if l.Solver.SolveTime <= 0 || l.Solver.Iters != l.LPIters {
		t.Fatalf("inconsistent stats: %s vs LPIters=%d", l.Solver.String(), l.LPIters)
	}
	t.Logf("warm run: makespan %.0f s, %s", r.Makespan, l.Solver.String())

	_, cold := runLiPS(t, false)
	if cold.Solver.WarmAttempted != 0 || cold.Solver.WarmAccepted != 0 {
		t.Fatalf("cold run attempted warm starts: %s", cold.Solver.String())
	}
}

// TestLiPSWarmStartDeterministic re-runs the warm configuration and
// asserts bit-identical outcomes: basis reuse must not introduce any
// run-to-run nondeterminism into the schedule.
func TestLiPSWarmStartDeterministic(t *testing.T) {
	r1, l1 := runLiPS(t, true)
	r2, l2 := runLiPS(t, true)
	if r1.Makespan != r2.Makespan {
		t.Fatalf("makespan diverged: %v vs %v", r1.Makespan, r2.Makespan)
	}
	if r1.TotalCost() != r2.TotalCost() {
		t.Fatalf("cost diverged: %v vs %v", r1.TotalCost(), r2.TotalCost())
	}
	if len(r1.JobDone) != len(r2.JobDone) {
		t.Fatalf("job count diverged")
	}
	for j := range r1.JobDone {
		if r1.JobDone[j] != r2.JobDone[j] {
			t.Fatalf("job %d done at %v vs %v", j, r1.JobDone[j], r2.JobDone[j])
		}
	}
	if l1.LPIters != l2.LPIters || l1.Solver.WarmAccepted != l2.Solver.WarmAccepted {
		t.Fatalf("solver path diverged: %s vs %s", l1.Solver.String(), l2.Solver.String())
	}
}
