package sched

import (
	"math/rand"
	"testing"

	"lips/internal/sim"
)

// TestLastEpochStats: before any run LiPS reports no epoch; after a run
// the snapshot reflects the final planning epoch — a positive epoch
// counter within the run's total, the solver one-liner, and a
// launched/deferred split consistent with the pending count. Init must
// reset it so a reused scheduler does not leak the previous run's view.
func TestLastEpochStats(t *testing.T) {
	l := NewLiPS(200)
	if _, ok := l.LastEpochStats(); ok {
		t.Fatal("stats reported before any epoch ran")
	}

	c := mixedCluster()
	w := smallJobSet(rand.New(rand.NewSource(3)), 3)
	runSched(t, c, w, nil, l, sim.Options{})

	es, ok := l.LastEpochStats()
	if !ok {
		t.Fatal("no stats after a completed run")
	}
	if es.Epoch <= 0 || es.Epoch > l.Epochs {
		t.Errorf("last epoch %d outside (0, %d]", es.Epoch, l.Epochs)
	}
	if es.Jobs <= 0 || es.Pending <= 0 {
		t.Errorf("empty epoch snapshot: %+v", es)
	}
	if es.Deferred != es.Pending-es.Launched {
		t.Errorf("deferred %d != pending %d - launched %d", es.Deferred, es.Pending, es.Launched)
	}
	if es.Solver == "" {
		t.Error("solver one-liner empty")
	}

	// Init (a new run) resets the snapshot.
	s := sim.New(mixedCluster(), smallJobSet(rand.New(rand.NewSource(4)), 3), nil, l, sim.Options{})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.LastEpochStats(); ok {
		t.Error("stats survived Init — run-scoped state leaked")
	}
}
