package sched

import (
	"math/rand"
	"testing"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/hdfs"
	"lips/internal/sim"
	"lips/internal/workload"
)

// mixedCluster builds a small heterogeneous testbed: 3 m1.medium and 3
// c1.medium across the three paper zones.
func mixedCluster() *cluster.Cluster {
	b := cluster.NewBuilder(cluster.PaperZones...)
	for i := 0; i < 3; i++ {
		b.AddInstance(cluster.PaperZones[i], cost.M1Medium)
	}
	for i := 0; i < 3; i++ {
		b.AddInstance(cluster.PaperZones[i], cost.C1Medium)
	}
	return b.Build()
}

// smallJobSet is a shrunken Table IV: grep, wordcount, stress2 and a pi
// job, with inputs scattered over the m1.medium stores.
func smallJobSet(rng *rand.Rand, nStores int) *workload.Workload {
	wb := workload.NewBuilder()
	pick := func() cluster.StoreID { return cluster.StoreID(rng.Intn(nStores)) }
	wb.AddNoInputJob("pi", "user1", 2, workload.PiTaskCPUSec, 0)
	wb.AddInputJob("wc", "user2", workload.WordCount, 16*64, pick(), 0)
	wb.AddInputJob("grep", "user3", workload.Grep, 32*64, pick(), 0)
	wb.AddInputJob("st2", "user4", workload.Stress2, 16*64, pick(), 0)
	return wb.Build()
}

func runSched(t *testing.T, c *cluster.Cluster, w *workload.Workload, p *hdfs.Placement, sch sim.Scheduler, opts sim.Options) *sim.Result {
	t.Helper()
	s := sim.New(c, w, p, sch, opts)
	r, err := s.Run()
	if err != nil {
		t.Fatalf("%s: %v", sch.Name(), err)
	}
	if l, ok := sch.(*LiPS); ok && l.Err != nil {
		t.Fatalf("lips scheduler error: %v", l.Err)
	}
	return r
}

func TestFIFOCompletesAndPrefersLocality(t *testing.T) {
	c := mixedCluster()
	w := smallJobSet(rand.New(rand.NewSource(1)), 3)
	r := runSched(t, c, w, nil, NewFIFO(), sim.Options{})
	if r.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
	// The workload's data lives on 3 of 6 nodes; FIFO should still find
	// mostly node-local or zone-local slots for the early tasks, and
	// never pay placement (it does not move data).
	if got := r.Cost.Category(cost.CatPlacement); got != 0 {
		t.Errorf("FIFO paid placement: %v", got)
	}
}

func TestDelayImprovesLocalityOverFIFO(t *testing.T) {
	// Many small jobs with data spread over all stores: delay scheduling
	// should push node-local reads at or above the FIFO level.
	build := func() (*cluster.Cluster, *workload.Workload) {
		c := mixedCluster()
		rng := rand.New(rand.NewSource(7))
		wb := workload.NewBuilder()
		for i := 0; i < 12; i++ {
			wb.AddInputJob("j", "u", workload.Grep, 4*64, cluster.StoreID(rng.Intn(6)), float64(i))
		}
		return c, wb.Build()
	}
	c, w := build()
	fifo := runSched(t, c, w, nil, NewFIFO(), sim.Options{})
	c, w = build()
	d := NewDelay()
	d.NodeWaitSec, d.ZoneWaitSec = 60, 60 // ~3 task lengths, per the delay paper
	delay := runSched(t, c, w, nil, d, sim.Options{})
	if delay.Locality.LocalFraction() < fifo.Locality.LocalFraction() {
		t.Errorf("delay locality %.2f < fifo %.2f",
			delay.Locality.LocalFraction(), fifo.Locality.LocalFraction())
	}
	if delay.Locality.LocalFraction() < 0.9 {
		t.Errorf("delay locality %.2f, want near 1 (paper: almost 100%%)",
			delay.Locality.LocalFraction())
	}
	// The locality comes at a makespan price relative to greedy FIFO.
	if delay.Makespan < fifo.Makespan {
		t.Logf("note: delay makespan %.0f beat fifo %.0f", delay.Makespan, fifo.Makespan)
	}
}

func TestLiPSSavesCostOnHeterogeneousCluster(t *testing.T) {
	// The headline claim, in miniature: on a cluster with 4–5× cheaper
	// ECU-seconds available (c1.medium), LiPS must beat the default and
	// delay schedulers on dollars, possibly at longer makespan.
	build := func() (*cluster.Cluster, *workload.Workload) {
		return mixedCluster(), smallJobSet(rand.New(rand.NewSource(3)), 3)
	}
	c, w := build()
	fifo := runSched(t, c, w, nil, NewFIFO(), sim.Options{})
	c, w = build()
	delay := runSched(t, c, w, nil, NewDelay(), sim.Options{})
	c, w = build()
	lips := NewLiPS(400)
	lipsRes := runSched(t, c, w, nil, lips, sim.Options{TaskTimeoutSec: 1200})

	if lipsRes.TotalCost() >= fifo.TotalCost() {
		t.Errorf("lips %v >= fifo %v", lipsRes.TotalCost(), fifo.TotalCost())
	}
	if lipsRes.TotalCost() >= delay.TotalCost() {
		t.Errorf("lips %v >= delay %v", lipsRes.TotalCost(), delay.TotalCost())
	}
	if lips.Epochs == 0 || lips.TasksMoved == 0 {
		t.Errorf("lips stats empty: %+v", lips)
	}
	t.Logf("fifo=%v delay=%v lips=%v (%.0f%% saving vs fifo)",
		fifo.TotalCost(), delay.TotalCost(), lipsRes.TotalCost(),
		100*(1-float64(lipsRes.TotalCost())/float64(fifo.TotalCost())))
}

func TestLiPSHandlesArrivalsOverTime(t *testing.T) {
	c := mixedCluster()
	rng := rand.New(rand.NewSource(9))
	wb := workload.NewBuilder()
	for i := 0; i < 8; i++ {
		wb.AddInputJob("j", "u", workload.Grep, 8*64, cluster.StoreID(rng.Intn(6)), float64(i)*200)
	}
	w := wb.Build()
	lips := NewLiPS(100)
	r := runSched(t, c, w, nil, lips, sim.Options{TaskTimeoutSec: 1200})
	if lips.Epochs < 2 {
		t.Errorf("epochs = %d, want several for staggered arrivals", lips.Epochs)
	}
	for j, done := range r.JobDone {
		if done < w.Jobs[j].ArrivalSec {
			t.Errorf("job %d done before arrival", j)
		}
	}
}

func TestLiPSWithoutAggregation(t *testing.T) {
	c := mixedCluster()
	w := smallJobSet(rand.New(rand.NewSource(5)), 3)
	lips := NewLiPS(400)
	lips.Aggregate = false
	r := runSched(t, c, w, nil, lips, sim.Options{TaskTimeoutSec: 1200})
	if r.TotalCost() == 0 {
		t.Fatal("no cost recorded")
	}
}

func TestLiPSAggregationCostParity(t *testing.T) {
	// Group aggregation is advertised as lossless for class-structured
	// clusters: total cost must match the per-node LP within rounding
	// noise.
	run := func(agg bool) cost.Money {
		c := mixedCluster()
		w := smallJobSet(rand.New(rand.NewSource(5)), 3)
		lips := NewLiPS(400)
		lips.Aggregate = agg
		r := runSched(t, c, w, nil, lips, sim.Options{TaskTimeoutSec: 1200})
		return r.TotalCost()
	}
	a, b := run(true), run(false)
	diff := float64(a-b) / float64(b)
	if diff < -0.15 || diff > 0.15 {
		t.Errorf("aggregated %v vs per-node %v (%.1f%% apart)", a, b, 100*diff)
	}
}

func TestFairBalancesUsers(t *testing.T) {
	// Two users, one slot-hungry: fair scheduling should keep the Jain
	// index above plain FIFO's.
	build := func() (*cluster.Cluster, *workload.Workload) {
		c := mixedCluster()
		wb := workload.NewBuilder()
		// userA floods first; userB's job arrives just after.
		wb.AddInputJob("big", "userA", workload.WordCount, 64*64, 0, 0)
		wb.AddInputJob("small", "userB", workload.Grep, 16*64, 1, 1)
		return c, wb.Build()
	}
	c, w := build()
	fifo := runSched(t, c, w, nil, NewFIFO(), sim.Options{})
	c, w = build()
	fair := runSched(t, c, w, nil, NewFair(), sim.Options{})
	// userB must finish no later under fair than under FIFO.
	if fair.JobDone[1] > fifo.JobDone[1]+1e-6 {
		t.Errorf("fair finished small job at %g, fifo at %g", fair.JobDone[1], fifo.JobDone[1])
	}
}

func TestSpeculativeIncreasesCost(t *testing.T) {
	// §VI-A: "keeping this feature enabled ... will also increase their
	// dollar cost."
	build := func() (*cluster.Cluster, *workload.Workload) {
		b := cluster.NewBuilder("za")
		b.AddNode("za", "slow", 0.5, 1, cost.Millicents(1), 1e6)
		b.AddNode("za", "fast", 5, 1, cost.Millicents(1), 1e6)
		c := b.Build()
		wb := workload.NewBuilder()
		wb.AddInputJob("j", "u", workload.Grep, 4*64, 0, 0)
		return c, wb.Build()
	}
	c, w := build()
	plain := runSched(t, c, w, nil, NewFIFO(), sim.Options{})
	c, w = build()
	spec := runSched(t, c, w, nil, NewFIFO(), sim.Options{Speculative: true})
	if spec.TotalCost() < plain.TotalCost() {
		t.Errorf("speculative run cheaper: %v < %v", spec.TotalCost(), plain.TotalCost())
	}
	if spec.Makespan > plain.Makespan+1e-6 {
		t.Errorf("speculative makespan %g worse than plain %g", spec.Makespan, plain.Makespan)
	}
}

func TestSchedulerNames(t *testing.T) {
	if NewFIFO().Name() != "hadoop-default" {
		t.Error("fifo name")
	}
	if NewDelay().Name() != "delay" {
		t.Error("delay name")
	}
	if NewFair().Name() != "fair" {
		t.Error("fair name")
	}
	if NewLiPS(400).Name() != "lips(e=400s)" {
		t.Error("lips name")
	}
}
