package sched

import (
	"testing"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/sim"
	"lips/internal/workload"
)

// starvationSetup: a tiny cluster userA floods at t=0 with long tasks;
// userB arrives later with a short job.
func starvationSetup() (*cluster.Cluster, *workload.Workload) {
	b := cluster.NewBuilder("za")
	b.AddNode("za", "t", 2, 2, cost.Millicents(1), 1e6)
	b.AddNode("za", "t", 2, 2, cost.Millicents(1), 1e6)
	c := b.Build()
	wb := workload.NewBuilder()
	arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 300}
	wb.AddInputJob("flood", "userA", arch, 16*64, 0, 0) // 16 long tasks
	short := workload.Archetype{Name: "syn2", Property: workload.Mixed, CPUSecPerBlock: 10}
	wb.AddInputJob("quick", "userB", short, 2*64, 1, 5)
	return c, wb.Build()
}

func TestFairMinSharePriority(t *testing.T) {
	// With a min share for userB, its job gets slots at the first
	// opportunity rather than waiting behind the flood.
	c, w := starvationSetup()
	plain := NewFair()
	r1 := runSched(t, c, w, nil, plain, sim.Options{})

	c, w = starvationSetup()
	min := NewFair()
	min.MinShare = map[string]int{"userB": 2}
	r2 := runSched(t, c, w, nil, min, sim.Options{})

	if r2.JobDone[1] > r1.JobDone[1]+1e-6 {
		t.Errorf("min-share finished userB at %g, plain fair at %g", r2.JobDone[1], r1.JobDone[1])
	}
}

func TestFairPreemptionRescuesStarvedPool(t *testing.T) {
	// All four slots run userA's 300-ECU-sec tasks (150 s each at slot
	// ECU 1). Without preemption userB waits ~150 s for a slot; with a
	// 20 s preemption timeout it gets one within ~tens of seconds.
	c, w := starvationSetup()
	noPre := NewFair()
	noPre.MinShare = map[string]int{"userB": 1}
	r1 := runSched(t, c, w, nil, noPre, sim.Options{})

	c, w = starvationSetup()
	pre := NewFair()
	pre.MinShare = map[string]int{"userB": 1}
	pre.PreemptTimeoutSec = 20
	r2 := runSched(t, c, w, nil, pre, sim.Options{})

	if pre.Preemptions == 0 {
		t.Fatal("no preemptions happened")
	}
	if r2.JobDone[1] >= r1.JobDone[1] {
		t.Errorf("preemption did not speed up the starved pool: %g vs %g", r2.JobDone[1], r1.JobDone[1])
	}
	// Preempted work is re-run: the flood job still completes.
	if r2.JobDone[0] <= 0 {
		t.Error("flood job never finished")
	}
	// The kill burned CPU: speculative-waste category charged.
	if r2.Cost.Category(cost.CatSpeculative) == 0 {
		t.Error("preempted burn not billed")
	}
}

func TestKillTaskStates(t *testing.T) {
	c, w := starvationSetup()
	ss := &stubKiller{}
	s := sim.New(c, w, nil, ss, sim.Options{})
	ss.s = s
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !ss.checked {
		t.Fatal("kill checks never ran")
	}
	if ss.err != "" {
		t.Error(ss.err)
	}
}

// stubKiller exercises KillTask transitions from inside the simulation.
type stubKiller struct {
	sim.NopNodeEvents
	s        *sim.Sim
	checked  bool
	checking bool
	err      string
}

func (k *stubKiller) Name() string                  { return "killer" }
func (k *stubKiller) Init(s *sim.Sim)               {}
func (k *stubKiller) OnTaskDone(*sim.Sim, int, int) {}

func (k *stubKiller) OnJobArrival(s *sim.Sim, j int) {
	if j != 0 || k.checked {
		s.KickIdleNodes()
		return
	}
	k.checked = true
	k.checking = true
	defer func() { k.checking = false }()
	// Killing a pending task must fail.
	if err := s.KillTask(0, 0); err == nil {
		k.err = "killed a pending task"
	}
	// Launch then kill: returns to pending, slot freed.
	if err := s.Launch(0, 0, 0, 0); err != nil {
		k.err = err.Error()
		return
	}
	free := s.FreeSlots(0)
	if err := s.KillTask(0, 0); err != nil {
		k.err = err.Error()
		return
	}
	if s.TaskState(0, 0) != sim.Pending {
		k.err = "killed task not pending"
	}
	if s.FreeSlots(0) != free+1 {
		k.err = "slot not freed by kill"
	}
	// Enqueue then kill: dequeued.
	if err := s.Enqueue(0, 0, 0, 0, s.Now()+1e6); err != nil {
		k.err = err.Error()
		return
	}
	if err := s.KillTask(0, 0); err != nil {
		k.err = err.Error()
		return
	}
	s.KickIdleNodes()
}

func (k *stubKiller) OnSlotFree(s *sim.Sim, n cluster.NodeID) {
	if k.checking {
		return // stay inert while the kill checks run
	}
	for s.FreeSlots(n) > 0 {
		launched := false
		for _, j := range s.ArrivedJobs() {
			pending := s.PendingTasks(j)
			if len(pending) == 0 {
				continue
			}
			store := sim.NoStore
			if s.W.Jobs[j].HasInput() {
				store = s.BestReplica(j, pending[0], n)
			}
			if s.Launch(j, pending[0], n, store) == nil {
				launched = true
				break
			}
		}
		if !launched {
			return
		}
	}
}
