package sched

import (
	"math/rand"
	"strings"
	"testing"

	"lips/internal/cluster"
	"lips/internal/sim"
	"lips/internal/workload"
)

// TestFullMapReducePipeline runs map + shuffle + reduce end to end: a
// SWIM-style trace is expanded with reduce companions gated on map
// completion, then scheduled by LiPS and by the Hadoop default scheduler.
func TestFullMapReducePipeline(t *testing.T) {
	const trace = "sortjob\t0\t0\t536870912\t268435456\t134217728\n" + // 8 maps, 256 MB shuffle
		"grepjob\t5\t5\t268435456\t0\t1048576\n" // 4 maps, map-only

	build := func() (*cluster.Cluster, *workload.Workload, [][]int) {
		c := mixedCluster()
		stores := make([]cluster.StoreID, len(c.Stores))
		for i := range stores {
			stores[i] = cluster.StoreID(i)
		}
		rng := rand.New(rand.NewSource(6))
		w, metas, err := workload.ReadSWIMNative(strings.NewReader(trace), rng, stores[:3])
		if err != nil {
			t.Fatal(err)
		}
		full, deps, err := workload.ExpandReduces(w, workload.SWIMReduceSpecs(metas))
		if err != nil {
			t.Fatal(err)
		}
		return c, full, deps
	}

	for _, mk := range []struct {
		name string
		make func() sim.Scheduler
		opts sim.Options
	}{
		{"fifo", func() sim.Scheduler { return NewFIFO() }, sim.Options{}},
		{"lips", func() sim.Scheduler { return NewLiPS(120) }, sim.Options{TaskTimeoutSec: 1200}},
	} {
		c, w, deps := build()
		opts := mk.opts
		opts.Deps = deps
		scheduler := mk.make()
		r, err := sim.New(c, w, nil, scheduler, opts).Run()
		if err != nil {
			t.Fatalf("%s: %v", mk.name, err)
		}
		if l, ok := scheduler.(*LiPS); ok && l.Err != nil {
			t.Fatalf("lips: %v", l.Err)
		}
		// The reduce stage must start only after its map stage: sortjob
		// is job 0, its companion is job 2 ("sortjob-reduce").
		if w.Jobs[2].Name != "sortjob-reduce" {
			t.Fatalf("unexpected job layout: %v", w.Jobs[2].Name)
		}
		if r.JobDone[2] <= r.JobDone[0] {
			t.Errorf("%s: reduce finished at %g before maps at %g", mk.name, r.JobDone[2], r.JobDone[0])
		}
		// Everything completes and the shuffle's CPU demand is billed.
		for j, done := range r.JobDone {
			if done <= 0 {
				t.Errorf("%s: job %d (%s) unfinished", mk.name, j, w.Jobs[j].Name)
			}
		}
	}
}
