package sched

import (
	"lips/internal/cluster"
	"lips/internal/sim"
)

// Fair is Facebook's FairScheduler (paper §II): jobs belong to pools (we
// pool by the job's User) and each pool gets a fair share of the cluster's
// slots over time. When a slot frees, the pool furthest below its share —
// the one with the fewest running tasks per unit weight — schedules next;
// within a pool jobs run FIFO with locality-greedy task choice.
type Fair struct {
	sim.NopNodeEvents

	// Weights gives per-pool weights; missing pools weigh 1.
	Weights map[string]float64
	// MinShare guarantees a pool a minimum number of concurrently
	// running tasks; pools below their minimum are served first
	// (FairScheduler's "guaranteed minimum number of slots").
	MinShare map[string]int
	// PreemptTimeoutSec enables FairScheduler-style preemption: a pool
	// starved below its MinShare for longer than this kills the newest
	// task of the most over-served pool. 0 disables preemption.
	PreemptTimeoutSec float64

	// Preemptions counts kills (readable after a run).
	Preemptions int

	poolOf      map[int]string // job → pool
	belowSince  map[string]float64
	preemptLive bool // a future preempt tick is in the heap
}

// NewFair returns a fair scheduler with equal pool weights.
func NewFair() *Fair { return &Fair{} }

// Name implements sim.Scheduler.
func (f *Fair) Name() string { return "fair" }

// Init implements sim.Scheduler. Everything run-scoped — the pool map,
// the starvation clocks, the preemption counter and the ticker — resets
// here, so one *Fair reused across runs starts each run clean.
func (f *Fair) Init(s *sim.Sim) {
	f.poolOf = make(map[int]string)
	f.belowSince = make(map[string]float64)
	f.Preemptions = 0
	f.preemptLive = false
	for j, job := range s.W.Jobs {
		f.poolOf[j] = job.User
	}
	f.armPreempt(s)
}

// armPreempt starts the preemption ticker if preemption is configured and
// no tick is already pending. The ticker stops itself once every job
// completes, so arrivals into an idle run re-arm it here.
func (f *Fair) armPreempt(s *sim.Sim) {
	if f.PreemptTimeoutSec <= 0 || f.preemptLive {
		return
	}
	f.preemptLive = true
	period := f.PreemptTimeoutSec / 2
	var tick func()
	tick = func() {
		if f.preemptCheck(s) {
			s.At(s.Now()+period, tick)
		} else {
			f.preemptLive = false
		}
	}
	s.At(s.Now()+period, tick)
}

// preemptCheck kills one task of the most over-served pool for every pool
// starved below its MinShare past the timeout. It reports whether any job
// is still incomplete (to keep the ticker alive).
func (f *Fair) preemptCheck(s *sim.Sim) bool {
	alive := false
	for j := range s.W.Jobs {
		if s.JobRemaining(j) > 0 {
			alive = true
			break
		}
	}
	if !alive {
		return false
	}
	running := f.runningByPool(s)
	now := s.Now()
	for pool, min := range f.MinShare {
		if min <= 0 {
			continue
		}
		starving := running[pool] < min && f.poolHasPending(s, pool)
		if !starving {
			delete(f.belowSince, pool)
			continue
		}
		since, ok := f.belowSince[pool]
		if !ok {
			f.belowSince[pool] = now
			continue
		}
		if now-since < f.PreemptTimeoutSec {
			continue
		}
		if f.preemptOne(s, pool, running) {
			f.Preemptions++
			f.belowSince[pool] = now // restart the clock after one kill
		}
	}
	return true
}

func (f *Fair) poolHasPending(s *sim.Sim, pool string) bool {
	for _, j := range s.ArrivedJobs() {
		if f.poolOf[j] == pool && len(s.PendingTasks(j)) > 0 {
			return true
		}
	}
	return false
}

// preemptOne kills the newest running task of the pool furthest above its
// own minimum share (excluding the starved pool itself).
func (f *Fair) preemptOne(s *sim.Sim, starved string, running map[string]int) bool {
	victimPool, surplus := "", 0
	for pool, r := range running {
		if pool == starved {
			continue
		}
		over := r - f.MinShare[pool]
		if over > surplus {
			victimPool, surplus = pool, over
		}
	}
	if victimPool == "" {
		return false
	}
	// Newest task: the running task with the latest expected finish.
	bestJob, bestTask := -1, -1
	for _, j := range s.ArrivedJobs() {
		if f.poolOf[j] != victimPool {
			continue
		}
		for _, t := range s.RunningTasks(j) {
			if bestJob == -1 {
				bestJob, bestTask = j, t
			}
		}
	}
	if bestJob == -1 {
		return false
	}
	return s.KillTask(bestJob, bestTask) == nil
}

// OnJobArrival implements sim.Scheduler. Jobs added after Init (serve
// mode) enter the pool map here; Init covered only the workload it saw.
func (f *Fair) OnJobArrival(s *sim.Sim, j int) {
	if _, ok := f.poolOf[j]; !ok {
		f.poolOf[j] = s.W.Jobs[j].User
	}
	f.armPreempt(s)
	s.KickIdleNodes()
}

// OnTaskDone implements sim.Scheduler.
func (f *Fair) OnTaskDone(*sim.Sim, int, int) {}

// OnSlotFree implements sim.Scheduler.
func (f *Fair) OnSlotFree(s *sim.Sim, n cluster.NodeID) {
	for s.FreeSlots(n) > 0 {
		job, task, store, ok := f.pickFairTask(s, n)
		if !ok {
			s.LaunchSpeculative(n)
			return
		}
		if err := s.Launch(job, task, n, store); err != nil {
			return
		}
	}
}

// runningByPool counts currently running tasks per pool; computed live so
// that timeouts and speculative copies cannot drift a cached counter.
func (f *Fair) runningByPool(s *sim.Sim) map[string]int {
	out := make(map[string]int)
	for _, j := range s.ArrivedJobs() {
		running := 0
		for t := 0; t < s.W.Jobs[j].NumTasks; t++ {
			if s.TaskState(j, t) == sim.Running {
				running++
			}
		}
		out[f.poolOf[j]] += running
	}
	return out
}

// pickFairTask chooses the most-deficit pool with pending work, then the
// pool's oldest job's best-locality task.
func (f *Fair) pickFairTask(s *sim.Sim, n cluster.NodeID) (job, task int, store cluster.StoreID, ok bool) {
	// Deterministic pool scan: jobs are already in FIFO order, so the
	// first job of each pool defines the pool's order of appearance.
	type cand struct {
		job     int
		pending []int
	}
	byPool := make(map[string]cand)
	var poolOrder []string
	for _, j := range s.ArrivedJobs() {
		pool := f.poolOf[j]
		if _, seen := byPool[pool]; seen {
			continue
		}
		pending := s.PendingTasks(j)
		if len(pending) == 0 {
			continue
		}
		byPool[pool] = cand{job: j, pending: pending}
		poolOrder = append(poolOrder, pool)
	}
	if len(poolOrder) == 0 {
		return 0, 0, 0, false
	}
	running := f.runningByPool(s)
	// Pools below their guaranteed minimum are served before fair-share
	// ordering applies.
	best := ""
	var bestGap int
	for _, pool := range poolOrder {
		if gap := f.MinShare[pool] - running[pool]; gap > bestGap {
			best, bestGap = pool, gap
		}
	}
	if best == "" {
		var bestDeficit float64
		for _, pool := range poolOrder {
			w := 1.0
			if f.Weights != nil {
				if pw, okW := f.Weights[pool]; okW && pw > 0 {
					w = pw
				}
			}
			deficit := float64(running[pool]) / w
			if best == "" || deficit < bestDeficit {
				best, bestDeficit = pool, deficit
			}
		}
	}
	c := byPool[best]
	t, st, _ := bestLocalityTask(s, c.job, c.pending, n)
	return c.job, t, st, true
}
