package sched

// EpochStats is the snapshot of one scheduling epoch that a daemon can
// read back after stepping the simulator — the bridge between the
// scheduler's per-epoch accounting and the serve layer's /debug/epochs
// decision ring.
type EpochStats struct {
	Epoch    int    // 1-based epoch counter within this run
	Jobs     int    // queued jobs the epoch's LP covered
	Pending  int    // pending tasks across those jobs at epoch start
	Launched int    // tasks enqueued by the epoch's plan
	Deferred int    // Pending - Launched: work the LP left for later epochs
	Solver   string // SolverStats one-liner for the run so far
}

// EpochReporter is implemented by schedulers that can report their most
// recent epoch. ok is false before the first epoch of a run plans.
type EpochReporter interface {
	LastEpochStats() (EpochStats, bool)
}

// LastEpochStats implements EpochReporter.
func (l *LiPS) LastEpochStats() (EpochStats, bool) {
	return l.lastEpoch, l.lastEpoch.Epoch > 0
}
