package sched

import (
	"math/rand"
	"testing"

	"lips/internal/cluster"
	"lips/internal/sim"
	"lips/internal/workload"
)

// scaleScenario builds a seed-deterministic random cluster + workload
// sized for the sched-level cross-checks (big enough that the head
// cursor, batched sweeps and the rescan fallback all fire).
func scaleScenario(nodes, tasks int, seed int64) (*cluster.Cluster, *workload.Workload) {
	rng := rand.New(rand.NewSource(seed))
	c := cluster.Random(rng, cluster.RandomSpec{Nodes: nodes})
	w := workload.Random(rng, c.StoreIDs(), workload.RandomSpec{TotalTasks: tasks})
	return c, w
}

// TestScaleCompletesAndMatchesLegacyDispatch pins the Scale scheduler's
// results: the batched-notification path and the legacy per-node
// full-scan dispatch must agree exactly, and repeated runs must
// reproduce the same numbers.
func TestScaleCompletesAndMatchesLegacyDispatch(t *testing.T) {
	c, w := scaleScenario(96, 3000, 4)
	run := func(legacy bool) *sim.Result {
		p := w.Placement()
		p.Shuffle(rand.New(rand.NewSource(1004)), c.StoreIDs())
		return runSched(t, c, w, p, NewScale(), sim.Options{LegacyDispatch: legacy})
	}
	batched, legacy := run(false), run(true)
	if batched.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
	if batched.Makespan != legacy.Makespan || batched.TotalCost() != legacy.TotalCost() {
		t.Errorf("batched vs legacy dispatch: makespan %g vs %g, cost %v vs %v",
			batched.Makespan, legacy.Makespan, batched.TotalCost(), legacy.TotalCost())
	}
	if batched.Locality != legacy.Locality {
		t.Errorf("locality diverged: %+v vs %+v", batched.Locality, legacy.Locality)
	}
	again := run(false)
	if batched.Makespan != again.Makespan || batched.TotalCost() != again.TotalCost() {
		t.Errorf("scale run not reproducible: makespan %g vs %g", batched.Makespan, again.Makespan)
	}
	for j, done := range batched.JobDone {
		if done <= 0 {
			t.Errorf("job %d never finished", j)
		}
	}
}

// TestScaleCompletesUnderFaults drives Scale through random crashes,
// store losses and stragglers: kills re-pend tasks behind the forward
// cursors, so this exercises the full-rescan fallback. Both dispatch
// modes must finish every job with identical results.
func TestScaleCompletesUnderFaults(t *testing.T) {
	c, w := scaleScenario(64, 2000, 8)
	faults := sim.RandomFaultPlan(8, c, sim.FaultSpec{Crashes: 4, StoreLosses: 2, Slowdowns: 2})
	run := func(legacy bool) *sim.Result {
		p := w.Placement()
		p.Shuffle(rand.New(rand.NewSource(1008)), c.StoreIDs())
		return runSched(t, c, w, p, NewScale(),
			sim.Options{LegacyDispatch: legacy, Faults: faults, Speculative: true})
	}
	batched, legacy := run(false), run(true)
	if batched.Faults.NodesCrashed == 0 {
		t.Fatal("fault plan never crashed a node; scenario too small")
	}
	if batched.Makespan != legacy.Makespan || batched.TotalCost() != legacy.TotalCost() ||
		batched.Faults != legacy.Faults {
		t.Errorf("batched vs legacy dispatch under faults: makespan %g vs %g, cost %v vs %v, faults %+v vs %+v",
			batched.Makespan, legacy.Makespan, batched.TotalCost(), legacy.TotalCost(),
			batched.Faults, legacy.Faults)
	}
	for j, done := range batched.JobDone {
		if done <= 0 {
			t.Errorf("job %d never finished under faults", j)
		}
	}
}

// TestScaleChurnPlan reuses the shared churn scenario (crashes, a
// recovery, a store loss, a straggler window) on the paper testbed: the
// large-cluster scheduler must stay correct on small clusters too.
func TestScaleChurnPlan(t *testing.T) {
	run := func() *sim.Result {
		c := mixedCluster()
		w := smallJobSet(rand.New(rand.NewSource(3)), 3)
		return runSched(t, c, w, nil, NewScale(), sim.Options{Faults: churnPlan()})
	}
	r := run()
	if r.Faults.NodesCrashed != 2 || r.Faults.NodesRecovered != 1 || r.Faults.StoresLost != 1 {
		t.Errorf("fault stats = %+v, want 2 crashes / 1 recovery / 1 store loss", r.Faults)
	}
	for j, done := range r.JobDone {
		if done <= 0 {
			t.Errorf("job %d never finished under churn", j)
		}
	}
	again := run()
	if r.Makespan != again.Makespan || r.TotalCost() != again.TotalCost() {
		t.Errorf("churn run not reproducible: makespan %g vs %g", r.Makespan, again.Makespan)
	}
}
