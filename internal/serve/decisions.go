package serve

import "lips/internal/obs"

// JobRef identifies one submission inside an epoch decision.
type JobRef struct {
	ID     int    `json:"id"`
	Tenant string `json:"tenant"`
}

// Deferral is a job the epoch did not serve, with the typed reason from
// the obs deferral taxonomy (fair-share-rank for queue leftovers the
// admission ranking passed over, no-capacity for admitted jobs the LP
// left entirely unlaunched).
type Deferral struct {
	JobRef
	Reason string `json:"reason"`
}

// maxDecisionRefs bounds the per-decision Admitted/Deferred lists so a
// 10k-job burst does not turn the ring into a memory hog; the *Count
// fields always carry the untruncated totals.
const maxDecisionRefs = 64

// EpochDecision is one entry of the /debug/epochs ring: what the epoch
// admitted, what it passed over and why, what the submit path shed since
// the previous epoch, and the scheduler's own view of the plan.
type EpochDecision struct {
	Epoch    int64   `json:"epoch"`
	SimStart float64 `json:"sim_start"`
	SimEnd   float64 `json:"sim_end"`
	// WallMS is the wall-clock cost of the simulator step (where the LP
	// solves live). Runtime-only: it never feeds traces or determinism.
	WallMS float64 `json:"wall_ms"`

	Admitted      []JobRef   `json:"admitted,omitempty"`
	AdmittedCount int        `json:"admitted_count"`
	Deferred      []Deferral `json:"deferred,omitempty"`
	DeferredCount int        `json:"deferred_count"`
	// Shed counts submissions rejected at the HTTP edge since the last
	// recorded epoch, keyed by obs deferral reason (queue-cap,
	// solver-backpressure, draining).
	Shed map[string]int `json:"shed,omitempty"`

	QueueDepth int `json:"queue_depth"`

	// Scheduler-side view, when the scheduler implements
	// sched.EpochReporter: its epoch counter, tasks its LP deferred, and
	// the solver-stats one-liner for the run so far.
	SchedEpoch         int    `json:"sched_epoch,omitempty"`
	SchedDeferredTasks int    `json:"sched_deferred_tasks,omitempty"`
	Solver             string `json:"solver,omitempty"`
}

// decisionRing is a bounded ring of epoch decisions. It has no lock of
// its own: the daemon guards it with d.mu.
type decisionRing struct {
	buf   []EpochDecision
	next  int
	full  bool
	total int64
}

func newDecisionRing(n int) *decisionRing {
	if n <= 0 {
		n = 128
	}
	return &decisionRing{buf: make([]EpochDecision, n)}
}

func (r *decisionRing) add(d EpochDecision) {
	r.buf[r.next] = d
	r.next++
	r.total++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
}

// snapshot returns the ring oldest-first.
func (r *decisionRing) snapshot() []EpochDecision {
	if !r.full {
		out := make([]EpochDecision, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]EpochDecision, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// spanLocked assembles the job's phase span from the record. Callers
// hold d.mu. Unset milestones are -1, matching the obs.Span contract.
func (d *Daemon) spanLocked(rec *jobRecord) obs.Span {
	sp := obs.NewSpan(rec.id)
	sp.Name, sp.Tenant = rec.name, rec.tenant
	sp.SubmittedSim = rec.submittedSim
	sp.Epoch = rec.admittedEpoch
	if rec.simJob >= 0 {
		sp.AdmittedSim = rec.admittedSim
	}
	if rec.planned {
		sp.PlannedSim = rec.plannedSim
	}
	if rec.launched {
		sp.FirstLaunchSim = rec.firstLaunchSim
	}
	sp.CostUC = rec.costUC
	switch rec.state {
	case StateDone:
		sp.Outcome, sp.DoneSim = obs.OutcomeDone, rec.doneSim
	case StateCancelled:
		sp.Outcome, sp.DoneSim = obs.OutcomeCancelled, rec.doneSim
	}
	return sp
}
