package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"lips/internal/cluster"
	"lips/internal/obs"
	"lips/internal/sched"
)

func newTestDaemon(t *testing.T, cfg Config) (*Daemon, *httptest.Server) {
	t.Helper()
	if cfg.EpochWallInterval == 0 {
		cfg.EpochWallInterval = time.Millisecond
	}
	d, err := New(cluster.Paper20(0.5), sched.NewFair(), obs.NewRegistry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.Handler())
	t.Cleanup(ts.Close)
	return d, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	return resp, buf.Bytes()
}

func submitOne(t *testing.T, url, tenant string) (int, int) {
	t.Helper()
	resp, body := postJSON(t, url+"/submit", SubmitRequest{
		Tenant: tenant, Archetype: "grep", InputMB: 128,
	})
	var sr SubmitResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatalf("bad submit response %q: %v", body, err)
		}
		return sr.ID, resp.StatusCode
	}
	return -1, resp.StatusCode
}

func waitStats(t *testing.T, url string, ok func(*Stats) bool) *Stats {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		var st Stats
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if ok(&st) {
			return &st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("stats condition never met")
	return nil
}

// TestDaemonLifecycle walks one job through the full submit → admitted →
// running → done pipeline over the HTTP API.
func TestDaemonLifecycle(t *testing.T) {
	d, ts := newTestDaemon(t, Config{EpochSimSec: 60})
	d.Start()

	id, code := submitOne(t, ts.URL, "alice")
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitStats(t, ts.URL, func(st *Stats) bool { return st.Jobs[StateDone] == 1 })

	resp, body := postJSON(t, fmt.Sprintf("%s/status?id=%d", ts.URL, id), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %d", resp.StatusCode)
	}
	var js JobStatus
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatal(err)
	}
	if js.State != StateDone || js.DoneTasks != 2 || js.DoneSim <= js.FirstLaunchSim {
		t.Errorf("final status: %+v", js)
	}
	if js.FirstLaunchSim < js.SubmittedSim {
		t.Errorf("launched at %g before submission at %g", js.FirstLaunchSim, js.SubmittedSim)
	}
	if err := d.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// Post-drain the daemon answers 503 with Retry-After.
	resp, _ = postJSON(t, ts.URL+"/submit", SubmitRequest{Tenant: "x", Archetype: "grep", InputMB: 64})
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Errorf("draining submit: %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

func TestSubmitValidation(t *testing.T) {
	d, ts := newTestDaemon(t, Config{})
	defer func() { _ = d.Shutdown() }()
	for _, req := range []SubmitRequest{
		{Archetype: "grep", InputMB: 64},                        // no tenant
		{Tenant: "a", Archetype: "nosuch", InputMB: 64},         // unknown archetype
		{Tenant: "a", Archetype: "grep"},                        // input archetype without input
		{Tenant: "a", Archetype: "grep", InputMB: 64, Tasks: 3}, // tasks on an input archetype
		{Tenant: "a", Archetype: "pi"},                          // pi without tasks
		{Tenant: "a", Archetype: "grep", InputMB: 64, AccessFrac: 2},
	} {
		resp, _ := postJSON(t, ts.URL+"/submit", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%+v: got %d, want 400", req, resp.StatusCode)
		}
	}
	if _, code := submitOne(t, ts.URL, "a"); code != http.StatusAccepted {
		t.Errorf("valid submit: %d", code)
	}
	resp, _ := postJSON(t, ts.URL+"/status?id=99", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status of unknown id: %d", resp.StatusCode)
	}
}

// TestBackpressureExactQueueCap is the threshold property test: with the
// epoch loop stopped (nothing drains) and an idle solver pool, exactly
// QueueCap submissions are accepted and every one beyond that is shed
// with 429 + Retry-After — never an error, never a hang.
func TestBackpressureExactQueueCap(t *testing.T) {
	const cap = 32
	d, ts := newTestDaemon(t, Config{QueueCap: cap})
	// No d.Start(): the queue can only grow, so the accept count is the
	// threshold itself.
	accepted, rejected := 0, 0
	for i := 0; i < 3*cap; i++ {
		_, code := submitOne(t, ts.URL, fmt.Sprintf("t%d", i%5))
		switch code {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Fatalf("submission %d: status %d", i, code)
		}
	}
	if accepted != cap || rejected != 2*cap {
		t.Errorf("accepted %d rejected %d, want exactly %d/%d", accepted, rejected, cap, 2*cap)
	}
	resp, _ := postJSON(t, ts.URL+"/submit", SubmitRequest{Tenant: "t", Archetype: "grep", InputMB: 64})
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// Shutdown of a never-started daemon must return, not deadlock on the
	// missing epoch loop.
	if err := d.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestRacedSubmitCancelStatus hammers the API from many goroutines while
// the epoch loop runs full tilt — the -race gate for the daemon's lock
// discipline — then verifies the terminal bookkeeping is coherent.
func TestRacedSubmitCancelStatus(t *testing.T) {
	d, ts := newTestDaemon(t, Config{
		EpochSimSec: 60, QueueCap: 10000, AdmitPerEpoch: 16,
		// Exercise the burn engine and budget gate under the same race.
		SLOE2ESec: 30, SLOQueueWaitSec: 30,
		Budgets: map[string]float64{"tenant-0": 1000},
	})
	d.Start()

	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	cancelled := make([]int, workers) // per-worker count of cancel attempts
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(wk)))
			tenant := fmt.Sprintf("tenant-%d", wk%3)
			for i := 0; i < perWorker; i++ {
				id, code := submitOne(t, ts.URL, tenant)
				if code != http.StatusAccepted {
					t.Errorf("worker %d: submit status %d", wk, code)
					return
				}
				// Race status reads and cancels against the live epoch loop.
				resp, _ := postJSON(t, fmt.Sprintf("%s/status?id=%d", ts.URL, id), nil)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status: %d", resp.StatusCode)
				}
				if rng.Intn(3) == 0 {
					resp, _ := postJSON(t, fmt.Sprintf("%s/cancel?id=%d", ts.URL, id), nil)
					if resp.StatusCode != http.StatusOK {
						t.Errorf("cancel: %d", resp.StatusCode)
					}
					cancelled[wk]++
				}
				// Race the chargeback and alerting reads against the loop.
				switch rng.Intn(4) {
				case 0:
					var tr TenantsResponse
					if code := getJSON(t, ts.URL+"/tenants", &tr); code != http.StatusOK {
						t.Errorf("/tenants: %d", code)
					}
				case 1:
					var ar AuditResponse
					if code := getJSON(t, ts.URL+"/audit", &ar); code != http.StatusOK || !ar.OK {
						t.Errorf("/audit: %d ok=%v err=%q", code, ar.OK, ar.Error)
					}
				case 2:
					var al AlertsResponse
					if code := getJSON(t, ts.URL+"/alerts", &al); code != http.StatusOK {
						t.Errorf("/alerts: %d", code)
					}
				}
			}
		}(wk)
	}
	wg.Wait()

	total := workers * perWorker
	st := waitStats(t, ts.URL, func(st *Stats) bool {
		settled := st.Jobs[StateDone] + st.Jobs[StateCancelled]
		return settled == total && st.QueueDepth == 0
	})
	wantCancels := 0
	for _, c := range cancelled {
		wantCancels += c
	}
	// Every cancel eventually lands in cancelled (cancelling a job that
	// happened to finish first leaves it done — both are terminal).
	if st.Jobs[StateCancelled] > wantCancels {
		t.Errorf("%d cancelled records from %d cancel calls", st.Jobs[StateCancelled], wantCancels)
	}
	if err := d.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestTenantFairShare: two equal-weight tenants submitting identical work
// — one front-loading the queue — must converge to equal ECU-seconds, and
// the latecomer must not wait behind the whole front-loaded backlog.
func TestTenantFairShare(t *testing.T) {
	const each = 20
	d, ts := newTestDaemon(t, Config{EpochSimSec: 60, AdmitPerEpoch: 2})
	// Queue everything before the loop starts so admission order is purely
	// the fair-share ranking.
	for i := 0; i < each; i++ {
		if _, code := submitOne(t, ts.URL, "hog"); code != http.StatusAccepted {
			t.Fatalf("submit: %d", code)
		}
	}
	for i := 0; i < each; i++ {
		if _, code := submitOne(t, ts.URL, "meek"); code != http.StatusAccepted {
			t.Fatalf("submit: %d", code)
		}
	}
	d.Start()
	waitStats(t, ts.URL, func(st *Stats) bool { return st.Jobs[StateDone] == 2*each })

	cpu := d.TenantCPU()
	a, b := cpu["hog"], cpu["meek"]
	if a <= 0 || b <= 0 {
		t.Fatalf("tenant cpu: hog=%g meek=%g", a, b)
	}
	jain := (a + b) * (a + b) / (2 * (a*a + b*b))
	if jain < 0.99 {
		t.Errorf("equal tenants diverged: hog=%g meek=%g ECU-sec (Jain %.4f)", a, b, jain)
	}
	// Admission interleaved: meek's first job entered the sim well before
	// hog's backlog drained, i.e. its first launch is in the first half of
	// the run, not serialized after all of hog's work.
	d.mu.Lock()
	var meekFirst, lastDone float64
	for _, rec := range d.records {
		if rec.doneSim > lastDone {
			lastDone = rec.doneSim
		}
		if rec.tenant == "meek" && (meekFirst == 0 || rec.firstLaunchSim < meekFirst) {
			meekFirst = rec.firstLaunchSim
		}
	}
	d.mu.Unlock()
	if meekFirst == 0 || meekFirst > lastDone/2 {
		t.Errorf("meek's first launch at %g of %g — starved behind the backlog", meekFirst, lastDone)
	}
	if err := d.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestChurnMidRun downs a node over the admin API while jobs flow and
// expects the daemon to keep scheduling epochs and finish everything.
func TestChurnMidRun(t *testing.T) {
	d, ts := newTestDaemon(t, Config{EpochSimSec: 60, AdmitPerEpoch: 4})
	d.Start()
	for i := 0; i < 10; i++ {
		if _, code := submitOne(t, ts.URL, "a"); code != http.StatusAccepted {
			t.Fatalf("submit: %d", code)
		}
	}
	resp, body := postJSON(t, ts.URL+"/admin/churn?node=3&kind=down", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("churn down: %d %s", resp.StatusCode, body)
	}
	resp, _ = postJSON(t, ts.URL+"/admin/churn?node=3&kind=up", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("churn up: %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/admin/churn?node=999&kind=down", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("churn of bad node: %d", resp.StatusCode)
	}
	waitStats(t, ts.URL, func(st *Stats) bool { return st.Jobs[StateDone] == 10 })
	if err := d.Shutdown(); err != nil {
		t.Fatal(err)
	}
}
