// Package serve is the lips-serve scheduling daemon: a long-running HTTP
// service that accepts streaming job submissions, feeds them into a
// continuously advancing simulated cluster, and re-solves the scheduling
// plan epoch by epoch on a bounded solver pool.
//
// The paper's online epoch LP (Fig. 4) is inherently a continuous
// scheduler — jobs arrive, each epoch re-solves, overflow returns to the
// queue — and this package is that operating regime: the batch harness
// runs one workload to completion, the daemon never finishes.
//
// Concurrency model. Submissions land in an admission queue guarded by a
// fast mutex (d.mu) that no solver work ever holds, so the submit path's
// latency is independent of epoch solve time — the p99 submit SLO the
// smoke gate asserts. A single epoch goroutine drains the queue: each
// wall tick it takes a solver-pool token, applies pending cancellations,
// admits a tenant-fair batch into the simulator, advances simulated time
// by one epoch (sim.StepUntil — this is where the LiPS LP solves), and
// publishes per-job progress back under d.mu. Admission control sheds
// load with 429 + Retry-After when the queue is full, or at half-full
// while every solver token is busy; draining shutdown answers 503.
package serve

import (
	"fmt"
	"log/slog"
	"math"
	"sync"
	"time"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/hdfs"
	"lips/internal/obs"
	"lips/internal/sched"
	"lips/internal/sim"
	"lips/internal/workload"
)

// Config tunes the daemon. Zero values select the documented defaults.
type Config struct {
	// EpochSimSec is the simulated seconds the cluster advances per serve
	// epoch. Default 60.
	EpochSimSec float64
	// EpochWallInterval paces the epoch loop in wall time. Default 25ms.
	EpochWallInterval time.Duration
	// QueueCap bounds the admission queue; submissions beyond it are
	// rejected with 429. Default 4096.
	QueueCap int
	// AdmitPerEpoch bounds how many queued jobs enter the simulation per
	// epoch. Default 512.
	AdmitPerEpoch int
	// SolverPool is the number of solver tokens; while all are held the
	// daemon sheds load once the queue is half full. Default 1.
	SolverPool int
	// RetryAfterSec is the Retry-After header on 429/503. Default 1.
	RetryAfterSec int
	// DrainTimeout bounds how long Shutdown keeps stepping epochs to let
	// in-flight jobs finish. Default 30s.
	DrainTimeout time.Duration
	// Weights are per-tenant fair-share weights for admission ordering;
	// missing tenants weigh 1.
	Weights map[string]float64
	// Logger receives structured lifecycle, shed and slow-epoch events.
	// nil selects a no-op logger, keeping the hot paths silent.
	Logger *slog.Logger
	// EpochRing bounds the /debug/epochs decision ring. Default 128.
	EpochRing int
	// SpanRing bounds the completed-span ring behind /debug/spans.
	// Default 1024.
	SpanRing int
	// SLOE2ESec bounds submission→terminal latency per tenant in
	// simulated seconds; 0 disables the e2e objective.
	SLOE2ESec float64
	// SLOQueueWaitSec bounds submission→admission latency per tenant in
	// simulated seconds; 0 disables the queue-wait objective.
	SLOQueueWaitSec float64
	// SLOBudget is the allowed violation fraction for both objectives.
	// Default 0.05.
	SLOBudget float64
	// SLOShortSec and SLOLongSec are the burn-rate windows in simulated
	// seconds. Defaults 300 and 6× the short window.
	SLOShortSec, SLOLongSec float64
	// Budgets caps per-tenant spend in dollars. Once a tenant's ledger
	// charges reach its cap, its queued jobs sit out admission with the
	// budget-exhausted deferral reason until the operator raises the cap.
	// Missing or non-positive entries mean unlimited.
	Budgets map[string]float64
}

func (c Config) withDefaults() Config {
	if c.EpochSimSec <= 0 {
		c.EpochSimSec = 60
	}
	if c.EpochWallInterval <= 0 {
		c.EpochWallInterval = 25 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4096
	}
	if c.AdmitPerEpoch <= 0 {
		c.AdmitPerEpoch = 512
	}
	if c.SolverPool <= 0 {
		c.SolverPool = 1
	}
	if c.RetryAfterSec <= 0 {
		c.RetryAfterSec = 1
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	if c.EpochRing <= 0 {
		c.EpochRing = 128
	}
	if c.SpanRing <= 0 {
		c.SpanRing = 1024
	}
	return c
}

// Job lifecycle states as reported by /status.
const (
	StateQueued     = "queued"     // accepted, waiting for admission
	StateAdmitted   = "admitted"   // in the simulator, nothing launched yet
	StateRunning    = "running"    // at least one task has launched
	StateDone       = "done"       // every task completed
	StateCancelling = "cancelling" // cancel requested, not yet applied
	StateCancelled  = "cancelled"  // withdrawn
)

// jobRecord is the daemon's view of one submission. Fields are guarded
// by Daemon.mu; the epoch loop publishes simulator progress into them
// once per epoch, so /status reads are cheap and at most one epoch stale.
type jobRecord struct {
	id     int
	tenant string
	name   string
	spec   submitSpec

	state         string
	simJob        int // -1 until admitted
	cancelPending bool
	submittedWall time.Time

	// Span milestones, simulated seconds. submittedSim is stamped at
	// submit time from the (one-epoch-stale) serve clock; the rest are
	// published by the epoch loop. The booleans distinguish "unset" from
	// a legal zero timestamp.
	submittedSim   float64
	admittedSim    float64 // valid once simJob >= 0
	admittedEpoch  int64   // serve epoch that admitted the job; 0 = none
	plannedSim     float64 // valid once planned
	planned        bool    // a scheduler epoch pinned a task
	firstLaunchSim float64 // valid once launched
	launched       bool
	doneSim        float64 // valid in a terminal state
	costUC         int64   // ledger charge so far, microcents

	pending, queued, running, doneTasks int
}

// submitSpec is the validated payload of one submission.
type submitSpec struct {
	archetype     workload.Archetype
	inputMB       float64
	accessFrac    float64
	tasks         int
	cpuSecPerTask float64
}

type cancelReq struct{ recID, simJob int }

// Daemon is the serve-mode scheduler instance. Create with New, start the
// epoch loop with Start, mount Handler on an obs server, stop with
// Shutdown.
type Daemon struct {
	cfg Config
	reg *obs.Registry
	sm  *obs.ServeMetrics
	s   *sim.Sim
	sch sim.Scheduler // for the sched.EpochReporter view, when implemented
	log *slog.Logger

	// spans is the bounded ring of completed spans (done, cancelled,
	// shed). It has its own lock and never takes d.mu.
	spans *obs.SpanRing

	// burn is the SLO burn-rate engine (own lock, never takes d.mu);
	// disabled when no objective is configured. budgets holds the
	// per-tenant dollar caps converted to exact microcents, immutable
	// after New.
	burn    *obs.BurnEngine
	budgets map[string]cost.Money

	// mu guards the admission state: records, queue, cancels, active set,
	// tenant bookkeeping and the draining flag. Never held during solver
	// work.
	mu        sync.Mutex
	records   []*jobRecord
	queue     []int // record IDs awaiting admission, submission order
	cancels   []cancelReq
	active    []int // record IDs admitted and not yet finished
	tenants   map[string]bool
	tenantCPU map[string]float64 // ECU-seconds per tenant, last epoch's copy
	// tenantSpend is the chargeback ledger's tenant×category view, copied
	// from the simulator once per epoch (so /tenants and the budget gate
	// never touch simMu and lag by at most one epoch).
	tenantSpend map[string]map[cost.Category]cost.Money
	draining    bool
	epochs      int64
	loopErr     error
	decisions   *decisionRing  // /debug/epochs ring
	shedCounts  map[string]int // 429/503 sheds since the last recorded epoch

	// simMu guards the simulator; sem is the solver pool (epoch work holds
	// a token; the admission path only inspects token availability).
	simMu sync.Mutex
	sem   chan struct{}

	originRR int // round-robin origin store for submitted inputs

	running  bool // loop launched (guarded by mu)
	stop     chan struct{}
	stopOnce sync.Once
	doneCh   chan struct{}
}

// New builds a daemon serving cluster c under the given scheduler. The
// registry receives both the simulator families and the lips_serve_
// families; pass the same registry to the obs HTTP server.
func New(c *cluster.Cluster, sch sim.Scheduler, reg *obs.Registry, cfg Config) (*Daemon, error) {
	cfg = cfg.withDefaults()
	w := &workload.Workload{}
	s := sim.New(c, w, nil, sch, sim.Options{
		Metrics:          reg,
		MetricsSampleSec: cfg.EpochSimSec,
		// A daemon's event count grows without bound by design; the batch
		// runaway guard would otherwise kill it after a few busy days.
		MaxEvents: math.MaxInt64 / 2,
	})
	if err := s.Start(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	var slos []obs.SLO
	if cfg.SLOE2ESec > 0 {
		slos = append(slos, obs.SLO{Kind: obs.SLOE2E, ObjectiveSec: cfg.SLOE2ESec,
			Budget: cfg.SLOBudget, ShortSec: cfg.SLOShortSec, LongSec: cfg.SLOLongSec})
	}
	if cfg.SLOQueueWaitSec > 0 {
		slos = append(slos, obs.SLO{Kind: obs.SLOQueueWait, ObjectiveSec: cfg.SLOQueueWaitSec,
			Budget: cfg.SLOBudget, ShortSec: cfg.SLOShortSec, LongSec: cfg.SLOLongSec})
	}
	budgets := make(map[string]cost.Money, len(cfg.Budgets))
	for tenant, usd := range cfg.Budgets {
		if usd > 0 {
			budgets[tenant] = cost.Dollars(usd)
		}
	}
	d := &Daemon{
		cfg:         cfg,
		reg:         reg,
		sm:          obs.RegisterServe(reg),
		s:           s,
		sch:         sch,
		log:         cfg.Logger,
		spans:       obs.NewSpanRing(cfg.SpanRing),
		burn:        obs.NewBurnEngine(slos...),
		budgets:     budgets,
		tenants:     make(map[string]bool),
		tenantCPU:   make(map[string]float64),
		tenantSpend: make(map[string]map[cost.Category]cost.Money),
		decisions:   newDecisionRing(cfg.EpochRing),
		sem:         make(chan struct{}, cfg.SolverPool),
		stop:        make(chan struct{}),
		doneCh:      make(chan struct{}),
	}
	return d, nil
}

// Ready reports whether the daemon should receive traffic: the epoch
// loop is running, not draining, and has not died on an error. /readyz
// serves 503 the moment this turns false, so load balancers stop
// routing before Shutdown closes anything.
func (d *Daemon) Ready() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.running && !d.draining && d.loopErr == nil
}

// Spans returns the completed-span ring (done, cancelled and shed
// submissions, oldest evicted first).
func (d *Daemon) Spans() *obs.SpanRing { return d.spans }

// Start launches the epoch loop. Calling it twice is a no-op.
func (d *Daemon) Start() {
	d.mu.Lock()
	already := d.running
	d.running = true
	d.mu.Unlock()
	if !already {
		d.log.Info("epoch loop started",
			"epoch_sim_sec", d.cfg.EpochSimSec,
			"epoch_wall_interval", d.cfg.EpochWallInterval.String(),
			"queue_cap", d.cfg.QueueCap, "solver_pool", d.cfg.SolverPool)
		go d.loop()
	}
}

// Err returns the first epoch-loop error (the loop stops on one).
func (d *Daemon) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.loopErr
}

// SimNow returns the simulated clock (one epoch stale at most).
func (d *Daemon) SimNow() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.simNowLocked()
}

func (d *Daemon) simNowLocked() float64 {
	return float64(d.epochs) * d.cfg.EpochSimSec
}

// TenantCPU returns each tenant's accumulated ECU-seconds as of the last
// epoch — the fairness view the admission order uses.
func (d *Daemon) TenantCPU() map[string]float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]float64, len(d.tenantCPU))
	for k, v := range d.tenantCPU {
		out[k] = v
	}
	return out
}

// Shutdown drains and stops the daemon: new submissions are refused with
// 503, the epoch loop keeps stepping until every admitted job finishes
// (bounded by DrainTimeout), then the loop exits. It returns the loop's
// first error, if any.
func (d *Daemon) Shutdown() error {
	d.mu.Lock()
	d.draining = true
	running := d.running
	queued, active := len(d.queue), len(d.active)
	d.mu.Unlock()
	d.log.Info("drain started", "queued", queued, "active", active)
	if running {
		// Only a live loop can drain the queue; waiting on a stopped one
		// would just burn the whole timeout (or, for <-doneCh, forever).
		deadline := time.Now().Add(d.cfg.DrainTimeout)
		for time.Now().Before(deadline) {
			d.mu.Lock()
			idle := len(d.queue) == 0 && len(d.active) == 0 && len(d.cancels) == 0
			err := d.loopErr
			d.mu.Unlock()
			if idle || err != nil {
				break
			}
			time.Sleep(d.cfg.EpochWallInterval)
		}
	}
	d.stopOnce.Do(func() { close(d.stop) })
	if running {
		<-d.doneCh
	}
	err := d.Err()
	if err != nil {
		d.log.Error("daemon stopped", "err", err)
	} else {
		d.log.Info("daemon stopped")
	}
	return err
}

func (d *Daemon) loop() {
	defer close(d.doneCh)
	t := time.NewTicker(d.cfg.EpochWallInterval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			if err := d.epoch(); err != nil {
				d.mu.Lock()
				if d.loopErr == nil {
					d.loopErr = err
				}
				d.mu.Unlock()
				return
			}
		}
	}
}

// solverIdleLocked reports whether a solver token is free. Callers hold
// d.mu; the channel length is racy against the epoch loop by nature, which
// is fine — admission control needs a load signal, not a linearizable one.
func (d *Daemon) solverIdleLocked() bool { return len(d.sem) < cap(d.sem) }

// overBudgetLocked reports whether the tenant's ledger spend (as of the
// last epoch's copy) has reached its configured dollar cap.
func (d *Daemon) overBudgetLocked(tenant string) bool {
	limit, ok := d.budgets[tenant]
	if !ok {
		return false
	}
	var spent cost.Money
	for _, m := range d.tenantSpend[tenant] {
		spent += m
	}
	return spent >= limit
}

// takeBatchLocked removes up to AdmitPerEpoch records from the queue in
// tenant-fair order: tenants are served cheapest-first by accumulated
// ECU-seconds over weight, FIFO within a tenant. Records of tenants that
// exhausted their dollar budget are passed over entirely (returned in
// overBudget, keyed by record ID) and stay queued. The remainder keeps
// its submission order.
func (d *Daemon) takeBatchLocked() (batch []*jobRecord, overBudget map[int]bool) {
	if len(d.queue) == 0 {
		return nil, nil
	}
	// Rank each eligible queued record by its tenant's normalized usage,
	// keeping submission order as the tiebreak (the selection must be
	// stable for determinism under equal usage).
	type ranked struct {
		pos     int
		deficit float64
	}
	rank := make([]ranked, 0, len(d.queue))
	blockedTenant := make(map[string]bool)
	for i, id := range d.queue {
		rec := d.records[id]
		if len(d.budgets) > 0 {
			over, seen := blockedTenant[rec.tenant]
			if !seen {
				over = d.overBudgetLocked(rec.tenant)
				blockedTenant[rec.tenant] = over
			}
			if over {
				if overBudget == nil {
					overBudget = make(map[int]bool)
				}
				overBudget[id] = true
				continue
			}
		}
		w := 1.0
		if pw, ok := d.cfg.Weights[rec.tenant]; ok && pw > 0 {
			w = pw
		}
		rank = append(rank, ranked{pos: i, deficit: d.tenantCPU[rec.tenant] / w})
	}
	n := d.cfg.AdmitPerEpoch
	if n > len(rank) {
		n = len(rank)
	}
	// Insertion-style selection of the n smallest keeps the code free of
	// sort.Slice closures over d; the queue is bounded by QueueCap.
	selected := make([]bool, len(d.queue))
	batch = make([]*jobRecord, 0, n)
	for len(batch) < n {
		best := -1
		for i := range rank {
			if selected[rank[i].pos] {
				continue
			}
			if best == -1 || rank[i].deficit < rank[best].deficit {
				best = i
			}
		}
		selected[rank[best].pos] = true
		batch = append(batch, d.records[d.queue[rank[best].pos]])
	}
	rest := d.queue[:0]
	for i, id := range d.queue {
		if !selected[i] {
			rest = append(rest, id)
		}
	}
	d.queue = rest
	return batch, overBudget
}

// epoch runs one serve epoch: cancellations, tenant-fair admission, one
// simulated-time step, progress publication, metrics, and one entry in
// the /debug/epochs decision ring.
func (d *Daemon) epoch() error {
	d.sem <- struct{}{} // solver token; admission control watches occupancy
	defer func() { <-d.sem }()

	d.mu.Lock()
	cancels := d.cancels
	d.cancels = nil
	batch, overBudget := d.takeBatchLocked()
	// Queue leftovers either sat out on an exhausted tenant budget or
	// lost this epoch's fair-share ranking to the AdmitPerEpoch bound —
	// the queue-side classes of typed deferrals.
	var deferred []Deferral
	for _, id := range d.queue {
		if len(deferred) == maxDecisionRefs {
			break
		}
		rec := d.records[id]
		reason := obs.ReasonFairShare
		if overBudget[id] {
			reason = obs.ReasonBudgetExhausted
		}
		deferred = append(deferred, Deferral{JobRef{rec.id, rec.tenant}, reason})
	}
	deferredTotal := len(d.queue)
	shed := d.shedCounts
	d.shedCounts = nil
	activePairs := make([]cancelReq, 0, len(d.active))
	for _, id := range d.active {
		activePairs = append(activePairs, cancelReq{recID: id, simJob: d.records[id].simJob})
	}
	d.mu.Unlock()

	type admitResult struct {
		rec    *jobRecord
		simJob int
		err    error
	}

	stepStart := time.Now()
	d.simMu.Lock()
	for _, c := range cancels {
		if err := d.s.CancelJob(c.simJob); err != nil {
			d.simMu.Unlock()
			return fmt.Errorf("serve: cancel job %d: %w", c.simJob, err)
		}
	}
	now := d.s.Now()
	admitted := make([]admitResult, 0, len(batch))
	for _, rec := range batch {
		job := workload.Job{
			Name:          rec.name,
			Archetype:     rec.spec.archetype.Name,
			User:          rec.tenant,
			ArrivalSec:    now,
			NumTasks:      rec.spec.tasks,
			AccessFrac:    rec.spec.accessFrac,
			CPUSecPerMB:   rec.spec.archetype.CPUSecPerMB(),
			CPUSecPerTask: rec.spec.cpuSecPerTask,
		}
		var obj *hdfs.DataObject
		if rec.spec.archetype.HasInput() {
			obj = &hdfs.DataObject{
				Name:   rec.name,
				SizeMB: rec.spec.inputMB,
				Origin: d.nextOrigin(),
			}
		}
		simJob, err := d.s.AddJob(job, obj)
		admitted = append(admitted, admitResult{rec: rec, simJob: simJob, err: err})
	}
	target := d.s.Now() + d.cfg.EpochSimSec
	stepErr := d.s.StepUntil(target)

	// Collect post-step progress while still holding the simulator.
	type progress struct {
		recID                               int
		pending, queued, running, doneTasks int
		firstLaunch, plannedAt, doneAt      float64
		launched, planned, cancelled        bool
		costUC                              int64
	}
	collect := func(recID, simJob int) progress {
		p := progress{recID: recID}
		p.pending, p.queued, p.running, p.doneTasks = d.s.JobStateCounts(simJob)
		if fl, ok := d.s.JobFirstLaunch(simJob); ok {
			p.firstLaunch, p.launched = fl, true
		}
		if fe, ok := d.s.JobFirstEnqueue(simJob); ok {
			p.plannedAt, p.planned = fe, true
		}
		p.doneAt = d.s.JobDoneAt(simJob)
		p.cancelled = d.s.JobCancelled(simJob)
		p.costUC = d.s.JobCostUC(simJob)
		return p
	}
	updates := make([]progress, 0, len(activePairs)+len(admitted))
	for _, a := range admitted {
		if a.err == nil {
			updates = append(updates, collect(a.rec.id, a.simJob))
		}
	}
	for _, p := range activePairs {
		// A record cancelled this very epoch appears only once: the active
		// list still holds it, the cancels slice carried the same ID.
		updates = append(updates, collect(p.recID, p.simJob))
	}
	cpu := make(map[string]float64, len(d.s.UserCPU))
	for u, v := range d.s.UserCPU {
		cpu[u] = v
	}
	spend := make(map[string]map[cost.Category]cost.Money)
	for _, tn := range d.s.Ledger.Tenants() {
		spend[tn] = d.s.Ledger.TenantBreakdown(tn)
	}
	var schedStats sched.EpochStats
	var haveSched bool
	if er, ok := d.sch.(sched.EpochReporter); ok {
		schedStats, haveSched = er.LastEpochStats()
	}
	simNow := d.s.Now()
	d.simMu.Unlock()
	stepWall := time.Since(stepStart)

	// Publish under the fast lock. The obs calls inside the critical
	// section are lock-free atomics (plus a family mutex on first child
	// creation) and never take d.mu, so no ordering hazard.
	epochNum := d.epochs + 1
	newlyDone, newlyCancelled := 0, 0
	var launches []float64
	var completed []obs.Span // spans to push into the ring after unlock
	admittedRefs := make([]JobRef, 0, len(admitted))
	admittedTotal := 0
	d.mu.Lock()
	for _, a := range admitted {
		if a.err != nil {
			// A malformed spec that slipped past validation: fail the
			// record, not the daemon.
			a.rec.state = StateCancelled
			a.rec.doneSim = now
			completed = append(completed, d.spanLocked(a.rec))
			newlyCancelled++
			continue
		}
		a.rec.simJob = a.simJob
		a.rec.admittedSim = now
		a.rec.admittedEpoch = epochNum
		d.sm.QueueWait.With(a.rec.tenant).Observe(now - a.rec.submittedSim)
		d.burn.Observe(a.rec.tenant, obs.SLOQueueWait, now, now-a.rec.submittedSim)
		admittedTotal++
		if len(admittedRefs) < maxDecisionRefs {
			admittedRefs = append(admittedRefs, JobRef{a.rec.id, a.rec.tenant})
		}
		if a.rec.cancelPending {
			// Cancelled while mid-admission (between leaving the queue and
			// this publish): now that the sim job ID exists, route it through
			// the normal cancel path next epoch.
			a.rec.cancelPending = false
			a.rec.state = StateCancelling
			d.cancels = append(d.cancels, cancelReq{recID: a.rec.id, simJob: a.simJob})
		} else {
			a.rec.state = StateAdmitted
		}
		d.active = append(d.active, a.rec.id)
	}
	stillActive := d.active[:0]
	noCapTotal := 0
	for _, p := range updates {
		rec := d.records[p.recID]
		rec.pending, rec.queued, rec.running, rec.doneTasks = p.pending, p.queued, p.running, p.doneTasks
		rec.costUC = p.costUC
		if p.planned && !rec.planned {
			rec.planned, rec.plannedSim = true, p.plannedAt
		}
		if p.launched && !rec.launched {
			rec.launched, rec.firstLaunchSim = true, p.firstLaunch
			launches = append(launches, p.firstLaunch-rec.admittedSim)
			d.sm.TenantLaunch.With(rec.tenant).Observe(p.firstLaunch - rec.submittedSim)
		}
		switch {
		case p.cancelled:
			rec.state = StateCancelled
			rec.doneSim = p.doneAt
			newlyCancelled++
			completed = append(completed, d.spanLocked(rec))
			d.sm.TenantE2E.With(rec.tenant).Observe(p.doneAt - rec.submittedSim)
			d.burn.Observe(rec.tenant, obs.SLOE2E, p.doneAt, p.doneAt-rec.submittedSim)
		case rec.state == StateCancelling:
			// A cancel is in flight; don't flap the visible state back to
			// running while the next epoch applies it.
		case p.doneAt > 0 && p.pending+p.queued+p.running == 0:
			rec.state = StateDone
			rec.doneSim = p.doneAt
			newlyDone++
			completed = append(completed, d.spanLocked(rec))
			d.sm.TenantE2E.With(rec.tenant).Observe(p.doneAt - rec.submittedSim)
			d.burn.Observe(rec.tenant, obs.SLOE2E, p.doneAt, p.doneAt-rec.submittedSim)
		case rec.launched:
			rec.state = StateRunning
		default:
			rec.state = StateAdmitted
			if p.pending > 0 {
				// Admitted, never launched, work still pending: the epoch
				// plan found no capacity for it.
				noCapTotal++
				if len(deferred) < maxDecisionRefs {
					deferred = append(deferred, Deferral{JobRef{rec.id, rec.tenant}, obs.ReasonNoCapacity})
				}
			}
		}
	}
	deferredTotal += noCapTotal
	for _, id := range d.active {
		st := d.records[id].state
		if st != StateDone && st != StateCancelled {
			stillActive = append(stillActive, id)
		}
	}
	d.active = stillActive
	d.tenantCPU = cpu
	d.tenantSpend = spend
	d.epochs++
	queueDepth := len(d.queue)
	tenantCount := len(d.tenants)
	if len(admitted) > 0 || len(cancels) > 0 || len(updates) > 0 ||
		len(shed) > 0 || deferredTotal > 0 {
		// Idle ticks are not recorded; the ring holds epochs that decided
		// something.
		dec := EpochDecision{
			Epoch: epochNum, SimStart: now, SimEnd: simNow,
			WallMS:   float64(stepWall.Microseconds()) / 1e3,
			Admitted: admittedRefs, AdmittedCount: admittedTotal,
			Deferred: deferred, DeferredCount: deferredTotal,
			Shed: shed, QueueDepth: queueDepth,
		}
		if haveSched {
			dec.SchedEpoch = schedStats.Epoch
			dec.SchedDeferredTasks = schedStats.Deferred
			dec.Solver = schedStats.Solver
		}
		d.decisions.add(dec)
	}
	d.mu.Unlock()

	for _, sp := range completed {
		d.spans.Add(sp)
		d.sm.Spans.With(sp.Outcome).Inc()
	}
	d.sm.Epochs.Inc()
	d.sm.QueueDepth.Set(float64(queueDepth))
	d.sm.SimSeconds.Set(simNow)
	d.sm.Tenants.Set(float64(tenantCount))
	if newlyDone > 0 {
		d.sm.JobsDone.Add(float64(newlyDone))
	}
	if newlyCancelled > 0 {
		d.sm.JobsCancelled.Add(float64(newlyCancelled))
	}
	for _, l := range launches {
		d.sm.LaunchSeconds.Observe(l)
	}
	d.sm.SolveShare.Observe(stepWall.Seconds() / d.cfg.EpochWallInterval.Seconds())
	if d.burn.Enabled() {
		for _, ev := range d.burn.Evaluate(simNow) {
			d.sm.AlertTransitions.With(ev.State).Inc()
			attrs := []any{
				obs.LogTenant, ev.Tenant, "slo", ev.SLO, "state", ev.State,
				"objective_sec", ev.ObjectiveSec,
				"burn_short", ev.BurnShort, "burn_long", ev.BurnLong,
				"sim_sec", simNow,
			}
			if ev.State == obs.AlertFiring {
				d.log.Warn("slo alert firing", attrs...)
			} else {
				d.log.Info("slo alert "+ev.State, attrs...)
			}
		}
		// The gauge holds each tenant's worst burn across configured
		// objectives — the page-worthiness signal, not the per-SLO detail
		// (that lives on /alerts).
		worstShort := make(map[string]float64)
		worstLong := make(map[string]float64)
		for _, a := range d.burn.BurnRates() {
			if a.BurnShort > worstShort[a.Tenant] || worstShort[a.Tenant] == 0 {
				worstShort[a.Tenant] = a.BurnShort
			}
			if a.BurnLong > worstLong[a.Tenant] || worstLong[a.Tenant] == 0 {
				worstLong[a.Tenant] = a.BurnLong
			}
		}
		for tenant, b := range worstShort {
			d.sm.BurnRate.With(tenant, obs.WindowShort).Set(b)
			d.sm.BurnRate.With(tenant, obs.WindowLong).Set(worstLong[tenant])
		}
		d.sm.AlertsFiring.Set(float64(d.burn.Firing()))
	}
	if stepWall > d.cfg.EpochWallInterval {
		d.log.Warn("slow epoch",
			obs.LogEpoch, epochNum,
			"step_wall_ms", float64(stepWall.Microseconds())/1e3,
			"interval_ms", float64(d.cfg.EpochWallInterval.Microseconds())/1e3,
			"queue_depth", queueDepth)
	}
	if admittedTotal > 0 || newlyDone > 0 || newlyCancelled > 0 {
		d.log.Debug("epoch",
			obs.LogEpoch, epochNum, "sim_sec", simNow,
			"admitted", admittedTotal, "done", newlyDone,
			"cancelled", newlyCancelled, "queue_depth", queueDepth)
	}
	if stepErr != nil {
		return fmt.Errorf("serve: epoch step: %w", stepErr)
	}
	return nil
}

// nextOrigin round-robins submitted inputs over the cluster's stores —
// the serve-mode stand-in for "the tenant uploaded the file somewhere".
// Only the epoch goroutine touches it.
func (d *Daemon) nextOrigin() cluster.StoreID {
	st := d.originRR % len(d.s.C.Stores)
	d.originRR++
	return d.s.C.Stores[st].ID
}

// Churn injects a node-down or node-up fault at the current simulated
// time; the next epoch applies it and the scheduler reconfigures through
// OnNodeDown/OnNodeUp (LiPS translates its warm-start basis).
func (d *Daemon) Churn(node cluster.NodeID, down bool) error {
	kind := sim.FaultNodeUp
	label := "up"
	if down {
		kind = sim.FaultNodeDown
		label = "down"
	}
	d.simMu.Lock()
	err := d.s.InjectFault(sim.Fault{At: d.s.Now(), Kind: kind, Node: node})
	d.simMu.Unlock()
	if err == nil {
		d.sm.Churn.With(label).Inc()
	}
	return err
}
