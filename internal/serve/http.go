package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"lips/internal/cluster"
	"lips/internal/obs"
	"lips/internal/workload"
)

// SubmitRequest is the POST /submit payload. Input archetypes (grep,
// stress1, stress2, wordcount) describe their input by size; the task
// count follows from the 64 MB blocking. The pi archetype has no input
// and names its task count directly.
type SubmitRequest struct {
	Tenant    string `json:"tenant"`
	Name      string `json:"name,omitempty"`
	Archetype string `json:"archetype"`
	// InputMB sizes the input object of an input archetype.
	InputMB float64 `json:"input_mb,omitempty"`
	// AccessFrac is the fraction of each block the job reads (0 = all).
	AccessFrac float64 `json:"access_frac,omitempty"`
	// Tasks is the task count of a no-input (pi) job.
	Tasks int `json:"tasks,omitempty"`
	// CPUSecPerTask overrides the pi archetype's per-task CPU seconds.
	CPUSecPerTask float64 `json:"cpu_sec_per_task,omitempty"`
}

// SubmitResponse answers an accepted submission.
type SubmitResponse struct {
	ID    int    `json:"id"`
	State string `json:"state"`
}

// JobStatus is the GET /status view of one submission. Task counts and
// state are refreshed once per epoch, so they lag the simulator by at
// most one epoch.
type JobStatus struct {
	ID             int     `json:"id"`
	Tenant         string  `json:"tenant"`
	Name           string  `json:"name"`
	Archetype      string  `json:"archetype"`
	State          string  `json:"state"`
	SubmittedSim   float64 `json:"submitted_sim,omitempty"`
	AdmittedSim    float64 `json:"admitted_sim,omitempty"`
	FirstLaunchSim float64 `json:"first_launch_sim,omitempty"`
	DoneSim        float64 `json:"done_sim,omitempty"`
	Pending        int     `json:"pending"`
	Queued         int     `json:"queued"`
	Running        int     `json:"running"`
	DoneTasks      int     `json:"done_tasks"`
}

// JobTrace is the GET /jobs/{id}/trace view: the job's span, its phase
// decomposition, and the end-to-end latency (simulated seconds; -1
// while the job is still in flight).
type JobTrace struct {
	obs.Span
	State         string      `json:"state"`
	AdmittedEpoch int64       `json:"admitted_epoch,omitempty"`
	E2ESim        float64     `json:"e2e_sim"`
	Phases        []obs.Phase `json:"phases"`
}

// EpochsResponse is the GET /debug/epochs view: the retained decision
// ring oldest-first plus how many decisions were ever recorded.
type EpochsResponse struct {
	Total  int64           `json:"total"`
	Epochs []EpochDecision `json:"epochs"`
}

// SpansResponse is the GET /debug/spans view of the completed-span ring.
type SpansResponse struct {
	Total int64      `json:"total"`
	Spans []obs.Span `json:"spans"`
}

// Stats is the GET /stats snapshot of the whole daemon.
type Stats struct {
	SimSeconds float64            `json:"sim_seconds"`
	Epochs     int64              `json:"epochs"`
	QueueDepth int                `json:"queue_depth"`
	Jobs       map[string]int     `json:"jobs"` // count per lifecycle state
	Tenants    int                `json:"tenants"`
	TenantCPU  map[string]float64 `json:"tenant_cpu_sec"`
	Draining   bool               `json:"draining"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (d *Daemon) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(d.cfg.RetryAfterSec))
	}
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// Handler returns the daemon's HTTP API mounted alongside the standard
// observability endpoints (/metrics, /progress, /healthz, /readyz,
// /debug/pprof). /readyz reports 503 once draining begins.
//
//	POST /submit           accept a job (202; 429 under load, 503 draining)
//	GET  /status?id=N      one submission's state
//	GET  /jobs/{id}/trace  one submission's span and phase breakdown
//	POST /cancel?id=N      withdraw a submission
//	GET  /stats            daemon-wide snapshot
//	GET  /debug/epochs     recent epoch decisions (admitted/deferred/shed)
//	GET  /debug/spans      recent completed spans
//	POST /admin/churn      ?node=N&kind=down|up — inject node churn
func (d *Daemon) Handler() http.Handler {
	mux := obs.MuxReady(d.reg, d.Ready)
	mux.HandleFunc("/submit", d.handleSubmit)
	mux.HandleFunc("/status", d.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/trace", d.handleTrace)
	mux.HandleFunc("/cancel", d.handleCancel)
	mux.HandleFunc("/stats", d.handleStats)
	mux.HandleFunc("GET /debug/epochs", d.handleEpochs)
	mux.HandleFunc("GET /debug/spans", d.handleSpans)
	mux.HandleFunc("/admin/churn", d.handleChurn)
	return mux
}

// validateSubmit turns a request into a spec, normalizing defaults.
func validateSubmit(req *SubmitRequest) (submitSpec, error) {
	var spec submitSpec
	if req.Tenant == "" {
		return spec, fmt.Errorf("tenant is required")
	}
	a, err := workload.ByName(req.Archetype)
	if err != nil {
		return spec, err
	}
	spec.archetype = a
	if a.HasInput() {
		if req.InputMB <= 0 {
			return spec, fmt.Errorf("archetype %q needs input_mb > 0", a.Name)
		}
		if req.Tasks != 0 {
			return spec, fmt.Errorf("archetype %q derives tasks from input_mb", a.Name)
		}
		spec.inputMB = req.InputMB
	} else {
		if req.Tasks <= 0 {
			return spec, fmt.Errorf("archetype %q needs tasks > 0", a.Name)
		}
		spec.tasks = req.Tasks
		spec.cpuSecPerTask = req.CPUSecPerTask
		if spec.cpuSecPerTask <= 0 {
			spec.cpuSecPerTask = a.CPUSecPerTask
		}
	}
	if req.AccessFrac < 0 || req.AccessFrac > 1 {
		return spec, fmt.Errorf("access_frac %g outside [0, 1]", req.AccessFrac)
	}
	spec.accessFrac = req.AccessFrac
	return spec, nil
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		d.writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	start := time.Now()
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		d.writeError(w, http.StatusBadRequest, "bad submit body: %v", err)
		return
	}
	spec, err := validateSubmit(&req)
	if err != nil {
		d.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	name := req.Name
	if name == "" {
		name = req.Archetype
	}

	d.mu.Lock()
	var decision, shedReason string
	var rec *jobRecord
	switch {
	case d.draining:
		decision, shedReason = "draining", obs.ReasonDraining
	case len(d.queue) >= d.cfg.QueueCap:
		// A full queue always sheds.
		decision, shedReason = "rejected", obs.ReasonQueueCap
	case 2*len(d.queue) >= d.cfg.QueueCap && !d.solverIdleLocked():
		// A half-full queue sheds while every solver token is busy —
		// backpressure before breakdown.
		decision, shedReason = "rejected", obs.ReasonSolverBackpressure
	default:
		decision = "accepted"
		rec = &jobRecord{
			id:            len(d.records),
			tenant:        req.Tenant,
			name:          fmt.Sprintf("%s-%d", name, len(d.records)),
			spec:          spec,
			state:         StateQueued,
			simJob:        -1,
			submittedWall: start,
			submittedSim:  d.simNowLocked(),
		}
		d.records = append(d.records, rec)
		d.queue = append(d.queue, rec.id)
		d.tenants[req.Tenant] = true
	}
	var shedSpan obs.Span
	if shedReason != "" {
		if d.shedCounts == nil {
			d.shedCounts = make(map[string]int)
		}
		d.shedCounts[shedReason]++
		shedSpan = obs.NewSpan(-1)
		shedSpan.Name, shedSpan.Tenant = name, req.Tenant
		shedSpan.Outcome, shedSpan.Reason = obs.OutcomeShed, shedReason
		shedSpan.SubmittedSim, shedSpan.DoneSim = d.simNowLocked(), d.simNowLocked()
	}
	queueDepth := len(d.queue)
	d.mu.Unlock()

	d.sm.Admissions.With(decision).Inc()
	d.sm.QueueDepth.Set(float64(queueDepth))
	d.sm.SubmitSeconds.Observe(time.Since(start).Seconds())
	if shedReason != "" {
		d.spans.Add(shedSpan)
		d.sm.Sheds.With(shedReason).Inc()
		d.sm.Spans.With(obs.OutcomeShed).Inc()
		d.log.Warn("submission shed",
			obs.LogTenant, req.Tenant, "name", name,
			"reason", shedReason, "queue_depth", queueDepth)
	}
	switch decision {
	case "draining":
		d.writeError(w, http.StatusServiceUnavailable, "draining")
	case "rejected":
		d.writeError(w, http.StatusTooManyRequests, "admission queue full")
	default:
		writeJSON(w, http.StatusAccepted, SubmitResponse{ID: rec.id, State: StateQueued})
	}
}

func (d *Daemon) recordByQuery(w http.ResponseWriter, r *http.Request) (*jobRecord, bool) {
	id, err := strconv.Atoi(r.URL.Query().Get("id"))
	if err != nil {
		d.writeError(w, http.StatusBadRequest, "bad id %q", r.URL.Query().Get("id"))
		return nil, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id < 0 || id >= len(d.records) {
		d.writeError(w, http.StatusNotFound, "no job %d", id)
		return nil, false
	}
	return d.records[id], true
}

func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	rec, ok := d.recordByQuery(w, r)
	if !ok {
		return
	}
	d.mu.Lock()
	st := JobStatus{
		ID: rec.id, Tenant: rec.tenant, Name: rec.name,
		Archetype: rec.spec.archetype.Name, State: rec.state,
		SubmittedSim: rec.submittedSim, FirstLaunchSim: rec.firstLaunchSim,
		DoneSim: rec.doneSim,
		Pending: rec.pending, Queued: rec.queued,
		Running: rec.running, DoneTasks: rec.doneTasks,
	}
	if rec.simJob >= 0 {
		st.AdmittedSim = rec.admittedSim
	}
	d.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleTrace serves GET /jobs/{id}/trace: the job's span assembled
// from the live record, decomposed into phases.
func (d *Daemon) handleTrace(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		d.writeError(w, http.StatusBadRequest, "bad id %q", r.PathValue("id"))
		return
	}
	d.mu.Lock()
	if id < 0 || id >= len(d.records) {
		d.mu.Unlock()
		d.writeError(w, http.StatusNotFound, "no job %d", id)
		return
	}
	rec := d.records[id]
	tr := JobTrace{Span: d.spanLocked(rec), State: rec.state, AdmittedEpoch: rec.admittedEpoch}
	d.mu.Unlock()
	tr.E2ESim = tr.Span.E2ESim()
	tr.Phases = tr.Span.Phases()
	writeJSON(w, http.StatusOK, tr)
}

// handleEpochs serves GET /debug/epochs: the recent epoch decisions,
// oldest first.
func (d *Daemon) handleEpochs(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	resp := EpochsResponse{Total: d.decisions.total, Epochs: d.decisions.snapshot()}
	d.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// handleSpans serves GET /debug/spans: the completed-span ring.
func (d *Daemon) handleSpans(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, SpansResponse{Total: d.spans.Total(), Spans: d.spans.Snapshot()})
}

func (d *Daemon) handleCancel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		d.writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	rec, ok := d.recordByQuery(w, r)
	if !ok {
		return
	}
	d.mu.Lock()
	var cancelSpan obs.Span
	state := rec.state
	switch state {
	case StateQueued:
		// Still in the admission queue: withdraw before it ever reaches
		// the simulator. If it is not in the queue the epoch loop has it
		// mid-admission (batch taken, not yet published) — flag it so the
		// publish step routes it into the cancel path once its simulator
		// job ID exists.
		found := false
		for i, id := range d.queue {
			if id == rec.id {
				d.queue = append(d.queue[:i], d.queue[i+1:]...)
				found = true
				break
			}
		}
		if found {
			rec.state = StateCancelled
			rec.doneSim = d.simNowLocked()
			state = StateCancelled
			cancelSpan = d.spanLocked(rec)
		} else {
			rec.cancelPending = true
			rec.state = StateCancelling
			state = StateCancelling
		}
	case StateAdmitted, StateRunning:
		d.cancels = append(d.cancels, cancelReq{recID: rec.id, simJob: rec.simJob})
		rec.state = StateCancelling
		state = StateCancelling
	}
	d.mu.Unlock()
	if state == StateCancelled {
		d.sm.JobsCancelled.Inc()
		d.spans.Add(cancelSpan)
		d.sm.Spans.With(obs.OutcomeCancelled).Inc()
		d.sm.TenantE2E.With(rec.tenant).Observe(cancelSpan.DoneSim - cancelSpan.SubmittedSim)
	}
	writeJSON(w, http.StatusOK, SubmitResponse{ID: rec.id, State: state})
}

func (d *Daemon) handleStats(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	st := Stats{
		SimSeconds: d.simNowLocked(),
		Epochs:     d.epochs,
		QueueDepth: len(d.queue),
		Jobs:       make(map[string]int),
		Tenants:    len(d.tenants),
		TenantCPU:  make(map[string]float64, len(d.tenantCPU)),
		Draining:   d.draining,
	}
	for _, rec := range d.records {
		st.Jobs[rec.state]++
	}
	for k, v := range d.tenantCPU {
		st.TenantCPU[k] = v
	}
	d.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (d *Daemon) handleChurn(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		d.writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	node, err := strconv.Atoi(r.URL.Query().Get("node"))
	if err != nil {
		d.writeError(w, http.StatusBadRequest, "bad node %q", r.URL.Query().Get("node"))
		return
	}
	kind := r.URL.Query().Get("kind")
	if kind != "down" && kind != "up" {
		d.writeError(w, http.StatusBadRequest, "kind must be down or up, got %q", kind)
		return
	}
	if err := d.Churn(cluster.NodeID(node), kind == "down"); err != nil {
		d.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"node": strconv.Itoa(node), "kind": kind})
}
