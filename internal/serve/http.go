package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/obs"
	"lips/internal/workload"
)

// SubmitRequest is the POST /submit payload. Input archetypes (grep,
// stress1, stress2, wordcount) describe their input by size; the task
// count follows from the 64 MB blocking. The pi archetype has no input
// and names its task count directly.
type SubmitRequest struct {
	Tenant    string `json:"tenant"`
	Name      string `json:"name,omitempty"`
	Archetype string `json:"archetype"`
	// InputMB sizes the input object of an input archetype.
	InputMB float64 `json:"input_mb,omitempty"`
	// AccessFrac is the fraction of each block the job reads (0 = all).
	AccessFrac float64 `json:"access_frac,omitempty"`
	// Tasks is the task count of a no-input (pi) job.
	Tasks int `json:"tasks,omitempty"`
	// CPUSecPerTask overrides the pi archetype's per-task CPU seconds.
	CPUSecPerTask float64 `json:"cpu_sec_per_task,omitempty"`
}

// SubmitResponse answers an accepted submission.
type SubmitResponse struct {
	ID    int    `json:"id"`
	State string `json:"state"`
}

// JobStatus is the GET /status view of one submission. Task counts and
// state are refreshed once per epoch, so they lag the simulator by at
// most one epoch.
type JobStatus struct {
	ID             int     `json:"id"`
	Tenant         string  `json:"tenant"`
	Name           string  `json:"name"`
	Archetype      string  `json:"archetype"`
	State          string  `json:"state"`
	SubmittedSim   float64 `json:"submitted_sim,omitempty"`
	AdmittedSim    float64 `json:"admitted_sim,omitempty"`
	FirstLaunchSim float64 `json:"first_launch_sim,omitempty"`
	DoneSim        float64 `json:"done_sim,omitempty"`
	Pending        int     `json:"pending"`
	Queued         int     `json:"queued"`
	Running        int     `json:"running"`
	DoneTasks      int     `json:"done_tasks"`
}

// JobTrace is the GET /jobs/{id}/trace view: the job's span, its phase
// decomposition, and the end-to-end latency (simulated seconds; -1
// while the job is still in flight).
type JobTrace struct {
	obs.Span
	State         string      `json:"state"`
	AdmittedEpoch int64       `json:"admitted_epoch,omitempty"`
	E2ESim        float64     `json:"e2e_sim"`
	Phases        []obs.Phase `json:"phases"`
}

// EpochsResponse is the GET /debug/epochs view: the retained decision
// ring oldest-first plus how many decisions were ever recorded.
type EpochsResponse struct {
	Total  int64           `json:"total"`
	Epochs []EpochDecision `json:"epochs"`
}

// SpansResponse is the GET /debug/spans view of the completed-span ring.
type SpansResponse struct {
	Total int64      `json:"total"`
	Spans []obs.Span `json:"spans"`
}

// Stats is the GET /stats snapshot of the whole daemon.
type Stats struct {
	SimSeconds float64            `json:"sim_seconds"`
	Epochs     int64              `json:"epochs"`
	QueueDepth int                `json:"queue_depth"`
	Jobs       map[string]int     `json:"jobs"` // count per lifecycle state
	Tenants    int                `json:"tenants"`
	TenantCPU  map[string]float64 `json:"tenant_cpu_sec"`
	Draining   bool               `json:"draining"`
}

// TenantSummary is one row of GET /tenants: the tenant's chargeback
// breakdown, unit economics and lifetime SLO attainment. Cost figures
// come from the epoch loop's ledger copy, so they lag the simulator by
// at most one epoch; microcent fields are exact, dollar fields are the
// same numbers scaled for reading.
type TenantSummary struct {
	Tenant string `json:"tenant"`
	// Jobs counts the tenant's submissions by lifecycle state (absent
	// for the reserved unattributed tenant, which never submits).
	Jobs   map[string]int `json:"jobs,omitempty"`
	CPUSec float64        `json:"cpu_sec"` // accumulated ECU-seconds
	// TotalUC is the tenant's exact chargeback in microcents; TotalUSD is
	// the same number in dollars.
	TotalUC    int64            `json:"total_uc"`
	TotalUSD   float64          `json:"total_usd"`
	Categories map[string]int64 `json:"categories_uc,omitempty"`
	// USDPerDoneJob divides the chargeback over completed submissions
	// (0 until the first completion).
	USDPerDoneJob float64 `json:"usd_per_done_job,omitempty"`
	// BudgetUSD and OverBudget surface the configured dollar cap; an
	// over-budget tenant's queued jobs defer with budget-exhausted.
	BudgetUSD  float64 `json:"budget_usd,omitempty"`
	OverBudget bool    `json:"over_budget,omitempty"`
	// Attainment is the lifetime good/total ratio per configured SLO.
	Attainment []obs.Attainment `json:"slo_attainment,omitempty"`
}

// TenantsResponse is the GET /tenants view, sorted by tenant name.
type TenantsResponse struct {
	Tenants []TenantSummary `json:"tenants"`
}

// TenantDetail is the GET /tenants/{tenant} view: the summary plus the
// tenant's current burn rates, its active alerts, and its most recent
// submissions.
type TenantDetail struct {
	TenantSummary
	// Burn is the tenant's burn rate per SLO as of the last evaluation.
	Burn []obs.Alert `json:"burn,omitempty"`
	// Alerts are the tenant's alerts: active first, then resolved history.
	Alerts []obs.Alert `json:"alerts,omitempty"`
	// Recent lists the tenant's latest submissions, newest first.
	Recent []JobStatus `json:"recent_jobs,omitempty"`
}

// AlertsResponse is the GET /alerts view of the SLO burn-rate engine.
type AlertsResponse struct {
	Enabled bool        `json:"enabled"`
	Firing  int         `json:"firing"`
	Alerts  []obs.Alert `json:"alerts"`
}

// AuditResponse is the GET /audit reconciliation report: the ledger's
// conservation invariants checked to the exact microcent against both
// its own books and the live metric counters. The handler answers 500
// when any check fails, so `curl -f /audit` is a smoke gate.
type AuditResponse struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`

	SimSeconds float64 `json:"sim_seconds"`
	TotalUC    int64   `json:"total_uc"`
	TotalUSD   float64 `json:"total_usd"`
	// UnattributedJobUC is money charged with no job key (background
	// replication, plan moves); it still lands in a tenant bucket.
	UnattributedJobUC int64            `json:"unattributed_job_uc"`
	Categories        map[string]int64 `json:"categories_uc"`
	Tenants           map[string]int64 `json:"tenants_uc"`
	// TenantSumUC re-adds the tenant totals; MetricTenantUC and
	// MetricCategoryUC sum the lips_cost_microcents_total and
	// lips_sim_cost_microcents_total counter families. All three must
	// equal TotalUC.
	TenantSumUC      int64 `json:"tenant_sum_uc"`
	MetricTenantUC   int64 `json:"metric_tenant_uc"`
	MetricCategoryUC int64 `json:"metric_category_uc"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (d *Daemon) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(d.cfg.RetryAfterSec))
	}
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// Handler returns the daemon's HTTP API mounted alongside the standard
// observability endpoints (/metrics, /progress, /healthz, /readyz,
// /debug/pprof). /readyz reports 503 once draining begins.
//
//	POST /submit            accept a job (202; 429 under load, 503 draining)
//	GET  /status?id=N       one submission's state
//	GET  /jobs/{id}/trace   one submission's span and phase breakdown
//	POST /cancel?id=N       withdraw a submission
//	GET  /stats             daemon-wide snapshot
//	GET  /tenants           per-tenant chargeback, unit economics, SLO attainment
//	GET  /tenants/{tenant}  one tenant: chargeback, burn rates, alerts, recent jobs
//	GET  /alerts            SLO burn-rate alerts (active + resolved history)
//	GET  /audit             exact-microcent ledger reconciliation (500 on drift)
//	GET  /debug/epochs      recent epoch decisions (admitted/deferred/shed)
//	GET  /debug/spans       recent completed spans
//	POST /admin/churn       ?node=N&kind=down|up — inject node churn
func (d *Daemon) Handler() http.Handler {
	mux := obs.MuxReady(d.reg, d.Ready)
	mux.HandleFunc("/submit", d.handleSubmit)
	mux.HandleFunc("/status", d.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/trace", d.handleTrace)
	mux.HandleFunc("/cancel", d.handleCancel)
	mux.HandleFunc("/stats", d.handleStats)
	mux.HandleFunc("GET /tenants", d.handleTenants)
	mux.HandleFunc("GET /tenants/{tenant}", d.handleTenant)
	mux.HandleFunc("GET /alerts", d.handleAlerts)
	mux.HandleFunc("GET /audit", d.handleAudit)
	mux.HandleFunc("GET /debug/epochs", d.handleEpochs)
	mux.HandleFunc("GET /debug/spans", d.handleSpans)
	mux.HandleFunc("/admin/churn", d.handleChurn)
	return mux
}

// validateSubmit turns a request into a spec, normalizing defaults.
func validateSubmit(req *SubmitRequest) (submitSpec, error) {
	var spec submitSpec
	if req.Tenant == "" {
		return spec, fmt.Errorf("tenant is required")
	}
	a, err := workload.ByName(req.Archetype)
	if err != nil {
		return spec, err
	}
	spec.archetype = a
	if a.HasInput() {
		if req.InputMB <= 0 {
			return spec, fmt.Errorf("archetype %q needs input_mb > 0", a.Name)
		}
		if req.Tasks != 0 {
			return spec, fmt.Errorf("archetype %q derives tasks from input_mb", a.Name)
		}
		spec.inputMB = req.InputMB
	} else {
		if req.Tasks <= 0 {
			return spec, fmt.Errorf("archetype %q needs tasks > 0", a.Name)
		}
		spec.tasks = req.Tasks
		spec.cpuSecPerTask = req.CPUSecPerTask
		if spec.cpuSecPerTask <= 0 {
			spec.cpuSecPerTask = a.CPUSecPerTask
		}
	}
	if req.AccessFrac < 0 || req.AccessFrac > 1 {
		return spec, fmt.Errorf("access_frac %g outside [0, 1]", req.AccessFrac)
	}
	spec.accessFrac = req.AccessFrac
	return spec, nil
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		d.writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	start := time.Now()
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		d.writeError(w, http.StatusBadRequest, "bad submit body: %v", err)
		return
	}
	spec, err := validateSubmit(&req)
	if err != nil {
		d.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	name := req.Name
	if name == "" {
		name = req.Archetype
	}

	d.mu.Lock()
	var decision, shedReason string
	var rec *jobRecord
	switch {
	case d.draining:
		decision, shedReason = "draining", obs.ReasonDraining
	case len(d.queue) >= d.cfg.QueueCap:
		// A full queue always sheds.
		decision, shedReason = "rejected", obs.ReasonQueueCap
	case 2*len(d.queue) >= d.cfg.QueueCap && !d.solverIdleLocked():
		// A half-full queue sheds while every solver token is busy —
		// backpressure before breakdown.
		decision, shedReason = "rejected", obs.ReasonSolverBackpressure
	default:
		decision = "accepted"
		rec = &jobRecord{
			id:            len(d.records),
			tenant:        req.Tenant,
			name:          fmt.Sprintf("%s-%d", name, len(d.records)),
			spec:          spec,
			state:         StateQueued,
			simJob:        -1,
			submittedWall: start,
			submittedSim:  d.simNowLocked(),
		}
		d.records = append(d.records, rec)
		d.queue = append(d.queue, rec.id)
		d.tenants[req.Tenant] = true
	}
	var shedSpan obs.Span
	if shedReason != "" {
		if d.shedCounts == nil {
			d.shedCounts = make(map[string]int)
		}
		d.shedCounts[shedReason]++
		shedSpan = obs.NewSpan(-1)
		shedSpan.Name, shedSpan.Tenant = name, req.Tenant
		shedSpan.Outcome, shedSpan.Reason = obs.OutcomeShed, shedReason
		shedSpan.SubmittedSim, shedSpan.DoneSim = d.simNowLocked(), d.simNowLocked()
	}
	queueDepth := len(d.queue)
	d.mu.Unlock()

	d.sm.Admissions.With(decision).Inc()
	d.sm.QueueDepth.Set(float64(queueDepth))
	d.sm.SubmitSeconds.Observe(time.Since(start).Seconds())
	if shedReason != "" {
		d.spans.Add(shedSpan)
		d.sm.Sheds.With(shedReason).Inc()
		d.sm.Spans.With(obs.OutcomeShed).Inc()
		d.log.Warn("submission shed",
			obs.LogTenant, req.Tenant, "name", name,
			"reason", shedReason, "queue_depth", queueDepth)
	}
	switch decision {
	case "draining":
		d.writeError(w, http.StatusServiceUnavailable, "draining")
	case "rejected":
		d.writeError(w, http.StatusTooManyRequests, "admission queue full")
	default:
		writeJSON(w, http.StatusAccepted, SubmitResponse{ID: rec.id, State: StateQueued})
	}
}

func (d *Daemon) recordByQuery(w http.ResponseWriter, r *http.Request) (*jobRecord, bool) {
	id, err := strconv.Atoi(r.URL.Query().Get("id"))
	if err != nil {
		d.writeError(w, http.StatusBadRequest, "bad id %q", r.URL.Query().Get("id"))
		return nil, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id < 0 || id >= len(d.records) {
		d.writeError(w, http.StatusNotFound, "no job %d", id)
		return nil, false
	}
	return d.records[id], true
}

// statusLocked assembles the /status view of one record. Callers hold d.mu.
func (d *Daemon) statusLocked(rec *jobRecord) JobStatus {
	st := JobStatus{
		ID: rec.id, Tenant: rec.tenant, Name: rec.name,
		Archetype: rec.spec.archetype.Name, State: rec.state,
		SubmittedSim: rec.submittedSim, FirstLaunchSim: rec.firstLaunchSim,
		DoneSim: rec.doneSim,
		Pending: rec.pending, Queued: rec.queued,
		Running: rec.running, DoneTasks: rec.doneTasks,
	}
	if rec.simJob >= 0 {
		st.AdmittedSim = rec.admittedSim
	}
	return st
}

func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	rec, ok := d.recordByQuery(w, r)
	if !ok {
		return
	}
	d.mu.Lock()
	st := d.statusLocked(rec)
	d.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// tenantSummaryLocked assembles one tenant's chargeback row. Callers
// hold d.mu; the burn engine carries its own lock.
func (d *Daemon) tenantSummaryLocked(tenant string) TenantSummary {
	ts := TenantSummary{Tenant: tenant, CPUSec: d.tenantCPU[tenant]}
	var total cost.Money
	if spend := d.tenantSpend[tenant]; len(spend) > 0 {
		ts.Categories = make(map[string]int64, len(spend))
		for c, m := range spend {
			ts.Categories[string(c)] = int64(m)
			total += m
		}
	}
	ts.TotalUC, ts.TotalUSD = int64(total), total.ToDollars()
	doneJobs := 0
	for _, rec := range d.records {
		if rec.tenant != tenant {
			continue
		}
		if ts.Jobs == nil {
			ts.Jobs = make(map[string]int)
		}
		ts.Jobs[rec.state]++
		if rec.state == StateDone {
			doneJobs++
		}
	}
	if doneJobs > 0 {
		ts.USDPerDoneJob = total.ToDollars() / float64(doneJobs)
	}
	if limit, ok := d.budgets[tenant]; ok {
		ts.BudgetUSD = limit.ToDollars()
		ts.OverBudget = d.overBudgetLocked(tenant)
	}
	ts.Attainment = d.burn.Attainments(tenant)
	return ts
}

// handleTenants serves GET /tenants: every tenant that ever submitted or
// was ever charged (including the reserved unattributed bucket), sorted.
func (d *Daemon) handleTenants(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	names := make(map[string]bool, len(d.tenants)+len(d.tenantSpend))
	for tn := range d.tenants {
		names[tn] = true
	}
	for tn := range d.tenantSpend {
		names[tn] = true
	}
	sorted := make([]string, 0, len(names))
	for tn := range names {
		sorted = append(sorted, tn)
	}
	sort.Strings(sorted)
	resp := TenantsResponse{Tenants: make([]TenantSummary, 0, len(sorted))}
	for _, tn := range sorted {
		resp.Tenants = append(resp.Tenants, d.tenantSummaryLocked(tn))
	}
	d.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// maxRecentJobs bounds the recent-submission list on /tenants/{tenant}.
const maxRecentJobs = 32

// handleTenant serves GET /tenants/{tenant}: the summary plus burn
// rates, alerts and recent submissions for one tenant.
func (d *Daemon) handleTenant(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("tenant")
	d.mu.Lock()
	if !d.tenants[tenant] && d.tenantSpend[tenant] == nil {
		d.mu.Unlock()
		d.writeError(w, http.StatusNotFound, "no tenant %q", tenant)
		return
	}
	det := TenantDetail{TenantSummary: d.tenantSummaryLocked(tenant)}
	for i := len(d.records) - 1; i >= 0 && len(det.Recent) < maxRecentJobs; i-- {
		if rec := d.records[i]; rec.tenant == tenant {
			det.Recent = append(det.Recent, d.statusLocked(rec))
		}
	}
	d.mu.Unlock()
	for _, a := range d.burn.BurnRates() {
		if a.Tenant == tenant {
			det.Burn = append(det.Burn, a)
		}
	}
	for _, a := range d.burn.Alerts() {
		if a.Tenant == tenant {
			det.Alerts = append(det.Alerts, a)
		}
	}
	writeJSON(w, http.StatusOK, det)
}

// handleAlerts serves GET /alerts: active burn-rate alerts followed by
// the retained resolved history.
func (d *Daemon) handleAlerts(w http.ResponseWriter, _ *http.Request) {
	resp := AlertsResponse{
		Enabled: d.burn.Enabled(),
		Firing:  d.burn.Firing(),
		Alerts:  d.burn.Alerts(),
	}
	if resp.Alerts == nil {
		resp.Alerts = []obs.Alert{}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleAudit serves GET /audit: the ledger's conservation invariants
// checked to the exact microcent, cross-checked against the live metric
// counters. The ledger snapshot and the metric reads happen under the
// simulator lock so no epoch can slip between them.
func (d *Daemon) handleAudit(w http.ResponseWriter, _ *http.Request) {
	d.simMu.Lock()
	l := d.s.Ledger
	rerr := l.Reconcile()
	resp := AuditResponse{
		SimSeconds:        d.s.Now(),
		TotalUC:           int64(l.Total()),
		TotalUSD:          l.Total().ToDollars(),
		UnattributedJobUC: int64(l.Unattributed()),
		Categories:        make(map[string]int64, len(cost.Categories)),
		Tenants:           make(map[string]int64),
	}
	for _, c := range cost.Categories {
		resp.Categories[string(c)] = int64(l.Category(c))
	}
	for _, tn := range l.Tenants() {
		uc := int64(l.TenantTotal(tn))
		resp.Tenants[tn] = uc
		resp.TenantSumUC += uc
	}
	resp.MetricTenantUC = int64(d.reg.Sum(obs.MCost))
	resp.MetricCategoryUC = int64(d.reg.Sum(obs.MSimCost))
	d.simMu.Unlock()
	resp.OK = rerr == nil && resp.TenantSumUC == resp.TotalUC &&
		resp.MetricTenantUC == resp.TotalUC && resp.MetricCategoryUC == resp.TotalUC
	switch {
	case rerr != nil:
		resp.Error = rerr.Error()
	case !resp.OK:
		resp.Error = "ledger and metric totals disagree"
	}
	code := http.StatusOK
	if !resp.OK {
		code = http.StatusInternalServerError
	}
	writeJSON(w, code, resp)
}

// handleTrace serves GET /jobs/{id}/trace: the job's span assembled
// from the live record, decomposed into phases.
func (d *Daemon) handleTrace(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		d.writeError(w, http.StatusBadRequest, "bad id %q", r.PathValue("id"))
		return
	}
	d.mu.Lock()
	if id < 0 || id >= len(d.records) {
		d.mu.Unlock()
		d.writeError(w, http.StatusNotFound, "no job %d", id)
		return
	}
	rec := d.records[id]
	tr := JobTrace{Span: d.spanLocked(rec), State: rec.state, AdmittedEpoch: rec.admittedEpoch}
	d.mu.Unlock()
	tr.E2ESim = tr.Span.E2ESim()
	tr.Phases = tr.Span.Phases()
	writeJSON(w, http.StatusOK, tr)
}

// handleEpochs serves GET /debug/epochs: the recent epoch decisions,
// oldest first.
func (d *Daemon) handleEpochs(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	resp := EpochsResponse{Total: d.decisions.total, Epochs: d.decisions.snapshot()}
	d.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// handleSpans serves GET /debug/spans: the completed-span ring.
func (d *Daemon) handleSpans(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, SpansResponse{Total: d.spans.Total(), Spans: d.spans.Snapshot()})
}

func (d *Daemon) handleCancel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		d.writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	rec, ok := d.recordByQuery(w, r)
	if !ok {
		return
	}
	d.mu.Lock()
	var cancelSpan obs.Span
	state := rec.state
	switch state {
	case StateQueued:
		// Still in the admission queue: withdraw before it ever reaches
		// the simulator. If it is not in the queue the epoch loop has it
		// mid-admission (batch taken, not yet published) — flag it so the
		// publish step routes it into the cancel path once its simulator
		// job ID exists.
		found := false
		for i, id := range d.queue {
			if id == rec.id {
				d.queue = append(d.queue[:i], d.queue[i+1:]...)
				found = true
				break
			}
		}
		if found {
			rec.state = StateCancelled
			rec.doneSim = d.simNowLocked()
			state = StateCancelled
			cancelSpan = d.spanLocked(rec)
		} else {
			rec.cancelPending = true
			rec.state = StateCancelling
			state = StateCancelling
		}
	case StateAdmitted, StateRunning:
		d.cancels = append(d.cancels, cancelReq{recID: rec.id, simJob: rec.simJob})
		rec.state = StateCancelling
		state = StateCancelling
	}
	d.mu.Unlock()
	if state == StateCancelled {
		d.sm.JobsCancelled.Inc()
		d.spans.Add(cancelSpan)
		d.sm.Spans.With(obs.OutcomeCancelled).Inc()
		d.sm.TenantE2E.With(rec.tenant).Observe(cancelSpan.DoneSim - cancelSpan.SubmittedSim)
		d.burn.Observe(rec.tenant, obs.SLOE2E, cancelSpan.DoneSim, cancelSpan.DoneSim-cancelSpan.SubmittedSim)
	}
	writeJSON(w, http.StatusOK, SubmitResponse{ID: rec.id, State: state})
}

func (d *Daemon) handleStats(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	st := Stats{
		SimSeconds: d.simNowLocked(),
		Epochs:     d.epochs,
		QueueDepth: len(d.queue),
		Jobs:       make(map[string]int),
		Tenants:    len(d.tenants),
		TenantCPU:  make(map[string]float64, len(d.tenantCPU)),
		Draining:   d.draining,
	}
	for _, rec := range d.records {
		st.Jobs[rec.state]++
	}
	for k, v := range d.tenantCPU {
		st.TenantCPU[k] = v
	}
	d.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (d *Daemon) handleChurn(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		d.writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	node, err := strconv.Atoi(r.URL.Query().Get("node"))
	if err != nil {
		d.writeError(w, http.StatusBadRequest, "bad node %q", r.URL.Query().Get("node"))
		return
	}
	kind := r.URL.Query().Get("kind")
	if kind != "down" && kind != "up" {
		d.writeError(w, http.StatusBadRequest, "kind must be down or up, got %q", kind)
		return
	}
	if err := d.Churn(cluster.NodeID(node), kind == "down"); err != nil {
		d.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"node": strconv.Itoa(node), "kind": kind})
}
