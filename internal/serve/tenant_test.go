package serve

import (
	"fmt"
	"net/http"
	"testing"
	"time"

	"lips/internal/obs"
)

// TestTenantsAndAuditEndpoints drives two tenants to completion and
// checks the chargeback surface: /tenants rows carry exact microcents,
// dollars and unit economics; the per-tenant detail answers; and /audit
// proves Σ tenant chargebacks == the global ledger to the microcent,
// cross-checked against the live metric counters.
func TestTenantsAndAuditEndpoints(t *testing.T) {
	d, ts := newTestDaemon(t, Config{EpochSimSec: 60, SLOE2ESec: 10000})
	d.Start()
	counts := map[string]int{"alice": 3, "bob": 2}
	total := 0
	for tenant, n := range counts {
		for i := 0; i < n; i++ {
			if _, code := submitOne(t, ts.URL, tenant); code != http.StatusAccepted {
				t.Fatalf("submit %s: %d", tenant, code)
			}
			total++
		}
	}
	waitStats(t, ts.URL, func(st *Stats) bool { return st.Jobs[StateDone] == total })

	var tr TenantsResponse
	if code := getJSON(t, ts.URL+"/tenants", &tr); code != http.StatusOK {
		t.Fatalf("/tenants: %d", code)
	}
	var audit AuditResponse
	if code := getJSON(t, ts.URL+"/audit", &audit); code != http.StatusOK {
		t.Fatalf("/audit: %d (%s)", code, audit.Error)
	}
	if !audit.OK || audit.TotalUC <= 0 {
		t.Fatalf("audit not clean: %+v", audit)
	}
	if audit.TenantSumUC != audit.TotalUC ||
		audit.MetricTenantUC != audit.TotalUC || audit.MetricCategoryUC != audit.TotalUC {
		t.Errorf("audit sums disagree: %+v", audit)
	}

	var rowSum int64
	seen := map[string]TenantSummary{}
	for i, row := range tr.Tenants {
		seen[row.Tenant] = row
		rowSum += row.TotalUC
		if i > 0 && tr.Tenants[i-1].Tenant >= row.Tenant {
			t.Errorf("/tenants not sorted: %q before %q", tr.Tenants[i-1].Tenant, row.Tenant)
		}
		var catSum int64
		for _, uc := range row.Categories {
			catSum += uc
		}
		if catSum != row.TotalUC {
			t.Errorf("tenant %s: category sum %d != total %d", row.Tenant, catSum, row.TotalUC)
		}
	}
	// The epoch loop publishes job completion and the ledger copy under
	// one lock hold, so once every job is done the rows cover the bill.
	if rowSum != audit.TotalUC {
		t.Errorf("/tenants rows sum to %d uc, audit total %d uc", rowSum, audit.TotalUC)
	}
	for tenant, n := range counts {
		row, ok := seen[tenant]
		if !ok {
			t.Fatalf("tenant %s missing from /tenants", tenant)
		}
		if row.TotalUC <= 0 || row.TotalUSD <= 0 {
			t.Errorf("tenant %s billed nothing: %+v", tenant, row)
		}
		if row.Jobs[StateDone] != n {
			t.Errorf("tenant %s jobs = %v, want %d done", tenant, row.Jobs, n)
		}
		if want := row.TotalUSD / float64(n); row.USDPerDoneJob != want {
			t.Errorf("tenant %s $/job = %g, want %g", tenant, row.USDPerDoneJob, want)
		}
		if len(row.Attainment) != 1 || row.Attainment[0].Total != int64(n) {
			t.Errorf("tenant %s attainment = %+v", tenant, row.Attainment)
		}
	}
	// alice costs ~3/2 of bob (same archetype, same input size).
	if a, b := seen["alice"].TotalUC, seen["bob"].TotalUC; a <= b {
		t.Errorf("alice (%d uc, 3 jobs) not billed more than bob (%d uc, 2 jobs)", a, b)
	}

	var det TenantDetail
	if code := getJSON(t, ts.URL+"/tenants/alice", &det); code != http.StatusOK {
		t.Fatalf("/tenants/alice: %d", code)
	}
	if det.Tenant != "alice" || det.TotalUC != seen["alice"].TotalUC {
		t.Errorf("detail = %+v, want the alice row", det.TenantSummary)
	}
	if len(det.Recent) != counts["alice"] {
		t.Errorf("detail lists %d recent jobs, want %d", len(det.Recent), counts["alice"])
	}
	for _, js := range det.Recent {
		if js.Tenant != "alice" {
			t.Errorf("recent job of wrong tenant: %+v", js)
		}
	}
	if len(det.Burn) != 1 || det.Burn[0].SLO != obs.SLOE2E {
		t.Errorf("detail burn = %+v", det.Burn)
	}
	var e errorResponse
	if code := getJSON(t, ts.URL+"/tenants/nosuch", &e); code != http.StatusNotFound {
		t.Errorf("unknown tenant: %d", code)
	}
	if err := d.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestBudgetExhaustedDeferral: once a tenant's ledger spend reaches its
// dollar cap, its queued jobs sit out admission with the typed
// budget-exhausted reason — visible on /debug/epochs and /tenants —
// while other tenants keep flowing.
func TestBudgetExhaustedDeferral(t *testing.T) {
	d, ts := newTestDaemon(t, Config{
		EpochSimSec: 60,
		// Any completed job blows through a thousandth of a cent.
		Budgets: map[string]float64{"hog": 0.00001},
	})
	d.Start()
	id0, code := submitOne(t, ts.URL, "hog")
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitStats(t, ts.URL, func(st *Stats) bool { return st.Jobs[StateDone] == 1 })

	// The first job's charges exhausted the budget; the next hog job must
	// stay queued while an unbudgeted tenant sails past it.
	id1, code := submitOne(t, ts.URL, "hog")
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	if _, code := submitOne(t, ts.URL, "meek"); code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitStats(t, ts.URL, func(st *Stats) bool { return st.Jobs[StateDone] == 2 })
	st := waitStats(t, ts.URL, func(st *Stats) bool { return st.Jobs[StateQueued] == 1 })
	if st.Jobs[StateQueued] != 1 {
		t.Fatalf("blocked job not queued: %+v", st.Jobs)
	}

	deadline := time.Now().Add(30 * time.Second)
	sawBudgetDeferral := false
	for !sawBudgetDeferral && time.Now().Before(deadline) {
		var er EpochsResponse
		if code := getJSON(t, ts.URL+"/debug/epochs", &er); code != http.StatusOK {
			t.Fatalf("/debug/epochs: %d", code)
		}
		for _, dec := range er.Epochs {
			for _, df := range dec.Deferred {
				if df.Reason == obs.ReasonBudgetExhausted {
					if df.ID != id1 || df.Tenant != "hog" {
						t.Errorf("budget deferral names %+v, want job %d of hog", df, id1)
					}
					sawBudgetDeferral = true
				}
			}
		}
		time.Sleep(time.Millisecond)
	}
	if !sawBudgetDeferral {
		t.Error("no budget-exhausted deferral ever surfaced on /debug/epochs")
	}

	var det TenantDetail
	if code := getJSON(t, ts.URL+"/tenants/hog", &det); code != http.StatusOK {
		t.Fatalf("/tenants/hog: %d", code)
	}
	if !det.OverBudget || det.BudgetUSD != 0.00001 || det.TotalUC <= 0 {
		t.Errorf("hog not flagged over budget: %+v", det.TenantSummary)
	}
	// Status of the first job stayed terminal; the blocked one is queued.
	var js JobStatus
	if code := getJSON(t, fmt.Sprintf("%s/status?id=%d", ts.URL, id0), &js); code != http.StatusOK || js.State != StateDone {
		t.Errorf("first hog job: code %d state %q", code, js.State)
	}
	if code := getJSON(t, fmt.Sprintf("%s/status?id=%d", ts.URL, id1), &js); code != http.StatusOK || js.State != StateQueued {
		t.Errorf("blocked hog job: code %d state %q", code, js.State)
	}

	// Withdraw the blocked job so drain has nothing to wait out.
	resp, _ := postJSON(t, fmt.Sprintf("%s/cancel?id=%d", ts.URL, id1), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	if err := d.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestSLOBurnAlertLifecycle is the acceptance scenario: with an
// impossible e2e objective every completion is a violation, so the
// burn-rate alert fires under load — and once the backlog drains and
// the rolling windows age out, it resolves. Transitions land on the
// alert metrics and the firing gauge tracks the active count.
func TestSLOBurnAlertLifecycle(t *testing.T) {
	d, ts := newTestDaemon(t, Config{
		EpochSimSec: 60, AdmitPerEpoch: 2,
		// Jobs take at least one 60 s epoch end to end, so a 1 s objective
		// makes every completion a violation; burn = 1/0.5 = 2.
		SLOE2ESec: 1, SLOBudget: 0.5, SLOShortSec: 300, SLOLongSec: 600,
	})
	d.Start()
	const jobs = 8
	for i := 0; i < jobs; i++ {
		if _, code := submitOne(t, ts.URL, "alice"); code != http.StatusAccepted {
			t.Fatalf("submit: %d", code)
		}
	}

	waitAlerts := func(ok func(*AlertsResponse) bool) *AlertsResponse {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			var ar AlertsResponse
			if code := getJSON(t, ts.URL+"/alerts", &ar); code != http.StatusOK {
				t.Fatalf("/alerts: %d", code)
			}
			if ok(&ar) {
				return &ar
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatal("alert condition never met")
		return nil
	}

	ar := waitAlerts(func(ar *AlertsResponse) bool { return ar.Firing > 0 })
	if !ar.Enabled {
		t.Fatal("engine reports disabled")
	}
	found := false
	for _, a := range ar.Alerts {
		if a.State == obs.AlertFiring {
			found = true
			if a.Tenant != "alice" || a.SLO != obs.SLOE2E || a.BurnShort < 1 || a.BurnLong < 1 {
				t.Errorf("firing alert %+v", a)
			}
		}
	}
	if !found {
		t.Fatalf("firing count %d but no firing alert in %+v", ar.Firing, ar.Alerts)
	}
	if v, ok := d.reg.Value(obs.MServeAlertsFiring); !ok || v < 1 {
		t.Errorf("firing gauge = %g (%v), want >= 1", v, ok)
	}
	if v, ok := d.reg.Value(obs.MServeBurnRate, "alice", obs.WindowShort); !ok || v < 1 {
		t.Errorf("short burn gauge = %g (%v), want >= 1", v, ok)
	}

	// Drain: once the backlog completes, simulated time keeps racing at
	// one epoch per wall tick, the windows empty, and the alert resolves.
	waitStats(t, ts.URL, func(st *Stats) bool { return st.Jobs[StateDone] == jobs })
	ar = waitAlerts(func(ar *AlertsResponse) bool {
		if ar.Firing != 0 {
			return false
		}
		for _, a := range ar.Alerts {
			if a.State == obs.AlertResolved {
				return true
			}
		}
		return false
	})
	for _, a := range ar.Alerts {
		if a.State == obs.AlertResolved && (a.ResolvedSim <= a.FiredSim || a.Tenant != "alice") {
			t.Errorf("resolved alert %+v", a)
		}
	}
	if v, ok := d.reg.Value(obs.MServeAlertsFiring); !ok || v != 0 {
		t.Errorf("firing gauge = %g after resolve, want 0", v)
	}
	for _, state := range []string{obs.AlertFiring, obs.AlertResolved} {
		if v, ok := d.reg.Value(obs.MServeAlertTransitions, state); !ok || v < 1 {
			t.Errorf("transition counter %s = %g (%v), want >= 1", state, v, ok)
		}
	}
	if err := d.Shutdown(); err != nil {
		t.Fatal(err)
	}
}
