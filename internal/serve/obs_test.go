package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lips/internal/cluster"
	"lips/internal/obs"
	"lips/internal/sched"
)

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestJobTraceEndpoint walks jobs to completion and checks the
// /jobs/{id}/trace contract: ordered milestones, phases that telescope
// to the end-to-end latency, a positive exact cost, and the admitting
// epoch.
func TestJobTraceEndpoint(t *testing.T) {
	d, ts := newTestDaemon(t, Config{EpochSimSec: 60})
	d.Start()
	const jobs = 6
	ids := make([]int, jobs)
	for i := range ids {
		id, code := submitOne(t, ts.URL, fmt.Sprintf("tenant-%d", i%3))
		if code != http.StatusAccepted {
			t.Fatalf("submit: %d", code)
		}
		ids[i] = id
	}
	waitStats(t, ts.URL, func(st *Stats) bool { return st.Jobs[StateDone] == jobs })

	for _, id := range ids {
		var tr JobTrace
		if code := getJSON(t, fmt.Sprintf("%s/jobs/%d/trace", ts.URL, id), &tr); code != http.StatusOK {
			t.Fatalf("trace %d: %d", id, code)
		}
		if tr.Outcome != obs.OutcomeDone || tr.State != StateDone {
			t.Errorf("job %d outcome %q state %q", id, tr.Outcome, tr.State)
		}
		if tr.SubmittedSim < 0 || tr.AdmittedSim < tr.SubmittedSim ||
			tr.PlannedSim < tr.AdmittedSim || tr.FirstLaunchSim < tr.PlannedSim ||
			tr.DoneSim < tr.FirstLaunchSim {
			t.Errorf("job %d milestones out of order: %+v", id, tr.Span)
		}
		if tr.AdmittedEpoch <= 0 {
			t.Errorf("job %d admitted epoch %d", id, tr.AdmittedEpoch)
		}
		if tr.CostUC <= 0 {
			t.Errorf("job %d cost %d µc", id, tr.CostUC)
		}
		var sum float64
		for _, ph := range tr.Phases {
			sum += ph.DurSim
		}
		if math.Abs(sum-tr.E2ESim) > 1e-9 || tr.E2ESim <= 0 {
			t.Errorf("job %d phases sum %g != e2e %g (%v)", id, sum, tr.E2ESim, tr.Phases)
		}
	}

	// Unknown and malformed ids answer 404/400, not 500.
	var e errorResponse
	if code := getJSON(t, ts.URL+"/jobs/9999/trace", &e); code != http.StatusNotFound {
		t.Errorf("trace of unknown id: %d", code)
	}
	resp, err := http.Get(ts.URL + "/jobs/abc/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("trace of bad id: %d", resp.StatusCode)
	}
	if err := d.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestDebugEpochsRing runs a LiPS-backed daemon and checks the decision
// ring: admissions are attributed, deferral reasons stay inside the
// typed taxonomy, and the scheduler's solver one-liner surfaces.
func TestDebugEpochsRing(t *testing.T) {
	d, err := New(cluster.Paper20(0.5), sched.NewLiPS(60), obs.NewRegistry(),
		Config{EpochSimSec: 60, EpochWallInterval: time.Millisecond, AdmitPerEpoch: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	const jobs = 8
	for i := 0; i < jobs; i++ {
		if _, code := submitOne(t, ts.URL, fmt.Sprintf("t%d", i%2)); code != http.StatusAccepted {
			t.Fatalf("submit: %d", code)
		}
	}
	d.Start()
	waitStats(t, ts.URL, func(st *Stats) bool { return st.Jobs[StateDone] == jobs })

	var er EpochsResponse
	if code := getJSON(t, ts.URL+"/debug/epochs", &er); code != http.StatusOK {
		t.Fatalf("/debug/epochs: %d", code)
	}
	if er.Total <= 0 || len(er.Epochs) == 0 {
		t.Fatalf("empty decision ring: total %d, %d entries", er.Total, len(er.Epochs))
	}
	valid := make(map[string]bool)
	for _, r := range obs.DeferralReasons {
		valid[r] = true
	}
	admitted, sawDeferral, sawSolver := 0, false, false
	for _, dec := range er.Epochs {
		if dec.Epoch <= 0 || dec.SimEnd < dec.SimStart {
			t.Errorf("decision %+v has a bad frame", dec)
		}
		admitted += dec.AdmittedCount
		if len(dec.Admitted) > maxDecisionRefs || len(dec.Deferred) > maxDecisionRefs {
			t.Errorf("decision lists exceed the truncation bound: %+v", dec)
		}
		for _, df := range dec.Deferred {
			sawDeferral = true
			if !valid[df.Reason] {
				t.Errorf("deferral reason %q outside the taxonomy", df.Reason)
			}
		}
		if dec.Solver != "" {
			sawSolver = true
		}
	}
	if admitted != jobs {
		t.Errorf("decisions admitted %d jobs, want %d", admitted, jobs)
	}
	// AdmitPerEpoch=2 with 8 queued jobs forces fair-share deferrals.
	if !sawDeferral {
		t.Error("no deferral recorded despite AdmitPerEpoch < queue depth")
	}
	if !sawSolver {
		t.Error("no solver one-liner surfaced from the LiPS epochs")
	}
	if err := d.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestReadyzFlipsOnDrain: /readyz answers 503 before Start, 200 while
// serving, and flips back to 503 the moment Shutdown begins draining —
// while /healthz stays 200 throughout.
func TestReadyzFlipsOnDrain(t *testing.T) {
	d, ts := newTestDaemon(t, Config{EpochSimSec: 60})
	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("pre-Start /readyz = %d, want 503", code)
	}
	d.Start()
	if code := get("/readyz"); code != http.StatusOK {
		t.Errorf("running /readyz = %d, want 200", code)
	}
	if _, code := submitOne(t, ts.URL, "a"); code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}

	done := make(chan error, 1)
	go func() { done <- d.Shutdown() }()
	deadline := time.Now().Add(30 * time.Second)
	for get("/readyz") != http.StatusServiceUnavailable {
		if time.Now().After(deadline) {
			t.Fatal("/readyz never flipped during drain")
		}
		time.Sleep(time.Millisecond)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d during drain — liveness must not flip", code)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("post-drain /readyz = %d, want 503", code)
	}
}

// TestProgressMidRunServeMode: the obs /progress endpoint serves a live
// snapshot while the daemon is mid-run — simulated time advancing and
// task counters moving.
func TestProgressMidRunServeMode(t *testing.T) {
	d, ts := newTestDaemon(t, Config{EpochSimSec: 60})
	d.Start()
	for i := 0; i < 4; i++ {
		if _, code := submitOne(t, ts.URL, "a"); code != http.StatusAccepted {
			t.Fatalf("submit: %d", code)
		}
	}
	var p obs.Progress
	deadline := time.Now().Add(30 * time.Second)
	for p.TSec == 0 || p.Done == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("/progress never advanced: %+v", p)
		}
		if code := getJSON(t, ts.URL+"/progress", &p); code != http.StatusOK {
			t.Fatalf("/progress: %d", code)
		}
		time.Sleep(time.Millisecond)
	}
	if p.TotalUC <= 0 {
		t.Errorf("mid-run progress bills nothing: %+v", p)
	}
	if err := d.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestTenantHistogramsMatchSpans reconciles the three per-tenant
// histograms against the span ring: one e2e observation per terminal
// span, one queue-wait per admission, one launch per launched job —
// and a hostile tenant name must come out escaped in the exposition.
func TestTenantHistogramsMatchSpans(t *testing.T) {
	d, ts := newTestDaemon(t, Config{EpochSimSec: 60})
	d.Start()
	weird := `ten\ant"` + "\n"
	counts := map[string]int{"alice": 3, "bob": 2, weird: 1}
	total := 0
	for tenant, n := range counts {
		for i := 0; i < n; i++ {
			resp, _ := postJSON(t, ts.URL+"/submit", SubmitRequest{
				Tenant: tenant, Archetype: "grep", InputMB: 128,
			})
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit %q: %d", tenant, resp.StatusCode)
			}
			total++
		}
	}
	waitStats(t, ts.URL, func(st *Stats) bool { return st.Jobs[StateDone] == total })

	spans := d.Spans().Snapshot()
	perTenant := map[string]int{}
	for _, sp := range spans {
		if sp.Outcome != obs.OutcomeDone {
			t.Errorf("unexpected span outcome %q: %+v", sp.Outcome, sp)
		}
		perTenant[sp.Tenant]++
	}
	for tenant, n := range counts {
		if perTenant[tenant] != n {
			t.Errorf("tenant %q: %d spans, want %d", tenant, perTenant[tenant], n)
		}
	}

	var b strings.Builder
	if err := d.reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	expo := b.String()
	escaped := `ten\\ant\"` + `\n`
	for tenant, n := range counts {
		label := tenant
		if tenant == weird {
			label = escaped
		}
		for _, fam := range []string{obs.MServeQueueWait, obs.MServeTenantLaunch, obs.MServeTenantE2E} {
			want := fmt.Sprintf("%s_count{tenant=\"%s\"} %d", fam, label, n)
			if !strings.Contains(expo, want) {
				t.Errorf("exposition missing %q", want)
			}
		}
	}
	want := fmt.Sprintf("%s{outcome=\"done\"} %d", obs.MServeSpans, total)
	if !strings.Contains(expo, want) {
		t.Errorf("exposition missing %q", want)
	}
	if err := d.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestShedSpansAndReasons: with the epoch loop stopped and the queue
// capped, overflow submissions shed with 429 and leave typed shed spans
// in the ring and on /debug/spans.
func TestShedSpansAndReasons(t *testing.T) {
	const cap = 8
	d, ts := newTestDaemon(t, Config{QueueCap: cap})
	for i := 0; i < 2*cap; i++ {
		submitOne(t, ts.URL, "a")
	}
	var sr SpansResponse
	if code := getJSON(t, ts.URL+"/debug/spans", &sr); code != http.StatusOK {
		t.Fatalf("/debug/spans: %d", code)
	}
	if sr.Total != cap || len(sr.Spans) != cap {
		t.Fatalf("%d shed spans (total %d), want %d", len(sr.Spans), sr.Total, cap)
	}
	for _, sp := range sr.Spans {
		if sp.Outcome != obs.OutcomeShed || sp.Reason != obs.ReasonQueueCap {
			t.Errorf("shed span %+v, want outcome=shed reason=queue-cap", sp)
		}
		if sp.DoneSim != sp.SubmittedSim {
			t.Errorf("shed span not zero-length: %+v", sp)
		}
	}
	var b strings.Builder
	if err := d.reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%s{reason=\"queue-cap\"} %d", obs.MServeSheds, cap)
	if !strings.Contains(b.String(), want) {
		t.Errorf("exposition missing %q", want)
	}
	if err := d.Shutdown(); err != nil {
		t.Fatal(err)
	}
}
