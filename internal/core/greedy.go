package core

import "fmt"

// GreedyPlan is the paper's §IV greedy reference: for each job and each
// portion of its data on store m, pick the machine minimising
// JM_kl + MS_lm·Size — ignoring machine capacity. With abundant capacity
// this matches the LP optimum of the simple task model; under contention
// it can be arbitrarily bad, which is the paper's argument for the LP.
// xd[i][m] is the fixed fractional placement.
func GreedyPlan(in *Instance, xd [][]float64) (*Plan, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if len(xd) != len(in.Data) {
		return nil, fmt.Errorf("core: xd has %d rows for %d data items", len(xd), len(in.Data))
	}
	p := &Plan{In: in, Kind: SimpleTask}
	p.XT = make([]map[[2]int]float64, len(in.Jobs))
	for k, job := range in.Jobs {
		p.XT[k] = make(map[[2]int]float64)
		if job.Data == NoData {
			best, bestMC := -1, 0.0
			for l, mach := range in.Machines {
				if mach.Fake {
					continue
				}
				mc := job.CPUSec * mach.PerECUSecMC
				if best == -1 || mc < bestMC {
					best, bestMC = l, mc
				}
			}
			p.XT[k][[2]int{best, noStore}] = 1
			continue
		}
		size := in.Data[job.Data].SizeMB
		for m, frac := range xd[job.Data] {
			if frac <= 1e-12 {
				continue
			}
			best, bestMC := -1, 0.0
			for l, mach := range in.Machines {
				if mach.Fake {
					continue
				}
				mc := job.CPUSec*mach.PerECUSecMC + in.MSPerMBMC[l][m]*size
				if best == -1 || mc < bestMC {
					best, bestMC = l, mc
				}
			}
			p.XT[k][[2]int{best, m}] += frac
		}
		normalizeFracs(p.XT[k])
	}
	p.computeCosts()
	return p, nil
}

// LocalOnlyPlan is the Fig. 5 baseline: every data portion is processed on
// the machine co-located with its store — 100% data locality, the
// behaviour of an ideal delay scheduler (and of the default Hadoop
// scheduler after the random block shuffle). Jobs without input run on
// the cheapest machine, as any scheduler would place them.
func LocalOnlyPlan(in *Instance, xd [][]float64) (*Plan, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if in.CoMachine == nil {
		return nil, fmt.Errorf("core: instance has no store→machine co-location map")
	}
	if len(xd) != len(in.Data) {
		return nil, fmt.Errorf("core: xd has %d rows for %d data items", len(xd), len(in.Data))
	}
	p := &Plan{In: in, Kind: SimpleTask}
	p.XT = make([]map[[2]int]float64, len(in.Jobs))
	for k, job := range in.Jobs {
		p.XT[k] = make(map[[2]int]float64)
		if job.Data == NoData {
			best, bestMC := -1, 0.0
			for l, mach := range in.Machines {
				if mach.Fake {
					continue
				}
				mc := job.CPUSec * mach.PerECUSecMC
				if best == -1 || mc < bestMC {
					best, bestMC = l, mc
				}
			}
			p.XT[k][[2]int{best, noStore}] = 1
			continue
		}
		for m, frac := range xd[job.Data] {
			if frac <= 1e-12 {
				continue
			}
			l := in.CoMachine[m]
			if l < 0 {
				return nil, fmt.Errorf("core: data %q placed on remote store %d with no co-located machine", in.Data[job.Data].Name, m)
			}
			p.XT[k][[2]int{l, m}] += frac
		}
		normalizeFracs(p.XT[k])
	}
	p.computeCosts()
	return p, nil
}

// PlacementFractions converts each data item's Origin mix into the dense
// xd matrix the fixed-placement plans consume.
func PlacementFractions(in *Instance) [][]float64 {
	xd := make([][]float64, len(in.Data))
	for i, d := range in.Data {
		xd[i] = make([]float64, len(in.Stores))
		for m, f := range d.Origin {
			xd[i][m] = f
		}
	}
	return xd
}
