package core

import (
	"testing"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/workload"
)

// filterInstance aggregates a 3-node, 2-group cluster: za/t holds nodes
// 0 and 1 (2 ECU each), zb/u holds node 2.
func filterInstance(t *testing.T) *Instance {
	t.Helper()
	b := cluster.NewBuilder("za", "zb")
	b.AddNode("za", "t", 2, 2, cost.Millicents(1), 1e6)
	b.AddNode("za", "t", 2, 2, cost.Millicents(1), 1e6)
	b.AddNode("zb", "u", 4, 2, cost.Millicents(2), 1e6)
	c := b.Build()
	wb := workload.NewBuilder()
	arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 10}
	wb.AddInputJob("j", "u", arch, 128, 0, 0)
	w := wb.Build()
	in, err := NewInstance(c, w.Jobs, w.Objects, w.Placement(), InstanceOptions{Aggregate: true, Horizon: 100})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func machineIdx(t *testing.T, in *Instance, name string) int {
	t.Helper()
	for l, m := range in.Machines {
		if m.Name == name {
			return l
		}
	}
	t.Fatalf("no machine unit %q", name)
	return -1
}

func TestFilterMachinesNoChange(t *testing.T) {
	in := filterInstance(t)
	if in.FilterMachines(func(cluster.NodeID) bool { return true }) {
		t.Error("reported a change with every node alive")
	}
	if len(in.Machines) != 2 {
		t.Errorf("machines = %d, want 2", len(in.Machines))
	}
}

func TestFilterMachinesScalesPartialUnit(t *testing.T) {
	in := filterInstance(t)
	if !in.FilterMachines(func(n cluster.NodeID) bool { return n != 1 }) {
		t.Fatal("losing a node reported no change")
	}
	l := machineIdx(t, in, "za/t")
	if got := in.Machines[l].ECU; got != 2 {
		t.Errorf("za/t ECU = %g after losing 1 of 2 nodes, want 2", got)
	}
	if len(in.Machines[l].Nodes) != 1 || in.Machines[l].Nodes[0] != 0 {
		t.Errorf("za/t nodes = %v, want [0]", in.Machines[l].Nodes)
	}
	if len(in.Machines) != 2 {
		t.Errorf("machines = %d, want 2 (unit shrinks, not drops)", len(in.Machines))
	}
	if err := in.Validate(); err != nil {
		t.Errorf("filtered instance invalid: %v", err)
	}
}

func TestFilterMachinesDropsEmptyUnit(t *testing.T) {
	in := filterInstance(t)
	zbStores := -1
	for m, su := range in.Stores {
		if su.Name == "zb/u" {
			zbStores = m
		}
	}
	if !in.FilterMachines(func(n cluster.NodeID) bool { return n != 2 }) {
		t.Fatal("losing a whole unit reported no change")
	}
	if len(in.Machines) != 1 || in.Machines[0].Name != "za/t" {
		t.Fatalf("machines = %+v, want only za/t", in.Machines)
	}
	if len(in.MSPerMBMC) != 1 || len(in.BandwidthMBps) != 1 {
		t.Errorf("matrix rows not compacted: MS=%d B=%d", len(in.MSPerMBMC), len(in.BandwidthMBps))
	}
	// Store units survive their node — only the CoMachine link goes stale.
	if len(in.Stores) != 2 {
		t.Errorf("stores = %d, want 2 (data outlives compute)", len(in.Stores))
	}
	if in.CoMachine[zbStores] != -1 {
		t.Errorf("zb store co-machine = %d, want -1 after its node died", in.CoMachine[zbStores])
	}
	if err := in.Validate(); err != nil {
		t.Errorf("filtered instance invalid: %v", err)
	}
}

func TestFilterMachinesKeepsFakeNode(t *testing.T) {
	in := filterInstance(t)
	in.AddFakeNode(FakeNodePriceMC)
	in.FilterMachines(func(cluster.NodeID) bool { return false }) // total outage
	if len(in.Machines) != 1 || !in.Machines[0].Fake {
		t.Fatalf("machines = %+v, want only the fake overflow node", in.Machines)
	}
}
