package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"lips/internal/lp"
)

// OnlineColGen is the restricted-master view of the online model (Fig. 4)
// for clusters too large to materialize in full. The full LP has one
// x^t_{klm} column per (job, machine, store) triple and one cpu/xfer row
// per machine — at 10k nodes that cross product dwarfs the part of the
// optimum that is ever nonzero. The oracle exploits the structure of the
// pricing problem: an unmaterialized machine carries no cpu or xfer row,
// so those rows' duals are implicitly zero and the reduced cost of its
// columns depends on the machine only through its price class — its CPU
// price, capacity, and cost/bandwidth rows. Machines are therefore
// bucketed by an exact fingerprint of those numbers; one representative
// prices the whole bucket, and negative buckets materialize machines in
// doubling batches until no bucket prices below zero. At that point every
// unrevealed column has nonnegative reduced cost and every unrevealed row
// holds trivially (only a machine's own columns touch its rows), so the
// restricted optimum is optimal for the full instance — to the same
// tolerances as a direct solve.
//
// The fake overflow node is always materialized: it alone makes the
// restricted master feasible (job coverage rows are GE 1 and F is exempt
// from capacity and transfer rows), so an infeasible restricted solve
// proves the full instance infeasible and no Farkas pricing is needed.
type OnlineColGen struct {
	m *Model

	jobRow   []lp.Con
	capRow   []lp.Con
	existRow map[[2]int]lp.Con // (job, store) for jobs with data
	cpuRow   []lp.Con          // per machine; -1 until materialized
	xferRow  map[[2]int]lp.Con // (job, machine)

	open     []bool  // machine materialized
	buckets  [][]int // closed machines per price class, ascending index
	opened   []int   // machines materialized per bucket (doubling batch size)
	tol      float64
	rounds   int
	machines int // materialized machine count, fake included
}

// ColGenOptions tunes SolveOnlineColGen beyond the LP options.
type ColGenOptions struct {
	// LP tunes the restricted-master solves. WarmStart is managed by the
	// pricing loop itself; Dual is worth enabling for epoch re-solves.
	LP lp.Options
	// SeedMachines materializes these machine indices up front — the hot
	// columns of a previous epoch's plan. Seeding never affects the
	// optimum (extra columns are merely priced into or out of the basis);
	// it only saves pricing rounds when the guess is right.
	SeedMachines []int
}

// NewOnlineColGen builds the restricted master for one epoch. A fake
// overflow node is appended if the instance lacks one, exactly as
// BuildOnlineModel does.
func NewOnlineColGen(in *Instance, opts ColGenOptions) (*OnlineColGen, error) {
	hasFake := false
	for _, mach := range in.Machines {
		if mach.Fake {
			hasFake = true
			break
		}
	}
	if !hasFake {
		in.AddFakeNode(FakeNodePriceMC)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	// buildCo rejects zero bandwidth lazily, as it materializes each xfer
	// coefficient; here every machine must be priceable up front.
	for k, job := range in.Jobs {
		if job.Data == NoData {
			continue
		}
		for l, mach := range in.Machines {
			if mach.Fake {
				continue
			}
			for m := range in.Stores {
				if in.BandwidthMBps[l][m] <= 0 {
					return nil, fmt.Errorf("core: zero bandwidth between machine %d and store %d (job %d)", l, m, k)
				}
			}
		}
	}

	cg := &OnlineColGen{
		m: &Model{In: in, Kind: Online, prob: lp.New("lips-online-rmp"),
			xt: make(map[xtKey]lp.Var), xdFlow: make(map[[3]int]lp.Var), hasXD: true},
		existRow: make(map[[2]int]lp.Con),
		xferRow:  make(map[[2]int]lp.Con),
		open:     make([]bool, len(in.Machines)),
		tol:      1e-9,
	}
	prob := cg.m.prob

	// Eager part: everything whose size does not scale with the machine
	// count — placement flows, job coverage, placement and store-capacity
	// rows, and data-existence rows.
	for i, d := range in.Data {
		for _, o := range sortedOrigins(d) {
			for j := range in.Stores {
				cg.m.xdFlow[[3]int{i, o, j}] = prob.AddVar(fmt.Sprintf("xd[%d,%d,%d]", i, o, j), 0, 1,
					in.SSPerMBMC[o][j]*d.SizeMB)
			}
		}
	}
	for k := range in.Jobs {
		cg.jobRow = append(cg.jobRow, prob.AddCon(fmt.Sprintf("job[%d]", k), lp.GE, 1))
	}
	for i, d := range in.Data {
		for _, o := range sortedOrigins(d) {
			row := prob.AddCon(fmt.Sprintf("place[%d,%d]", i, o), lp.EQ, d.Origin[o])
			for j := range in.Stores {
				prob.SetCoef(row, cg.m.xdFlow[[3]int{i, o, j}], 1)
			}
		}
	}
	for j, s := range in.Stores {
		row := prob.AddCon(fmt.Sprintf("cap[%d]", j), lp.LE, s.CapacityMB)
		cg.capRow = append(cg.capRow, row)
		for i, d := range in.Data {
			for _, o := range sortedOrigins(d) {
				prob.SetCoef(row, cg.m.xdFlow[[3]int{i, o, j}], d.SizeMB)
			}
		}
	}
	for k, job := range in.Jobs {
		if job.Data == NoData {
			continue
		}
		d := in.Data[job.Data]
		for store := range in.Stores {
			row := prob.AddCon(fmt.Sprintf("exist[%d,%d]", k, store), lp.LE, 0)
			cg.existRow[[2]int{k, store}] = row
			for _, o := range sortedOrigins(d) {
				prob.SetCoef(row, cg.m.xdFlow[[3]int{job.Data, o, store}], -1)
			}
		}
	}
	cg.cpuRow = make([]lp.Con, len(in.Machines))
	for l := range cg.cpuRow {
		cg.cpuRow[l] = -1
	}

	// Lazy part seeds: the fake node (feasibility), then any hints.
	for l, mach := range in.Machines {
		if mach.Fake {
			cg.materialize(l)
		}
	}
	for _, l := range opts.SeedMachines {
		if l >= 0 && l < len(in.Machines) && !cg.open[l] {
			cg.materialize(l)
		}
	}

	cg.rebucket()
	return cg, nil
}

// rebucket partitions the still-closed machines by price class: the exact
// float bits of CPU price, capacity (ECU and effective horizon), and the
// MS cost and bandwidth rows. Within a bucket every machine's columns are
// numerically identical, so one representative prices them all. Called at
// construction and again after Reprice, whose drifted prices may split or
// merge classes.
func (cg *OnlineColGen) rebucket() {
	in := cg.m.In
	cg.buckets = cg.buckets[:0]
	cg.opened = cg.opened[:0]
	byClass := make(map[string]int)
	for l, mach := range in.Machines {
		if cg.open[l] {
			continue
		}
		key := machineFingerprint(in, l, mach)
		b, ok := byClass[key]
		if !ok {
			b = len(cg.buckets)
			byClass[key] = b
			cg.buckets = append(cg.buckets, nil)
			cg.opened = append(cg.opened, 0)
		}
		cg.buckets[b] = append(cg.buckets[b], l)
	}
}

// machineFingerprint is the exact-bits price-class key of machine l.
func machineFingerprint(in *Instance, l int, mach Machine) string {
	buf := make([]byte, 0, 8*(3+2*len(in.Stores)))
	put := func(f float64) {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	}
	put(mach.PerECUSecMC)
	put(mach.ECU)
	put(in.HorizonOf(l))
	for m := range in.Stores {
		put(in.MSPerMBMC[l][m])
		put(in.BandwidthMBps[l][m])
	}
	return string(buf)
}

// materialize reveals machine l: its cpu row, its per-job xfer rows, and
// every x^t column it hosts.
func (cg *OnlineColGen) materialize(l int) {
	in := cg.m.In
	prob := cg.m.prob
	mach := in.Machines[l]
	cg.open[l] = true
	cg.machines++
	if !mach.Fake {
		cg.cpuRow[l] = prob.AddCon(fmt.Sprintf("cpu[%d]", l), lp.LE, mach.ECU*in.HorizonOf(l))
	}
	for k, job := range in.Jobs {
		execMC := job.CPUSec * mach.PerECUSecMC
		if job.Data == NoData {
			v := prob.AddVar(fmt.Sprintf("xt[%d,%d,-]", k, l), 0, 1, execMC)
			cg.m.xt[xtKey{k, l, noStore}] = v
			prob.SetCoef(cg.jobRow[k], v, 1)
			if !mach.Fake {
				prob.SetCoef(cg.cpuRow[l], v, job.CPUSec)
			}
			continue
		}
		traffic := in.Data[job.Data].SizeMB * job.accessFrac()
		var xfer lp.Con = -1
		if !mach.Fake {
			xfer = prob.AddCon(fmt.Sprintf("xfer[%d,%d]", k, l), lp.LE, in.Horizon)
			cg.xferRow[[2]int{k, l}] = xfer
		}
		for store := range in.Stores {
			v := prob.AddVar(fmt.Sprintf("xt[%d,%d,%d]", k, l, store), 0, 1,
				execMC+in.MSPerMBMC[l][store]*traffic)
			cg.m.xt[xtKey{k, l, store}] = v
			prob.SetCoef(cg.jobRow[k], v, 1)
			prob.SetCoef(cg.existRow[[2]int{k, store}], v, 1)
			if !mach.Fake {
				prob.SetCoef(cg.cpuRow[l], v, job.CPUSec)
				prob.SetCoef(xfer, v, traffic/in.BandwidthMBps[l][store])
			}
		}
	}
}

// Price implements lp.Oracle. An unmaterialized machine's cpu and xfer
// rows carry implied dual zero, so the reduced cost of its column for
// (job k, store m) is cost(k, class, m) − y_job[k] − y_exist[k,m] — the
// same for every machine of its price class. Each negative bucket reveals
// a doubling batch of machines; an infeasible or unbounded restricted
// solve adds nothing (see the type comment: both verdicts transfer to the
// full instance).
func (cg *OnlineColGen) Price(_ *lp.Problem, sol *lp.Solution) int {
	if sol.Status != lp.Optimal {
		return 0
	}
	cg.rounds++
	added := 0
	for b := range cg.buckets {
		closed := cg.buckets[b]
		if len(closed) == 0 {
			continue
		}
		if !cg.bucketPricesNegative(closed[0], sol.Dual) {
			continue
		}
		n := cg.opened[b]
		if n < 1 {
			n = 1
		}
		if n > len(closed) {
			n = len(closed)
		}
		for _, l := range closed[:n] {
			cg.materialize(l)
			added++
		}
		cg.buckets[b] = closed[n:]
		cg.opened[b] += n
	}
	return added
}

// bucketPricesNegative reports whether any (job, store) column of the
// still-closed machine l has negative reduced cost under the duals y.
func (cg *OnlineColGen) bucketPricesNegative(l int, y []float64) bool {
	in := cg.m.In
	mach := in.Machines[l]
	for k, job := range in.Jobs {
		execMC := job.CPUSec * mach.PerECUSecMC
		if job.Data == NoData {
			c := execMC
			if c-y[cg.jobRow[k]] < -cg.tol*(1+math.Abs(c)) {
				return true
			}
			continue
		}
		traffic := in.Data[job.Data].SizeMB * job.accessFrac()
		for store := range in.Stores {
			c := execMC + in.MSPerMBMC[l][store]*traffic
			d := c - y[cg.jobRow[k]] - y[cg.existRow[[2]int{k, store}]]
			if d < -cg.tol*(1+math.Abs(c)) {
				return true
			}
		}
	}
	return false
}

// Stats describes how much of the instance the pricing loop materialized.
func (cg *OnlineColGen) Stats() (machines, totalMachines int) {
	return cg.machines, len(cg.m.In.Machines)
}

// Solve runs the column-generation loop to optimality and extracts a Plan,
// exactly as Model.Solve does for the fully materialized LP.
func (cg *OnlineColGen) Solve(opts ColGenOptions) (*Plan, lp.ColGenStats, error) {
	sol, st, err := lp.SolveColGen(cg.m.prob, cg, opts.LP)
	if err != nil {
		return nil, st, err
	}
	switch sol.Status {
	case lp.Optimal:
	case lp.Infeasible:
		return nil, st, fmt.Errorf("core: online model infeasible")
	default:
		return nil, st, fmt.Errorf("core: online model: solver status %v after %d iterations", sol.Status, sol.Iters)
	}
	plan := cg.m.extract(sol)
	plan.Iters = st.Iters
	plan.DualIters = st.DualIters
	plan.ColGenRounds = st.Rounds
	plan.ColGenColumns = st.Columns
	return plan, st, nil
}

// Resolve re-runs the pricing loop after a Reprice, warm-starting the
// restricted master from basis (typically the previous Solve's
// Plan.Basis). Enable opts.LP.Dual so a basis left primal infeasible by
// RHS or price drift is repaired by dual pivots instead of a cold restart.
func (cg *OnlineColGen) Resolve(opts ColGenOptions, basis *lp.Basis) (*Plan, lp.ColGenStats, error) {
	opts.LP.WarmStart = basis
	return cg.Solve(opts)
}

// Reprice rewrites the restricted master's costs and right-hand sides from
// next — an instance with the same shape (jobs, data, stores, machines in
// the same order) but drifted prices, capacities, horizon or origin mixes.
// Coefficients are untouched, so quantities that enter the matrix — job
// CPU demand, data sizes, access fractions and bandwidths — must be
// unchanged; CPU demand and sizes are verified, the rest is the caller's
// contract. Follow with Resolve(opts, plan.Basis) for the incremental
// epoch-to-epoch path.
func (cg *OnlineColGen) Reprice(next *Instance) error {
	in := cg.m.In
	if len(next.Jobs) != len(in.Jobs) || len(next.Data) != len(in.Data) ||
		len(next.Machines) != len(in.Machines) || len(next.Stores) != len(in.Stores) {
		return fmt.Errorf("core: Reprice shape mismatch: %d/%d/%d/%d jobs/data/machines/stores, want %d/%d/%d/%d",
			len(next.Jobs), len(next.Data), len(next.Machines), len(next.Stores),
			len(in.Jobs), len(in.Data), len(in.Machines), len(in.Stores))
	}
	for k := range next.Jobs {
		if next.Jobs[k].CPUSec != in.Jobs[k].CPUSec || next.Jobs[k].Data != in.Jobs[k].Data {
			return fmt.Errorf("core: Reprice job %d changed demand or data binding", k)
		}
	}
	for i := range next.Data {
		if next.Data[i].SizeMB != in.Data[i].SizeMB || len(next.Data[i].Origin) != len(in.Data[i].Origin) {
			return fmt.Errorf("core: Reprice data %d changed size or origin set", i)
		}
		for o := range next.Data[i].Origin {
			if _, ok := in.Data[i].Origin[o]; !ok {
				return fmt.Errorf("core: Reprice data %d changed origin set", i)
			}
		}
	}
	prob := cg.m.prob
	for i, d := range next.Data {
		for _, o := range sortedOrigins(d) {
			for j := range next.Stores {
				v, ok := cg.m.xdFlow[[3]int{i, o, j}]
				if !ok {
					return fmt.Errorf("core: Reprice data %d gained origin %d", i, o)
				}
				prob.SetCost(v, next.SSPerMBMC[o][j]*d.SizeMB)
			}
		}
	}
	for key, v := range cg.m.xt {
		mach := next.Machines[key.l]
		job := next.Jobs[key.k]
		execMC := job.CPUSec * mach.PerECUSecMC
		if key.m == noStore {
			prob.SetCost(v, execMC)
			continue
		}
		traffic := next.Data[job.Data].SizeMB * job.accessFrac()
		prob.SetCost(v, execMC+next.MSPerMBMC[key.l][key.m]*traffic)
	}
	// Placement rows follow the eager construction order: data items in
	// index order, origins sorted within each.
	row := len(cg.jobRow)
	for _, d := range next.Data {
		for _, o := range sortedOrigins(d) {
			prob.SetRHS(lp.Con(row), d.Origin[o])
			row++
		}
	}
	for j, s := range next.Stores {
		prob.SetRHS(cg.capRow[j], s.CapacityMB)
	}
	for l, mach := range next.Machines {
		if cg.cpuRow[l] >= 0 {
			prob.SetRHS(cg.cpuRow[l], mach.ECU*next.HorizonOf(l))
		}
	}
	for _, row := range cg.xferRow {
		prob.SetRHS(row, next.Horizon)
	}
	cg.m.In = next
	// Drift can split a price class (e.g. a per-machine spot adjustment):
	// re-partition the closed machines so every bucket is again exactly
	// homogeneous before the next pricing round.
	cg.rebucket()
	return nil
}

// SolveOnlineColGen builds and solves one epoch's online model by column
// generation: the scalable equivalent of BuildOnlineModel + Model.Solve.
// It appends a fake overflow node to in when missing, like BuildOnlineModel.
func SolveOnlineColGen(in *Instance, opts ColGenOptions) (*Plan, lp.ColGenStats, error) {
	cg, err := NewOnlineColGen(in, opts)
	if err != nil {
		return nil, lp.ColGenStats{}, err
	}
	return cg.Solve(opts)
}

// HotMachines lists the machine units carrying nonzero task fractions in a
// plan, ascending — the natural SeedMachines hint for the next epoch's
// restricted master.
func (p *Plan) HotMachines() []int {
	seen := make(map[int]bool)
	for k := range p.XT {
		for lm := range p.XT[k] {
			seen[lm[0]] = true
		}
	}
	out := make([]int, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}
