package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/lp"
	"lips/internal/workload"
)

func TestLargestRemainderExact(t *testing.T) {
	got := LargestRemainder([]float64{0.5, 0.25, 0.25}, 8)
	if got[0] != 4 || got[1] != 2 || got[2] != 2 {
		t.Errorf("got %v", got)
	}
}

func TestLargestRemainderRemainders(t *testing.T) {
	// 1/3 each of 10: 3.33 each → 3+3+3 with one leftover to index 0.
	got := LargestRemainder([]float64{1.0 / 3, 1.0 / 3, 1.0 / 3}, 10)
	sum := got[0] + got[1] + got[2]
	if sum != 10 {
		t.Fatalf("sum %d", sum)
	}
	for _, c := range got {
		if c < 3 || c > 4 {
			t.Errorf("count %d outside [3,4]", c)
		}
	}
}

func TestLargestRemainderEdgeCases(t *testing.T) {
	if got := LargestRemainder(nil, 5); len(got) != 0 {
		t.Errorf("nil fracs: %v", got)
	}
	if got := LargestRemainder([]float64{1}, 0); got[0] != 0 {
		t.Errorf("zero total: %v", got)
	}
	// Negative fractions are clamped.
	got := LargestRemainder([]float64{-0.5, 1.0}, 4)
	if got[0] != 0 || got[1] != 4 {
		t.Errorf("negative frac: %v", got)
	}
	// Fractions summing above 1 are trimmed back to the total.
	got = LargestRemainder([]float64{0.9, 0.9}, 10)
	if got[0]+got[1] != 10 {
		t.Errorf("oversum: %v", got)
	}
}

func TestQuickLargestRemainderInvariants(t *testing.T) {
	check := func(seed int64, n uint8, total uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + int(n)%12
		tot := int(total) % 5000
		fr := make([]float64, k)
		sum := 0.0
		for i := range fr {
			fr[i] = rng.Float64()
			sum += fr[i]
		}
		for i := range fr {
			fr[i] /= sum
		}
		got := LargestRemainder(fr, tot)
		s := 0
		for i, c := range got {
			s += c
			exact := fr[i] * float64(tot)
			if float64(c) < math.Floor(exact)-1e-9 || float64(c) > math.Ceil(exact)+1e-9 {
				t.Logf("seed %d: count %d for exact %g", seed, c, exact)
				return false
			}
		}
		return s == tot
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func roundedInstance(t *testing.T) (*Instance, *Plan) {
	t.Helper()
	b := cluster.NewBuilder("za", "zb")
	b.AddNode("za", "exp", 4, 2, cost.Millicents(5), 1e6)
	b.AddNode("zb", "cheap", 4, 2, cost.Millicents(1), 1e6)
	b.AddNode("zb", "cheap", 4, 2, cost.Millicents(1), 1e6)
	c := b.Build()
	wb := workload.NewBuilder()
	wb.AddInputJob("g", "u", workload.Grep, 20*64, 0, 0) // 20 tasks
	wb.AddInputJob("w", "u", workload.WordCount, 15*64, 1, 0)
	wb.AddNoInputJob("pi", "u", 4, 100, 0)
	w := wb.Build()
	in, err := NewInstance(c, w.Jobs, w.Objects, w.Placement(), InstanceOptions{Aggregate: true, Horizon: 1e5})
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildCoScheduleModel(in)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Solve(lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return in, p
}

func TestRoundConservesTasks(t *testing.T) {
	in, p := roundedInstance(t)
	ip := p.Round()
	perJob := make([]int, len(in.Jobs))
	for _, a := range ip.Assignments {
		perJob[a.Job] += a.Tasks
		if a.Tasks <= 0 {
			t.Errorf("assignment with %d tasks", a.Tasks)
		}
		if in.Machines[a.Machine].Fake {
			t.Error("fake node in assignments")
		}
	}
	for k, job := range in.Jobs {
		if perJob[k]+ip.Deferred[k] != job.NumTasks {
			t.Errorf("job %d: %d+%d tasks, want %d", k, perJob[k], ip.Deferred[k], job.NumTasks)
		}
	}
}

func TestRoundConservesBlocks(t *testing.T) {
	in, p := roundedInstance(t)
	ip := p.Round()
	perData := make([]int, len(in.Data))
	for _, mv := range ip.Moves {
		perData[mv.Data] += mv.Blocks
	}
	for i, d := range in.Data {
		want := numBlocks(d.SizeMB)
		if perData[i] != want {
			t.Errorf("data %d: %d blocks, want %d", i, perData[i], want)
		}
	}
}

func TestIntegralCostNearFractional(t *testing.T) {
	in, p := roundedInstance(t)
	ip := p.Round()
	frac := p.TotalMC()
	integral := ip.CostMC()
	if math.Abs(integral-frac) > 0.15*frac+1 {
		t.Errorf("integral %g strays from fractional %g", integral, frac)
	}
	_ = in
}

func TestRoundOnlineDefersFakeTasks(t *testing.T) {
	b := cluster.NewBuilder("za")
	b.AddNode("za", "only", 1, 2, cost.Millicents(1), 1e6)
	c := b.Build()
	wb := workload.NewBuilder()
	arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 64}
	wb.AddInputJob("j", "u", arch, 10*64, 0, 0) // 10 tasks, 640 ECU-sec
	w := wb.Build()
	in, err := NewInstance(c, w.Jobs, w.Objects, w.Placement(), InstanceOptions{Horizon: 320})
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildOnlineModel(in)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Solve(lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ip := p.Round()
	// Half the capacity → 5 tasks deferred.
	if ip.Deferred[0] != 5 {
		t.Errorf("deferred %d tasks, want 5", ip.Deferred[0])
	}
}

func TestPlanString(t *testing.T) {
	_, p := roundedInstance(t)
	if p.String() == "" {
		t.Error("empty plan string")
	}
}
