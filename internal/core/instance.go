// Package core implements LiPS itself: the three linear-programming
// scheduling models from the paper (offline simple task scheduling, Fig. 2;
// offline cost-efficient co-scheduling, Fig. 3; online epoch-based
// co-scheduling with a fake overflow node, Fig. 4), solution extraction,
// and the rounding of fractional schedules to integral task plans (§IV).
//
// Models are built over an Instance, whose machines and stores may be
// either individual cluster nodes or aggregated groups of interchangeable
// nodes (see cluster.Groups). Group aggregation is lossless for clusters
// whose nodes fall into identical classes and shrinks the LP by orders of
// magnitude — the paper's 100-node testbed becomes a 9-machine LP.
package core

import (
	"fmt"
	"math"

	"lips/internal/cluster"
	"lips/internal/hdfs"
	"lips/internal/workload"
)

// NoData marks a job that reads no input.
const NoData = -1

// Machine is one computation unit of an Instance: a node or a node group.
// ECU is the paper's TP(M) — aggregate throughput of the unit.
type Machine struct {
	Name        string
	Type        string // instance type, for spot-price schedules
	ECU         float64
	PerECUSecMC float64 // CPU_Cost(M) in millicents per ECU-second
	Fake        bool    // the online model's overflow node F

	// Uptime is the paper's uptime(M): how many seconds of the horizon
	// this machine is actually available (a lease expiring, a planned
	// decommission). Zero means the full horizon.
	Uptime float64

	// Nodes lists the concrete cluster nodes behind this unit (empty for
	// synthetic instances and the fake node).
	Nodes []cluster.NodeID
}

// StoreUnit is one storage unit of an Instance: a store or a store group.
type StoreUnit struct {
	Name       string
	CapacityMB float64

	// Stores lists the concrete cluster stores behind this unit.
	Stores []cluster.StoreID
}

// DataItem is one data object (or aggregated view of one) with its current
// location mix: Origin[m] is the fraction of the object currently on store
// unit m (the paper's O_i generalised to fractional placements).
type DataItem struct {
	Name   string
	SizeMB float64
	Origin map[int]float64
}

// JobItem is one job: TCP (CPU intensity), total demand, and the data item
// it reads (NoData for Pi-style jobs).
type JobItem struct {
	Name        string
	Data        int     // index into Instance.Data, or NoData
	CPUSecPerMB float64 // TCP(k)
	CPUSec      float64 // CPU(J_k): total ECU-second demand
	NumTasks    int
	// AccessFrac is the fractional JD entry: the job's expected traffic
	// as a ratio of the data item's size. Zero means a full scan (1).
	AccessFrac float64
}

// accessFrac returns the effective JD fraction.
func (j JobItem) accessFrac() float64 {
	if j.AccessFrac <= 0 {
		return 1
	}
	return j.AccessFrac
}

// Instance is a self-contained scheduling problem: jobs, data, machines,
// stores, and the cost/bandwidth matrices the paper calls JM, MS, SS, B.
type Instance struct {
	Jobs     []JobItem
	Data     []DataItem
	Machines []Machine
	Stores   []StoreUnit

	// MSPerMBMC[l][m] is the runtime transfer cost from store unit m to
	// machine unit l, in millicents per MB.
	MSPerMBMC [][]float64
	// SSPerMBMC[a][b] is the relocation cost between store units, in
	// millicents per MB.
	SSPerMBMC [][]float64
	// BandwidthMBps[l][m] is the transfer bandwidth from store unit m to
	// machine unit l in MB/s (the paper's B matrix).
	BandwidthMBps [][]float64

	// CoMachine[m] is the machine unit co-located with store unit m, or
	// -1 for remote stores. Used by the 100%-data-local baseline.
	CoMachine []int

	// Horizon is uptime(M) in the offline models or the epoch length e
	// in the online model, in seconds. The same horizon applies to every
	// machine; per-machine uptimes can be emulated by scaling ECU.
	Horizon float64
}

// Validate checks the matrix shapes and index ranges.
func (in *Instance) Validate() error {
	nm, ns := len(in.Machines), len(in.Stores)
	if len(in.MSPerMBMC) != nm || len(in.BandwidthMBps) != nm {
		return fmt.Errorf("core: MS/B have %d/%d rows, want %d", len(in.MSPerMBMC), len(in.BandwidthMBps), nm)
	}
	for l := range in.MSPerMBMC {
		if len(in.MSPerMBMC[l]) != ns || len(in.BandwidthMBps[l]) != ns {
			return fmt.Errorf("core: MS/B row %d has %d/%d cols, want %d", l, len(in.MSPerMBMC[l]), len(in.BandwidthMBps[l]), ns)
		}
	}
	if len(in.SSPerMBMC) != ns {
		return fmt.Errorf("core: SS has %d rows, want %d", len(in.SSPerMBMC), ns)
	}
	for a := range in.SSPerMBMC {
		if len(in.SSPerMBMC[a]) != ns {
			return fmt.Errorf("core: SS row %d has %d cols, want %d", a, len(in.SSPerMBMC[a]), ns)
		}
	}
	for k, j := range in.Jobs {
		if j.Data != NoData && (j.Data < 0 || j.Data >= len(in.Data)) {
			return fmt.Errorf("core: job %d references data %d", k, j.Data)
		}
		if j.CPUSec < 0 || j.NumTasks <= 0 {
			return fmt.Errorf("core: job %d has CPUSec %g, tasks %d", k, j.CPUSec, j.NumTasks)
		}
	}
	for i, d := range in.Data {
		sum := 0.0
		for m, f := range d.Origin {
			if m < 0 || m >= ns {
				return fmt.Errorf("core: data %d origin store %d out of range", i, m)
			}
			sum += f
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("core: data %d origin fractions sum to %g", i, sum)
		}
	}
	if in.Horizon <= 0 {
		return fmt.Errorf("core: horizon %g", in.Horizon)
	}
	return nil
}

// TotalDemandCPUSec sums the jobs' CPU demand.
func (in *Instance) TotalDemandCPUSec() float64 {
	s := 0.0
	for _, j := range in.Jobs {
		s += j.CPUSec
	}
	return s
}

// HorizonOf returns the effective availability of machine l: its Uptime
// capped by the instance horizon (the paper's uptime(M), or the epoch e).
func (in *Instance) HorizonOf(l int) float64 {
	m := in.Machines[l]
	if m.Uptime > 0 && m.Uptime < in.Horizon {
		return m.Uptime
	}
	return in.Horizon
}

// TotalSupplyCPUSec sums machine capacity over their effective horizons,
// excluding the fake node.
func (in *Instance) TotalSupplyCPUSec() float64 {
	s := 0.0
	for l, m := range in.Machines {
		if !m.Fake {
			s += m.ECU * in.HorizonOf(l)
		}
	}
	return s
}

// InstanceOptions controls instance construction from a cluster.
type InstanceOptions struct {
	// Aggregate groups interchangeable nodes into single LP machines
	// (lossless for class-structured clusters; see cluster.Groups).
	Aggregate bool
	// Horizon is uptime (offline) or the epoch length (online), seconds.
	Horizon float64
}

// NewInstance builds an Instance from a cluster, a set of jobs, and the
// current data placement. With opts.Aggregate, machines and stores are
// cluster groups; otherwise they are individual nodes/stores.
func NewInstance(c *cluster.Cluster, jobs []workload.Job, objects []hdfs.DataObject, placement *hdfs.Placement, opts InstanceOptions) (*Instance, error) {
	if opts.Horizon <= 0 {
		return nil, fmt.Errorf("core: non-positive horizon %g", opts.Horizon)
	}
	in := &Instance{Horizon: opts.Horizon}

	// Machine and store units, plus a map from concrete store to unit.
	storeUnitOf := make(map[cluster.StoreID]int)
	if opts.Aggregate {
		for _, g := range c.Groups() {
			name := g.Zone + "/" + g.Type
			machine := len(in.Machines)
			in.Machines = append(in.Machines, Machine{
				Name: name, Type: g.Type, ECU: g.TotalECU,
				PerECUSecMC: g.PerECUSec.ToMillicents(),
				Nodes:       append([]cluster.NodeID(nil), g.Nodes...),
			})
			if len(g.Stores) > 0 {
				unit := len(in.Stores)
				in.Stores = append(in.Stores, StoreUnit{
					Name: name, CapacityMB: g.CapacityMB,
					Stores: append([]cluster.StoreID(nil), g.Stores...),
				})
				in.CoMachine = append(in.CoMachine, machine)
				for _, s := range g.Stores {
					storeUnitOf[s] = unit
				}
			}
		}
		// Stores not co-located with any node (remote stores) become
		// their own units.
		for _, s := range c.Stores {
			if _, ok := storeUnitOf[s.ID]; ok {
				continue
			}
			if s.Node != cluster.None {
				continue // grouped above
			}
			storeUnitOf[s.ID] = len(in.Stores)
			in.Stores = append(in.Stores, StoreUnit{
				Name: s.Name, CapacityMB: s.CapacityMB, Stores: []cluster.StoreID{s.ID},
			})
			in.CoMachine = append(in.CoMachine, -1)
		}
	} else {
		for _, n := range c.Nodes {
			in.Machines = append(in.Machines, Machine{
				Name: n.Name, Type: n.Type, ECU: n.ECU,
				PerECUSecMC: n.PerECUSec.ToMillicents(),
				Nodes:       []cluster.NodeID{n.ID},
			})
		}
		for _, s := range c.Stores {
			storeUnitOf[s.ID] = len(in.Stores)
			in.Stores = append(in.Stores, StoreUnit{
				Name: s.Name, CapacityMB: s.CapacityMB, Stores: []cluster.StoreID{s.ID},
			})
			if s.Node != cluster.None {
				in.CoMachine = append(in.CoMachine, int(s.Node))
			} else {
				in.CoMachine = append(in.CoMachine, -1)
			}
		}
	}

	// Cost and bandwidth matrices via unit representatives. Units are
	// composed of interchangeable members, so any representative yields
	// the same zone-level prices.
	repNode := make([]cluster.NodeID, len(in.Machines))
	for l, m := range in.Machines {
		repNode[l] = m.Nodes[0]
	}
	repStore := make([]cluster.StoreID, len(in.Stores))
	for m, s := range in.Stores {
		repStore[m] = s.Stores[0]
	}
	in.MSPerMBMC = make([][]float64, len(in.Machines))
	in.BandwidthMBps = make([][]float64, len(in.Machines))
	for l := range in.Machines {
		in.MSPerMBMC[l] = make([]float64, len(in.Stores))
		in.BandwidthMBps[l] = make([]float64, len(in.Stores))
		for m := range in.Stores {
			in.MSPerMBMC[l][m] = c.MSPerGB(repNode[l], repStore[m]).ToMillicents() / 1024
			in.BandwidthMBps[l][m] = c.BandwidthStoreNode(repStore[m], repNode[l])
		}
	}
	in.SSPerMBMC = make([][]float64, len(in.Stores))
	for a := range in.Stores {
		in.SSPerMBMC[a] = make([]float64, len(in.Stores))
		for b := range in.Stores {
			in.SSPerMBMC[a][b] = c.SSPerGB(repStore[a], repStore[b]).ToMillicents() / 1024
		}
	}

	// Data items with origin fractions mapped onto store units.
	objUnit := make(map[hdfs.ObjectID]int)
	for _, o := range objects {
		origin := make(map[int]float64)
		for s, f := range placement.Fractions(o.ID) {
			unit, ok := storeUnitOf[s]
			if !ok {
				return nil, fmt.Errorf("core: object %q on unmapped store %d", o.Name, s)
			}
			origin[unit] += f
		}
		if len(origin) == 0 {
			unit, ok := storeUnitOf[o.Origin]
			if !ok {
				return nil, fmt.Errorf("core: object %q origin store %d unmapped", o.Name, o.Origin)
			}
			origin[unit] = 1
		}
		objUnit[o.ID] = len(in.Data)
		in.Data = append(in.Data, DataItem{Name: o.Name, SizeMB: o.SizeMB, Origin: origin})
	}

	for _, j := range jobs {
		item := JobItem{
			Name: j.Name, Data: NoData,
			CPUSecPerMB: j.CPUSecPerMB, CPUSec: j.TotalCPUSec(), NumTasks: j.NumTasks,
			AccessFrac: j.EffectiveAccessFrac(),
		}
		if j.HasInput() {
			di, ok := objUnit[j.Object]
			if !ok {
				return nil, fmt.Errorf("core: job %q reads object %d not in instance", j.Name, j.Object)
			}
			item.Data = di
		}
		in.Jobs = append(in.Jobs, item)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// StoreUnitOf builds the reverse map from concrete cluster stores to the
// instance's store units.
func (in *Instance) StoreUnitOf() map[cluster.StoreID]int {
	out := make(map[cluster.StoreID]int)
	for unit, su := range in.Stores {
		for _, s := range su.Stores {
			out[s] = unit
		}
	}
	return out
}

// MachineUnitOf builds the reverse map from concrete cluster nodes to the
// instance's machine units.
func (in *Instance) MachineUnitOf() map[cluster.NodeID]int {
	out := make(map[cluster.NodeID]int)
	for unit, m := range in.Machines {
		for _, n := range m.Nodes {
			out[n] = unit
		}
	}
	return out
}

// FilterMachines restricts the instance to machines whose nodes satisfy
// alive: dead nodes leave their unit (scaling the unit's aggregate ECU
// down proportionally), and units with no live node are removed together
// with their MS/B matrix rows and CoMachine references. It reports
// whether anything changed — callers warm-starting an LP must drop their
// basis when it does, as the column structure no longer matches. Store
// units are untouched: a store outlives its node (the data survives; only
// co-located compute is gone).
func (in *Instance) FilterMachines(alive func(cluster.NodeID) bool) bool {
	changed := false
	keep := make([]int, 0, len(in.Machines))
	newIdx := make([]int, len(in.Machines))
	for l, m := range in.Machines {
		newIdx[l] = -1
		if m.Fake || len(m.Nodes) == 0 {
			newIdx[l] = len(keep)
			keep = append(keep, l)
			continue
		}
		var live []cluster.NodeID
		for _, n := range m.Nodes {
			if alive(n) {
				live = append(live, n)
			}
		}
		if len(live) == 0 {
			changed = true
			continue
		}
		if len(live) < len(m.Nodes) {
			changed = true
			in.Machines[l].ECU = m.ECU * float64(len(live)) / float64(len(m.Nodes))
			in.Machines[l].Nodes = live
		}
		newIdx[l] = len(keep)
		keep = append(keep, l)
	}
	if len(keep) < len(in.Machines) {
		machines := make([]Machine, len(keep))
		ms := make([][]float64, len(keep))
		bw := make([][]float64, len(keep))
		for i, l := range keep {
			machines[i] = in.Machines[l]
			ms[i] = in.MSPerMBMC[l]
			bw[i] = in.BandwidthMBps[l]
		}
		in.Machines, in.MSPerMBMC, in.BandwidthMBps = machines, ms, bw
		for m, cm := range in.CoMachine {
			if cm >= 0 {
				in.CoMachine[m] = newIdx[cm]
			}
		}
	}
	return changed
}

// AddFakeNode appends the online model's overflow node F: effectively
// unlimited capacity at a prohibitive CPU price (paper §V-B). It returns
// the machine index. perECUSecMC should dwarf every real price; the
// conventional value is FakeNodePriceMC.
func (in *Instance) AddFakeNode(perECUSecMC float64) int {
	idx := len(in.Machines)
	in.Machines = append(in.Machines, Machine{
		Name: "fake-F", Type: "fake", ECU: math.MaxFloat64 / 1e30, PerECUSecMC: perECUSecMC, Fake: true,
	})
	ns := len(in.Stores)
	msRow := make([]float64, ns)
	bwRow := make([]float64, ns)
	for m := range bwRow {
		bwRow[m] = math.MaxFloat64 / 1e30 // transfers to F never happen
	}
	in.MSPerMBMC = append(in.MSPerMBMC, msRow)
	in.BandwidthMBps = append(in.BandwidthMBps, bwRow)
	return idx
}

// FakeNodePriceMC is the conventional CPU price of the fake node F: three
// orders of magnitude above the 0–10 mc/ECU·s range of real machines, so
// the LP uses F only when real capacity is exhausted.
//
// The price must NOT be astronomically large: when the epoch is heavily
// over-subscribed, F's objective contribution dominates the total, and a
// price like 1e9 pushes the objective to a magnitude where one float64 ulp
// exceeds the real machines' per-iteration cost improvements — the simplex
// then cannot make numeric progress and spins. 1e4 keeps the preference
// strict while leaving ~9 decimal digits of headroom for the real signal.
const FakeNodePriceMC = 1e4
