package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/lp"
	"lips/internal/workload"
)

func TestValidateAcceptsSolverPlans(t *testing.T) {
	in := twoNodeInstance(t, 1, 2)
	for _, build := range []func() (*Model, error){
		func() (*Model, error) { return BuildCoScheduleModel(in) },
		func() (*Model, error) { return BuildOnlineModel(in) },
	} {
		m, err := build()
		if err != nil {
			t.Fatal(err)
		}
		p := solvePlan(t, m)
		if err := p.Validate(1e-7); err != nil {
			t.Errorf("%s: %v", m.Kind, err)
		}
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	in := twoNodeInstance(t, 1, 2)
	m, err := BuildCoScheduleModel(in)
	if err != nil {
		t.Fatal(err)
	}
	good := solvePlan(t, m)

	// Under-covered job.
	bad := *good
	bad.XT = []map[[2]int]float64{{[2]int{0, 0}: 0.4}}
	if err := bad.Validate(1e-7); err == nil {
		t.Error("under-coverage accepted")
	}

	// Over-capacity machine.
	tiny := twoNodeInstance(t, 1, 2)
	tiny.Horizon = 1 // capacity 1 ECU-second vs 64 demanded
	bad2 := *good
	bad2.In = tiny
	if err := bad2.Validate(1e-7); err == nil {
		t.Error("capacity violation accepted")
	}

	// Reading data from a store that does not hold it.
	bad3 := *good
	bad3.XT = []map[[2]int]float64{{[2]int{0, 1}: 1}} // read store 1
	bad3.XD = [][]float64{{1, 0}}                     // data fully on store 0
	bad3.XDFlows = nil
	if err := bad3.Validate(1e-7); err == nil {
		t.Error("existence violation accepted")
	}
}

// TestQuickSolverPlansAlwaysValid fuzzes random instances and checks every
// optimal plan against the independent constraint checker.
func TestQuickSolverPlansAlwaysValid(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 2 + rng.Intn(5)
		b := cluster.NewBuilder("za", "zb", "zc")
		zones := []string{"za", "zb", "zc"}
		for i := 0; i < nodes; i++ {
			b.AddNode(zones[rng.Intn(3)], "t"+string(rune('a'+rng.Intn(3))),
				1+float64(rng.Intn(4)), 2, cost.Millicents(rng.Float64()*5), 1e5)
		}
		c := b.Build()
		wb := workload.NewBuilder()
		jobs := 1 + rng.Intn(4)
		for j := 0; j < jobs; j++ {
			arch := workload.Archetype{Name: "syn", Property: workload.Mixed,
				CPUSecPerBlock: 1 + rng.Float64()*90}
			blocks := 1 + rng.Intn(12)
			wb.AddInputJob("j", "u", arch, float64(blocks)*64, cluster.StoreID(rng.Intn(nodes)), 0)
		}
		w := wb.Build()
		in, err := NewInstance(c, w.Jobs, w.Objects, w.Placement(), InstanceOptions{
			Aggregate: rng.Intn(2) == 0,
			Horizon:   200 + rng.Float64()*2000,
		})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		m, err := BuildOnlineModel(in)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		plan, err := m.Solve(lp.Options{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := plan.Validate(1e-6); err != nil {
			t.Logf("seed %d: plan invalid: %v", seed, err)
			return false
		}
		// Rounding conserves tasks.
		ip := plan.Round()
		perJob := make([]int, len(in.Jobs))
		for _, a := range ip.Assignments {
			perJob[a.Job] += a.Tasks
		}
		for k, job := range in.Jobs {
			if perJob[k]+ip.Deferred[k] != job.NumTasks {
				t.Logf("seed %d: job %d rounds to %d+%d of %d", seed, k, perJob[k], ip.Deferred[k], job.NumTasks)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
