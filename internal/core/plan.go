package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"lips/internal/lp"
)

// Plan is a fractional schedule extracted from a solved model.
//
// XT[k] maps {machine, store} → the fraction of job k that runs on that
// machine reading that store (store is noStore == -1 for jobs without
// input). XD[i][j] is the fraction of data item i placed on store unit j
// (nil for the simple task model, whose placement was an input).
type Plan struct {
	In   *Instance
	Kind Kind

	XT []map[[2]int]float64
	XD [][]float64
	// XDFlows[i] maps {origin unit, dest store} → flow fraction; the
	// exact transportation decomposition behind XD (nil for plans with
	// fixed placement).
	XDFlows []map[[2]int]float64

	// ObjectiveMC is the LP objective at the optimum, in millicents —
	// unlike TotalMC it includes the fake node's fictitious charges, so it
	// is the right quantity for monotonicity comparisons across capacity
	// changes.
	ObjectiveMC float64

	// Cost breakdown in millicents, computed from the fractions:
	// objective terms (6)/(16), (7)/(17) and (8)/(18) of the paper.
	PlacementMC float64 // data relocation (x^d · SS)
	ExecMC      float64 // job execution (x^t · JM), excluding the fake node
	TransferMC  float64 // runtime store→machine movement (x^t · MS · Size)

	// DeferredFrac[k] is the fraction of job k parked on the fake node
	// (online model only): work pushed to the next epoch.
	DeferredFrac []float64

	Iters  int // simplex iterations spent
	Phase1 int // iterations spent reaching feasibility (0 on a warm start)
	// DualIters counts dual-simplex repair pivots (warm re-solves under
	// lp.Options.Dual); included in Iters.
	DualIters int
	// ColGenRounds and ColGenColumns describe the pricing loop when the
	// plan came from SolveOnlineColGen: restricted-master solve rounds and
	// x^t columns materialized beyond the seed. Zero for direct solves.
	ColGenRounds  int
	ColGenColumns int

	// Basis is the optimal simplex basis, reusable as lp.Options.WarmStart
	// when the next epoch's LP has the same shape. Nil when the solver
	// could not express one.
	Basis *lp.Basis
	// WarmStarted reports whether this solve reused a previous basis.
	WarmStarted bool
	// PricingTime is the wall-clock the solver spent pricing columns.
	PricingTime time.Duration
	// FactorTime, FtranTime and BtranTime split the basis-factorization
	// work: building/updating the sparse LU (or dense inverse) and the
	// forward/backward triangular solves.
	FactorTime time.Duration
	FtranTime  time.Duration
	BtranTime  time.Duration
	// PresolveTime is the wall-clock spent in presolve and postsolve;
	// zero when presolve found nothing to remove.
	PresolveTime time.Duration
	// Refactorizations counts from-scratch basis factorizations; FactorNNZ
	// is the nonzero count (fill-in included) of the final factorization.
	Refactorizations int
	FactorNNZ        int
	// PresolveRows and PresolveCols count what presolve removed.
	PresolveRows int
	PresolveCols int
}

// TotalMC returns the executed-work cost: placement + execution + runtime
// transfer, excluding the fake node's fictitious charges.
func (p *Plan) TotalMC() float64 { return p.PlacementMC + p.ExecMC + p.TransferMC }

// computeCosts fills the cost breakdown and deferred fractions.
func (p *Plan) computeCosts() {
	in := p.In
	p.DeferredFrac = make([]float64, len(in.Jobs))
	p.PlacementMC, p.ExecMC, p.TransferMC = 0, 0, 0
	switch {
	case p.XDFlows != nil:
		// All three accumulations below run in sorted key order: float
		// addition is not associative, so map-iteration order would give
		// the totals different low bits on every run.
		for i, d := range in.Data {
			for _, oj := range sortedKeys(p.XDFlows[i]) {
				p.PlacementMC += p.XDFlows[i][oj] * in.SSPerMBMC[oj[0]][oj[1]] * d.SizeMB
			}
		}
	case p.XD != nil:
		// Legacy weighted-origin pricing for plans without flows.
		for i, d := range in.Data {
			for j, f := range p.XD[i] {
				if f <= 1e-12 {
					continue
				}
				perMB := 0.0
				for _, o := range sortedOrigins(d) {
					perMB += d.Origin[o] * in.SSPerMBMC[o][j]
				}
				p.PlacementMC += f * perMB * d.SizeMB
			}
		}
	}
	for k, job := range in.Jobs {
		for _, lm := range sortedKeys(p.XT[k]) {
			f := p.XT[k][lm]
			l, store := lm[0], lm[1]
			if in.Machines[l].Fake {
				p.DeferredFrac[k] += f
				continue
			}
			p.ExecMC += f * job.CPUSec * in.Machines[l].PerECUSecMC
			if store != noStore && job.Data != NoData {
				p.TransferMC += f * in.MSPerMBMC[l][store] * in.Data[job.Data].SizeMB * job.accessFrac()
			}
		}
	}
}

// ScheduledFrac returns 1 − DeferredFrac[k], clamped to [0, 1].
func (p *Plan) ScheduledFrac(k int) float64 {
	f := 1 - p.DeferredFrac[k]
	return math.Min(1, math.Max(0, f))
}

// TaskAssignment is one rounded allocation: Tasks map tasks of job Job run
// on machine unit Machine reading store unit Store (noStore for jobs
// without input).
type TaskAssignment struct {
	Job     int
	Machine int
	Store   int
	Tasks   int
}

// DataMove is one rounded placement decision: Blocks 64 MB blocks of data
// item Data should end up on store unit Store.
type DataMove struct {
	Data   int
	Store  int
	Blocks int
}

// IntegralPlan is a Plan rounded to whole tasks and blocks (§IV of the
// paper: MapReduce admits fractional schedules in principle, but threads
// have a minimum viable size, so fractions are rounded to task
// granularity; the fractional optimum lower-bounds the integral one).
type IntegralPlan struct {
	Plan        *Plan
	Assignments []TaskAssignment
	Moves       []DataMove
	// Deferred[k] is the number of tasks of job k pushed back to the
	// queue (online model: the fake node's share).
	Deferred []int
}

// Round converts the fractional plan to an integral one. Each job's
// fractions are scaled to its task count with largest-remainder rounding,
// so per-job totals are preserved exactly; the fake node's share becomes
// deferred tasks. Data placements round to block counts the same way.
func (p *Plan) Round() *IntegralPlan {
	in := p.In
	ip := &IntegralPlan{Plan: p, Deferred: make([]int, len(in.Jobs))}
	for k, job := range in.Jobs {
		fr := cloneFracs(p.XT[k])
		normalizeFracs(fr)
		keys := sortedKeys(fr)
		fracs := make([]float64, len(keys))
		for idx, key := range keys {
			fracs[idx] = fr[key]
		}
		counts := LargestRemainder(fracs, job.NumTasks)
		for idx, key := range keys {
			n := counts[idx]
			if n == 0 {
				continue
			}
			l := key[0]
			if in.Machines[l].Fake {
				ip.Deferred[k] += n
				continue
			}
			ip.Assignments = append(ip.Assignments, TaskAssignment{
				Job: k, Machine: l, Store: key[1], Tasks: n,
			})
		}
	}
	if p.XD != nil {
		for i, d := range in.Data {
			blocks := numBlocks(d.SizeMB)
			if blocks == 0 {
				continue
			}
			fracs := append([]float64(nil), p.XD[i]...)
			normalizeSlice(fracs)
			counts := LargestRemainder(fracs, blocks)
			for j, n := range counts {
				if n == 0 {
					continue
				}
				ip.Moves = append(ip.Moves, DataMove{Data: i, Store: j, Blocks: n})
			}
		}
	}
	return ip
}

// LargestRemainder apportions total units over the given nonnegative
// fractions (which should sum to ~1): each bucket gets floor(frac·total),
// and the leftover units go to the largest remainders, ties broken by
// lower index. The result always sums to total.
func LargestRemainder(fracs []float64, total int) []int {
	counts := make([]int, len(fracs))
	if total <= 0 || len(fracs) == 0 {
		return counts
	}
	type rem struct {
		idx int
		r   float64
	}
	rems := make([]rem, len(fracs))
	assigned := 0
	for i, f := range fracs {
		if f < 0 {
			f = 0
		}
		exact := f * float64(total)
		counts[i] = int(exact)
		assigned += counts[i]
		rems[i] = rem{idx: i, r: exact - float64(counts[i])}
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].r != rems[b].r {
			return rems[a].r > rems[b].r
		}
		return rems[a].idx < rems[b].idx
	})
	for i := 0; assigned < total; i++ {
		counts[rems[i%len(rems)].idx]++
		assigned++
	}
	// Guard against over-assignment from pathological inputs (fracs
	// summing well above 1): trim from the largest buckets.
	for assigned > total {
		maxI := 0
		for i := range counts {
			if counts[i] > counts[maxI] {
				maxI = i
			}
		}
		counts[maxI]--
		assigned--
	}
	return counts
}

// CostMC evaluates the integral plan's cost (millicents) by pricing each
// rounded assignment and move: the integral analogue of Plan.TotalMC.
func (ip *IntegralPlan) CostMC() float64 {
	in := ip.Plan.In
	total := 0.0
	for _, a := range ip.Assignments {
		job := in.Jobs[a.Job]
		perTaskCPU := job.CPUSec / float64(job.NumTasks)
		total += float64(a.Tasks) * perTaskCPU * in.Machines[a.Machine].PerECUSecMC
		if a.Store != noStore && job.Data != NoData {
			perTaskMB := in.Data[job.Data].SizeMB * job.accessFrac() / float64(job.NumTasks)
			total += float64(a.Tasks) * perTaskMB * in.MSPerMBMC[a.Machine][a.Store]
		}
	}
	for _, mv := range ip.Moves {
		d := in.Data[mv.Data]
		blocks := numBlocks(d.SizeMB)
		perBlockMB := d.SizeMB / float64(blocks)
		perMB := 0.0
		for _, o := range sortedOrigins(d) {
			perMB += d.Origin[o] * in.SSPerMBMC[o][mv.Store]
		}
		total += float64(mv.Blocks) * perBlockMB * perMB
	}
	return total
}

func cloneFracs(in map[[2]int]float64) map[[2]int]float64 {
	out := make(map[[2]int]float64, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

func sortedKeys(m map[[2]int]float64) [][2]int {
	keys := make([][2]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	return keys
}

func normalizeSlice(fr []float64) {
	sum := 0.0
	for _, f := range fr {
		sum += f
	}
	if sum <= 0 {
		return
	}
	for i := range fr {
		fr[i] /= sum
	}
}

func numBlocks(sizeMB float64) int {
	if sizeMB <= 0 {
		return 0
	}
	return int(math.Ceil(sizeMB / 64))
}

// String summarises the plan.
func (p *Plan) String() string {
	return fmt.Sprintf("%s plan: %.1f mc (placement %.1f + exec %.1f + transfer %.1f), %d iters",
		p.Kind, p.TotalMC(), p.PlacementMC, p.ExecMC, p.TransferMC, p.Iters)
}
