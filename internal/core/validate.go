package core

import (
	"fmt"
	"math"
)

// Validate checks that a fractional plan satisfies the model's
// constraints: job coverage (2)/(10)/(20), machine capacity (4)/(12)/(23),
// data placement (9)/(19), store capacity (11)/(22) and data existence
// (3)/(13)/(24), all to within tol. It is used by the test suite as an
// independent referee for solver output, and costs O(vars).
func (p *Plan) Validate(tol float64) error {
	in := p.In

	// Job coverage: every job fully assigned (including the fake node).
	for k := range in.Jobs {
		sum := 0.0
		for _, f := range p.XT[k] {
			if f < -tol || f > 1+tol {
				return fmt.Errorf("core: job %d has fraction %g outside [0,1]", k, f)
			}
			sum += f
		}
		if sum < 1-1e-6 {
			return fmt.Errorf("core: job %d covered only %g", k, sum)
		}
	}

	// Machine capacity (real machines only).
	for l, mach := range in.Machines {
		if mach.Fake {
			continue
		}
		used := 0.0
		for k, job := range in.Jobs {
			for lm, f := range p.XT[k] {
				if lm[0] == l {
					used += f * job.CPUSec
				}
			}
		}
		cap := mach.ECU * in.HorizonOf(l)
		if used > cap+tol*(1+cap) {
			return fmt.Errorf("core: machine %d uses %g of %g ECU-seconds", l, used, cap)
		}
	}

	if p.XD == nil {
		return nil
	}

	// Placement: each data item fully placed.
	for i := range in.Data {
		sum := 0.0
		for j, f := range p.XD[i] {
			if f < -tol {
				return fmt.Errorf("core: data %d store %d has negative fraction %g", i, j, f)
			}
			sum += f
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("core: data %d placed %g times", i, sum)
		}
	}

	// Store capacity.
	for j, s := range in.Stores {
		used := 0.0
		for i, d := range in.Data {
			used += p.XD[i][j] * d.SizeMB
		}
		if used > s.CapacityMB+tol*(1+s.CapacityMB) {
			return fmt.Errorf("core: store %d holds %g of %g MB", j, used, s.CapacityMB)
		}
	}

	// Existence: tasks read only data that is placed there.
	for k, job := range in.Jobs {
		if job.Data == NoData {
			continue
		}
		perStore := make(map[int]float64)
		for lm, f := range p.XT[k] {
			if lm[1] != noStore && !in.Machines[lm[0]].Fake {
				perStore[lm[1]] += f
			}
		}
		for store, f := range perStore {
			if f > p.XD[job.Data][store]+1e-6 {
				return fmt.Errorf("core: job %d reads %g of data %d from store %d holding %g",
					k, f, job.Data, store, p.XD[job.Data][store])
			}
		}
	}

	// Flow consistency: flows decompose XD and respect origins.
	if p.XDFlows != nil {
		for i, d := range in.Data {
			outflow := make(map[int]float64)
			for oj, f := range p.XDFlows[i] {
				if f < -tol {
					return fmt.Errorf("core: data %d negative flow %g", i, f)
				}
				outflow[oj[0]] += f
			}
			for o, f := range outflow {
				if math.Abs(f-d.Origin[o]) > 1e-6 {
					return fmt.Errorf("core: data %d origin %d ships %g of %g", i, o, f, d.Origin[o])
				}
			}
		}
	}
	return nil
}
