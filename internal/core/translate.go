package core

import (
	"lips/internal/cluster"
	"lips/internal/lp"
)

// olKey addresses one variable or constraint of the online model's
// deterministic layout (see onlineVarKeys / onlineConKeys).
type olKey struct {
	kind byte
	a, b int
}

// onlineVarKeys enumerates the variables of buildCo's layout in
// construction order: placement flows xd[i,o,j] (data items ascending,
// origins sorted, stores ascending), then task fractions xt[k,l,m] (jobs
// ascending, machines ascending, stores ascending; noStore for jobs
// without input). Machine indices are encoded in b, store/origin context
// packed via the key fields.
func onlineVarKeys(in *Instance) []olKey {
	var keys []olKey
	for i, d := range in.Data {
		for _, o := range sortedOrigins(d) {
			for j := range in.Stores {
				keys = append(keys, olKey{kind: 0, a: i*len(in.Stores) + j, b: o})
			}
		}
	}
	for k, job := range in.Jobs {
		for l := range in.Machines {
			if job.Data == NoData {
				keys = append(keys, olKey{kind: 1, a: k*(len(in.Stores)+1) + len(in.Stores), b: l})
				continue
			}
			for store := range in.Stores {
				keys = append(keys, olKey{kind: 1, a: k*(len(in.Stores)+1) + store, b: l})
			}
		}
	}
	return keys
}

// onlineConKeys enumerates buildCo's constraint rows in construction
// order: job coverage, placement, store capacity, machine capacity
// (non-fake machines), data existence, and (online) transfer-time rows.
func onlineConKeys(in *Instance) []olKey {
	var keys []olKey
	for k := range in.Jobs {
		keys = append(keys, olKey{kind: 2, a: k})
	}
	for i, d := range in.Data {
		for _, o := range sortedOrigins(d) {
			keys = append(keys, olKey{kind: 3, a: i, b: o})
		}
	}
	for j := range in.Stores {
		keys = append(keys, olKey{kind: 4, a: j})
	}
	for l, mach := range in.Machines {
		if !mach.Fake {
			keys = append(keys, olKey{kind: 5, b: l})
		}
	}
	for k, job := range in.Jobs {
		if job.Data == NoData {
			continue
		}
		for store := range in.Stores {
			keys = append(keys, olKey{kind: 6, a: k*len(in.Stores) + store})
		}
	}
	for k, job := range in.Jobs {
		if job.Data == NoData {
			continue
		}
		for l, mach := range in.Machines {
			if !mach.Fake {
				keys = append(keys, olKey{kind: 7, a: k, b: l})
			}
		}
	}
	return keys
}

// machineMap matches old machine units to new ones by Name (the fake node
// by its Fake flag), returning old index → new index or -1 for units that
// left. New machines with no old counterpart (a recovery) need no entry:
// their columns enter the translated basis at their default bounds.
func machineMap(oldIn, newIn *Instance) []int {
	byName := make(map[string]int, len(newIn.Machines))
	fake := -1
	for l, m := range newIn.Machines {
		if m.Fake {
			fake = l
			continue
		}
		byName[m.Name] = l
	}
	mm := make([]int, len(oldIn.Machines))
	for l, m := range oldIn.Machines {
		if m.Fake {
			mm[l] = fake
			continue
		}
		if nl, ok := byName[m.Name]; ok {
			mm[l] = nl
		} else {
			mm[l] = -1
		}
	}
	return mm
}

// sameEpochShape reports whether two instances agree on everything except
// machines: same jobs (demand and data binding), data items (size and
// origin set) and stores — the precondition for translating a basis
// across machine churn only.
func sameEpochShape(oldIn, newIn *Instance) bool {
	if len(oldIn.Jobs) != len(newIn.Jobs) || len(oldIn.Data) != len(newIn.Data) ||
		len(oldIn.Stores) != len(newIn.Stores) {
		return false
	}
	for k := range oldIn.Jobs {
		if oldIn.Jobs[k].Data != newIn.Jobs[k].Data {
			return false
		}
	}
	for i := range oldIn.Data {
		if len(oldIn.Data[i].Origin) != len(newIn.Data[i].Origin) {
			return false
		}
		for o := range oldIn.Data[i].Origin {
			if _, ok := newIn.Data[i].Origin[o]; !ok {
				return false
			}
		}
	}
	return true
}

// TranslateOnlineBasis carries an optimal basis of oldIn's online model
// (BuildOnlineModel layout) onto newIn's, where the two instances differ
// only in their machine units — the epoch-to-epoch churn FilterMachines
// produces. Machines are matched by name; columns and rows of departed
// machines are dropped (lp.TranslateBasis repairs their rows with slacks)
// and a returning machine's columns enter at their default bounds. Returns
// nil when the instances' job/data/store shape diverged or a column
// collision makes the basis unrepairable — the caller cold-starts, exactly
// as it would have without a basis.
func TranslateOnlineBasis(b *lp.Basis, oldIn, newIn *Instance) *lp.Basis {
	if b == nil || !sameEpochShape(oldIn, newIn) {
		return nil
	}
	mm := machineMap(oldIn, newIn)
	oldVars, oldCons := onlineVarKeys(oldIn), onlineConKeys(oldIn)
	if b.NumVars != len(oldVars) || b.NumCons != len(oldCons) {
		return nil
	}
	newVars, newCons := onlineVarKeys(newIn), onlineConKeys(newIn)
	varIdx := make(map[olKey]int, len(newVars))
	for idx, key := range newVars {
		varIdx[key] = idx
	}
	conIdx := make(map[olKey]int, len(newCons))
	for idx, key := range newCons {
		conIdx[key] = idx
	}
	remap := func(key olKey) (olKey, bool) {
		switch key.kind {
		case 1, 5, 7: // machine-indexed: xt columns, cpu and xfer rows
			nl := mm[key.b]
			if nl < 0 {
				return olKey{}, false
			}
			key.b = nl
		}
		return key, true
	}
	varMap := make([]int, len(oldVars))
	for idx, key := range oldVars {
		varMap[idx] = -1
		if nk, ok := remap(key); ok {
			if nidx, ok := varIdx[nk]; ok {
				varMap[idx] = nidx
			}
		}
	}
	conMap := make([]int, len(oldCons))
	for idx, key := range oldCons {
		conMap[idx] = -1
		if nk, ok := remap(key); ok {
			if nidx, ok := conIdx[nk]; ok {
				conMap[idx] = nidx
			}
		}
	}
	return lp.TranslateBasis(b, varMap, conMap, len(newVars), len(newCons))
}

// FilterMachinesIndex is FilterMachines plus the index mapping the filter
// induced: oldToNew[l] is machine l's new index, or -1 when its unit was
// removed. An unchanged filter returns (false, identity).
func (in *Instance) FilterMachinesIndex(alive func(n cluster.NodeID) bool) (changed bool, oldToNew []int) {
	old := make([]string, len(in.Machines))
	fakeAt := -1
	for l, m := range in.Machines {
		old[l] = m.Name
		if m.Fake {
			fakeAt = l
		}
	}
	changed = in.FilterMachines(alive)
	byName := make(map[string]int, len(in.Machines))
	newFake := -1
	for l, m := range in.Machines {
		if m.Fake {
			newFake = l
			continue
		}
		byName[m.Name] = l
	}
	oldToNew = make([]int, len(old))
	for l, name := range old {
		if l == fakeAt {
			oldToNew[l] = newFake
			continue
		}
		if nl, ok := byName[name]; ok {
			oldToNew[l] = nl
		} else {
			oldToNew[l] = -1
		}
	}
	return changed, oldToNew
}
