package core

import (
	"math"
	"math/rand"
	"testing"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/lp"
	"lips/internal/workload"
)

// twoNodeInstance builds the Fig. 1 break-even scenario: an expensive node
// A holding the data and a cheap node B one zone away. transferMC is the
// inter-zone price in millicents per MB; tcp is the job's CPU intensity in
// ECU-seconds per MB of a 64 MB input.
func twoNodeInstance(t *testing.T, tcp, transferMC float64) *Instance {
	t.Helper()
	b := cluster.NewBuilder("za", "zb")
	b.AddNode("za", "expensive", 1, 2, cost.Millicents(5), 100*1024)
	b.AddNode("zb", "cheap", 1, 2, cost.Millicents(1), 100*1024)
	b.SetZonePairPerGB("za", "zb", cost.Millicents(transferMC*1024))
	c := b.Build()

	wb := workload.NewBuilder()
	arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: tcp * 64}
	wb.AddInputJob("j", "u", arch, 64, 0, 0)
	w := wb.Build()

	in, err := NewInstance(c, w.Jobs, w.Objects, w.Placement(), InstanceOptions{Horizon: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func solvePlan(t *testing.T, m *Model) *Plan {
	t.Helper()
	p, err := m.Solve(lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBreakEvenMoveData(t *testing.T) {
	// tcp=1, transfer=2 mc/MB: moving to the cheap node wins.
	// Stay: 64·1·5 = 320 mc. Move: 64·1·1 + 64·2 = 192 mc.
	in := twoNodeInstance(t, 1, 2)
	m, err := BuildCoScheduleModel(in)
	if err != nil {
		t.Fatal(err)
	}
	p := solvePlan(t, m)
	if math.Abs(p.TotalMC()-192) > 1 {
		t.Errorf("TotalMC = %g, want 192 (move to cheap node)", p.TotalMC())
	}
	if p.ExecMC > 65 {
		t.Errorf("ExecMC = %g: job did not move to the cheap node", p.ExecMC)
	}
}

func TestBreakEvenStayLocal(t *testing.T) {
	// tcp=1, transfer=10 mc/MB: staying on the expensive node wins.
	// Stay: 320 mc. Move: 64 + 640 = 704 mc.
	in := twoNodeInstance(t, 1, 10)
	m, err := BuildCoScheduleModel(in)
	if err != nil {
		t.Fatal(err)
	}
	p := solvePlan(t, m)
	if math.Abs(p.TotalMC()-320) > 1 {
		t.Errorf("TotalMC = %g, want 320 (stay local)", p.TotalMC())
	}
	if p.TransferMC+p.PlacementMC > 1 {
		t.Errorf("transfer %g + placement %g should be ~0", p.TransferMC, p.PlacementMC)
	}
}

func TestBreakEvenExact(t *testing.T) {
	// At t = 4c both choices cost the same (Fig. 1's break-even point):
	// 64c·5 = 64c·1 + 64·4c. Any optimum must cost 320c.
	in := twoNodeInstance(t, 1, 4)
	m, err := BuildCoScheduleModel(in)
	if err != nil {
		t.Fatal(err)
	}
	p := solvePlan(t, m)
	if math.Abs(p.TotalMC()-320) > 1 {
		t.Errorf("TotalMC = %g, want 320 at break-even", p.TotalMC())
	}
}

func TestSimpleTaskMatchesGreedyWithAbundantCapacity(t *testing.T) {
	// Paper §IV: with sufficient capacity the greedy algorithm is
	// optimal, so the LP must agree with it.
	in := twoNodeInstance(t, 2, 3)
	xd := PlacementFractions(in)
	m, err := BuildSimpleTaskModel(in, xd)
	if err != nil {
		t.Fatal(err)
	}
	lpPlan := solvePlan(t, m)
	greedy, err := GreedyPlan(in, xd)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lpPlan.TotalMC()-greedy.TotalMC()) > 1e-6*(1+greedy.TotalMC()) {
		t.Errorf("LP %g != greedy %g with abundant capacity", lpPlan.TotalMC(), greedy.TotalMC())
	}
}

func TestSimpleTaskBeatsGreedyUnderContention(t *testing.T) {
	// Two jobs, but the cheap node can only hold one within the horizon.
	// Greedy sends both to the cheap node (infeasible in reality); the
	// LP respects capacity and splits.
	b := cluster.NewBuilder("za")
	b.AddNode("za", "cheap", 1, 2, cost.Millicents(1), 100*1024)
	b.AddNode("za", "costly", 1, 2, cost.Millicents(5), 100*1024)
	c := b.Build()
	wb := workload.NewBuilder()
	arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 64}
	wb.AddInputJob("j1", "u", arch, 64, 0, 0)
	wb.AddInputJob("j2", "u", arch, 64, 1, 0)
	w := wb.Build()
	// Each job needs 64 ECU-sec; horizon admits exactly one job per node.
	in, err := NewInstance(c, w.Jobs, w.Objects, w.Placement(), InstanceOptions{Horizon: 64})
	if err != nil {
		t.Fatal(err)
	}
	xd := PlacementFractions(in)
	m, err := BuildSimpleTaskModel(in, xd)
	if err != nil {
		t.Fatal(err)
	}
	plan := solvePlan(t, m)
	// One job on each node: 64·1 + 64·5 = 384 mc (both stores are free
	// to read intra-zone).
	if math.Abs(plan.ExecMC-384) > 1 {
		t.Errorf("ExecMC = %g, want 384 under contention", plan.ExecMC)
	}
	// Capacity respected per machine.
	for l := range in.Machines {
		used := 0.0
		for k := range in.Jobs {
			for lm, f := range plan.XT[k] {
				if lm[0] == l {
					used += f * in.Jobs[k].CPUSec
				}
			}
		}
		if used > in.Machines[l].ECU*in.Horizon+1e-6 {
			t.Errorf("machine %d used %g > capacity %g", l, used, in.Machines[l].ECU*in.Horizon)
		}
	}
}

func TestCoScheduleNeverWorseThanSimple(t *testing.T) {
	// Extra freedom (data movement) can only reduce cost.
	for _, transfer := range []float64{0.5, 2, 8, 30} {
		in := twoNodeInstance(t, 1.5, transfer)
		xd := PlacementFractions(in)
		ms, err := BuildSimpleTaskModel(in, xd)
		if err != nil {
			t.Fatal(err)
		}
		simple := solvePlan(t, ms)
		mc, err := BuildCoScheduleModel(in)
		if err != nil {
			t.Fatal(err)
		}
		co := solvePlan(t, mc)
		if co.TotalMC() > simple.TotalMC()+1e-6*(1+simple.TotalMC()) {
			t.Errorf("transfer %g: co %g > simple %g", transfer, co.TotalMC(), simple.TotalMC())
		}
	}
}

func TestOnlineOverflowsToFakeNode(t *testing.T) {
	// Demand exceeds the epoch's capacity: the LP must stay feasible and
	// park the overflow on F.
	b := cluster.NewBuilder("za")
	b.AddNode("za", "only", 1, 2, cost.Millicents(1), 100*1024)
	c := b.Build()
	wb := workload.NewBuilder()
	arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 64}
	wb.AddInputJob("j1", "u", arch, 128, 0, 0) // 128 ECU-sec
	wb.AddInputJob("j2", "u", arch, 128, 0, 0) // 128 ECU-sec
	w := wb.Build()
	in, err := NewInstance(c, w.Jobs, w.Objects, w.Placement(), InstanceOptions{Horizon: 128})
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildOnlineModel(in)
	if err != nil {
		t.Fatal(err)
	}
	p := solvePlan(t, m)
	deferred := 0.0
	for k := range in.Jobs {
		deferred += p.DeferredFrac[k] * in.Jobs[k].CPUSec
	}
	// 256 ECU-sec demanded, 128 available: half must defer.
	if math.Abs(deferred-128) > 1 {
		t.Errorf("deferred %g ECU-sec, want 128", deferred)
	}
	// The fake node's fictitious price must not appear in the cost.
	if p.TotalMC() > 256*1+64+1 {
		t.Errorf("TotalMC %g includes fake-node charges", p.TotalMC())
	}
}

func TestOnlineFeasibleWithoutOverflow(t *testing.T) {
	in := twoNodeInstance(t, 1, 2)
	m, err := BuildOnlineModel(in)
	if err != nil {
		t.Fatal(err)
	}
	p := solvePlan(t, m)
	for k, f := range p.DeferredFrac {
		if f > 1e-6 {
			t.Errorf("job %d deferred %g with abundant capacity", k, f)
		}
	}
	if math.Abs(p.TotalMC()-192) > 1 {
		t.Errorf("TotalMC = %g, want 192", p.TotalMC())
	}
}

func TestOnlineTransferTimeConstraint(t *testing.T) {
	// A huge input and a tiny epoch: constraint (21) must forbid pulling
	// the data cross-zone within the epoch, forcing deferral even though
	// raw CPU capacity would suffice on the remote cheap node.
	b := cluster.NewBuilder("za", "zb")
	b.AddNode("za", "costly", 1, 2, cost.Millicents(5), 1e6)
	b.AddNode("zb", "cheap", 100, 2, cost.Millicents(1), 1e6)
	bw := cluster.DefaultBandwidths()
	bw.InterZoneMBps = 1 // 1 MB/s across zones
	b.SetBandwidths(bw)
	c := b.Build()
	wb := workload.NewBuilder()
	arch := workload.Archetype{Name: "syn", Property: workload.Mixed, CPUSecPerBlock: 0.64}
	wb.AddInputJob("big", "u", arch, 10*1024, 0, 0) // 10 GB, 102.4 ECU-sec
	w := wb.Build()
	in, err := NewInstance(c, w.Jobs, w.Objects, w.Placement(), InstanceOptions{Horizon: 100})
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildOnlineModel(in)
	if err != nil {
		t.Fatal(err)
	}
	p := solvePlan(t, m)
	// Reading from store za to machine zb at 1 MB/s allows at most 100 MB
	// of the 10 GB this epoch, i.e. less than 1% of the job there. The
	// local expensive node can take ~97.6% (100 ECU-sec of 102.4).
	remoteFrac := 0.0
	for lm, f := range p.XT[0] {
		if lm[0] == 1 && lm[1] == 0 {
			remoteFrac += f
		}
	}
	if remoteFrac > 0.011 {
		t.Errorf("remote fraction %g violates the transfer-time constraint", remoteFrac)
	}
}

func TestInstanceAggregation(t *testing.T) {
	c := cluster.Paper100()
	rng := rand.New(rand.NewSource(1))
	stores := make([]cluster.StoreID, len(c.Stores))
	for i := range stores {
		stores[i] = cluster.StoreID(i)
	}
	w := workload.PaperJobSet(rng, stores)
	in, err := NewInstance(c, w.Jobs, w.Objects, w.Placement(), InstanceOptions{Aggregate: true, Horizon: 3600})
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Machines) != 9 || len(in.Stores) != 9 {
		t.Fatalf("machines=%d stores=%d, want 9/9", len(in.Machines), len(in.Stores))
	}
	if got := in.TotalSupplyCPUSec(); math.Abs(got-c.TotalECU()*3600) > 1e-6 {
		t.Errorf("supply %g != cluster ECU · horizon", got)
	}
	// CoMachine must point at the machine with the same group name.
	for m, l := range in.CoMachine {
		if in.Machines[l].Name != in.Stores[m].Name {
			t.Errorf("store %d co-machine mismatch: %s vs %s", m, in.Stores[m].Name, in.Machines[l].Name)
		}
	}
	// Origins must sum to 1 per object.
	for i, d := range in.Data {
		sum := 0.0
		for _, f := range d.Origin {
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("data %d origins sum to %g", i, sum)
		}
	}
}

func TestInstanceWithoutAggregation(t *testing.T) {
	c := cluster.Paper20(0.5)
	rng := rand.New(rand.NewSource(1))
	w := workload.PaperJobSet(rng, []cluster.StoreID{0, 1, 2})
	in, err := NewInstance(c, w.Jobs, w.Objects, w.Placement(), InstanceOptions{Horizon: 3600})
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Machines) != 20 || len(in.Stores) != 20 {
		t.Fatalf("machines=%d stores=%d, want 20/20", len(in.Machines), len(in.Stores))
	}
	for m, l := range in.CoMachine {
		if l != m {
			t.Errorf("store %d co-machine = %d", m, l)
		}
	}
}

func TestLocalOnlyPlanIsLocal(t *testing.T) {
	in := twoNodeInstance(t, 1, 2)
	xd := PlacementFractions(in)
	p, err := LocalOnlyPlan(in, xd)
	if err != nil {
		t.Fatal(err)
	}
	if p.TransferMC > 1e-9 || p.PlacementMC > 1e-9 {
		t.Errorf("local-only plan paid for transfers: %g/%g", p.TransferMC, p.PlacementMC)
	}
	// Data sits on the expensive node: exec must cost 320.
	if math.Abs(p.ExecMC-320) > 1 {
		t.Errorf("ExecMC = %g, want 320", p.ExecMC)
	}
}

func TestModelSizes(t *testing.T) {
	in := twoNodeInstance(t, 1, 2)
	m, err := BuildCoScheduleModel(in)
	if err != nil {
		t.Fatal(err)
	}
	// 1 job × 2 machines × 2 stores xt + 1 data × 2 stores xd = 6 vars.
	if m.NumVars() != 6 {
		t.Errorf("NumVars = %d, want 6", m.NumVars())
	}
	// place(1) + job(1) + cap(2) + cpu(2) + exist(1·2) = 8 rows.
	if m.NumCons() != 8 {
		t.Errorf("NumCons = %d, want 8", m.NumCons())
	}
}

func TestValidationErrors(t *testing.T) {
	in := twoNodeInstance(t, 1, 2)
	bad := *in
	bad.Horizon = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected horizon error")
	}
	bad2 := *in
	bad2.Jobs = append([]JobItem(nil), in.Jobs...)
	bad2.Jobs[0].Data = 99
	if err := bad2.Validate(); err == nil {
		t.Error("expected data range error")
	}
	if _, err := BuildSimpleTaskModel(in, [][]float64{}); err == nil {
		t.Error("expected xd shape error")
	}
}

func TestKindString(t *testing.T) {
	if SimpleTask.String() != "simple-task" || CoSchedule.String() != "co-schedule" || Online.String() != "online" {
		t.Error("kind strings wrong")
	}
}

func TestMachineUptimeLimitsCapacity(t *testing.T) {
	// The cheap node is leaving soon (uptime 32 s of a 1e6 horizon):
	// only half of the 64 ECU-sec job fits there, the rest must run on
	// the expensive node despite the price.
	in := twoNodeInstance(t, 1, 0.1)
	in.Machines[1].Uptime = 32 // cheap node: 1 ECU × 32 s = 32 ECU-sec
	m, err := BuildCoScheduleModel(in)
	if err != nil {
		t.Fatal(err)
	}
	p := solvePlan(t, m)
	if err := p.Validate(1e-7); err != nil {
		t.Fatal(err)
	}
	cheapFrac := 0.0
	for lm, f := range p.XT[0] {
		if lm[0] == 1 {
			cheapFrac += f
		}
	}
	if math.Abs(cheapFrac-0.5) > 1e-6 {
		t.Errorf("cheap fraction = %g, want 0.5 under the uptime cap", cheapFrac)
	}
	if got := in.TotalSupplyCPUSec(); math.Abs(got-(1e6+32)) > 1e-6 {
		t.Errorf("supply = %g", got)
	}
}
