package core

import (
	"math/rand"
	"os"
	"testing"

	"lips/internal/lp"
)

// epoch10kInstance is one epoch of a 10k-machine cluster: 40 jobs, 12
// stores, machines drawn from 6 price classes. The fully materialized
// online LP over it would carry ~5M x^t columns and ~400k transfer rows —
// the cross product the restricted master exists to avoid.
func epoch10kInstance() *Instance {
	rng := rand.New(rand.NewSource(777))
	in := synthInstance(40, 10000, 12, 6, false, rng)
	fillSS(in, rng)
	return in
}

// BenchmarkEpoch10k measures the column-generation epoch solve at
// 10k-machine scale: cold builds and solves the restricted master from
// scratch; warm reprices a standing master with per-class spot drift and
// re-solves from the previous basis via dual-simplex repair. The fully
// materialized comparison solve is gated behind LIPS_BENCH_FULL10K=1 —
// at this scale plain model construction allocates millions of columns
// and is documented (DESIGN.md §12) as infeasible for routine CI.
func BenchmarkEpoch10k(b *testing.B) {
	base := epoch10kInstance()

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			plan, st, err := SolveOnlineColGen(base.clone(), ColGenOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(st.Columns), "columns")
				b.ReportMetric(float64(st.Rounds), "rounds")
				_ = plan
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		cg, err := NewOnlineColGen(base.clone(), ColGenOptions{})
		if err != nil {
			b.Fatal(err)
		}
		plan, _, err := cg.Solve(ColGenOptions{})
		if err != nil {
			b.Fatal(err)
		}
		drift := rand.New(rand.NewSource(42))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			// Per-class spot drift, mirroring PriceMultiplier: every
			// machine of a type moves together, so buckets stay intact.
			next := cg.m.In.clone()
			mult := map[float64]float64{}
			for l := range next.Machines {
				if next.Machines[l].Fake {
					continue
				}
				p := next.Machines[l].PerECUSecMC
				if _, ok := mult[p]; !ok {
					mult[p] = 0.92 + 0.16*drift.Float64()
				}
				next.Machines[l].PerECUSecMC = p * mult[p]
			}
			b.StartTimer()
			if err := cg.Reprice(next); err != nil {
				b.Fatal(err)
			}
			warm, st, err := cg.Resolve(ColGenOptions{LP: lp.Options{Dual: true}}, plan.Basis)
			if err != nil {
				b.Fatal(err)
			}
			plan = warm
			if i == 0 {
				b.ReportMetric(float64(st.DualIters), "dualpivots")
			}
		}
	})

	if os.Getenv("LIPS_BENCH_FULL10K") != "1" {
		return
	}
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			model, err := BuildOnlineModel(base.clone())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := model.Solve(lp.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
