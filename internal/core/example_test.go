package core_test

import (
	"fmt"

	"lips/internal/cluster"
	"lips/internal/core"
	"lips/internal/cost"
	"lips/internal/lp"
	"lips/internal/workload"
)

// The paper's Figure 1 scenario as code: one job whose data sits on an
// expensive node, with a cheap node one zone away. The co-scheduling LP
// decides whether moving the data pays for itself.
func ExampleBuildCoScheduleModel() {
	b := cluster.NewBuilder("zone-a", "zone-b")
	b.AddNode("zone-a", "expensive", 1, 2, cost.Millicents(5), 1e6)
	b.AddNode("zone-b", "cheap", 1, 2, cost.Millicents(1), 1e6)
	b.SetZonePairPerGB("zone-a", "zone-b", cost.Millicents(2*1024)) // 2 mc/MB
	c := b.Build()

	wb := workload.NewBuilder()
	grepLike := workload.Archetype{Name: "scan", Property: workload.Mixed, CPUSecPerBlock: 64}
	wb.AddInputJob("scan-logs", "alice", grepLike, 64, 0, 0) // 64 MB on the expensive node
	w := wb.Build()

	in, err := core.NewInstance(c, w.Jobs, w.Objects, w.Placement(), core.InstanceOptions{Horizon: 3600})
	if err != nil {
		panic(err)
	}
	m, err := core.BuildCoScheduleModel(in)
	if err != nil {
		panic(err)
	}
	plan, err := m.Solve(lp.Options{})
	if err != nil {
		panic(err)
	}
	// Staying costs 64·5 = 320 mc; moving costs 64·1 + 64·2 = 192 mc.
	fmt.Printf("optimal cost: %.0f millicents (exec %.0f + transfer %.0f)\n",
		plan.TotalMC(), plan.ExecMC, plan.TransferMC+plan.PlacementMC)
	// Output: optimal cost: 192 millicents (exec 64 + transfer 128)
}
