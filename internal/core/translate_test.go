package core

import (
	"math/rand"
	"testing"

	"lips/internal/cluster"
	"lips/internal/lp"
)

// nodedInstance is synthInstance with one concrete node behind every
// machine, so FilterMachines has something to kill.
func nodedInstance(jobs, machines, stores, classes int, rng *rand.Rand) *Instance {
	in := synthInstance(jobs, machines, stores, classes, false, rng)
	fillSS(in, rng)
	for l := range in.Machines {
		in.Machines[l].Nodes = []cluster.NodeID{cluster.NodeID(l)}
	}
	return in
}

func solveOnline(t *testing.T, in *Instance, opts lp.Options) (*Instance, *Plan) {
	t.Helper()
	model, err := BuildOnlineModel(in)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := model.Solve(opts)
	if err != nil {
		t.Fatal(err)
	}
	return in, plan
}

// TestTranslateOnlineBasisChurn drives the epoch churn sequence the
// scheduler sees — drop machines, solve, recover, solve — carrying the
// basis across each step with TranslateOnlineBasis, fuzzed over seeds.
// The warm solves must match cold solves of the same instance, and the LP
// objective must move monotonically with capacity: up when machines leave,
// back down when they return.
func TestTranslateOnlineBasisChurn(t *testing.T) {
	sawWarm := false
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		base := nodedInstance(4+rng.Intn(5), 12+rng.Intn(10), 2+rng.Intn(3), 3, rng)

		in0, plan0 := solveOnline(t, base.clone(), lp.Options{})
		if plan0.Basis == nil {
			continue
		}

		// Drop: a random fifth of the nodes dies.
		dead := map[cluster.NodeID]bool{}
		for l := range base.Machines {
			if rng.Intn(5) == 0 {
				dead[cluster.NodeID(l)] = true
			}
		}
		alive := func(n cluster.NodeID) bool { return !dead[n] }
		in1 := base.clone()
		in1.FilterMachines(alive)
		coldIn1 := in1.clone()
		m1, err := BuildOnlineModel(in1)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tb := TranslateOnlineBasis(plan0.Basis, in0, in1)
		warmOpts := lp.Options{WarmStart: tb, Dual: true, Presolve: lp.PresolveOff}
		if tb == nil {
			warmOpts = lp.Options{}
		}
		plan1, err := m1.Solve(warmOpts)
		if err != nil {
			t.Fatalf("seed %d: drop solve: %v", seed, err)
		}
		if plan1.WarmStarted {
			sawWarm = true
		}
		_, cold1 := solveOnline(t, coldIn1, lp.Options{})
		if d := relDiffF(plan1.ObjectiveMC, cold1.ObjectiveMC); d > 1e-6 {
			t.Errorf("seed %d: warm drop objective %g, cold %g (rel %g)", seed, plan1.ObjectiveMC, cold1.ObjectiveMC, d)
		}
		if plan1.ObjectiveMC < plan0.ObjectiveMC-1e-6*(1+plan0.ObjectiveMC) {
			t.Errorf("seed %d: objective fell from %g to %g after losing machines", seed, plan0.ObjectiveMC, plan1.ObjectiveMC)
		}

		// Recover: everything comes back; the instance is in0's shape again.
		in2 := base.clone()
		m2, err := BuildOnlineModel(in2)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tb2 := TranslateOnlineBasis(plan1.Basis, in1, in2)
		warmOpts = lp.Options{WarmStart: tb2, Dual: true, Presolve: lp.PresolveOff}
		if tb2 == nil {
			warmOpts = lp.Options{}
		}
		plan2, err := m2.Solve(warmOpts)
		if err != nil {
			t.Fatalf("seed %d: recover solve: %v", seed, err)
		}
		if d := relDiffF(plan2.ObjectiveMC, plan0.ObjectiveMC); d > 1e-6 {
			t.Errorf("seed %d: recovered objective %g, original %g (rel %g)", seed, plan2.ObjectiveMC, plan0.ObjectiveMC, d)
		}
		if plan2.ObjectiveMC > plan1.ObjectiveMC+1e-6*(1+plan1.ObjectiveMC) {
			t.Errorf("seed %d: objective rose from %g to %g after recovering machines", seed, plan1.ObjectiveMC, plan2.ObjectiveMC)
		}
	}
	if !sawWarm {
		t.Error("no churn step ever warm-started; translation never produced a usable basis")
	}
}

// TestTranslateOnlineBasisShapeGuard pins the nil returns when the
// job/data/store shape diverges.
func TestTranslateOnlineBasisShapeGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	base := nodedInstance(5, 8, 2, 2, rng)
	in0, plan0 := solveOnline(t, base.clone(), lp.Options{})
	if plan0.Basis == nil {
		t.Fatal("no basis")
	}
	fewerJobs := base.clone()
	fewerJobs.Jobs = fewerJobs.Jobs[:3]
	fewerJobs.Data = fewerJobs.Data[:3]
	if TranslateOnlineBasis(plan0.Basis, in0, fewerJobs) != nil {
		t.Error("translated across a job-count change")
	}
	if TranslateOnlineBasis(nil, in0, in0) != nil {
		t.Error("translated a nil basis")
	}
}

// TestFilterMachinesIndex checks the returned old→new mapping against the
// surviving units' names.
func TestFilterMachinesIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := nodedInstance(4, 10, 2, 2, rng)
	names := make([]string, len(in.Machines))
	for l, m := range in.Machines {
		names[l] = m.Name
	}
	changed, oldToNew := in.FilterMachinesIndex(func(n cluster.NodeID) bool { return int(n)%3 != 0 })
	if !changed {
		t.Fatal("killing a third of the nodes reported no change")
	}
	for l, nl := range oldToNew {
		if l%3 == 0 {
			if nl != -1 {
				t.Errorf("dead machine %d mapped to %d", l, nl)
			}
			continue
		}
		if nl < 0 || in.Machines[nl].Name != names[l] {
			t.Errorf("machine %d (%s) mapped to %d", l, names[l], nl)
		}
	}

	identityIn := nodedInstance(4, 6, 2, 2, rand.New(rand.NewSource(5)))
	changed, oldToNew = identityIn.FilterMachinesIndex(func(cluster.NodeID) bool { return true })
	if changed {
		t.Error("all-alive filter reported a change")
	}
	for l, nl := range oldToNew {
		if nl != l {
			t.Errorf("identity mapping broken at %d → %d", l, nl)
		}
	}
}
