package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"lips/internal/cluster"
	"lips/internal/lp"
)

// synthInstance builds a synthetic online instance with machines drawn
// from classes price classes (so column generation has real buckets to
// exploit). distinct perturbs every machine into its own class — the
// regime of aggregated paper-scale instances.
func synthInstance(jobs, machines, stores, classes int, distinct bool, rng *rand.Rand) *Instance {
	in := &Instance{Horizon: 400}
	totalMB := 0.0
	for i := 0; i < jobs; i++ {
		size := 256 + rng.Float64()*1024
		totalMB += size
		in.Data = append(in.Data, DataItem{
			Name: fmt.Sprintf("d%d", i), SizeMB: size, Origin: map[int]float64{rng.Intn(stores): 1},
		})
	}
	for j := 0; j < stores; j++ {
		in.Stores = append(in.Stores, StoreUnit{Name: fmt.Sprintf("s%d", j), CapacityMB: totalMB})
		in.CoMachine = append(in.CoMachine, -1)
	}
	for k := 0; k < jobs; k++ {
		d := k
		if !distinct && rng.Intn(5) == 0 {
			// Jobs without input make the LP exactly degenerate (cost
			// depends only on CPU-seconds per machine), so the
			// vertex-sensitive byte-identical tests use all-input jobs.
			d = NoData
		}
		in.Jobs = append(in.Jobs, JobItem{
			Name: "j", Data: d, CPUSec: 200 + rng.Float64()*2000, NumTasks: 4 + rng.Intn(12),
		})
	}
	// Class-level prices, generated once so members share exact floats.
	classPrice := make([]float64, classes)
	classECU := make([]float64, classes)
	classMS := make([][]float64, classes)
	classBW := make([][]float64, classes)
	for c := 0; c < classes; c++ {
		classPrice[c] = 0.5 + rng.Float64()*4
		classECU[c] = 2 + float64(rng.Intn(6))
		classMS[c] = make([]float64, stores)
		classBW[c] = make([]float64, stores)
		for m := 0; m < stores; m++ {
			classMS[c][m] = rng.Float64() * 0.02
			classBW[c][m] = 50 + rng.Float64()*200
		}
	}
	for l := 0; l < machines; l++ {
		c := l % classes
		price, ecu := classPrice[c], classECU[c]
		ms := classMS[c]
		bw := classBW[c]
		if distinct {
			price += rng.Float64() * 0.1
			msd := make([]float64, stores)
			copy(msd, ms)
			msd[rng.Intn(stores)] += rng.Float64() * 0.001
			ms = msd
		}
		in.Machines = append(in.Machines, Machine{Name: fmt.Sprintf("m%d", l), Type: "t", ECU: ecu, PerECUSecMC: price})
		in.MSPerMBMC = append(in.MSPerMBMC, ms)
		in.BandwidthMBps = append(in.BandwidthMBps, bw)
	}
	return in
}

// clone deep-copies an instance so a test can solve the same numbers via
// two code paths (BuildOnlineModel mutates by appending the fake node).
func (in *Instance) clone() *Instance {
	out := &Instance{Horizon: in.Horizon}
	out.Jobs = append([]JobItem(nil), in.Jobs...)
	for _, d := range in.Data {
		origin := make(map[int]float64, len(d.Origin))
		for o, f := range d.Origin {
			origin[o] = f
		}
		d.Origin = origin
		out.Data = append(out.Data, d)
	}
	for _, m := range in.Machines {
		m.Nodes = append([]cluster.NodeID(nil), m.Nodes...)
		out.Machines = append(out.Machines, m)
	}
	out.Stores = append([]StoreUnit(nil), in.Stores...)
	out.CoMachine = append([]int(nil), in.CoMachine...)
	copyMat := func(src [][]float64) [][]float64 {
		dst := make([][]float64, len(src))
		for i := range src {
			dst[i] = append([]float64(nil), src[i]...)
		}
		return dst
	}
	out.MSPerMBMC = copyMat(in.MSPerMBMC)
	out.SSPerMBMC = copyMat(in.SSPerMBMC)
	out.BandwidthMBps = copyMat(in.BandwidthMBps)
	return out
}

func relDiffF(a, b float64) float64 {
	return math.Abs(a-b) / math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// fillSS gives an instance a store-to-store cost matrix (synthInstance
// leaves it unset): free self-moves, cheap cross-moves.
func fillSS(in *Instance, rng *rand.Rand) {
	ns := len(in.Stores)
	in.SSPerMBMC = make([][]float64, ns)
	for a := 0; a < ns; a++ {
		in.SSPerMBMC[a] = make([]float64, ns)
		for b := 0; b < ns; b++ {
			if a != b {
				in.SSPerMBMC[a][b] = rng.Float64() * 0.01
			}
		}
	}
}

// TestOnlineColGenMatchesFullObjective is the core differential: at
// bucketed scale, column generation must reproduce the full model's
// optimal cost to 1e-6 relative while materializing only part of the
// cluster.
func TestOnlineColGenMatchesFullObjective(t *testing.T) {
	sawPartial := false
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := synthInstance(4+rng.Intn(8), 40+rng.Intn(80), 2+rng.Intn(4), 3+rng.Intn(3), false, rng)
		fillSS(in, rng)
		full := in.clone()
		model, err := BuildOnlineModel(full)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		direct, err := model.Solve(lp.Options{})
		if err != nil {
			t.Fatalf("seed %d: direct: %v", seed, err)
		}
		cg, err := NewOnlineColGen(in, ColGenOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		plan, st, err := cg.Solve(ColGenOptions{LP: lp.Options{Dual: true}})
		if err != nil {
			t.Fatalf("seed %d: colgen: %v", seed, err)
		}
		if d := relDiffF(plan.TotalMC(), direct.TotalMC()); d > 1e-6 {
			t.Errorf("seed %d: colgen cost %g, direct %g (rel %g)", seed, plan.TotalMC(), direct.TotalMC(), d)
		}
		if st.Rounds < 1 {
			t.Errorf("seed %d: no pricing rounds", seed)
		}
		if mat, total := cg.Stats(); mat < total {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Error("colgen materialized every machine on every seed; bucketing never paid off")
	}
}

// TestOnlineColGenIntegralPlanMatchesFull pins the whole pipeline at paper
// scale (every machine its own price class, as group aggregation
// produces): the rounded integral plans of the colgen and full solves
// must be byte-identical.
func TestOnlineColGenIntegralPlanMatchesFull(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		in := synthInstance(5+rng.Intn(6), 9, 3, 9, true, rng)
		fillSS(in, rng)
		full := in.clone()
		model, err := BuildOnlineModel(full)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		direct, err := model.Solve(lp.Options{})
		if err != nil {
			t.Fatalf("seed %d: direct: %v", seed, err)
		}
		plan, _, err := SolveOnlineColGen(in, ColGenOptions{})
		if err != nil {
			t.Fatalf("seed %d: colgen: %v", seed, err)
		}
		ipDirect, ipCG := direct.Round(), plan.Round()
		if !reflect.DeepEqual(ipDirect.Assignments, ipCG.Assignments) {
			t.Errorf("seed %d: assignments diverge:\n direct %v\n colgen %v", seed, ipDirect.Assignments, ipCG.Assignments)
		}
		if !reflect.DeepEqual(ipDirect.Moves, ipCG.Moves) {
			t.Errorf("seed %d: moves diverge:\n direct %v\n colgen %v", seed, ipDirect.Moves, ipCG.Moves)
		}
		if !reflect.DeepEqual(ipDirect.Deferred, ipCG.Deferred) {
			t.Errorf("seed %d: deferred diverge: %v vs %v", seed, ipDirect.Deferred, ipCG.Deferred)
		}
	}
}

// TestOnlineColGenSeedHints solves, seeds a second build with the hot
// machines of the first plan, and checks the optimum is unchanged.
func TestOnlineColGenSeedHints(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := synthInstance(8, 60, 3, 4, false, rng)
	fillSS(in, rng)
	plan, _, err := SolveOnlineColGen(in.clone(), ColGenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hints := plan.HotMachines()
	if len(hints) == 0 {
		t.Fatal("no hot machines in the plan")
	}
	seeded, st, err := SolveOnlineColGen(in.clone(), ColGenOptions{SeedMachines: hints})
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiffF(seeded.TotalMC(), plan.TotalMC()); d > 1e-6 {
		t.Errorf("seeded cost %g, unseeded %g (rel %g)", seeded.TotalMC(), plan.TotalMC(), d)
	}
	if st.Rounds < 1 {
		t.Error("no pricing rounds")
	}
}

// TestOnlineColGenRepriceResolve drifts prices and right-hand sides,
// Reprices the standing restricted master, and checks the warm Resolve
// against a cold solve of the drifted instance.
func TestOnlineColGenRepriceResolve(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed + 40))
		in := synthInstance(6+rng.Intn(4), 50, 3, 4, false, rng)
		fillSS(in, rng)
		cg, err := NewOnlineColGen(in.clone(), ColGenOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		plan, _, err := cg.Solve(ColGenOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Drift: spot prices move ±10%, the epoch shortens slightly. The
		// instance passed to Reprice must include the fake node the first
		// build appended.
		next := cg.m.In.clone()
		for l := range next.Machines {
			if !next.Machines[l].Fake {
				next.Machines[l].PerECUSecMC *= 0.9 + 0.2*rng.Float64()
			}
		}
		next.Horizon *= 0.95
		cold := next.clone()
		if err := cg.Reprice(next); err != nil {
			t.Fatalf("seed %d: reprice: %v", seed, err)
		}
		warm, _, err := cg.Resolve(ColGenOptions{LP: lp.Options{Dual: true}}, plan.Basis)
		if err != nil {
			t.Fatalf("seed %d: resolve: %v", seed, err)
		}
		coldPlan, _, err := SolveOnlineColGen(cold, ColGenOptions{})
		if err != nil {
			t.Fatalf("seed %d: cold: %v", seed, err)
		}
		if d := relDiffF(warm.TotalMC(), coldPlan.TotalMC()); d > 1e-6 {
			t.Errorf("seed %d: warm cost %g, cold %g (rel %g)", seed, warm.TotalMC(), coldPlan.TotalMC(), d)
		}
	}
}

// TestOnlineColGenRepriceRejectsReshape pins Reprice's shape guards.
func TestOnlineColGenRepriceRejectsReshape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := synthInstance(4, 20, 2, 2, false, rng)
	fillSS(in, rng)
	cg, err := NewOnlineColGen(in.clone(), ColGenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cg.Solve(ColGenOptions{}); err != nil {
		t.Fatal(err)
	}
	fewer := cg.m.In.clone()
	fewer.Jobs = fewer.Jobs[:len(fewer.Jobs)-1]
	if err := cg.Reprice(fewer); err == nil {
		t.Error("Reprice accepted a job-count change")
	}
	grown := cg.m.In.clone()
	grown.Jobs[0].CPUSec *= 2
	if err := cg.Reprice(grown); err == nil {
		t.Error("Reprice accepted a demand change")
	}
}
