package core

import (
	"fmt"
	"math"
	"sort"

	"lips/internal/lp"
)

// Kind identifies which of the paper's three LP formulations a Model uses.
type Kind int

// Model kinds.
const (
	// SimpleTask is the offline simple task scheduling model (Fig. 2):
	// data placement is fixed, only task fractions are variables.
	SimpleTask Kind = iota
	// CoSchedule is the offline cost-efficient co-scheduling model
	// (Fig. 3): data placement fractions join the variable set.
	CoSchedule
	// Online is the epoch-based online model (Fig. 4): CoSchedule with
	// the horizon set to the epoch length, the per-(job, machine)
	// transfer-time constraint (21), and a fake overflow node F.
	Online
)

// String names the model kind.
func (k Kind) String() string {
	switch k {
	case SimpleTask:
		return "simple-task"
	case CoSchedule:
		return "co-schedule"
	case Online:
		return "online"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// xtKey addresses one x^t_{klm} variable. Jobs without input data have a
// single per-machine variable with store = noStore.
type xtKey struct{ k, l, m int }

const noStore = -1

// Model is a LiPS LP over an Instance, ready to solve.
//
// Data placement is modelled as a transportation problem: for every data
// item i, origin portion o and destination store j there is a flow
// variable f_ioj priced at SS_oj·Size(D_i). The paper's x^d_ij is the
// marginal Σ_o f_ioj. With a single origin (the paper's O_i) this reduces
// exactly to the paper's formulation; with fractional current placements
// (as arise mid-run) it correctly prices "keep the blocks where they are"
// at zero instead of charging the weighted-origin average.
type Model struct {
	In   *Instance
	Kind Kind

	prob   *lp.Problem
	xt     map[xtKey]lp.Var
	xdFlow map[[3]int]lp.Var // (item, origin unit, dest store) → flow
	hasXD  bool
}

// Problem exposes the underlying LP (e.g. for diagnostics or encoding).
func (m *Model) Problem() *lp.Problem { return m.prob }

// NumVars returns the LP's variable count.
func (m *Model) NumVars() int { return m.prob.NumVars() }

// NumCons returns the LP's constraint count.
func (m *Model) NumCons() int { return m.prob.NumCons() }

// BuildSimpleTaskModel builds the Fig. 2 model: task scheduling against a
// fixed fractional data placement xd, where xd[i][m] is the portion of
// data item i on store unit m (rows must sum to ≥ 1).
func BuildSimpleTaskModel(in *Instance, xd [][]float64) (*Model, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if len(xd) != len(in.Data) {
		return nil, fmt.Errorf("core: xd has %d rows for %d data items", len(xd), len(in.Data))
	}
	for i := range xd {
		if len(xd[i]) != len(in.Stores) {
			return nil, fmt.Errorf("core: xd row %d has %d cols for %d stores", i, len(xd[i]), len(in.Stores))
		}
	}
	m := &Model{In: in, Kind: SimpleTask, prob: lp.New("lips-simple"), xt: make(map[xtKey]lp.Var)}
	m.addTaskVars(func(i, store int) bool { return xd[i][store] > 1e-12 })
	m.addJobCoverage()
	m.addDataExistence(xd)
	m.addMachineCapacity()
	return m, nil
}

// BuildCoScheduleModel builds the Fig. 3 model: joint data placement and
// task scheduling over the instance's horizon (node uptime).
func BuildCoScheduleModel(in *Instance) (*Model, error) {
	return buildCo(in, CoSchedule)
}

// BuildOnlineModel builds the Fig. 4 model for one epoch: the instance's
// Horizon must be the epoch length. A fake overflow node is appended
// automatically if the instance does not already have one.
func BuildOnlineModel(in *Instance) (*Model, error) {
	hasFake := false
	for _, mach := range in.Machines {
		if mach.Fake {
			hasFake = true
			break
		}
	}
	if !hasFake {
		in.AddFakeNode(FakeNodePriceMC)
	}
	return buildCo(in, Online)
}

func buildCo(in *Instance, kind Kind) (*Model, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	m := &Model{In: in, Kind: kind, prob: lp.New("lips-" + kind.String()),
		xt: make(map[xtKey]lp.Var), xdFlow: make(map[[3]int]lp.Var), hasXD: true}

	// Placement flow variables with relocation cost (objective term
	// (6)/(16)): f_ioj moves the item-i portion at origin o to store j
	// at SS_oj per MB.
	for i, d := range in.Data {
		for _, o := range sortedOrigins(d) {
			for j := range in.Stores {
				v := m.prob.AddVar(fmt.Sprintf("xd[%d,%d,%d]", i, o, j), 0, 1,
					in.SSPerMBMC[o][j]*d.SizeMB)
				m.xdFlow[[3]int{i, o, j}] = v
			}
		}
	}

	m.addTaskVars(func(i, store int) bool { return true })
	m.addJobCoverage()

	// Constraint (9)/(19): all data gets placed — every origin portion
	// flows somewhere, exactly once. The paper writes Σ_j x^d_ij ≥ 1;
	// equality is required here because zero-cost self-flows would
	// otherwise let x^d report more data on a store than exists, and the
	// resulting task assignments would force unplanned block moves.
	for i, d := range in.Data {
		for _, o := range sortedOrigins(d) {
			row := m.prob.AddCon(fmt.Sprintf("place[%d,%d]", i, o), lp.EQ, d.Origin[o])
			for j := range in.Stores {
				m.prob.SetCoef(row, m.xdFlow[[3]int{i, o, j}], 1)
			}
		}
	}
	// Constraint (11)/(22): store capacity over x^d_ij = Σ_o f_ioj.
	for j, s := range in.Stores {
		row := m.prob.AddCon(fmt.Sprintf("cap[%d]", j), lp.LE, s.CapacityMB)
		for i, d := range in.Data {
			for _, o := range sortedOrigins(d) {
				m.prob.SetCoef(row, m.xdFlow[[3]int{i, o, j}], d.SizeMB)
			}
		}
	}

	m.addMachineCapacity()

	// Constraint (13)/(24): data accessed must exist on the store.
	for k, job := range in.Jobs {
		if job.Data == NoData {
			continue
		}
		d := in.Data[job.Data]
		for store := range in.Stores {
			row := m.prob.AddCon(fmt.Sprintf("exist[%d,%d]", k, store), lp.LE, 0)
			for l := range in.Machines {
				if v, ok := m.xt[xtKey{k, l, store}]; ok {
					m.prob.SetCoef(row, v, 1)
				}
			}
			for _, o := range sortedOrigins(d) {
				m.prob.SetCoef(row, m.xdFlow[[3]int{job.Data, o, store}], -1)
			}
		}
	}

	// Constraint (21), online only: per (job, machine) transfer time must
	// fit in the epoch. The fake node is exempt — work parked on F is
	// deferred, not executed.
	if kind == Online {
		for k, job := range in.Jobs {
			if job.Data == NoData {
				continue
			}
			traffic := in.Data[job.Data].SizeMB * job.accessFrac()
			for l, mach := range in.Machines {
				if mach.Fake {
					continue
				}
				row := m.prob.AddCon(fmt.Sprintf("xfer[%d,%d]", k, l), lp.LE, in.Horizon)
				for store := range in.Stores {
					if v, ok := m.xt[xtKey{k, l, store}]; ok {
						bw := in.BandwidthMBps[l][store]
						if bw <= 0 {
							return nil, fmt.Errorf("core: zero bandwidth between machine %d and store %d", l, store)
						}
						m.prob.SetCoef(row, v, traffic/bw)
					}
				}
			}
		}
	}
	return m, nil
}

// addTaskVars creates the x^t_{klm} variables with their objective terms
// (7)+(8): execution cost JM_kl plus runtime transfer MS_lm·Size(D_i).
// include filters (data item, store) pairs — the simple model only allows
// stores that actually hold a portion of the data.
func (m *Model) addTaskVars(include func(dataItem, store int) bool) {
	in := m.In
	for k, job := range in.Jobs {
		for l, mach := range in.Machines {
			execMC := job.CPUSec * mach.PerECUSecMC // JM_kl
			if job.Data == NoData {
				v := m.prob.AddVar(fmt.Sprintf("xt[%d,%d,-]", k, l), 0, 1, execMC)
				m.xt[xtKey{k, l, noStore}] = v
				continue
			}
			traffic := in.Data[job.Data].SizeMB * job.accessFrac()
			for store := range in.Stores {
				if !include(job.Data, store) {
					continue
				}
				transferMC := in.MSPerMBMC[l][store] * traffic
				v := m.prob.AddVar(fmt.Sprintf("xt[%d,%d,%d]", k, l, store), 0, 1, execMC+transferMC)
				m.xt[xtKey{k, l, store}] = v
			}
		}
	}
}

// addJobCoverage adds constraint (2)/(10)/(20): every job fully scheduled.
func (m *Model) addJobCoverage() {
	in := m.In
	for k := range in.Jobs {
		row := m.prob.AddCon(fmt.Sprintf("job[%d]", k), lp.GE, 1)
		for l := range in.Machines {
			if v, ok := m.xt[xtKey{k, l, noStore}]; ok {
				m.prob.SetCoef(row, v, 1)
			}
			for store := range in.Stores {
				if v, ok := m.xt[xtKey{k, l, store}]; ok {
					m.prob.SetCoef(row, v, 1)
				}
			}
		}
	}
}

// addMachineCapacity adds constraint (4)/(12)/(23): CPU demand placed on a
// machine fits its ECU supply over the horizon. The fake node is exempt.
func (m *Model) addMachineCapacity() {
	in := m.In
	for l, mach := range in.Machines {
		if mach.Fake {
			continue
		}
		row := m.prob.AddCon(fmt.Sprintf("cpu[%d]", l), lp.LE, mach.ECU*in.HorizonOf(l))
		for k, job := range in.Jobs {
			if v, ok := m.xt[xtKey{k, l, noStore}]; ok {
				m.prob.SetCoef(row, v, job.CPUSec)
			}
			for store := range in.Stores {
				if v, ok := m.xt[xtKey{k, l, store}]; ok {
					m.prob.SetCoef(row, v, job.CPUSec)
				}
			}
		}
	}
}

// addDataExistence adds constraint (3) for the simple model, where xd is a
// fixed placement: Σ_l xt_klm ≤ xd_im.
func (m *Model) addDataExistence(xd [][]float64) {
	in := m.In
	for k, job := range in.Jobs {
		if job.Data == NoData {
			continue
		}
		for store := range in.Stores {
			hasVar := false
			for l := range in.Machines {
				if _, ok := m.xt[xtKey{k, l, store}]; ok {
					hasVar = true
					break
				}
			}
			if !hasVar {
				continue
			}
			row := m.prob.AddCon(fmt.Sprintf("exist[%d,%d]", k, store), lp.LE, xd[job.Data][store])
			for l := range in.Machines {
				if v, ok := m.xt[xtKey{k, l, store}]; ok {
					m.prob.SetCoef(row, v, 1)
				}
			}
		}
	}
}

// Solve runs the simplex and extracts a fractional Plan.
func (m *Model) Solve(opts lp.Options) (*Plan, error) {
	sol, err := m.prob.Solve(opts)
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case lp.Optimal:
	case lp.Infeasible:
		return nil, fmt.Errorf("core: %s model infeasible", m.Kind)
	default:
		return nil, fmt.Errorf("core: %s model: solver status %v after %d iterations", m.Kind, sol.Status, sol.Iters)
	}
	return m.extract(sol), nil
}

// extract converts an LP solution into a Plan.
func (m *Model) extract(sol *lp.Solution) *Plan {
	in := m.In
	p := &Plan{
		In: in, Kind: m.Kind, ObjectiveMC: sol.Objective,
		Iters: sol.Iters, Phase1: sol.Phase1, DualIters: sol.DualIters,
		Basis: sol.Basis, WarmStarted: sol.WarmStarted, PricingTime: sol.PricingTime,
		FactorTime: sol.FactorTime, FtranTime: sol.FtranTime, BtranTime: sol.BtranTime,
		PresolveTime: sol.PresolveTime, Refactorizations: sol.Refactorizations,
		FactorNNZ: sol.FactorNNZ, PresolveRows: sol.PresolveRows, PresolveCols: sol.PresolveCols,
	}
	p.XT = make([]map[[2]int]float64, len(in.Jobs))
	for k := range in.Jobs {
		p.XT[k] = make(map[[2]int]float64)
	}
	for key, v := range m.xt {
		f := sol.Value(v)
		if f <= 1e-9 {
			continue
		}
		p.XT[key.k][[2]int{key.l, key.m}] = f
	}
	if m.hasXD {
		p.XD = make([][]float64, len(in.Data))
		p.XDFlows = make([]map[[2]int]float64, len(in.Data))
		for i := range in.Data {
			p.XD[i] = make([]float64, len(in.Stores))
			p.XDFlows[i] = make(map[[2]int]float64)
			for _, o := range sortedOrigins(in.Data[i]) {
				for j := range in.Stores {
					f := sol.Value(m.xdFlow[[3]int{i, o, j}])
					if f <= 1e-9 {
						continue
					}
					p.XD[i][j] += f
					p.XDFlows[i][[2]int{o, j}] += f
				}
			}
		}
	}
	p.computeCosts()
	return p
}

// sortedOrigins returns the origin units of a data item in ascending
// order, for deterministic model construction.
func sortedOrigins(d DataItem) []int {
	out := make([]int, 0, len(d.Origin))
	for o := range d.Origin {
		out = append(out, o)
	}
	sort.Ints(out)
	return out
}

// normalizeFracs scales each job's fractions to sum exactly to 1 (the LP's
// coverage constraint is ≥ 1; at an optimum it is tight up to tolerance).
func normalizeFracs(fr map[[2]int]float64) {
	// Sum in sorted key order: float addition is not associative, so
	// summing in map-iteration order would perturb the normalized
	// fractions' low bits from run to run and flip largest-remainder
	// near-ties in Round — run-to-run nondeterminism from a fixed seed.
	sum := 0.0
	for _, k := range sortedKeys(fr) {
		sum += fr[k]
	}
	if sum <= 0 || math.Abs(sum-1) < 1e-12 {
		return
	}
	for k, f := range fr {
		fr[k] = f / sum
	}
}
