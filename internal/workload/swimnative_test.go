package workload

import (
	"math/rand"
	"strings"
	"testing"
)

// A fragment in SWIM's published FB-2010 format:
// name, submit sec, inter-arrival gap, map input bytes, shuffle bytes,
// reduce output bytes.
const swimSample = `job0	0	0	67108864	1048576	4096
job1	12.5	12.5	268435456	0	134217728
job2	40	27.5	0	0	0
# trailing comment line
job3	100	60	2147483648	1073741824	536870912
`

func TestReadSWIMNative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w, metas, err := ReadSWIMNative(strings.NewReader(swimSample), rng, someStores(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 4 || len(metas) != 4 {
		t.Fatalf("jobs=%d metas=%d", len(w.Jobs), len(metas))
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// job0: exactly one 64 MB block.
	if w.Jobs[0].NumTasks != 1 || w.Jobs[0].InputMB != 64 {
		t.Errorf("job0 = %+v", w.Jobs[0])
	}
	// job1: 256 MB → 4 blocks.
	if w.Jobs[1].NumTasks != 4 {
		t.Errorf("job1 tasks = %d", w.Jobs[1].NumTasks)
	}
	// job2: zero input becomes a CPU-only job.
	if w.Jobs[2].HasInput() {
		t.Error("job2 should be CPU-only")
	}
	// job3: 2 GB → 32 blocks, submit time preserved.
	if w.Jobs[3].NumTasks != 32 || w.Jobs[3].ArrivalSec != 100 {
		t.Errorf("job3 = %+v", w.Jobs[3])
	}
	// Metadata carries the shuffle/output volumes.
	if metas[3].ShuffleBytes != 1073741824 || metas[3].OutputBytes != 536870912 {
		t.Errorf("meta3 = %+v", metas[3])
	}
	// Intensities come from the Table I mixture.
	for _, j := range w.Jobs {
		if j.HasInput() && j.CPUSecPerMB <= 0 {
			t.Errorf("job %s has no intensity", j.Name)
		}
	}
}

func TestReadSWIMNativeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, bad := range []string{
		"short\tline\n",
		"j\tx\t0\t1\t1\t1\n",
		"j\t0\t0\tx\t1\t1\n",
		"j\t0\t0\t1\tx\t1\n",
		"j\t0\t0\t1\t1\tx\n",
		"j\t-5\t0\t1\t1\t1\n",
	} {
		if _, _, err := ReadSWIMNative(strings.NewReader(bad), rng, someStores(1)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
	if _, _, err := ReadSWIMNative(strings.NewReader(""), rng, nil); err == nil {
		t.Error("accepted empty origin list")
	}
}
