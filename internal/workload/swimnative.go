package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"lips/internal/cluster"
	"lips/internal/cost"
)

// ReadSWIMNative parses a trace in SWIM's published Facebook format, as
// found in the SWIM repository's workloadSuite directory (e.g.
// FB-2010_samples_24_times_1hr_0.tsv, the file the paper's 100-node
// experiment replays):
//
//	job_name \t submit_time_sec \t inter_job_gap_sec \t map_input_bytes \t shuffle_bytes \t reduce_output_bytes
//
// SWIM traces carry data volumes but no CPU intensity, so each job's TCP
// is drawn from the Table I archetype mixture using rng (deterministic for
// a fixed seed), and origins are drawn uniformly from origins. Jobs with
// zero input bytes become single-task CPU-only jobs. Shuffle and output
// bytes are retained in the returned SWIMJobMeta for callers that model
// reduce stages.
func ReadSWIMNative(r io.Reader, rng interface{ Intn(int) int }, origins []cluster.StoreID) (*Workload, []SWIMJobMeta, error) {
	if len(origins) == 0 {
		return nil, nil, fmt.Errorf("workload: ReadSWIMNative needs at least one origin store")
	}
	inputArchs := []Archetype{Grep, Stress1, Stress2, WordCount}
	b := NewBuilder()
	var metas []SWIMJobMeta
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 6 {
			return nil, nil, fmt.Errorf("workload: swim line %d: %d fields, want 6", line, len(fields))
		}
		name := fields[0]
		submit, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("workload: swim line %d: submit: %v", line, err)
		}
		// fields[2] is the inter-job gap, redundant with submit times.
		inputBytes, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("workload: swim line %d: input bytes: %v", line, err)
		}
		shuffleBytes, err := strconv.ParseInt(fields[4], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("workload: swim line %d: shuffle bytes: %v", line, err)
		}
		outputBytes, err := strconv.ParseInt(fields[5], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("workload: swim line %d: output bytes: %v", line, err)
		}
		if inputBytes < 0 || submit < 0 {
			return nil, nil, fmt.Errorf("workload: swim line %d: negative field", line)
		}
		metas = append(metas, SWIMJobMeta{
			Name: name, ShuffleBytes: shuffleBytes, OutputBytes: outputBytes,
		})
		if inputBytes == 0 {
			b.AddNoInputJob(name, "swim", 1, PiTaskCPUSec/10, submit)
			continue
		}
		// Round the input up to at least one block so the task count is
		// sensible for tiny jobs.
		sizeMB := math.Max(float64(inputBytes)/(1024*1024), cost.BlockMB)
		a := inputArchs[rng.Intn(len(inputArchs))]
		origin := origins[rng.Intn(len(origins))]
		b.AddInputJob(name, "swim", a, sizeMB, origin, submit)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return b.Build(), metas, nil
}

// SWIMJobMeta carries the SWIM trace columns our map-stage model does not
// consume directly.
type SWIMJobMeta struct {
	Name         string
	ShuffleBytes int64
	OutputBytes  int64
}
