package workload

import (
	"fmt"

	"lips/internal/cluster"
	"lips/internal/hdfs"
)

// ReduceSpec describes one job's reduce stage for ExpandReduces.
type ReduceSpec struct {
	// ShuffleMB is the map-output volume the reducers pull (SWIM's
	// shuffle-bytes column). Zero means the job is map-only.
	ShuffleMB float64
	// CPUSecPerMB is the reduce-side intensity; 0 selects 0.5 ECU-s/MB
	// (sort+merge dominated).
	CPUSecPerMB float64
}

// ExpandReduces models each job's reduce stage as a companion job gated
// on the map job through a dependency edge (consumed by sim.Options.Deps).
// The shuffle data becomes the companion's input object — one reduce task
// per 64 MB shuffle partition — staged at the map job's input origin;
// reducers pull it across the network (and a data-aware scheduler may
// relocate it), which matches Hadoop's mapper-side shuffle storage.
// Map-only jobs (spec.ShuffleMB == 0) pass through unchanged.
//
// It returns the expanded workload and the dependency lists. Original
// jobs keep their indices; companions are appended after them.
func ExpandReduces(w *Workload, specs []ReduceSpec) (*Workload, [][]int, error) {
	if len(specs) != len(w.Jobs) {
		return nil, nil, fmt.Errorf("workload: %d reduce specs for %d jobs", len(specs), len(w.Jobs))
	}
	out := &Workload{
		Jobs:    append([]Job(nil), w.Jobs...),
		Objects: append([]hdfs.DataObject(nil), w.Objects...),
	}
	deps := make([][]int, len(w.Jobs))
	for j, spec := range specs {
		if spec.ShuffleMB <= 0 {
			continue
		}
		if spec.CPUSecPerMB == 0 {
			spec.CPUSecPerMB = 0.5
		}
		mapJob := w.Jobs[j]
		// The shuffle object stages where the map job's input lived;
		// Pi-style maps stage wherever the workload's first object is
		// (any store works — the data gets pulled either way).
		var staged cluster.StoreID
		if mapJob.HasInput() {
			staged = w.Objects[mapJob.Object].Origin
		} else if len(w.Objects) > 0 {
			staged = w.Objects[0].Origin
		}
		obj := hdfs.DataObject{
			ID:     hdfs.ObjectID(len(out.Objects)),
			Name:   mapJob.Name + "-shuffle",
			SizeMB: spec.ShuffleMB,
			Origin: staged,
		}
		out.Objects = append(out.Objects, obj)
		reduce := Job{
			ID:        len(out.Jobs),
			Name:      mapJob.Name + "-reduce",
			Archetype: "reduce",
			User:      mapJob.User,
			// Arrival is gated by the dependency; the simulator runs the
			// companion at max(its ArrivalSec, map completion).
			ArrivalSec:  mapJob.ArrivalSec,
			NumTasks:    obj.NumBlocks(),
			Object:      obj.ID,
			InputMB:     spec.ShuffleMB,
			CPUSecPerMB: spec.CPUSecPerMB,
		}
		out.Jobs = append(out.Jobs, reduce)
		deps = append(deps, []int{j})
	}
	if err := out.Validate(); err != nil {
		return nil, nil, err
	}
	return out, deps, nil
}

// SWIMReduceSpecs converts the metadata returned by ReadSWIMNative into
// reduce specs for ExpandReduces.
func SWIMReduceSpecs(metas []SWIMJobMeta) []ReduceSpec {
	specs := make([]ReduceSpec, len(metas))
	for i, m := range metas {
		specs[i] = ReduceSpec{ShuffleMB: float64(m.ShuffleBytes) / (1024 * 1024)}
	}
	return specs
}
