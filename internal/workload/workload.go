// Package workload models MapReduce jobs and the workloads used in the
// LiPS paper: the Table I benchmark archetypes (Grep, Stress, WordCount,
// Pi), the Table IV job set J1–J9, the random workloads of the Fig. 5
// simulation, and a SWIM-like Facebook trace synthesizer for the 100-node
// experiments (Fig. 9/10).
package workload

import (
	"fmt"
	"math"

	"lips/internal/cluster"
	"lips/internal/hdfs"
)

// Property classifies an archetype's resource profile (Table I).
type Property string

// Archetype resource profiles.
const (
	IOBound  Property = "I/O"
	CPUBound Property = "CPU"
	Mixed    Property = "Mixed"
)

// Archetype is a benchmark program with a characteristic CPU intensity.
// CPUSecPerBlock is the paper's Table I row: EC2-compute-unit seconds
// needed per 64 MB input block. Pi has no input at all; its intensity is
// +Inf and its work is expressed per task instead.
type Archetype struct {
	Name           string
	Property       Property
	CPUSecPerBlock float64 // ECU-seconds per 64 MB block; +Inf for Pi
	CPUSecPerTask  float64 // for no-input archetypes (Pi)
}

// HasInput reports whether the archetype reads input data.
func (a Archetype) HasInput() bool { return !math.IsInf(a.CPUSecPerBlock, 1) }

// CPUSecPerMB returns TCP(x): ECU-seconds per megabyte of input.
func (a Archetype) CPUSecPerMB() float64 { return a.CPUSecPerBlock / 64 }

// Table I of the paper. PiTaskCPUSec is our calibration for the Pi
// estimator (1 billion samples per task): the paper gives no per-task
// seconds, so we pick a value comparable to the heavier input-driven tasks.
const PiTaskCPUSec = 300

var (
	Grep      = Archetype{Name: "grep", Property: IOBound, CPUSecPerBlock: 20}
	Stress1   = Archetype{Name: "stress1", Property: IOBound, CPUSecPerBlock: 37}
	Stress2   = Archetype{Name: "stress2", Property: Mixed, CPUSecPerBlock: 75}
	WordCount = Archetype{Name: "wordcount", Property: CPUBound, CPUSecPerBlock: 90}
	Pi        = Archetype{Name: "pi", Property: CPUBound, CPUSecPerBlock: math.Inf(1), CPUSecPerTask: PiTaskCPUSec}
)

// Archetypes lists Table I in column order.
var Archetypes = []Archetype{Grep, Stress1, Stress2, WordCount, Pi}

// ByName returns the archetype with the given name.
func ByName(name string) (Archetype, error) {
	for _, a := range Archetypes {
		if a.Name == name {
			return a, nil
		}
	}
	return Archetype{}, fmt.Errorf("workload: unknown archetype %q", name)
}

// NoObject marks a job without input data.
const NoObject hdfs.ObjectID = -1

// Job is one MapReduce job (the paper's J_k): a bag of identical map
// tasks over one input object (or none, for Pi-style jobs).
type Job struct {
	ID         int
	Name       string
	Archetype  string
	User       string  // pool/owner, used by the fair scheduler
	ArrivalSec float64 // submission time

	NumTasks int
	Object   hdfs.ObjectID // NoObject if the job reads no input
	InputMB  float64       // 0 if no input

	// AccessFrac is the paper's fractional JD entry (§III): the ratio of
	// the job's expected data traffic to the object's total size. Full
	// scans use 1; an index lookup or column projection reads less.
	// Zero is treated as 1 for backward compatibility.
	AccessFrac float64

	// CPUSecPerMB is TCP(k) for input jobs; CPUSecPerTask is the
	// per-task work for no-input jobs.
	CPUSecPerMB   float64
	CPUSecPerTask float64
}

// EffectiveAccessFrac returns AccessFrac, defaulting to a full scan.
func (j Job) EffectiveAccessFrac() float64 {
	if j.AccessFrac <= 0 {
		return 1
	}
	return j.AccessFrac
}

// HasInput reports whether the job reads input data.
func (j Job) HasInput() bool { return j.Object != NoObject }

// TotalCPUSec returns CPU(J): the job's total ECU-second demand.
func (j Job) TotalCPUSec() float64 {
	if j.HasInput() {
		return j.CPUSecPerMB * j.InputMB * j.EffectiveAccessFrac()
	}
	return float64(j.NumTasks) * j.CPUSecPerTask
}

// TaskCPUSec returns the ECU-seconds of task t, where task t of an input
// job processes block t of its object (scaled by the access fraction).
func (j Job) TaskCPUSec(obj hdfs.DataObject) func(t int) float64 {
	if !j.HasInput() {
		per := j.CPUSecPerTask
		return func(int) float64 { return per }
	}
	af := j.EffectiveAccessFrac()
	return func(t int) float64 { return obj.BlockSizeMB(t) * af * j.CPUSecPerMB }
}

// Workload is a job set plus the data objects the jobs read.
type Workload struct {
	Jobs    []Job
	Objects []hdfs.DataObject
}

// TotalTasks sums NumTasks over all jobs.
func (w *Workload) TotalTasks() int {
	n := 0
	for _, j := range w.Jobs {
		n += j.NumTasks
	}
	return n
}

// TotalInputMB sums input sizes over all jobs.
func (w *Workload) TotalInputMB() float64 {
	mb := 0.0
	for _, j := range w.Jobs {
		mb += j.InputMB
	}
	return mb
}

// TotalCPUSec sums CPU demand over all jobs.
func (w *Workload) TotalCPUSec() float64 {
	s := 0.0
	for _, j := range w.Jobs {
		s += j.TotalCPUSec()
	}
	return s
}

// Placement builds the initial hdfs placement of the workload's objects
// (each object fully on its origin store).
func (w *Workload) Placement() *hdfs.Placement {
	return hdfs.NewPlacement(w.Objects)
}

// Validate checks job/object cross-references and task counts.
func (w *Workload) Validate() error {
	for i, j := range w.Jobs {
		if j.ID != i {
			return fmt.Errorf("workload: job %d has ID %d", i, j.ID)
		}
		if j.NumTasks <= 0 {
			return fmt.Errorf("workload: job %q has %d tasks", j.Name, j.NumTasks)
		}
		if j.HasInput() {
			if int(j.Object) >= len(w.Objects) {
				return fmt.Errorf("workload: job %q references object %d", j.Name, j.Object)
			}
			obj := w.Objects[j.Object]
			if j.NumTasks != obj.NumBlocks() {
				return fmt.Errorf("workload: job %q has %d tasks for %d blocks", j.Name, j.NumTasks, obj.NumBlocks())
			}
			if j.InputMB != obj.SizeMB {
				return fmt.Errorf("workload: job %q InputMB %g != object size %g", j.Name, j.InputMB, obj.SizeMB)
			}
			if j.CPUSecPerMB < 0 {
				return fmt.Errorf("workload: job %q has negative TCP", j.Name)
			}
			if j.AccessFrac < 0 || j.AccessFrac > 1 {
				return fmt.Errorf("workload: job %q has access fraction %g", j.Name, j.AccessFrac)
			}
		} else if j.CPUSecPerTask <= 0 {
			return fmt.Errorf("workload: no-input job %q has CPUSecPerTask %g", j.Name, j.CPUSecPerTask)
		}
	}
	for i, o := range w.Objects {
		if o.ID != hdfs.ObjectID(i) {
			return fmt.Errorf("workload: object %d has ID %d", i, o.ID)
		}
	}
	return nil
}

// Builder assembles a Workload.
type Builder struct {
	w Workload
}

// NewBuilder returns an empty workload builder.
func NewBuilder() *Builder { return &Builder{} }

// AddInputJob adds a job of the given archetype reading a fresh data
// object of sizeMB stored at origin. The task count is the block count.
func (b *Builder) AddInputJob(name, user string, a Archetype, sizeMB float64, origin cluster.StoreID, arrival float64) *Job {
	return b.AddPartialInputJob(name, user, a, sizeMB, 1, origin, arrival)
}

// AddPartialInputJob is AddInputJob with a fractional JD entry: the job
// touches only accessFrac of each input block (paper §III, partial data
// accesses).
func (b *Builder) AddPartialInputJob(name, user string, a Archetype, sizeMB, accessFrac float64, origin cluster.StoreID, arrival float64) *Job {
	if !a.HasInput() {
		panic(fmt.Sprintf("workload: archetype %s takes no input", a.Name))
	}
	obj := hdfs.DataObject{
		ID:     hdfs.ObjectID(len(b.w.Objects)),
		Name:   name + "-input",
		SizeMB: sizeMB,
		Origin: origin,
	}
	b.w.Objects = append(b.w.Objects, obj)
	j := Job{
		ID: len(b.w.Jobs), Name: name, Archetype: a.Name, User: user,
		ArrivalSec: arrival, NumTasks: obj.NumBlocks(), Object: obj.ID,
		InputMB: sizeMB, AccessFrac: accessFrac, CPUSecPerMB: a.CPUSecPerMB(),
	}
	b.w.Jobs = append(b.w.Jobs, j)
	return &b.w.Jobs[len(b.w.Jobs)-1]
}

// AddNoInputJob adds a Pi-style job of numTasks tasks, each needing
// cpuSecPerTask ECU-seconds.
func (b *Builder) AddNoInputJob(name, user string, numTasks int, cpuSecPerTask, arrival float64) *Job {
	j := Job{
		ID: len(b.w.Jobs), Name: name, Archetype: Pi.Name, User: user,
		ArrivalSec: arrival, NumTasks: numTasks, Object: NoObject,
		CPUSecPerTask: cpuSecPerTask,
	}
	b.w.Jobs = append(b.w.Jobs, j)
	return &b.w.Jobs[len(b.w.Jobs)-1]
}

// Build validates and returns the workload.
func (b *Builder) Build() *Workload {
	if err := b.w.Validate(); err != nil {
		panic(err)
	}
	w := b.w
	return &w
}
