package workload

import (
	"math/rand"
	"strings"
	"testing"
)

func TestExpandReduces(t *testing.T) {
	wb := NewBuilder()
	wb.AddInputJob("etl", "u", Grep, 4*64, 2, 0)
	wb.AddInputJob("maponly", "u", Grep, 2*64, 1, 10)
	wb.AddNoInputJob("pi", "u", 2, 100, 20)
	w := wb.Build()
	specs := []ReduceSpec{
		{ShuffleMB: 200},
		{},             // map-only
		{ShuffleMB: 3}, // tiny shuffle → one reducer
	}
	out, deps, err := ExpandReduces(w, specs)
	if err != nil {
		t.Fatal(err)
	}
	// 3 originals + 2 companions.
	if len(out.Jobs) != 5 {
		t.Fatalf("%d jobs", len(out.Jobs))
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	r1 := out.Jobs[3]
	if r1.Name != "etl-reduce" || r1.NumTasks != 4 { // ceil(200/64)
		t.Errorf("r1 = %+v", r1)
	}
	if out.Objects[r1.Object].Origin != 2 {
		t.Errorf("shuffle staged at %d, want the map input's origin 2", out.Objects[r1.Object].Origin)
	}
	r2 := out.Jobs[4]
	if r2.Name != "pi-reduce" || r2.NumTasks != 1 {
		t.Errorf("r2 = %+v", r2)
	}
	// Dependencies: companions gated on their map jobs.
	if len(deps) != 5 || len(deps[3]) != 1 || deps[3][0] != 0 || deps[4][0] != 2 {
		t.Errorf("deps = %v", deps)
	}
	// Reduce intensity defaulted.
	if r1.CPUSecPerMB != 0.5 {
		t.Errorf("intensity = %g", r1.CPUSecPerMB)
	}
}

func TestExpandReducesSpecMismatch(t *testing.T) {
	wb := NewBuilder()
	wb.AddNoInputJob("pi", "u", 1, 10, 0)
	if _, _, err := ExpandReduces(wb.Build(), nil); err == nil {
		t.Error("spec length mismatch accepted")
	}
}

func TestSWIMReduceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w, metas, err := ReadSWIMNative(strings.NewReader(swimSample), rng, someStores(4))
	if err != nil {
		t.Fatal(err)
	}
	out, deps, err := ExpandReduces(w, SWIMReduceSpecs(metas))
	if err != nil {
		t.Fatal(err)
	}
	// job0 (1 MiB shuffle) and job3 (1 GiB shuffle) get companions;
	// job1/job2 have no shuffle bytes.
	if len(out.Jobs) != len(w.Jobs)+2 {
		t.Fatalf("%d jobs, want %d", len(out.Jobs), len(w.Jobs)+2)
	}
	gated := 0
	for _, d := range deps {
		gated += len(d)
	}
	if gated != 2 {
		t.Errorf("%d dependency edges", gated)
	}
	// job3's reducer count: 1 GiB / 64 MB = 16.
	last := out.Jobs[len(out.Jobs)-1]
	if last.NumTasks != 16 {
		t.Errorf("big job reducers = %d, want 16", last.NumTasks)
	}
}
