package workload

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"lips/internal/cluster"
)

// SWIMSpec parameterises the SWIM-like Facebook workload synthesizer used
// for the 100-node experiments (paper §VI-B: 400 jobs derived from
// FB-2010_samples_24_times_1hr_0.tsv, one day in duration, "composed of
// interactive (short), medium-size and long jobs").
type SWIMSpec struct {
	Jobs        int     // number of jobs (paper: 400)
	DurationSec float64 // arrival window (paper: 24 h)
}

// DefaultSWIMSpec is the paper's configuration.
func DefaultSWIMSpec() SWIMSpec {
	return SWIMSpec{Jobs: 400, DurationSec: 24 * 3600}
}

// swimBucket is one size class of the documented Facebook job-size
// mixture: SWIM's published FB-2010 histogram is dominated by tiny jobs
// with a heavy tail of large ones.
type swimBucket struct {
	weight  float64
	minMaps int
	maxMaps int
	kind    string
}

var swimBuckets = []swimBucket{
	{0.55, 1, 4, "interactive"},
	{0.25, 5, 20, "small"},
	{0.12, 21, 150, "medium"},
	{0.06, 151, 800, "large"},
	{0.02, 801, 2400, "huge"},
}

// SWIM synthesizes a SWIM-like workload: job arrival times uniform over
// the duration window (a Poisson process conditioned on the job count),
// map counts drawn from the documented size mixture, input sizes of one
// 64 MB block per map, and CPU intensities drawn from the Table I
// archetypes. Origins are drawn uniformly (pre-loaded HDFS data).
func SWIM(rng *rand.Rand, origins []cluster.StoreID, spec SWIMSpec) *Workload {
	if len(origins) == 0 {
		panic("workload: SWIM needs at least one origin store")
	}
	if spec.Jobs <= 0 {
		spec = DefaultSWIMSpec()
	}
	arrivals := make([]float64, spec.Jobs)
	for i := range arrivals {
		arrivals[i] = rng.Float64() * spec.DurationSec
	}
	sort.Float64s(arrivals)
	inputArchs := []Archetype{Grep, Stress1, Stress2, WordCount}
	b := NewBuilder()
	for i := 0; i < spec.Jobs; i++ {
		bk := pickBucket(rng)
		maps := bk.minMaps + rng.Intn(bk.maxMaps-bk.minMaps+1)
		a := inputArchs[rng.Intn(len(inputArchs))]
		name := fmt.Sprintf("fb-%s-%04d", bk.kind, i)
		user := fmt.Sprintf("pool%d", rng.Intn(8))
		origin := origins[rng.Intn(len(origins))]
		b.AddInputJob(name, user, a, float64(maps)*64, origin, arrivals[i])
	}
	return b.Build()
}

func pickBucket(rng *rand.Rand) swimBucket {
	r := rng.Float64()
	acc := 0.0
	for _, bk := range swimBuckets {
		acc += bk.weight
		if r < acc {
			return bk
		}
	}
	return swimBuckets[len(swimBuckets)-1]
}

// WriteTrace writes the workload in a SWIM-style TSV format:
//
//	name \t submit_sec \t input_bytes \t cpu_sec_per_mb \t num_tasks
//
// (Real SWIM traces carry shuffle/output bytes instead of CPU intensity;
// we keep the intensity so a round trip is lossless.)
func WriteTrace(w io.Writer, wl *Workload) error {
	bw := bufio.NewWriter(w)
	for _, j := range wl.Jobs {
		inputBytes := int64(j.InputMB * 1024 * 1024)
		intensity := j.CPUSecPerMB
		if !j.HasInput() {
			intensity = j.CPUSecPerTask
		}
		if _, err := fmt.Fprintf(bw, "%s\t%.3f\t%d\t%g\t%d\n",
			j.Name, j.ArrivalSec, inputBytes, intensity, j.NumTasks); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a TSV written by WriteTrace. Origins for the recreated
// input objects are drawn uniformly using rng.
func ReadTrace(r io.Reader, rng *rand.Rand, origins []cluster.StoreID) (*Workload, error) {
	if len(origins) == 0 {
		return nil, fmt.Errorf("workload: ReadTrace needs at least one origin store")
	}
	b := NewBuilder()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, "\t")
		if len(fields) != 5 {
			return nil, fmt.Errorf("workload: trace line %d: %d fields, want 5", line, len(fields))
		}
		name := fields[0]
		submit, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: submit: %v", line, err)
		}
		inputBytes, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: input bytes: %v", line, err)
		}
		intensity, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: intensity: %v", line, err)
		}
		tasks, err := strconv.Atoi(fields[4])
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: tasks: %v", line, err)
		}
		if inputBytes > 0 {
			sizeMB := float64(inputBytes) / (1024 * 1024)
			a := Archetype{Name: "trace", Property: Mixed, CPUSecPerBlock: intensity * 64}
			j := b.AddInputJob(name, "trace", a, sizeMB, origins[rng.Intn(len(origins))], submit)
			if j.NumTasks != tasks {
				return nil, fmt.Errorf("workload: trace line %d: %d tasks for %d blocks", line, tasks, j.NumTasks)
			}
		} else {
			b.AddNoInputJob(name, "trace", tasks, intensity, submit)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build(), nil
}
