package workload

import (
	"fmt"
	"math/rand"

	"lips/internal/cluster"
)

// PaperJobSet builds the paper's Table IV job set J1–J9:
//
//	J1–J2: Pi, 4 tasks each, no input
//	J3–J4: WordCount, 10 GB input (160 blocks/tasks)
//	J5–J7: Grep, 20 GB input (320 blocks/tasks)
//	J8–J9: Stress2, 10 GB input (160 blocks/tasks)
//
// Total: 1608 map tasks over 100 GB of input. Input objects are placed on
// origin stores drawn uniformly from origins (pre-loaded HDFS data), using
// rng for reproducibility. All jobs arrive at time 0, matching the
// paper's batch-style runs.
func PaperJobSet(rng *rand.Rand, origins []cluster.StoreID) *Workload {
	if len(origins) == 0 {
		panic("workload: PaperJobSet needs at least one origin store")
	}
	pick := func() cluster.StoreID { return origins[rng.Intn(len(origins))] }
	const gb = 1024.0
	b := NewBuilder()
	b.AddNoInputJob("J1", "user1", 4, PiTaskCPUSec, 0)
	b.AddNoInputJob("J2", "user1", 4, PiTaskCPUSec, 0)
	b.AddInputJob("J3", "user2", WordCount, 10*gb, pick(), 0)
	b.AddInputJob("J4", "user2", WordCount, 10*gb, pick(), 0)
	b.AddInputJob("J5", "user3", Grep, 20*gb, pick(), 0)
	b.AddInputJob("J6", "user3", Grep, 20*gb, pick(), 0)
	b.AddInputJob("J7", "user3", Grep, 20*gb, pick(), 0)
	b.AddInputJob("J8", "user4", Stress2, 10*gb, pick(), 0)
	b.AddInputJob("J9", "user4", Stress2, 10*gb, pick(), 0)
	w := b.Build()
	if got := w.TotalTasks(); got != 1608 {
		panic(fmt.Sprintf("workload: paper job set has %d tasks, want 1608", got))
	}
	return w
}

// RandomSpec parameterises Random with the Fig. 5 caption's ranges.
type RandomSpec struct {
	// TotalTasks is the approximate number of map tasks to generate
	// ("J" on the Fig. 5 x-axis).
	TotalTasks int
	// MaxInputGB is the top of the per-job input size range (paper: 0–6 GB).
	MaxInputGB float64
	// MaxJobCPUSec is the top of the per-job CPU requirement range for
	// no-input CPU jobs (paper: 0–1000 ECU-seconds).
	MaxJobCPUSec float64
	// CPUJobFraction is the fraction of jobs that are pure-CPU (no
	// input). Defaults to 0.2.
	CPUJobFraction float64
}

func (s RandomSpec) withDefaults() RandomSpec {
	if s.MaxInputGB == 0 {
		s.MaxInputGB = 6
	}
	if s.MaxJobCPUSec == 0 {
		s.MaxJobCPUSec = 1000
	}
	if s.CPUJobFraction == 0 {
		s.CPUJobFraction = 0.2
	}
	return s
}

// Random builds a random workload per the Fig. 5 simulation setup: jobs
// with input sizes uniform in (0, MaxInputGB] and CPU intensity drawn from
// the Table I archetypes, plus a fraction of pure-CPU jobs with total work
// uniform in (0, MaxJobCPUSec]. Jobs are appended until TotalTasks map
// tasks exist.
func Random(rng *rand.Rand, origins []cluster.StoreID, spec RandomSpec) *Workload {
	if len(origins) == 0 {
		panic("workload: Random needs at least one origin store")
	}
	spec = spec.withDefaults()
	inputArchs := []Archetype{Grep, Stress1, Stress2, WordCount}
	b := NewBuilder()
	tasks := 0
	for i := 0; tasks < spec.TotalTasks; i++ {
		name := fmt.Sprintf("rand-%d", i)
		user := fmt.Sprintf("user%d", rng.Intn(4))
		if rng.Float64() < spec.CPUJobFraction {
			n := 1 + rng.Intn(8)
			per := (0.05 + 0.95*rng.Float64()) * spec.MaxJobCPUSec / float64(n)
			b.AddNoInputJob(name, user, n, per, 0)
			tasks += n
			continue
		}
		a := inputArchs[rng.Intn(len(inputArchs))]
		sizeMB := (0.05 + 0.95*rng.Float64()) * spec.MaxInputGB * 1024
		origin := origins[rng.Intn(len(origins))]
		j := b.AddInputJob(name, user, a, sizeMB, origin, 0)
		tasks += j.NumTasks
	}
	return b.Build()
}
