package workload

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lips/internal/cluster"
	"lips/internal/hdfs"
)

func someStores(n int) []cluster.StoreID {
	out := make([]cluster.StoreID, n)
	for i := range out {
		out[i] = cluster.StoreID(i)
	}
	return out
}

func TestTable1Archetypes(t *testing.T) {
	want := map[string]float64{
		"grep": 20, "stress1": 37, "stress2": 75, "wordcount": 90,
	}
	for name, blocks := range want {
		a, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if a.CPUSecPerBlock != blocks {
			t.Errorf("%s: CPUSecPerBlock = %g, want %g", name, a.CPUSecPerBlock, blocks)
		}
		if !a.HasInput() {
			t.Errorf("%s must have input", name)
		}
		if a.CPUSecPerMB() != blocks/64 {
			t.Errorf("%s: CPUSecPerMB = %g", name, a.CPUSecPerMB())
		}
	}
	if Pi.HasInput() {
		t.Error("pi must not have input")
	}
	if !math.IsInf(Pi.CPUSecPerBlock, 1) {
		t.Error("pi intensity must be +Inf")
	}
	if _, err := ByName("sort"); err == nil {
		t.Error("expected error for unknown archetype")
	}
	// Ordering of Table I columns: Grep < Stress1 < Stress2 < WordCount.
	for i := 0; i+1 < 4; i++ {
		if Archetypes[i].CPUSecPerBlock >= Archetypes[i+1].CPUSecPerBlock {
			t.Errorf("archetype order broken at %d", i)
		}
	}
}

func TestBuilderInputJob(t *testing.T) {
	b := NewBuilder()
	j := b.AddInputJob("j", "u", Grep, 10*1024, 3, 5)
	w := b.Build()
	if j.NumTasks != 160 {
		t.Errorf("NumTasks = %d, want 160", j.NumTasks)
	}
	if j.TotalCPUSec() != 10*1024*(20.0/64) {
		t.Errorf("TotalCPUSec = %g", j.TotalCPUSec())
	}
	obj := w.Objects[j.Object]
	if obj.Origin != 3 || obj.SizeMB != 10*1024 {
		t.Errorf("object = %+v", obj)
	}
	per := j.TaskCPUSec(obj)
	if per(0) != 64*20.0/64 {
		t.Errorf("task 0 cpu = %g", per(0))
	}
	if w.TotalInputMB() != 10*1024 {
		t.Errorf("TotalInputMB = %g", w.TotalInputMB())
	}
}

func TestBuilderNoInputJob(t *testing.T) {
	b := NewBuilder()
	j := b.AddNoInputJob("pi", "u", 4, 300, 0)
	w := b.Build()
	if j.HasInput() {
		t.Error("pi job must have no input")
	}
	if j.TotalCPUSec() != 1200 {
		t.Errorf("TotalCPUSec = %g", j.TotalCPUSec())
	}
	per := j.TaskCPUSec(hdfs.DataObject{})
	if per(2) != 300 {
		t.Errorf("task cpu = %g", per(2))
	}
	if w.TotalTasks() != 4 {
		t.Errorf("TotalTasks = %d", w.TotalTasks())
	}
}

func TestBuilderPanicsOnPiWithInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBuilder().AddInputJob("bad", "u", Pi, 100, 0, 0)
}

func TestPaperJobSetTable4(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := PaperJobSet(rng, someStores(20))
	if len(w.Jobs) != 9 {
		t.Fatalf("%d jobs", len(w.Jobs))
	}
	if got := w.TotalTasks(); got != 1608 {
		t.Errorf("TotalTasks = %d, want 1608", got)
	}
	if got := w.TotalInputMB(); got != 100*1024 {
		t.Errorf("TotalInputMB = %g, want 100 GB", got)
	}
	counts := map[string]int{}
	for _, j := range w.Jobs {
		counts[j.Archetype]++
	}
	if counts["pi"] != 2 || counts["wordcount"] != 2 || counts["grep"] != 3 || counts["stress2"] != 2 {
		t.Errorf("archetype counts = %v", counts)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := Random(rng, someStores(10), RandomSpec{TotalTasks: 500})
	if w.TotalTasks() < 500 {
		t.Errorf("TotalTasks = %d, want >= 500", w.TotalTasks())
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, j := range w.Jobs {
		if j.HasInput() {
			if j.InputMB > 6*1024 {
				t.Errorf("job %s input %g exceeds 6 GB", j.Name, j.InputMB)
			}
		} else if j.TotalCPUSec() > 1000 {
			t.Errorf("job %s CPU %g exceeds 1000 s", j.Name, j.TotalCPUSec())
		}
	}
}

func TestSWIMWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := SWIM(rng, someStores(100), DefaultSWIMSpec())
	if len(w.Jobs) != 400 {
		t.Fatalf("%d jobs", len(w.Jobs))
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// Arrivals sorted within the 24h window.
	last := -1.0
	for _, j := range w.Jobs {
		if j.ArrivalSec < last {
			t.Fatal("arrivals not sorted")
		}
		if j.ArrivalSec < 0 || j.ArrivalSec > 24*3600 {
			t.Fatalf("arrival %g outside window", j.ArrivalSec)
		}
		last = j.ArrivalSec
	}
	// The size mixture must be dominated by small jobs with a heavy tail.
	small, large := 0, 0
	for _, j := range w.Jobs {
		switch {
		case j.NumTasks <= 20:
			small++
		case j.NumTasks > 150:
			large++
		}
	}
	if small < 250 {
		t.Errorf("only %d small jobs of 400", small)
	}
	if large == 0 {
		t.Error("no large jobs in the tail")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := SWIM(rng, someStores(5), SWIMSpec{Jobs: 50, DurationSec: 3600})
	var buf bytes.Buffer
	if err := WriteTrace(&buf, w); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf, rand.New(rand.NewSource(5)), someStores(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != len(w.Jobs) {
		t.Fatalf("round trip: %d jobs, want %d", len(got.Jobs), len(w.Jobs))
	}
	for i := range w.Jobs {
		a, b := w.Jobs[i], got.Jobs[i]
		if a.Name != b.Name || a.NumTasks != b.NumTasks {
			t.Fatalf("job %d: %v vs %v", i, a, b)
		}
		if math.Abs(a.ArrivalSec-b.ArrivalSec) > 1e-3 {
			t.Fatalf("job %d arrival drifted: %g vs %g", i, a.ArrivalSec, b.ArrivalSec)
		}
		if math.Abs(a.TotalCPUSec()-b.TotalCPUSec()) > 1e-6*a.TotalCPUSec() {
			t.Fatalf("job %d CPU drifted: %g vs %g", i, a.TotalCPUSec(), b.TotalCPUSec())
		}
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"only\tthree\tfields\n",
		"j\tNaNsubmit\t100\t1\t1\n",
		"j\t0\tnotbytes\t1\t1\n",
		"j\t0\t100\tx\t1\n",
		"j\t0\t100\t1\tx\n",
	} {
		if _, err := ReadTrace(bytes.NewBufferString(bad), rand.New(rand.NewSource(1)), someStores(1)); err == nil {
			t.Errorf("ReadTrace(%q) succeeded", bad)
		}
	}
	// Comments and blank lines are fine.
	w, err := ReadTrace(bytes.NewBufferString("# comment\n\npi\t1\t0\t300\t4\n"), rand.New(rand.NewSource(1)), someStores(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 1 || w.Jobs[0].HasInput() {
		t.Errorf("jobs = %+v", w.Jobs)
	}
}

func TestQuickRandomWorkloadValid(t *testing.T) {
	check := func(seed int64, tasks uint16) bool {
		n := 1 + int(tasks)%800
		rng := rand.New(rand.NewSource(seed))
		w := Random(rng, someStores(8), RandomSpec{TotalTasks: n})
		if err := w.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return w.TotalTasks() >= n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := PaperJobSet(rng, someStores(3))
	w.Jobs[3].NumTasks = 7 // disagree with block count
	if err := w.Validate(); err == nil {
		t.Error("expected validation error")
	}
}
