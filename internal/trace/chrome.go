package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Chrome exports the event stream in the Chrome trace-event JSON array
// format, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Layout: each run event opens a new process group named after the
// scheduler; within it, thread 0 is the scheduler track (epoch LP spans
// drawn from one epoch event to the next), thread n+1 is node n's task
// track (complete-event slices per finished attempt, with the input
// transfer nested inside), block moves are async "move" spans, injected
// faults are instant events, and samples become counter tracks
// (cumulative dollars by category, task states, free slots).
//
// Timestamps are simulated microseconds (sim seconds × 1e6).
type Chrome struct {
	w      *bufio.Writer
	err    error
	events int

	pid       int
	lastT     float64
	openEpoch *Event // pending epoch span, closed by the next epoch/run/Close
	moveSeq   int
}

// NewChrome returns a Chrome trace-event sink writing to w. Call Close
// to terminate the JSON array.
func NewChrome(w io.Writer) *Chrome {
	c := &Chrome{w: bufio.NewWriter(w)}
	if _, err := c.w.WriteString("[\n"); err != nil {
		c.err = err
	}
	return c
}

// Enabled implements Tracer.
func (c *Chrome) Enabled() bool { return true }

// chromeEvent is one object of the trace-event array.
type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Cat   string         `json:"cat,omitempty"`
	ID    int            `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

func (c *Chrome) write(ev chromeEvent) {
	if c.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		c.err = err
		return
	}
	if c.events > 0 {
		if _, err := c.w.WriteString(",\n"); err != nil {
			c.err = err
			return
		}
	}
	if _, err := c.w.Write(b); err != nil {
		c.err = err
		return
	}
	c.events++
}

// meta emits a metadata record (process_name / thread_name).
func (c *Chrome) meta(name string, tid int, value string) {
	c.write(chromeEvent{Name: name, Ph: "M", Pid: c.pid, Tid: tid,
		Args: map[string]any{"name": value}})
}

// closeEpoch flushes the pending epoch span, ending it at endT.
func (c *Chrome) closeEpoch(endT float64) {
	e := c.openEpoch
	if e == nil {
		return
	}
	c.openEpoch = nil
	ep := e.Epoch
	dur := (endT - e.T) * 1e6
	if dur <= 0 {
		dur = 1
	}
	start := "cold"
	if ep.WarmAccepted {
		start = "warm"
	}
	args := map[string]any{
		"start":    start,
		"jobs":     ep.Jobs,
		"pending":  ep.Pending,
		"iters":    ep.Iters,
		"launched": ep.Launched,
		"deferred": ep.Deferred,
	}
	if ep.BlocksMoved > 0 {
		args["blocks_moved"] = ep.BlocksMoved
	}
	if ep.SolveMS > 0 {
		args["solve_ms"] = ep.SolveMS
		args["pricing_ms"] = ep.PricingMS
		args["factor_ms"] = ep.FactorMS
		args["presolve_ms"] = ep.PresolveMS
	}
	c.write(chromeEvent{
		Name: fmt.Sprintf("epoch %d (%s)", ep.Epoch, start),
		Ph:   "X", Ts: e.T * 1e6, Dur: dur, Pid: c.pid, Tid: 0,
		Cat: "epoch", Args: args,
	})
}

// Emit implements Tracer.
func (c *Chrome) Emit(e Event) {
	if e.T > c.lastT {
		c.lastT = e.T
	}
	if c.pid == 0 && e.Kind != KindRun {
		c.pid = 1 // events without a run header still need a process
	}
	switch e.Kind {
	case KindRun:
		c.closeEpoch(c.lastT)
		c.pid++
		r := e.Run
		label := r.Scheduler
		if r.Label != "" {
			label = r.Label + ": " + r.Scheduler
		}
		c.meta("process_name", 0, fmt.Sprintf("run %d — %s (%d nodes, %d jobs, %d tasks)",
			c.pid-1, label, r.Nodes, r.Jobs, r.Tasks))
		c.meta("thread_name", 0, "scheduler")
		for n := 0; n < r.Nodes; n++ {
			name := fmt.Sprintf("node-%d", n)
			if n < len(r.Types) {
				name += " " + r.Types[n]
			}
			if n < len(r.Zones) {
				name += " @" + r.Zones[n]
			}
			c.meta("thread_name", n+1, name)
		}
	case KindDone:
		t := e.Task
		start := e.T - t.DurSec
		name := fmt.Sprintf("j%d/t%d", t.Job, t.Task)
		if t.Speculative {
			name += " (spec)"
		}
		c.write(chromeEvent{
			Name: name, Ph: "X", Ts: start * 1e6, Dur: t.DurSec * 1e6,
			Pid: c.pid, Tid: t.Node + 1, Cat: "task",
			Args: map[string]any{
				"store":   t.Store,
				"attempt": t.Attempt,
				"cpu_sec": t.CPUSec,
				"cost_uc": t.CostUC,
			},
		})
		if t.XferSec > 0 {
			c.write(chromeEvent{
				Name: "xfer", Ph: "X", Ts: start * 1e6, Dur: t.XferSec * 1e6,
				Pid: c.pid, Tid: t.Node + 1, Cat: "xfer",
			})
		}
	case KindKill:
		t := e.Task
		c.write(chromeEvent{
			Name: fmt.Sprintf("kill j%d/t%d: %s", t.Job, t.Task, t.Reason),
			Ph:   "i", Ts: e.T * 1e6, Pid: c.pid, Tid: t.Node + 1,
			Scope: "t", Cat: "kill",
			Args: map[string]any{"cost_uc": t.CostUC},
		})
	case KindEpoch:
		c.closeEpoch(e.T)
		ev := e
		c.openEpoch = &ev
	case KindMove:
		m := e.Move
		c.moveSeq++
		args := map[string]any{"mb": m.MB, "src": m.Src, "dst": m.Dst, "reason": m.Reason}
		name := fmt.Sprintf("move o%d/b%d", m.Object, m.Block)
		c.write(chromeEvent{Name: name, Ph: "b", Ts: e.T * 1e6,
			Pid: c.pid, Tid: 0, Cat: "move", ID: c.moveSeq, Args: args})
		c.write(chromeEvent{Name: name, Ph: "e", Ts: (e.T + m.DurSec) * 1e6,
			Pid: c.pid, Tid: 0, Cat: "move", ID: c.moveSeq})
		if e.T+m.DurSec > c.lastT {
			c.lastT = e.T + m.DurSec
		}
	case KindFault:
		f := e.Fault
		target := ""
		switch {
		case f.Node >= 0:
			target = fmt.Sprintf(" node-%d", f.Node)
		case f.Store >= 0:
			target = fmt.Sprintf(" store-%d", f.Store)
		}
		c.write(chromeEvent{
			Name: "fault: " + f.Kind + target,
			Ph:   "i", Ts: e.T * 1e6, Pid: c.pid, Tid: 0, Scope: "p", Cat: "fault",
		})
	case KindSample:
		s := e.Sample
		ts := e.T * 1e6
		c.write(chromeEvent{Name: "cost ($)", Ph: "C", Ts: ts, Pid: c.pid, Tid: 0,
			Args: map[string]any{
				"cpu":         float64(s.CPUUC) / 1e8,
				"transfer":    float64(s.TransferUC) / 1e8,
				"placement":   float64(s.PlacementUC) / 1e8,
				"speculative": float64(s.SpeculativeUC) / 1e8,
				"fault":       float64(s.FaultUC) / 1e8,
			}})
		c.write(chromeEvent{Name: "tasks", Ph: "C", Ts: ts, Pid: c.pid, Tid: 0,
			Args: map[string]any{
				"running": s.Running, "queued": s.Queued, "pending": s.Pending,
			}})
		c.write(chromeEvent{Name: "free slots", Ph: "C", Ts: ts, Pid: c.pid, Tid: 0,
			Args: map[string]any{"free": s.FreeSlots}})
	}
}

// Events returns how many trace-array records were written.
func (c *Chrome) Events() int { return c.events }

// Close ends the pending epoch span, terminates the JSON array and
// flushes, returning the first error encountered.
func (c *Chrome) Close() error {
	c.closeEpoch(c.lastT)
	if c.err != nil {
		return c.err
	}
	if _, err := c.w.WriteString("\n]\n"); err != nil {
		return err
	}
	return c.w.Flush()
}
