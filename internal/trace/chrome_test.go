package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the Chrome exporter golden file")

// chromeFixture exercises every exporter branch: run header with node
// tracks, done slices with nested transfer, a kill instant, two epoch
// spans (the first closed by the second, the second by Close), a move
// async pair, a fault instant and a sample's counter tracks.
func chromeFixture() []Event {
	return []Event{
		{T: 0, Kind: KindRun, Run: &RunInfo{Scheduler: "lips(e=600s)", Nodes: 2, Stores: 2,
			Jobs: 1, Tasks: 2, Slots: []int{2, 2}, Types: []string{"m1.medium", "c1.medium"},
			Zones: []string{"us-east-1a", "us-east-1b"}, Label: "golden"}},
		{T: 0, Kind: KindSample, Sample: &SampleInfo{Pending: 2, FreeSlots: 4, LiveSlots: 4}},
		{T: 600, Kind: KindEpoch, Epoch: &EpochInfo{Scheduler: "lips(e=600s)", Epoch: 1,
			Jobs: 1, Pending: 2, Iters: 9, Launched: 2, BlocksMoved: 1}},
		{T: 600, Kind: KindMove, Move: &MoveInfo{Object: 0, Block: 3, Src: 1, Dst: 0,
			MB: 64, DurSec: 12, CostUC: 5000, Reason: "plan"}},
		{T: 700, Kind: KindFault, Fault: &FaultInfo{Kind: "node-down", Node: 1, Store: -1, DurationSec: 50}},
		{T: 705, Kind: KindKill, Task: &TaskInfo{Job: 0, Task: 1, Node: 1, Store: -1, Reason: "node-crash"}},
		{T: 720, Kind: KindDone, Task: &TaskInfo{Job: 0, Task: 0, Node: 0, Store: 0,
			Attempt: 1, DurSec: 100, XferSec: 10, CPUSec: 90, CostUC: 120000}},
		{T: 1200, Kind: KindEpoch, Epoch: &EpochInfo{Scheduler: "lips(e=600s)", Epoch: 2,
			Jobs: 1, Pending: 1, Warm: true, WarmAccepted: true, Iters: 3, Launched: 1}},
		{T: 1300, Kind: KindDone, Task: &TaskInfo{Job: 0, Task: 1, Node: 0, Store: 1,
			Attempt: 2, DurSec: 95, CPUSec: 95, CostUC: 110000}},
	}
}

func TestChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChrome(&buf)
	for _, e := range chromeFixture() {
		sink.Emit(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	const golden = "testdata/chrome.golden.json"
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Chrome output drifted from %s (run with -update to regenerate):\n%s", golden, buf.String())
	}
}

// TestChromeWellFormed checks structural invariants the golden bytes
// alone don't explain: valid JSON array, phase inventory, both epoch
// spans closed, matching async begin/end pair.
func TestChromeWellFormed(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChrome(&buf)
	for _, e := range chromeFixture() {
		sink.Emit(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	var records []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &records); err != nil {
		t.Fatalf("output is not a JSON array: %v", err)
	}
	if sink.Events() != len(records) {
		t.Errorf("Events() = %d, decoded %d records", sink.Events(), len(records))
	}
	phases := map[string]int{}
	epochs, moves := 0, 0
	for _, r := range records {
		ph := r["ph"].(string)
		phases[ph]++
		if r["cat"] == "epoch" {
			epochs++
			if _, ok := r["dur"]; !ok {
				t.Errorf("epoch span without duration: %v", r)
			}
		}
		if r["cat"] == "move" {
			moves++
		}
	}
	// 3 thread_name + 1 process_name metadata, per-fixture counts below.
	for ph, want := range map[string]int{"M": 4, "X": 5, "i": 2, "b": 1, "e": 1, "C": 3} {
		if phases[ph] != want {
			t.Errorf("phase %q count = %d, want %d (all: %v)", ph, phases[ph], want, phases)
		}
	}
	if epochs != 2 {
		t.Errorf("epoch spans = %d, want 2 (second must be closed by Close)", epochs)
	}
	if moves != 2 {
		t.Errorf("move records = %d, want b+e pair", moves)
	}
}
