package trace

import (
	"fmt"
	"io"
)

// Sampler collects the periodic time-series snapshots (sample events)
// into memory, ignoring every other kind. It backs programmatic access
// to cost-over-time / queue-depth / utilization series and CSV export
// (cmd/lips-trace's cost-over-time output uses the same writer).
type Sampler struct {
	Rows []SampleRow
}

// SampleRow is one snapshot with its simulated timestamp.
type SampleRow struct {
	T float64
	S SampleInfo
}

// NewSampler returns an empty sampler sink.
func NewSampler() *Sampler { return &Sampler{} }

// Enabled implements Tracer.
func (s *Sampler) Enabled() bool { return true }

// Emit implements Tracer, keeping sample events only.
func (s *Sampler) Emit(e Event) {
	if e.Kind == KindSample && e.Sample != nil {
		s.Rows = append(s.Rows, SampleRow{T: e.T, S: *e.Sample})
	}
}

// CSVHeader is the column contract of WriteCSV. Units: simulated seconds
// and exact microcents (the ledger's integer unit, 1e8 per dollar) — the
// same field names and units the live /progress endpoint reports
// (internal/obs.Progress, pinned by TestProgressMatchesSamplerCSV).
const CSVHeader = "t_sec,total_uc,cpu_uc,transfer_uc,placement_uc,speculative_uc,fault_uc," +
	"running,queued,pending,done,free_slots,live_slots,busy_slot_sec," +
	"node_local,zone_local,remote,no_input"

// WriteCSV renders the collected series as CSV: one row per sample, cost
// columns in exact microcents.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, CSVHeader); err != nil {
		return err
	}
	for _, r := range s.Rows {
		_, err := fmt.Fprintf(w, "%g,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%g,%d,%d,%d,%d\n",
			r.T, r.S.TotalUC, r.S.CPUUC, r.S.TransferUC,
			r.S.PlacementUC, r.S.SpeculativeUC, r.S.FaultUC,
			r.S.Running, r.S.Queued, r.S.Pending, r.S.Done,
			r.S.FreeSlots, r.S.LiveSlots, r.S.BusySlotSec,
			r.S.NodeLocal, r.S.ZoneLocal, r.S.Remote, r.S.NoInput)
		if err != nil {
			return err
		}
	}
	return nil
}
