package trace

import (
	"fmt"
	"io"
)

// Sampler collects the periodic time-series snapshots (sample events)
// into memory, ignoring every other kind. It backs programmatic access
// to cost-over-time / queue-depth / utilization series and CSV export
// (cmd/lips-trace's cost-over-time output uses the same writer).
type Sampler struct {
	Rows []SampleRow
}

// SampleRow is one snapshot with its simulated timestamp.
type SampleRow struct {
	T float64
	S SampleInfo
}

// NewSampler returns an empty sampler sink.
func NewSampler() *Sampler { return &Sampler{} }

// Enabled implements Tracer.
func (s *Sampler) Enabled() bool { return true }

// Emit implements Tracer, keeping sample events only.
func (s *Sampler) Emit(e Event) {
	if e.Kind == KindSample && e.Sample != nil {
		s.Rows = append(s.Rows, SampleRow{T: e.T, S: *e.Sample})
	}
}

// csvHeader is the column contract of WriteCSV.
const csvHeader = "t_sec,total_usd,cpu_usd,transfer_usd,placement_usd,speculative_usd,fault_usd," +
	"running,queued,pending,done,free_slots,live_slots,busy_slot_sec," +
	"node_local,zone_local,remote,no_input"

// WriteCSV renders the collected series as CSV: one row per sample,
// dollar columns converted from exact microcents.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, csvHeader); err != nil {
		return err
	}
	usd := func(uc int64) string { return fmt.Sprintf("%.6f", float64(uc)/1e8) }
	for _, r := range s.Rows {
		_, err := fmt.Fprintf(w, "%g,%s,%s,%s,%s,%s,%s,%d,%d,%d,%d,%d,%d,%g,%d,%d,%d,%d\n",
			r.T, usd(r.S.TotalUC), usd(r.S.CPUUC), usd(r.S.TransferUC),
			usd(r.S.PlacementUC), usd(r.S.SpeculativeUC), usd(r.S.FaultUC),
			r.S.Running, r.S.Queued, r.S.Pending, r.S.Done,
			r.S.FreeSlots, r.S.LiveSlots, r.S.BusySlotSec,
			r.S.NodeLocal, r.S.ZoneLocal, r.S.Remote, r.S.NoInput)
		if err != nil {
			return err
		}
	}
	return nil
}
