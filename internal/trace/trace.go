// Package trace is the structured run-tracing layer of the simulator: a
// Tracer interface threaded through the scheduling hot paths, a typed
// event model covering task lifecycles, epoch LP solves, block moves,
// fault injections and periodic time-series samples, and three sinks —
// a JSONL structured log, a Chrome trace-event (Perfetto-loadable)
// exporter, and an in-memory time-series Sampler with CSV output.
//
// Tracing is off by default. The disabled path is a single boolean check
// at each call site and allocates nothing (guarded by
// TestNopTracerNoAllocs and the sim throughput gate in
// scripts/perfsmoke.sh). Traces contain only simulated-time and
// count-valued fields unless the producer opts into wall-clock timings,
// so two runs with the same seed produce byte-identical JSONL output.
package trace

import (
	"fmt"
	"math"
)

// Kind labels one trace event. Kinds are stable strings: they are the
// JSONL schema's discriminator and the contract of cmd/lips-trace.
type Kind string

// Event kinds.
const (
	KindRun     Kind = "run"     // run metadata: scheduler, cluster and workload shape
	KindEnqueue Kind = "enqueue" // task pinned to a node's queue
	KindLaunch  Kind = "launch"  // attempt started on a node
	KindDone    Kind = "done"    // attempt completed (task finished)
	KindKill    Kind = "kill"    // attempt cancelled (timeout, speculation, preemption, fault)
	KindEpoch   Kind = "epoch"   // one epoch LP solve of an epoch scheduler
	KindMove    Kind = "move"    // block relocation (planned, balancer or fault repair)
	KindFault   Kind = "fault"   // injected fault event
	KindSample  Kind = "sample"  // periodic time-series snapshot
)

// Event is one trace record. T is the simulated time in seconds; exactly
// one of the payload pointers matching Kind is set.
type Event struct {
	T    float64 `json:"t"`
	Kind Kind    `json:"kind"`

	Run    *RunInfo    `json:"run,omitempty"`
	Task   *TaskInfo   `json:"task,omitempty"`
	Epoch  *EpochInfo  `json:"epoch,omitempty"`
	Move   *MoveInfo   `json:"move,omitempty"`
	Fault  *FaultInfo  `json:"fault,omitempty"`
	Sample *SampleInfo `json:"sample,omitempty"`
}

// RunInfo opens one simulation run in the event stream; sinks use it as
// a run boundary (the Chrome exporter starts a new process group).
type RunInfo struct {
	Scheduler string `json:"scheduler"`
	Nodes     int    `json:"nodes"`
	Stores    int    `json:"stores"`
	Jobs      int    `json:"jobs"`
	Tasks     int    `json:"tasks"`
	// Slots, Types and Zones describe each node (index = node id), so
	// tools can compute per-node utilization without the cluster object.
	Slots []int    `json:"slots,omitempty"`
	Types []string `json:"types,omitempty"`
	Zones []string `json:"zones,omitempty"`
	// Label distinguishes runs in multi-run traces (e.g. the experiment
	// name when lips-bench traces a whole suite).
	Label string `json:"label,omitempty"`
	// JobNames and JobUsers describe each workload job (index = job id):
	// the ledger's per-job key and the owning tenant, so trace tools can
	// roll charges up by job or tenant without the workload object.
	// Absent in serve-mode traces, whose jobs arrive after the header.
	JobNames []string `json:"job_names,omitempty"`
	JobUsers []string `json:"job_users,omitempty"`
}

// TaskInfo is the payload of task lifecycle events. Node and Store are
// -1 when not applicable (no-input tasks, tasks killed while queued).
// CostUC amounts are exact integer microcents (cost.Money's unit).
type TaskInfo struct {
	Job     int `json:"job"`
	Task    int `json:"task"`
	Node    int `json:"node"`
	Store   int `json:"store"`
	Attempt int `json:"attempt,omitempty"`

	Speculative bool    `json:"speculative,omitempty"`
	Locality    string  `json:"locality,omitempty"` // launch: node-local/zone-local/remote/no-input
	ReadyAt     float64 `json:"ready_at,omitempty"` // enqueue: earliest dispatch time
	DurSec      float64 `json:"dur_sec,omitempty"`  // done: attempt wall-clock (sim seconds)
	XferSec     float64 `json:"xfer_sec,omitempty"` // done: input transfer portion of DurSec
	CPUSec      float64 `json:"cpu_sec,omitempty"`  // done: billed ECU-seconds
	CostUC      int64   `json:"cost_uc,omitempty"`  // microcents billed at this event
	XferUC      int64   `json:"xfer_uc,omitempty"`  // done: transfer portion of CostUC (the rest is CPU)
	Reason      string  `json:"reason,omitempty"`   // kill: timeout/speculative/preempt/dequeue/node-crash/store-loss
}

// EpochInfo is the payload of one epoch LP solve. The wall-clock *MS
// fields are zero unless the producer opted into timings (they make
// traces machine-dependent; see sched.LiPS.TraceTimings).
type EpochInfo struct {
	Scheduler string `json:"scheduler"`
	Epoch     int    `json:"epoch"`
	Jobs      int    `json:"jobs"`    // queued jobs planned this epoch
	Pending   int    `json:"pending"` // pending tasks offered to the LP

	Warm         bool `json:"warm,omitempty"`          // a warm-start basis was offered
	WarmAccepted bool `json:"warm_accepted,omitempty"` // ... and the solver used it
	Iters        int  `json:"iters"`
	Phase1       int  `json:"phase1,omitempty"`
	PresolveRows int  `json:"presolve_rows,omitempty"`
	PresolveCols int  `json:"presolve_cols,omitempty"`

	Launched    int `json:"launched"` // tasks enqueued by this epoch's plan
	Deferred    int `json:"deferred"` // fake-node overflow: pending work left for the next epoch
	BlocksMoved int `json:"blocks_moved,omitempty"`

	SolveMS    float64 `json:"solve_ms,omitempty"`
	PricingMS  float64 `json:"pricing_ms,omitempty"`
	FactorMS   float64 `json:"factor_ms,omitempty"`
	PresolveMS float64 `json:"presolve_ms,omitempty"`
}

// MoveInfo is the payload of a block relocation span.
type MoveInfo struct {
	Object int     `json:"object"`
	Block  int     `json:"block"`
	Src    int     `json:"src"`
	Dst    int     `json:"dst"`
	MB     float64 `json:"mb"`
	DurSec float64 `json:"dur_sec,omitempty"`
	CostUC int64   `json:"cost_uc,omitempty"`
	Reason string  `json:"reason,omitempty"` // plan/balance/re-replicate/re-materialize
}

// FaultInfo is the payload of an injected fault. Node and Store are -1
// when the fault targets the other resource type.
type FaultInfo struct {
	Kind        string  `json:"kind"` // node-down/node-up/store-loss/slowdown
	Node        int     `json:"node"`
	Store       int     `json:"store"`
	Factor      float64 `json:"factor,omitempty"`
	DurationSec float64 `json:"duration_sec,omitempty"`
}

// SampleInfo is one time-series snapshot: cumulative ledger totals by
// category (exact microcents), task-state counts, slot availability and
// the cumulative locality mix at the sample instant.
type SampleInfo struct {
	Running   int `json:"running"`
	Queued    int `json:"queued"`
	Pending   int `json:"pending"` // arrived jobs' unassigned tasks
	Done      int `json:"done"`
	FreeSlots int `json:"free_slots"`
	LiveSlots int `json:"live_slots"` // slots on nodes currently up

	BusySlotSec float64 `json:"busy_slot_sec"` // cumulative billed slot occupancy

	TotalUC       int64 `json:"total_uc"`
	CPUUC         int64 `json:"cpu_uc"`
	TransferUC    int64 `json:"transfer_uc"`
	PlacementUC   int64 `json:"placement_uc"`
	SpeculativeUC int64 `json:"speculative_uc"`
	FaultUC       int64 `json:"fault_uc"`

	NodeLocal int `json:"node_local"`
	ZoneLocal int `json:"zone_local"`
	Remote    int `json:"remote"`
	NoInput   int `json:"no_input"`

	// Tenants is the cumulative chargeback ledger at the sample instant,
	// one entry per tenant seen so far, sorted by tenant name so traces
	// stay byte-identical across same-seed runs. Per category and in
	// exact microcents, mirroring the category fields above: summing a
	// column across tenants must reproduce the matching global field.
	Tenants []TenantCost `json:"tenants,omitempty"`
}

// TenantCost is one tenant's cumulative chargeback line in a sample.
type TenantCost struct {
	Tenant        string `json:"tenant"`
	TotalUC       int64  `json:"total_uc"`
	CPUUC         int64  `json:"cpu_uc,omitempty"`
	TransferUC    int64  `json:"transfer_uc,omitempty"`
	PlacementUC   int64  `json:"placement_uc,omitempty"`
	SpeculativeUC int64  `json:"speculative_uc,omitempty"`
	FaultUC       int64  `json:"fault_uc,omitempty"`
}

// Tracer receives trace events. Implementations need not be safe for
// concurrent use: the simulator is single-threaded and emits events in
// deterministic order.
//
// Hot paths must guard event construction with Enabled so the disabled
// tracer costs one predictable branch and zero allocations.
type Tracer interface {
	// Enabled reports whether Emit does anything; callers skip building
	// events when false.
	Enabled() bool
	// Emit records one event.
	Emit(e Event)
}

// Nop is the disabled tracer; its zero value is ready to use.
type Nop struct{}

// Enabled implements Tracer.
func (Nop) Enabled() bool { return false }

// Emit implements Tracer.
func (Nop) Emit(Event) {}

// Multi fans events out to every enabled sink. With no enabled sinks it
// returns Nop{} so the disabled fast path is preserved.
func Multi(sinks ...Tracer) Tracer {
	var on []Tracer
	for _, s := range sinks {
		if s != nil && s.Enabled() {
			on = append(on, s)
		}
	}
	switch len(on) {
	case 0:
		return Nop{}
	case 1:
		return on[0]
	default:
		return multi(on)
	}
}

type multi []Tracer

func (m multi) Enabled() bool { return true }
func (m multi) Emit(e Event) {
	for _, t := range m {
		t.Emit(e)
	}
}

// Validate checks one event against the schema: a known kind, a
// finite non-negative timestamp, the payload matching the kind (and no
// other), and resource ids that are -1 or natural numbers.
func Validate(e Event) error {
	if math.IsNaN(e.T) || math.IsInf(e.T, 0) || e.T < 0 {
		return fmt.Errorf("trace: bad timestamp %v", e.T)
	}
	payloads := 0
	for _, set := range []bool{e.Run != nil, e.Task != nil, e.Epoch != nil, e.Move != nil, e.Fault != nil, e.Sample != nil} {
		if set {
			payloads++
		}
	}
	if payloads > 1 {
		return fmt.Errorf("trace: %s event carries %d payloads", e.Kind, payloads)
	}
	checkID := func(what string, v int) error {
		if v < -1 {
			return fmt.Errorf("trace: %s event has invalid %s %d", e.Kind, what, v)
		}
		return nil
	}
	switch e.Kind {
	case KindRun:
		if e.Run == nil {
			return fmt.Errorf("trace: run event without run payload")
		}
		if e.Run.Scheduler == "" {
			return fmt.Errorf("trace: run event without scheduler")
		}
	case KindEnqueue, KindLaunch, KindDone, KindKill:
		if e.Task == nil {
			return fmt.Errorf("trace: %s event without task payload", e.Kind)
		}
		if e.Task.Job < 0 || e.Task.Task < 0 {
			return fmt.Errorf("trace: %s event for task %d/%d", e.Kind, e.Task.Job, e.Task.Task)
		}
		if err := checkID("node", e.Task.Node); err != nil {
			return err
		}
		if err := checkID("store", e.Task.Store); err != nil {
			return err
		}
	case KindEpoch:
		if e.Epoch == nil {
			return fmt.Errorf("trace: epoch event without epoch payload")
		}
		if e.Epoch.Scheduler == "" || e.Epoch.Epoch <= 0 {
			return fmt.Errorf("trace: epoch event missing scheduler/number")
		}
	case KindMove:
		if e.Move == nil {
			return fmt.Errorf("trace: move event without move payload")
		}
		if e.Move.Object < 0 || e.Move.Block < 0 {
			return fmt.Errorf("trace: move event for block %d/%d", e.Move.Object, e.Move.Block)
		}
		if err := checkID("src", e.Move.Src); err != nil {
			return err
		}
		if err := checkID("dst", e.Move.Dst); err != nil {
			return err
		}
	case KindFault:
		if e.Fault == nil {
			return fmt.Errorf("trace: fault event without fault payload")
		}
		if e.Fault.Kind == "" {
			return fmt.Errorf("trace: fault event without kind")
		}
	case KindSample:
		if e.Sample == nil {
			return fmt.Errorf("trace: sample event without sample payload")
		}
		if e.Sample.Running < 0 || e.Sample.Queued < 0 || e.Sample.Pending < 0 || e.Sample.Done < 0 {
			return fmt.Errorf("trace: sample event with negative counts")
		}
		for i, tc := range e.Sample.Tenants {
			if tc.Tenant == "" {
				return fmt.Errorf("trace: sample tenant entry without a name")
			}
			if tc.TotalUC < 0 || tc.CPUUC < 0 || tc.TransferUC < 0 || tc.PlacementUC < 0 ||
				tc.SpeculativeUC < 0 || tc.FaultUC < 0 {
				return fmt.Errorf("trace: sample tenant %s with negative charges", tc.Tenant)
			}
			if i > 0 && e.Sample.Tenants[i-1].Tenant >= tc.Tenant {
				return fmt.Errorf("trace: sample tenants not sorted (%s before %s)",
					e.Sample.Tenants[i-1].Tenant, tc.Tenant)
			}
		}
	default:
		return fmt.Errorf("trace: unknown event kind %q", e.Kind)
	}
	return nil
}
