package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// JSONL streams events as one JSON object per line — the archival trace
// format cmd/lips-trace consumes. Field order is fixed by the Event
// struct and all values are either simulated-time or exact integers, so
// two runs of the same seeded simulation write byte-identical logs.
type JSONL struct {
	w      *bufio.Writer
	err    error
	events int
}

// NewJSONL returns a JSONL sink writing to w. Call Close to flush.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriter(w)}
}

// Enabled implements Tracer.
func (j *JSONL) Enabled() bool { return true }

// Emit implements Tracer. The first encoding or write error sticks and
// is reported by Close.
func (j *JSONL) Emit(e Event) {
	if j.err != nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(b); err != nil {
		j.err = err
		return
	}
	if err := j.w.WriteByte('\n'); err != nil {
		j.err = err
		return
	}
	j.events++
}

// Events returns how many events were written.
func (j *JSONL) Events() int { return j.events }

// Close flushes the stream and returns the first error encountered.
func (j *JSONL) Close() error {
	if j.err != nil {
		return j.err
	}
	return j.w.Flush()
}

// DecodeLine parses one JSONL trace line strictly: unknown fields are
// rejected and the event is schema-validated.
func DecodeLine(line []byte) (Event, error) {
	var e Event
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&e); err != nil {
		return Event{}, err
	}
	return e, Validate(e)
}

// ReadAll decodes a whole JSONL trace, reporting the first bad line by
// number. Blank lines are skipped.
func ReadAll(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		e, err := DecodeLine(b)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
