package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestNopTracerNoAllocs pins the disabled-path contract: checking
// Enabled and calling Emit on the nop tracer allocates nothing.
func TestNopTracerNoAllocs(t *testing.T) {
	var tr Tracer = Nop{}
	allocs := testing.AllocsPerRun(1000, func() {
		if tr.Enabled() {
			tr.Emit(Event{T: 1, Kind: KindDone})
		}
	})
	if allocs != 0 {
		t.Errorf("nop tracer path allocates %.1f objects per call, want 0", allocs)
	}
	// Multi with no enabled sinks must collapse back to the nop path.
	tr = Multi(nil, Nop{}, nil)
	if tr.Enabled() {
		t.Error("Multi of disabled sinks is enabled")
	}
	allocs = testing.AllocsPerRun(1000, func() {
		if tr.Enabled() {
			tr.Emit(Event{T: 1, Kind: KindDone})
		}
	})
	if allocs != 0 {
		t.Errorf("Multi nop path allocates %.1f objects per call, want 0", allocs)
	}
}

func TestMultiFanOut(t *testing.T) {
	a, b := NewSampler(), NewSampler()
	tr := Multi(a, Nop{}, b)
	if !tr.Enabled() {
		t.Fatal("Multi of enabled sinks is disabled")
	}
	tr.Emit(Event{T: 5, Kind: KindSample, Sample: &SampleInfo{Running: 2}})
	if len(a.Rows) != 1 || len(b.Rows) != 1 {
		t.Fatalf("fan-out rows = %d/%d, want 1/1", len(a.Rows), len(b.Rows))
	}
	if a.Rows[0].S.Running != 2 || a.Rows[0].T != 5 {
		t.Errorf("sample row = %+v", a.Rows[0])
	}
	// A single enabled sink is returned unwrapped.
	if got := Multi(a); got != Tracer(a) {
		t.Errorf("Multi(one) = %T, want the sink itself", got)
	}
}

func TestValidate(t *testing.T) {
	ok := []Event{
		{T: 0, Kind: KindRun, Run: &RunInfo{Scheduler: "fifo"}},
		{T: 1, Kind: KindEnqueue, Task: &TaskInfo{Node: -1, Store: -1}},
		{T: 2, Kind: KindDone, Task: &TaskInfo{Node: 3, Store: 0}},
		{T: 3, Kind: KindEpoch, Epoch: &EpochInfo{Scheduler: "lips", Epoch: 1}},
		{T: 4, Kind: KindMove, Move: &MoveInfo{Src: 0, Dst: 1}},
		{T: 5, Kind: KindFault, Fault: &FaultInfo{Kind: "node-down", Node: 2, Store: -1}},
		{T: 6, Kind: KindSample, Sample: &SampleInfo{}},
	}
	for _, e := range ok {
		if err := Validate(e); err != nil {
			t.Errorf("Validate(%s) = %v, want nil", e.Kind, err)
		}
	}
	bad := []Event{
		{T: -1, Kind: KindSample, Sample: &SampleInfo{}},                     // negative time
		{T: 1, Kind: Kind("bogus")},                                          // unknown kind
		{T: 1, Kind: KindRun},                                                // missing payload
		{T: 1, Kind: KindRun, Run: &RunInfo{}},                               // missing scheduler
		{T: 1, Kind: KindDone},                                               // missing task
		{T: 1, Kind: KindDone, Task: &TaskInfo{Node: -2}},                    // invalid node id
		{T: 1, Kind: KindDone, Task: &TaskInfo{Job: -1}},                     // invalid task key
		{T: 1, Kind: KindEpoch, Epoch: &EpochInfo{Scheduler: "lips"}},        // epoch 0
		{T: 1, Kind: KindMove, Move: &MoveInfo{Block: -1}},                   // invalid block
		{T: 1, Kind: KindFault, Fault: &FaultInfo{}},                         // missing fault kind
		{T: 1, Kind: KindSample, Sample: &SampleInfo{Running: -1}},           // negative count
		{T: 1, Kind: KindSample, Sample: &SampleInfo{}, Fault: &FaultInfo{}}, // two payloads
	}
	for _, e := range bad {
		if err := Validate(e); err == nil {
			t.Errorf("Validate(%s %+v) accepted", e.Kind, e)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{T: 0, Kind: KindRun, Run: &RunInfo{Scheduler: "lips", Nodes: 2, Slots: []int{2, 4},
			Types: []string{"a", "b"}, Zones: []string{"z1", "z2"}, Label: "rt"}},
		{T: 1.5, Kind: KindLaunch, Task: &TaskInfo{Job: 1, Task: 2, Node: 0, Store: 1,
			Attempt: 1, Locality: "zone-local"}},
		{T: 9, Kind: KindDone, Task: &TaskInfo{Job: 1, Task: 2, Node: 0, Store: 1,
			Attempt: 1, DurSec: 7.5, XferSec: 0.5, CPUSec: 7, CostUC: 314159}},
		{T: 10, Kind: KindKill, Task: &TaskInfo{Job: 1, Task: 3, Node: -1, Store: -1, Reason: "dequeue"}},
		{T: 11, Kind: KindSample, Sample: &SampleInfo{Done: 1, TotalUC: 314159, CPUUC: 314159}},
	}
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	for _, e := range events {
		sink.Emit(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Events() != len(events) {
		t.Errorf("Events() = %d, want %d", sink.Events(), len(events))
	}

	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	if *got[2].Task != *events[2].Task || got[2].T != events[2].T {
		t.Errorf("done event round-trip: got %+v want %+v", *got[2].Task, *events[2].Task)
	}
	if !reflect.DeepEqual(*got[4].Sample, *events[4].Sample) {
		t.Errorf("sample round-trip: got %+v", *got[4].Sample)
	}

	// Node/store zero must survive the round trip (no omitempty on ids).
	if got[0].Run.Scheduler != "lips" || got[1].Task.Node != 0 {
		t.Errorf("ids lost in round trip: %+v", got[1].Task)
	}

	// Same events emitted again are byte-identical.
	var buf2 bytes.Buffer
	sink2 := NewJSONL(&buf2)
	for _, e := range events {
		sink2.Emit(e)
	}
	if err := sink2.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("re-encoding the same events is not byte-identical")
	}
}

func TestReadAllRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"t":1,"kind":"done","task":{"job":0,"task":0,"node":0,"store":0},"bogus":1}`,
		"schema":        `{"t":1,"kind":"done"}`,
		"not json":      `nope`,
	}
	for name, line := range cases {
		if _, err := ReadAll(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("%s: accepted %q", name, line)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("%s: error %v does not name the line", name, err)
		}
	}
	// Blank lines are fine.
	got, err := ReadAll(strings.NewReader("\n\n{\"t\":1,\"kind\":\"sample\",\"sample\":{\"running\":0,\"queued\":0,\"pending\":0,\"done\":0,\"free_slots\":0,\"live_slots\":0,\"busy_slot_sec\":0,\"total_uc\":0,\"cpu_uc\":0,\"transfer_uc\":0,\"placement_uc\":0,\"speculative_uc\":0,\"fault_uc\":0,\"node_local\":0,\"zone_local\":0,\"remote\":0,\"no_input\":0}}\n"))
	if err != nil || len(got) != 1 {
		t.Errorf("blank-line skip: got %d events, err %v", len(got), err)
	}
}

func TestSamplerCSV(t *testing.T) {
	s := NewSampler()
	s.Emit(Event{T: 0, Kind: KindSample, Sample: &SampleInfo{FreeSlots: 4, LiveSlots: 4}})
	s.Emit(Event{T: 60, Kind: KindDone, Task: &TaskInfo{}}) // ignored
	s.Emit(Event{T: 120, Kind: KindSample, Sample: &SampleInfo{
		Done: 2, FreeSlots: 2, LiveSlots: 4, BusySlotSec: 90,
		TotalUC: 150000000, CPUUC: 100000000, TransferUC: 50000000, NodeLocal: 2}})
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want 3:\n%s", len(lines), buf.String())
	}
	if lines[0] != CSVHeader {
		t.Errorf("header = %q", lines[0])
	}
	want := "120,150000000,100000000,50000000,0,0,0,0,0,0,2,2,4,90,2,0,0,0"
	if lines[2] != want {
		t.Errorf("row = %q\nwant  %q", lines[2], want)
	}
}
