package trace

import (
	"fmt"
	"os"
)

// Sink is a closeable event destination, as produced by NewSink — what
// command-line tools thread into a run and flush afterwards.
type Sink interface {
	Tracer
	// Events returns how many events or records were written.
	Events() int
	// Close flushes and releases the destination.
	Close() error
}

// fileSink owns the file backing a JSONL or Chrome sink.
type fileSink struct {
	inner Sink
	f     *os.File
}

func (s *fileSink) Enabled() bool { return true }
func (s *fileSink) Emit(e Event)  { s.inner.Emit(e) }
func (s *fileSink) Events() int   { return s.inner.Events() }
func (s *fileSink) Close() error {
	err := s.inner.Close()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// NewSink creates path and returns a sink writing the given format:
// "jsonl" (or empty) for the structured event log, "chrome" for the
// Perfetto-loadable trace-event array. Close flushes and closes the
// file.
func NewSink(path, format string) (Sink, error) {
	switch format {
	case "", "jsonl", "chrome":
	default:
		return nil, fmt.Errorf("trace: unknown format %q (want jsonl or chrome)", format)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	var inner Sink
	if format == "chrome" {
		inner = NewChrome(f)
	} else {
		inner = NewJSONL(f)
	}
	return &fileSink{inner: inner, f: f}, nil
}
