package metrics

import "fmt"

// FaultStats counts what fault injection did to a run: the injected
// events themselves (crashes, recoveries, store losses, slowdowns) and
// the damage the cluster absorbed (attempts killed and re-executed,
// blocks re-replicated or lost outright). The dollar side of the same
// story lives in the ledger's fault category.
type FaultStats struct {
	NodesCrashed   int // node-down events injected
	NodesRecovered int // node-up events injected
	StoresLost     int // store data-loss events injected
	Slowdowns      int // straggler slowdown windows injected

	TasksReexecuted  int // running attempts killed by a crash or store loss
	BlocksReplicated int // replica copies created to replace lost ones
	BlocksLost       int // blocks whose every replica was lost (re-materialized)
}

// Any reports whether any fault was injected or absorbed. The damage
// counters matter on their own: a store loss replayed against a cheap
// placement can re-execute tasks and re-replicate blocks even when the
// injection counters alone would look quiet to a caller that only
// checks one side.
func (fs FaultStats) Any() bool {
	return fs.NodesCrashed+fs.NodesRecovered+fs.StoresLost+fs.Slowdowns+
		fs.TasksReexecuted+fs.BlocksReplicated+fs.BlocksLost > 0
}

// String summarises the stats on one line.
func (fs FaultStats) String() string {
	return fmt.Sprintf("%d crashes, %d recoveries, %d store losses, %d slowdowns; %d tasks re-executed, %d blocks re-replicated (%d lost outright)",
		fs.NodesCrashed, fs.NodesRecovered, fs.StoresLost, fs.Slowdowns,
		fs.TasksReexecuted, fs.BlocksReplicated, fs.BlocksLost)
}
