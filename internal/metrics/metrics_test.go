package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestJainIndexKnownValues(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal shares: %g", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("single winner: %g", got)
	}
	if got := JainIndex([]float64{2, 1}); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("2:1 shares: %g", got)
	}
	if got := JainIndex(nil); got != 1 {
		t.Errorf("empty: %g", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 1 {
		t.Errorf("all zero: %g", got)
	}
}

func TestQuickJainBounds(t *testing.T) {
	check := func(seed int64, n uint8) bool {
		k := 1 + int(n)%20
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, k)
		for i := range xs {
			xs[i] = rng.Float64() * 10
		}
		j := JainIndex(xs)
		return j >= 1/float64(k)-1e-12 && j <= 1+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLocalityCounter(t *testing.T) {
	var lc LocalityCounter
	lc.Observe(NodeLocal)
	lc.Observe(NodeLocal)
	lc.Observe(ZoneLocal)
	lc.Observe(Remote)
	lc.Observe(NoInput)
	if lc.Total() != 5 {
		t.Errorf("Total = %d", lc.Total())
	}
	if lc.Count(NodeLocal) != 2 {
		t.Errorf("NodeLocal = %d", lc.Count(NodeLocal))
	}
	if got := lc.LocalFraction(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("LocalFraction = %g", got)
	}
	var empty LocalityCounter
	if empty.LocalFraction() != 1 {
		t.Error("empty counter should report full locality")
	}
}

func TestLocalityString(t *testing.T) {
	for l, want := range map[Locality]string{
		NodeLocal: "node-local", ZoneLocal: "zone-local", Remote: "remote", NoInput: "no-input",
	} {
		if l.String() != want {
			t.Errorf("%d.String() = %q", l, l.String())
		}
	}
	if Locality(9).String() != "unknown" {
		t.Error("fallback string wrong")
	}
}

func TestNodeCPU(t *testing.T) {
	nc := NewNodeCPU()
	nc.Add(3, 10)
	nc.Add(1, 5)
	nc.Add(3, 2)
	if nc.Of(3) != 12 || nc.Of(1) != 5 || nc.Of(99) != 0 {
		t.Errorf("Of wrong: %g %g", nc.Of(3), nc.Of(1))
	}
	if nodes := nc.Nodes(); len(nodes) != 2 || nodes[0] != 1 || nodes[1] != 3 {
		t.Errorf("Nodes = %v", nodes)
	}
	if nc.Total() != 17 {
		t.Errorf("Total = %g", nc.Total())
	}
	if nc.ActiveNodes(4) != 2 || nc.ActiveNodes(6) != 1 {
		t.Errorf("ActiveNodes wrong")
	}
}

func TestUtilization(t *testing.T) {
	if got := Utilization(50, 10, 10); got != 0.5 {
		t.Errorf("Utilization = %g", got)
	}
	if got := Utilization(200, 10, 10); got != 1 {
		t.Errorf("clamp failed: %g", got)
	}
	if got := Utilization(1, 0, 10); got != 0 {
		t.Errorf("zero slots: %g", got)
	}
}
