package metrics

import (
	"fmt"
	"time"
)

// SolverStats accumulates per-solve LP statistics across the epochs of a
// run, quantifying what warm-starting and parallel pricing buy: how many
// warm starts were attempted and accepted, the iteration counts on each
// path, and the wall-clock split between pricing and the rest of the
// solve.
type SolverStats struct {
	Solves        int // LP solves observed
	WarmAttempted int // solves that offered a starting basis
	WarmAccepted  int // solves where the basis validated and was used

	Iters       int // total simplex iterations, both paths
	Phase1Iters int // iterations spent reaching feasibility (cold only)
	WarmIters   int // iterations on warm-started solves
	ColdIters   int // iterations on cold solves

	SolveTime   time.Duration // wall-clock inside lp.Solve
	PricingTime time.Duration // portion spent in the pricing step

	// Factorization and presolve split of the solve wall-clock: building
	// and updating the basis factorization, the FTRAN/BTRAN triangular
	// solves, and the presolve/postsolve pass.
	FactorTime   time.Duration
	FtranTime    time.Duration
	BtranTime    time.Duration
	PresolveTime time.Duration

	Refactorizations int // from-scratch basis factorizations
	FactorNNZ        int // nonzeros of the last solve's final factorization
	PresolveRows     int // constraint rows removed by presolve, summed
	PresolveCols     int // columns removed by presolve, summed

	// Column-generation and dual-simplex economics: repair pivots that
	// replaced cold restarts, pricing rounds of restricted-master solves,
	// and columns materialized beyond the seed. All zero when the direct
	// solver ran without the Dual option.
	DualPivots    int
	ColGenRounds  int
	ColGenColumns int
}

// Observe records one solve. warmAttempted says a starting basis was
// offered; warmAccepted says the solver used it (as reported by
// Solution.WarmStarted).
func (ss *SolverStats) Observe(iters, phase1 int, warmAttempted, warmAccepted bool, solve, pricing time.Duration) {
	ss.Solves++
	ss.Iters += iters
	ss.SolveTime += solve
	ss.PricingTime += pricing
	if warmAttempted {
		ss.WarmAttempted++
	}
	if warmAccepted {
		ss.WarmAccepted++
		ss.WarmIters += iters
	} else {
		ss.ColdIters += iters
		ss.Phase1Iters += phase1
	}
}

// ObserveFactor records one solve's factorization and presolve detail.
// It complements Observe, which keeps its historical signature; callers
// that have the numbers invoke both per solve.
func (ss *SolverStats) ObserveFactor(factor, ftran, btran, presolve time.Duration,
	refactorizations, factorNNZ, presolveRows, presolveCols int) {
	ss.FactorTime += factor
	ss.FtranTime += ftran
	ss.BtranTime += btran
	ss.PresolveTime += presolve
	ss.Refactorizations += refactorizations
	ss.FactorNNZ = factorNNZ
	ss.PresolveRows += presolveRows
	ss.PresolveCols += presolveCols
}

// ObserveColGen records one solve's dual-repair and column-generation
// detail; zeros are fine for direct solves, so callers can invoke it
// unconditionally alongside Observe.
func (ss *SolverStats) ObserveColGen(dualPivots, rounds, columns int) {
	ss.DualPivots += dualPivots
	ss.ColGenRounds += rounds
	ss.ColGenColumns += columns
}

// IterationsSaved estimates the simplex iterations avoided by warm
// starts: accepted warm solves cost WarmIters instead of the average
// cold solve's iteration count.
func (ss *SolverStats) IterationsSaved() int {
	cold := ss.Solves - ss.WarmAccepted
	if cold == 0 || ss.WarmAccepted == 0 {
		return 0
	}
	perCold := ss.ColdIters / cold
	saved := ss.WarmAccepted*perCold - ss.WarmIters
	if saved < 0 {
		return 0
	}
	return saved
}

// AcceptRate is the fraction of attempted warm starts that were usable.
func (ss *SolverStats) AcceptRate() float64 {
	if ss.WarmAttempted == 0 {
		return 0
	}
	return float64(ss.WarmAccepted) / float64(ss.WarmAttempted)
}

// Merge folds another accumulation into ss, so a benchmark suite can
// aggregate solver statistics across its runs. FactorNNZ, a last-solve
// snapshot rather than a sum, takes the other side's value when it ran
// any solves.
func (ss *SolverStats) Merge(o SolverStats) {
	ss.Solves += o.Solves
	ss.WarmAttempted += o.WarmAttempted
	ss.WarmAccepted += o.WarmAccepted
	ss.Iters += o.Iters
	ss.Phase1Iters += o.Phase1Iters
	ss.WarmIters += o.WarmIters
	ss.ColdIters += o.ColdIters
	ss.SolveTime += o.SolveTime
	ss.PricingTime += o.PricingTime
	ss.FactorTime += o.FactorTime
	ss.FtranTime += o.FtranTime
	ss.BtranTime += o.BtranTime
	ss.PresolveTime += o.PresolveTime
	ss.Refactorizations += o.Refactorizations
	if o.Solves > 0 {
		ss.FactorNNZ = o.FactorNNZ
	}
	ss.PresolveRows += o.PresolveRows
	ss.PresolveCols += o.PresolveCols
	ss.DualPivots += o.DualPivots
	ss.ColGenRounds += o.ColGenRounds
	ss.ColGenColumns += o.ColGenColumns
}

// PricingShare is the fraction of solve wall-clock spent pricing.
func (ss *SolverStats) PricingShare() float64 {
	if ss.SolveTime == 0 {
		return 0
	}
	return float64(ss.PricingTime) / float64(ss.SolveTime)
}

// AvgIters is the mean simplex iteration count per solve.
func (ss *SolverStats) AvgIters() float64 {
	if ss.Solves == 0 {
		return 0
	}
	return float64(ss.Iters) / float64(ss.Solves)
}

// String summarises the stats on one line: the warm-start accept rate,
// iteration economics, and where the solve wall-clock went.
func (ss *SolverStats) String() string {
	s := fmt.Sprintf(
		"%d solves (%d/%d warm, %.0f%% accepted), %d iters (%.1f avg/solve, %d phase1, ~%d saved), solve %v (pricing %.0f%%, factor %v, presolve %v), %d refactor, presolved %d rows/%d cols",
		ss.Solves, ss.WarmAccepted, ss.WarmAttempted, 100*ss.AcceptRate(),
		ss.Iters, ss.AvgIters(), ss.Phase1Iters, ss.IterationsSaved(),
		ss.SolveTime.Round(time.Millisecond), 100*ss.PricingShare(),
		ss.FactorTime.Round(time.Millisecond), ss.PresolveTime.Round(time.Millisecond),
		ss.Refactorizations, ss.PresolveRows, ss.PresolveCols,
	)
	if ss.DualPivots > 0 || ss.ColGenRounds > 0 {
		s += fmt.Sprintf(", %d dual pivots, colgen %d rounds/%d columns",
			ss.DualPivots, ss.ColGenRounds, ss.ColGenColumns)
	}
	return s
}
