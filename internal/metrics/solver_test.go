package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestSolverStatsAccounting(t *testing.T) {
	var ss SolverStats
	// First solve: cold (nothing to warm-start from).
	ss.Observe(100, 40, false, false, 10*time.Millisecond, 2*time.Millisecond)
	// Second: warm attempted and accepted.
	ss.Observe(5, 0, true, true, time.Millisecond, 200*time.Microsecond)
	// Third: warm attempted but rejected → cold path.
	ss.Observe(80, 30, true, false, 8*time.Millisecond, time.Millisecond)

	if ss.Solves != 3 || ss.WarmAttempted != 2 || ss.WarmAccepted != 1 {
		t.Fatalf("counts: %+v", ss)
	}
	if ss.Iters != 185 || ss.WarmIters != 5 || ss.ColdIters != 180 {
		t.Fatalf("iters: %+v", ss)
	}
	if ss.Phase1Iters != 70 {
		t.Fatalf("phase1: %d", ss.Phase1Iters)
	}
	if ss.SolveTime != 19*time.Millisecond {
		t.Fatalf("solve time: %v", ss.SolveTime)
	}
	// One warm solve replaced an average cold solve (180/2 = 90 iters)
	// with 5 iterations.
	if saved := ss.IterationsSaved(); saved != 85 {
		t.Fatalf("iterations saved: %d", saved)
	}
	if r := ss.AcceptRate(); r != 0.5 {
		t.Fatalf("accept rate: %g", r)
	}
	if s := ss.String(); !strings.Contains(s, "1/2 warm") {
		t.Fatalf("string: %q", s)
	}
}

func TestSolverStatsEmpty(t *testing.T) {
	var ss SolverStats
	if ss.IterationsSaved() != 0 || ss.AcceptRate() != 0 {
		t.Fatal("empty stats should report zeros")
	}
	// All-warm runs have no cold baseline to estimate savings from.
	ss.Observe(3, 0, true, true, time.Millisecond, 0)
	if ss.IterationsSaved() != 0 {
		t.Fatalf("saved without a cold baseline: %d", ss.IterationsSaved())
	}
}
