// Package metrics computes the evaluation metrics the paper reports:
// dollar cost (via cost.Ledger), makespan and total job execution time,
// per-node accumulated CPU time (Fig. 11), data locality percentages, slot
// utilization, and Jain's fairness index.
package metrics

import (
	"math"
	"sort"
)

// Locality classifies where a task read its input from.
type Locality int

// Locality levels, best first.
const (
	NodeLocal Locality = iota // co-located store
	ZoneLocal                 // same availability zone
	Remote                    // cross-zone
	NoInput                   // the task read nothing (Pi)
)

// String names the locality level.
func (l Locality) String() string {
	switch l {
	case NodeLocal:
		return "node-local"
	case ZoneLocal:
		return "zone-local"
	case Remote:
		return "remote"
	case NoInput:
		return "no-input"
	}
	return "unknown"
}

// JainIndex computes Jain's fairness index over nonnegative allocations:
// (Σx)² / (n·Σx²). It is 1 for perfectly equal shares and 1/n for a
// single-winner allocation. Empty or all-zero inputs yield 1.
func JainIndex(shares []float64) float64 {
	if len(shares) == 0 {
		return 1
	}
	sum, sumSq := 0.0, 0.0
	for _, x := range shares {
		if x < 0 {
			x = 0
		}
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(shares)) * sumSq)
}

// LocalityCounter tallies task locality.
type LocalityCounter struct {
	counts [4]int
}

// Observe records one task's locality.
func (lc *LocalityCounter) Observe(l Locality) { lc.counts[l]++ }

// Count returns the tally for one level.
func (lc *LocalityCounter) Count(l Locality) int { return lc.counts[l] }

// Total returns the number of observed tasks.
func (lc *LocalityCounter) Total() int {
	t := 0
	for _, c := range lc.counts {
		t += c
	}
	return t
}

// LocalFraction returns the fraction of input-reading tasks that were
// node-local (the delay-scheduling literature's "data locality" metric).
func (lc *LocalityCounter) LocalFraction() float64 {
	withInput := lc.Total() - lc.counts[NoInput]
	if withInput == 0 {
		return 1
	}
	return float64(lc.counts[NodeLocal]) / float64(withInput)
}

// NodeCPU tracks accumulated ECU-seconds per node (Fig. 11's breakdown).
type NodeCPU struct {
	secs map[int]float64
}

// NewNodeCPU returns an empty tracker.
func NewNodeCPU() *NodeCPU { return &NodeCPU{secs: make(map[int]float64)} }

// Add accrues ECU-seconds to a node.
func (nc *NodeCPU) Add(node int, ecuSec float64) { nc.secs[node] += ecuSec }

// Of returns the accumulated ECU-seconds of one node.
func (nc *NodeCPU) Of(node int) float64 { return nc.secs[node] }

// Nodes returns the node ids seen, sorted.
func (nc *NodeCPU) Nodes() []int {
	out := make([]int, 0, len(nc.secs))
	for n := range nc.secs {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Total sums over all nodes.
func (nc *NodeCPU) Total() float64 {
	t := 0.0
	for _, s := range nc.secs {
		t += s
	}
	return t
}

// ActiveNodes returns how many nodes accumulated more than threshold
// ECU-seconds — the Fig. 11 parallelism measure.
func (nc *NodeCPU) ActiveNodes(threshold float64) int {
	n := 0
	for _, s := range nc.secs {
		if s > threshold {
			n++
		}
	}
	return n
}

// Utilization is busy slot-time over available slot-time.
func Utilization(busySlotSec, totalSlots, horizonSec float64) float64 {
	if totalSlots <= 0 || horizonSec <= 0 {
		return 0
	}
	u := busySlotSec / (totalSlots * horizonSec)
	return math.Min(1, u)
}
