package mcmf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lips/internal/lp"
)

func TestSimplePath(t *testing.T) {
	// s→a→t with capacity 5, cost 1+2.
	g := New(3)
	g.AddEdge(0, 1, 5, 1)
	g.AddEdge(1, 2, 5, 2)
	flow, cost := g.Flow(0, 2, 100)
	if flow != 5 || cost != 15 {
		t.Errorf("flow=%d cost=%d, want 5/15", flow, cost)
	}
}

func TestChoosesCheaperPath(t *testing.T) {
	// Two parallel paths; the cheap one saturates first.
	g := New(4)
	cheapA := g.AddEdge(0, 1, 3, 1)
	g.AddEdge(1, 3, 3, 1)
	expensiveA := g.AddEdge(0, 2, 3, 5)
	g.AddEdge(2, 3, 3, 5)
	flow, cost := g.Flow(0, 3, 4)
	if flow != 4 {
		t.Fatalf("flow = %d", flow)
	}
	// 3 units at cost 2 each + 1 unit at cost 10.
	if cost != 3*2+1*10 {
		t.Errorf("cost = %d, want 16", cost)
	}
	if g.EdgeFlow(cheapA) != 3 || g.EdgeFlow(expensiveA) != 1 {
		t.Errorf("edge flows: cheap=%d expensive=%d", g.EdgeFlow(cheapA), g.EdgeFlow(expensiveA))
	}
}

func TestMaxFlowLimit(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 10, 3)
	flow, cost := g.Flow(0, 1, 4)
	if flow != 4 || cost != 12 {
		t.Errorf("flow=%d cost=%d", flow, cost)
	}
}

func TestDisconnected(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 5, 1)
	flow, cost := g.Flow(0, 2, 10)
	if flow != 0 || cost != 0 {
		t.Errorf("flow=%d cost=%d, want 0/0", flow, cost)
	}
}

func TestNegativeCostEdge(t *testing.T) {
	// A negative-cost detour is preferred.
	g := New(4)
	g.AddEdge(0, 1, 2, 4)  // direct-ish: 0→1
	g.AddEdge(0, 2, 2, 1)  // detour 0→2
	g.AddEdge(2, 1, 2, -3) // 2→1 at negative cost
	g.AddEdge(1, 3, 4, 0)
	flow, cost := g.Flow(0, 3, 2)
	if flow != 2 {
		t.Fatalf("flow = %d", flow)
	}
	// Both units go 0→2→1→3 at cost -2 each.
	if cost != -4 {
		t.Errorf("cost = %d, want -4", cost)
	}
}

func TestPanics(t *testing.T) {
	g := New(2)
	for _, f := range []func(){
		func() { g.AddEdge(-1, 0, 1, 1) },
		func() { g.AddEdge(0, 5, 1, 1) },
		func() { g.AddEdge(0, 1, -1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestQuickAgainstLP cross-validates min-cost flow against the LP solver:
// a transportation problem min Σ c·x, Σ_j x_ij = supply_i, Σ_i x_ij ≤
// cap_j is both a flow network and a linear program.
func TestQuickAgainstLP(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nSup := 1 + rng.Intn(4)
		nDem := 1 + rng.Intn(4)
		supply := make([]int64, nSup)
		capacity := make([]int64, nDem)
		totalSupply, totalCap := int64(0), int64(0)
		for i := range supply {
			supply[i] = int64(1 + rng.Intn(8))
			totalSupply += supply[i]
		}
		for j := range capacity {
			capacity[j] = int64(1 + rng.Intn(8))
			totalCap += capacity[j]
		}
		if totalCap < totalSupply {
			// Ensure feasibility by topping up the last sink.
			capacity[nDem-1] += totalSupply - totalCap
		}
		costs := make([][]int64, nSup)
		for i := range costs {
			costs[i] = make([]int64, nDem)
			for j := range costs[i] {
				costs[i][j] = int64(rng.Intn(20))
			}
		}

		// Flow formulation: source → suppliers → sinks → target.
		g := New(nSup + nDem + 2)
		src, dst := nSup+nDem, nSup+nDem+1
		for i, s := range supply {
			g.AddEdge(src, i, s, 0)
		}
		for j, c := range capacity {
			g.AddEdge(nSup+j, dst, c, 0)
		}
		for i := range supply {
			for j := range capacity {
				g.AddEdge(i, nSup+j, supply[i], costs[i][j])
			}
		}
		flow, flowCost := g.Flow(src, dst, totalSupply)
		if flow != totalSupply {
			t.Logf("seed %d: flow %d of %d", seed, flow, totalSupply)
			return false
		}

		// LP formulation.
		p := lp.New("transport")
		vars := make([][]lp.Var, nSup)
		supRows := make([]lp.Con, nSup)
		capRows := make([]lp.Con, nDem)
		for i := range supply {
			supRows[i] = p.AddCon("supply", lp.EQ, float64(supply[i]))
		}
		for j := range capacity {
			capRows[j] = p.AddCon("cap", lp.LE, float64(capacity[j]))
		}
		for i := range supply {
			vars[i] = make([]lp.Var, nDem)
			for j := range capacity {
				v := p.AddVar("x", 0, lp.Inf, float64(costs[i][j]))
				p.SetCoef(supRows[i], v, 1)
				p.SetCoef(capRows[j], v, 1)
				vars[i][j] = v
			}
		}
		sol, err := p.Solve(lp.Options{})
		if err != nil || sol.Status != lp.Optimal {
			t.Logf("seed %d: LP status %v err %v", seed, sol.Status, err)
			return false
		}
		if math.Abs(sol.Objective-float64(flowCost)) > 1e-6*(1+math.Abs(sol.Objective)) {
			t.Logf("seed %d: flow cost %d, LP %g", seed, flowCost, sol.Objective)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
