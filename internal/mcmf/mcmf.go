// Package mcmf implements min-cost max-flow, the substrate behind
// graph-based cluster schedulers like Quincy (Isard et al., SOSP'09),
// which the paper discusses as the main graph-based alternative to its LP
// formulation. The solver is successive shortest augmenting paths with
// SPFA (Bellman–Ford queue) path finding, which tolerates the negative
// arc costs that appear in scheduling networks.
package mcmf

import "fmt"

// EdgeID identifies an edge for flow queries.
type EdgeID int

// edge is stored twice: the forward arc and its residual reverse arc at
// negated cost.
type edge struct {
	to   int
	cap  int64
	cost int64
	flow int64
}

// Graph is a flow network under construction. Nodes are dense integers
// [0, n).
type Graph struct {
	n     int
	edges []edge // even index: forward, odd: its reverse
	adj   [][]int
}

// New returns an empty graph with n nodes.
func New(n int) *Graph {
	return &Graph{n: n, adj: make([][]int, n)}
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.n }

// AddEdge adds a directed edge u→v with the given capacity and per-unit
// cost, returning its id.
func (g *Graph) AddEdge(u, v int, cap, cost int64) EdgeID {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("mcmf: edge %d→%d outside graph of %d nodes", u, v, g.n))
	}
	if cap < 0 {
		panic(fmt.Sprintf("mcmf: negative capacity %d", cap))
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, edge{to: v, cap: cap, cost: cost})
	g.adj[u] = append(g.adj[u], int(id))
	g.edges = append(g.edges, edge{to: u, cap: 0, cost: -cost})
	g.adj[v] = append(g.adj[v], int(id)+1)
	return id
}

// EdgeFlow returns the flow pushed through a forward edge.
func (g *Graph) EdgeFlow(id EdgeID) int64 { return g.edges[id].flow }

const inf = int64(1) << 62

// Flow pushes up to maxFlow units from s to t along successively cheapest
// augmenting paths and returns the total flow and its cost. Pass a huge
// maxFlow for a plain min-cost max-flow. Costs may be negative as long as
// the graph has no negative-cost cycle reachable with residual capacity.
func (g *Graph) Flow(s, t int, maxFlow int64) (flow, cost int64) {
	if s == t {
		return 0, 0
	}
	dist := make([]int64, g.n)
	inQueue := make([]bool, g.n)
	prevEdge := make([]int, g.n)
	for flow < maxFlow {
		// SPFA from s.
		for i := range dist {
			dist[i] = inf
			prevEdge[i] = -1
		}
		dist[s] = 0
		queue := []int{s}
		inQueue[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			inQueue[u] = false
			for _, ei := range g.adj[u] {
				e := &g.edges[ei]
				if e.cap-e.flow <= 0 {
					continue
				}
				if nd := dist[u] + e.cost; nd < dist[e.to] {
					dist[e.to] = nd
					prevEdge[e.to] = ei
					if !inQueue[e.to] {
						queue = append(queue, e.to)
						inQueue[e.to] = true
					}
				}
			}
		}
		if dist[t] >= inf {
			break // no augmenting path left
		}
		// Bottleneck along the path.
		push := maxFlow - flow
		for v := t; v != s; {
			e := &g.edges[prevEdge[v]]
			if r := e.cap - e.flow; r < push {
				push = r
			}
			v = g.edges[prevEdge[v]^1].to
		}
		for v := t; v != s; {
			ei := prevEdge[v]
			g.edges[ei].flow += push
			g.edges[ei^1].flow -= push
			v = g.edges[ei^1].to
		}
		flow += push
		cost += push * dist[t]
	}
	return flow, cost
}
