package lp

import (
	"time"

	"lips/internal/obs"
)

// Solve runs the two-phase bounded-variable revised simplex method and
// returns the solution; see solve (simplex.go) for the algorithm. When
// Options.Metrics is set, each solve additionally publishes its
// statistics into the registry's lips_lp_* families; with it nil this
// wrapper is a single branch over the core solver.
func (p *Problem) Solve(opts Options) (*Solution, error) {
	if opts.Metrics == nil {
		return p.solve(opts)
	}
	om := obs.RegisterLP(opts.Metrics)
	start := time.Now()
	sol, err := p.solve(opts)
	om.Solves.Inc()
	om.SolveSeconds.Add(time.Since(start).Seconds())
	workers := opts.PricingWorkers
	if workers < 1 {
		workers = 1
	}
	om.PricingWorkers.Set(float64(workers))
	if sol == nil {
		return sol, err
	}
	om.Iterations.Add(float64(sol.Iters))
	om.Phase1.Add(float64(sol.Phase1))
	om.DualPivots.Add(float64(sol.DualIters))
	if sol.WarmStarted {
		om.WarmStarts.Inc()
	}
	om.Refactorizations.Add(float64(sol.Refactorizations))
	om.PresolveRows.Add(float64(sol.PresolveRows))
	om.PresolveCols.Add(float64(sol.PresolveCols))
	om.PricingSeconds.Add(sol.PricingTime.Seconds())
	om.FactorSeconds.Add((sol.FactorTime + sol.FtranTime + sol.BtranTime).Seconds())
	om.PresolveSeconds.Add(sol.PresolveTime.Seconds())
	return sol, err
}
