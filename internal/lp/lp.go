// Package lp implements linear programming for the LiPS scheduler.
//
// The package provides a problem builder (Problem) and two solvers: a
// production two-phase bounded-variable revised simplex (Solve) and a dense
// tableau reference implementation (SolveDense) used for cross-checking in
// tests. Problems are stored column-wise and sparse, because LiPS scheduling
// LPs have at most four nonzeros per column.
//
// All problems are minimization problems. Variables carry explicit bounds
// [Lower, Upper]; upper bounds are handled by the bounded-variable pivoting
// rule rather than by extra constraint rows, which keeps the basis small.
package lp

import (
	"fmt"
	"math"
)

// Inf is the canonical unbounded value for variable bounds.
var Inf = math.Inf(1)

// Sense is the direction of a constraint row.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // ≤ rhs
	GE              // ≥ rhs
	EQ              // = rhs
)

// String returns the conventional symbol for the sense.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return fmt.Sprintf("Sense(%d)", int(s))
}

// Var identifies a variable in a Problem.
type Var int

// Con identifies a constraint row in a Problem.
type Con int

// nz is a single nonzero coefficient in a column.
type nz struct {
	row  int
	coef float64
}

type variable struct {
	name  string
	lower float64
	upper float64
	cost  float64
	col   []nz
}

type constraint struct {
	name  string
	sense Sense
	rhs   float64
}

// Problem is a linear program under construction. The zero value is not
// usable; create problems with New.
type Problem struct {
	name string
	vars []variable
	cons []constraint
}

// New returns an empty minimization problem with the given name.
func New(name string) *Problem {
	return &Problem{name: name}
}

// Name returns the problem name.
func (p *Problem) Name() string { return p.name }

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.vars) }

// NumCons returns the number of constraint rows added so far.
func (p *Problem) NumCons() int { return len(p.cons) }

// AddVar adds a variable with bounds [lower, upper] and objective
// coefficient cost, returning its handle. AddVar panics if the bounds are
// inverted or lower is +Inf, since that is a program construction bug.
func (p *Problem) AddVar(name string, lower, upper, cost float64) Var {
	if lower > upper {
		panic(fmt.Sprintf("lp: variable %q has inverted bounds [%g, %g]", name, lower, upper))
	}
	if math.IsInf(lower, 1) || math.IsInf(upper, -1) {
		panic(fmt.Sprintf("lp: variable %q has infinite bound of the wrong sign", name))
	}
	if math.IsNaN(lower) || math.IsNaN(upper) || math.IsNaN(cost) {
		panic(fmt.Sprintf("lp: variable %q has NaN bound or cost", name))
	}
	p.vars = append(p.vars, variable{name: name, lower: lower, upper: upper, cost: cost})
	return Var(len(p.vars) - 1)
}

// AddCon adds an empty constraint row with the given sense and right-hand
// side, returning its handle. Coefficients are attached with SetCoef.
func (p *Problem) AddCon(name string, sense Sense, rhs float64) Con {
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		panic(fmt.Sprintf("lp: constraint %q has non-finite rhs %g", name, rhs))
	}
	p.cons = append(p.cons, constraint{name: name, sense: sense, rhs: rhs})
	return Con(len(p.cons) - 1)
}

// SetCoef sets the coefficient of variable v in constraint c. Setting the
// same (c, v) pair twice accumulates, which is convenient for objective
// terms assembled from several model components. Zero coefficients are
// ignored.
func (p *Problem) SetCoef(c Con, v Var, coef float64) {
	if math.IsNaN(coef) || math.IsInf(coef, 0) {
		panic(fmt.Sprintf("lp: non-finite coefficient %g for var %d in con %d", coef, v, c))
	}
	if coef == 0 {
		return
	}
	col := &p.vars[v].col
	for i := range *col {
		if (*col)[i].row == int(c) {
			(*col)[i].coef += coef
			return
		}
	}
	*col = append(*col, nz{row: int(c), coef: coef})
}

// AddCost adds delta to the objective coefficient of v.
func (p *Problem) AddCost(v Var, delta float64) {
	if math.IsNaN(delta) || math.IsInf(delta, 0) {
		panic(fmt.Sprintf("lp: non-finite cost delta %g for var %d", delta, v))
	}
	p.vars[v].cost += delta
}

// Cost returns the current objective coefficient of v.
func (p *Problem) Cost(v Var) float64 { return p.vars[v].cost }

// SetCost replaces the objective coefficient of v. Together with SetRHS
// and SetBounds it supports in-place epoch-to-epoch drift (prices,
// capacities, deadlines) without rebuilding the problem, which keeps
// warm-start bases valid: the column structure is untouched.
func (p *Problem) SetCost(v Var, cost float64) {
	if math.IsNaN(cost) || math.IsInf(cost, 0) {
		panic(fmt.Sprintf("lp: non-finite cost %g for var %d", cost, v))
	}
	p.vars[v].cost = cost
}

// SetRHS replaces the right-hand side of c.
func (p *Problem) SetRHS(c Con, rhs float64) {
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		panic(fmt.Sprintf("lp: non-finite rhs %g for con %d", rhs, c))
	}
	p.cons[c].rhs = rhs
}

// SetBounds replaces the bounds of v, with the same validation as AddVar.
func (p *Problem) SetBounds(v Var, lower, upper float64) {
	if lower > upper {
		panic(fmt.Sprintf("lp: variable %q set to inverted bounds [%g, %g]", p.vars[v].name, lower, upper))
	}
	if math.IsInf(lower, 1) || math.IsInf(upper, -1) {
		panic(fmt.Sprintf("lp: variable %q set to infinite bound of the wrong sign", p.vars[v].name))
	}
	if math.IsNaN(lower) || math.IsNaN(upper) {
		panic(fmt.Sprintf("lp: variable %q set to NaN bound", p.vars[v].name))
	}
	p.vars[v].lower, p.vars[v].upper = lower, upper
}

// Bounds returns the bounds of v.
func (p *Problem) Bounds(v Var) (lower, upper float64) {
	return p.vars[v].lower, p.vars[v].upper
}

// VarName returns the name of v.
func (p *Problem) VarName(v Var) string { return p.vars[v].name }

// ConName returns the name of c.
func (p *Problem) ConName(c Con) string { return p.cons[c].name }

// ConSense returns the sense of c.
func (p *Problem) ConSense(c Con) Sense { return p.cons[c].sense }

// ConRHS returns the right-hand side of c.
func (p *Problem) ConRHS(c Con) float64 { return p.cons[c].rhs }

// Coef returns the coefficient of v in c (zero if absent).
func (p *Problem) Coef(c Con, v Var) float64 {
	for _, e := range p.vars[v].col {
		if e.row == int(c) {
			return e.coef
		}
	}
	return 0
}

// NumNonzeros returns the total number of stored coefficients.
func (p *Problem) NumNonzeros() int {
	n := 0
	for i := range p.vars {
		n += len(p.vars[i].col)
	}
	return n
}

// Objective evaluates the objective at point x, which must have one entry
// per variable.
func (p *Problem) Objective(x []float64) float64 {
	if len(x) != len(p.vars) {
		panic(fmt.Sprintf("lp: Objective: got %d values for %d variables", len(x), len(p.vars)))
	}
	obj := 0.0
	for i := range p.vars {
		obj += p.vars[i].cost * x[i]
	}
	return obj
}

// Activity returns the row activities A·x.
func (p *Problem) Activity(x []float64) []float64 {
	if len(x) != len(p.vars) {
		panic(fmt.Sprintf("lp: Activity: got %d values for %d variables", len(x), len(p.vars)))
	}
	act := make([]float64, len(p.cons))
	for i := range p.vars {
		if x[i] == 0 {
			continue
		}
		for _, e := range p.vars[i].col {
			act[e.row] += e.coef * x[i]
		}
	}
	return act
}

// CheckFeasible reports whether x satisfies all bounds and constraints to
// within tol, returning a descriptive error for the first violation found.
func (p *Problem) CheckFeasible(x []float64, tol float64) error {
	if len(x) != len(p.vars) {
		return fmt.Errorf("lp: CheckFeasible: got %d values for %d variables", len(x), len(p.vars))
	}
	for i := range p.vars {
		v := &p.vars[i]
		if x[i] < v.lower-tol || x[i] > v.upper+tol {
			return fmt.Errorf("lp: variable %q = %g violates bounds [%g, %g]", v.name, x[i], v.lower, v.upper)
		}
	}
	act := p.Activity(x)
	for j := range p.cons {
		c := &p.cons[j]
		// Scale the tolerance by the row magnitude so that rows with
		// large coefficients (e.g. byte-denominated capacities) are not
		// spuriously flagged.
		rtol := tol * (1 + math.Abs(c.rhs) + math.Abs(act[j]))
		switch c.sense {
		case LE:
			if act[j] > c.rhs+rtol {
				return fmt.Errorf("lp: constraint %q: %g > %g", c.name, act[j], c.rhs)
			}
		case GE:
			if act[j] < c.rhs-rtol {
				return fmt.Errorf("lp: constraint %q: %g < %g", c.name, act[j], c.rhs)
			}
		case EQ:
			if math.Abs(act[j]-c.rhs) > rtol {
				return fmt.Errorf("lp: constraint %q: %g != %g", c.name, act[j], c.rhs)
			}
		}
	}
	return nil
}
