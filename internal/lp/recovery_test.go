package lp

import (
	"math"
	"strings"
	"testing"
)

// factorModes enumerates the basis representations for tests that must
// hold on both paths.
var factorModes = []struct {
	name string
	mode FactorMode
}{
	{"lu", FactorLU},
	{"dense", FactorDense},
}

// duplicateColumnProblem builds an LP with two identical structural
// columns, so a basis holding both is exactly singular.
func duplicateColumnProblem() (*Problem, Var, Var) {
	p := New("dup")
	x := p.AddVar("x", 0, 10, 1)
	y := p.AddVar("y", 0, 10, 1)
	c0 := p.AddCon("r0", LE, 4)
	c1 := p.AddCon("r1", LE, 3)
	p.SetCoef(c0, x, 1)
	p.SetCoef(c0, y, 1)
	p.SetCoef(c1, x, 1)
	p.SetCoef(c1, y, 1)
	return p, x, y
}

// TestRefactorizeSingularBasis drives both factorizations directly into a
// singular basis and checks that they report it instead of producing a
// bogus factorization.
func TestRefactorizeSingularBasis(t *testing.T) {
	for _, fm := range factorModes {
		t.Run(fm.name, func(t *testing.T) {
			p, _, _ := duplicateColumnProblem()
			opts := Options{Factor: fm.mode}.withDefaults(len(p.cons), len(p.vars))
			s := newSimplexState(p, opts)
			s.status = make([]int, len(s.cols), cap(s.cols))
			s.value = make([]float64, len(s.cols), cap(s.cols))
			s.basis = make([]int, s.m)
			s.xB = make([]float64, s.m)
			s.factor = newFactorizer(s)
			s.y = make([]float64, s.m)
			s.cb = make([]float64, s.m)
			s.w = make([]float64, s.m)
			s.coldStart()
			// Force both duplicate structural columns basic: B is the
			// all-ones 2×2 matrix, rank 1.
			s.basis[0], s.basis[1] = 0, 1
			s.status[0], s.status[1] = basic, basic
			s.status[s.nStruct], s.status[s.nStruct+1] = atLower, atLower
			err := s.factor.refactorize()
			if err == nil {
				t.Fatal("refactorize() = nil, want singular-basis error")
			}
			if !strings.Contains(err.Error(), "singular") {
				t.Errorf("refactorize() error = %q, want mention of singularity", err)
			}
		})
	}
}

// TestWarmStartSingularBasisFallsBack feeds Solve a syntactically valid
// warm-start basis that is numerically singular and checks the solver
// silently falls back to a cold start and still reaches the optimum.
func TestWarmStartSingularBasisFallsBack(t *testing.T) {
	for _, fm := range factorModes {
		t.Run(fm.name, func(t *testing.T) {
			p, _, _ := duplicateColumnProblem()
			ws := &Basis{
				NumVars: 2, NumCons: 2,
				RowCol:  []int32{0, 1}, // both duplicate columns basic
				ColStat: []int8{0, 0, atLower, atLower},
			}
			sol, err := p.Solve(Options{Factor: fm.mode, WarmStart: ws})
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if sol.WarmStarted {
				t.Error("WarmStarted = true, want cold fallback from singular basis")
			}
			if sol.Status != Optimal {
				t.Fatalf("status = %v, want optimal", sol.Status)
			}
			if math.Abs(sol.Objective) > 1e-9 {
				t.Errorf("objective = %g, want 0", sol.Objective)
			}
		})
	}
}

// TestUnsafePivotTriggersRefactorize constructs a solve whose second pivot
// element is below the 1e-11 safety threshold, so iterate must refactorize
// and retry before accepting it. Presolve is disabled because the tiny
// coefficient lives in a singleton row it would otherwise fold away.
func TestUnsafePivotTriggersRefactorize(t *testing.T) {
	for _, fm := range factorModes {
		t.Run(fm.name, func(t *testing.T) {
			p := New("tinypivot")
			x := p.AddVar("x", 0, Inf, -1)
			y := p.AddVar("y", 0, Inf, -2)
			c0 := p.AddCon("r0", LE, 1)
			c1 := p.AddCon("r1", LE, 1)
			p.SetCoef(c0, y, 1)
			p.SetCoef(c1, x, 1e-12)
			// Tol below the pivot magnitude so the ratio test selects it;
			// the 1e-11 safety threshold still rejects it once.
			sol, err := p.Solve(Options{
				Factor: fm.mode, Presolve: PresolveOff, Tol: 1e-13,
			})
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if sol.Status != Optimal {
				t.Fatalf("status = %v, want optimal", sol.Status)
			}
			// y = 1 (first, safe pivot); x = 1e12 through the tiny pivot.
			if math.Abs(sol.X[int(y)]-1) > 1e-6 {
				t.Errorf("y = %g, want 1", sol.X[int(y)])
			}
			if math.Abs(sol.X[int(x)]-1e12) > 1e-6*1e12 {
				t.Errorf("x = %g, want 1e12", sol.X[int(x)])
			}
			// One refactorization from the unsafe-pivot retry plus the
			// final clean-up refactorization at extraction.
			if sol.Refactorizations < 2 {
				t.Errorf("Refactorizations = %d, want >= 2 (unsafe-pivot retry)",
					sol.Refactorizations)
			}
		})
	}
}
