package lp

import (
	"math"
	"math/rand"
	"testing"
)

// driftRHS shifts every finite right-hand side of p's inequality rows by
// up to ±frac, deterministically per row — the re-solve-after-bound-change
// pattern epochs produce (capacity and deadline drift). Equality rows are
// left alone so feasibility is not destroyed outright.
func driftRHS(p *Problem, frac float64, rng *rand.Rand) {
	for i := 0; i < p.NumCons(); i++ {
		c := Con(i)
		if p.ConSense(c) == EQ {
			continue
		}
		rhs := p.ConRHS(c)
		p.SetRHS(c, rhs*(1+frac*(2*rng.Float64()-1)))
	}
}

// TestDualResolveMatchesColdLiPSShaped is the core dual-simplex
// differential: solve, drift the right-hand sides far past the warm-start
// feasibility tolerance, then re-solve warm with Options.Dual and compare
// against a cold solve of the drifted problem. The dual path must accept
// the stale basis (WarmStarted) and land on the cold objective.
func TestDualResolveMatchesColdLiPSShaped(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sawDualPivots := false
	for trial := 0; trial < 30; trial++ {
		jobs := 3 + rng.Intn(10)
		machines := 3 + rng.Intn(8)
		stores := 2 + rng.Intn(6)
		p := lipsShapedLP(jobs, machines, stores, rand.New(rand.NewSource(int64(100+trial))), rng)
		base, err := p.Solve(Options{})
		if err != nil {
			t.Fatalf("trial %d: base: %v", trial, err)
		}
		if base.Status != Optimal || base.Basis == nil {
			continue
		}
		driftRHS(p, 0.15, rng)
		cold, err := p.Solve(Options{})
		if err != nil {
			t.Fatalf("trial %d: cold: %v", trial, err)
		}
		warm, err := p.Solve(Options{WarmStart: base.Basis, Dual: true, Presolve: PresolveOff})
		if err != nil {
			t.Fatalf("trial %d: warm+dual: %v", trial, err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("trial %d: warm+dual status %v, cold %v", trial, warm.Status, cold.Status)
		}
		if cold.Status != Optimal {
			continue
		}
		if d := relDiff(warm.Objective, cold.Objective); d > 1e-6 {
			t.Errorf("trial %d: warm+dual objective %g, cold %g (rel %g)", trial, warm.Objective, cold.Objective, d)
		}
		if err := p.CheckFeasible(warm.X, 1e-6); err != nil {
			t.Errorf("trial %d: %v", trial, err)
		}
		if warm.DualIters > 0 {
			sawDualPivots = true
			if !warm.WarmStarted {
				t.Errorf("trial %d: dual pivots ran but WarmStarted is false", trial)
			}
		}
	}
	if !sawDualPivots {
		t.Error("no trial exercised the dual repair path; drift too small or entry condition broken")
	}
}

// TestDualResolveMatchesColdRandom fuzzes the dual differential over the
// random corpus.
func TestDualResolveMatchesColdRandom(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0xd0a1))
		p := randomProblem(rng)
		base, err := p.Solve(Options{})
		if err != nil {
			t.Fatalf("seed %d: base: %v", seed, err)
		}
		if base.Status != Optimal || base.Basis == nil {
			continue
		}
		driftRHS(p, 0.2, rng)
		cold, err := p.Solve(Options{})
		if err != nil {
			t.Fatalf("seed %d: cold: %v", seed, err)
		}
		warm, err := p.Solve(Options{WarmStart: base.Basis, Dual: true, Presolve: PresolveOff})
		if err != nil {
			t.Fatalf("seed %d: warm+dual: %v", seed, err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("seed %d: warm+dual status %v, cold %v", seed, warm.Status, cold.Status)
		}
		if cold.Status != Optimal {
			continue
		}
		if d := relDiff(warm.Objective, cold.Objective); d > 1e-6 {
			t.Errorf("seed %d: warm+dual objective %g, cold %g (rel %g)", seed, warm.Objective, cold.Objective, d)
		}
	}
}

// TestDualResolveHardCorpus drifts the hard problems and checks the dual
// path against a cold re-solve — Klee–Minty's huge coefficient spread and
// the degenerate assignment are where a sloppy ratio test would show.
func TestDualResolveHardCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tc := range hardCorpus() {
		p := tc.p()
		base, err := p.Solve(Options{})
		if err != nil {
			t.Fatalf("%s: base: %v", tc.name, err)
		}
		if base.Status != Optimal || base.Basis == nil {
			continue
		}
		driftRHS(p, 0.1, rng)
		cold, err := p.Solve(Options{})
		if err != nil {
			t.Fatalf("%s: cold: %v", tc.name, err)
		}
		warm, err := p.Solve(Options{WarmStart: base.Basis, Dual: true, Presolve: PresolveOff})
		if err != nil {
			t.Fatalf("%s: warm+dual: %v", tc.name, err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("%s: warm+dual status %v, cold %v", tc.name, warm.Status, cold.Status)
		}
		if cold.Status == Optimal {
			if d := relDiff(warm.Objective, cold.Objective); d > 1e-6 {
				t.Errorf("%s: warm+dual objective %g, cold %g (rel %g)", tc.name, warm.Objective, cold.Objective, d)
			}
		}
	}
}

// TestDualOffKeepsLegacyFallback pins the default behavior: without
// Options.Dual a primal-infeasible warm basis is rejected and the solver
// cold-starts, exactly as before this option existed.
func TestDualOffKeepsLegacyFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	p := lipsShapedLP(8, 6, 4, rand.New(rand.NewSource(7)), rng)
	base, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Status != Optimal || base.Basis == nil {
		t.Fatalf("unusable base solve: %v", base.Status)
	}
	// Massive drift guarantees the stale basis is primal infeasible.
	for i := 0; i < p.NumCons(); i++ {
		c := Con(i)
		if p.ConSense(c) == LE && p.ConRHS(c) > 0 {
			p.SetRHS(c, p.ConRHS(c)*0.3)
		}
	}
	warm, err := p.Solve(Options{WarmStart: base.Basis, Presolve: PresolveOff})
	if err != nil {
		t.Fatal(err)
	}
	if warm.WarmStarted {
		t.Fatal("expected the drifted basis to be rejected without Options.Dual")
	}
	if warm.DualIters != 0 {
		t.Fatalf("DualIters = %d without Options.Dual", warm.DualIters)
	}
	dual, err := p.Solve(Options{WarmStart: base.Basis, Dual: true, Presolve: PresolveOff})
	if err != nil {
		t.Fatal(err)
	}
	if dual.Status != warm.Status {
		t.Fatalf("dual status %v, cold-fallback status %v", dual.Status, warm.Status)
	}
	if warm.Status == Optimal {
		if d := relDiff(dual.Objective, warm.Objective); d > 1e-6 {
			t.Errorf("dual objective %g, cold %g (rel %g)", dual.Objective, warm.Objective, d)
		}
	}
}

// TestDualBoundDrift drifts variable bounds (not RHS) and checks the dual
// repair: bound changes also leave reduced costs untouched.
func TestDualBoundDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		p := lipsShapedLP(4+rng.Intn(6), 3+rng.Intn(5), 2+rng.Intn(4),
			rand.New(rand.NewSource(int64(200+trial))), rng)
		base, err := p.Solve(Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if base.Status != Optimal || base.Basis == nil {
			continue
		}
		for j := 0; j < p.NumVars(); j++ {
			v := Var(j)
			lo, hi := p.Bounds(v)
			if !math.IsInf(hi, 1) && hi > 0 {
				p.SetBounds(v, lo, hi*(0.7+0.3*rng.Float64()))
			}
		}
		cold, err := p.Solve(Options{})
		if err != nil {
			t.Fatalf("trial %d: cold: %v", trial, err)
		}
		warm, err := p.Solve(Options{WarmStart: base.Basis, Dual: true, Presolve: PresolveOff})
		if err != nil {
			t.Fatalf("trial %d: warm+dual: %v", trial, err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("trial %d: warm+dual status %v, cold %v", trial, warm.Status, cold.Status)
		}
		if cold.Status != Optimal {
			continue
		}
		if d := relDiff(warm.Objective, cold.Objective); d > 1e-6 {
			t.Errorf("trial %d: warm+dual objective %g, cold %g (rel %g)", trial, warm.Objective, cold.Objective, d)
		}
	}
}
