package lp_test

import (
	"fmt"

	"lips/internal/lp"
)

// Build and solve a two-variable LP: maximize x + 2y (as minimize the
// negation) subject to a shared capacity.
func ExampleProblem_Solve() {
	p := lp.New("demo")
	x := p.AddVar("x", 0, 3, -1)
	y := p.AddVar("y", 0, 2, -2)
	c := p.AddCon("capacity", lp.LE, 4)
	p.SetCoef(c, x, 1)
	p.SetCoef(c, y, 1)

	sol, err := p.Solve(lp.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%v: objective %g at x=%g y=%g\n",
		sol.Status, sol.Objective, sol.Value(x), sol.Value(y))
	// Output: optimal: objective -6 at x=2 y=2
}
