package lp

import "fmt"

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective can be decreased without limit.
	Unbounded
	// IterLimit means the iteration budget was exhausted first.
	IterLimit
)

// String returns a human-readable status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status    Status
	Objective float64   // objective value at X (valid when Status == Optimal)
	X         []float64 // one value per structural variable
	Dual      []float64 // one dual multiplier per constraint row
	Iters     int       // total simplex iterations (both phases)
	Phase1    int       // iterations spent in phase 1
}

// Value returns the solution value of v.
func (s *Solution) Value(v Var) float64 { return s.X[v] }

// Options tunes the simplex solver. The zero value selects sensible
// defaults via (*Options).withDefaults.
type Options struct {
	// MaxIters bounds the total number of simplex iterations across both
	// phases. 0 means 200·(rows+cols)+10000.
	MaxIters int
	// Tol is the feasibility and optimality tolerance. 0 means 1e-9.
	Tol float64
	// Bland forces Bland's anti-cycling rule from the first iteration.
	// The default is Dantzig pricing with an automatic Bland fallback
	// after a long degenerate stall.
	Bland bool
}

func (o Options) withDefaults(rows, cols int) Options {
	if o.MaxIters == 0 {
		o.MaxIters = 200*(rows+cols) + 10000
	}
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
	return o
}
