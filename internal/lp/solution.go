package lp

import (
	"fmt"
	"time"

	"lips/internal/obs"
)

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective can be decreased without limit.
	Unbounded
	// IterLimit means the iteration budget was exhausted first.
	IterLimit
)

// String returns a human-readable status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status    Status
	Objective float64   // objective value at X (valid when Status == Optimal)
	X []float64 // one value per structural variable
	// Dual holds one multiplier per constraint row. On Optimal these are
	// the usual LP duals; on Infeasible they are the phase-1 duals (a
	// Farkas-style infeasibility certificate) when the simplex proved
	// infeasibility itself, nil when presolve did.
	Dual []float64
	Iters     int       // total simplex iterations (both phases)
	Phase1    int       // iterations spent in phase 1
	// DualIters counts dual-simplex repair pivots (Options.Dual): warm
	// starts whose basis was primal infeasible but dual feasible were
	// driven back to feasibility by this many pivots instead of a cold
	// two-phase restart. Included in Iters.
	DualIters int

	// Basis is the final simplex basis, reusable as Options.WarmStart for
	// a follow-up solve of a structurally identical problem (same variable
	// and constraint counts; bounds and right-hand sides may differ). Nil
	// when the solve did not reach an expressible optimal basis — e.g. a
	// degenerate artificial variable survived phase 2.
	Basis *Basis
	// WarmStarted reports whether the warm-start basis was accepted (it
	// validated and was primal feasible under this problem's data). When
	// false despite Options.WarmStart, the solver fell back to a cold
	// two-phase start.
	WarmStarted bool
	// PricingTime is the wall-clock spent in the pricing step (reduced-
	// cost scan plus Devex weight maintenance) across all iterations.
	PricingTime time.Duration
	// FactorTime is the wall-clock spent building and updating the basis
	// factorization; FtranTime and BtranTime cover the triangular solves
	// (entering columns and x_B; duals and Devex pivot rows).
	FactorTime time.Duration
	FtranTime  time.Duration
	BtranTime  time.Duration
	// PresolveTime is the wall-clock spent reducing the problem and
	// postsolving the answer back; zero when presolve did not run or
	// found nothing to remove.
	PresolveTime time.Duration
	// Refactorizations counts from-scratch basis factorizations.
	Refactorizations int
	// FactorNNZ is the nonzero count of the final basis factorization —
	// L+U fill-in under FactorLU, m² under FactorDense.
	FactorNNZ int
	// PresolveRows and PresolveCols count the constraint rows and columns
	// presolve removed before the simplex saw the problem.
	PresolveRows int
	PresolveCols int
	// Pivots is the pivot sequence, recorded when Options.RecordPivots is
	// set. Used by determinism tests to assert that parallel pricing
	// follows exactly the single-threaded path.
	Pivots []Pivot
}

// Pivot records one simplex iteration's basis change. Leaving is -1 for a
// bound flip (the entering column crossed to its opposite bound without a
// basis change).
type Pivot struct {
	Entering int32
	Leaving  int32
}

// Value returns the solution value of v.
func (s *Solution) Value(v Var) float64 { return s.X[v] }

// Basis captures a simplex basis over the structural and slack columns of
// a problem with NumVars variables and NumCons rows. Treat it as opaque:
// obtain one from Solution.Basis and pass it to Options.WarmStart, or
// remap it across a problem edit with TranslateBasis / Problem.ExtendBasis.
type Basis struct {
	NumVars, NumCons int
	// RowCol[i] is the column basic in row i: j < NumVars is structural
	// variable j, NumVars+i is the slack of row i.
	RowCol []int32
	// ColStat[j] is the rest position of nonbasic column j (one of the
	// Basis* codes below); entries of basic columns are ignored.
	ColStat []int8
}

// Rest-position codes for Basis.ColStat. The numeric values match the
// solver's internal column statuses, so a Solution.Basis can be fed back
// unchanged.
const (
	BasisAtLower int8 = 0 // resting at its lower bound
	BasisAtUpper int8 = 1 // resting at its upper bound
	BasisFree    int8 = 2 // free column pinned at zero
	// BasisAuto marks a column with no recorded rest position — e.g. one
	// appended after the basis was captured by ExtendBasis or
	// TranslateBasis. The solver places such columns at their default
	// starting bound.
	BasisAuto int8 = 3
)

// Options tunes the simplex solver. The zero value selects sensible
// defaults via (*Options).withDefaults.
type Options struct {
	// MaxIters bounds the total number of simplex iterations across both
	// phases. 0 means 200·(rows+cols)+10000.
	MaxIters int
	// Tol is the feasibility and optimality tolerance. 0 means 1e-9.
	Tol float64
	// Bland forces Bland's anti-cycling rule from the first iteration.
	// The default is Dantzig pricing with an automatic Bland fallback
	// after a long degenerate stall.
	Bland bool
	// WarmStart seeds the solve with a basis from a previous solve of a
	// structurally identical problem (same variable and constraint
	// counts). If the basis does not validate, is singular, or is primal
	// infeasible under the current bounds and right-hand sides, the
	// solver silently falls back to a cold two-phase start; an accepted
	// warm start skips phase 1 entirely. Solution.WarmStarted reports
	// which path ran.
	WarmStart *Basis
	// PricingWorkers parallelizes the pricing step (the reduced-cost scan
	// and Devex weight update) across this many goroutines. Results are
	// bit-identical to the sequential scan for any worker count: each
	// column's reduced cost is computed independently and ties break by
	// lowest column index. 0 or 1 means sequential.
	PricingWorkers int
	// Dual enables the dual-simplex repair path for warm starts whose
	// basis is primal infeasible but still dual feasible — the natural
	// outcome of re-solving after right-hand sides or bounds drifted
	// (epoch capacity changes, node churn row edits). Instead of
	// discarding the basis and cold-starting, the solver pivots the most
	// violated basic variables out against a dual ratio test until primal
	// feasibility is restored, then finishes with the ordinary primal
	// phase 2. Any numerical trouble falls back to the cold path, so the
	// option is always safe. Solution.DualIters counts the repair pivots.
	Dual bool
	// RecordPivots fills Solution.Pivots with the pivot sequence.
	RecordPivots bool
	// Factor selects the basis-inverse representation: the default
	// (FactorAuto/FactorLU) is a sparse LU factorization with Markowitz
	// pivot ordering and product-form updates; FactorDense keeps the
	// explicit dense inverse the solver originally shipped with.
	Factor FactorMode
	// Presolve controls the reduction pass that removes empty rows and
	// columns, fixed variables, singleton and forcing rows, and dominated
	// columns before the simplex runs, postsolving the answer (including
	// duals and the warm-startable Basis) back to the original problem.
	// The default (PresolveAuto) runs it on cold solves; it is always
	// skipped when Options.WarmStart is set, since a basis for the
	// unreduced problem cannot seed the reduced one. PresolveOff disables
	// it entirely.
	Presolve PresolveMode
	// Metrics, when non-nil, publishes per-solve statistics (iteration,
	// refactorization and presolve counters, wall-clock phase timings)
	// into the registry's lips_lp_* families. Nil costs nothing: the
	// solver takes the instrumented path only when set.
	Metrics *obs.Registry
}

// FactorMode selects the representation of the basis inverse.
type FactorMode int8

// Basis factorization modes.
const (
	// FactorAuto lets the solver choose; currently sparse LU.
	FactorAuto FactorMode = iota
	// FactorLU selects the sparse LU factorization explicitly.
	FactorLU
	// FactorDense selects the dense explicit inverse (the historical
	// representation, kept as a numerical cross-check and fallback).
	FactorDense
)

// PresolveMode controls the presolve reduction pass.
type PresolveMode int8

// Presolve modes.
const (
	// PresolveAuto runs presolve on cold solves (no warm-start basis).
	PresolveAuto PresolveMode = iota
	// PresolveOn is an explicit alias for PresolveAuto today.
	PresolveOn
	// PresolveOff disables presolve.
	PresolveOff
)

func (o Options) withDefaults(rows, cols int) Options {
	if o.MaxIters == 0 {
		o.MaxIters = 200*(rows+cols) + 10000
	}
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
	return o
}
