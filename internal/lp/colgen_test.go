package lp

import (
	"math/rand"
	"testing"

	"lips/internal/obs"
)

// solveColGenFull runs the reveal-oracle colgen pipeline on full and
// returns the final solution, the stats, and the expanded X.
func solveColGenFull(t *testing.T, full *Problem, opts Options) (*Solution, ColGenStats, []float64) {
	t.Helper()
	p, o := NewRestricted(full)
	sol, st, err := SolveColGen(p, o, opts)
	if err != nil {
		t.Fatalf("%s: colgen: %v", full.Name(), err)
	}
	var x []float64
	if sol.Status == Optimal {
		x = o.Expand(sol)
	}
	return sol, st, x
}

// TestColGenMatchesFullHardCorpus pins the reveal-oracle colgen path to
// the known optima of the hard corpus, with and without the dual-simplex
// round re-solves.
func TestColGenMatchesFullHardCorpus(t *testing.T) {
	for _, tc := range hardCorpus() {
		for _, dual := range []bool{false, true} {
			full := tc.p()
			sol, st, x := solveColGenFull(t, full, Options{Dual: dual})
			if sol.Status != Optimal {
				t.Fatalf("%s dual=%v: status %v", tc.name, dual, sol.Status)
			}
			if d := relDiff(sol.Objective, tc.want); d > 1e-6 {
				t.Errorf("%s dual=%v: objective %g, want %g (rel %g)", tc.name, dual, sol.Objective, tc.want, d)
			}
			if err := full.CheckFeasible(x, 1e-6); err != nil {
				t.Errorf("%s dual=%v: expanded point infeasible: %v", tc.name, dual, err)
			}
			if st.Rounds < 1 {
				t.Errorf("%s dual=%v: zero pricing rounds", tc.name, dual)
			}
		}
	}
}

// TestColGenMatchesFullLiPSShaped runs the colgen differential over the
// scheduling-shaped corpus: the restricted solve must reproduce the direct
// solve's objective while revealing only a subset of the columns.
func TestColGenMatchesFullLiPSShaped(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	sawPartial := false
	for trial := 0; trial < 20; trial++ {
		jobs := 3 + rng.Intn(10)
		machines := 3 + rng.Intn(8)
		stores := 2 + rng.Intn(6)
		full := lipsShapedLP(jobs, machines, stores, rand.New(rand.NewSource(int64(trial))), rng)
		direct, err := full.Solve(Options{})
		if err != nil {
			t.Fatalf("trial %d: direct: %v", trial, err)
		}
		sol, st, x := solveColGenFull(t, full, Options{Dual: true})
		if sol.Status != direct.Status {
			t.Fatalf("trial %d: colgen status %v, direct %v", trial, sol.Status, direct.Status)
		}
		if direct.Status != Optimal {
			continue
		}
		if d := relDiff(sol.Objective, direct.Objective); d > 1e-6 {
			t.Errorf("trial %d: colgen objective %g, direct %g (rel %g)", trial, sol.Objective, direct.Objective, d)
		}
		if err := full.CheckFeasible(x, 1e-6); err != nil {
			t.Errorf("trial %d: %v", trial, err)
		}
		if st.Columns+seededCols(full) < full.NumVars() {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Error("colgen revealed every column on every trial; the restriction never paid off")
	}
}

// seededCols counts the columns NewRestricted must seed for full (those
// that cannot rest at zero).
func seededCols(full *Problem) int {
	n := 0
	for j := 0; j < full.NumVars(); j++ {
		lo, hi := full.Bounds(Var(j))
		if lo > 0 || hi < 0 {
			n++
		}
	}
	return n
}

// TestColGenMatchesFullRandom fuzzes the differential over the random
// corpus, including infeasible and unbounded instances: the colgen
// pipeline must land on the same status and objective as a direct solve.
func TestColGenMatchesFullRandom(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		full := randomProblem(rng)
		direct, err := full.Solve(Options{})
		if err != nil {
			t.Fatalf("seed %d: direct: %v", seed, err)
		}
		sol, _, x := solveColGenFull(t, full, Options{})
		if sol.Status != direct.Status {
			t.Fatalf("seed %d: colgen status %v, direct %v", seed, sol.Status, direct.Status)
		}
		if direct.Status != Optimal {
			continue
		}
		if d := relDiff(sol.Objective, direct.Objective); d > 1e-6 {
			t.Errorf("seed %d: colgen objective %g, direct %g (rel %g)", seed, sol.Objective, direct.Objective, d)
		}
		if err := full.CheckFeasible(x, 1e-6); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestColGenJunkedCorpus exercises the numerically nasty corpus (junk
// rows, wild scales) through the colgen pipeline.
func TestColGenJunkedCorpus(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		full := junkedLiPSLP(seed)
		direct, err := full.Solve(Options{})
		if err != nil {
			t.Fatalf("seed %d: direct: %v", seed, err)
		}
		sol, _, _ := solveColGenFull(t, full, Options{Dual: true})
		if sol.Status != direct.Status {
			t.Fatalf("seed %d: colgen status %v, direct %v", seed, sol.Status, direct.Status)
		}
		if direct.Status != Optimal {
			continue
		}
		if d := relDiff(sol.Objective, direct.Objective); d > 1e-6 {
			t.Errorf("seed %d: colgen objective %g, direct %g (rel %g)", seed, sol.Objective, direct.Objective, d)
		}
	}
}

// TestColGenWarmRounds asserts that rounds following an optimal round
// reuse its basis via ExtendBasis. Klee–Minty's empty restriction is
// feasible on the slack basis, so round 1 is Optimal, round 2 must
// warm-start, and the run must converge without a cold restart.
func TestColGenWarmRounds(t *testing.T) {
	full := kleeMintyLP(8)
	p, o := NewRestricted(full)
	sol, st, err := SolveColGen(p, o, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if st.Rounds < 2 {
		t.Fatalf("expected ≥ 2 pricing rounds, got %d", st.Rounds)
	}
	if st.WarmRounds < 1 {
		t.Errorf("no round warm-started across %d rounds", st.Rounds)
	}
	if !sol.WarmStarted {
		t.Error("final round did not warm-start from the previous round's basis")
	}
}

// TestColGenPublishesMetrics checks the lips_lp_ colgen counters.
func TestColGenPublishesMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	rng := rand.New(rand.NewSource(4))
	full := lipsShapedLP(8, 6, 4, rand.New(rand.NewSource(2)), rng)
	p, o := NewRestricted(full)
	sol, st, err := SolveColGen(p, o, Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if v, ok := reg.Value(obs.MLPColGenRounds); !ok || v != float64(st.Rounds) {
		t.Errorf("colgen rounds metric = %g (ok=%v), want %d", v, ok, st.Rounds)
	}
	if v, ok := reg.Value(obs.MLPColGenColumns); !ok || v != float64(st.Columns) {
		t.Errorf("colgen columns metric = %g (ok=%v), want %d", v, ok, st.Columns)
	}
}
